// Figure 1 reproduction: the cron-based operation mode. Collections append
// to node-local logs, rotate daily, and reach the central archive through a
// staged rsync at a random per-node early-morning time. The harness
// measures what the schematic implies: hours of availability latency, the
// staging-time spread across nodes, and data loss when a node fails before
// its rsync.
#include "bench_common.hpp"

#include "core/monitor.hpp"

namespace {

using namespace tacc;

constexpr util::SimTime kStart = 1451865600LL * util::kSecond;  // 2016-01-04

void report() {
  bench::banner("Fig. 1: cron-mode transport (64 nodes, 2 simulated days)");

  simhw::ClusterConfig cc;
  cc.num_nodes = 64;
  cc.topology = simhw::Topology{2, 4, false};
  cc.phi_fraction = 0.0;
  simhw::Cluster cluster(cc);

  core::MonitorConfig mc;
  mc.mode = core::TransportMode::Cron;
  mc.start = kStart;
  core::ClusterMonitor monitor(cluster, mc);

  // A rolling workload across the cluster.
  long jobid = 9000;
  for (int g = 0; g < 16; ++g) {
    workload::JobSpec job;
    job.jobid = ++jobid;
    job.user = "user" + std::to_string(g % 5);
    job.profile = g % 3 == 0 ? "cfd_scalar" : "wrf";
    job.exe = workload::find_profile(job.profile).exe;
    job.nodes = 4;
    job.wayness = 8;
    job.start_time = kStart + g * util::kHour;
    job.end_time = job.start_time + 5 * util::kHour;
    job.submit_time = job.start_time - util::kMinute;
    monitor.advance_to(job.start_time);
    monitor.job_started(job, {static_cast<std::size_t>(g * 4 % 64),
                              static_cast<std::size_t>((g * 4 + 1) % 64),
                              static_cast<std::size_t>((g * 4 + 2) % 64),
                              static_cast<std::size_t>((g * 4 + 3) % 64)});
  }
  // One node dies mid-afternoon on day 1: its local, unstaged data is lost.
  monitor.advance_to(kStart + 15 * util::kHour);
  monitor.fail_node(63);
  monitor.advance_to(kStart + 2 * util::kDay);

  const auto stats = monitor.cron_stats();
  const auto latency = monitor.archive().latency();

  bench::ReproTable t;
  t.row("central availability", "next-day rsync",
        "mean " + bench::num(latency.mean() / 3600.0, 3) + " h, max " +
            bench::num(latency.max() / 3600.0, 3) + " h",
        "records wait for rotation + staged copy");
  t.row("staging window", "random per-node time (low-utilization hours)",
        "01:00-05:00, per-node fixed offset",
        "avoids hammering the shared filesystem");
  t.row("real-time action", "not possible (time lag)",
        "min latency " + bench::num(latency.min() / 3600.0, 3) + " h", "");
  t.row("node-failure data loss", "possible",
        std::to_string(stats.lost_records) + " records lost on 1 failure",
        "everything unstaged on the failed node");
  t.row("records collected", "-", std::to_string(stats.collected_records),
        "64 nodes, 10-minute cadence");
  t.row("records centrally archived", "-",
        std::to_string(stats.staged_records), "");
  t.print();
}

void BM_CronDayOn16Nodes(benchmark::State& state) {
  for (auto _ : state) {
    simhw::ClusterConfig cc;
    cc.num_nodes = 16;
    cc.topology = simhw::Topology{2, 4, false};
    cc.phi_fraction = 0.0;
    simhw::Cluster cluster(cc);
    core::MonitorConfig mc;
    mc.mode = core::TransportMode::Cron;
    mc.start = kStart;
    core::ClusterMonitor monitor(cluster, mc);
    monitor.advance_to(kStart + 6 * util::kHour);
    benchmark::DoNotOptimize(monitor.cron_stats().collected_records);
  }
}
BENCHMARK(BM_CronDayOn16Nodes)->Unit(benchmark::kMillisecond);

}  // namespace

TS_BENCH_MAIN(report)
