// Section VI-C reproduction: shared-node process attribution. The scheme:
// an LD_PRELOADed constructor/destructor signals tacc_statsd at every
// process start/stop; each signal triggers a collection labeled with the
// current job list, guaranteeing at least two collections per process.
// While a ~0.09 s collection is in flight, one further signal can be
// captured; more are missed until the next interval collection. The
// harness sweeps process churn rates and reports capture/miss/overhead.
#include "bench_common.hpp"

#include "core/sharednode.hpp"
#include "util/rng.hpp"

namespace {

using namespace tacc;

constexpr util::SimTime kStart = 1451865600LL * util::kSecond;

struct ChurnResult {
  core::SharedNodeStats stats;
  double overhead_frac = 0.0;  // core-seconds spent collecting / elapsed
};

/// Runs `procs` process start/stop pairs over `window` with exponential
/// inter-arrival times.
ChurnResult run_churn(int procs, util::SimTime window, std::uint64_t seed) {
  int collections = 0;
  core::SharedNodeTracker tracker(
      [&](util::SimTime, const std::string&) { ++collections; });
  util::Rng rng("sharednode.churn", seed);
  struct Event {
    util::SimTime t;
    int pid;
    long jobid;
    bool start;
  };
  std::vector<Event> events;
  for (int p = 0; p < procs; ++p) {
    const auto t0 = kStart + static_cast<util::SimTime>(
                                 rng.uniform() * static_cast<double>(window));
    const auto dur = util::from_seconds(rng.exponential(30.0));
    events.push_back({t0, 1000 + p, p % 4, true});
    events.push_back({std::min(t0 + dur, kStart + window), 1000 + p,
                      p % 4, false});
  }
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) { return a.t < b.t; });
  for (const auto& e : events) {
    if (e.start) {
      tracker.process_started(e.t, e.pid, e.jobid);
    } else {
      tracker.process_ended(e.t, e.pid, e.jobid);
    }
  }
  ChurnResult result;
  result.stats = tracker.stats();
  result.overhead_frac =
      static_cast<double>(result.stats.collections_triggered) * 0.09 /
      util::to_seconds(window);
  return result;
}

void report() {
  bench::banner("Section VI-C: shared-node process attribution");

  bench::ReproTable t;
  t.row("collections per process", ">= 2 (start + stop signals)",
        "2 when signals are captured",
        "constructor/destructor LD_PRELOAD hooks");
  t.row("simultaneous starts handled", "2 (one can queue while busy)",
        "2 (verified by tests)", "third in the 0.09 s window is missed");
  t.row("collection cost", "~0.09 s of one core",
        "modeled at 0.09 s", "drives the race window");
  t.print();

  std::printf("\nProcess-churn sweep over a 1-hour window:\n\n");
  util::TextTable sweep;
  sweep.header({"Starts+stops/hour", "Captured", "Coalesced", "Missed",
                "Collection overhead"});
  for (const int procs : {10, 100, 1000, 5000, 20000}) {
    const auto r = run_churn(procs, util::kHour, 7);
    sweep.row({std::to_string(2 * procs),
               std::to_string(r.stats.collections_triggered),
               std::to_string(r.stats.signals_coalesced),
               std::to_string(r.stats.signals_missed),
               bench::pct(r.overhead_frac, 3)});
  }
  std::fputs(sweep.render().c_str(), stdout);
  std::printf(
      "\nAs the paper notes, overhead grows with process churn (long-running\n"
      "processes add nothing: all processes on a node share one collection),\n"
      "and misses only appear when a third signal lands inside the 0.09 s\n"
      "service window.\n");
}

void BM_SignalHandling(benchmark::State& state) {
  core::SharedNodeTracker tracker([](util::SimTime, const std::string&) {});
  util::SimTime t = kStart;
  int pid = 1;
  for (auto _ : state) {
    ++pid;
    tracker.process_started(t += util::kSecond, pid, pid % 8);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SignalHandling);

void BM_ChurnHour(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run_churn(static_cast<int>(state.range(0)), util::kHour, 11));
  }
}
BENCHMARK(BM_ChurnHour)->Arg(100)->Arg(1000)->Unit(benchmark::kMicrosecond);

}  // namespace

TS_BENCH_MAIN(report)
