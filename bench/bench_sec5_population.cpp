// Section V-A reproduction: the population-level threshold searches.
// Paper numbers (Stampede, Q4 2015, 404,002 jobs):
//   * 1.3% of jobs used the Xeon Phi for more than 1% of cpu time;
//   * 52% of jobs had >1% of FP operations vectorized, 25% had >50%;
//   * 3% of jobs used more than 20 GB of the 32 GB nodes;
//   * over 2% of jobs had entirely idle nodes (dozens daily);
// plus the flag sublist categories the portal attaches to every search.
#include "bench_common.hpp"

#include "portal/report.hpp"

namespace {

using namespace tacc;

db::Database& shared_db() {
  static db::Database database;
  static bool built = false;
  if (!built) {
    bench::build_population_db(database, 3000);
    built = true;
  }
  return database;
}

void report() {
  bench::banner("Section V-A: population statistics (threshold searches)");
  auto& jobs = shared_db().table(pipeline::kJobsTable);
  const double total = static_cast<double>(jobs.num_rows());
  auto count = [&](std::vector<db::Predicate> preds) {
    return jobs.aggregate_where(db::Agg::Count, "", std::move(preds));
  };

  bench::ReproTable t;
  t.row("jobs analyzed", "404,002", bench::num(total, 6),
        "scaled ~1:20; every job ran the full pipeline");
  t.row("MIC_Usage > 1%", "1.3%",
        bench::pct(count({{"MIC_Usage", db::Op::Gt, db::Value(0.01)}}) /
                   total),
        "users struggle to adopt the Phi");
  t.row("VecPercent > 1%", "52%",
        bench::pct(count({{"VecPercent", db::Op::Gt, db::Value(0.01)}}) /
                   total),
        "half the workload effectively unvectorized");
  t.row("VecPercent > 50%", "25%",
        bench::pct(count({{"VecPercent", db::Op::Gt, db::Value(0.50)}}) /
                   total),
        "a quarter vectorize well");
  t.row("MemUsage > 20 GB (32 GB nodes)", "3%",
        bench::pct(count({{"MemUsage", db::Op::Gt, db::Value(20.0)},
                          {"queue", db::Op::Ne, db::Value("largemem")}}) /
                   total),
        "most users don't need more memory");
  t.row("jobs with idle nodes", ">2%",
        bench::pct(count({{"idle", db::Op::Lt, db::Value(0.15)}}) / total),
        "misconfigured launch scripts");
  t.print();

  std::printf("\nFlag breakdown over the whole population:\n\n");
  std::fputs(
      portal::population_summary(jobs, jobs.select({})).c_str(), stdout);
  std::printf("\nDaily report excerpt (consulting-staff view):\n\n");
  std::fputs(
      portal::daily_report(jobs, util::make_time(2015, 11, 10)).c_str(),
      stdout);
}

void BM_ThresholdCount(benchmark::State& state) {
  auto& jobs = shared_db().table(pipeline::kJobsTable);
  for (auto _ : state) {
    benchmark::DoNotOptimize(jobs.aggregate_where(
        db::Agg::Count, "", {{"VecPercent", db::Op::Gt, db::Value(0.5)}}));
  }
}
BENCHMARK(BM_ThresholdCount)->Unit(benchmark::kMicrosecond);

void BM_PopulationSummary(benchmark::State& state) {
  auto& jobs = shared_db().table(pipeline::kJobsTable);
  const auto rows = jobs.select({});
  for (auto _ : state) {
    benchmark::DoNotOptimize(portal::population_summary(jobs, rows));
  }
}
BENCHMARK(BM_PopulationSummary)->Unit(benchmark::kMillisecond);

}  // namespace

TS_BENCH_MAIN(report)
