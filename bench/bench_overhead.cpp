// Overhead reproduction (paper sections I-B and VI-C): TACC Stats samples
// at 10-minute intervals with an estimated 0.02% overhead, each collection
// occupying one core for ~0.09 s on Lonestar 5; sub-second sampling is
// possible at proportionally higher overhead. The harness measures this
// library's real per-collection wall time on a fully configured node and
// sweeps the sampling interval.
#include "bench_common.hpp"

#include "collect/registry.hpp"

namespace {

using namespace tacc;

simhw::Node full_node() {
  simhw::NodeConfig nc;
  nc.topology = simhw::Topology{2, 8, false};
  nc.has_phi = true;
  return simhw::Node(nc);
}

/// Measures mean wall seconds per full collection (all collectors, 16-core
/// node with 16 running processes).
double measure_collection_seconds() {
  auto node = full_node();
  for (int p = 0; p < 16; ++p) {
    simhw::ProcessInfo proc;
    proc.pid = 5000 + p;
    proc.name = "wrf.exe";
    proc.vm_rss_kb = 400000;
    node.spawn_process(proc);
  }
  collect::HostSampler sampler(node);
  // Warm up, then time a batch.
  for (int i = 0; i < 16; ++i) {
    (void)sampler.sample(i * util::kSecond, {1}, "");
  }
  constexpr int kBatch = 400;
  util::WallTimer timer;
  for (int i = 0; i < kBatch; ++i) {
    (void)sampler.sample(i * util::kSecond, {1}, "");
  }
  return timer.elapsed_s() / kBatch;
}

void report() {
  bench::banner("Collection overhead (paper: 0.02% at 10-minute sampling, "
                "~0.09 s per collection)");
  const double per_collection_s = measure_collection_seconds();

  bench::ReproTable t;
  t.row("wall time per collection", "~0.09 s (one core, Lonestar 5)",
        bench::num(per_collection_s * 1000.0, 3) + " ms",
        "simulated surfaces are cheaper than real MSR/procfs reads");
  t.row("overhead at 10-minute sampling", "0.02%",
        bench::pct(per_collection_s / 600.0, 2),
        "per-core-seconds per sampled second");
  t.print();

  std::printf("\nSampling-interval sweep (sub-second capability, paper I-B):\n\n");
  util::TextTable sweep;
  sweep.header({"Interval", "Collections/day/node", "Overhead"});
  const std::pair<const char*, double> intervals[] = {
      {"0.1 s", 0.1},   {"1 s", 1.0},        {"10 s", 10.0},
      {"1 min", 60.0},  {"10 min", 600.0},
  };
  for (const auto& [label, secs] : intervals) {
    sweep.row({label, bench::num(86400.0 / secs, 4),
               bench::pct(per_collection_s / secs, 2)});
  }
  std::fputs(sweep.render().c_str(), stdout);
  std::printf(
      "\nBecause every counter is cumulative, the coarse production cadence\n"
      "loses no ARC accuracy (verified by the sampling-invariance tests).\n");
}

void BM_FullCollection(benchmark::State& state) {
  auto node = full_node();
  for (int p = 0; p < 16; ++p) {
    simhw::ProcessInfo proc;
    proc.pid = 5000 + p;
    proc.name = "wrf.exe";
    node.spawn_process(proc);
  }
  collect::HostSampler sampler(node);
  std::int64_t t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.sample(t += util::kSecond, {1}, ""));
  }
}
BENCHMARK(BM_FullCollection)->Unit(benchmark::kMicrosecond);

void BM_CollectionSerialization(benchmark::State& state) {
  auto node = full_node();
  collect::HostSampler sampler(node);
  const auto record = sampler.sample(0, {1}, "");
  for (auto _ : state) {
    benchmark::DoNotOptimize(collect::HostLog::serialize_record(record));
  }
}
BENCHMARK(BM_CollectionSerialization)->Unit(benchmark::kMicrosecond);

void BM_CollectionByTopology(benchmark::State& state) {
  // Scaling with core count (per-cpu blocks dominate the record).
  simhw::NodeConfig nc;
  nc.topology.cores_per_socket = static_cast<int>(state.range(0));
  simhw::Node node(nc);
  collect::HostSampler sampler(node);
  std::int64_t t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.sample(t += util::kSecond, {1}, ""));
  }
}
BENCHMARK(BM_CollectionByTopology)
    ->Arg(4)
    ->Arg(8)
    ->Arg(12)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

TS_BENCH_MAIN(report)
