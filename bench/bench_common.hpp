// Shared helpers for the benchmark/reproduction harnesses. Every bench
// binary first prints its paper-reproduction report, then runs its
// google-benchmark microbenchmarks.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "pipeline/ingest.hpp"
#include "pipeline/minisim.hpp"
#include "util/table.hpp"
#include "workload/generator.hpp"

namespace tacc::bench {

/// Prints a section banner.
inline void banner(const std::string& title) {
  std::printf("\n==== %s ====\n\n", title.c_str());
}

/// A paper-vs-measured comparison table builder.
class ReproTable {
 public:
  ReproTable() {
    table_.header({"Quantity", "Paper", "Measured", "Note"});
  }
  void row(const std::string& quantity, const std::string& paper,
           const std::string& measured, const std::string& note = "") {
    table_.row({quantity, paper, measured, note});
  }
  void print() { std::fputs(table_.render().c_str(), stdout); }

 private:
  util::TextTable table_;
};

/// The standard scaled-down population used by the section V harnesses:
/// jobs are scaled ~1:20 versus Stampede's quarter while the storm cohort
/// keeps its absolute size (105 jobs), per DESIGN.md.
inline workload::PopulationConfig population_config(int num_jobs = 3000) {
  workload::PopulationConfig config;
  config.num_jobs = num_jobs;
  config.storm_jobs = 105;
  config.seed = 2015;
  return config;
}

/// Generates + mini-simulates + ingests a population; returns the jobs.
inline std::vector<workload::JobSpec> build_population_db(
    db::Database& database, int num_jobs = 3000, int samples = 3) {
  auto jobs = workload::generate_population(population_config(num_jobs));
  pipeline::MiniSimOptions opts;
  opts.samples = samples;
  pipeline::ingest_population(database, jobs, opts);
  return jobs;
}

inline std::string num(double v, int prec = 4) {
  return util::TextTable::num(v, prec);
}

inline std::string pct(double frac, int prec = 3) {
  return util::TextTable::num(100.0 * frac, prec) + "%";
}

/// Runs the report then google-benchmark.
#define TS_BENCH_MAIN(report_fn)                                 \
  int main(int argc, char** argv) {                              \
    report_fn();                                                 \
    ::benchmark::Initialize(&argc, argv);                        \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) {  \
      return 1;                                                  \
    }                                                            \
    ::benchmark::RunSpecifiedBenchmarks();                       \
    return 0;                                                    \
  }

}  // namespace tacc::bench
