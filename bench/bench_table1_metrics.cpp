// Table I reproduction: computes every per-job metric for a reference
// mixed job collected at the production cadence (begin/end + 10-minute
// interior samples) and prints the full metric set. Microbenchmarks cover
// the metric computation and record extraction stages.
#include "bench_common.hpp"

#include "pipeline/metrics.hpp"

namespace {

using namespace tacc;

workload::JobSpec reference_job() {
  workload::JobSpec job;
  job.jobid = 3100042;
  job.user = "user001";
  job.uid = 10001;
  job.profile = "wrf";
  job.exe = "wrf.exe";
  job.nodes = 4;
  job.wayness = 16;
  job.submit_time = util::make_time(2016, 1, 4, 7, 40);
  job.start_time = util::make_time(2016, 1, 4, 8, 0);
  job.end_time = job.start_time + 2 * util::kHour;
  job.vec_frac_eff = 0.55;
  return job;
}

pipeline::JobData reference_data() {
  pipeline::MiniSimOptions opts;
  opts.samples = 11;  // 10-minute cadence over 2 h
  return simulate_job(reference_job(), opts);
}

void report() {
  bench::banner(
      "Table I: the full per-job metric set (reference WRF job, 4 nodes, "
      "2 h, 10-minute sampling)");
  const auto data = reference_data();
  const auto metrics = pipeline::compute_metrics(data);
  const auto values = metrics.as_map();

  util::TextTable t;
  t.header({"Label", "Value", "Unit/definition"});
  const std::pair<const char*, const char*> units[] = {
      {"MetaDataRate", "reqs/s, max interval rate summed over nodes"},
      {"MDCReqs", "reqs/s, avg per node"},
      {"OSCReqs", "reqs/s, avg per node"},
      {"MDCWait", "us per MDS op"},
      {"OSCWait", "us per OSS op"},
      {"LLiteOpenClose", "opens+closes/s, avg per node"},
      {"LnetAveBW", "MB/s, avg per node"},
      {"LnetMaxBW", "MB/s, max summed over nodes"},
      {"InternodeIBAveBW", "MB/s (IB minus LNET), avg per node"},
      {"InternodeIBMaxBW", "MB/s, max summed over nodes"},
      {"Packetsize", "bytes per IB packet"},
      {"Packetrate", "IB packets/s, avg per node"},
      {"GigEBW", "MB/s over Ethernet"},
      {"Load_All", "loads/s per core"},
      {"Load_L1Hits", "L1 hits/s per core"},
      {"Load_L2Hits", "L2 hits/s per core"},
      {"Load_LLCHits", "LLC hits/s per core"},
      {"cpi", "cycles per instruction"},
      {"cpld", "cycles per L1D load"},
      {"flops", "GFLOP/s per node"},
      {"VecPercent", "vector FP / all FP [0,1]"},
      {"mbw", "DRAM GB/s per node"},
      {"PkgWatts", "RAPL package W per node"},
      {"CoreWatts", "RAPL PP0 W per node"},
      {"DramWatts", "RAPL DRAM W per node"},
      {"MemUsage", "GB, max snapshot"},
      {"MemHWM", "GB, procfs per-process high-water mark"},
      {"CPU_Usage", "fraction of time in user space"},
      {"idle", "min/max CPU_Usage over nodes"},
      {"catastrophe", "min/max CPU usage over time"},
      {"MIC_Usage", "Xeon Phi utilization [0,1]"},
  };
  for (const auto& [label, unit] : units) {
    const double v = values.at(label);
    t.row({label, std::isnan(v) ? "n/a" : bench::num(v, 5), unit});
  }
  std::fputs(t.render().c_str(), stdout);
  std::printf(
      "\nNotes: every counter is cumulative except MemUsage (snapshot), so\n"
      "average metrics are exact ARCs at any sampling interval; Maximum\n"
      "metrics approximate the peak instantaneous rate (paper IV-A).\n");
}

void BM_ComputeMetrics(benchmark::State& state) {
  const auto data = reference_data();
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline::compute_metrics(data));
  }
}
BENCHMARK(BM_ComputeMetrics)->Unit(benchmark::kMicrosecond);

void BM_SimulateReferenceJob(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(reference_data());
  }
}
BENCHMARK(BM_SimulateReferenceJob)->Unit(benchmark::kMillisecond);

void BM_JobTimeseries(benchmark::State& state) {
  const auto data = reference_data();
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline::job_timeseries(data));
  }
}
BENCHMARK(BM_JobTimeseries)->Unit(benchmark::kMicrosecond);

}  // namespace

TS_BENCH_MAIN(report)
