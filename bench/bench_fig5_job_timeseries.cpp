// Figure 5 reproduction: the per-job detail plots. The paper's figure shows
// six stacked panels (Gigaflops, memory bandwidth, memory usage, Lustre
// filesystem bandwidth, internode InfiniBand/MPI traffic, CPU user
// fraction) with one line per node, for one of the storm user's WRF jobs —
// low Lustre bandwidth on a single node despite an enormous metadata
// request rate, and a poor, node-varying CPU user fraction.
#include "bench_common.hpp"

#include <chrono>
#include <cstdio>

#include "bench_json.hpp"
#include "pipeline/metrics.hpp"
#include "portal/plots.hpp"
#include "tsdb/store.hpp"

namespace {

using namespace tacc;

workload::JobSpec storm_job() {
  workload::JobSpec job;
  job.jobid = 3151234;
  job.user = "wrfuser42";
  job.uid = 20042;
  job.profile = "wrf_mdstorm";
  job.exe = "wrf.exe";
  job.nodes = 16;
  job.wayness = 16;
  job.submit_time = util::make_time(2016, 1, 8, 11, 30);
  job.start_time = util::make_time(2016, 1, 8, 12, 0);
  job.end_time = job.start_time + 3 * util::kHour;
  job.vec_frac_eff = 0.5;
  return job;
}

pipeline::JobData storm_data() {
  pipeline::MiniSimOptions opts;
  opts.samples = 17;  // 10-minute cadence over 3 h
  return simulate_job(storm_job(), opts);
}

void report() {
  bench::banner(
      "Fig. 5: per-node time series for the metadata-storm WRF job "
      "(16 nodes, 3 h, 10-minute samples)");
  const auto data = storm_data();
  const auto series = pipeline::job_timeseries(data);
  std::fputs(portal::render_job_plots(series).c_str(), stdout);

  const auto metrics = pipeline::compute_metrics(data);
  bench::ReproTable t;
  t.row("CPU User fraction", "low for WRF jobs (~0.67 cohort average)",
        bench::num(metrics.CPU_Usage, 3), "bottom panel");
  t.row("Lustre bandwidth", "small (requests are unnecessary)",
        bench::num(metrics.LnetAveBW, 3) + " MB/s avg per node",
        "4th panel");
  t.row("metadata requests", "~563,905/s peak over the job's nodes",
        bench::num(metrics.MetaDataRate, 6) + " reqs/s",
        "the signature the plots explain");
  t.row("open/close rate", "~30,884/s", bench::num(metrics.LLiteOpenClose, 6),
        "open/close per loop iteration in the user's code");
  t.print();
}

// ---- Job panels through the compressed time-series store ----
// The same six Fig. 5 panels, but resampled densely (1-minute cadence) and
// served from the tsdb store the way the portal would serve a historical
// job: per-node series per panel, sealed into compressed blocks. Measures
// bytes/point versus the raw layout and queries/s for the whole-job
// downsampled per-node aggregate the plot needs.
void load_panels(tsdb::Store& store,
                 const std::vector<pipeline::NodeSeries>& series) {
  std::vector<tsdb::SeriesBatch> batches;
  for (const auto& node : series) {
    const std::pair<const char*, const std::vector<double>*> panels[] = {
        {"gflops", &node.gflops},        {"mem_bw_gbps", &node.mem_bw_gbps},
        {"mem_used_gb", &node.mem_used_gb}, {"lustre_mbps", &node.lustre_mbps},
        {"ib_mpi_mbps", &node.ib_mpi_mbps}, {"cpu_user", &node.cpu_user}};
    for (const auto& [name, values] : panels) {
      tsdb::SeriesBatch batch;
      batch.metric = std::string("job.") + name;
      batch.tags = {{"host", node.hostname}};
      for (std::size_t i = 0; i < node.times.size(); ++i) {
        // times are interval-midpoint seconds since epoch
        const auto t = static_cast<util::SimTime>(node.times[i]) *
                       util::kSecond;
        batch.points.push_back({t, (*values)[i]});
      }
      batches.push_back(std::move(batch));
    }
  }
  store.put_batches(batches);
}

void report_tsdb() {
  bench::banner(
      "Fig. 5 panels served from the compressed time-series store");
  const bool smoke = bench::bench_smoke();
  pipeline::MiniSimOptions opts;
  opts.samples = smoke ? 61 : 181;  // 1-minute cadence over the 3 h job
  const auto data = simulate_job(storm_job(), opts);
  const auto series = pipeline::job_timeseries(data);

  tsdb::Store sealed_store;  // default block_points, then seal_all()
  load_panels(sealed_store, series);
  sealed_store.seal_all();
  tsdb::StoreOptions raw_opts;
  raw_opts.block_points = 0;  // the pre-block-tier 16 B/point layout
  tsdb::Store raw_store(raw_opts);
  load_panels(raw_store, series);

  const auto storage = sealed_store.storage_stats();
  const double bytes_per_point =
      static_cast<double>(storage.sealed_bytes) /
      static_cast<double>(storage.sealed_points);

  // What the portal asks for per panel: one value per node over the whole
  // job, downsampled in a single whole-job bucket (rollup fast path on the
  // sealed store, full scan on the raw one).
  tsdb::Query q;
  q.metric = "job.cpu_user";
  q.group_by = {"host"};
  // One whole-job bucket: buckets are epoch-aligned, and the 3 h job sits
  // inside a single day, so a 1-day bucket covers every sealed block.
  q.downsample = util::kDay;
  q.downsample_aggregator = tsdb::Aggregator::Avg;
  const auto queries_per_s = [&](const tsdb::Store& store) {
    const int iters = smoke ? 20 : 200;
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) {
      benchmark::DoNotOptimize(store.query(q));
    }
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    return iters / dt.count();
  };
  const double sealed_qps = queries_per_s(sealed_store);
  const double raw_qps = queries_per_s(raw_store);

  bench::ReproTable t;
  t.row("panel points in store", "-",
        std::to_string(sealed_store.num_points()) + " points",
        std::to_string(sealed_store.num_series()) + " series (6 panels x " +
            std::to_string(series.size()) + " nodes)");
  t.row("storage, sealed blocks", "-",
        bench::num(bytes_per_point, 3) + " B/point",
        "noisy float panels compress worse than counters; raw 16 B/point");
  t.row("whole-job per-node aggregate", ">= 3x raw",
        bench::num(sealed_qps, 1) + " queries/s",
        bench::num(sealed_qps / raw_qps, 2) + "x raw (" +
            bench::num(raw_qps, 1) + " q/s)");
  t.print();

  bench::BenchJson json("fig5_job_timeseries");
  json.put("panel.points", sealed_store.num_points());
  json.put("panel.series", sealed_store.num_series());
  json.put("storage.sealed_bytes_per_point", bytes_per_point);
  json.put("storage.raw_bytes_per_point", 16.0);
  json.put("query.whole_job_rollup_qps", sealed_qps);
  json.put("query.whole_job_scan_qps", raw_qps);
  json.put("query.whole_job_speedup", sealed_qps / raw_qps);
  json.put("smoke", static_cast<std::int64_t>(smoke ? 1 : 0));
  if (!json.write()) {
    std::fprintf(stderr, "warning: could not write %s\n",
                 bench::bench_json_path().c_str());
  }
}

void report_all() {
  report();
  report_tsdb();
}

void BM_TimeseriesExtraction(benchmark::State& state) {
  const auto data = storm_data();
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline::job_timeseries(data));
  }
}
BENCHMARK(BM_TimeseriesExtraction)->Unit(benchmark::kMicrosecond);

void BM_PlotRendering(benchmark::State& state) {
  const auto series = pipeline::job_timeseries(storm_data());
  for (auto _ : state) {
    benchmark::DoNotOptimize(portal::render_job_plots(series));
  }
}
BENCHMARK(BM_PlotRendering)->Unit(benchmark::kMicrosecond);

}  // namespace

TS_BENCH_MAIN(report_all)
