// Figure 5 reproduction: the per-job detail plots. The paper's figure shows
// six stacked panels (Gigaflops, memory bandwidth, memory usage, Lustre
// filesystem bandwidth, internode InfiniBand/MPI traffic, CPU user
// fraction) with one line per node, for one of the storm user's WRF jobs —
// low Lustre bandwidth on a single node despite an enormous metadata
// request rate, and a poor, node-varying CPU user fraction.
#include "bench_common.hpp"

#include "pipeline/metrics.hpp"
#include "portal/plots.hpp"

namespace {

using namespace tacc;

workload::JobSpec storm_job() {
  workload::JobSpec job;
  job.jobid = 3151234;
  job.user = "wrfuser42";
  job.uid = 20042;
  job.profile = "wrf_mdstorm";
  job.exe = "wrf.exe";
  job.nodes = 16;
  job.wayness = 16;
  job.submit_time = util::make_time(2016, 1, 8, 11, 30);
  job.start_time = util::make_time(2016, 1, 8, 12, 0);
  job.end_time = job.start_time + 3 * util::kHour;
  job.vec_frac_eff = 0.5;
  return job;
}

pipeline::JobData storm_data() {
  pipeline::MiniSimOptions opts;
  opts.samples = 17;  // 10-minute cadence over 3 h
  return simulate_job(storm_job(), opts);
}

void report() {
  bench::banner(
      "Fig. 5: per-node time series for the metadata-storm WRF job "
      "(16 nodes, 3 h, 10-minute samples)");
  const auto data = storm_data();
  const auto series = pipeline::job_timeseries(data);
  std::fputs(portal::render_job_plots(series).c_str(), stdout);

  const auto metrics = pipeline::compute_metrics(data);
  bench::ReproTable t;
  t.row("CPU User fraction", "low for WRF jobs (~0.67 cohort average)",
        bench::num(metrics.CPU_Usage, 3), "bottom panel");
  t.row("Lustre bandwidth", "small (requests are unnecessary)",
        bench::num(metrics.LnetAveBW, 3) + " MB/s avg per node",
        "4th panel");
  t.row("metadata requests", "~563,905/s peak over the job's nodes",
        bench::num(metrics.MetaDataRate, 6) + " reqs/s",
        "the signature the plots explain");
  t.row("open/close rate", "~30,884/s", bench::num(metrics.LLiteOpenClose, 6),
        "open/close per loop iteration in the user's code");
  t.print();
}

void BM_TimeseriesExtraction(benchmark::State& state) {
  const auto data = storm_data();
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline::job_timeseries(data));
  }
}
BENCHMARK(BM_TimeseriesExtraction)->Unit(benchmark::kMicrosecond);

void BM_PlotRendering(benchmark::State& state) {
  const auto series = pipeline::job_timeseries(storm_data());
  for (auto _ : state) {
    benchmark::DoNotOptimize(portal::render_job_plots(series));
  }
}
BENCHMARK(BM_PlotRendering)->Unit(benchmark::kMicrosecond);

}  // namespace

TS_BENCH_MAIN(report)
