// Ingest hot-path benchmark: the SIMD + arena parse pipeline against the
// split/ostringstream implementation it replaced, parse-only and end to
// end (archive -> tsdb, text -> tsdb).
//
// Three layers are timed over the same Fig. 2-shaped host log:
//   * legacy parse — a verbatim copy of the pre-pipeline
//     HostLog::parse_records (split_lines/split_ws + per-record vectors),
//     kept here as the fixed baseline;
//   * HostLog::parse — today's wrapper over the view parser, still
//     materializing Record/RawBlock vectors;
//   * view parse — collect::RecordViewParser streaming into a counting
//     sink: the zero-materialization ceiling the staged pipeline runs at.
//
// Two gates fail the run (exit 1) so CI bench-smoke catches regressions:
//   * the view parser — the parse stage the ingest pipeline actually runs
//     (ingest_text_tsdb, daemon-mode decode) — must be >= 3x the legacy
//     parser, and
//   * the detected SIMD mode must not lose to forced-scalar view parse.
// Both use best-of-N wall times to keep one-core CI noise out.
// HostLog::parse (which still materializes owning Records on top of the
// same view parser) is reported alongside but not gated at 3x: its cost
// is dominated by the Record/RawBlock heap layout both parsers share.
#include "bench_common.hpp"

#include <chrono>
#include <cstdlib>
#include <tuple>

#include "bench_json.hpp"
#include "collect/rawfile.hpp"
#include "collect/rawview.hpp"
#include "core/monitor.hpp"
#include "tsdb/store.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"
#include "util/simd_scan.hpp"
#include "util/strings.hpp"

namespace {

using namespace tacc;

constexpr util::SimTime kStart = 1451865600LL * util::kSecond;

/// Verbatim copy of the pre-pipeline HostLog::parse_records — the
/// baseline the 3x acceptance gate measures against.
void legacy_parse_records(collect::HostLog& log, std::string_view body) {
  using collect::RawBlock;
  using collect::Record;
  using collect::Schema;
  Record* current = nullptr;
  for (const auto line : util::split_lines(body)) {
    if (line.empty()) continue;
    if (line[0] >= '0' && line[0] <= '9') {
      const auto fields = util::split_ws(line);
      if (fields.empty()) throw std::invalid_argument("empty record line");
      const auto secs = util::parse_i64(fields[0]);
      if (!secs) {
        throw std::invalid_argument("bad timestamp: " + std::string(line));
      }
      Record rec;
      rec.time = *secs * util::kSecond;
      if (fields.size() > 1 && fields[1] != "-") {
        for (const auto j : util::split(fields[1], ',')) {
          const auto id = util::parse_i64(j);
          if (!id) {
            throw std::invalid_argument("bad job id: " + std::string(line));
          }
          rec.jobids.push_back(static_cast<long>(*id));
        }
      }
      if (fields.size() > 2) rec.mark = std::string(fields[2]);
      log.records.push_back(std::move(rec));
      current = &log.records.back();
      continue;
    }
    if (current == nullptr) {
      throw std::invalid_argument("data row before any timestamp line");
    }
    const auto fields = util::split_ws(line);
    if (fields.size() < 2) {
      throw std::invalid_argument("short data row: " + std::string(line));
    }
    RawBlock block;
    block.type = std::string(fields[0]);
    block.device = fields[1] == "-" ? std::string{} : std::string(fields[1]);
    const Schema* schema = log.schema_for(block.type);
    if (schema == nullptr) {
      throw std::invalid_argument("data row with unknown type: " +
                                  block.type);
    }
    if (fields.size() - 2 != schema->size()) {
      throw std::invalid_argument("data row arity mismatch for type " +
                                  block.type);
    }
    block.values.reserve(fields.size() - 2);
    for (std::size_t i = 2; i < fields.size(); ++i) {
      const auto v = util::parse_u64(fields[i]);
      if (!v) {
        throw std::invalid_argument("bad counter value: " +
                                    std::string(fields[i]));
      }
      block.values.push_back(*v);
    }
    current->blocks.push_back(std::move(block));
  }
}

/// A Fig. 2-shaped host log as text: 16 cpus x 9 events, 2 memory nodes,
/// llite + ib, cumulative counters advancing between records.
std::string make_log_text(int records) {
  using collect::Schema;
  using collect::SchemaEntry;
  const auto events = [](std::initializer_list<const char*> keys) {
    std::vector<SchemaEntry> out;
    for (const char* k : keys) out.push_back({k, true, 64, "", 1.0});
    return out;
  };
  collect::HostLog log;
  log.hostname = "c401-101";
  log.arch = "hsw";
  log.schemas = {
      Schema("cpu", events({"user", "nice", "sys", "idle", "iowait", "irq",
                            "softirq", "steal", "guest"})),
      Schema("mem", events({"MemUsed", "FilePages", "Slab", "AnonPages"})),
      Schema("llite", events({"read_bytes", "write_bytes", "open", "close",
                              "getattr", "setattr"})),
      Schema("ib", events({"rx_bytes", "tx_bytes", "rx_packets",
                           "tx_packets"})),
  };
  log.reindex_schemas();

  util::Rng rng(2016);
  std::vector<std::uint64_t> counters(16 * 9 + 2 * 4 + 6 + 4, 0);
  for (int r = 0; r < records; ++r) {
    collect::Record rec;
    rec.time = kStart + r * 600 * util::kSecond;
    rec.jobids = {424242};
    if (r == 0) rec.mark = "begin";
    std::size_t c = 0;
    const auto advance = [&] {
      counters[c] += static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 20));
      return counters[c++];
    };
    for (int cpu = 0; cpu < 16; ++cpu) {
      collect::RawBlock b{"cpu", std::to_string(cpu), {}};
      for (int e = 0; e < 9; ++e) b.values.push_back(advance());
      rec.blocks.push_back(std::move(b));
    }
    for (int node = 0; node < 2; ++node) {
      collect::RawBlock b{"mem", std::to_string(node), {}};
      for (int e = 0; e < 4; ++e) b.values.push_back(advance());
      rec.blocks.push_back(std::move(b));
    }
    collect::RawBlock ll{"llite", "scratch", {}};
    for (int e = 0; e < 6; ++e) ll.values.push_back(advance());
    rec.blocks.push_back(std::move(ll));
    collect::RawBlock ib{"ib", "mlx4_0", {}};
    for (int e = 0; e < 4; ++e) ib.values.push_back(advance());
    rec.blocks.push_back(std::move(ib));
    log.records.push_back(std::move(rec));
  }
  return log.serialize();
}

/// Best-of-N wall seconds for fn() (N small: the best run is the one
/// least disturbed by the CI neighbours).
template <typename Fn>
double best_of(int n, Fn&& fn) {
  double best = 1e300;
  for (int i = 0; i < n; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    if (dt.count() < best) best = dt.count();
  }
  return best;
}

/// Sink that only tallies, so view parse measures tokenize+validate alone.
struct CountingSink {
  std::size_t records = 0;
  std::size_t values = 0;
  void record(const collect::RecordView&) { ++records; }
  void block(const collect::RawBlockView& b) { values += b.values.size(); }
};

bool g_gates_ok = true;

void gate(bool ok, const std::string& what) {
  std::printf("  gate %-44s %s\n", what.c_str(), ok ? "PASS" : "FAIL");
  if (!ok) g_gates_ok = false;
}

void report_parse_only() {
  bench::banner("Parse hot path: legacy vs view parser (per scan mode)");
  const bool smoke = bench::bench_smoke();
  const int reps = smoke ? 5 : 3;
  const std::string text = make_log_text(smoke ? 1200 : 6000);
  const double mb = static_cast<double>(text.size()) / 1e6;

  collect::HostLog header;
  const std::size_t body_off = header.parse_header(text);
  const std::string_view body = std::string_view(text).substr(body_off);

  const double legacy_s = best_of(reps, [&] {
    collect::HostLog log = header;
    legacy_parse_records(log, body);
    benchmark::DoNotOptimize(log.records.size());
  });
  const double parse_s = best_of(reps, [&] {
    benchmark::DoNotOptimize(collect::HostLog::parse(text).records.size());
  });

  const auto view_parse_s = [&](util::ScanMode mode) {
    collect::RecordViewParser parser(
        collect::RecordViewParser::Options{mode,
                                           util::Arena::kDefaultChunkBytes});
    return best_of(reps, [&] {
      CountingSink sink;
      parser.parse_body(header, body, sink);
      benchmark::DoNotOptimize(sink.values);
    });
  };
  const util::ScanMode simd = util::detected_scan_mode();
  const double view_scalar_s = view_parse_s(util::ScanMode::Scalar);
  const double view_simd_s =
      simd == util::ScanMode::Scalar ? view_scalar_s : view_parse_s(simd);

  bench::ReproTable t;
  t.row("input", "-", bench::num(mb, 2) + " MB",
        std::string("scan mode: ") + std::string(util::scan_mode_name(simd)));
  t.row("legacy parse (split + vectors)", "baseline",
        bench::num(mb / legacy_s, 1) + " MB/s", "");
  t.row("HostLog::parse (view + arena)", "-",
        bench::num(mb / parse_s, 1) + " MB/s",
        bench::num(legacy_s / parse_s, 2) + "x legacy, still materializes");
  t.row("view parse, scalar", "-", bench::num(mb / view_scalar_s, 1) + " MB/s",
        "no materialization");
  t.row("view parse, " + std::string(util::scan_mode_name(simd)),
        ">= 3x legacy, >= scalar (acceptance)",
        bench::num(mb / view_simd_s, 1) + " MB/s",
        bench::num(legacy_s / view_simd_s, 2) + "x legacy, " +
            bench::num(view_scalar_s / view_simd_s, 2) + "x scalar");
  t.print();

  gate(legacy_s / view_simd_s >= 3.0, "view parse >= 3x legacy");
  gate(view_simd_s <= view_scalar_s, "SIMD view parse >= scalar");

  bench::BenchJson json("ingest_parse");
  json.put("input.mb", mb);
  json.put("scan.mode", std::string(util::scan_mode_name(simd)));
  json.put("parse.legacy_mb_per_s", mb / legacy_s);
  json.put("parse.hostlog_mb_per_s", mb / parse_s);
  json.put("parse.speedup_vs_legacy", legacy_s / parse_s);
  json.put("parse.view_scalar_mb_per_s", mb / view_scalar_s);
  json.put("parse.view_simd_mb_per_s", mb / view_simd_s);
  json.put("parse.simd_speedup_vs_scalar", view_scalar_s / view_simd_s);
  json.write(bench::bench_json_path("BENCH_ingest.json"));
}

void report_end_to_end() {
  bench::banner("End to end: archive -> tsdb and text -> tsdb");
  const bool smoke = bench::bench_smoke();
  const int reps = smoke ? 3 : 2;

  // The Fig. 2 archive workload (same shape bench_tsdb_interference uses
  // for its storage numbers, so the Mpoints/s are comparable).
  simhw::ClusterConfig cc;
  cc.num_nodes = smoke ? 4 : 16;
  cc.topology = simhw::Topology{2, 4, false};
  cc.phi_fraction = 0.0;
  simhw::Cluster cluster(cc);
  core::MonitorConfig mc;
  mc.start = kStart;
  mc.interval = util::kMinute;
  mc.online_analysis = false;
  core::ClusterMonitor monitor(cluster, mc);
  monitor.advance_to(kStart + (smoke ? 3 : 24) * util::kHour);
  monitor.drain();
  const auto& archive = monitor.archive();

  const auto archive_mpoints = [&](bool seal, std::size_t stage_threads) {
    std::size_t points = 0;
    const double s = best_of(reps, [&] {
      tsdb::StoreOptions so;
      if (!seal) so.block_points = 0;
      tsdb::Store store(so);
      pipeline::TsdbIngestOptions io;
      io.seal = seal;
      io.stage_threads = stage_threads;
      points = pipeline::ingest_archive_tsdb(store, archive, nullptr, io)
                   .points;
    });
    return std::pair{static_cast<double>(points) / s / 1e6, points};
  };
  const auto [raw_mpps, points] = archive_mpoints(false, 0);
  const auto [sealed_mpps, sealed_points] = archive_mpoints(true, 0);
  const auto [staged_mpps, staged_points] = archive_mpoints(true, 1);
  (void)sealed_points;
  (void)staged_points;

  // Text -> tsdb: the full pipeline from raw bytes (tokenize, validate,
  // stage, put), scalar vs detected SIMD.
  const std::string text = make_log_text(smoke ? 1200 : 6000);
  const auto text_mpoints = [&](util::ScanMode mode) {
    std::size_t tpoints = 0;
    const double s = best_of(reps, [&] {
      tsdb::Store store;
      pipeline::TsdbIngestOptions io;
      io.scan = mode;
      tpoints = pipeline::ingest_text_tsdb(store, text, io).points;
    });
    return static_cast<double>(tpoints) / s / 1e6;
  };
  const util::ScanMode simd = util::detected_scan_mode();
  const double text_scalar_mpps = text_mpoints(util::ScanMode::Scalar);
  const double text_simd_mpps =
      simd == util::ScanMode::Scalar ? text_scalar_mpps : text_mpoints(simd);

  bench::ReproTable t;
  t.row("archive points", "-", std::to_string(points), "");
  t.row("archive -> tsdb, raw", "> 4.02 Mpoints/s (pre-PR)",
        bench::num(raw_mpps, 2) + " Mpoints/s", "");
  t.row("archive -> tsdb, sealed", "> 4.84 Mpoints/s (pre-PR)",
        bench::num(sealed_mpps, 2) + " Mpoints/s", "");
  t.row("archive -> tsdb, sealed, 1 put thread", "-",
        bench::num(staged_mpps, 2) + " Mpoints/s",
        "overlaps build with Store::put_batches");
  t.row("text -> tsdb, scalar", "-",
        bench::num(text_scalar_mpps, 2) + " Mpoints/s", "");
  t.row("text -> tsdb, " + std::string(util::scan_mode_name(simd)), "-",
        bench::num(text_simd_mpps, 2) + " Mpoints/s", "");
  t.print();

  bench::BenchJson json("ingest_e2e");
  json.put("archive.points", points);
  json.put("e2e.raw_mpoints_per_s", raw_mpps);
  json.put("e2e.sealed_mpoints_per_s", sealed_mpps);
  json.put("e2e.staged1_sealed_mpoints_per_s", staged_mpps);
  json.put("text.scalar_mpoints_per_s", text_scalar_mpps);
  json.put("text.simd_mpoints_per_s", text_simd_mpps);
  json.write(bench::bench_json_path("BENCH_ingest.json"));
}

void report() {
  report_parse_only();
  report_end_to_end();
  if (!g_gates_ok) {
    std::fputs("\nbench_ingest_parse: acceptance gate failed\n", stderr);
    std::exit(1);
  }
}

}  // namespace

TS_BENCH_MAIN(report)
