// Machine-readable benchmark results (satellite of the compressed-storage
// PR): each tsdb bench accumulates one flat section of key -> value pairs
// and merges it into BENCH_tsdb.json, so the perf trajectory (points/s,
// bytes/point, queries/s) is tracked across PRs instead of living only in
// scrollback. The file is a single JSON object of named sections; merging
// replaces this bench's section and preserves the others, so the two tsdb
// benches can both write the same file in any order.
//
// Only this writer produces the file, so the reader is a deliberately
// minimal brace-balanced scanner, not a general JSON parser.
#pragma once

#include <unistd.h>

#include <cctype>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace tacc::bench {

/// Destination path: TACC_BENCH_JSON env override, else `fallback` in the
/// working directory. Each bench family names its own fallback so files
/// stay per-subsystem (BENCH_tsdb.json, BENCH_portal.json, ...).
inline std::string bench_json_path(const std::string& fallback) {
  const char* env = std::getenv("TACC_BENCH_JSON");
  return env != nullptr && *env != '\0' ? env : fallback;
}

/// Destination path for the tsdb bench family.
inline std::string bench_json_path() {
  return bench_json_path("BENCH_tsdb.json");
}

/// True when the caller should shrink workloads to smoke-test size (the
/// CI bench-smoke job sets TACC_BENCH_SMOKE=1).
inline bool bench_smoke() {
  const char* env = std::getenv("TACC_BENCH_SMOKE");
  return env != nullptr && *env != '\0' && *env != '0';
}

class BenchJson {
 public:
  explicit BenchJson(std::string section) : section_(std::move(section)) {
    add_machine_context();
  }

  void put(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.8g", value);
    entries_[key] = buf;
  }
  void put(const std::string& key, std::int64_t value) {
    entries_[key] = std::to_string(value);
  }
  void put(const std::string& key, std::size_t value) {
    entries_[key] = std::to_string(value);
  }
  void put(const std::string& key, const std::string& value) {
    entries_[key] = quote(value);
  }

  /// Merges this section into `path` (default bench_json_path()),
  /// replacing any previous run's section of the same name. Returns false
  /// if the file could not be written.
  bool write(const std::string& path = bench_json_path()) const {
    std::map<std::string, std::string> sections = read_sections(path);
    std::ostringstream body;
    bool first = true;
    for (const auto& [k, v] : entries_) {
      body << (first ? "" : ",") << "\n    " << quote(k) << ": " << v;
      first = false;
    }
    body << "\n  ";
    sections[section_] = body.str();

    std::ofstream out(path, std::ios::trunc);
    if (!out) return false;
    out << "{";
    first = true;
    for (const auto& [name, content] : sections) {
      out << (first ? "" : ",") << "\n  " << quote(name) << ": {" << content
          << "}";
      first = false;
    }
    out << "\n}\n";
    return static_cast<bool>(out);
  }

 private:
  void add_machine_context() {
    char host[256] = "unknown";
    ::gethostname(host, sizeof(host) - 1);
    entries_["machine.hostname"] = quote(host);
    entries_["machine.cores"] =
        std::to_string(std::thread::hardware_concurrency());
#if defined(__VERSION__)
    entries_["machine.compiler"] = quote(__VERSION__);
#endif
#if defined(NDEBUG)
    entries_["machine.build"] = quote("optimized");
#else
    entries_["machine.build"] = quote("debug");
#endif
    const auto now = std::chrono::system_clock::now();
    entries_["machine.unix_time"] = std::to_string(
        std::chrono::duration_cast<std::chrono::seconds>(
            now.time_since_epoch())
            .count());
  }

  static std::string quote(const std::string& s) {
    std::string out = "\"";
    for (const char c : s) {
      switch (c) {
        case '"':
          out += "\\\"";
          break;
        case '\\':
          out += "\\\\";
          break;
        case '\n':
          out += "\\n";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
          } else {
            out += c;
          }
      }
    }
    out += '"';
    return out;
  }

  /// Splits a previously-written file into its named top-level sections
  /// (raw inner text, braces stripped). Anything unreadable is dropped —
  /// the file is regenerated wholesale on every write.
  static std::map<std::string, std::string> read_sections(
      const std::string& path) {
    std::map<std::string, std::string> sections;
    std::ifstream in(path);
    if (!in) return sections;
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();

    std::size_t pos = text.find('{');
    if (pos == std::string::npos) return sections;
    ++pos;
    for (;;) {
      const std::size_t name_start = text.find('"', pos);
      if (name_start == std::string::npos) break;
      const std::size_t name_end = text.find('"', name_start + 1);
      if (name_end == std::string::npos) break;
      const std::string name =
          text.substr(name_start + 1, name_end - name_start - 1);
      const std::size_t open = text.find('{', name_end);
      if (open == std::string::npos) break;
      int depth = 1;
      std::size_t close = open + 1;
      bool in_string = false;
      while (close < text.size() && depth > 0) {
        const char c = text[close];
        if (in_string) {
          if (c == '\\') {
            ++close;
          } else if (c == '"') {
            in_string = false;
          }
        } else if (c == '"') {
          in_string = true;
        } else if (c == '{') {
          ++depth;
        } else if (c == '}') {
          --depth;
        }
        ++close;
      }
      if (depth != 0) break;
      sections[name] = text.substr(open + 1, close - open - 2);
      pos = close;
    }
    return sections;
  }

  std::string section_;
  std::map<std::string, std::string> entries_;
};

}  // namespace tacc::bench
