// Figure 2 reproduction: the daemon-based operation mode. tacc_statsd on
// every node publishes self-describing chunks through the RabbitMQ-style
// broker; the consumer archives them the moment they arrive and feeds the
// online analyzer. The harness shows the real-time property (zero
// simulated-time latency, no loss on node failure for already-shipped
// records) and benchmarks the broker/consumer path under load.
#include "bench_common.hpp"

#include <chrono>
#include <optional>
#include <set>
#include <thread>
#include <utility>

#include "core/monitor.hpp"
#include "tsdb/store.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace tacc;

constexpr util::SimTime kStart = 1451865600LL * util::kSecond;

void report() {
  bench::banner("Fig. 2: daemon-mode transport (64 nodes, 1 simulated day)");

  simhw::ClusterConfig cc;
  cc.num_nodes = 64;
  cc.topology = simhw::Topology{2, 4, false};
  cc.phi_fraction = 0.0;
  simhw::Cluster cluster(cc);

  core::MonitorConfig mc;
  mc.mode = core::TransportMode::Daemon;
  mc.start = kStart;
  core::ClusterMonitor monitor(cluster, mc);

  long jobid = 9100;
  for (int g = 0; g < 12; ++g) {
    workload::JobSpec job;
    job.jobid = ++jobid;
    job.user = "user" + std::to_string(g % 5);
    job.profile = "wrf";
    job.exe = "wrf.exe";
    job.nodes = 4;
    job.wayness = 8;
    job.start_time = kStart + g * util::kHour;
    job.end_time = job.start_time + 4 * util::kHour;
    job.submit_time = job.start_time - util::kMinute;
    monitor.advance_to(job.start_time);
    monitor.job_started(job, {static_cast<std::size_t>(g * 5 % 64),
                              static_cast<std::size_t>((g * 5 + 1) % 64),
                              static_cast<std::size_t>((g * 5 + 2) % 64),
                              static_cast<std::size_t>((g * 5 + 3) % 64)});
  }
  monitor.advance_to(kStart + 15 * util::kHour);
  monitor.fail_node(63);
  monitor.advance_to(kStart + util::kDay);
  monitor.drain();

  const auto stats = monitor.daemon_stats();
  const auto broker_stats = monitor.broker().stats();
  const auto latency = monitor.archive().latency();

  bench::ReproTable t;
  t.row("central availability", "real time (as soon as available)",
        "max latency " + bench::num(latency.max(), 3) + " s (simulated)",
        "consumer archives on arrival");
  t.row("filesystem involvement", "none on the data path",
        "broker + consumer only", "the site-requested property");
  t.row("node-failure data loss", "only the not-yet-published sample",
        std::to_string(monitor.archive().total_records()) +
            " records survive the node-63 failure",
        "already-shipped records are safe");
  t.row("collections", "-", std::to_string(stats.collections), "");
  t.row("broker published/acked", "-",
        std::to_string(broker_stats.published) + "/" +
            std::to_string(broker_stats.acked),
        "at-least-once delivery");
  t.row("deployments", "Maverick 132, Comet 1984, Lonestar5 1278 nodes",
        "64-node simulation", "scale-down, same pipeline");

  // Downstream of the consumer: load the day's raw archive into the
  // OpenTSDB-style store, serial vs. fanned out over the thread pool
  // (knobs: workers=8, shards=16 default, batch_points=4096 default).
  const auto timed_load = [&](util::ThreadPool* pool) {
    tsdb::Store store;
    const auto t0 = std::chrono::steady_clock::now();
    const auto stats =
        pipeline::ingest_archive_tsdb(store, monitor.archive(), pool);
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    return std::pair{stats, dt.count()};
  };
  const auto [serial_stats, serial_s] = timed_load(nullptr);
  util::ThreadPool pool(8);
  const auto [par_stats, par_s] = timed_load(&pool);
  t.row("tsdb load (serial)", "-",
        bench::num(static_cast<double>(serial_stats.points) / serial_s / 1e6,
                   3) +
            " Mpoints/s",
        std::to_string(serial_stats.series) + " series, " +
            std::to_string(serial_stats.points) + " points");
  t.row("tsdb load (8 workers, batched)", "-",
        bench::num(static_cast<double>(par_stats.points) / par_s / 1e6, 3) +
            " Mpoints/s",
        "per-shard staging, put_batches flush");
  t.print();
}

// The same day under a hostile transport: 5% in-flight drops, 1% broker
// duplication, a one-hour broker outage, a depth-limited queue, and a
// consumer crash/restart — ending with the conservation equation
// delivered + dead_lettered (+ spooled) == published_unique and zero
// duplicate archive records.
void report_chaos() {
  bench::banner(
      "Fig. 2 under chaos: 5% drop, 1% dup, 1 h outage, consumer crash");

  simhw::ClusterConfig cc;
  cc.num_nodes = 32;
  cc.topology = simhw::Topology{2, 4, false};
  cc.phi_fraction = 0.0;
  simhw::Cluster cluster(cc);

  auto plan = std::make_shared<util::FaultPlan>(20160104);
  util::FaultSpec publish;
  publish.drop_rate = 0.05;
  publish.duplicate_rate = 0.01;
  publish.delay_rate = 0.05;
  publish.delay_min = util::kSecond;
  publish.delay_max = 30 * util::kSecond;
  plan->set(std::string(util::kFaultBrokerPublish), publish);
  util::FaultSpec outage;
  outage.outages.push_back(
      {kStart + 6 * util::kHour, kStart + 7 * util::kHour});
  plan->set(std::string(util::kFaultDaemonPublish), outage);
  util::FaultSpec crash;
  crash.error_rate = 0.01;
  plan->set(std::string(util::kFaultConsumerCrash), crash);

  core::MonitorConfig mc;
  mc.mode = core::TransportMode::Daemon;
  mc.start = kStart;
  mc.online_analysis = false;
  mc.fault_plan = plan;
  mc.queue_limit = 48;
  // Full dedup memory so the accounting below is exact.
  mc.consumer_options.dedup_window = 0;
  core::ClusterMonitor monitor(cluster, mc);

  monitor.advance_to(kStart + 4 * util::kHour);
  // Kill the consumer mid-day; the cluster keeps publishing into the
  // depth-limited queue (overflow dead-letters) until the restart.
  monitor.crash_consumer();
  monitor.advance_to(kStart + 5 * util::kHour);
  monitor.restart_consumer();
  monitor.advance_to(kStart + 12 * util::kHour);
  monitor.drain();

  const auto published_unique = monitor.published_unique();
  std::uint64_t delivered = 0;
  for (const auto& host : monitor.archive().hosts()) {
    delivered += monitor.archive().seen_count(host);
  }
  // Unique undelivered sequences: an injected duplicate can park two
  // copies of the same seq in the dead-letter store.
  std::set<std::pair<std::string, std::uint64_t>> dead_seqs;
  for (const auto& msg : monitor.broker().drain_dead_letters("raw_stats")) {
    if (!monitor.archive().was_seen(msg.producer, msg.seq)) {
      dead_seqs.insert({msg.producer, msg.seq});
    }
  }
  const auto dead_lettered =
      static_cast<std::uint64_t>(dead_seqs.size());
  const auto spooled = monitor.spool_depth();
  const auto r = monitor.resilience_stats();

  const bool conserved =
      delivered + dead_lettered + spooled == published_unique;
  const bool no_dups = monitor.archive().total_records() == delivered;

  bench::ReproTable t;
  t.row("published unique records", "-", std::to_string(published_unique),
        "per-host sequence numbers");
  // The delivered / dead-lettered split depends on how fast the live
  // consumer thread drains the depth-capped queue, so it varies run to
  // run; the conservation sum and every injected-fault count do not.
  t.row("delivered (archived once)", "-", std::to_string(delivered),
        "(producer, seq) dedup in the archive");
  t.row("dead-lettered (queue depth cap)", "-",
        std::to_string(dead_lettered),
        "split varies with consumer pace; sum is invariant");
  t.row("still spooled locally", "-", std::to_string(spooled),
        "replay on next broker contact");
  t.row("conservation", "delivered + dead_lettered + spooled == published",
        conserved ? "holds" : "VIOLATED", "the acceptance equation");
  t.row("duplicate archive records", "0", no_dups ? "0" : "NONZERO",
        std::to_string(r.deduped) + " duplicate deliveries absorbed");
  t.row("injected faults", "-",
        std::to_string(r.injected_drops) + " drops, " +
            std::to_string(r.injected_duplicates) + " dups, " +
            std::to_string(r.injected_delays) + " delays, " +
            std::to_string(r.injected_errors) + " errors",
        "seed 20160104, deterministic");
  t.row("recovered", "-",
        std::to_string(r.retries) + " retries, " +
            std::to_string(r.spooled) + " spooled, " +
            std::to_string(r.replayed) + " replayed, " +
            std::to_string(r.requeued) + " crash requeues",
        "backoff " + util::format_duration(
                         monitor.daemon_stats().total_backoff) +
            " (virtual)");
  t.print();
  if (!conserved || !no_dups) {
    std::fprintf(stderr,
                 "bench_fig2: resilience acceptance check FAILED\n");
    std::exit(1);
  }
}

void BM_BrokerPublishConsume(benchmark::State& state) {
  // Throughput of the broker with realistic chunk sizes (~4 KB).
  transport::Broker broker;
  broker.bind("raw", "stats.*");
  const std::string body(4096, 'x');
  std::atomic<bool> stop{false};
  std::thread consumer([&] {
    while (!stop.load()) {
      auto msg = broker.consume("raw", std::chrono::milliseconds(10));
      if (msg) broker.ack("raw", msg->delivery_tag);
    }
  });
  for (auto _ : state) {
    benchmark::DoNotOptimize(broker.publish("stats.c400-001", body));
  }
  stop.store(true);
  broker.shutdown();
  consumer.join();
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(body.size()));
}
BENCHMARK(BM_BrokerPublishConsume)->Unit(benchmark::kMicrosecond);

void BM_ChunkParse(benchmark::State& state) {
  // The consumer-side cost of parsing one self-describing chunk.
  simhw::NodeConfig nc;
  nc.topology = simhw::Topology{2, 8, false};
  simhw::Node node(nc);
  collect::HostSampler sampler(node);
  auto log = sampler.make_log();
  log.records.push_back(sampler.sample(kStart, {1}, ""));
  const std::string chunk = log.serialize();
  for (auto _ : state) {
    benchmark::DoNotOptimize(collect::HostLog::parse(chunk));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(chunk.size()));
}
BENCHMARK(BM_ChunkParse)->Unit(benchmark::kMicrosecond);

void BM_DaemonDayOn16Nodes(benchmark::State& state) {
  for (auto _ : state) {
    simhw::ClusterConfig cc;
    cc.num_nodes = 16;
    cc.topology = simhw::Topology{2, 4, false};
    cc.phi_fraction = 0.0;
    simhw::Cluster cluster(cc);
    core::MonitorConfig mc;
    mc.start = kStart;
    mc.online_analysis = false;
    core::ClusterMonitor monitor(cluster, mc);
    monitor.advance_to(kStart + 6 * util::kHour);
    monitor.drain();
    benchmark::DoNotOptimize(monitor.archive().total_records());
  }
}
BENCHMARK(BM_DaemonDayOn16Nodes)->Unit(benchmark::kMillisecond);

/// A 16-node, 6-hour archive built once and reloaded per iteration by the
/// archive -> tsdb fan-out benchmark below.
const transport::RawArchive& small_archive() {
  static simhw::Cluster* cluster = nullptr;
  static core::ClusterMonitor* monitor = nullptr;
  if (monitor == nullptr) {
    simhw::ClusterConfig cc;
    cc.num_nodes = 16;
    cc.topology = simhw::Topology{2, 4, false};
    cc.phi_fraction = 0.0;
    cluster = new simhw::Cluster(cc);
    core::MonitorConfig mc;
    mc.start = kStart;
    mc.online_analysis = false;
    monitor = new core::ClusterMonitor(*cluster, mc);
    monitor->advance_to(kStart + 6 * util::kHour);
    monitor->drain();
  }
  return monitor->archive();
}

void BM_TsdbArchiveLoad(benchmark::State& state) {
  const auto workers = static_cast<std::size_t>(state.range(0));
  const auto& archive = small_archive();
  std::optional<util::ThreadPool> pool;
  if (workers > 1) pool.emplace(workers);
  std::int64_t points = 0;
  for (auto _ : state) {
    tsdb::Store store;
    const auto stats = pipeline::ingest_archive_tsdb(
        store, archive, pool ? &*pool : nullptr);
    points = static_cast<std::int64_t>(stats.points);
    benchmark::DoNotOptimize(store.num_points());
  }
  state.SetItemsProcessed(state.iterations() * points);
}
BENCHMARK(BM_TsdbArchiveLoad)
    ->ArgNames({"workers"})
    ->Arg(1)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void report_all() {
  report();
  report_chaos();
}

}  // namespace

TS_BENCH_MAIN(report_all)
