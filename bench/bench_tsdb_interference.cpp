// Section VI-A reproduction: time-series analysis of job interference over
// the shared Lustre filesystem. The paper's plan: import the per-host
// series into OpenTSDB, tagged by (host, device type, device name, event),
// aggregate along any tag subset, and relate one user's metadata request
// rate to other users' Lustre operation wait times.
//
// The harness runs a storm job alongside victim jobs on a cluster whose
// engine models shared-MDS queueing (service time grows with the
// cluster-wide request load), loads the COLLECTED wait/request series into
// the tsdb store, and shows the correlation between the aggregate storm
// request rate and the victims' observed per-request wait — the
// interference signature the paper wants to automate. The wait inflation
// here is emergent from the collected counters, not post-processed.
#include "bench_common.hpp"

#include <bit>
#include <chrono>
#include <filesystem>
#include <tuple>

#include "bench_json.hpp"
#include "core/monitor.hpp"
#include "tsdb/store.hpp"
#include "util/clock.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace tacc;

constexpr util::SimTime kStart = 1451865600LL * util::kSecond;

struct InterferenceSetup {
  tsdb::Store store;
  std::vector<double> storm_rate;    // aggregate storm MDS reqs/s
  std::vector<double> victim_wait;   // victims' mean us per MDS op
};

/// Runs a 12-node cluster where a storm job shares the MDS with victim
/// jobs; MDS service time degrades with total request load (queueing), and
/// the per-host series land in the tsdb store.
InterferenceSetup run_interference() {
  InterferenceSetup setup;
  simhw::ClusterConfig cc;
  cc.num_nodes = 12;
  cc.topology = simhw::Topology{2, 4, false};
  cc.phi_fraction = 0.0;
  simhw::Cluster cluster(cc);

  core::MonitorConfig mc;
  mc.start = kStart;
  mc.online_analysis = false;
  core::ClusterMonitor monitor(cluster, mc);

  // Victims: two well-behaved WRF jobs on nodes 0-7.
  for (int v = 0; v < 2; ++v) {
    workload::JobSpec job;
    job.jobid = 100 + v;
    job.user = "victim" + std::to_string(v);
    job.profile = "wrf";
    job.exe = "wrf.exe";
    job.nodes = 4;
    job.wayness = 8;
    job.start_time = kStart;
    job.end_time = kStart + 6 * util::kHour;
    job.submit_time = kStart;
    monitor.job_started(job,
                        {static_cast<std::size_t>(v * 4),
                         static_cast<std::size_t>(v * 4 + 1),
                         static_cast<std::size_t>(v * 4 + 2),
                         static_cast<std::size_t>(v * 4 + 3)});
  }
  // The storm runs only in the middle third of the window.
  workload::JobSpec storm;
  storm.jobid = 999;
  storm.user = "wrfuser42";
  storm.profile = "wrf_mdstorm";
  storm.exe = "wrf.exe";
  storm.nodes = 4;
  storm.wayness = 8;
  storm.start_time = kStart + 2 * util::kHour;
  storm.end_time = kStart + 4 * util::kHour;
  storm.submit_time = storm.start_time;

  monitor.advance_to(storm.start_time);
  monitor.job_started(storm, {8, 9, 10, 11});
  monitor.advance_to(storm.end_time);
  monitor.job_ended(storm.jobid);
  monitor.advance_to(kStart + 6 * util::kHour);
  monitor.drain();

  // Import every host's COLLECTED mdc series (request rate and observed
  // per-request wait) into the tsdb with the paper's tag tuple. The wait
  // inflation during the storm comes from the engine's shared-MDS queueing,
  // carried through the raw counters.
  for (const auto& host : monitor.archive().hosts()) {
    const auto log = monitor.archive().log(host);
    const auto* schema = log.schema_for("mdc");
    if (schema == nullptr) continue;
    const auto reqs_idx = *schema->index_of("reqs");
    const auto wait_idx = *schema->index_of("wait");
    std::uint64_t prev_reqs = 0;
    std::uint64_t prev_wait = 0;
    util::SimTime prev_t = 0;
    bool have_prev = false;
    const std::string user = host >= "c400-009" ? "wrfuser42" : "victim";
    // Stage each host's two derived series and append them as whole runs:
    // the put_batch hot path resolves the series once per host instead of
    // once per point.
    tsdb::SeriesBatch reqs_batch{
        "lustre.mdc.reqs_ps",
        {{"host", host}, {"type", "mdc"}, {"event", "reqs"}, {"user", user}},
        {}};
    tsdb::SeriesBatch wait_batch{
        "lustre.mdc.wait_us",
        {{"host", host}, {"type", "mdc"}, {"event", "wait"}, {"user", user}},
        {}};
    for (const auto& rec : log.records) {
      std::uint64_t reqs = 0;
      std::uint64_t wait = 0;
      for (const auto& block : rec.blocks) {
        if (block.type == "mdc") {
          reqs += block.values[reqs_idx];
          wait += block.values[wait_idx];
        }
      }
      if (have_prev && rec.time > prev_t && reqs > prev_reqs) {
        const double dreqs = static_cast<double>(reqs - prev_reqs);
        const double rate = dreqs / util::to_seconds(rec.time - prev_t);
        const util::SimTime bucket =
            rec.time - rec.time % (10 * util::kMinute);
        reqs_batch.points.push_back({bucket, rate});
        wait_batch.points.push_back(
            {bucket, static_cast<double>(wait - prev_wait) / dreqs});
      }
      prev_reqs = reqs;
      prev_wait = wait;
      prev_t = rec.time;
      have_prev = true;
    }
    const tsdb::SeriesBatch batches[] = {std::move(reqs_batch),
                                         std::move(wait_batch)};
    setup.store.put_batches(batches);
  }

  // Extract the two aligned series via tsdb queries.
  tsdb::Query storm_q;
  storm_q.metric = "lustre.mdc.reqs_ps";
  storm_q.filters = {{"user", "wrfuser42"}};
  storm_q.aggregator = tsdb::Aggregator::Sum;
  storm_q.downsample = 10 * util::kMinute;
  tsdb::Query wait_q;
  wait_q.metric = "lustre.mdc.wait_us";
  wait_q.filters = {{"user", "victim"}};
  wait_q.aggregator = tsdb::Aggregator::Avg;
  wait_q.downsample = 10 * util::kMinute;

  std::map<util::SimTime, double> storm_by_t;
  for (const auto& r : setup.store.query(storm_q)) {
    for (const auto& p : r.points) storm_by_t[p.time] = p.value;
  }
  for (const auto& r : setup.store.query(wait_q)) {
    for (const auto& p : r.points) {
      setup.storm_rate.push_back(storm_by_t.count(p.time)
                                     ? storm_by_t[p.time]
                                     : 0.0);
      setup.victim_wait.push_back(p.value);
    }
  }
  return setup;
}

void report() {
  bench::banner(
      "Section VI-A: cross-job interference via the time-series store");
  auto setup = run_interference();
  const double r = util::pearson(
      std::span<const double>(setup.storm_rate.data(),
                              setup.storm_rate.size()),
      std::span<const double>(setup.victim_wait.data(),
                              setup.victim_wait.size()));

  const double quiet_wait = [&] {
    util::RunningStat s;
    for (std::size_t i = 0; i < setup.storm_rate.size(); ++i) {
      if (setup.storm_rate[i] < 1000.0) s.add(setup.victim_wait[i]);
    }
    return s.mean();
  }();
  const double storm_wait = [&] {
    util::RunningStat s;
    for (std::size_t i = 0; i < setup.storm_rate.size(); ++i) {
      if (setup.storm_rate[i] >= 1000.0) s.add(setup.victim_wait[i]);
    }
    return s.mean();
  }();

  bench::ReproTable t;
  t.row("series in store", "per (host, type, device, event) tuple",
        std::to_string(setup.store.num_series()) + " series, " +
            std::to_string(setup.store.num_points()) + " points",
        "tag-aggregable, OpenTSDB-style");
  t.row("storm reqs vs victim wait correlation",
        "positive (interference over shared MDS)", bench::num(r, 3),
        "emergent from collected counters, via two tsdb queries");
  t.row("victim MDS wait, quiet windows", "-",
        bench::num(quiet_wait, 4) + " us/op", "");
  t.row("victim MDS wait, storm windows", "-",
        bench::num(storm_wait, 4) + " us/op",
        "one user's jobs degrade everyone's metadata latency");
  t.print();
}

// ---- Compressed block storage + rollup read path ----
// The Fig. 2-style archive workload: a daemon-mode monitor runs a cluster
// for a simulated day and every raw counter stream is loaded into the
// time-series store. The compressed store (sealed Gorilla blocks, default
// block_points) is measured against a raw store (block_points = 0, never
// sealed — the pre-block-tier full-scan layout) for storage bytes/point
// and for whole-job downsampled aggregate queries, where buckets cover
// whole blocks and are answered from summaries (the rollup fast path).
void report_storage() {
  bench::banner(
      "Compressed block storage + rollup read path (Fig. 2 archive "
      "workload)");
  const bool smoke = bench::bench_smoke();
  const int nodes = smoke ? 4 : 16;
  const util::SimTime window = (smoke ? 3 : 24) * util::kHour;

  simhw::ClusterConfig cc;
  cc.num_nodes = nodes;
  cc.topology = simhw::Topology{2, 4, false};
  cc.phi_fraction = 0.0;
  simhw::Cluster cluster(cc);
  core::MonitorConfig mc;
  mc.start = kStart;
  // 1-minute cadence: a day of samples per series, so the read path is
  // dominated by point data (decode vs summary), not per-query overhead.
  mc.interval = util::kMinute;
  mc.online_analysis = false;
  core::ClusterMonitor monitor(cluster, mc);
  monitor.advance_to(kStart + window);
  monitor.drain();
  const auto& archive = monitor.archive();

  const auto timed_ingest = [&](const tsdb::StoreOptions& so, bool seal) {
    tsdb::Store store(so);
    pipeline::TsdbIngestOptions io;
    io.seal = seal;
    const auto t0 = std::chrono::steady_clock::now();
    const auto stats = pipeline::ingest_archive_tsdb(store, archive, nullptr,
                                                     io);
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    return std::tuple{std::move(store), stats, dt.count()};
  };

  tsdb::StoreOptions raw_opts;
  raw_opts.block_points = 0;  // never sealed: the 16 B/point raw layout
  auto [raw_store, raw_stats, raw_s] = timed_ingest(raw_opts, false);
  auto [sealed_store, sealed_stats, sealed_s] =
      timed_ingest(tsdb::StoreOptions{}, true);

  const auto storage = sealed_store.storage_stats();
  const double bytes_per_point =
      static_cast<double>(storage.sealed_bytes) /
      static_cast<double>(storage.sealed_points);

  // The acceptance query: whole-job downsampled aggregate — one bucket
  // spanning the whole window per host, answered from block summaries on
  // the sealed store and by full scan on the raw store. Max combines
  // across the several blocks a day bucket covers, so the sealed store
  // never decodes a point.
  tsdb::Query whole;
  whole.metric = "taccstats.cpu.user";
  whole.group_by = {"host"};
  whole.downsample = window;
  whole.downsample_aggregator = tsdb::Aggregator::Max;
  whole.aggregator = tsdb::Aggregator::Sum;
  // A finer query that must decode partial buckets: the honest cost of
  // reading compressed data back.
  tsdb::Query fine = whole;
  fine.downsample = 30 * util::kMinute;

  const auto queries_per_s = [&](const tsdb::Store& store,
                                 const tsdb::Query& q) {
    // Verify equivalence once, then time repeated runs.
    const int iters = smoke ? 5 : 40;
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) {
      benchmark::DoNotOptimize(store.query(q));
    }
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    return iters / dt.count();
  };
  const double rollup_qps = queries_per_s(sealed_store, whole);
  const double scan_qps = queries_per_s(raw_store, whole);
  const double fine_sealed_qps = queries_per_s(sealed_store, fine);
  const double fine_raw_qps = queries_per_s(raw_store, fine);

  bench::ReproTable t;
  t.row("archive points", "-", std::to_string(sealed_stats.points),
        std::to_string(sealed_stats.series) + " series, " +
            std::to_string(nodes) + " nodes, " +
            util::format_duration(window));
  t.row("storage, raw layout", "16 B/point", "16 B/point",
        "DataPoint = 8 B time + 8 B value");
  t.row("storage, sealed blocks", "<= 4 B/point (acceptance)",
        bench::num(bytes_per_point, 3) + " B/point",
        std::to_string(storage.sealed_blocks) + " blocks, " +
            std::to_string(storage.sealed_bytes) + " B payload");
  t.row("ingest+seal throughput", "-",
        bench::num(static_cast<double>(sealed_stats.points) / sealed_s / 1e6,
                   3) +
            " Mpoints/s",
        "raw ingest " +
            bench::num(
                static_cast<double>(raw_stats.points) / raw_s / 1e6, 3) +
            " Mpoints/s");
  t.row("whole-job aggregate, sealed", ">= 3x raw (acceptance)",
        bench::num(rollup_qps, 1) + " queries/s",
        "rollup fast path: summaries only, " +
            bench::num(rollup_qps / scan_qps, 2) + "x raw (" +
            bench::num(scan_qps, 1) + " q/s)");
  t.row("30-min downsample, sealed", "-",
        bench::num(fine_sealed_qps, 1) + " queries/s",
        "partial buckets decode; raw " + bench::num(fine_raw_qps, 1) +
            " q/s");
  t.print();

  bench::BenchJson json("tsdb_interference");
  json.put("archive.nodes", static_cast<std::int64_t>(nodes));
  json.put("archive.points", sealed_stats.points);
  json.put("archive.series", sealed_stats.series);
  json.put("ingest.sealed_mpoints_per_s",
           static_cast<double>(sealed_stats.points) / sealed_s / 1e6);
  json.put("ingest.raw_mpoints_per_s",
           static_cast<double>(raw_stats.points) / raw_s / 1e6);
  json.put("storage.raw_bytes_per_point", 16.0);
  json.put("storage.sealed_bytes_per_point", bytes_per_point);
  json.put("storage.sealed_blocks", storage.sealed_blocks);
  json.put("query.whole_job_rollup_qps", rollup_qps);
  json.put("query.whole_job_scan_qps", scan_qps);
  json.put("query.whole_job_speedup", rollup_qps / scan_qps);
  json.put("query.fine_sealed_qps", fine_sealed_qps);
  json.put("query.fine_raw_qps", fine_raw_qps);
  json.put("smoke", static_cast<std::int64_t>(smoke ? 1 : 0));
  if (!json.write()) {
    std::fprintf(stderr, "warning: could not write %s\n",
                 bench::bench_json_path().c_str());
  }
}

// ---- Durable tiered storage: disk format, recovery, tier read path ----
// The same Fig. 2 archive, this time landed in a durable store: sealed
// blocks flushed into checksummed mmap segments with 5-min/1-h downsample
// tiers, a WAL tail left unflushed, and the store reopened crash-style.
// Gates: query results byte-identical to the in-memory sealed store
// (always), primary disk bytes/point <= 1.44, and the hour-bucket tier
// read path >= 2x the in-memory decode path at full size.
void report_persistence() {
  bench::banner(
      "Durable tiered storage: disk bytes/point, crash recovery, tier "
      "reads");
  const bool smoke = bench::bench_smoke();
  const int nodes = smoke ? 4 : 16;
  const util::SimTime window = (smoke ? 3 : 24) * util::kHour;

  simhw::ClusterConfig cc;
  cc.num_nodes = nodes;
  cc.topology = simhw::Topology{2, 4, false};
  cc.phi_fraction = 0.0;
  simhw::Cluster cluster(cc);
  core::MonitorConfig mc;
  mc.start = kStart;
  mc.interval = util::kMinute;
  mc.online_analysis = false;
  core::ClusterMonitor monitor(cluster, mc);
  monitor.advance_to(kStart + window);
  monitor.drain();
  const auto& archive = monitor.archive();

  // The in-memory sealed store is the pre-persistence baseline: block
  // summaries only, every sub-block bucket decodes.
  tsdb::Store mem;
  pipeline::TsdbIngestOptions mem_io;
  mem_io.seal = true;
  pipeline::ingest_archive_tsdb(mem, archive, nullptr, mem_io);

  const std::string dir =
      (std::filesystem::temp_directory_path() / "tacc_bench_tsdb_persist")
          .string();
  std::filesystem::remove_all(dir);
  tsdb::StoreOptions dur_opts;
  dur_opts.data_dir = dir;

  // Tail of unflushed puts: lives only in the WAL, so the reopen below
  // has real replay work, not just an mmap.
  const auto put_tail = [&](tsdb::Store& store) {
    for (int h = 0; h < nodes; ++h) {
      std::vector<tsdb::DataPoint> pts;
      for (int i = 0; i < 4096; ++i) {
        pts.push_back({kStart + window + i * util::kSecond,
                       static_cast<double>(i % 97) * 0.5});
      }
      store.put_batch("bench.recovery.tail",
                      {{"host", "c400-" + std::to_string(h)}}, pts);
    }
  };

  double ingest_s = 0.0;
  tsdb::DiskStats disk;  // captured at the flushed state, pre-tail
  std::size_t flushed_points = 0;
  {
    tsdb::Store durable(dur_opts);
    pipeline::TsdbIngestOptions io;
    io.seal = true;
    io.flush = true;  // segments + rotated WAL checkpoints on disk
    const auto t0 = std::chrono::steady_clock::now();
    pipeline::ingest_archive_tsdb(durable, archive, nullptr, io);
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    ingest_s = dt.count();
    disk = durable.disk_stats();
    flushed_points = durable.num_points();
    put_tail(durable);
    // Crash-style destruction: no close(), the tail stays WAL-only.
  }
  put_tail(mem);

  const auto t0 = std::chrono::steady_clock::now();
  tsdb::Store reopened(dur_opts);
  const std::chrono::duration<double> open_dt =
      std::chrono::steady_clock::now() - t0;
  const auto& rec = reopened.recovery_info();

  // Byte-identity: the recovered durable store must answer every probe
  // exactly like the in-memory store holding the same puts — across the
  // tier fast path, the summary path, and full raw decode.
  const auto identical = [](const std::vector<tsdb::SeriesResult>& a,
                            const std::vector<tsdb::SeriesResult>& b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a[i].group_tags != b[i].group_tags ||
          a[i].points.size() != b[i].points.size()) {
        return false;
      }
      for (std::size_t p = 0; p < a[i].points.size(); ++p) {
        if (a[i].points[p].time != b[i].points[p].time ||
            std::bit_cast<std::uint64_t>(a[i].points[p].value) !=
                std::bit_cast<std::uint64_t>(b[i].points[p].value)) {
          return false;
        }
      }
    }
    return true;
  };

  tsdb::Query hour_q;  // hour buckets: tier entries vs block decode
  hour_q.metric = "taccstats.cpu.user";
  hour_q.group_by = {"host"};
  hour_q.downsample = util::kHour;
  hour_q.downsample_aggregator = tsdb::Aggregator::Max;
  tsdb::Query raw_q;  // full decode, the strongest identity probe
  raw_q.metric = "taccstats.cpu.user";
  raw_q.group_by = {"host"};
  tsdb::Query tail_q;  // WAL-replayed points
  tail_q.metric = "bench.recovery.tail";
  tail_q.group_by = {"host"};
  std::size_t checked = 0;
  for (const auto* q : {&hour_q, &raw_q, &tail_q}) {
    if (!identical(reopened.query(*q), mem.query(*q))) {
      std::fprintf(stderr,
                   "FATAL: recovered store diverges from in-memory store "
                   "on probe %zu (metric %s)\n",
                   checked, q->metric.c_str());
      std::exit(1);
    }
    ++checked;
  }

  const auto queries_per_s = [&](const tsdb::Store& store) {
    const int iters = smoke ? 20 : 60;
    const auto q0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) {
      benchmark::DoNotOptimize(store.query(hour_q));
    }
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - q0;
    return iters / dt.count();
  };
  const double tier_qps = queries_per_s(reopened);
  const double decode_qps = queries_per_s(mem);
  const double tier_speedup = tier_qps / decode_qps;

  const double disk_bpp = static_cast<double>(disk.primary_bytes()) /
                          static_cast<double>(disk.persisted_points);
  const double tier_share = static_cast<double>(disk.tier_bytes) /
                            static_cast<double>(disk.segment_bytes);

  bench::ReproTable t;
  t.row("flushed points", "-", std::to_string(flushed_points),
        std::to_string(disk.segment_files) + " segment(s), " +
            std::to_string(nodes) + " nodes, " +
            util::format_duration(window));
  t.row("disk, primary copy", "<= 1.44 B/point (acceptance)",
        bench::num(disk_bpp, 3) + " B/point",
        "segments minus tier streams, plus WAL checkpoints");
  t.row("disk, tier streams", "-",
        bench::num(tier_share * 100.0, 1) + "% of segment bytes",
        "5-min + 1-h precomputed rollups");
  t.row("ingest+seal+flush", "-",
        bench::num(static_cast<double>(flushed_points) / ingest_s / 1e6, 3) +
            " Mpoints/s",
        "archive -> sealed blocks -> segment + manifest commit");
  t.row("crash reopen", "-", bench::num(open_dt.count() * 1e3, 1) + " ms",
        std::to_string(rec.segments_loaded) + " segment(s) mmapped, " +
            std::to_string(rec.points_replayed) + " WAL points replayed, " +
            std::to_string(rec.points_skipped) + " skipped");
  t.row("hour-bucket group-by, tiers", ">= 2x decode (acceptance)",
        bench::num(tier_qps, 1) + " queries/s",
        bench::num(tier_speedup, 2) + "x the in-memory decode path (" +
            bench::num(decode_qps, 1) + " q/s)");
  t.row("recovered-vs-memory identity", "byte-identical", "byte-identical",
        "tier, raw-decode and WAL-tail probes");
  t.print();

  // The numeric gates hold at the full Fig. 2 size only: smoke's short
  // series leave per-series/per-block overhead unamortized. Identity is
  // gated (above) at every size.
  if (!smoke && disk_bpp > 1.44) {
    std::fprintf(stderr, "FATAL: primary disk bytes/point %.3f > 1.44\n",
                 disk_bpp);
    std::exit(1);
  }
  if (!smoke && tier_speedup < 2.0) {
    std::fprintf(stderr, "FATAL: tier read path %.2fx < 2x decode path\n",
                 tier_speedup);
    std::exit(1);
  }

  bench::BenchJson json("tsdb_persistence");
  json.put("archive.nodes", static_cast<std::int64_t>(nodes));
  json.put("disk.primary_bytes_per_point", disk_bpp);
  json.put("disk.segment_bytes", disk.segment_bytes);
  json.put("disk.tier_bytes", disk.tier_bytes);
  json.put("disk.wal_bytes", disk.wal_bytes);
  json.put("disk.persisted_points", disk.persisted_points);
  json.put("ingest.flush_mpoints_per_s",
           static_cast<double>(flushed_points) / ingest_s / 1e6);
  json.put("recovery.open_ms", open_dt.count() * 1e3);
  json.put("recovery.points_replayed", rec.points_replayed);
  json.put("recovery.points_skipped", rec.points_skipped);
  json.put("query.hour_tier_qps", tier_qps);
  json.put("query.hour_decode_qps", decode_qps);
  json.put("query.tier_speedup", tier_speedup);
  json.put("smoke", static_cast<std::int64_t>(smoke ? 1 : 0));
  if (!json.write()) {
    std::fprintf(stderr, "warning: could not write %s\n",
                 bench::bench_json_path().c_str());
  }
  std::filesystem::remove_all(dir);
}

void BM_TsdbPut(benchmark::State& state) {
  tsdb::Store store;
  const tsdb::TagSet tags = {
      {"host", "c400-001"}, {"type", "mdc"}, {"event", "reqs"}};
  util::SimTime t = kStart;
  for (auto _ : state) {
    store.put("m", tags, t += util::kMinute, 1.0);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TsdbPut);

// ---- Ingest throughput: the acceptance workload ----
// The same synthetic stream for every variant: kHosts hosts, each with
// kEvents series of kPoints in-order points (the shape the archive loader
// produces). The seed-equivalent baseline ingests it with per-point put()
// into a single-shard store from one thread; the batched variant stages
// per-series runs and flushes via put_batches() from N pool workers, with
// shard count and flush batch size as knobs.
constexpr int kIngestHosts = 16;
constexpr int kIngestEvents = 16;
constexpr int kIngestPoints = 512;
constexpr std::int64_t kIngestTotal =
    static_cast<std::int64_t>(kIngestHosts) * kIngestEvents * kIngestPoints;

std::string ingest_metric(int e) { return "m." + std::to_string(e); }

tsdb::TagSet ingest_tags(int h, int e) {
  return {{"host", "c400-" + std::to_string(h)},
          {"event", "ev" + std::to_string(e)}};
}

void BM_TsdbIngestSeedSerial(benchmark::State& state) {
  for (auto _ : state) {
    tsdb::Store store(tsdb::StoreOptions{1});
    for (int h = 0; h < kIngestHosts; ++h) {
      for (int e = 0; e < kIngestEvents; ++e) {
        const std::string metric = ingest_metric(e);
        const tsdb::TagSet tags = ingest_tags(h, e);
        for (int p = 0; p < kIngestPoints; ++p) {
          store.put(metric, tags, kStart + p * util::kMinute,
                    static_cast<double>(p));
        }
      }
    }
    benchmark::DoNotOptimize(store.num_points());
  }
  state.SetItemsProcessed(state.iterations() * kIngestTotal);
}
BENCHMARK(BM_TsdbIngestSeedSerial)->Unit(benchmark::kMillisecond);

void BM_TsdbIngestBatched(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  const auto shards = static_cast<std::size_t>(state.range(1));
  const auto batch = static_cast<std::size_t>(state.range(2));
  util::ThreadPool pool(threads);
  for (auto _ : state) {
    tsdb::Store store(tsdb::StoreOptions{shards});
    pool.parallel_for(kIngestHosts, [&](std::size_t h) {
      std::vector<tsdb::SeriesBatch> staged(kIngestEvents);
      for (int e = 0; e < kIngestEvents; ++e) {
        staged[e].metric = ingest_metric(e);
        staged[e].tags = ingest_tags(static_cast<int>(h), e);
      }
      std::size_t staged_points = 0;
      for (int p = 0; p < kIngestPoints; ++p) {
        for (int e = 0; e < kIngestEvents; ++e) {
          staged[e].points.push_back(
              {kStart + p * util::kMinute, static_cast<double>(p)});
        }
        staged_points += kIngestEvents;
        if (staged_points >= batch) {
          store.put_batches(staged);
          for (auto& b : staged) b.points.clear();
          staged_points = 0;
        }
      }
      store.put_batches(staged);
    });
    benchmark::DoNotOptimize(store.num_points());
  }
  state.SetItemsProcessed(state.iterations() * kIngestTotal);
}
BENCHMARK(BM_TsdbIngestBatched)
    ->ArgNames({"threads", "shards", "batch"})
    ->Args({1, 16, 4096})
    ->Args({2, 16, 4096})
    ->Args({4, 16, 4096})
    ->Args({8, 16, 4096})
    ->Args({8, 1, 4096})   // lock-striping ablation: all workers, one lock
    ->Args({8, 16, 64})    // batch-size ablation: near-per-point flushing
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

tsdb::Store build_query_store() {
  tsdb::Store store;
  for (int h = 0; h < 32; ++h) {
    for (int i = 0; i < 288; ++i) {  // one day at 5-minute cadence
      store.put("m",
                {{"host", "c400-" + std::to_string(h)},
                 {"user", h % 4 == 0 ? "storm" : "victim"}},
                kStart + i * 5 * util::kMinute, static_cast<double>(i));
    }
  }
  return store;
}

tsdb::Query group_by_query() {
  tsdb::Query q;
  q.metric = "m";
  q.group_by = {"user"};
  q.downsample = util::kHour;
  return q;
}

void BM_TsdbGroupByQuery(benchmark::State& state) {
  const tsdb::Store store = build_query_store();
  const tsdb::Query q = group_by_query();
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.query(q));
  }
}
BENCHMARK(BM_TsdbGroupByQuery)->Unit(benchmark::kMillisecond);

void BM_TsdbGroupByQueryParallel(benchmark::State& state) {
  const tsdb::Store store = build_query_store();
  const tsdb::Query q = group_by_query();
  util::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.query(q, pool));
  }
}
BENCHMARK(BM_TsdbGroupByQueryParallel)
    ->ArgNames({"threads"})
    ->Arg(2)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void report_all() {
  report();
  report_storage();
  report_persistence();
}

}  // namespace

TS_BENCH_MAIN(report_all)
