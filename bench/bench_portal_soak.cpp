// Portal serving-layer soak: drives the QueryEngine with thousands of
// concurrent mixed queries against live tsdb ingest, verifies the
// serving-layer contract (byte-identical results with the cache on or
// off and across worker counts — any mismatch exits nonzero), measures
// the warm-cache speedup on Fig. 4 histogram queries, and writes
// p50/p99 latency, sustained queries/s, and the cache hit rate into
// BENCH_portal.json (see docs/BENCHMARKS.md).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "portal/engine.hpp"
#include "tsdb/store.hpp"

namespace tacc::bench {
namespace {

using Clock = std::chrono::steady_clock;
using portal::QueryEngine;
using portal::QueryEngineOptions;
using portal::QueryRequest;
using portal::QueryResult;
using portal::QueryStatus;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct Fixture {
  db::Database database;
  std::vector<workload::JobSpec> jobs;
  tsdb::Store store;
  std::vector<std::string> users;

  explicit Fixture(int num_jobs) {
    jobs = build_population_db(database, num_jobs);
    for (const auto& j : jobs) {
      if (users.empty() || users.back() != j.user) users.push_back(j.user);
    }
    // Seed the store with a few hosts of metadata-rate series so the
    // Timeseries mix has data to aggregate.
    std::vector<tsdb::DataPoint> points;
    for (int i = 0; i < 256; ++i) {
      points.push_back({i * util::kSecond, 100.0 + i});
    }
    for (int host = 0; host < 8; ++host) {
      char name[32];
      std::snprintf(name, sizeof name, "c401-%03d", host);
      store.put_batch("mds.reqs", {{"host", name}}, points);
    }
    store.seal_all();
  }

  db::Table& table() { return database.table(pipeline::kJobsTable); }

  /// The mixed query stream: deterministic in `i`, covering every
  /// request kind the portal serves.
  QueryRequest request(std::size_t i) const {
    QueryRequest r;
    switch (i % 5) {
      case 0:
        r.kind = QueryRequest::Kind::Search;
        r.query.user = users[i % users.size()];
        break;
      case 1:
        r.kind = QueryRequest::Kind::Histograms;
        // A small rotating set of filters so histogram queries exercise
        // both the cache and the materialized summaries.
        if (i % 3 == 1) r.query.queue = "normal";
        if (i % 3 == 2) r.query.min_runtime_s = 600.0;
        break;
      case 2:
        r.kind = QueryRequest::Kind::JobDetail;
        r.jobid = jobs[i % jobs.size()].jobid;
        break;
      case 3:
        r.kind = QueryRequest::Kind::FlaggedList;
        break;
      default:
        r.kind = QueryRequest::Kind::Timeseries;
        r.ts.metric = "mds.reqs";
        r.ts.group_by = {"host"};
        r.ts.downsample = 16 * util::kSecond;
        break;
    }
    return r;
  }
};

/// Byte-identity: the same request stream must render the same bytes with
/// the cache on or off, and across 1/2/8 workers. Exits nonzero on any
/// mismatch — this is the serving-layer correctness gate, not a timing.
void check_identity(Fixture& fx) {
  banner("Serving-layer identity: cache on/off, workers 1/2/8");
  constexpr std::size_t kProbe = 50;

  std::vector<std::string> reference(kProbe);
  {
    QueryEngineOptions opt;
    opt.cache_entries = 0;  // cache off: every query computed cold
    opt.workers = 1;
    QueryEngine engine(fx.table(), &fx.store, opt);
    for (std::size_t i = 0; i < kProbe; ++i) {
      const auto r = engine.execute(fx.request(i));
      if (r.status != QueryStatus::Ok) {
        std::fprintf(stderr, "FATAL: reference query %zu -> %s (%s)\n", i,
                     portal::to_string(r.status), r.error.c_str());
        std::exit(1);
      }
      reference[i] = r.payload;
    }
  }

  std::size_t checked = 0;
  for (const std::size_t workers : {1u, 2u, 8u}) {
    QueryEngineOptions opt;
    opt.workers = workers;  // cache ON at default capacity
    QueryEngine engine(fx.table(), &fx.store, opt);
    // Two passes so the second is served warm from the cache.
    for (int pass = 0; pass < 2; ++pass) {
      std::vector<std::future<QueryResult>> futures;
      for (std::size_t i = 0; i < kProbe; ++i) {
        futures.push_back(engine.submit(fx.request(i)));
      }
      for (std::size_t i = 0; i < kProbe; ++i) {
        const auto r = futures[i].get();
        if (r.status != QueryStatus::Ok || r.payload != reference[i]) {
          std::fprintf(stderr,
                       "FATAL: divergence at query %zu (workers=%zu pass=%d "
                       "status=%s cached=%d)\n",
                       i, workers, pass, portal::to_string(r.status),
                       int(r.cached));
          std::exit(1);
        }
        ++checked;
      }
    }
  }
  std::printf("%zu results byte-identical across cache off / on-cold / "
              "on-warm and 1/2/8 workers\n",
              checked);
}

/// Warm-cache speedup on the Fig. 4 histogram query (the page the paper
/// renders on every search). The acceptance bar is >= 10x.
double measure_warm_speedup(Fixture& fx, BenchJson& json) {
  banner("Fig. 4 histogram query: cold vs warm cache");
  const int reps = bench_smoke() ? 50 : 200;
  QueryRequest req;
  req.kind = QueryRequest::Kind::Histograms;

  QueryEngineOptions cold_opt;
  cold_opt.cache_entries = 0;
  QueryEngine cold(fx.table(), &fx.store, cold_opt);
  cold.execute(req);  // materialize summaries outside the timed loop
  const auto t0 = Clock::now();
  for (int i = 0; i < reps; ++i) cold.execute(req);
  const double cold_s = seconds_since(t0);

  QueryEngine warm(fx.table(), &fx.store);
  warm.execute(req);  // fill the cache
  const auto t1 = Clock::now();
  for (int i = 0; i < reps; ++i) warm.execute(req);
  const double warm_s = seconds_since(t1);

  const double speedup = warm_s > 0.0 ? cold_s / warm_s : 0.0;
  std::printf("cold %.1f us/query, warm %.2f us/query -> %.0fx\n",
              1e6 * cold_s / reps, 1e6 * warm_s / reps, speedup);
  json.put("fig4.cold_us_per_query", 1e6 * cold_s / reps);
  json.put("fig4.warm_us_per_query", 1e6 * warm_s / reps);
  json.put("fig4.warm_speedup", speedup);
  if (speedup < 10.0) {
    std::fprintf(stderr, "FATAL: warm-cache speedup %.1fx < 10x\n", speedup);
    std::exit(1);
  }
  return speedup;
}

void store_put(Fixture& fx, const std::vector<tsdb::DataPoint>& pts,
               util::SimTime t);

/// The soak: >= 1000 queries in flight against live ingest. The ingester
/// thread keeps appending points (bumping the store epoch, invalidating
/// cached timeseries results) for the whole run.
void soak(Fixture& fx, BenchJson& json) {
  banner("Concurrent soak: mixed queries vs live ingest");
  const std::size_t total = bench_smoke() ? 2000 : 10000;
  constexpr std::size_t kWave = 1000;  // concurrent submissions per wave

  QueryEngineOptions opt;
  opt.queue_limit = 2 * kWave;  // soak measures throughput, not shedding
  QueryEngine engine(fx.table(), &fx.store, opt);

  std::atomic<bool> stop{false};
  std::thread ingester([&] {
    std::vector<tsdb::DataPoint> pts(16);
    for (util::SimTime t = 1000 * util::kSecond; !stop.load();
         t += 16 * util::kSecond) {
      for (std::size_t i = 0; i < pts.size(); ++i) {
        pts[i] = {t + util::SimTime(i) * util::kSecond, double(t % 4096)};
      }
      store_put(fx, pts, t);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  const auto t0 = Clock::now();
  std::size_t issued = 0, ok = 0, other = 0;
  while (issued < total) {
    std::vector<std::future<QueryResult>> futures;
    const std::size_t wave = std::min(kWave, total - issued);
    futures.reserve(wave);
    for (std::size_t i = 0; i < wave; ++i) {
      futures.push_back(engine.submit(fx.request(issued + i)));
    }
    for (auto& f : futures) {
      (f.get().status == QueryStatus::Ok ? ok : other)++;
    }
    issued += wave;
  }
  const double elapsed = seconds_since(t0);
  stop.store(true);
  ingester.join();

  const auto s = engine.stats();
  const double hit_rate =
      s.cache_hits + s.cache_misses > 0
          ? double(s.cache_hits) / double(s.cache_hits + s.cache_misses)
          : 0.0;
  const double qps = elapsed > 0.0 ? double(ok) / elapsed : 0.0;
  std::printf("%zu queries (%zu ok, %zu not-ok) in %.2fs -> %.0f q/s\n", issued,
              ok, other, elapsed, qps);
  std::printf("p50 %.1f us, p99 %.1f us, cache hit rate %.1f%%, "
              "store epoch %llu\n",
              s.p50_ns / 1e3, s.p99_ns / 1e3, 100.0 * hit_rate,
              static_cast<unsigned long long>(fx.store.ingest_epoch()));
  std::fputs(engine.stats_table().c_str(), stdout);

  json.put("soak.queries", issued);
  json.put("soak.concurrency", kWave);
  json.put("soak.qps", qps);
  json.put("soak.p50_ns", std::int64_t(s.p50_ns));
  json.put("soak.p99_ns", std::int64_t(s.p99_ns));
  json.put("soak.cache_hit_rate", hit_rate);
  json.put("soak.cache_evictions", s.cache_evictions);
  json.put("soak.shed", s.shed);
  json.put("soak.timed_out", s.timed_out);
  json.put("soak.failed", s.failed);
  json.put("soak.summary_rebuilds", s.summary_rebuilds);

  if (ok == 0 || other != 0) {
    std::fprintf(stderr, "FATAL: soak saw %zu non-Ok results\n", other);
    std::exit(1);
  }
}

void store_put(Fixture& fx, const std::vector<tsdb::DataPoint>& pts,
               util::SimTime t) {
  char name[32];
  std::snprintf(name, sizeof name, "c401-%03d", int(t % 8));
  fx.store.put_batch("mds.reqs", {{"host", name}}, pts);
}

void report() {
  const bool smoke = bench_smoke();
  banner(smoke ? "Portal serving-layer soak (smoke)"
               : "Portal serving-layer soak");
  Fixture fx(smoke ? 400 : 3000);
  std::printf("%zu jobs, %zu tsdb series, %zu points\n",
              fx.table().num_rows(), fx.store.num_series(),
              fx.store.num_points());

  BenchJson json("portal_soak");
  check_identity(fx);
  measure_warm_speedup(fx, json);
  soak(fx, json);
  const auto path = bench_json_path("BENCH_portal.json");
  if (json.write(path)) {
    std::printf("\nwrote %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "FATAL: could not write %s\n", path.c_str());
    std::exit(1);
  }
}

// Microbenchmarks for interactive use (the CI smoke run filters these
// out); the report above is the reproduction gate.
Fixture& shared_fixture() {
  static Fixture fx(bench_smoke() ? 400 : 3000);
  return fx;
}

void BM_WarmHistogram(benchmark::State& state) {
  auto& fx = shared_fixture();
  QueryEngine engine(fx.table(), &fx.store);
  QueryRequest req;
  req.kind = QueryRequest::Kind::Histograms;
  engine.execute(req);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.execute(req).payload);
  }
}
BENCHMARK(BM_WarmHistogram);

void BM_ColdSearch(benchmark::State& state) {
  auto& fx = shared_fixture();
  QueryEngineOptions opt;
  opt.cache_entries = 0;
  QueryEngine engine(fx.table(), &fx.store, opt);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.execute(fx.request(i * 5)).payload);
    ++i;
  }
}
BENCHMARK(BM_ColdSearch);

}  // namespace
}  // namespace tacc::bench

TS_BENCH_MAIN(tacc::bench::report)
