// Figure 3 reproduction: the web-portal search surface. The portal queries
// combine metadata filters with up to three metric Search fields
// (name + operator suffix + threshold). The harness runs the same example
// searches the paper describes against a populated jobs database, prints a
// result listing plus the flagged sublist, and benchmarks query latency
// (indexed metadata lookups versus metric range scans).
#include "bench_common.hpp"

#include "portal/search.hpp"
#include "portal/views.hpp"
#include "xalt/xalt.hpp"

namespace {

using namespace tacc;

db::Database& shared_db() {
  static db::Database database;
  static bool built = false;
  if (!built) {
    const auto jobs = bench::build_population_db(database, 3000);
    auto& xalt_table = xalt::create_xalt_table(database);
    for (const auto& spec : jobs) {
      xalt::ingest_record(xalt_table, xalt::synthesize_record(spec));
    }
    built = true;
  }
  return database;
}

void report() {
  bench::banner("Fig. 3: portal searches (metadata + metric search fields)");
  auto& jobs = shared_db().table(pipeline::kJobsTable);
  std::printf("jobs table: %zu rows (population scaled ~1:20 vs the paper's "
              "404,002-job quarter)\n\n",
              jobs.num_rows());

  // The paper's front-page example: all wrf.exe jobs in a date window with
  // a minimum runtime.
  portal::PortalQuery wrf;
  wrf.exe = "wrf.exe";
  wrf.date_start = util::make_time(2016, 1, 1);
  wrf.date_end = util::make_time(2016, 1, 15);
  wrf.min_runtime_s = 600.0;
  const auto wrf_rows = portal::run_query(jobs, wrf);
  std::printf("Search: exe=wrf.exe, 2016-01-01..2016-01-14, runtime>10m\n");
  std::fputs(portal::job_list_view(jobs, wrf_rows, 10).c_str(), stdout);
  std::printf("\n");
  std::fputs(portal::flagged_sublist(jobs, wrf_rows, 10).c_str(), stdout);

  // Metric search fields, one per threshold query of section V-A.
  struct Example {
    const char* label;
    portal::PortalQuery query;
  };
  std::vector<Example> examples;
  {
    portal::PortalQuery q;
    q.search_fields = {"MetaDataRate__gte=10000"};
    examples.push_back({"high metadata rates", q});
  }
  {
    portal::PortalQuery q;
    q.search_fields = {"GigEBW__gte=1"};
    examples.push_back({"heavy GigE traffic (user MPI over Ethernet)", q});
  }
  {
    portal::PortalQuery q;
    q.queue = "largemem";
    q.search_fields = {"MemUsage__lt=64"};
    examples.push_back({"largemem queue, under 64 GB used", q});
  }
  {
    portal::PortalQuery q;
    q.search_fields = {"idle__lt=0.15"};
    examples.push_back({"idle nodes (min/max CPU_Usage < 0.15)", q});
  }
  {
    portal::PortalQuery q;
    q.search_fields = {"cpi__gt=3"};
    examples.push_back({"high cycles per instruction", q});
  }
  std::printf("\nThreshold searches:\n");
  util::TextTable t;
  t.header({"Search", "Fields", "Jobs"});
  for (const auto& ex : examples) {
    t.row({ex.label,
           ex.query.search_fields.empty() ? "-"
                                          : ex.query.search_fields.front(),
           std::to_string(portal::run_query(jobs, ex.query).size())});
  }
  std::fputs(t.render().c_str(), stdout);

  // Job-ID direct lookup (the upper-right field in Fig. 3), with the XALT
  // environment section the paper mentions.
  portal::PortalQuery byid;
  byid.jobid = jobs.at(0, "jobid").as_int();
  const auto row = portal::run_query(jobs, byid);
  std::printf("\nJob ID lookup -> detail view (XALT enabled):\n\n");
  std::fputs(portal::job_detail_view(
                 jobs, row.front(), &shared_db().table(xalt::kXaltTable))
                 .c_str(),
             stdout);
}

void BM_IndexedExeQuery(benchmark::State& state) {
  auto& jobs = shared_db().table(pipeline::kJobsTable);
  portal::PortalQuery q;
  q.exe = "wrf.exe";
  for (auto _ : state) {
    benchmark::DoNotOptimize(portal::run_query(jobs, q));
  }
}
BENCHMARK(BM_IndexedExeQuery)->Unit(benchmark::kMicrosecond);

void BM_MetricRangeScan(benchmark::State& state) {
  auto& jobs = shared_db().table(pipeline::kJobsTable);
  portal::PortalQuery q;
  q.search_fields = {"VecPercent__gt=0.5"};
  for (auto _ : state) {
    benchmark::DoNotOptimize(portal::run_query(jobs, q));
  }
}
BENCHMARK(BM_MetricRangeScan)->Unit(benchmark::kMicrosecond);

void BM_ThreeFieldSearch(benchmark::State& state) {
  auto& jobs = shared_db().table(pipeline::kJobsTable);
  portal::PortalQuery q;
  q.exe = "wrf.exe";
  q.search_fields = {"CPU_Usage__lt=0.75", "MetaDataRate__gte=100",
                     "nodes__gte=4"};
  for (auto _ : state) {
    benchmark::DoNotOptimize(portal::run_query(jobs, q));
  }
}
BENCHMARK(BM_ThreeFieldSearch)->Unit(benchmark::kMicrosecond);

void BM_AggregateAvgOverSelection(benchmark::State& state) {
  auto& jobs = shared_db().table(pipeline::kJobsTable);
  const auto rows = jobs.select({});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        jobs.aggregate(db::Agg::Avg, "CPU_Usage", rows));
  }
}
BENCHMARK(BM_AggregateAvgOverSelection)->Unit(benchmark::kMicrosecond);

}  // namespace

TS_BENCH_MAIN(report)
