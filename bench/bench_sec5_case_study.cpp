// Section V-B reproduction: the Lustre I/O case study. Paper numbers
// (Q4 2015):
//   * the storm user's 105 WRF jobs: 67% CPU_Usage, MetaDataRate 563,905
//     reqs/s, LLiteOpenClose 30,884/s;
//   * the WRF population (16,741 jobs): 80% CPU_Usage, MetaDataRate 3,870,
//     LLiteOpenClose 2/s;
//   * over 110,438 production jobs: corr(CPU_Usage, MDCReqs) = -0.11,
//     corr(CPU_Usage, OSCReqs) = -0.20, corr(CPU_Usage, LnetAveBW) = -0.19.
#include "bench_common.hpp"

#include "util/stats.hpp"

namespace {

using namespace tacc;

db::Database& shared_db() {
  static db::Database database;
  static bool built = false;
  if (!built) {
    bench::build_population_db(database, 3000);
    built = true;
  }
  return database;
}

std::vector<db::RowId> production_rows(const db::Table& jobs) {
  std::vector<db::RowId> out;
  for (const auto id :
       jobs.select({{"status", db::Op::Eq, db::Value("COMPLETED")},
                    {"runtime", db::Op::Gt, db::Value(3600.0)}})) {
    const auto queue = jobs.at(id, "queue").as_text();
    if (queue == "normal" || queue == "largemem") out.push_back(id);
  }
  return out;
}

double correlate(const db::Table& jobs, const std::vector<db::RowId>& rows,
                 const char* metric) {
  std::vector<double> x, y;
  for (const auto id : rows) {
    const auto& cpu = jobs.at(id, "CPU_Usage");
    const auto& v = jobs.at(id, metric);
    if (cpu.is_null() || v.is_null()) continue;
    x.push_back(cpu.as_real());
    y.push_back(v.as_real());
  }
  return util::pearson(std::span<const double>(x.data(), x.size()),
                       std::span<const double>(y.data(), y.size()));
}

void report() {
  bench::banner("Section V-B: the Lustre metadata-storm case study");
  auto& jobs = shared_db().table(pipeline::kJobsTable);

  const auto storm =
      jobs.select({{"user", db::Op::Eq, db::Value("wrfuser42")}});
  std::vector<db::RowId> wrf_rest;
  for (const auto id :
       jobs.select({{"exe", db::Op::Eq, db::Value("wrf.exe")}})) {
    if (jobs.at(id, "user").as_text() != "wrfuser42") {
      wrf_rest.push_back(id);
    }
  }
  auto avg = [&](const char* metric, const std::vector<db::RowId>& rows) {
    return jobs.aggregate(db::Agg::Avg, metric, rows);
  };

  bench::ReproTable cohort;
  cohort.row("storm user's WRF jobs", "105", std::to_string(storm.size()),
             "kept at absolute scale");
  cohort.row("WRF population jobs", "16,741", std::to_string(wrf_rest.size()),
             "scaled ~1:20");
  cohort.row("storm CPU_Usage", "67%",
             bench::pct(avg("CPU_Usage", storm)), "");
  cohort.row("WRF population CPU_Usage", "80%",
             bench::pct(avg("CPU_Usage", wrf_rest)), "");
  cohort.row("storm MetaDataRate", "563,905 reqs/s",
             bench::num(avg("MetaDataRate", storm), 6),
             "open/close per loop iteration");
  cohort.row("WRF population MetaDataRate", "3,870 reqs/s",
             bench::num(avg("MetaDataRate", wrf_rest), 4), "");
  cohort.row("storm LLiteOpenClose", "30,884 /s",
             bench::num(avg("LLiteOpenClose", storm), 6), "");
  cohort.row("WRF population LLiteOpenClose", "2 /s",
             bench::num(avg("LLiteOpenClose", wrf_rest), 3), "");
  cohort.print();

  const auto production = production_rows(jobs);
  std::printf("\nProduction-job correlations with CPU_Usage (paper: the\n"
              "principal predictor of poor CPU utilization is Lustre I/O):\n\n");
  bench::ReproTable corr;
  corr.row("production jobs", "110,438", std::to_string(production.size()),
           "completed, production queues, > 1 h");
  corr.row("corr(CPU_Usage, MDCReqs)", "-0.11",
           bench::num(correlate(jobs, production, "MDCReqs"), 3), "");
  corr.row("corr(CPU_Usage, OSCReqs)", "-0.20",
           bench::num(correlate(jobs, production, "OSCReqs"), 3), "");
  corr.row("corr(CPU_Usage, LnetAveBW)", "-0.19",
           bench::num(correlate(jobs, production, "LnetAveBW"), 3), "");
  corr.print();
  std::printf(
      "\nShape check: all three correlations are negative, OSC/LNET couple\n"
      "more strongly than MDC, and the storm cohort sits orders of\n"
      "magnitude above the WRF population on both metadata metrics while\n"
      "paying a double-digit CPU_Usage penalty.\n");
}

void BM_CohortAggregation(benchmark::State& state) {
  auto& jobs = shared_db().table(pipeline::kJobsTable);
  for (auto _ : state) {
    const auto storm =
        jobs.select({{"user", db::Op::Eq, db::Value("wrfuser42")}});
    benchmark::DoNotOptimize(
        jobs.aggregate(db::Agg::Avg, "MetaDataRate", storm));
  }
}
BENCHMARK(BM_CohortAggregation)->Unit(benchmark::kMicrosecond);

void BM_ProductionCorrelation(benchmark::State& state) {
  auto& jobs = shared_db().table(pipeline::kJobsTable);
  const auto production = production_rows(jobs);
  for (auto _ : state) {
    benchmark::DoNotOptimize(correlate(jobs, production, "OSCReqs"));
  }
}
BENCHMARK(BM_ProductionCorrelation)->Unit(benchmark::kMicrosecond);

}  // namespace

TS_BENCH_MAIN(report)
