// Hierarchical aggregation transport at scale: sharded leaf brokers +
// aggregator tiers pre-reducing same-window per-host batches into coalesced
// frames, against the flat single-broker pipeline.
//
// Phase 1 — root ingest throughput. The same synthetic workload (header-
// heavy host logs: the header is ~20x the record, as on real nodes with
// dozens of schemas) is staged once into a flat root queue and once through
// a tree whose aggregators coalesce each host's records behind a single
// header copy. The consumer's drain of the root is timed in isolation both
// ways. The tree wins on two axes: the root sees ~records/batch fewer
// messages (fewer lock acquisitions, fewer header bytes), and the consumer
// parses each host's header once per frame instead of once per record.
// Gate (full size, 10k nodes): tree root throughput >= 5x flat.
// Gate (all sizes): coalescing ratio >= 4 records per root message.
//
// Phase 2 — scale-out soak. 100k simulated nodes (smoke: 2k) publish
// window after window through a 3-tier tree with watermark backpressure and
// a chaos plan (broker drops/dups, aggregator publish failures, aggregator
// crashes) while a live consumer drains the root. Gates: exact conservation
// (archived + dead-lettered + spooled == published), zero duplicates in the
// archive, per-tier ResilienceStats rows summing field-by-field to the
// tree-wide totals, and pause/resume accounting balancing to zero.
//
// Results land in BENCH_transport.json; any gate failure exits nonzero so
// the CI bench-smoke job fails loudly.
#include "bench_common.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "bench_json.hpp"
#include "collect/rawfile.hpp"
#include "transport/archive.hpp"
#include "transport/broker.hpp"
#include "transport/consumer.hpp"
#include "transport/frame.hpp"
#include "transport/topology.hpp"
#include "util/clock.hpp"
#include "util/fault.hpp"

namespace {

using namespace tacc;

constexpr util::SimTime kStart = 1451865600LL * util::kSecond;
constexpr const char* kQueue = "raw_stats";

bool g_gates_ok = true;

void gate(bool ok, const std::string& what) {
  std::printf("  gate %-52s %s\n", what.c_str(), ok ? "PASS" : "FAIL");
  if (!ok) g_gates_ok = false;
}

/// A header-heavy host log: 12 schemas x 8 keys (~1.3 KB of header) and
/// small 8-counter records, the shape that makes per-record header
/// shipping expensive and coalescing worthwhile.
collect::HostLog make_host_log(const std::string& host) {
  collect::HostLog log;
  log.hostname = host;
  log.arch = "synth";
  for (int s = 0; s < 12; ++s) {
    std::vector<collect::SchemaEntry> entries;
    for (int k = 0; k < 8; ++k) {
      entries.push_back({"counter" + std::to_string(k), true, 64, "events",
                         1.0});
    }
    log.schemas.emplace_back("dev" + std::to_string(s), std::move(entries));
  }
  log.reindex_schemas();
  return log;
}

collect::Record make_record(std::size_t host_id, std::uint64_t seq,
                            util::SimTime t) {
  collect::Record rec;
  rec.time = t;
  rec.jobids = {424242};
  collect::RawBlock b;
  b.type = "dev0";
  b.device = "0";
  for (std::uint64_t k = 0; k < 8; ++k) {
    b.values.push_back(host_id * 1000 + seq * 8 + k);
  }
  rec.blocks.push_back(std::move(b));
  return rec;
}

std::string host_name(std::size_t i) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "synth-%06zu", i);
  return buf;
}

/// Pre-serialized per-host bodies for one workload: bodies[h][r] is the
/// header + one record, ready to publish.
struct Workload {
  std::vector<std::string> hosts;
  std::vector<std::vector<std::string>> bodies;
  std::vector<std::vector<util::SimTime>> times;
  std::size_t total_records = 0;
  std::size_t bytes = 0;
};

Workload make_workload(std::size_t nodes, std::size_t records) {
  Workload w;
  w.hosts.reserve(nodes);
  w.bodies.resize(nodes);
  w.times.resize(nodes);
  for (std::size_t h = 0; h < nodes; ++h) {
    w.hosts.push_back(host_name(h));
    const auto log = make_host_log(w.hosts[h]);
    const std::string header = log.serialize_header();
    w.bodies[h].reserve(records);
    w.times[h].reserve(records);
    for (std::uint64_t r = 0; r < records; ++r) {
      // 3-minute cadence keeps a host's records inside one 1h window.
      const auto t = kStart + static_cast<util::SimTime>(r) * 3 * util::kMinute;
      w.bodies[h].push_back(
          header +
          collect::HostLog::serialize_record(make_record(h, r + 1, t)));
      w.times[h].push_back(t);
      w.bytes += w.bodies[h].back().size();
      ++w.total_records;
    }
  }
  return w;
}

double wall_seconds(const std::chrono::steady_clock::time_point t0) {
  const std::chrono::duration<double> dt =
      std::chrono::steady_clock::now() - t0;
  return dt.count();
}

struct RootDrain {
  double seconds = 0;
  std::size_t root_messages = 0;
  std::size_t archived = 0;
};

/// Flat baseline: every chunk is staged into the root queue, then a fresh
/// consumer's drain is timed.
RootDrain run_flat(const Workload& w) {
  transport::Broker broker;
  broker.declare_queue(kQueue);
  broker.bind(kQueue, "stats.*");
  for (std::size_t h = 0; h < w.hosts.size(); ++h) {
    for (std::size_t r = 0; r < w.bodies[h].size(); ++r) {
      transport::PublishInfo info;
      info.producer = w.hosts[h];
      info.seq = r + 1;
      info.now = w.times[h][r];
      broker.publish("stats." + w.hosts[h], w.bodies[h][r], info);
    }
  }
  RootDrain out;
  out.root_messages = broker.depth(kQueue);
  transport::RawArchive archive;
  transport::ConsumerOptions copts;
  copts.dedup_window = 0;
  const auto t0 = std::chrono::steady_clock::now();
  transport::Consumer consumer(broker, archive, kQueue, nullptr, copts,
                               nullptr);
  consumer.drain();
  out.seconds = wall_seconds(t0);
  out.archived = archive.total_records();
  consumer.stop();
  return out;
}

/// Tree: chunks enter at the leaf shards, aggregators coalesce them into
/// frames that settle in the root queue (quiesce), then the root drain is
/// timed — same stage of the pipeline as the flat baseline.
RootDrain run_tree(const Workload& w, std::size_t leaves, std::size_t fanout) {
  transport::TreeOptions opts;
  opts.leaf_brokers = leaves;
  opts.fanout = fanout;
  opts.batch_records = 64;
  opts.window = util::kHour;
  transport::AggregationTree tree(kQueue, opts, nullptr);
  for (std::size_t h = 0; h < w.hosts.size(); ++h) {
    transport::Broker& leaf = tree.leaf_for(w.hosts[h]);
    for (std::size_t r = 0; r < w.bodies[h].size(); ++r) {
      transport::PublishInfo info;
      info.producer = w.hosts[h];
      info.seq = r + 1;
      info.now = w.times[h][r];
      leaf.publish("stats." + w.hosts[h], w.bodies[h][r], info);
    }
  }
  tree.quiesce();  // every record is now a frame in the root queue
  RootDrain out;
  out.root_messages = tree.root().depth(kQueue);
  transport::RawArchive archive;
  transport::ConsumerOptions copts;
  copts.dedup_window = 0;
  const auto t0 = std::chrono::steady_clock::now();
  transport::Consumer consumer(tree.root(), archive, kQueue, nullptr, copts,
                               nullptr);
  consumer.drain();
  out.seconds = wall_seconds(t0);
  out.archived = archive.total_records();
  tree.stop();
  consumer.stop();
  return out;
}

void report_phase1(bench::BenchJson& json) {
  const bool smoke = bench::bench_smoke();
  const std::size_t nodes = smoke ? 500 : 10000;
  const std::size_t records = smoke ? 8 : 16;
  bench::banner("Phase 1: root ingest throughput, flat vs tree (" +
                std::to_string(nodes) + " nodes x " +
                std::to_string(records) + " records)");
  const Workload w = make_workload(nodes, records);
  const int reps = 2;

  RootDrain flat;
  RootDrain tree;
  for (int i = 0; i < reps; ++i) {
    const auto f = run_flat(w);
    if (i == 0 || f.seconds < flat.seconds) flat = f;
    const auto t = run_tree(w, 8, 8);
    if (i == 0 || t.seconds < tree.seconds) tree = t;
  }

  const double flat_rps = static_cast<double>(flat.archived) / flat.seconds;
  const double tree_rps = static_cast<double>(tree.archived) / tree.seconds;
  const double speedup = tree_rps / flat_rps;
  const double coalesce =
      static_cast<double>(w.total_records) /
      static_cast<double>(tree.root_messages);

  bench::ReproTable t;
  t.row("workload", "-",
        bench::num(static_cast<double>(w.bytes) / 1e6, 1) + " MB",
        std::to_string(w.total_records) + " records, header-heavy");
  t.row("flat: root messages", "-", std::to_string(flat.root_messages),
        "one header per record");
  t.row("tree: root messages", "-", std::to_string(tree.root_messages),
        "coalesced frames");
  t.row("coalescing ratio", ">= 4 (acceptance)", bench::num(coalesce, 1),
        "records per root message");
  t.row("flat: root drain", "baseline",
        bench::num(flat_rps / 1e3, 1) + " krec/s",
        bench::num(flat.seconds, 3) + " s");
  t.row("tree: root drain", smoke ? "-" : ">= 5x flat (acceptance)",
        bench::num(tree_rps / 1e3, 1) + " krec/s",
        bench::num(speedup, 2) + "x flat");
  t.print();

  gate(flat.archived == w.total_records, "flat archives every record");
  gate(tree.archived == w.total_records, "tree archives every record");
  gate(coalesce >= 4.0, "coalescing ratio >= 4");
  if (!smoke) {
    gate(speedup >= 5.0, "tree root throughput >= 5x flat");
  }

  json.put("phase1.nodes", nodes);
  json.put("phase1.records", w.total_records);
  json.put("phase1.flat_records_per_s", flat_rps);
  json.put("phase1.tree_records_per_s", tree_rps);
  json.put("phase1.speedup", speedup);
  json.put("phase1.coalesce_ratio", coalesce);
  json.put("phase1.flat_root_messages", flat.root_messages);
  json.put("phase1.tree_root_messages", tree.root_messages);
}

/// Field-by-field sum of per-tier resilience rows — deliberately not via
/// merge(), so the rollup gate is an independent accumulator.
util::ResilienceStats sum_rows(const std::vector<transport::TierStats>& rows) {
  util::ResilienceStats t;
  for (const auto& row : rows) {
    const auto& s = row.resilience;
    t.injected_drops += s.injected_drops;
    t.injected_duplicates += s.injected_duplicates;
    t.injected_delays += s.injected_delays;
    t.injected_errors += s.injected_errors;
    t.retries += s.retries;
    t.spooled += s.spooled;
    t.replayed += s.replayed;
    t.spool_dropped += s.spool_dropped;
    t.dead_lettered += s.dead_lettered;
    t.requeued += s.requeued;
    t.deduped += s.deduped;
    t.paused_windows += s.paused_windows;
    t.resumed_windows += s.resumed_windows;
  }
  return t;
}

void report_phase2(bench::BenchJson& json) {
  const bool smoke = bench::bench_smoke();
  const std::size_t nodes = smoke ? 2000 : 100000;
  const std::size_t windows = 4;
  bench::banner("Phase 2: scale-out soak, " + std::to_string(nodes) +
                " simulated nodes, 3-tier tree, chaos + backpressure");

  auto plan = std::make_shared<util::FaultPlan>(20160104);
  util::FaultSpec publish;
  publish.drop_rate = 0.02;
  publish.duplicate_rate = 0.02;
  plan->set(std::string(util::kFaultBrokerPublish), publish);
  util::FaultSpec agg_publish;
  agg_publish.error_rate = 0.05;
  plan->set(std::string(util::kFaultAggregatorPublish), agg_publish);
  util::FaultSpec agg_crash;
  agg_crash.error_rate = 0.02;
  plan->set(std::string(util::kFaultAggregatorCrash), agg_crash);

  transport::TreeOptions opts;
  opts.leaf_brokers = 16;
  opts.fanout = 4;  // 16 -> 4 -> 1
  opts.batch_records = 64;
  opts.window = util::kHour;
  opts.high_watermark = smoke ? 64 : 1024;
  transport::AggregationTree tree(kQueue, opts, plan);
  transport::RawArchive archive;
  transport::ConsumerOptions copts;
  copts.dedup_window = 0;
  transport::Consumer consumer(tree.root(), archive, kQueue, nullptr, copts,
                               plan);

  // Precompute shard assignment and headers once; the publish loop below
  // simulates the daemon fleet (with the daemon's retry-on-drop behavior).
  std::vector<transport::Broker*> leaf(nodes);
  std::vector<std::string> headers(nodes);
  std::vector<std::string> keys(nodes);
  std::vector<std::string> hosts(nodes);
  for (std::size_t h = 0; h < nodes; ++h) {
    hosts[h] = host_name(h);
    leaf[h] = &tree.leaf_for(hosts[h]);
    headers[h] = make_host_log(hosts[h]).serialize_header();
    keys[h] = "stats." + hosts[h];
  }

  const auto t0 = std::chrono::steady_clock::now();
  std::size_t published = 0;
  for (std::uint64_t w = 0; w < windows; ++w) {
    const auto t = kStart + static_cast<util::SimTime>(w) * util::kHour;
    for (std::size_t h = 0; h < nodes; ++h) {
      const std::string body =
          headers[h] +
          collect::HostLog::serialize_record(make_record(h, w + 1, t));
      for (std::uint32_t attempt = 0; attempt < 10; ++attempt) {
        transport::PublishInfo info;
        info.producer = hosts[h];
        info.seq = w + 1;
        info.attempt = attempt;
        info.now = t;
        if (leaf[h]->publish(keys[h], body, info) > 0) {
          ++published;
          break;
        }
      }
    }
  }
  tree.quiesce();
  consumer.drain();
  const double seconds = wall_seconds(t0);
  const double rps = static_cast<double>(published) / seconds;

  // --- Conservation (exact) -------------------------------------------
  std::size_t archived_unique = 0;
  for (const auto& host : archive.hosts()) {
    archived_unique += archive.seen_count(host);
  }
  std::set<std::pair<std::string, std::uint64_t>> dead_unique;
  for (const auto& msg : tree.drain_all_dead_letters()) {
    for (const auto& [producer, seq] : transport::AggFrame::message_seqs(msg)) {
      if (!archive.was_seen(producer, seq)) dead_unique.insert({producer, seq});
    }
  }
  const std::size_t spooled_now = tree.spool_records();
  const bool conserved =
      archived_unique + dead_unique.size() + spooled_now == published;

  // --- Per-tier rollup (exact) ----------------------------------------
  const auto rows = tree.tier_stats();
  const auto summed = sum_rows(rows);
  const auto total = tree.resilience();
  const bool rollup_exact = summed == total;

  util::TextTable topo;
  topo.header({"tier", "brokers", "aggs", "paused", "resumed", "requeued",
               "spooled", "replayed"});
  for (const auto& row : rows) {
    topo.row({std::to_string(row.tier), std::to_string(row.brokers),
              std::to_string(row.aggregators),
              std::to_string(row.resilience.paused_windows),
              std::to_string(row.resilience.resumed_windows),
              std::to_string(row.resilience.requeued),
              std::to_string(row.resilience.spooled),
              std::to_string(row.resilience.replayed)});
  }
  std::fputs(topo.render().c_str(), stdout);

  bench::ReproTable t;
  t.row("nodes x windows", "-",
        std::to_string(nodes) + " x " + std::to_string(windows),
        std::to_string(published) + " records published");
  t.row("end-to-end throughput", "-", bench::num(rps / 1e3, 1) + " krec/s",
        bench::num(seconds, 2) + " s wall");
  t.row("archived unique", "== published - dead - spooled",
        std::to_string(archived_unique),
        "dead " + std::to_string(dead_unique.size()) + ", spooled " +
            std::to_string(spooled_now));
  t.row("pause/resume transitions", "balanced",
        std::to_string(total.paused_windows) + " / " +
            std::to_string(total.resumed_windows),
        "deduped " + std::to_string(total.deduped + consumer.resilience()
                                                        .deduped));
  t.print();

  gate(conserved, "conservation: archived + dead + spooled == published");
  gate(archive.total_records() == archived_unique,
       "zero duplicates in the archive");
  gate(rollup_exact, "tier rows sum exactly to tree-wide resilience");
  gate(total.paused_windows == total.resumed_windows,
       "every pause matched by a resume");

  json.put("phase2.nodes", nodes);
  json.put("phase2.published", published);
  json.put("phase2.archived", archived_unique);
  json.put("phase2.records_per_s", rps);
  json.put("phase2.paused_windows", total.paused_windows);
  json.put("phase2.resumed_windows", total.resumed_windows);
  json.put("phase2.requeued", total.requeued);
  json.put("phase2.deduped",
           total.deduped + consumer.resilience().deduped);
  json.put("phase2.aggregator_spooled", total.spooled);

  tree.stop();
  consumer.stop();
}

void report() {
  bench::BenchJson json("tree_scaleout");
  report_phase1(json);
  report_phase2(json);
  json.write(bench::bench_json_path("BENCH_transport.json"));
  if (!g_gates_ok) {
    std::fputs("\nbench_tree_scaleout: acceptance gate failed\n", stderr);
    std::exit(1);
  }
}

}  // namespace

TS_BENCH_MAIN(report)
