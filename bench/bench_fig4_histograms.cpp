// Figure 4 reproduction: the automatic query histograms. The paper's
// example search — all wrf.exe jobs on Stampede, Jan 1-14 2016, runtime
// over 10 minutes — returned 558 jobs, and the portal rendered histograms
// of jobs versus runtime, nodes, queue wait time, and maximum metadata
// requests, with the storm user's jobs visible as MetaDataRate outliers.
#include "bench_common.hpp"

#include "portal/search.hpp"
#include "portal/views.hpp"

namespace {

using namespace tacc;

db::Database& shared_db() {
  static db::Database database;
  static bool built = false;
  if (!built) {
    bench::build_population_db(database, 4000);
    built = true;
  }
  return database;
}

std::vector<db::RowId> wrf_rows() {
  auto& jobs = shared_db().table(pipeline::kJobsTable);
  portal::PortalQuery q;
  q.exe = "wrf.exe";
  q.date_start = util::make_time(2016, 1, 1);
  q.date_end = util::make_time(2016, 1, 15);
  q.min_runtime_s = 600.0;
  return portal::run_query(jobs, q);
}

void report() {
  bench::banner(
      "Fig. 4: query histograms for the wrf.exe search, Jan 1-14 2016, "
      "runtime > 10 min");
  auto& jobs = shared_db().table(pipeline::kJobsTable);
  const auto rows = wrf_rows();

  bench::ReproTable t;
  t.row("matching jobs", "558", std::to_string(rows.size()),
        "population scaled ~1:20 vs the paper's quarter");
  int outliers = 0;
  for (const auto id : rows) {
    const auto& v = jobs.at(id, "MetaDataRate");
    if (!v.is_null() && v.as_real() > 100000.0) ++outliers;
  }
  t.row("MetaDataRate outliers", "visible, attributable to one user",
        std::to_string(outliers) + " jobs > 100k reqs/s",
        "all from the storm user");
  t.print();
  std::printf("\n");
  std::fputs(portal::query_histograms(jobs, rows).c_str(), stdout);
  std::printf(
      "The outlier bins at the top of the metadata histogram are the\n"
      "section V-B user's open/close-per-iteration WRF jobs.\n");
}

void BM_HistogramGeneration(benchmark::State& state) {
  auto& jobs = shared_db().table(pipeline::kJobsTable);
  const auto rows = wrf_rows();
  for (auto _ : state) {
    benchmark::DoNotOptimize(portal::query_histograms(jobs, rows));
  }
}
BENCHMARK(BM_HistogramGeneration)->Unit(benchmark::kMicrosecond);

void BM_SearchPlusHistograms(benchmark::State& state) {
  auto& jobs = shared_db().table(pipeline::kJobsTable);
  for (auto _ : state) {
    const auto rows = wrf_rows();
    benchmark::DoNotOptimize(portal::query_histograms(jobs, rows));
  }
}
BENCHMARK(BM_SearchPlusHistograms)->Unit(benchmark::kMicrosecond);

}  // namespace

TS_BENCH_MAIN(report)
