// Ablation harness for the design decisions DESIGN.md calls out:
//
//  A1. Wraparound correction. RAPL energy-status registers are 32 bits and
//      wrap every ~10-20 minutes at server power draws. The pipeline
//      corrects deltas modulo 2^width per interval; ablating the width
//      metadata (treating the counter as 64-bit) makes energy metrics
//      collapse to garbage at the production sampling cadence.
//  A2. Per-interval vs endpoint-only deltas. For narrow counters the ARC
//      must accumulate wrap-corrected per-interval deltas; computing the
//      job delta from the first and last records alone loses every full
//      wrap in between.
//  A3. Secondary indexes. Portal metadata lookups use the exe/user/queue
//      indexes; ablating them turns O(log n + k) lookups into full scans.
#include "bench_common.hpp"

#include "pipeline/metrics.hpp"
#include "portal/search.hpp"

namespace {

using namespace tacc;

workload::JobSpec reference_job(util::SimTime runtime) {
  workload::JobSpec job;
  job.jobid = 3107777;
  job.user = "user001";
  job.profile = "md_engine";  // steady high power
  job.exe = "namd2";
  job.nodes = 1;
  job.wayness = 16;
  job.start_time = util::make_time(2016, 1, 6, 2, 0);
  job.end_time = job.start_time + runtime;
  job.submit_time = job.start_time;
  return job;
}

/// Strips the width metadata from every schema (the A1 ablation).
pipeline::JobData ablate_widths(pipeline::JobData data) {
  for (auto& host : data.hosts) {
    std::vector<collect::Schema> widened;
    for (const auto& schema : host.schemas) {
      std::vector<collect::SchemaEntry> entries = schema.entries();
      for (auto& e : entries) e.width_bits = 64;
      widened.emplace_back(schema.type(), std::move(entries));
    }
    host.schemas = std::move(widened);
  }
  return data;
}

/// Keeps only the first and last records (the A2 ablation).
pipeline::JobData ablate_endpoints(pipeline::JobData data) {
  for (auto& host : data.hosts) {
    if (host.records.size() > 2) {
      host.records = {host.records.front(), host.records.back()};
    }
  }
  return data;
}

void report() {
  bench::banner("Ablations of the design decisions in DESIGN.md");

  // A1/A2: a 2-hour steady job sampled at 10 minutes; the RAPL registers
  // wrap several times over the job but at most once per interval.
  pipeline::MiniSimOptions opts;
  opts.samples = 11;
  const auto data = simulate_job(reference_job(2 * util::kHour), opts);
  const auto full = compute_metrics(data);
  const auto no_width = compute_metrics(ablate_widths(data));
  const auto endpoints = compute_metrics(ablate_endpoints(data));

  std::printf("A1/A2: RAPL package power of a steady ~120 W node, 2 h job, "
              "10-minute sampling\n\n");
  util::TextTable t;
  t.header({"Variant", "PkgWatts", "Error vs full", "Why"});
  auto err = [&](double v) {
    return bench::pct((v - full.PkgWatts) / full.PkgWatts, 3);
  };
  t.row({"full pipeline (W=32, per-interval deltas)",
         bench::num(full.PkgWatts, 4), "-", "reference"});
  t.row({"A1: width metadata ablated (W=64)",
         bench::num(no_width.PkgWatts, 4), err(no_width.PkgWatts),
         "wrapped intervals underflow to ~2^64 and are clamped into "
         "nonsense"});
  t.row({"A2: endpoint-only delta",
         bench::num(endpoints.PkgWatts, 4), err(endpoints.PkgWatts),
         "full wraps between the endpoints are lost"});
  std::fputs(t.render().c_str(), stdout);
  std::printf(
      "\nCPU_Usage (64-bit jiffies) is identical in all variants: %s / %s / "
      "%s -- the ablation only harms narrow counters.\n",
      bench::num(full.CPU_Usage, 4).c_str(),
      bench::num(no_width.CPU_Usage, 4).c_str(),
      bench::num(endpoints.CPU_Usage, 4).c_str());
}

void BM_IndexedLookup(benchmark::State& state) {
  db::Database database;
  bench::build_population_db(database, static_cast<int>(state.range(0)));
  auto& jobs = database.table(pipeline::kJobsTable);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        jobs.select({{"exe", db::Op::Eq, db::Value("wrf.exe")}}));
  }
  state.SetLabel("with index");
}
BENCHMARK(BM_IndexedLookup)->Arg(1000)->Unit(benchmark::kMicrosecond);

void BM_ScanLookup(benchmark::State& state) {
  // A3: same query against an unindexed copy of the table.
  db::Database database;
  bench::build_population_db(database, static_cast<int>(state.range(0)));
  auto& jobs = database.table(pipeline::kJobsTable);
  db::Table copy("jobs_noindex", jobs.columns());
  for (db::RowId id = 0; id < jobs.num_rows(); ++id) {
    copy.insert(jobs.row(id));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        copy.select({{"exe", db::Op::Eq, db::Value("wrf.exe")}}));
  }
  state.SetLabel("full scan");
}
BENCHMARK(BM_ScanLookup)->Arg(1000)->Unit(benchmark::kMicrosecond);

}  // namespace

TS_BENCH_MAIN(report)
