#!/usr/bin/env python3
"""Fixture tests for tools/lint/lint_repo.py.

Each test builds a minimal repo tree in a tempdir containing exactly one
violation class, runs the linter against it, and asserts the expected
diagnostic code and exit code. Driven by ctest (`lint_selftest`) and
runnable directly: python3 tools/lint/test_lint_repo.py
"""

from __future__ import annotations

import contextlib
import io
import sys
import tempfile
import unittest
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
import lint_repo  # noqa: E402


def run_linter(root: Path, *extra: str) -> tuple[int, str]:
    out = io.StringIO()
    with contextlib.redirect_stdout(out), contextlib.redirect_stderr(out):
        code = lint_repo.main(["--root", str(root), *extra])
    return code, out.getvalue()


class FixtureTree:
    """A throwaway repo tree; write(path, text) creates parents as needed."""

    def __init__(self, tmp: Path):
        self.root = tmp
        (tmp / "src").mkdir()

    def write(self, rel: str, text: str) -> None:
        path = self.root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)


class LintRepoTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.tree = FixtureTree(Path(self._tmp.name))

    def tearDown(self):
        self._tmp.cleanup()

    # -- clean tree ---------------------------------------------------------
    def test_clean_tree_exits_zero(self):
        self.tree.write(
            "src/util/cache.hpp",
            "class Cache {\n"
            "  util::Mutex mu_;\n"
            "  int x_ TACC_GUARDED_BY(mu_);\n"
            "};\n",
        )
        self.tree.write("tests/CMakeLists.txt", "ts_test(test_cache)\n")
        self.tree.write("tests/test_cache.cpp", "// ok\n")
        code, out = run_linter(self.tree.root)
        self.assertEqual(code, 0, out)
        self.assertEqual(out, "")

    # -- TS001 --------------------------------------------------------------
    def test_unannotated_mutex_flagged(self):
        self.tree.write(
            "src/core/state.hpp",
            "class State {\n  std::mutex mu_;\n  int x_;\n};\n",
        )
        code, out = run_linter(self.tree.root)
        self.assertEqual(code, 1, out)
        self.assertIn("TS001", out)
        self.assertIn("src/core/state.hpp:2", out)
        self.assertIn("mu_", out)

    def test_unannotated_atomic_flagged(self):
        self.tree.write(
            "src/core/state.hpp",
            "class State {\n  std::atomic<int> hits_{0};\n};\n",
        )
        code, out = run_linter(self.tree.root)
        self.assertEqual(code, 1, out)
        self.assertIn("TS001", out)
        self.assertIn("hits_", out)

    def test_allowlisted_primitive_passes(self):
        self.tree.write(
            "src/core/state.hpp",
            "class State {\n  std::atomic<int> hits_{0};\n};\n",
        )
        self.tree.write(
            "tools/lint/concurrency_allowlist.txt",
            "# reasons matter\nsrc/core/state.hpp:hits_  lock-free counter\n",
        )
        code, out = run_linter(self.tree.root)
        self.assertEqual(code, 0, out)

    def test_commented_out_primitive_ignored(self):
        self.tree.write(
            "src/core/state.hpp",
            "class State {\n  // std::mutex old_mu_;\n};\n",
        )
        code, out = run_linter(self.tree.root)
        self.assertEqual(code, 0, out)

    # -- TS002 --------------------------------------------------------------
    def test_unreferenced_capability_flagged(self):
        self.tree.write(
            "src/core/state.hpp",
            "class State {\n  util::Mutex mu_;\n  int x_;\n};\n",
        )
        code, out = run_linter(self.tree.root)
        self.assertEqual(code, 1, out)
        self.assertIn("TS002", out)
        self.assertIn("never referenced", out)

    def test_excludes_annotation_counts_as_reference(self):
        self.tree.write(
            "src/core/state.hpp",
            "class State {\n"
            "  void poke() TACC_EXCLUDES(mu_);\n"
            "  util::Mutex mu_;\n"
            "};\n",
        )
        code, out = run_linter(self.tree.root)
        self.assertEqual(code, 0, out)

    # -- TS010 --------------------------------------------------------------
    def test_unregistered_collector_flagged(self):
        self.tree.write(
            "src/collect/collectors.hpp",
            "class FooCollector final : public Collector {};\n"
            "class BarCollector final : public Collector {};\n",
        )
        self.tree.write(
            "src/collect/registry.cpp",
            "out.push_back(std::make_unique<FooCollector>());\n",
        )
        code, out = run_linter(self.tree.root)
        self.assertEqual(code, 1, out)
        self.assertIn("TS010", out)
        self.assertIn("BarCollector", out)
        self.assertNotIn("FooCollector' is not registered", out)

    # -- TS011 --------------------------------------------------------------
    def test_unknown_fault_site_flagged(self):
        self.tree.write(
            "src/util/fault.hpp",
            'inline constexpr std::string_view kFaultBrokerPublish =\n'
            '    "broker.publish";\n',
        )
        self.tree.write("tests/CMakeLists.txt", "ts_test(test_faults)\n")
        self.tree.write(
            "tests/test_faults.cpp",
            'plan.set("broker.publish", spec);\n'
            'plan.set("borker.publish", spec);  // typo: never fires\n',
        )
        code, out = run_linter(self.tree.root)
        self.assertEqual(code, 1, out)
        self.assertIn("TS011", out)
        self.assertIn("borker.publish", out)
        self.assertIn("tests/test_faults.cpp:2", out)
        self.assertNotIn("'broker.publish' is not declared", out)

    def test_fault_site_in_bench_checked_too(self):
        self.tree.write(
            "src/util/fault.hpp",
            'inline constexpr std::string_view kFaultCronRsync =\n'
            '    "cron.rsync";\n',
        )
        self.tree.write(
            "bench/bench_chaos.cpp",
            'plan->decide("cron.resync", "h", 1, now);\n',
        )
        code, out = run_linter(self.tree.root)
        self.assertEqual(code, 1, out)
        self.assertIn("TS011", out)
        self.assertIn("cron.resync", out)

    def test_wrapped_and_inline_site_literals_pass(self):
        self.tree.write(
            "src/util/fault.hpp",
            'inline constexpr std::string_view kFaultDaemonPublish =\n'
            '    "daemon.publish";\n',
        )
        # A site consulted inline in src/ counts as declared even without
        # a kFault* constant.
        self.tree.write(
            "src/transport/extra.cpp",
            'faults->decide("extra.site", host, salt, now);\n',
        )
        self.tree.write("tests/CMakeLists.txt", "ts_test(test_faults)\n")
        self.tree.write(
            "tests/test_faults.cpp",
            'plan.set(std::string("daemon.publish"), spec);\n'
            'plan.spec("extra.site");\n'
            '// plan.set("commented.out", spec); is ignored\n',
        )
        code, out = run_linter(self.tree.root)
        self.assertEqual(code, 0, out)

    def test_non_site_dotted_strings_ignored(self):
        # Dotted strings not in a FaultPlan call position (rng names, file
        # names) must not be flagged.
        self.tree.write("src/util/fault.hpp", "// no sites declared\n")
        self.tree.write("tests/CMakeLists.txt", "ts_test(test_other)\n")
        self.tree.write(
            "tests/test_other.cpp",
            'util::Rng rng("chaos.soak", seed);\n'
            'spool.read_host("2016-01-01", "c400-001.local");\n',
        )
        code, out = run_linter(self.tree.root)
        self.assertEqual(code, 0, out)

    # -- TS020 --------------------------------------------------------------
    def test_undocumented_knob_flagged(self):
        self.tree.write(
            "src/tsdb/store.hpp",
            "struct StoreOptions {\n"
            "  std::size_t shards = 16;\n"
            "  bool mystery_knob = false;\n"
            "};\n",
        )
        self.tree.write("docs/ARCHITECTURE.md", "`shards` is documented.\n")
        code, out = run_linter(self.tree.root)
        self.assertEqual(code, 1, out)
        self.assertIn("TS020", out)
        self.assertIn("mystery_knob", out)
        self.assertNotIn("shards", out.replace("mystery_knob", ""))

    def test_documented_knobs_pass(self):
        self.tree.write(
            "src/tsdb/store.hpp",
            "struct StoreOptions {\n  std::size_t shards = 16;\n};\n",
        )
        self.tree.write("docs/ARCHITECTURE.md", "| `StoreOptions::shards` |\n")
        code, out = run_linter(self.tree.root)
        self.assertEqual(code, 0, out)

    # -- TS050 --------------------------------------------------------------
    FORMAT_HPP = (
        "// TACC_FORMAT_BEGIN(demo, 1)\n"
        "// header: magic | version | crc\n"
        "inline constexpr std::uint32_t kDemoVersion = 1;\n"
        "// TACC_FORMAT_END(demo)\n"
    )

    def pin_formats(self):
        code, out = run_linter(self.tree.root, "--update-fingerprints")
        assert code == 0, out

    def test_unpinned_format_region_flagged(self):
        self.tree.write("src/tsdb/demo.hpp", self.FORMAT_HPP)
        code, out = run_linter(self.tree.root)
        self.assertEqual(code, 1, out)
        self.assertIn("TS050", out)
        self.assertIn("no pinned fingerprint", out)

    def test_pinned_format_region_passes(self):
        self.tree.write("src/tsdb/demo.hpp", self.FORMAT_HPP)
        self.pin_formats()
        code, out = run_linter(self.tree.root)
        self.assertEqual(code, 0, out)

    def test_format_change_without_version_bump_flagged(self):
        self.tree.write("src/tsdb/demo.hpp", self.FORMAT_HPP)
        self.pin_formats()
        self.tree.write(
            "src/tsdb/demo.hpp",
            self.FORMAT_HPP.replace("magic | version", "magic | shard"),
        )
        code, out = run_linter(self.tree.root)
        self.assertEqual(code, 1, out)
        self.assertIn("TS050", out)
        self.assertIn("without a version bump", out)

    def test_format_change_with_bump_asks_for_repin(self):
        self.tree.write("src/tsdb/demo.hpp", self.FORMAT_HPP)
        self.pin_formats()
        bumped = self.FORMAT_HPP.replace("demo, 1", "demo, 2").replace(
            "kDemoVersion = 1", "kDemoVersion = 2"
        )
        self.tree.write("src/tsdb/demo.hpp", bumped)
        code, out = run_linter(self.tree.root)
        self.assertEqual(code, 1, out)
        self.assertIn("re-pin", out)
        self.pin_formats()
        code, out = run_linter(self.tree.root)
        self.assertEqual(code, 0, out)

    def test_whitespace_only_format_edit_passes(self):
        self.tree.write("src/tsdb/demo.hpp", self.FORMAT_HPP)
        self.pin_formats()
        self.tree.write(
            "src/tsdb/demo.hpp", self.FORMAT_HPP.replace("// header", "//  header")
        )
        code, out = run_linter(self.tree.root)
        self.assertEqual(code, 0, out)

    def test_deleted_format_region_flagged(self):
        self.tree.write("src/tsdb/demo.hpp", self.FORMAT_HPP)
        self.pin_formats()
        self.tree.write("src/tsdb/demo.hpp", "// region removed\n")
        code, out = run_linter(self.tree.root)
        self.assertEqual(code, 1, out)
        self.assertIn("no longer exists", out)

    def test_unterminated_format_region_flagged(self):
        self.tree.write(
            "src/tsdb/demo.hpp", "// TACC_FORMAT_BEGIN(demo, 1)\n// no end\n"
        )
        code, out = run_linter(self.tree.root)
        self.assertEqual(code, 1, out)
        self.assertIn("TS050", out)
        self.assertIn("has no", out)

    # -- TS030 --------------------------------------------------------------
    def test_orphaned_test_flagged(self):
        self.tree.write("tests/CMakeLists.txt", "ts_test(test_known)\n")
        self.tree.write("tests/test_known.cpp", "// registered\n")
        self.tree.write("tests/test_orphan.cpp", "// forgotten\n")
        code, out = run_linter(self.tree.root)
        self.assertEqual(code, 1, out)
        self.assertIn("TS030", out)
        self.assertIn("test_orphan.cpp", out)
        self.assertNotIn("test_known.cpp' is not registered", out)

    def test_add_executable_counts_as_registration(self):
        self.tree.write(
            "tests/CMakeLists.txt", "add_executable(test_special foo.cpp)\n"
        )
        self.tree.write("tests/test_special.cpp", "// custom target\n")
        code, out = run_linter(self.tree.root)
        self.assertEqual(code, 0, out)

    # -- TS040 --------------------------------------------------------------
    def test_dead_relative_link_flagged(self):
        self.tree.write("docs/GUIDE.md", "See [the plan](MISSING.md).\n")
        code, out = run_linter(self.tree.root)
        self.assertEqual(code, 1, out)
        self.assertIn("TS040", out)
        self.assertIn("MISSING.md", out)
        self.assertIn("docs/GUIDE.md:1", out)

    def test_resolving_links_and_urls_pass(self):
        self.tree.write("docs/OTHER.md", "target\n")
        self.tree.write(
            "README.md",
            "[docs](docs/OTHER.md), [anchor](docs/OTHER.md#sec),\n"
            "[in-page](#local), [web](https://example.com/x.md)\n",
        )
        code, out = run_linter(self.tree.root)
        self.assertEqual(code, 0, out)

    def test_readme_dead_link_flagged(self):
        self.tree.write("README.md", "[gone](docs/GONE.md)\n")
        code, out = run_linter(self.tree.root)
        self.assertEqual(code, 1, out)
        self.assertIn("TS040", out)
        self.assertIn("README.md:1", out)

    def test_stale_knob_reference_flagged(self):
        self.tree.write(
            "src/tsdb/store.hpp",
            "struct StoreOptions {\n  std::size_t shards = 16;\n};\n",
        )
        self.tree.write(
            "docs/ARCHITECTURE.md",
            "| `StoreOptions::shards` | ok |\n"
            "| `StoreOptions::shard_count` | renamed away |\n",
        )
        code, out = run_linter(self.tree.root)
        self.assertEqual(code, 1, out)
        self.assertIn("TS040", out)
        self.assertIn("StoreOptions::shard_count", out)
        self.assertNotIn("StoreOptions::shards'", out)

    def test_non_knob_qualified_names_ignored(self):
        self.tree.write(
            "docs/NOTES.md",
            "util::Mutex and tsdb::Store are not knob structs.\n",
        )
        code, out = run_linter(self.tree.root)
        self.assertEqual(code, 0, out)

    # -- CLI ----------------------------------------------------------------
    def test_missing_root_is_usage_error(self):
        code, out = run_linter(self.tree.root / "nonexistent")
        self.assertEqual(code, 2, out)

    def test_multiple_violations_all_reported(self):
        self.tree.write(
            "src/core/state.hpp",
            "class State {\n  std::mutex mu_;\n};\n",
        )
        self.tree.write("tests/CMakeLists.txt", "\n")
        self.tree.write("tests/test_orphan.cpp", "// forgotten\n")
        code, out = run_linter(self.tree.root)
        self.assertEqual(code, 1, out)
        self.assertIn("TS001", out)
        self.assertIn("TS030", out)
        self.assertIn("2 violation(s)", out)

    # -- output modes (shared lint_output helper) ---------------------------
    def test_json_output_mode(self):
        import json

        self.tree.write(
            "src/core/state.hpp",
            "class State {\n  std::mutex mu_;\n};\n",
        )
        code, out = run_linter(self.tree.root, "--json")
        self.assertEqual(code, 1, out)
        doc = json.loads(out[:out.rindex("lint_repo:")])
        self.assertEqual(doc["tool"], "lint_repo")
        self.assertEqual(doc["count"], 1)
        self.assertEqual(doc["findings"][0]["code"], "TS001")
        self.assertEqual(doc["findings"][0]["path"], "src/core/state.hpp")
        self.assertIn("TS001", doc["checks"])

    def test_github_output_mode(self):
        self.tree.write(
            "src/core/state.hpp",
            "class State {\n  std::mutex mu_;\n};\n",
        )
        code, out = run_linter(self.tree.root, "--github")
        self.assertEqual(code, 1, out)
        self.assertIn(
            "::error file=src/core/state.hpp,line=2,title=TS001::", out)

    def test_github_output_escapes_newlines_and_percent(self):
        from lint_output import Finding, github_line

        line = github_line(Finding("src/a.cpp", 1, "TS001", "50%\nbroken"))
        self.assertEqual(
            line, "::error file=src/a.cpp,line=1,title=TS001::50%25%0Abroken")


if __name__ == "__main__":
    unittest.main()
