#!/usr/bin/env python3
"""Shared output formatting for the repo's two Python analyzers.

Both tools/lint/lint_repo.py (line-level repo invariants) and
tools/analysis/determinism_audit.py (scope-aware determinism & lock-order
checks) report findings through this module so their output is uniform in
all three modes:

  plain   path:line: CODE: message           (human, default)
  github  ::error file=...,line=...,...      (GitHub Actions inline PR
                                              annotations; the workflow
                                              runner parses these natively)
  json    machine-readable findings document (for dashboards / tooling)

Keeping the formats here means a new check in either tool automatically
annotates PRs and lands in the JSON schema without touching the driver.
"""

from __future__ import annotations

import dataclasses
import json
import sys
from typing import Iterable, TextIO


@dataclasses.dataclass(frozen=True)
class Finding:
    """One diagnostic: a (file, line) anchored violation of a named check."""

    path: str  # repo-relative, forward slashes
    line: int  # 1-based
    code: str  # e.g. "TS001", "DT002", "LK001"
    message: str


def plain_line(f: Finding) -> str:
    return f"{f.path}:{f.line}: {f.code}: {f.message}"


def github_line(f: Finding) -> str:
    """A GitHub Actions workflow command: the runner turns these into
    inline PR annotations with no problem-matcher configuration needed.
    Newlines and the characters %, \r must be URL-encoded per the
    workflow-command escaping rules."""

    def esc(s: str) -> str:
        return s.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")

    def esc_prop(s: str) -> str:
        return esc(s).replace(":", "%3A").replace(",", "%2C")

    return (
        f"::error file={esc_prop(f.path)},line={f.line},"
        f"title={esc_prop(f.code)}::{esc(f.message)}"
    )


def to_json(tool: str, checks: dict[str, str],
            findings: Iterable[Finding]) -> str:
    doc = {
        "tool": tool,
        "checks": checks,
        "findings": [dataclasses.asdict(f) for f in findings],
    }
    doc["count"] = len(doc["findings"])
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


def emit(findings: list[Finding], *, tool: str, checks: dict[str, str],
         fmt: str = "plain", out: TextIO | None = None,
         err: TextIO | None = None) -> int:
    """Prints findings in the requested format plus a summary line on
    stderr, and returns the process exit code (0 clean, 1 violations)."""
    out = out if out is not None else sys.stdout
    err = err if err is not None else sys.stderr
    if fmt == "json":
        out.write(to_json(tool, checks, findings))
    elif fmt == "github":
        for f in findings:
            out.write(github_line(f) + "\n")
    else:
        for f in findings:
            out.write(plain_line(f) + "\n")
    if findings:
        codes = sorted({f.code for f in findings})
        print(
            f"{tool}: {len(findings)} violation(s) ({', '.join(codes)})",
            file=err,
        )
        return 1
    return 0
