#!/usr/bin/env python3
"""Repo-specific invariant linter for the tacc_stats_cpp tree.

Enforces the correctness invariants no off-the-shelf tool knows about
(see docs/STATIC_ANALYSIS.md for the rationale and how to extend this):

  TS001  raw concurrency primitive (std::mutex / std::condition_variable /
         std::shared_mutex / std::atomic) declared in src/ without an entry
         in tools/lint/concurrency_allowlist.txt. New concurrent state must
         use util::Mutex + TACC_GUARDED_BY (src/util/thread_annotations.hpp)
         so Clang Thread Safety Analysis can prove the locking discipline;
         the allowlist records the sanctioned exceptions with a reason.
  TS002  util::Mutex declared but never named by any TACC_* annotation in
         the same file — an unannotated capability guards nothing, so the
         static analysis silently proves nothing about it.
  TS010  collector class defined in src/collect/*.hpp but never
         instantiated in src/collect/registry.cpp — the collector would
         silently never run on any node.
  TS011  fault-injection site name (a dotted "layer.event" string literal
         passed to FaultPlan::set/spec/decide in tests/ or bench/) that no
         src/ file declares — the plan entry would never fire, so the test
         exercises nothing while appearing to pass.
  TS020  tuning knob (field of tsdb::StoreOptions or
         pipeline::TsdbIngestOptions) not documented in
         docs/ARCHITECTURE.md — operators tune from the docs, so an
         undocumented knob is effectively unshipped.
  TS030  tests/test_*.cpp not registered in tests/CMakeLists.txt — the
         test builds nowhere and rots.
  TS040  documentation drift: a relative markdown link in README.md or
         docs/*.md that points at a file which does not exist, or a
         `Struct::field` knob reference naming a field the knob struct
         no longer has. Docs are the operator interface, so a dead link
         or a renamed-away knob is a broken control panel.
  TS050  on-disk format drift: the text of a TACC_FORMAT_BEGIN(name, v) /
         TACC_FORMAT_END(name) region no longer matches the fingerprint
         pinned in tools/lint/format_fingerprint.txt. Files already on
         disk were written by the pinned layout, so changing the region
         without bumping its version constant silently breaks readers.
         After a deliberate change + version bump, re-pin with
         `lint_repo.py --update-fingerprints`.

Exit codes: 0 = clean, 1 = violations found, 2 = usage/setup error.
"""

from __future__ import annotations

import argparse
import hashlib
import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from lint_output import Finding, emit  # noqa: E402

# (code, human description) — kept in one place so --list-checks and the
# fixture tests stay in sync with reality.
CHECKS = {
    "TS001": "raw concurrency primitive not allowlisted",
    "TS002": "util::Mutex never referenced by a TACC_* annotation",
    "TS010": "collector not registered in registry.cpp",
    "TS011": "fault site name not declared anywhere in src/",
    "TS020": "options knob not documented in docs/ARCHITECTURE.md",
    "TS030": "test file not registered in tests/CMakeLists.txt",
    "TS040": "doc drift: dead relative link or unresolved knob reference",
    "TS050": "on-disk format region changed without a version bump",
}

ALLOWLIST_PATH = Path("tools/lint/concurrency_allowlist.txt")
FINGERPRINT_PATH = Path("tools/lint/format_fingerprint.txt")

# Declarations of raw primitives: a type token followed by an identifier
# (member or namespace-scope variable). Deliberately naive — flagging the
# odd local variable is fine, because locals the analysis cannot see should
# be rare and deliberate, i.e. allowlisted with a reason.
RAW_PRIMITIVE_RE = re.compile(
    r"\b(?:mutable\s+)?std::(?:mutex|shared_mutex|recursive_mutex|"
    r"condition_variable(?:_any)?|atomic(?:<[^;]*>|_\w+)?)\s+(\w+)\s*[;{=]"
)

MUTEX_DECL_RE = re.compile(r"\b(?:mutable\s+)?(?:util::)?Mutex\s+(\w+)\s*;")

COLLECTOR_CLASS_RE = re.compile(r"\bclass\s+(\w+Collector)\b[^;]*:")

TEST_REGISTRATION_RE = re.compile(r"\b(?:ts_test\s*\(|add_executable\s*\()\s*(\w+)")


class Linter:
    def __init__(self, root: Path):
        self.root = root
        self.findings: list[Finding] = []

    def report(self, path: Path, line: int, code: str, message: str) -> None:
        self.findings.append(Finding(path.as_posix(), line, code, message))

    # -- TS001 / TS002 ------------------------------------------------------
    def load_allowlist(self) -> set[str]:
        allow: set[str] = set()
        path = self.root / ALLOWLIST_PATH
        if not path.is_file():
            return allow
        for raw in path.read_text().splitlines():
            entry = raw.split("#", 1)[0].strip()
            if not entry:
                continue
            # "<path>:<identifier>  <reason...>" — only the first token binds.
            allow.add(entry.split()[0])
        return allow

    def check_concurrency(self) -> None:
        allow = self.load_allowlist()
        annotation_exempt = Path("src/util/thread_annotations.hpp")
        for path in sorted((self.root / "src").rglob("*.[hc]pp")):
            rel = path.relative_to(self.root)
            text = path.read_text()
            for lineno, line in enumerate(text.splitlines(), 1):
                stripped = line.split("//", 1)[0]
                if rel != annotation_exempt:
                    for m in RAW_PRIMITIVE_RE.finditer(stripped):
                        key = f"{rel.as_posix()}:{m.group(1)}"
                        if key not in allow:
                            self.report(
                                rel, lineno, "TS001",
                                f"raw concurrency primitive '{m.group(1)}' — "
                                "use util::Mutex + TACC_GUARDED_BY, or add "
                                f"'{key}' to {ALLOWLIST_PATH.as_posix()} "
                                "with a reason",
                            )
                for m in MUTEX_DECL_RE.finditer(stripped):
                    name = m.group(1)
                    key = f"{rel.as_posix()}:{name}"
                    if key in allow:
                        continue
                    # The capability must be named by some annotation in this
                    # file: GUARDED_BY(name), REQUIRES(x.name), EXCLUDES(name)…
                    if not re.search(
                        r"TACC_\w+\s*\([^)]*\b" + re.escape(name) + r"\b", text
                    ):
                        self.report(
                            rel, lineno, "TS002",
                            f"util::Mutex '{name}' is never referenced by a "
                            "TACC_* annotation — nothing is guarded by it",
                        )

    # -- TS010 --------------------------------------------------------------
    def check_collectors(self) -> None:
        collect_dir = self.root / "src" / "collect"
        registry = collect_dir / "registry.cpp"
        if not registry.is_file():
            return
        registry_text = registry.read_text()
        for path in sorted(collect_dir.glob("*.hpp")):
            rel = path.relative_to(self.root)
            for lineno, line in enumerate(path.read_text().splitlines(), 1):
                m = COLLECTOR_CLASS_RE.search(line.split("//", 1)[0])
                if m and m.group(1) not in registry_text:
                    self.report(
                        rel, lineno, "TS010",
                        f"collector '{m.group(1)}' is not registered in "
                        "src/collect/registry.cpp — it will never run",
                    )

    # -- TS011 --------------------------------------------------------------
    # A dotted "layer.event" string literal in the first-argument slot of a
    # FaultPlan call. Matches plan.set("broker.publish", …),
    # plan->decide("daemon.publish", …), plan.spec("cron.rsync"), including
    # literals wrapped in std::string(...) / std::string_view(...).
    FAULT_SITE_CALL_RE = re.compile(
        r"\b(?:set|spec|decide|uniform)\s*\(\s*"
        r'(?:std::string(?:_view)?\s*\(\s*)?"([a-z_]+(?:\.[a-z_]+)+)"'
    )
    # Canonical site declarations: the kFault* string_view constants in
    # src/util/fault.hpp.
    FAULT_SITE_DECL_RE = re.compile(r'\bkFault\w+\s*=\s*"([a-z_]+(?:\.[a-z_]+)+)"')

    def declared_fault_sites(self) -> set[str]:
        sites: set[str] = set()
        src = self.root / "src"
        if not src.is_dir():
            return sites
        for path in sorted(src.rglob("*.[hc]pp")):
            text = path.read_text()
            sites.update(self.FAULT_SITE_DECL_RE.findall(text))
            # Sites consulted inline in src/ (decide("x.y", …)) also count
            # as declared: the injection point exists.
            sites.update(self.FAULT_SITE_CALL_RE.findall(text))
        return sites

    def check_fault_sites(self) -> None:
        declared = self.declared_fault_sites()
        for subdir in ("tests", "bench"):
            base = self.root / subdir
            if not base.is_dir():
                continue
            for path in sorted(base.glob("*.cpp")):
                rel = path.relative_to(self.root)
                for lineno, line in enumerate(
                    path.read_text().splitlines(), 1
                ):
                    code = line.split("//", 1)[0]
                    for site in self.FAULT_SITE_CALL_RE.findall(code):
                        if site not in declared:
                            self.report(
                                rel, lineno, "TS011",
                                f"fault site '{site}' is not declared in "
                                "src/ (see kFault* in src/util/fault.hpp) — "
                                "this plan entry can never fire",
                            )

    # -- TS020 --------------------------------------------------------------
    KNOB_STRUCTS = (
        ("src/tsdb/store.hpp", "StoreOptions"),
        ("src/tsdb/store.hpp", "RetentionPolicy"),
        ("src/tsdb/compactor.hpp", "CompactorOptions"),
        ("src/pipeline/ingest.hpp", "TsdbIngestOptions"),
        ("src/util/fault.hpp", "FaultSpec"),
        ("src/transport/daemon.hpp", "RetryPolicy"),
        ("src/transport/consumer.hpp", "ConsumerOptions"),
        ("src/transport/topology.hpp", "TreeOptions"),
        ("src/transport/aggregator.hpp", "AggregatorOptions"),
        ("src/portal/engine.hpp", "QueryEngineOptions"),
    )

    @staticmethod
    def struct_fields(text: str, struct: str) -> list[tuple[int, str]]:
        """Field names of `struct <name> { ... };` with their line numbers."""
        m = re.search(r"struct\s+" + struct + r"\s*\{", text)
        if not m:
            return []
        start = m.end()
        depth = 1
        end = start
        while end < len(text) and depth > 0:
            depth += {"{": 1, "}": -1}.get(text[end], 0)
            end += 1
        body = text[start:end]
        base_line = text.count("\n", 0, start) + 1
        fields = []
        for i, line in enumerate(body.splitlines()):
            code = line.split("//", 1)[0]
            fm = re.search(r"\b(\w+)\s*(?:\{[^;{}]*\}|=[^;]*)?;\s*$",
                           code.strip())
            if fm and not code.strip().startswith(("struct", "using")):
                fields.append((base_line + i, fm.group(1)))
        return fields

    def check_knobs(self) -> None:
        docs = self.root / "docs" / "ARCHITECTURE.md"
        docs_text = docs.read_text() if docs.is_file() else ""
        for rel_path, struct in self.KNOB_STRUCTS:
            path = self.root / rel_path
            if not path.is_file():
                continue
            for lineno, field in self.struct_fields(path.read_text(), struct):
                if field not in docs_text:
                    self.report(
                        Path(rel_path), lineno, "TS020",
                        f"knob '{struct}::{field}' is not documented in "
                        "docs/ARCHITECTURE.md",
                    )

    # -- TS040 --------------------------------------------------------------
    # Inline markdown links: [text](target). Reference-style links are not
    # used in this repo's docs.
    MD_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
    # A qualified knob mention: Struct::field. Only structs in KNOB_STRUCTS
    # are checked; other qualified names (util::Mutex, tsdb::Store) pass.
    KNOB_REF_RE = re.compile(r"\b(\w+)::(\w+)\b")

    def doc_files(self) -> list[Path]:
        docs = []
        readme = self.root / "README.md"
        if readme.is_file():
            docs.append(readme)
        docs_dir = self.root / "docs"
        if docs_dir.is_dir():
            docs.extend(sorted(docs_dir.glob("*.md")))
        return docs

    def knob_fields(self) -> dict[str, set[str]]:
        """struct name -> its field names, for every KNOB_STRUCTS entry."""
        fields: dict[str, set[str]] = {}
        for rel_path, struct in self.KNOB_STRUCTS:
            path = self.root / rel_path
            if not path.is_file():
                continue
            fields.setdefault(struct, set()).update(
                name for _, name in self.struct_fields(path.read_text(), struct)
            )
        return fields

    def check_docs(self) -> None:
        knob_fields = self.knob_fields()
        for path in self.doc_files():
            rel = path.relative_to(self.root)
            for lineno, line in enumerate(path.read_text().splitlines(), 1):
                for target in self.MD_LINK_RE.findall(line):
                    if re.match(r"[a-z][a-z0-9+.-]*:", target) or \
                            target.startswith("#"):
                        continue  # external URL or in-page anchor
                    file_part = target.split("#", 1)[0]
                    if not file_part:
                        continue
                    resolved = (path.parent / file_part).resolve()
                    if not resolved.exists():
                        self.report(
                            rel, lineno, "TS040",
                            f"relative link '{target}' does not resolve "
                            f"(no such file {file_part})",
                        )
                for m in self.KNOB_REF_RE.finditer(line):
                    struct, field = m.group(1), m.group(2)
                    if struct in knob_fields and \
                            field not in knob_fields[struct]:
                        self.report(
                            rel, lineno, "TS040",
                            f"knob reference '{struct}::{field}' names a "
                            "field the struct does not have — the doc has "
                            "drifted from the code",
                        )

    # -- TS050 --------------------------------------------------------------
    # Pinned on-disk format regions. A region is the comment/constant block
    # between TACC_FORMAT_BEGIN(name, version) and TACC_FORMAT_END(name);
    # its normalized text is hashed and pinned in FINGERPRINT_PATH as
    # "<name> <version> <sha256>". Editing the region without bumping the
    # version fails; after a deliberate bump, --update-fingerprints re-pins.
    FORMAT_BEGIN_RE = re.compile(r"TACC_FORMAT_BEGIN\(\s*(\w+)\s*,\s*(\d+)\s*\)")
    FORMAT_END_RE = re.compile(r"TACC_FORMAT_END\(\s*(\w+)\s*\)")

    def format_regions(self) -> dict[str, tuple[Path, int, int, str]]:
        """name -> (file, begin line, version, sha256 of normalized text)."""
        regions: dict[str, tuple[Path, int, int, str]] = {}
        src = self.root / "src"
        if not src.is_dir():
            return regions
        for path in sorted(src.rglob("*.[hc]pp")):
            rel = path.relative_to(self.root)
            open_name = None
            open_line = 0
            open_version = 0
            buf: list[str] = []
            for lineno, line in enumerate(path.read_text().splitlines(), 1):
                begin = self.FORMAT_BEGIN_RE.search(line)
                end = self.FORMAT_END_RE.search(line)
                if begin:
                    if open_name is not None:
                        self.report(
                            rel, lineno, "TS050",
                            f"TACC_FORMAT_BEGIN('{begin.group(1)}') opens "
                            f"inside unterminated region '{open_name}'",
                        )
                    open_name = begin.group(1)
                    open_version = int(begin.group(2))
                    open_line = lineno
                    buf = []
                elif end:
                    if end.group(1) != open_name:
                        self.report(
                            rel, lineno, "TS050",
                            f"TACC_FORMAT_END('{end.group(1)}') does not "
                            f"close an open region (open: {open_name!r})",
                        )
                        continue
                    if open_name in regions:
                        self.report(
                            rel, open_line, "TS050",
                            f"duplicate format region name '{open_name}' "
                            f"(first in {regions[open_name][0].as_posix()})",
                        )
                    normalized = "\n".join(
                        s for s in (" ".join(l.split()) for l in buf) if s
                    )
                    digest = hashlib.sha256(normalized.encode()).hexdigest()
                    regions[open_name] = (rel, open_line, open_version, digest)
                    open_name = None
                elif open_name is not None:
                    buf.append(line)
            if open_name is not None:
                self.report(
                    rel, open_line, "TS050",
                    f"format region '{open_name}' has no "
                    f"TACC_FORMAT_END({open_name})",
                )
        return regions

    def load_fingerprints(self) -> dict[str, tuple[int, str]]:
        pinned: dict[str, tuple[int, str]] = {}
        path = self.root / FINGERPRINT_PATH
        if not path.is_file():
            return pinned
        for raw in path.read_text().splitlines():
            entry = raw.split("#", 1)[0].split()
            if len(entry) == 3 and entry[1].isdigit():
                pinned[entry[0]] = (int(entry[1]), entry[2])
        return pinned

    def check_formats(self) -> None:
        regions = self.format_regions()
        pinned = self.load_fingerprints()
        fp = FINGERPRINT_PATH.as_posix()
        for name, (rel, line, version, digest) in sorted(regions.items()):
            if name not in pinned:
                self.report(
                    rel, line, "TS050",
                    f"format region '{name}' has no pinned fingerprint in "
                    f"{fp} — run lint_repo.py --update-fingerprints",
                )
            elif version == pinned[name][0] and digest != pinned[name][1]:
                self.report(
                    rel, line, "TS050",
                    f"format region '{name}' changed without a version bump "
                    f"(still v{version}) — files already written with the "
                    "pinned layout would be misread; bump the version in "
                    "TACC_FORMAT_BEGIN and run --update-fingerprints",
                )
            elif version != pinned[name][0]:
                self.report(
                    rel, line, "TS050",
                    f"format region '{name}' is v{version} but {fp} pins "
                    f"v{pinned[name][0]} — after a deliberate bump, re-pin "
                    "with lint_repo.py --update-fingerprints",
                )
        for name in sorted(set(pinned) - set(regions)):
            self.report(
                FINGERPRINT_PATH, 1, "TS050",
                f"fingerprint pins format region '{name}' that no longer "
                "exists in src/ — run lint_repo.py --update-fingerprints",
            )

    def update_fingerprints(self) -> int:
        """Re-pin every region; returns 1 if regions are malformed."""
        regions = self.format_regions()
        if self.findings:
            return 1
        path = self.root / FINGERPRINT_PATH
        path.parent.mkdir(parents=True, exist_ok=True)
        lines = [
            "# Pinned on-disk format fingerprints (lint_repo.py rule TS050).",
            "# \"<name> <version> <sha256-of-normalized-region-text>\" per",
            "# line. Regenerate with: tools/lint/lint_repo.py "
            "--update-fingerprints",
        ]
        for name, (_, _, version, digest) in sorted(regions.items()):
            lines.append(f"{name} {version} {digest}")
        path.write_text("\n".join(lines) + "\n")
        print(f"lint_repo: pinned {len(regions)} format region(s) in "
              f"{FINGERPRINT_PATH.as_posix()}")
        return 0

    # -- TS030 --------------------------------------------------------------
    def check_tests(self) -> None:
        tests_dir = self.root / "tests"
        cmake = tests_dir / "CMakeLists.txt"
        if not cmake.is_file():
            return
        registered = set(TEST_REGISTRATION_RE.findall(cmake.read_text()))
        for path in sorted(tests_dir.glob("test_*.cpp")):
            if path.stem not in registered:
                self.report(
                    path.relative_to(self.root), 1, "TS030",
                    f"'{path.name}' is not registered in "
                    "tests/CMakeLists.txt — it never builds or runs",
                )

    def run(self) -> list[Finding]:
        self.check_concurrency()
        self.check_collectors()
        self.check_fault_sites()
        self.check_knobs()
        self.check_formats()
        self.check_tests()
        self.check_docs()
        return self.findings


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root", type=Path, default=Path(__file__).resolve().parents[2],
        help="repository root to lint (default: this script's repo)",
    )
    parser.add_argument(
        "--list-checks", action="store_true", help="print check codes and exit"
    )
    parser.add_argument(
        "--update-fingerprints", action="store_true",
        help="re-pin every TACC_FORMAT_* region hash in "
             "tools/lint/format_fingerprint.txt and exit",
    )
    fmt = parser.add_mutually_exclusive_group()
    fmt.add_argument(
        "--json", action="store_true",
        help="emit findings as a machine-readable JSON document",
    )
    fmt.add_argument(
        "--github", action="store_true",
        help="emit findings as ::error workflow commands (inline PR "
             "annotations on GitHub Actions)",
    )
    args = parser.parse_args(argv)
    if args.list_checks:
        for code, desc in CHECKS.items():
            print(f"{code}  {desc}")
        return 0
    root = args.root.resolve()
    if not (root / "src").is_dir():
        print(f"lint_repo: {root} has no src/ directory", file=sys.stderr)
        return 2
    if args.update_fingerprints:
        linter = Linter(root)
        code = linter.update_fingerprints()
        return code if not linter.findings else emit(
            linter.findings, tool="lint_repo", checks=CHECKS, fmt="plain"
        )
    findings = Linter(root).run()
    return emit(
        findings, tool="lint_repo", checks=CHECKS,
        fmt="json" if args.json else "github" if args.github else "plain",
    )


if __name__ == "__main__":
    sys.exit(main())
