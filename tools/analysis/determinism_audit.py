#!/usr/bin/env python3
"""Determinism & lock-order static auditor for the tacc_stats_cpp tree.

The repo's core invariant — same seed => byte-identical archives,
ResilienceStats, and query results — and its freedom from deadlocks are
runtime properties today (TSan, the chaos suite). This auditor proves the
*static* half at lint time, using a real (lightweight) C++ lexer and
scope tracker (tools/analysis/cpp_scope.py) instead of line regexes, so
findings are scope-aware: attributed to enclosing functions, with lock
lifetimes following real brace scopes.

Checks (see docs/STATIC_ANALYSIS.md for the rationale and fix patterns):

  DT001  nondeterminism source in src/: steady_clock/system_clock ::now,
         random_device, rand/srand, getenv, this_thread::get_id — and
         clock aliases (`using X = ...steady_clock` then X::now) — plus
         pointer-keyed unordered containers (iteration/hash order is
         address order). Timing/latency *measurement* is legitimate and
         allowlisted with a reason per enclosing scope.
  DT002  range-for over a std::unordered_map/unordered_set whose body
         appends to output-bearing state (vectors, strings, streams,
         tables): bucket order leaks into results. Suppressed when the
         sink is canonically sorted later in the same function, when the
         append target is an ordered container, or via the allowlist.
  DT003  floating-point accumulation (`+=` into a float/double) inside an
         unordered-iteration body: float addition is non-associative, so
         bucket order changes the sum bit pattern.
  LK001  lock-order cycles: a directed graph is mined from nested
         util::MutexLock (and std lock guard) scopes plus TACC_REQUIRES/
         TACC_ACQUIRE annotations on function definitions; any cycle
         (including a self-edge: re-acquiring a held capability) is a
         potential deadlock. The full graph is emitted as DOT (--dot) and
         uploaded as a CI artifact.
  LK002  a lock held across a blocking call (ThreadPool::submit /
         parallel_for, Broker::publish/consume, future get/wait, join,
         drain): at best a latency cliff under contention, at worst a
         deadlock when the blocked-on work needs the held lock. CondVar
         waits are excluded — releasing the mutex is their contract.

Known limits (by design — the runtime layers cover them): lambdas are
treated as deferred, so locks held at the *creation* site are not
considered held in the body; member types are resolved repo-wide by name;
macro-generated code is invisible. See the doc for the full list.

Exit codes: 0 = clean, 1 = findings, 2 = usage/config error.
"""

from __future__ import annotations

import argparse
import fnmatch
import sys
from pathlib import Path

_HERE = Path(__file__).resolve().parent
sys.path.insert(0, str(_HERE))
sys.path.insert(0, str(_HERE.parent / "lint"))

import cpp_scope as cs  # noqa: E402
from lint_output import Finding, emit  # noqa: E402

CHECKS = {
    "DT001": "nondeterminism source (clock/rand/env/pointer-order) in src/",
    "DT002": "unordered-container iteration feeds output-bearing state",
    "DT003": "float accumulation inside unordered-iteration body",
    "LK001": "lock-order cycle (potential deadlock) in the acquisition graph",
    "LK002": "lock held across a blocking call",
}

ALLOWLIST_PATH = Path("tools/analysis/determinism_allowlist.txt")

# Files that define the analysis vocabulary itself.
EXCLUDED_FILES = {"src/util/thread_annotations.hpp"}

# DT001 source tokens. `clocks` require a following ::now to fire (a
# time_point declaration is not a read); `calls` require a call paren.
NONDET_CLOCKS = {"steady_clock", "system_clock", "high_resolution_clock"}
NONDET_CALLS = {"rand", "srand", "rand_r", "getenv", "get_id",
                "gettimeofday", "clock_gettime"}
NONDET_TYPES = {"random_device"}

UNORDERED_TYPES = {"unordered_map", "unordered_set", "unordered_multimap",
                   "unordered_multiset"}
ORDERED_TYPES = {"map", "set", "multimap", "multiset", "flat_map",
                 "flat_set"}
SINK_TYPES = {"vector", "string", "deque", "basic_string", "ostringstream",
              "stringstream", "ostream", "TextTable"}
FLOAT_TYPES = {"double", "float"}
FUTURE_TYPES = {"future", "shared_future"}
CONDVAR_TYPES = {"CondVar", "condition_variable", "condition_variable_any"}

LOCK_GUARDS = {"MutexLock", "lock_guard", "unique_lock", "scoped_lock"}
MUTEX_TYPES = {"Mutex", "mutex", "shared_mutex", "recursive_mutex"}

# Blocking calls for LK002. future-gated names only fire on receivers
# known to be futures (so shared_ptr::get stays quiet); the rest are this
# repo's known blocking entry points and fire on any receiver.
BLOCKING_FUTURE = {"get", "wait"}
BLOCKING_TIMED = {"wait_for", "wait_until"}
BLOCKING_ALWAYS = {"submit", "parallel_for", "publish", "consume", "join",
                   "drain"}

APPEND_METHODS = {"push_back", "emplace_back", "append", "push_front",
                  "emplace_front"}


class FileModel:
    """Everything the checks need to know about one source file."""

    def __init__(self, rel: str, text: str):
        self.rel = rel
        self.tokens = cs.lex(text)
        self.scopes, self.at = cs.build_scopes(self.tokens)
        self.local_kinds: dict[str, str] = {}  # var -> decl kind
        self.local_types: dict[str, str] = {}  # var -> class-ish type name
        self.aliases: set[str] = set()  # clock aliases
        self.using_ranges: list[tuple[int, int]] = []
        # acquisitions per scope id: [(token_idx, normalized later)]
        self.acquisitions: list[tuple[int, cs.Scope, str, int]] = []


def scope_key(model: FileModel, idx: int) -> str:
    """The allowlist scope key for a finding at token index idx: the
    qualified enclosing function, else class, else '<file>'."""
    scope = model.at[idx]
    fn = scope.enclosing(cs.FUNCTION, cs.LAMBDA)
    if fn is not None:
        return fn.qualified() or "<file>"
    cl = scope.enclosing(cs.CLASS)
    if cl is not None:
        return cl.qualified() or cl.name or "<file>"
    return "<file>"


def enclosing_class_name(scope: cs.Scope) -> str:
    cl = scope.enclosing(cs.CLASS)
    if cl is not None and cl.name:
        return cl.name
    fn = scope.enclosing(cs.FUNCTION)
    if fn is not None and "::" in fn.name:
        return fn.name.rsplit("::", 2)[-2]
    return ""


def template_group_end(tokens: list[cs.Token], lt: int) -> int:
    """Index one past the `>` matching the `<` at index lt (token-level,
    treats >> as two closes)."""
    depth = 0
    i = lt
    while i < len(tokens):
        t = tokens[i]
        if t.kind == cs.PUNCT and t.text == "<":
            depth += 1
        elif t.kind == cs.PUNCT and t.text in (">", ">>"):
            depth -= 2 if t.text == ">>" else 1
            if depth <= 0:
                return i + 1
        i += 1
    return len(tokens)


class Auditor:
    def __init__(self, root: Path):
        self.root = root
        self.findings: list[Finding] = []
        self.models: list[FileModel] = []
        # capability name ("Class::member" or "path:name") -> decl site
        self.capabilities: dict[str, tuple[str, int]] = {}
        # member name -> set of container kinds seen repo-wide
        self.member_kinds: dict[str, set[str]] = {}
        # lock-order graph: (from, to) -> [(path, line)]
        self.edges: dict[tuple[str, str], list[tuple[str, int]]] = {}
        self.allow: dict[str, str] = {}  # key -> reason
        self.allow_used: set[str] = set()

    # -- allowlist -----------------------------------------------------------
    def load_allowlist(self) -> str | None:
        """Returns an error message on malformed entries, else None."""
        path = self.root / ALLOWLIST_PATH
        if not path.is_file():
            return None
        for lineno, raw in enumerate(path.read_text().splitlines(), 1):
            entry = raw.split("#", 1)[0].strip()
            if not entry:
                continue
            parts = entry.split(None, 2)
            if len(parts) < 3 or parts[0] not in CHECKS:
                return (f"{ALLOWLIST_PATH.as_posix()}:{lineno}: malformed "
                        "entry — want '<CODE> <path>:<scope> <reason>' with "
                        "a non-empty reason")
            self.allow[f"{parts[0]} {parts[1]}"] = parts[2]
        return None

    def allowed(self, code: str, key: str) -> bool:
        for entry in self.allow:
            ecode, _, pattern = entry.partition(" ")
            if ecode == code and fnmatch.fnmatchcase(key, pattern):
                self.allow_used.add(entry)
                return True
        return False

    def report(self, model: FileModel, idx: int, code: str,
               message: str) -> None:
        key = f"{model.rel}:{scope_key(model, idx)}"
        if self.allowed(code, key):
            return
        line = model.tokens[idx].line
        self.findings.append(Finding(model.rel, line, code,
                                     f"{message} [scope {key}]"))

    # -- pass 1: load files, harvest declarations ----------------------------
    def load(self) -> None:
        for path in sorted((self.root / "src").rglob("*.[hc]pp")):
            rel = path.relative_to(self.root).as_posix()
            if rel in EXCLUDED_FILES:
                continue
            model = FileModel(rel, path.read_text())
            self.models.append(model)
            self.harvest_declarations(model)

    def harvest_declarations(self, model: FileModel) -> None:
        toks = model.tokens
        i = 0
        while i < len(toks):
            t = toks[i]
            if t.kind != cs.IDENT:
                i += 1
                continue
            # using Alias = ...steady_clock...;
            if t.text == "using" and i + 2 < len(toks) \
                    and toks[i + 1].kind == cs.IDENT \
                    and toks[i + 2].kind == cs.PUNCT \
                    and toks[i + 2].text == "=":
                j = i + 3
                start = i
                is_clock = False
                while j < len(toks) and toks[j].text != ";":
                    if toks[j].kind == cs.IDENT and \
                            toks[j].text in NONDET_CLOCKS:
                        is_clock = True
                    j += 1
                model.using_ranges.append((start, j))
                if is_clock:
                    model.aliases.add(toks[i + 1].text)
                i = j
                continue
            kind = None
            if t.text in UNORDERED_TYPES:
                kind = "unordered"
            elif t.text in ORDERED_TYPES and i > 0 \
                    and toks[i - 1].text == "::":
                kind = "ordered"
            elif t.text in SINK_TYPES:
                kind = "sink"
            elif t.text in FLOAT_TYPES:
                kind = "float"
            elif t.text in FUTURE_TYPES and i > 0 \
                    and toks[i - 1].text == "::":
                kind = "future"
            elif t.text in CONDVAR_TYPES:
                kind = "condvar"
            elif t.text in MUTEX_TYPES:
                kind = "mutex"
            if kind is None:
                # Typed local: `Type& name = ...` / `Type* name = ...`
                if t.text[0].isupper() and i + 2 < len(toks) \
                        and toks[i + 1].kind == cs.PUNCT \
                        and toks[i + 1].text in ("&", "*") \
                        and toks[i + 2].kind == cs.IDENT \
                        and i + 3 < len(toks) \
                        and toks[i + 3].text in ("=", ";"):
                    model.local_types[toks[i + 2].text] = t.text
                i += 1
                continue
            # Skip the template argument list, noting pointer keys.
            j = i + 1
            ptr_key = False
            if j < len(toks) and toks[j].kind == cs.PUNCT \
                    and toks[j].text == "<":
                end = template_group_end(toks, j)
                if kind == "unordered":
                    depth, k = 0, j
                    first_arg_last = None
                    while k < end:
                        tk = toks[k]
                        if tk.kind == cs.PUNCT and tk.text == "<":
                            depth += 1
                        elif tk.kind == cs.PUNCT and tk.text in (">", ">>"):
                            depth -= 2 if tk.text == ">>" else 1
                        elif tk.kind == cs.PUNCT and tk.text == "," \
                                and depth == 1:
                            break
                        elif depth >= 1:
                            first_arg_last = tk
                        k += 1
                    ptr_key = first_arg_last is not None and \
                        first_arg_last.kind == cs.PUNCT and \
                        first_arg_last.text == "*"
                j = end
            # Optional ref/cv noise before the declared name.
            while j < len(toks) and toks[j].kind == cs.PUNCT \
                    and toks[j].text in ("&", "*"):
                j += 1
            while j < len(toks) and toks[j].kind == cs.IDENT \
                    and toks[j].text in ("const", "mutable"):
                j += 1
            if j < len(toks) and toks[j].kind == cs.IDENT:
                name = toks[j].text
                nxt = toks[j + 1].text if j + 1 < len(toks) else ""
                if nxt in (";", "=", "{", ",", ")"):
                    if kind == "mutex":
                        self.register_capability(model, j, name)
                    else:
                        model.local_kinds.setdefault(name, kind)
                        scope = model.at[j]
                        if scope.enclosing(cs.CLASS) is not None:
                            self.member_kinds.setdefault(name, set()) \
                                .add(kind)
                if ptr_key:
                    self.report(
                        model, i, "DT001",
                        "unordered container keyed by pointer value — "
                        "iteration and hash order depend on allocation "
                        "addresses")
            i = j if j > i else i + 1

    def register_capability(self, model: FileModel, idx: int,
                            name: str) -> None:
        scope = model.at[idx]
        cl = scope.enclosing(cs.CLASS)
        if cl is not None and cl.name:
            cap = f"{cl.name}::{name}"
        else:
            cap = f"{model.rel}:{name}"
        self.capabilities.setdefault(cap, (model.rel, model.tokens[idx].line))
        model.local_kinds.setdefault(name, "mutex")

    # -- lock normalization --------------------------------------------------
    def normalize_lock(self, model: FileModel, idx: int, expr: str) -> str:
        expr = expr.replace("this->", "").replace("->", ".")
        expr = expr.replace("*", "")
        parts = expr.split(".")
        member = parts[-1]
        encl = enclosing_class_name(model.at[idx])
        if len(parts) == 1 and encl and f"{encl}::{member}" in \
                self.capabilities:
            return f"{encl}::{member}"
        if len(parts) > 1:
            base_type = model.local_types.get(parts[0])
            if base_type and f"{base_type}::{member}" in self.capabilities:
                return f"{base_type}::{member}"
        matches = [c for c in self.capabilities
                   if c.endswith(f"::{member}")]
        if len(matches) == 1:
            return matches[0]
        return f"{model.rel}:{expr}"

    # -- pass 2: per-file checks --------------------------------------------
    def kind_of(self, model: FileModel, name: str) -> str | None:
        """Container kind of a variable: file-local first, then the
        repo-wide member map (only when unambiguous)."""
        if name in model.local_kinds:
            return model.local_kinds[name]
        kinds = self.member_kinds.get(name, set())
        if len(kinds) == 1:
            return next(iter(kinds))
        return None

    def audit_file(self, model: FileModel) -> None:
        self.check_sources(model)
        self.collect_locks(model)
        self.check_unordered_loops(model)

    def in_using(self, model: FileModel, idx: int) -> bool:
        return any(a <= idx <= b for a, b in model.using_ranges)

    def check_sources(self, model: FileModel) -> None:
        toks = model.tokens
        for i, t in enumerate(toks):
            if t.kind != cs.IDENT or self.in_using(model, i):
                continue
            nxt = toks[i + 1].text if i + 1 < len(toks) else ""
            nxt2 = toks[i + 2].text if i + 2 < len(toks) else ""
            if (t.text in NONDET_CLOCKS or t.text in model.aliases) \
                    and nxt == "::" and nxt2 == "now":
                self.report(
                    model, i, "DT001",
                    f"'{t.text}::now()' is a nondeterminism source — "
                    "results derived from it vary run to run; allowlist "
                    "with a reason if this only measures time")
            elif t.text in NONDET_TYPES:
                self.report(
                    model, i, "DT001",
                    f"'std::{t.text}' is a nondeterminism source — seed "
                    "util::Rng from configuration instead")
            elif t.text in NONDET_CALLS and nxt == "(":
                origin = "this_thread::" if t.text == "get_id" else ""
                self.report(
                    model, i, "DT001",
                    f"'{origin}{t.text}()' is a nondeterminism source — "
                    "it varies per run/environment/thread")

    def collect_locks(self, model: FileModel) -> None:
        """Finds lock-guard declarations, records acquisitions and graph
        edges, and runs LK002 on calls made while locks are held."""
        toks = model.tokens
        # scope -> list of (token_idx, normalized_name)
        held_in: dict[int, list[tuple[int, str]]] = {}

        def held_at(idx: int) -> list[tuple[str, int]]:
            """Locks held at token idx: guard scopes up to the nearest
            function boundary, plus that function's TACC_REQUIRES."""
            out: list[tuple[str, int]] = []
            s: cs.Scope | None = model.at[idx]
            while s is not None:
                for acq_idx, name in held_in.get(id(s), []):
                    if acq_idx < idx:
                        out.append((name, acq_idx))
                if s.kind in (cs.FUNCTION, cs.LAMBDA):
                    for expr in s.requires:
                        out.append(
                            (self.normalize_lock(model, s.start, expr),
                             s.start))
                    break
                s = s.parent
            return out

        i = 0
        while i < len(toks):
            t = toks[i]
            if t.kind == cs.IDENT and t.text in LOCK_GUARDS:
                j = i + 1
                if j < len(toks) and toks[j].kind == cs.PUNCT \
                        and toks[j].text == "<":
                    j = template_group_end(toks, j)
                if j + 1 < len(toks) and toks[j].kind == cs.IDENT \
                        and toks[j + 1].kind == cs.PUNCT \
                        and toks[j + 1].text in ("(", "{"):
                    close = ")" if toks[j + 1].text == "(" else "}"
                    opener = toks[j + 1].text
                    depth, k = 0, j + 1
                    expr_toks: list[cs.Token] = []
                    while k < len(toks):
                        tk = toks[k]
                        if tk.kind == cs.PUNCT and tk.text == opener:
                            depth += 1
                            if depth == 1:
                                k += 1
                                continue
                        elif tk.kind == cs.PUNCT and tk.text == close:
                            depth -= 1
                            if depth == 0:
                                break
                        expr_toks.append(tk)
                        k += 1
                    expr = "".join(tok.text for tok in expr_toks)
                    name = self.normalize_lock(model, i, expr)
                    line = t.line
                    for prior, _ in held_at(i):
                        if prior == name:
                            self.report(
                                model, i, "LK001",
                                f"'{name}' acquired while already held — "
                                "immediate self-deadlock on a "
                                "non-recursive mutex (or an instance-"
                                "ambiguous double lock: allowlist the "
                                "edge with the ordering argument)")
                        self.edges.setdefault((prior, name), []).append(
                            (model.rel, line))
                    scope = model.at[i]
                    held_in.setdefault(id(scope), []).append((i, name))
                    i = k + 1
                    continue
            if t.kind == cs.IDENT and i + 1 < len(toks) \
                    and toks[i + 1].kind == cs.PUNCT \
                    and toks[i + 1].text == "(":
                blocking = None
                if t.text in BLOCKING_ALWAYS:
                    blocking = t.text
                elif t.text in (BLOCKING_FUTURE | BLOCKING_TIMED):
                    recv = ""
                    if i >= 2 and toks[i - 1].kind == cs.PUNCT \
                            and toks[i - 1].text in (".", "->") \
                            and toks[i - 2].kind == cs.IDENT:
                        recv = toks[i - 2].text
                    rkind = self.kind_of(model, recv) if recv else None
                    if rkind == "future":
                        blocking = f"{recv}.{t.text}"
                    elif rkind == "condvar":
                        blocking = None  # releasing the mutex is the contract
                if blocking is not None:
                    # CondVar receivers never block while holding: excluded
                    # above. Receivers of BLOCKING_ALWAYS are checked too.
                    recv = ""
                    if i >= 2 and toks[i - 1].kind == cs.PUNCT \
                            and toks[i - 1].text in (".", "->") \
                            and toks[i - 2].kind == cs.IDENT:
                        recv = toks[i - 2].text
                    if recv and self.kind_of(model, recv) == "condvar":
                        i += 1
                        continue
                    held = held_at(i)
                    if held:
                        names = ", ".join(sorted({h for h, _ in held}))
                        self.report(
                            model, i, "LK002",
                            f"blocking call '{blocking}()' made while "
                            f"holding [{names}] — move the call outside "
                            "the critical section or snapshot under the "
                            "lock and operate outside it")
            i += 1

    def check_unordered_loops(self, model: FileModel) -> None:
        toks = model.tokens
        reported: set[tuple[int, str]] = set()
        for scope in model.scopes:
            if scope.kind != cs.RANGE_FOR:
                continue
            container = None
            for t in scope.range_expr:
                if t.kind == cs.IDENT and \
                        (self.kind_of(model, t.text) == "unordered"
                         or t.text in UNORDERED_TYPES):
                    container = t.text
                    break
            if container is None:
                continue
            fn = scope.enclosing(cs.FUNCTION, cs.LAMBDA)
            fn_end = fn.end if fn is not None and fn.end >= 0 else len(toks)
            for i, t in cs.iter_scope_tokens(toks, scope):
                if t.kind != cs.IDENT:
                    continue
                nxt = toks[i + 1].text if i + 1 < len(toks) else ""
                # sink.push_back(...) style appends
                if t.text in APPEND_METHODS or t.text == "insert":
                    if not (i >= 2 and toks[i - 1].kind == cs.PUNCT
                            and toks[i - 1].text in (".", "->")
                            and toks[i - 2].kind == cs.IDENT):
                        continue
                    recv = toks[i - 2].text
                    rkind = self.kind_of(model, recv)
                    if rkind in ("ordered", "unordered"):
                        continue  # keyed/canonicalizing insert: order-free
                    if t.text == "insert" and rkind != "sink":
                        continue
                    if self.sorted_later(toks, scope.end, fn_end, recv):
                        continue
                    key = (toks[i].line, recv)
                    if key not in reported:
                        reported.add(key)
                        self.report(
                            model, i, "DT002",
                            f"iteration over unordered '{container}' "
                            f"appends to '{recv}' — bucket order leaks "
                            "into output; iterate a sorted view or sort "
                            f"'{recv}' before it is consumed")
                # accumulation: target += ...
                elif nxt == "+=":
                    tkind = self.kind_of(model, t.text)
                    if i >= 1 and toks[i - 1].kind == cs.PUNCT \
                            and toks[i - 1].text in (".", "->", "]"):
                        continue  # member/subscript target: handled above
                    if tkind == "float":
                        key = (toks[i].line, t.text)
                        if key not in reported:
                            reported.add(key)
                            self.report(
                                model, i, "DT003",
                                f"float accumulation into '{t.text}' "
                                f"inside unordered iteration over "
                                f"'{container}' — addition order changes "
                                "the bit pattern; accumulate into a "
                                "sorted intermediate first")
                    elif tkind == "sink":
                        if self.sorted_later(toks, scope.end, fn_end,
                                             t.text):
                            continue
                        key = (toks[i].line, t.text)
                        if key not in reported:
                            reported.add(key)
                            self.report(
                                model, i, "DT002",
                                f"iteration over unordered '{container}' "
                                f"appends to '{t.text}' — bucket order "
                                "leaks into output; iterate a sorted "
                                "view instead")

    @staticmethod
    def sorted_later(toks: list[cs.Token], start: int, end: int,
                     sink: str) -> bool:
        """True when sort/stable_sort is applied to `sink` after token
        index `start` (the loop's close) within the enclosing function."""
        for i in range(max(start, 0), min(end, len(toks))):
            t = toks[i]
            if t.kind == cs.IDENT and t.text in ("sort", "stable_sort"):
                depth = 0
                for j in range(i + 1, min(end, len(toks))):
                    tj = toks[j]
                    if tj.kind == cs.PUNCT and tj.text == "(":
                        depth += 1
                    elif tj.kind == cs.PUNCT and tj.text == ")":
                        depth -= 1
                        if depth == 0:
                            break
                    elif tj.kind == cs.IDENT and tj.text == sink:
                        return True
        return False

    # -- pass 3: the global lock graph --------------------------------------
    def check_lock_graph(self) -> None:
        """Cycle detection over the mined acquisition graph. Allowlisted
        edges (`LK001 edge:A=>B`) are excluded from cycle search but kept
        in the DOT output, dashed."""
        active: dict[tuple[str, str], list[tuple[str, int]]] = {}
        self.suppressed_edges: set[tuple[str, str]] = set()
        for (a, b), sites in self.edges.items():
            if self.allowed("LK001", f"edge:{a}=>{b}"):
                self.suppressed_edges.add((a, b))
                continue
            if a == b:
                continue  # self-edges are reported at the acquisition site
            active[(a, b)] = sites
        adj: dict[str, list[str]] = {}
        for (a, b) in active:
            adj.setdefault(a, []).append(b)
            adj.setdefault(b, [])
        self.cycle_edges: set[tuple[str, str]] = set()
        for comp in tarjan_scc(adj):
            if len(comp) < 2:
                continue
            comp_set = set(comp)
            cycle = sorted(comp)
            example = None
            for (a, b), sites in active.items():
                if a in comp_set and b in comp_set:
                    self.cycle_edges.add((a, b))
                    if example is None:
                        example = (a, b, sites[0])
            assert example is not None
            a, b, (path, line) = example
            self.findings.append(Finding(
                path, line, "LK001",
                f"lock-order cycle between [{', '.join(cycle)}] — e.g. "
                f"'{b}' acquired here while '{a}' is held, and the "
                "reverse order exists elsewhere; pick one global order "
                "or allowlist the edge with the ordering argument"))

    def write_dot(self, path: Path) -> None:
        nodes = set(self.capabilities)
        for (a, b) in self.edges:
            nodes.add(a)
            nodes.add(b)
        lines = [
            "// Lock-order graph mined by tools/analysis/"
            "determinism_audit.py.",
            "// Nodes are mutex capabilities (declared or acquired);",
            "// an edge A -> B means B was acquired while A was held.",
            "// Red edges participate in a cycle; dashed edges are",
            "// allowlisted ordering exceptions.",
            "digraph lock_order {",
            "  rankdir=LR;",
            '  node [shape=box, fontsize=10, fontname="Helvetica"];',
            '  edge [fontsize=8, fontname="Helvetica"];',
        ]
        for n in sorted(nodes):
            decl = self.capabilities.get(n)
            tip = f' tooltip="declared at {decl[0]}:{decl[1]}"' if decl \
                else ""
            lines.append(f'  "{n}" [{tip.strip()}];'.replace("[];", "[];"))
        for (a, b), sites in sorted(self.edges.items()):
            path_, line = sites[0]
            attrs = [f'label="{path_}:{line}"']
            if (a, b) in getattr(self, "cycle_edges", set()):
                attrs.append('color=red penwidth=2')
            if (a, b) in getattr(self, "suppressed_edges", set()):
                attrs.append('style=dashed color=gray')
            lines.append(f'  "{a}" -> "{b}" [{" ".join(attrs)}];')
        lines.append("}")
        path.write_text("\n".join(lines) + "\n")

    # -- driver --------------------------------------------------------------
    def run(self) -> list[Finding]:
        self.load()
        for model in self.models:
            self.audit_file(model)
        self.check_lock_graph()
        for entry in sorted(set(self.allow) - self.allow_used):
            print(f"determinism_audit: note: unused allowlist entry "
                  f"'{entry}' (kept: it documents an audited site)",
                  file=sys.stderr)
        self.findings.sort(key=lambda f: (f.path, f.line, f.code))
        return self.findings


def tarjan_scc(adj: dict[str, list[str]]) -> list[list[str]]:
    """Iterative Tarjan strongly-connected components."""
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    out: list[list[str]] = []
    counter = [0]

    for start in adj:
        if start in index:
            continue
        work: list[tuple[str, int]] = [(start, 0)]
        while work:
            node, pi = work[-1]
            if pi == 0:
                index[node] = low[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            for k in range(pi, len(adj[node])):
                nb = adj[node][k]
                if nb not in index:
                    work[-1] = (node, k + 1)
                    work.append((nb, 0))
                    advanced = True
                    break
                if nb in on_stack:
                    low[node] = min(low[node], index[nb])
            if advanced:
                continue
            work.pop()
            if low[node] == index[node]:
                comp = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    comp.append(w)
                    if w == node:
                        break
                out.append(comp)
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root", type=Path, default=Path(__file__).resolve().parents[2],
        help="repository root to audit (default: this script's repo)",
    )
    parser.add_argument(
        "--list-checks", action="store_true",
        help="print check codes and exit",
    )
    parser.add_argument(
        "--dot", type=Path, default=None, metavar="FILE",
        help="write the lock-order graph as Graphviz DOT to FILE",
    )
    fmt = parser.add_mutually_exclusive_group()
    fmt.add_argument(
        "--json", action="store_true",
        help="emit findings as a machine-readable JSON document",
    )
    fmt.add_argument(
        "--github", action="store_true",
        help="emit findings as ::error workflow commands (inline PR "
             "annotations on GitHub Actions)",
    )
    args = parser.parse_args(argv)
    if args.list_checks:
        for code, desc in CHECKS.items():
            print(f"{code}  {desc}")
        return 0
    root = args.root.resolve()
    if not (root / "src").is_dir():
        print(f"determinism_audit: {root} has no src/ directory",
              file=sys.stderr)
        return 2
    auditor = Auditor(root)
    error = auditor.load_allowlist()
    if error is not None:
        print(f"determinism_audit: {error}", file=sys.stderr)
        return 2
    findings = auditor.run()
    if args.dot is not None:
        auditor.write_dot(args.dot)
    return emit(
        findings, tool="determinism_audit", checks=CHECKS,
        fmt="json" if args.json else "github" if args.github else "plain",
    )


if __name__ == "__main__":
    sys.exit(main())
