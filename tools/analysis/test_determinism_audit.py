#!/usr/bin/env python3
"""Fixture tests for tools/analysis/determinism_audit.py.

Each test builds a minimal repo tree in a tempdir containing exactly one
violation class (or a pattern that must NOT fire), runs the auditor
against it, and asserts the expected diagnostic code and exit code.
Includes the synthetic lock-order cycle that must be detected and the
nested-but-acyclic tree that must pass. Driven by ctest
(`determinism_selftest`) and runnable directly:
python3 tools/analysis/test_determinism_audit.py
"""

from __future__ import annotations

import contextlib
import io
import json
import sys
import tempfile
import unittest
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
import determinism_audit  # noqa: E402
import cpp_scope as cs  # noqa: E402


def run_audit(root: Path, *extra: str) -> tuple[int, str]:
    out = io.StringIO()
    with contextlib.redirect_stdout(out), contextlib.redirect_stderr(out):
        code = determinism_audit.main(["--root", str(root), *extra])
    return code, out.getvalue()


class FixtureTree:
    """A throwaway repo tree; write(path, text) creates parents as needed."""

    def __init__(self, tmp: Path):
        self.root = tmp
        (tmp / "src").mkdir()

    def write(self, rel: str, text: str) -> None:
        path = self.root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)

    def allow(self, *lines: str) -> None:
        self.write("tools/analysis/determinism_allowlist.txt",
                   "\n".join(lines) + "\n")


class AuditTestCase(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.tree = FixtureTree(Path(self._tmp.name))

    def tearDown(self):
        self._tmp.cleanup()


class ScopeTrackerTest(AuditTestCase):
    """Sanity checks on the shared lexer/scope front end."""

    def test_lexer_skips_comments_strings_and_if0(self):
        toks = cs.lex(
            "// steady_clock::now()\n"
            "/* rand() */\n"
            'const char* s = "getenv(";\n'
            "#if 0\nrandom_device dead;\n#endif\n"
            "int live;\n"
        )
        idents = [t.text for t in toks if t.kind == cs.IDENT]
        self.assertNotIn("steady_clock", idents)
        self.assertNotIn("rand", idents)
        self.assertNotIn("random_device", idents)
        self.assertIn("live", idents)

    def test_function_scope_qualified_name(self):
        toks = cs.lex(
            "namespace app {\n"
            "class Engine {\n"
            "  void run() { int x = 0; }\n"
            "};\n"
            "int Engine2::helper(int v) { return v; }\n"
            "}\n"
        )
        scopes, _ = cs.build_scopes(toks)
        names = {s.qualified() for s in scopes if s.kind == cs.FUNCTION}
        # Namespaces are deliberately excluded from qualified names so
        # allowlist scope keys stay stable across namespace reshuffles.
        self.assertIn("Engine::run", names)
        self.assertIn("Engine2::helper", names)

    def test_requires_annotation_extracted(self):
        toks = cs.lex(
            "void drain() TACC_REQUIRES(mu_) { work(); }\n"
        )
        scopes, _ = cs.build_scopes(toks)
        fn = [s for s in scopes if s.kind == cs.FUNCTION][0]
        self.assertEqual(fn.requires, ("mu_",))


class DT001Test(AuditTestCase):
    def test_steady_clock_now_flagged(self):
        self.tree.write(
            "src/core/report.cpp",
            "void stamp(Report& r) {\n"
            "  r.at = std::chrono::steady_clock::now();\n"
            "}\n",
        )
        code, out = run_audit(self.tree.root)
        self.assertEqual(code, 1, out)
        self.assertIn("DT001", out)
        self.assertIn("src/core/report.cpp:2", out)
        self.assertIn("scope stamp", out.replace("src/core/report.cpp:", ""))

    def test_time_point_declaration_not_flagged(self):
        self.tree.write(
            "src/core/report.hpp",
            "struct Deadline {\n"
            "  std::chrono::steady_clock::time_point due{};\n"
            "};\n",
        )
        code, out = run_audit(self.tree.root)
        self.assertEqual(code, 0, out)

    def test_clock_alias_use_flagged_but_not_the_alias_decl(self):
        self.tree.write(
            "src/core/report.cpp",
            "using Clock = std::chrono::steady_clock;\n"
            "void stamp(Report& r) { r.at = Clock::now(); }\n",
        )
        code, out = run_audit(self.tree.root)
        self.assertEqual(code, 1, out)
        self.assertIn("DT001", out)
        self.assertIn("Clock::now", out)
        self.assertNotIn("report.cpp:1", out)

    def test_random_device_and_getenv_and_get_id_flagged(self):
        self.tree.write(
            "src/core/seed.cpp",
            "unsigned seed() { return std::random_device{}(); }\n"
            "const char* home() { return getenv(\"HOME\"); }\n"
            "void tag() { auto id = std::this_thread::get_id(); }\n",
        )
        code, out = run_audit(self.tree.root)
        self.assertEqual(code, 1, out)
        self.assertEqual(out.count("DT001:"), 3, out)

    def test_pointer_keyed_unordered_map_flagged(self):
        self.tree.write(
            "src/core/track.hpp",
            "class Tracker {\n"
            "  std::unordered_map<const Node*, int> refs_;\n"
            "};\n",
        )
        code, out = run_audit(self.tree.root)
        self.assertEqual(code, 1, out)
        self.assertIn("DT001", out)
        self.assertIn("pointer", out)

    def test_allowlisted_scope_passes(self):
        self.tree.write(
            "src/util/timer.hpp",
            "class WallTimer {\n"
            "  void reset() { t_ = std::chrono::steady_clock::now(); }\n"
            "};\n",
        )
        self.tree.allow(
            "DT001 src/util/timer.hpp:WallTimer*"
            "   wall-clock latency timer; readings never key results",
        )
        code, out = run_audit(self.tree.root)
        self.assertEqual(code, 0, out)

    def test_allowlist_entry_without_reason_is_config_error(self):
        self.tree.write("src/a.cpp", "int x;\n")
        self.tree.allow("DT001 src/util/timer.hpp:WallTimer*")
        code, out = run_audit(self.tree.root)
        self.assertEqual(code, 2, out)
        self.assertIn("reason", out)


class DT002Test(AuditTestCase):
    def test_unordered_iteration_into_vector_flagged(self):
        self.tree.write(
            "src/core/agg.cpp",
            "std::vector<Row> rows;\n"
            "void collect(const std::unordered_map<K, V>& by_host) {\n"
            "  for (const auto& [host, v] : by_host) {\n"
            "    rows.push_back(make_row(host, v));\n"
            "  }\n"
            "}\n",
        )
        code, out = run_audit(self.tree.root)
        self.assertEqual(code, 1, out)
        self.assertIn("DT002", out)
        self.assertIn("by_host", out)
        self.assertIn("rows", out)

    def test_sorted_after_loop_suppresses(self):
        self.tree.write(
            "src/core/agg.cpp",
            "void collect(const std::unordered_map<K, V>& by_host) {\n"
            "  std::vector<Row> rows;\n"
            "  for (const auto& [host, v] : by_host) {\n"
            "    rows.push_back(make_row(host, v));\n"
            "  }\n"
            "  std::sort(rows.begin(), rows.end());\n"
            "}\n",
        )
        code, out = run_audit(self.tree.root)
        self.assertEqual(code, 0, out)

    def test_ordered_map_iteration_passes(self):
        self.tree.write(
            "src/core/agg.cpp",
            "void collect(const std::map<K, V>& by_host) {\n"
            "  std::vector<Row> rows;\n"
            "  for (const auto& [host, v] : by_host) {\n"
            "    rows.push_back(make_row(host, v));\n"
            "  }\n"
            "}\n",
        )
        code, out = run_audit(self.tree.root)
        self.assertEqual(code, 0, out)

    def test_insert_into_ordered_map_inside_unordered_loop_passes(self):
        # Re-keying into an ordered container canonicalizes: not a leak.
        self.tree.write(
            "src/core/agg.cpp",
            "void collect(const std::unordered_map<K, V>& by_host) {\n"
            "  std::map<K, V> sorted;\n"
            "  for (const auto& [host, v] : by_host) {\n"
            "    sorted.insert({host, v});\n"
            "  }\n"
            "}\n",
        )
        code, out = run_audit(self.tree.root)
        self.assertEqual(code, 0, out)

    def test_stream_append_flagged(self):
        self.tree.write(
            "src/core/render.cpp",
            "std::string render(const std::unordered_set<Id>& ids) {\n"
            "  std::ostringstream os;\n"
            "  for (const auto& id : ids) {\n"
            "    os << id;\n"
            "  }\n"
            "  return os.str();\n"
            "}\n",
        )
        code, out = run_audit(self.tree.root)
        # `os << id` is an append through operator<<; current analysis
        # catches string += and .append-family; << is future work, so
        # this documents today's contract: += form must be used to fire.
        self.tree.write(
            "src/core/render.cpp",
            "std::string render(const std::unordered_set<Id>& ids) {\n"
            "  std::string out;\n"
            "  for (const auto& id : ids) {\n"
            "    out += format(id);\n"
            "  }\n"
            "  return out;\n"
            "}\n",
        )
        code, out = run_audit(self.tree.root)
        self.assertEqual(code, 1, out)
        self.assertIn("DT002", out)


class DT003Test(AuditTestCase):
    def test_float_accumulation_in_unordered_loop_flagged(self):
        self.tree.write(
            "src/core/stats.cpp",
            "double total(const std::unordered_map<K, double>& m) {\n"
            "  double sum = 0.0;\n"
            "  for (const auto& [k, v] : m) {\n"
            "    sum += v;\n"
            "  }\n"
            "  return sum;\n"
            "}\n",
        )
        code, out = run_audit(self.tree.root)
        self.assertEqual(code, 1, out)
        self.assertIn("DT003", out)
        self.assertIn("sum", out)

    def test_float_accumulation_in_ordered_loop_passes(self):
        self.tree.write(
            "src/core/stats.cpp",
            "double total(const std::map<K, double>& m) {\n"
            "  double sum = 0.0;\n"
            "  for (const auto& [k, v] : m) {\n"
            "    sum += v;\n"
            "  }\n"
            "  return sum;\n"
            "}\n",
        )
        code, out = run_audit(self.tree.root)
        self.assertEqual(code, 0, out)

    def test_integer_accumulation_in_unordered_loop_passes(self):
        # Integer addition is associative: bucket order cannot leak.
        self.tree.write(
            "src/core/stats.cpp",
            "long total(const std::unordered_map<K, long>& m) {\n"
            "  long sum = 0;\n"
            "  for (const auto& [k, v] : m) {\n"
            "    sum += v;\n"
            "  }\n"
            "  return sum;\n"
            "}\n",
        )
        code, out = run_audit(self.tree.root)
        self.assertEqual(code, 0, out)


LOCK_HEADER = (
    "class Registry {\n"
    "  util::Mutex mu_a_;\n"
    "  util::Mutex mu_b_;\n"
    "};\n"
)


class LK001Test(AuditTestCase):
    def test_synthetic_cycle_detected(self):
        self.tree.write("src/core/registry.hpp", LOCK_HEADER)
        self.tree.write(
            "src/core/registry.cpp",
            "void Registry::forward() {\n"
            "  util::MutexLock a(mu_a_);\n"
            "  util::MutexLock b(mu_b_);\n"
            "}\n"
            "void Registry::backward() {\n"
            "  util::MutexLock b(mu_b_);\n"
            "  util::MutexLock a(mu_a_);\n"
            "}\n",
        )
        code, out = run_audit(self.tree.root)
        self.assertEqual(code, 1, out)
        self.assertIn("LK001", out)
        self.assertIn("cycle", out)
        self.assertIn("Registry::mu_a_", out)
        self.assertIn("Registry::mu_b_", out)

    def test_nested_but_acyclic_passes_and_dot_has_edge(self):
        self.tree.write("src/core/registry.hpp", LOCK_HEADER)
        self.tree.write(
            "src/core/registry.cpp",
            "void Registry::forward() {\n"
            "  util::MutexLock a(mu_a_);\n"
            "  util::MutexLock b(mu_b_);\n"
            "}\n"
            "void Registry::also_forward() {\n"
            "  util::MutexLock a(mu_a_);\n"
            "  { util::MutexLock b(mu_b_); }\n"
            "}\n",
        )
        dot = self.tree.root / "lock_order.dot"
        code, out = run_audit(self.tree.root, "--dot", str(dot))
        self.assertEqual(code, 0, out)
        text = dot.read_text()
        self.assertIn('"Registry::mu_a_" -> "Registry::mu_b_"', text)
        self.assertIn("src/core/registry.cpp:3", text)

    def test_requires_annotation_creates_edge(self):
        self.tree.write("src/core/registry.hpp", LOCK_HEADER)
        self.tree.write(
            "src/core/registry.cpp",
            "void Registry::under_a() TACC_REQUIRES(mu_a_) {\n"
            "  util::MutexLock b(mu_b_);\n"
            "}\n"
            "void Registry::under_b() TACC_REQUIRES(mu_b_) {\n"
            "  util::MutexLock a(mu_a_);\n"
            "}\n",
        )
        code, out = run_audit(self.tree.root)
        self.assertEqual(code, 1, out)
        self.assertIn("LK001", out)

    def test_reacquiring_held_lock_is_self_deadlock(self):
        self.tree.write("src/core/registry.hpp", LOCK_HEADER)
        self.tree.write(
            "src/core/registry.cpp",
            "void Registry::oops() {\n"
            "  util::MutexLock a(mu_a_);\n"
            "  util::MutexLock again(mu_a_);\n"
            "}\n",
        )
        code, out = run_audit(self.tree.root)
        self.assertEqual(code, 1, out)
        self.assertIn("LK001", out)
        self.assertIn("already held", out)

    def test_sequential_scoped_locks_do_not_nest(self):
        self.tree.write("src/core/registry.hpp", LOCK_HEADER)
        self.tree.write(
            "src/core/registry.cpp",
            "void Registry::sequential() {\n"
            "  { util::MutexLock a(mu_a_); }\n"
            "  { util::MutexLock b(mu_b_); }\n"
            "}\n"
            "void Registry::sequential_rev() {\n"
            "  { util::MutexLock b(mu_b_); }\n"
            "  { util::MutexLock a(mu_a_); }\n"
            "}\n",
        )
        code, out = run_audit(self.tree.root)
        self.assertEqual(code, 0, out)

    def test_allowlisted_edge_breaks_cycle_and_is_dashed(self):
        self.tree.write("src/core/registry.hpp", LOCK_HEADER)
        self.tree.write(
            "src/core/registry.cpp",
            "void Registry::forward() {\n"
            "  util::MutexLock a(mu_a_);\n"
            "  util::MutexLock b(mu_b_);\n"
            "}\n"
            "void Registry::backward() {\n"
            "  util::MutexLock b(mu_b_);\n"
            "  util::MutexLock a(mu_a_);\n"
            "}\n",
        )
        self.tree.allow(
            "LK001 edge:Registry::mu_b_=>Registry::mu_a_"
            "   backward() only runs at shutdown after workers joined",
        )
        dot = self.tree.root / "lock_order.dot"
        code, out = run_audit(self.tree.root, "--dot", str(dot))
        self.assertEqual(code, 0, out)
        text = dot.read_text()
        self.assertIn("style=dashed", text)


class LK002Test(AuditTestCase):
    def test_submit_under_lock_flagged(self):
        self.tree.write("src/core/registry.hpp", LOCK_HEADER)
        self.tree.write(
            "src/core/registry.cpp",
            "void Registry::fan_out(util::ThreadPool& pool) {\n"
            "  util::MutexLock a(mu_a_);\n"
            "  pool.submit([] { work(); });\n"
            "}\n",
        )
        code, out = run_audit(self.tree.root)
        self.assertEqual(code, 1, out)
        self.assertIn("LK002", out)
        self.assertIn("submit", out)
        self.assertIn("Registry::mu_a_", out)

    def test_future_get_under_lock_flagged(self):
        self.tree.write("src/core/registry.hpp", LOCK_HEADER)
        self.tree.write(
            "src/core/registry.cpp",
            "void Registry::collect(std::future<int> fut) {\n"
            "  util::MutexLock a(mu_a_);\n"
            "  int v = fut.get();\n"
            "}\n",
        )
        code, out = run_audit(self.tree.root)
        self.assertEqual(code, 1, out)
        self.assertIn("LK002", out)
        self.assertIn("fut.get", out)

    def test_shared_ptr_get_under_lock_passes(self):
        self.tree.write("src/core/registry.hpp", LOCK_HEADER)
        self.tree.write(
            "src/core/registry.cpp",
            "void Registry::peek(std::shared_ptr<Node> n) {\n"
            "  util::MutexLock a(mu_a_);\n"
            "  use(n.get());\n"
            "}\n",
        )
        code, out = run_audit(self.tree.root)
        self.assertEqual(code, 0, out)

    def test_condvar_wait_under_lock_excluded(self):
        self.tree.write(
            "src/core/queue.hpp",
            "class Queue {\n"
            "  util::Mutex mu_;\n"
            "  util::CondVar cv_;\n"
            "};\n",
        )
        self.tree.write(
            "src/core/queue.cpp",
            "void Queue::block_until_ready() {\n"
            "  util::MutexLock lock(mu_);\n"
            "  while (empty()) cv_.wait(mu_);\n"
            "}\n",
        )
        code, out = run_audit(self.tree.root)
        self.assertEqual(code, 0, out)

    def test_lambda_body_does_not_inherit_held_locks(self):
        # The lambda runs later on a worker; flagging submit's *argument*
        # would be a false positive. Only the submit call itself counts.
        self.tree.write("src/core/registry.hpp", LOCK_HEADER)
        self.tree.write(
            "src/core/registry.cpp",
            "void Registry::schedule(util::ThreadPool& pool) {\n"
            "  util::MutexLock a(mu_a_);\n"
            "  task_ = [this] { helper_.join(); };\n"
            "}\n",
        )
        code, out = run_audit(self.tree.root)
        self.assertEqual(code, 0, out)

    def test_submit_after_lock_scope_closes_passes(self):
        self.tree.write("src/core/registry.hpp", LOCK_HEADER)
        self.tree.write(
            "src/core/registry.cpp",
            "void Registry::fan_out(util::ThreadPool& pool) {\n"
            "  { util::MutexLock a(mu_a_); prepare(); }\n"
            "  pool.submit([] { work(); });\n"
            "}\n",
        )
        code, out = run_audit(self.tree.root)
        self.assertEqual(code, 0, out)


class OutputModesTest(AuditTestCase):
    def _violating_tree(self):
        self.tree.write(
            "src/core/report.cpp",
            "void stamp(Report& r) {\n"
            "  r.at = std::chrono::steady_clock::now();\n"
            "}\n",
        )

    def test_json_output(self):
        self._violating_tree()
        code, out = run_audit(self.tree.root, "--json")
        self.assertEqual(code, 1, out)
        body = out[:out.rindex("determinism_audit:")]
        doc = json.loads(body)
        self.assertEqual(doc["tool"], "determinism_audit")
        self.assertEqual(doc["count"], 1)
        f = doc["findings"][0]
        self.assertEqual(f["code"], "DT001")
        self.assertEqual(f["path"], "src/core/report.cpp")
        self.assertEqual(f["line"], 2)

    def test_github_output(self):
        self._violating_tree()
        code, out = run_audit(self.tree.root, "--github")
        self.assertEqual(code, 1, out)
        self.assertIn(
            "::error file=src/core/report.cpp,line=2,title=DT001::", out)

    def test_clean_tree_all_modes_exit_zero(self):
        self.tree.write("src/core/ok.cpp",
                        "int add(int a, int b) { return a + b; }\n")
        for flags in ([], ["--json"], ["--github"]):
            code, out = run_audit(self.tree.root, *flags)
            self.assertEqual(code, 0, out)


if __name__ == "__main__":
    unittest.main(verbosity=2)
