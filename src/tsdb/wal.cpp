#include "tsdb/wal.hpp"

#include <cstdio>

#include "tsdb/coding.hpp"

namespace tacc::tsdb {

namespace {

constexpr std::size_t kWalHeaderSize = 4 + 4 + 4 + 8 + 4;
constexpr std::size_t kFrameOverhead = 8;  // u32 len + u32 crc
constexpr std::uint64_t kMaxRecordBytes = 1ull << 30;

void append_string(std::vector<std::uint8_t>& out, std::string_view s) {
  coding::put_varint(out, s.size());
  out.insert(out.end(), s.begin(), s.end());
}

std::vector<std::uint8_t> encode_payload(const WalRecord& rec) {
  std::vector<std::uint8_t> p;
  switch (rec.type) {
    case WalRecordType::CheckpointEnd:
      p.push_back(kWalCheckpointEndTag);
      return p;
    case WalRecordType::Checkpoint:
      p.push_back(kWalCheckpointTag);
      break;
    case WalRecordType::Batch:
      p.push_back(kWalBatchTag);
      break;
  }
  append_string(p, rec.metric);
  coding::put_varint(p, rec.tags.size());
  for (const auto& [k, v] : rec.tags) {
    append_string(p, k);
    append_string(p, v);
  }
  if (rec.type == WalRecordType::Checkpoint) {
    coding::put_varint(p, rec.cum_sealed);
  }
  coding::put_varint(p, rec.points.size());
  util::SimTime prev = 0;
  for (std::size_t i = 0; i < rec.points.size(); ++i) {
    const util::SimTime t = rec.points[i].time;
    coding::put_varint(p, coding::zigzag(i == 0 ? t : t - prev));
    coding::put_u64(p, coding::double_bits(rec.points[i].value));
    prev = t;
  }
  return p;
}

/// Parses one payload; returns false on any structural problem (the
/// caller treats the frame as torn — the writer never produces this).
bool decode_payload(std::span<const std::uint8_t> p, WalRecord& out) {
  const std::uint8_t* d = p.data();
  const std::size_t size = p.size();
  std::size_t pos = 0;
  if (size == 0) return false;
  const std::uint8_t type = d[pos++];
  if (type == kWalCheckpointEndTag) {
    out.type = WalRecordType::CheckpointEnd;
    return pos == size;
  }
  if (type == kWalCheckpointTag) {
    out.type = WalRecordType::Checkpoint;
  } else if (type == kWalBatchTag) {
    out.type = WalRecordType::Batch;
  } else {
    return false;
  }

  const auto read_string = [&](std::string& s) {
    std::uint64_t len = 0;
    if (!coding::get_varint_checked(d, size, pos, len)) return false;
    if (size - pos < len) return false;
    s.assign(reinterpret_cast<const char*>(d) + pos,
             static_cast<std::size_t>(len));
    pos += static_cast<std::size_t>(len);
    return true;
  };

  if (!read_string(out.metric)) return false;
  std::uint64_t n_tags = 0;
  if (!coding::get_varint_checked(d, size, pos, n_tags)) return false;
  for (std::uint64_t i = 0; i < n_tags; ++i) {
    std::string k;
    std::string v;
    if (!read_string(k) || !read_string(v)) return false;
    out.tags.emplace(std::move(k), std::move(v));
  }
  if (out.type == WalRecordType::Checkpoint &&
      !coding::get_varint_checked(d, size, pos, out.cum_sealed)) {
    return false;
  }
  std::uint64_t n_points = 0;
  if (!coding::get_varint_checked(d, size, pos, n_points)) return false;
  if ((size - pos) / 9 + 1 < n_points) return false;  // cheap bound: >=9B/pt
  out.points.reserve(static_cast<std::size_t>(n_points));
  util::SimTime prev = 0;
  for (std::uint64_t i = 0; i < n_points; ++i) {
    std::uint64_t zz = 0;
    if (!coding::get_varint_checked(d, size, pos, zz)) return false;
    if (size - pos < 8) return false;
    const util::SimTime t =
        i == 0 ? coding::unzigzag(zz) : prev + coding::unzigzag(zz);
    out.points.push_back({t, coding::bits_double(coding::get_u64(d + pos))});
    pos += 8;
    prev = t;
  }
  return pos == size;
}

}  // namespace

std::string wal_path(const std::string& dir, std::uint32_t shard,
                     std::uint64_t gen) {
  char name[40];
  std::snprintf(name, sizeof(name), "wal-%03u-%06llu.log", shard,
                static_cast<unsigned long long>(gen));
  return dir + "/" + name;
}

WalReplay replay_wal(const std::string& path) {
  const std::vector<std::uint8_t> data = util::read_file(path);
  if (data.size() < kWalHeaderSize) {
    throw CorruptionError("wal header too short", 0);
  }
  if (coding::get_u32(data.data()) != kWalMagic) {
    throw CorruptionError("bad wal magic", 0);
  }
  if (coding::get_u32(data.data() + 4) != kWalFormatVersion) {
    throw CorruptionError("unsupported wal version", 4);
  }
  if (util::crc32c(data.data(), kWalHeaderSize - 4) !=
      coding::get_u32(data.data() + kWalHeaderSize - 4)) {
    throw CorruptionError("wal header checksum mismatch", 0);
  }

  WalReplay out;
  out.shard = coding::get_u32(data.data() + 8);
  out.gen = coding::get_u64(data.data() + 12);

  std::size_t pos = kWalHeaderSize;
  while (pos < data.size()) {
    if (data.size() - pos < kFrameOverhead) {
      out.torn_offset = pos;
      break;
    }
    const std::uint64_t len = coding::get_u32(data.data() + pos);
    if (len == 0 || len > kMaxRecordBytes ||
        len > data.size() - pos - kFrameOverhead) {
      out.torn_offset = pos;
      break;
    }
    const std::uint32_t crc = coding::get_u32(data.data() + pos + 4);
    const std::uint8_t* payload = data.data() + pos + kFrameOverhead;
    if (util::crc32c(payload, static_cast<std::size_t>(len)) != crc) {
      out.torn_offset = pos;
      break;
    }
    WalRecord rec;
    if (!decode_payload({payload, static_cast<std::size_t>(len)}, rec)) {
      out.torn_offset = pos;
      break;
    }
    if (rec.type == WalRecordType::CheckpointEnd) {
      out.checkpoint_complete = true;
    } else {
      out.records.push_back(std::move(rec));
    }
    pos += kFrameOverhead + static_cast<std::size_t>(len);
  }
  return out;
}

WalWriter::WalWriter(const std::string& path, std::uint32_t shard,
                     std::uint64_t gen, WalSync sync_mode,
                     std::shared_ptr<const util::FaultPlan> faults)
    : path_(path),
      fault_key_("shard-" + std::to_string(shard)),
      gen_(gen),
      sync_mode_(sync_mode),
      faults_(std::move(faults)),
      file_(path, /*truncate=*/true) {
  std::vector<std::uint8_t> h;
  coding::put_u32(h, kWalMagic);
  coding::put_u32(h, kWalFormatVersion);
  coding::put_u32(h, shard);
  coding::put_u64(h, gen);
  coding::put_u32(h, util::crc32c(h.data(), h.size()));
  file_.append(h);
}

void WalWriter::check_poisoned() const {
  if (poisoned_) throw InjectedCrash(std::string(util::kFaultWalAppend));
}

void WalWriter::append(const WalRecord& record) {
  check_poisoned();
  const std::vector<std::uint8_t> payload = encode_payload(record);
  std::vector<std::uint8_t> frame;
  frame.reserve(payload.size() + kFrameOverhead);
  coding::put_u32(frame, static_cast<std::uint32_t>(payload.size()));
  coding::put_u32(frame, util::crc32c(payload.data(), payload.size()));
  frame.insert(frame.end(), payload.begin(), payload.end());

  if (faults_ != nullptr && !faults_->empty()) {
    const std::uint64_t salt = ops_++;
    // Both sites tear the frame *before* it completes: a record must never
    // be durable while its put reported failure, or recovery would replay
    // a point the caller was told did not land. (wal.sync is consulted
    // here too because in Always mode the sync is part of the append op.)
    std::string_view site;
    if (faults_->decide(util::kFaultWalAppend, fault_key_, salt, 0).error) {
      site = util::kFaultWalAppend;
    } else if (sync_mode_ == WalSync::Always &&
               faults_->decide(util::kFaultWalSync, fault_key_, salt, 0)
                   .error) {
      site = util::kFaultWalSync;
    }
    if (!site.empty()) {
      // Torn write: a deterministic prefix of the frame reaches the file,
      // like a process killed mid-write. The record's CRC can no longer
      // match, so replay stops exactly here.
      const auto torn = static_cast<std::size_t>(
          faults_->uniform(site, fault_key_, salt) *
          static_cast<double>(frame.size()));
      file_.append(std::span<const std::uint8_t>(frame).subspan(0, torn));
      file_.flush();
      poisoned_ = true;
      throw InjectedCrash(std::string(site));
    }
  }
  file_.append(frame);
  if (sync_mode_ == WalSync::Always) {
    file_.sync();
  } else {
    file_.flush();  // keep the kernel's view current for torn-tail realism
  }
}

void WalWriter::sync() {
  check_poisoned();
  if (sync_mode_ == WalSync::Never) {
    file_.flush();
    return;
  }
  if (faults_ != nullptr && !faults_->empty()) {
    const std::uint64_t salt = ops_++;
    if (faults_->decide(util::kFaultWalSync, fault_key_, salt, 0).error) {
      file_.flush();
      poisoned_ = true;
      throw InjectedCrash(std::string(util::kFaultWalSync));
    }
  }
  file_.sync();
}

}  // namespace tacc::tsdb
