#include "tsdb/block.hpp"

#include <bit>
#include <cstring>

#include "tsdb/store.hpp"

namespace tacc::tsdb {

namespace {

constexpr std::uint64_t zigzag(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

constexpr std::int64_t unzigzag(std::uint64_t v) noexcept {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint64_t get_varint(const std::uint8_t* data, std::size_t& pos) noexcept {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    const std::uint8_t b = data[pos++];
    v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
  }
}

/// MSB-first bit appender over a byte vector.
class BitWriter {
 public:
  explicit BitWriter(std::vector<std::uint8_t>& out) noexcept : out_(out) {}

  void bit(bool b) { bits(b ? 1 : 0, 1); }

  /// Appends the low `n` bits of `v`, most significant first. n in [0, 64].
  void bits(std::uint64_t v, int n) {
    for (int i = n - 1; i >= 0; --i) {
      if (fill_ == 0) {
        out_.push_back(0);
        fill_ = 8;
      }
      --fill_;
      if ((v >> i) & 1) out_.back() |= static_cast<std::uint8_t>(1u << fill_);
    }
  }

 private:
  std::vector<std::uint8_t>& out_;
  int fill_ = 0;  // unused low bits remaining in out_.back()
};

/// Reads `n` bits starting at absolute bit offset `pos` (MSB-first),
/// advancing `pos`.
std::uint64_t read_bits(const std::uint8_t* data, std::size_t& pos,
                        int n) noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < n; ++i, ++pos) {
    v = (v << 1) |
        ((data[pos >> 3] >> (7 - (pos & 7))) & 1u);
  }
  return v;
}

std::uint64_t double_bits(double d) noexcept {
  return std::bit_cast<std::uint64_t>(d);
}

double bits_double(std::uint64_t b) noexcept {
  return std::bit_cast<double>(b);
}

}  // namespace

std::shared_ptr<const SealedBlock> SealedBlock::seal(
    std::span<const DataPoint> points) {
  auto block = std::shared_ptr<SealedBlock>(new SealedBlock());

  // Summary, with the exact folds tsdb::aggregate() applies so a bucket
  // answered from the summary is bit-identical to one answered by decode.
  std::vector<double> values;
  values.reserve(points.size());
  for (const auto& p : points) values.push_back(p.value);
  BlockSummary& s = block->summary_;
  s.t_min = points.front().time;
  s.t_max = points.back().time;
  s.count = static_cast<std::uint32_t>(points.size());
  s.sum = aggregate(Aggregator::Sum, values);
  s.min = aggregate(Aggregator::Min, values);
  s.max = aggregate(Aggregator::Max, values);

  // Timestamps: zigzag varints of t0, then delta, then delta-of-delta.
  auto& ts = block->times_;
  ts.reserve(points.size() + 16);
  util::SimTime prev_t = 0;
  util::SimTime prev_delta = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const util::SimTime t = points[i].time;
    if (i == 0) {
      put_varint(ts, zigzag(t));
    } else if (i == 1) {
      prev_delta = t - prev_t;
      put_varint(ts, zigzag(prev_delta));
    } else {
      const util::SimTime delta = t - prev_t;
      put_varint(ts, zigzag(delta - prev_delta));
      prev_delta = delta;
    }
    prev_t = t;
  }

  // Values: Gorilla XOR with a leading/meaningful-bit window.
  BitWriter w(block->values_);
  std::uint64_t prev_bits = 0;
  int win_lead = 0;
  int win_bits = 0;
  bool have_window = false;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const std::uint64_t bits = double_bits(points[i].value);
    if (i == 0) {
      w.bits(bits, 64);
    } else {
      const std::uint64_t x = bits ^ prev_bits;
      if (x == 0) {
        w.bit(false);
      } else {
        w.bit(true);
        int lead = std::countl_zero(x);
        if (lead > 31) lead = 31;  // 5-bit field
        const int trail = std::countr_zero(x);
        if (have_window && lead >= win_lead &&
            trail >= 64 - win_lead - win_bits) {
          // Fits the previous window: reuse it, write only its bits.
          w.bit(false);
          w.bits(x >> (64 - win_lead - win_bits), win_bits);
        } else {
          win_lead = lead;
          win_bits = 64 - lead - trail;
          have_window = true;
          w.bit(true);
          w.bits(static_cast<std::uint64_t>(win_lead), 5);
          w.bits(static_cast<std::uint64_t>(win_bits - 1), 6);
          w.bits(x >> trail, win_bits);
        }
      }
    }
    prev_bits = bits;
  }

  block->times_.shrink_to_fit();
  block->values_.shrink_to_fit();
  return block;
}

bool SealedBlock::Cursor::next(DataPoint& out) noexcept {
  if (index_ >= block_->summary_.count) return false;
  const std::uint8_t* ts = block_->times_.data();
  const std::uint8_t* vs = block_->values_.data();

  if (index_ == 0) {
    prev_time_ = unzigzag(get_varint(ts, time_pos_));
    prev_bits_ = read_bits(vs, value_bit_, 64);
  } else {
    if (index_ == 1) {
      prev_delta_ = unzigzag(get_varint(ts, time_pos_));
    } else {
      prev_delta_ += unzigzag(get_varint(ts, time_pos_));
    }
    prev_time_ += prev_delta_;

    if (read_bits(vs, value_bit_, 1) != 0) {
      if (read_bits(vs, value_bit_, 1) != 0) {
        window_leading_ = static_cast<int>(read_bits(vs, value_bit_, 5));
        window_bits_ = static_cast<int>(read_bits(vs, value_bit_, 6)) + 1;
        have_window_ = true;
      }
      const std::uint64_t meaningful =
          read_bits(vs, value_bit_, window_bits_);
      prev_bits_ ^= meaningful << (64 - window_leading_ - window_bits_);
    }
  }

  ++index_;
  out.time = prev_time_;
  out.value = bits_double(prev_bits_);
  return true;
}

void SealedBlock::decode_append(std::vector<DataPoint>& out) const {
  out.reserve(out.size() + summary_.count);
  Cursor c(*this);
  DataPoint p;
  while (c.next(p)) out.push_back(p);
}

}  // namespace tacc::tsdb
