#include "tsdb/block.hpp"

#include <cstring>

#include "tsdb/coding.hpp"
#include "tsdb/store.hpp"

namespace tacc::tsdb {

namespace {

using coding::BitWriter;
using coding::read_bits;

/// Appends one timestamp delta-of-delta in its prefix-coded class:
/// '0' | '10'+7b | '110'+12b | '1110'+20b | '11110'+32b | '11111'+64b,
/// the payload being zigzag(dod). At a fixed cadence every point after
/// the second hits the 1-bit class.
void put_time_dod(BitWriter& w, std::int64_t dod) {
  const std::uint64_t u = coding::zigzag(dod);
  if (u == 0) {
    w.bit(false);
  } else if (u < (1ull << 7)) {
    w.bits(0b10, 2);
    w.bits(u, 7);
  } else if (u < (1ull << 12)) {
    w.bits(0b110, 3);
    w.bits(u, 12);
  } else if (u < (1ull << 20)) {
    w.bits(0b1110, 4);
    w.bits(u, 20);
  } else if (u < (1ull << 32)) {
    w.bits(0b11110, 5);
    w.bits(u, 32);
  } else {
    w.bits(0b11111, 5);
    w.bits(u, 64);
  }
}

std::int64_t get_time_dod(const std::uint8_t* data, std::size_t& pos) noexcept {
  if (read_bits(data, pos, 1) == 0) return 0;
  if (read_bits(data, pos, 1) == 0) {
    return coding::unzigzag(read_bits(data, pos, 7));
  }
  if (read_bits(data, pos, 1) == 0) {
    return coding::unzigzag(read_bits(data, pos, 12));
  }
  if (read_bits(data, pos, 1) == 0) {
    return coding::unzigzag(read_bits(data, pos, 20));
  }
  if (read_bits(data, pos, 1) == 0) {
    return coding::unzigzag(read_bits(data, pos, 32));
  }
  return coding::unzigzag(read_bits(data, pos, 64));
}

/// Encodes one downsample tier over time-sorted points: a varint entry
/// count, a NaN flag byte, then per entry the bucket (first absolute in
/// interval units, zigzag; then delta in units), the point count, and the
/// min/max doubles XOR'd against the previous entry's bit patterns. The
/// folds are aggregate()'s, so tier answers join query folds bit-exactly.
std::vector<std::uint8_t> encode_tier(std::span<const DataPoint> points,
                                      util::SimTime interval,
                                      std::uint32_t& entries, bool& has_nan) {
  std::vector<std::uint8_t> body;
  std::uint32_t n = 0;
  std::uint64_t prev_min = 0;
  std::uint64_t prev_max = 0;
  util::SimTime prev_bucket = 0;
  has_nan = false;
  std::vector<double> vals;
  std::size_t i = 0;
  while (i < points.size()) {
    const util::SimTime b = points[i].time - points[i].time % interval;
    std::size_t j = i;
    vals.clear();
    while (j < points.size() &&
           points[j].time - points[j].time % interval == b) {
      vals.push_back(points[j].value);
      ++j;
    }
    const double mn = aggregate(Aggregator::Min, vals);
    const double mx = aggregate(Aggregator::Max, vals);
    if (mn != mn || mx != mx) has_nan = true;
    if (n == 0) {
      coding::put_varint(body, coding::zigzag(b / interval));
    } else {
      coding::put_varint(
          body, static_cast<std::uint64_t>((b - prev_bucket) / interval));
    }
    coding::put_varint(body, j - i);
    const std::uint64_t mnb = coding::double_bits(mn);
    const std::uint64_t mxb = coding::double_bits(mx);
    coding::put_varint(body, mnb ^ prev_min);
    coding::put_varint(body, mxb ^ prev_max);
    prev_min = mnb;
    prev_max = mxb;
    prev_bucket = b;
    ++n;
    i = j;
  }
  std::vector<std::uint8_t> out;
  out.reserve(body.size() + 4);
  coding::put_varint(out, n);
  out.push_back(has_nan ? 1 : 0);
  out.insert(out.end(), body.begin(), body.end());
  entries = n;
  return out;
}

}  // namespace

std::shared_ptr<const SealedBlock> SealedBlock::seal(
    std::span<const DataPoint> points,
    std::span<const util::SimTime> tier_intervals) {
  auto block = std::shared_ptr<SealedBlock>(new SealedBlock());

  // Summary, with the exact folds tsdb::aggregate() applies so a bucket
  // answered from the summary is bit-identical to one answered by decode.
  std::vector<double> values;
  values.reserve(points.size());
  for (const auto& p : points) values.push_back(p.value);
  BlockSummary& s = block->summary_;
  s.t_min = points.front().time;
  s.t_max = points.back().time;
  s.count = static_cast<std::uint32_t>(points.size());
  s.sum = aggregate(Aggregator::Sum, values);
  s.min = aggregate(Aggregator::Min, values);
  s.max = aggregate(Aggregator::Max, values);

  // Timestamps: t0 as 64 raw bits, then bit-packed delta-of-delta.
  BitWriter tw(block->own_times_);
  util::SimTime prev_t = 0;
  util::SimTime prev_delta = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const util::SimTime t = points[i].time;
    if (i == 0) {
      tw.bits(static_cast<std::uint64_t>(t), 64);
    } else {
      const util::SimTime delta = t - prev_t;
      put_time_dod(tw, delta - prev_delta);
      prev_delta = delta;
    }
    prev_t = t;
  }

  // Values: Gorilla XOR with a leading/meaningful-bit window.
  BitWriter w(block->own_values_);
  std::uint64_t prev_bits = 0;
  int win_lead = 0;
  int win_bits = 0;
  bool have_window = false;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const std::uint64_t bits = coding::double_bits(points[i].value);
    if (i == 0) {
      w.bits(bits, 64);
    } else {
      const std::uint64_t x = bits ^ prev_bits;
      if (x == 0) {
        w.bit(false);
      } else {
        w.bit(true);
        int lead = std::countl_zero(x);
        if (lead > 31) lead = 31;  // 5-bit field
        const int trail = std::countr_zero(x);
        if (have_window && lead >= win_lead &&
            trail >= 64 - win_lead - win_bits) {
          // Fits the previous window: reuse it, write only its bits.
          w.bit(false);
          w.bits(x >> (64 - win_lead - win_bits), win_bits);
        } else {
          win_lead = lead;
          win_bits = 64 - lead - trail;
          have_window = true;
          w.bit(true);
          w.bits(static_cast<std::uint64_t>(win_lead), 5);
          w.bits(static_cast<std::uint64_t>(win_bits - 1), 6);
          w.bits(x >> trail, win_bits);
        }
      }
    }
    prev_bits = bits;
  }

  block->own_times_.shrink_to_fit();
  block->own_values_.shrink_to_fit();
  block->times_ = block->own_times_;
  block->values_ = block->own_values_;

  block->own_tiers_.reserve(tier_intervals.size());
  block->tiers_.reserve(tier_intervals.size());
  for (const util::SimTime interval : tier_intervals) {
    if (interval <= 0) continue;
    TierLevel level;
    level.interval = interval;
    block->own_tiers_.push_back(
        encode_tier(points, interval, level.entries, level.has_nan));
    level.data = block->own_tiers_.back();
    block->tiers_.push_back(level);
  }
  return block;
}

std::shared_ptr<const SealedBlock> SealedBlock::from_parts(
    const BlockSummary& summary, std::span<const std::uint8_t> times,
    std::span<const std::uint8_t> values, std::vector<TierLevel> tiers,
    std::shared_ptr<const void> backing) {
  auto block = std::shared_ptr<SealedBlock>(new SealedBlock());
  block->summary_ = summary;
  block->times_ = times;
  block->values_ = values;
  for (auto& t : tiers) {
    // The caller validated the enclosing checksum; parse the tier header.
    if (t.data.empty()) {
      t.entries = 0;
      t.has_nan = false;
      continue;
    }
    std::size_t pos = 0;
    t.entries =
        static_cast<std::uint32_t>(coding::get_varint(t.data.data(), pos));
    t.has_nan = pos < t.data.size() && t.data[pos] != 0;
  }
  block->tiers_ = std::move(tiers);
  block->backing_ = std::move(backing);
  return block;
}

bool SealedBlock::Cursor::next(DataPoint& out) noexcept {
  if (index_ >= block_->summary_.count || !block_->has_raw()) return false;
  const std::uint8_t* ts = block_->times_.data();
  const std::uint8_t* vs = block_->values_.data();

  if (index_ == 0) {
    prev_time_ = static_cast<util::SimTime>(read_bits(ts, time_bit_, 64));
    prev_bits_ = read_bits(vs, value_bit_, 64);
  } else {
    prev_delta_ += get_time_dod(ts, time_bit_);
    prev_time_ += prev_delta_;

    if (read_bits(vs, value_bit_, 1) != 0) {
      if (read_bits(vs, value_bit_, 1) != 0) {
        window_leading_ = static_cast<int>(read_bits(vs, value_bit_, 5));
        window_bits_ = static_cast<int>(read_bits(vs, value_bit_, 6)) + 1;
        have_window_ = true;
      }
      const std::uint64_t meaningful =
          read_bits(vs, value_bit_, window_bits_);
      prev_bits_ ^= meaningful << (64 - window_leading_ - window_bits_);
    }
  }

  ++index_;
  out.time = prev_time_;
  out.value = coding::bits_double(prev_bits_);
  return true;
}

SealedBlock::TierCursor::TierCursor(const TierLevel& level) noexcept
    : level_(&level) {
  if (!level.data.empty()) {
    (void)coding::get_varint(level.data.data(), pos_);  // entry count
    ++pos_;                                             // NaN flag byte
  }
}

bool SealedBlock::TierCursor::next(TierEntry& out) noexcept {
  if (index_ >= level_->entries) return false;
  const std::uint8_t* d = level_->data.data();
  if (index_ == 0) {
    prev_bucket_ = coding::unzigzag(coding::get_varint(d, pos_)) *
                   level_->interval;
  } else {
    prev_bucket_ += static_cast<util::SimTime>(coding::get_varint(d, pos_)) *
                    level_->interval;
  }
  out.bucket = prev_bucket_;
  out.count = static_cast<std::uint32_t>(coding::get_varint(d, pos_));
  prev_min_bits_ ^= coding::get_varint(d, pos_);
  prev_max_bits_ ^= coding::get_varint(d, pos_);
  out.min = coding::bits_double(prev_min_bits_);
  out.max = coding::bits_double(prev_max_bits_);
  ++index_;
  return true;
}

void SealedBlock::decode_append(std::vector<DataPoint>& out) const {
  if (!has_raw()) return;
  out.reserve(out.size() + summary_.count);
  Cursor c(*this);
  DataPoint p;
  while (c.next(p)) out.push_back(p);
}

}  // namespace tacc::tsdb
