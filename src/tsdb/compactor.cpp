#include "tsdb/compactor.hpp"

#include "tsdb/blockfile.hpp"
#include "tsdb/store.hpp"

namespace tacc::tsdb {

Compactor::Compactor(Store& store, CompactorOptions options)
    : store_(store), options_(options) {
  thread_ = std::thread([this] { loop(); });
}

Compactor::~Compactor() { stop(); }

void Compactor::stop() {
  {
    util::MutexLock lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void Compactor::run_once(bool with_compact) {
  if (dead_.load(std::memory_order_acquire)) return;
  try {
    store_.flush();
    if (with_compact && store_.compact()) {
      compactions_.fetch_add(1, std::memory_order_relaxed);
    }
    cycles_.fetch_add(1, std::memory_order_relaxed);
  } catch (const InjectedCrash&) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    dead_.store(true, std::memory_order_release);
  }
}

void Compactor::loop() {
  std::size_t cycle = 0;
  for (;;) {
    {
      util::MutexLock lock(mu_);
      if (!stopping_) cv_.wait_for(mu_, options_.period);
      if (stopping_) return;
    }
    ++cycle;
    run_once(options_.compact_every != 0 &&
             cycle % options_.compact_every == 0);
  }
}

}  // namespace tacc::tsdb
