#include "tsdb/blockfile.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "tsdb/coding.hpp"

namespace tacc::tsdb {

namespace {

constexpr std::size_t kHeaderSize = 4 + 4 + 8 + 4;
constexpr std::size_t kFooterSize = 1 + 8 + 4 + 4;

/// Bounds-checked reader over untrusted mapped bytes. Every failure is a
/// CorruptionError carrying the offset of the unit being parsed.
class ByteReader {
 public:
  ByteReader(std::span<const std::uint8_t> data, std::size_t pos)
      : data_(data), pos_(pos) {}

  std::size_t pos() const noexcept { return pos_; }

  std::uint8_t u8(std::size_t unit) {
    need(1, unit);
    return data_[pos_++];
  }

  std::uint32_t u32(std::size_t unit) {
    need(4, unit);
    const std::uint32_t v = coding::get_u32(data_.data() + pos_);
    pos_ += 4;
    return v;
  }

  std::uint64_t u64(std::size_t unit) {
    need(8, unit);
    const std::uint64_t v = coding::get_u64(data_.data() + pos_);
    pos_ += 8;
    return v;
  }

  std::uint64_t varint(std::size_t unit) {
    std::uint64_t v = 0;
    if (!coding::get_varint_checked(data_.data(), data_.size(), pos_, v)) {
      throw CorruptionError("truncated varint", unit);
    }
    return v;
  }

  std::span<const std::uint8_t> bytes(std::size_t n, std::size_t unit) {
    need(n, unit);
    const auto s = data_.subspan(pos_, n);
    pos_ += n;
    return s;
  }

  void check_crc(std::size_t unit_start, const char* what) {
    const std::uint32_t want =
        util::crc32c(data_.data() + unit_start, pos_ - unit_start);
    const std::uint32_t got = u32(unit_start);
    if (want != got) {
      throw CorruptionError(std::string(what) + " checksum mismatch",
                            unit_start);
    }
  }

 private:
  void need(std::size_t n, std::size_t unit) {
    if (data_.size() - pos_ < n) {
      throw CorruptionError("truncated record", unit);
    }
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

void append_crc(std::vector<std::uint8_t>& buf, std::size_t start) {
  coding::put_u32(buf, util::crc32c(buf.data() + start, buf.size() - start));
}

void append_tagged_string(std::vector<std::uint8_t>& buf,
                          std::string_view s) {
  coding::put_varint(buf, s.size());
  buf.insert(buf.end(), s.begin(), s.end());
}

/// Serializes the whole segment into one buffer; write_segment then
/// either writes it fully or, under an injected crash, a deterministic
/// torn prefix of it.
std::vector<std::uint8_t> serialize_segment(
    std::uint64_t file_seq, std::span<const SeriesPayload> series) {
  std::vector<std::uint8_t> buf;
  coding::put_u32(buf, kSegmentMagic);
  coding::put_u32(buf, kSegmentFormatVersion);
  coding::put_u64(buf, file_seq);
  append_crc(buf, 0);

  for (const auto& sp : series) {
    const std::size_t rec_start = buf.size();
    buf.push_back(kSegmentSeriesTag);
    append_tagged_string(buf, sp.metric);
    coding::put_varint(buf, sp.tags.size());
    for (const auto& [k, v] : sp.tags) {
      append_tagged_string(buf, k);
      append_tagged_string(buf, v);
    }
    coding::put_varint(buf, sp.cum_sealed);
    coding::put_varint(buf, sp.blocks.size());
    append_crc(buf, rec_start);

    for (const auto& block : sp.blocks) {
      const std::size_t blk_start = buf.size();
      const BlockSummary& s = block->summary();
      buf.push_back(kSegmentBlockTag);
      coding::put_varint(buf, coding::zigzag(s.t_min));
      coding::put_varint(buf, static_cast<std::uint64_t>(s.t_max - s.t_min));
      coding::put_varint(buf, s.count);
      coding::put_u64(buf, coding::double_bits(s.sum));
      coding::put_u64(buf, coding::double_bits(s.min));
      coding::put_u64(buf, coding::double_bits(s.max));
      const auto times = block->times_bytes();
      const auto values = block->values_bytes();
      coding::put_varint(buf, times.size());
      coding::put_varint(buf, values.size());
      coding::put_varint(buf, block->tiers().size());
      for (const auto& t : block->tiers()) {
        coding::put_varint(buf, static_cast<std::uint64_t>(t.interval));
        coding::put_varint(buf, t.data.size());
      }
      buf.insert(buf.end(), times.begin(), times.end());
      buf.insert(buf.end(), values.begin(), values.end());
      for (const auto& t : block->tiers()) {
        buf.insert(buf.end(), t.data.begin(), t.data.end());
      }
      append_crc(buf, blk_start);
    }
  }

  const std::size_t footer_start = buf.size();
  buf.push_back(kSegmentFooterTag);
  coding::put_u64(buf, series.size());
  append_crc(buf, footer_start);
  coding::put_u32(buf, kSegmentFooterMagic);
  return buf;
}

/// Consults the fault plan for one file write; on an injected error,
/// writes a deterministic torn prefix of `buf` to `path` and throws.
void write_with_crash_injection(const std::string& path,
                                std::span<const std::uint8_t> buf,
                                const util::FaultPlan* faults,
                                std::string_view site, std::string_view key,
                                std::uint64_t salt) {
  std::size_t limit = buf.size();
  bool crash = false;
  if (faults != nullptr && !faults->empty()) {
    const auto d = faults->decide(site, key, salt, 0);
    if (d.error) {
      crash = true;
      limit = static_cast<std::size_t>(
          faults->uniform(site, key, salt) * static_cast<double>(buf.size()));
    }
  }
  util::FileWriter w(path, /*truncate=*/true);
  w.append(buf.subspan(0, limit));
  if (crash) {
    w.close();  // the torn prefix reaches the file, like a killed process
    throw InjectedCrash(std::string(site));
  }
  w.sync();
  w.close();
}

}  // namespace

std::string segment_path(const std::string& dir, std::uint64_t seq) {
  char name[32];
  std::snprintf(name, sizeof(name), "seg-%06llu.blk",
                static_cast<unsigned long long>(seq));
  return dir + "/" + name;
}

void write_segment(const std::string& path, std::uint64_t file_seq,
                   std::span<const SeriesPayload> series,
                   const util::FaultPlan* faults, std::string_view fault_key) {
  const std::vector<std::uint8_t> buf = serialize_segment(file_seq, series);
  write_with_crash_injection(path, buf, faults, util::kFaultBlockFileWrite,
                             fault_key, file_seq);
}

LoadedSegment load_segment(const std::string& path) {
  LoadedSegment out;
  out.file = util::MmapFile::map(path);
  const auto data = out.file->bytes();

  if (data.size() < kHeaderSize + kFooterSize) {
    throw CorruptionError("segment too short", 0);
  }
  ByteReader header(data, 0);
  if (header.u32(0) != kSegmentMagic) {
    throw CorruptionError("bad segment magic", 0);
  }
  if (header.u32(0) != kSegmentFormatVersion) {
    throw CorruptionError("unsupported segment version", 4);
  }
  out.file_seq = header.u64(0);
  header.check_crc(0, "segment header");

  // Footer first: it is the commit marker, so a torn tail is reported as
  // "no footer" before any body record is trusted.
  const std::size_t footer_off = data.size() - kFooterSize;
  ByteReader footer(data, footer_off);
  if (footer.u8(footer_off) != kSegmentFooterTag) {
    throw CorruptionError("missing segment footer", footer_off);
  }
  const std::uint64_t n_series = footer.u64(footer_off);
  footer.check_crc(footer_off, "segment footer");
  if (footer.u32(footer_off) != kSegmentFooterMagic) {
    throw CorruptionError("bad segment footer magic", footer_off);
  }

  ByteReader r({data.data(), footer_off}, kHeaderSize);
  out.series.reserve(n_series);
  for (std::uint64_t si = 0; si < n_series; ++si) {
    const std::size_t rec_start = r.pos();
    if (r.u8(rec_start) != kSegmentSeriesTag) {
      throw CorruptionError("bad series tag", rec_start);
    }
    SeriesPayload sp;
    const auto metric = r.bytes(r.varint(rec_start), rec_start);
    sp.metric.assign(metric.begin(), metric.end());
    const std::uint64_t n_tags = r.varint(rec_start);
    for (std::uint64_t ti = 0; ti < n_tags; ++ti) {
      const auto k = r.bytes(r.varint(rec_start), rec_start);
      const auto v = r.bytes(r.varint(rec_start), rec_start);
      sp.tags.emplace(std::string(k.begin(), k.end()),
                      std::string(v.begin(), v.end()));
    }
    sp.cum_sealed = r.varint(rec_start);
    const std::uint64_t n_blocks = r.varint(rec_start);
    r.check_crc(rec_start, "series record");

    sp.blocks.reserve(n_blocks);
    for (std::uint64_t bi = 0; bi < n_blocks; ++bi) {
      const std::size_t blk_start = r.pos();
      if (r.u8(blk_start) != kSegmentBlockTag) {
        throw CorruptionError("bad block tag", blk_start);
      }
      BlockSummary s;
      s.t_min = coding::unzigzag(r.varint(blk_start));
      s.t_max = s.t_min + static_cast<util::SimTime>(r.varint(blk_start));
      s.count = static_cast<std::uint32_t>(r.varint(blk_start));
      s.sum = coding::bits_double(r.u64(blk_start));
      s.min = coding::bits_double(r.u64(blk_start));
      s.max = coding::bits_double(r.u64(blk_start));
      if (s.count == 0) {
        throw CorruptionError("empty block", blk_start);
      }
      const std::uint64_t times_len = r.varint(blk_start);
      const std::uint64_t values_len = r.varint(blk_start);
      if ((times_len == 0) != (values_len == 0)) {
        throw CorruptionError("half-empty block streams", blk_start);
      }
      const std::uint64_t n_tiers = r.varint(blk_start);
      std::vector<TierLevel> tiers(n_tiers);
      for (auto& t : tiers) {
        t.interval = static_cast<util::SimTime>(r.varint(blk_start));
        if (t.interval <= 0) {
          throw CorruptionError("bad tier interval", blk_start);
        }
        // entries/has_nan parsed by from_parts; reuse `entries` to stage
        // the stream length until the data spans are cut below.
        t.entries = static_cast<std::uint32_t>(r.varint(blk_start));
      }
      const auto times = r.bytes(times_len, blk_start);
      const auto values = r.bytes(values_len, blk_start);
      for (auto& t : tiers) {
        t.data = r.bytes(t.entries, blk_start);
        t.entries = 0;
      }
      r.check_crc(blk_start, "block record");
      sp.blocks.push_back(
          SealedBlock::from_parts(s, times, values, std::move(tiers),
                                  out.file));
    }
    out.series.push_back(std::move(sp));
  }
  if (r.pos() != footer_off) {
    throw CorruptionError("trailing bytes before footer", r.pos());
  }
  return out;
}

Manifest read_manifest(const std::string& dir) {
  const std::string path = dir + "/MANIFEST";
  if (!std::filesystem::exists(path)) return Manifest{};
  const std::vector<std::uint8_t> data = util::read_file(path);
  ByteReader r(data, 0);
  if (r.u32(0) != kManifestMagic) {
    throw CorruptionError("bad manifest magic", 0);
  }
  if (r.u32(0) != kManifestFormatVersion) {
    throw CorruptionError("unsupported manifest version", 4);
  }
  Manifest m;
  m.next_seq = r.u64(0);
  const std::uint32_t n = r.u32(0);
  m.segments.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) m.segments.push_back(r.u64(0));
  r.check_crc(0, "manifest");
  return m;
}

void write_manifest(const std::string& dir, const Manifest& manifest,
                    const util::FaultPlan* faults, std::string_view fault_site,
                    std::uint64_t salt) {
  std::vector<std::uint8_t> buf;
  coding::put_u32(buf, kManifestMagic);
  coding::put_u32(buf, kManifestFormatVersion);
  coding::put_u64(buf, manifest.next_seq);
  coding::put_u32(buf, static_cast<std::uint32_t>(manifest.segments.size()));
  for (const std::uint64_t s : manifest.segments) coding::put_u64(buf, s);
  append_crc(buf, 0);

  const std::string tmp = dir + "/MANIFEST.tmp";
  write_with_crash_injection(tmp, buf, faults, fault_site, "manifest", salt);
  util::atomic_replace(tmp, dir + "/MANIFEST");
}

}  // namespace tacc::tsdb
