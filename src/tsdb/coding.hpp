// Shared primitive codecs for the TSDB storage formats: zigzag, LEB128
// varints (vector append + bounds-checked read), MSB-first bit streams,
// and little-endian fixed-width loads/stores. Used by the sealed-block
// codec (block.cpp), the segment file format (blockfile.cpp), and the
// write-ahead log (wal.cpp) so all three agree byte-for-byte on the
// primitives the golden-file tests pin.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <vector>

namespace tacc::tsdb::coding {

constexpr std::uint64_t zigzag(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

constexpr std::int64_t unzigzag(std::uint64_t v) noexcept {
  return static_cast<std::int64_t>(v >> 1) ^ -static_cast<std::int64_t>(v & 1);
}

inline void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

/// Unchecked varint read for writer-produced (checksum-validated) streams.
inline std::uint64_t get_varint(const std::uint8_t* data,
                                std::size_t& pos) noexcept {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    const std::uint8_t b = data[pos++];
    v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
  }
}

/// Bounds-checked varint read for untrusted bytes (segment/WAL parsing
/// before checksums are verified). Returns false on truncation or a
/// varint longer than 10 bytes, leaving `pos` unspecified.
inline bool get_varint_checked(const std::uint8_t* data, std::size_t size,
                               std::size_t& pos, std::uint64_t& out) noexcept {
  std::uint64_t v = 0;
  int shift = 0;
  while (pos < size && shift < 64) {
    const std::uint8_t b = data[pos++];
    v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) {
      out = v;
      return true;
    }
    shift += 7;
  }
  return false;
}

inline void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

inline void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

inline std::uint32_t get_u32(const std::uint8_t* p) noexcept {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

inline std::uint64_t get_u64(const std::uint8_t* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

inline std::uint64_t double_bits(double d) noexcept {
  return std::bit_cast<std::uint64_t>(d);
}

inline double bits_double(std::uint64_t b) noexcept {
  return std::bit_cast<double>(b);
}

/// MSB-first bit appender over a byte vector.
class BitWriter {
 public:
  explicit BitWriter(std::vector<std::uint8_t>& out) noexcept : out_(out) {}

  void bit(bool b) { bits(b ? 1 : 0, 1); }

  /// Appends the low `n` bits of `v`, most significant first. n in [0, 64].
  void bits(std::uint64_t v, int n) {
    for (int i = n - 1; i >= 0; --i) {
      if (fill_ == 0) {
        out_.push_back(0);
        fill_ = 8;
      }
      --fill_;
      if ((v >> i) & 1) out_.back() |= static_cast<std::uint8_t>(1u << fill_);
    }
  }

 private:
  std::vector<std::uint8_t>& out_;
  int fill_ = 0;  // unused low bits remaining in out_.back()
};

/// Reads `n` bits starting at absolute bit offset `pos` (MSB-first),
/// advancing `pos`.
inline std::uint64_t read_bits(const std::uint8_t* data, std::size_t& pos,
                               int n) noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < n; ++i, ++pos) {
    v = (v << 1) | ((data[pos >> 3] >> (7 - (pos & 7))) & 1u);
  }
  return v;
}

}  // namespace tacc::tsdb::coding
