// Immutable compressed blocks for the time-series store's sealed tier.
//
// A series lives as a small mutable head buffer plus a run of SealedBlocks,
// each holding a fixed-size chunk of the series' append sequence in
// compressed form (see docs/ARCHITECTURE.md, "TSDB storage format"):
//
//   * Timestamps: delta-of-delta, zigzag + LEB128 varint per point. At a
//     regular cadence the second difference is zero, so each timestamp
//     after the second costs one byte.
//   * Values: Gorilla-style XOR of consecutive IEEE-754 bit patterns with
//     leading/meaningful-bit windows, bit-packed. Near-constant counters
//     cost ~1 bit per point; slowly-moving integral counters a few bytes.
//
// Every block carries a summary (t_min, t_max, count, sum, min, max) so
// queries can skip blocks entirely outside their time range and answer
// downsample buckets that cover a whole block straight from the summary
// without decoding (the rollup fast path). The summary aggregates are
// computed with the exact same folds as tsdb::aggregate(), so a
// summary-answered bucket is bit-identical to the decoded answer.
//
// Blocks are immutable after seal(): they can be shared across query
// snapshots by shared_ptr with no further locking.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "util/clock.hpp"

namespace tacc::tsdb {

struct DataPoint {
  util::SimTime time = 0;
  double value = 0.0;
};

/// Per-block rollup summary. `sum`, `min`, `max` are computed over the
/// block's values in stored (time-sorted) order with the same folds
/// tsdb::aggregate() uses, so rollup answers match decoded answers bit for
/// bit.
struct BlockSummary {
  util::SimTime t_min = 0;
  util::SimTime t_max = 0;
  std::uint32_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
};

class SealedBlock {
 public:
  /// Compresses `points` (which must be sorted by time; ties keep their
  /// order) into an immutable block. Requires a non-empty span.
  static std::shared_ptr<const SealedBlock> seal(
      std::span<const DataPoint> points);

  const BlockSummary& summary() const noexcept { return summary_; }
  std::uint32_t count() const noexcept { return summary_.count; }
  util::SimTime t_min() const noexcept { return summary_.t_min; }
  util::SimTime t_max() const noexcept { return summary_.t_max; }

  /// Compressed payload size (timestamp stream + value stream), the number
  /// the bytes/point benchmarks report.
  std::size_t payload_bytes() const noexcept {
    return times_.size() + values_.size();
  }

  /// Streaming decoder: yields the block's points in stored order without
  /// materializing them. Cheap to construct; hold one per block being read.
  class Cursor {
   public:
    explicit Cursor(const SealedBlock& block) noexcept : block_(&block) {}
    /// Decodes the next point into `out`; returns false once exhausted.
    bool next(DataPoint& out) noexcept;

   private:
    const SealedBlock* block_;
    std::uint32_t index_ = 0;
    std::size_t time_pos_ = 0;   // byte offset into times_
    std::size_t value_bit_ = 0;  // bit offset into values_
    util::SimTime prev_time_ = 0;
    util::SimTime prev_delta_ = 0;
    std::uint64_t prev_bits_ = 0;
    int window_leading_ = 0;
    int window_bits_ = 0;
    bool have_window_ = false;
  };
  Cursor cursor() const noexcept { return Cursor(*this); }

  /// Decodes the whole block, appending to `out`.
  void decode_append(std::vector<DataPoint>& out) const;

 private:
  SealedBlock() = default;

  BlockSummary summary_;
  std::vector<std::uint8_t> times_;   // zigzag-varint delta-of-delta stream
  std::vector<std::uint8_t> values_;  // Gorilla XOR bitstream
};

}  // namespace tacc::tsdb
