// Immutable compressed blocks for the time-series store's sealed tier.
//
// A series lives as a small mutable head buffer plus a run of SealedBlocks,
// each holding a fixed-size chunk of the series' append sequence in
// compressed form (see docs/ARCHITECTURE.md, "TSDB storage format"):
//
//   * Timestamps: Gorilla-style bit-packed delta-of-delta. The first
//     timestamp is 64 raw bits; every later point encodes
//     zigzag(delta - prev_delta) in a prefix-coded class ('0' for zero,
//     then 7/12/20/32/64-bit classes). At a regular cadence the second
//     difference is zero, so each timestamp after the second costs one
//     *bit* (the varint codec this replaced cost one byte).
//   * Values: Gorilla-style XOR of consecutive IEEE-754 bit patterns with
//     leading/meaningful-bit windows, bit-packed. Near-constant counters
//     cost ~1 bit per point; slowly-moving integral counters a few bytes.
//
// Every block carries a summary (t_min, t_max, count, sum, min, max) so
// queries can skip blocks entirely outside their time range and answer
// downsample buckets that cover a whole block straight from the summary
// without decoding (the rollup fast path). The summary aggregates are
// computed with the exact same folds as tsdb::aggregate(), so a
// summary-answered bucket is bit-identical to the decoded answer.
//
// Durable stores additionally attach downsample *tiers* at seal time
// (StoreOptions::tier_intervals, e.g. 5 min / 1 h): per tier a compact
// byte stream of (bucket, count, min, max) entries partitioning the
// block's time-sorted points into consecutive interval-aligned runs, each
// folded with aggregate()'s Min/Max folds. A foldable downsample query
// whose bucket is a multiple of a tier interval answers whole blocks from
// tier entries without touching raw points — by associativity of the
// leftmost-tie min/max folds this is bit-identical to decoding (blocks
// whose tier entries went NaN are excluded and decode instead).
//
// Blocks are immutable after seal(): they can be shared across query
// snapshots by shared_ptr with no further locking. Blocks loaded from a
// segment file reference the file's memory mapping (from_parts) and pin
// it via `backing`; a retention "ghost" block has summary + tiers but no
// raw streams (has_raw() == false) and decodes to nothing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "util/clock.hpp"

namespace tacc::tsdb {

/// Sorted key=value tag pairs identifying one series (plus the metric
/// name kept separately). Defined here, at the bottom of the tsdb include
/// graph, so the WAL and segment formats can name it without pulling in
/// the store.
using TagSet = std::map<std::string, std::string>;

struct DataPoint {
  util::SimTime time = 0;
  double value = 0.0;
};

/// Per-block rollup summary. `sum`, `min`, `max` are computed over the
/// block's values in stored (time-sorted) order with the same folds
/// tsdb::aggregate() uses, so rollup answers match decoded answers bit for
/// bit.
struct BlockSummary {
  util::SimTime t_min = 0;
  util::SimTime t_max = 0;
  std::uint32_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// One decoded downsample-tier entry: the Min/Max/Count rollup of the
/// block's points inside one interval-aligned bucket.
struct TierEntry {
  util::SimTime bucket = 0;  // bucket start: t - t % interval
  std::uint32_t count = 0;
  double min = 0.0;
  double max = 0.0;
};

/// One encoded downsample tier of a block. `data` is the tier's byte
/// stream (varint header + delta/XOR-coded entries); it views either the
/// block's own buffers or a segment file mapping.
struct TierLevel {
  util::SimTime interval = 0;
  std::uint32_t entries = 0;
  /// Any entry's min/max is NaN: the tier fast path must not fold these
  /// (a decode fold skips mid-bucket NaNs a tier entry would absorb), so
  /// queries fall back to decoding the block.
  bool has_nan = false;
  std::span<const std::uint8_t> data;
};

class SealedBlock {
 public:
  /// Compresses `points` (which must be sorted by time; ties keep their
  /// order) into an immutable block. Requires a non-empty span. Each
  /// interval in `tier_intervals` (positive, ascending) adds an encoded
  /// downsample tier.
  static std::shared_ptr<const SealedBlock> seal(
      std::span<const DataPoint> points,
      std::span<const util::SimTime> tier_intervals = {});

  /// Rebuilds a block around externally-owned streams (a segment file
  /// mapping). `tiers` entries need `interval` and `data` set; the entry
  /// count and NaN flag are parsed from each stream. `backing` is held
  /// for the block's lifetime. Empty `times`/`values` with a non-zero
  /// summary count produce a retention ghost (has_raw() == false).
  static std::shared_ptr<const SealedBlock> from_parts(
      const BlockSummary& summary, std::span<const std::uint8_t> times,
      std::span<const std::uint8_t> values, std::vector<TierLevel> tiers,
      std::shared_ptr<const void> backing);

  const BlockSummary& summary() const noexcept { return summary_; }
  std::uint32_t count() const noexcept { return summary_.count; }
  util::SimTime t_min() const noexcept { return summary_.t_min; }
  util::SimTime t_max() const noexcept { return summary_.t_max; }

  /// False for retention ghosts: summary and tiers survive but the raw
  /// streams were dropped, so cursors and decode_append yield nothing.
  bool has_raw() const noexcept { return !times_.empty(); }

  std::span<const std::uint8_t> times_bytes() const noexcept { return times_; }
  std::span<const std::uint8_t> values_bytes() const noexcept {
    return values_;
  }
  /// Attached downsample tiers, finest first (seal interval order).
  std::span<const TierLevel> tiers() const noexcept { return tiers_; }

  /// Compressed payload size (timestamp stream + value stream), the number
  /// the bytes/point benchmarks report. Tier streams are accounted
  /// separately (tier_bytes): they are an acceleration structure, not the
  /// primary copy of the data.
  std::size_t payload_bytes() const noexcept {
    return times_.size() + values_.size();
  }
  std::size_t tier_bytes() const noexcept {
    std::size_t n = 0;
    for (const auto& t : tiers_) n += t.data.size();
    return n;
  }

  /// Streaming decoder: yields the block's points in stored order without
  /// materializing them. Cheap to construct; hold one per block being read.
  class Cursor {
   public:
    explicit Cursor(const SealedBlock& block) noexcept : block_(&block) {}
    /// Decodes the next point into `out`; returns false once exhausted.
    bool next(DataPoint& out) noexcept;

   private:
    const SealedBlock* block_;
    std::uint32_t index_ = 0;
    std::size_t time_bit_ = 0;   // bit offset into times_
    std::size_t value_bit_ = 0;  // bit offset into values_
    util::SimTime prev_time_ = 0;
    util::SimTime prev_delta_ = 0;
    std::uint64_t prev_bits_ = 0;
    int window_leading_ = 0;
    int window_bits_ = 0;
    bool have_window_ = false;
  };
  Cursor cursor() const noexcept { return Cursor(*this); }

  /// Streaming decoder over one tier's entries, in bucket order.
  class TierCursor {
   public:
    explicit TierCursor(const TierLevel& level) noexcept;
    bool next(TierEntry& out) noexcept;

   private:
    const TierLevel* level_;
    std::uint32_t index_ = 0;
    std::size_t pos_ = 0;  // byte offset into level_->data
    util::SimTime prev_bucket_ = 0;
    std::uint64_t prev_min_bits_ = 0;
    std::uint64_t prev_max_bits_ = 0;
  };

  /// Decodes the whole block, appending to `out`. Ghosts append nothing.
  void decode_append(std::vector<DataPoint>& out) const;

 private:
  SealedBlock() = default;

  BlockSummary summary_;
  // Stream views: into own_* for seal()ed blocks, into `backing_` for
  // blocks loaded from a segment mapping.
  std::span<const std::uint8_t> times_;
  std::span<const std::uint8_t> values_;
  std::vector<TierLevel> tiers_;
  std::vector<std::uint8_t> own_times_;
  std::vector<std::uint8_t> own_values_;
  std::vector<std::vector<std::uint8_t>> own_tiers_;
  std::shared_ptr<const void> backing_;
};

}  // namespace tacc::tsdb
