#include "tsdb/store.hpp"

#include <algorithm>
#include <cstdint>

#include "util/thread_pool.hpp"

namespace tacc::tsdb {

namespace {

/// FNV-1a over metric + '\0' + canonical tags: a stable series->shard map
/// that does not depend on std::hash (so shard assignment, and therefore
/// any per-shard iteration, is reproducible across runs and platforms).
std::uint64_t series_hash(std::string_view metric,
                          std::string_view canon) noexcept {
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](std::string_view s) {
    for (const char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ULL;
    }
  };
  mix(metric);
  h ^= 0xFFu;  // separator: ("ab", "c") and ("a", "bc") hash differently
  h *= 1099511628211ULL;
  mix(canon);
  return h;
}

std::size_t round_up_pow2(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

double aggregate(Aggregator agg, const std::vector<double>& values) noexcept {
  if (agg == Aggregator::Count) return static_cast<double>(values.size());
  if (values.empty()) return 0.0;
  double out = values.front();
  double sum = 0.0;
  for (const double v : values) {
    sum += v;
    out = agg == Aggregator::Min ? std::min(out, v) : std::max(out, v);
  }
  switch (agg) {
    case Aggregator::Sum:
      return sum;
    case Aggregator::Avg:
      return sum / static_cast<double>(values.size());
    case Aggregator::Min:
    case Aggregator::Max:
      return out;
    case Aggregator::Count:
      break;
  }
  return 0.0;
}

std::string Store::canonical(const TagSet& tags) {
  std::string out;
  for (const auto& [k, v] : tags) {
    out += k;
    out += '=';
    out += v;
    out += ',';
  }
  return out;
}

Store::Store(const StoreOptions& options) {
  const std::size_t n = round_up_pow2(std::max<std::size_t>(1, options.shards));
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

Store::Shard& Store::shard_for(std::string_view metric,
                               std::string_view canon) noexcept {
  return *shards_[series_hash(metric, canon) & (shards_.size() - 1)];
}

const Store::Shard& Store::shard_for(std::string_view metric,
                                     std::string_view canon) const noexcept {
  return *shards_[series_hash(metric, canon) & (shards_.size() - 1)];
}

Store::Series& Store::resolve_series(Shard& shard, const std::string& metric,
                                     const TagSet& tags,
                                     std::string_view canon) {
  auto& by_tags = shard.metrics.try_emplace(metric).first->second;
  auto sit = by_tags.find(canon);
  if (sit == by_tags.end()) {
    sit = by_tags.try_emplace(std::string(canon)).first;
    auto& series = sit->second;
    series.tags.reserve(tags.size());
    for (const auto& [k, v] : tags) {
      const auto ki = shard.intern.emplace(k).first;
      const auto vi = shard.intern.emplace(v).first;
      series.tags.emplace_back(*ki, *vi);
    }
  }
  return sit->second;
}

void Store::append_run(Shard& shard, Series& series,
                       std::span<const DataPoint> points) {
  series.points.reserve(series.points.size() + points.size());
  for (const auto& p : points) {
    if (!series.points.empty() && series.points.back().time > p.time) {
      series.sorted = false;
    }
    series.points.push_back(p);
  }
  shard.points.fetch_add(points.size(), std::memory_order_relaxed);
}

void Store::put(const std::string& metric, const TagSet& tags,
                util::SimTime time, double value) {
  const DataPoint p{time, value};
  put_batch(metric, tags, std::span<const DataPoint>(&p, 1));
}

void Store::put_batch(const std::string& metric, const TagSet& tags,
                      std::span<const DataPoint> points) {
  if (points.empty()) return;
  const std::string canon = canonical(tags);
  Shard& shard = shard_for(metric, canon);
  util::MutexLock lock(shard.mu);
  append_run(shard, resolve_series(shard, metric, tags, canon), points);
}

void Store::put_batches(std::span<const SeriesBatch> batches) {
  // Group batch indices by destination shard, then visit each shard once:
  // one lock acquisition covers every series bound for it.
  std::vector<std::vector<std::size_t>> by_shard(shards_.size());
  std::vector<std::string> canons(batches.size());
  for (std::size_t i = 0; i < batches.size(); ++i) {
    if (batches[i].points.empty()) continue;
    canons[i] = canonical(batches[i].tags);
    by_shard[series_hash(batches[i].metric, canons[i]) &
             (shards_.size() - 1)]
        .push_back(i);
  }
  for (std::size_t s = 0; s < by_shard.size(); ++s) {
    if (by_shard[s].empty()) continue;
    Shard& shard = *shards_[s];
    util::MutexLock lock(shard.mu);
    for (const std::size_t i : by_shard[s]) {
      const auto& b = batches[i];
      append_run(shard, resolve_series(shard, b.metric, b.tags, canons[i]),
                 b.points);
    }
  }
}

std::size_t Store::num_series() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    util::MutexLock lock(shard->mu);
    for (const auto& [metric, series] : shard->metrics) n += series.size();
  }
  return n;
}

std::size_t Store::num_points() const noexcept {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    n += shard->points.load(std::memory_order_relaxed);
  }
  return n;
}

std::vector<SeriesResult> Store::query(const Query& q) const {
  return query_impl(q, nullptr);
}

std::vector<SeriesResult> Store::query(const Query& q,
                                       util::ThreadPool& pool) const {
  return query_impl(q, &pool);
}

std::vector<SeriesResult> Store::query_impl(const Query& q,
                                            util::ThreadPool* pool) const {
  // Phase 1, per shard (parallel when a pool is given): snapshot every
  // matching series under the shard lock, then — outside the lock — sort,
  // rate-convert, range-filter and downsample it into a per-series bucket
  // list. This part is embarrassingly parallel across series.
  std::vector<std::vector<Partial>> per_shard(shards_.size());
  const auto scan_shard = [&](std::size_t si) {
    const Shard& shard = *shards_[si];
    std::vector<Partial>& out = per_shard[si];
    {
      util::MutexLock lock(shard.mu);
      const auto mit = shard.metrics.find(q.metric);
      if (mit == shard.metrics.end()) return;
      for (const auto& [key, series] : mit->second) {
        // Tag filters.
        bool ok = true;
        for (const auto& [fk, fv] : q.filters) {
          const auto it = std::lower_bound(
              series.tags.begin(), series.tags.end(), fk,
              [](const auto& tag, const std::string& k) {
                return tag.first < k;
              });
          if (it == series.tags.end() || it->first != fk ||
              it->second != fv) {
            ok = false;
            break;
          }
        }
        if (!ok) continue;

        Partial p;
        p.series_key = key;
        for (const auto& g : q.group_by) {
          const auto it = std::lower_bound(
              series.tags.begin(), series.tags.end(), g,
              [](const auto& tag, const std::string& k) {
                return tag.first < k;
              });
          p.group_tags[g] = it == series.tags.end() || it->first != g
                                ? std::string{}
                                : std::string(it->second);
        }
        p.points = series.points;
        p.sorted = series.sorted;
        out.push_back(std::move(p));
      }
    }

    for (Partial& p : out) {
      std::vector<DataPoint> pts = std::move(p.points);
      if (!p.sorted) {
        std::sort(pts.begin(), pts.end(),
                  [](const DataPoint& a, const DataPoint& b) {
                    return a.time < b.time;
                  });
      }
      if (q.rate) {
        std::vector<DataPoint> rates;
        rates.reserve(pts.size() > 0 ? pts.size() - 1 : 0);
        for (std::size_t i = 1; i < pts.size(); ++i) {
          const double dt = util::to_seconds(pts[i].time - pts[i - 1].time);
          if (dt <= 0.0) continue;
          const double delta = pts[i].value - pts[i - 1].value;
          rates.push_back({pts[i].time, delta > 0.0 ? delta / dt : 0.0});
        }
        pts = std::move(rates);
      }
      std::map<util::SimTime, std::vector<double>> local;
      for (const auto& pt : pts) {
        if (q.start != 0 || q.end != 0) {
          if (pt.time < q.start || (q.end != 0 && pt.time >= q.end)) continue;
        }
        const util::SimTime t =
            q.downsample > 0 ? pt.time - pt.time % q.downsample : pt.time;
        local[t].push_back(pt.value);
      }
      p.downsampled.reserve(local.size());
      for (const auto& [t, vals] : local) {
        p.downsampled.emplace_back(t,
                                   aggregate(q.downsample_aggregator, vals));
      }
    }
  };
  if (pool != nullptr && shards_.size() > 1) {
    pool->parallel_for(shards_.size(), scan_shard);
  } else {
    for (std::size_t si = 0; si < shards_.size(); ++si) scan_shard(si);
  }

  // Phase 2, serial: merge partials in global canonical-key order — the
  // exact order a single-map serial store would traverse — so the value
  // vectors fed to the aggregator (and thus floating-point results) do not
  // depend on sharding or thread schedule.
  std::vector<const Partial*> ordered;
  for (const auto& shard_partials : per_shard) {
    for (const auto& p : shard_partials) ordered.push_back(&p);
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const Partial* a, const Partial* b) {
              return a->series_key < b->series_key;
            });

  struct Group {
    TagSet tags;
    std::map<util::SimTime, std::vector<double>> buckets;
  };
  std::map<std::string, Group> groups;
  for (const Partial* p : ordered) {
    auto& group = groups[canonical(p->group_tags)];
    group.tags = p->group_tags;
    for (const auto& [t, v] : p->downsampled) {
      group.buckets[t].push_back(v);
    }
  }

  std::vector<SeriesResult> out;
  out.reserve(groups.size());
  for (const auto& [key, group] : groups) {
    SeriesResult r;
    r.group_tags = group.tags;
    r.points.reserve(group.buckets.size());
    for (const auto& [t, vals] : group.buckets) {
      r.points.push_back({t, aggregate(q.aggregator, vals)});
    }
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace tacc::tsdb
