#include "tsdb/store.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <stdexcept>
#include <tuple>
#include <utility>

#include "util/thread_pool.hpp"

namespace tacc::tsdb {

namespace {

namespace fs = std::filesystem;

/// FNV-1a over metric + '\0' + canonical tags: a stable series->shard map
/// that does not depend on std::hash (so shard assignment, and therefore
/// any per-shard iteration, is reproducible across runs and platforms).
std::uint64_t series_hash(std::string_view metric,
                          std::string_view canon) noexcept {
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](std::string_view s) {
    for (const char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ULL;
    }
  };
  mix(metric);
  h ^= 0xFFu;  // separator: ("ab", "c") and ("a", "bc") hash differently
  h *= 1099511628211ULL;
  mix(canon);
  return h;
}

std::size_t round_up_pow2(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

bool time_less(const DataPoint& a, const DataPoint& b) noexcept {
  return a.time < b.time;
}

/// Inclusive-exclusive range filter; both bounds 0 = unbounded.
bool in_range(const Query& q, util::SimTime t) noexcept {
  if (q.start == 0 && q.end == 0) return true;
  return t >= q.start && (q.end == 0 || t < q.end);
}

util::SimTime bucket_of(const Query& q, util::SimTime t) noexcept {
  return q.downsample > 0 ? t - t % q.downsample : t;
}

/// Sequential per-series bucket builder. Points arrive in merged time
/// order, so buckets complete strictly in order. For Min/Max/Count the
/// open bucket is a running fold — bit-identical to aggregate() over the
/// same values, and whole-block summaries can join the fold mid-bucket
/// (std::min/std::max keep the leftmost of tied values, which makes the
/// folds associative for non-NaN inputs; counts add exactly). For Sum/Avg,
/// whose float folds are order-dependent, the open bucket's values stage
/// in one reusable scratch vector — no per-bucket map nodes or temporary
/// vectors in the hot loop.
class BucketStager {
 public:
  BucketStager(const Query& q,
               std::vector<std::pair<util::SimTime, double>>& out) noexcept
      : q_(q),
        out_(out),
        fold_(q.downsample_aggregator == Aggregator::Min ||
              q.downsample_aggregator == Aggregator::Max ||
              q.downsample_aggregator == Aggregator::Count) {}

  void add(util::SimTime t, double v) {
    roll(bucket_of(q_, t));
    if (fold_) {
      fold_value(v);
      ++count_;
    } else {
      values_.push_back(v);
    }
  }

  /// True for Min/Max/Count: buckets fold, so whole-block summaries can
  /// join an open bucket via add_summary.
  bool foldable() const noexcept { return fold_; }

  /// Folds a whole block's summary into bucket `b` at the current stream
  /// position, exactly as if its points had been decoded one by one.
  /// Foldable aggregators only; the caller gates NaN summaries (a decode
  /// fold skips mid-stream NaNs a summary would absorb).
  void add_summary(util::SimTime b, double value, std::size_t count) {
    roll(b);
    fold_value(value);
    count_ += count;
  }

  /// True if the next contribution to bucket `b` would be its first — a
  /// NaN summary may seed a fold (the decode fold would stay NaN too) but
  /// must not join one.
  bool would_seed(util::SimTime b) const noexcept {
    return !open_ || bucket_ != b;
  }

  /// Emits a bucket answered entirely from summaries (Sum/Avg rollup);
  /// the caller guarantees no other point touches it.
  void emit_summary(util::SimTime b, double v) {
    flush();
    out_.emplace_back(b, v);
    last_ = b;
    has_last_ = true;
  }

  /// The most recent bucket touched (staged or emitted), if any.
  std::optional<util::SimTime> last_bucket() const noexcept {
    if (open_) return bucket_;
    if (has_last_) return last_;
    return std::nullopt;
  }

  void flush() {
    if (!open_) return;
    double v;
    if (fold_) {
      v = q_.downsample_aggregator == Aggregator::Count
              ? static_cast<double>(count_)
              : acc_;
      have_acc_ = false;
      count_ = 0;
    } else {
      v = aggregate(q_.downsample_aggregator, values_);
      values_.clear();
    }
    out_.emplace_back(bucket_, v);
    last_ = bucket_;
    has_last_ = true;
    open_ = false;
  }

 private:
  void roll(util::SimTime b) {
    if (!open_ || b != bucket_) {
      flush();
      bucket_ = b;
      open_ = true;
    }
  }

  void fold_value(double v) noexcept {
    if (!have_acc_) {
      acc_ = v;
      have_acc_ = true;
    } else {
      acc_ = q_.downsample_aggregator == Aggregator::Min ? std::min(acc_, v)
                                                         : std::max(acc_, v);
    }
  }

  const Query& q_;
  std::vector<std::pair<util::SimTime, double>>& out_;
  const bool fold_;
  std::vector<double> values_;
  double acc_ = 0.0;
  std::size_t count_ = 0;
  bool have_acc_ = false;
  util::SimTime bucket_ = 0;
  util::SimTime last_ = 0;
  bool open_ = false;
  bool has_last_ = false;
};

/// Longest retention key that is a prefix of `metric`, or null. The map is
/// small (a handful of metric families), so a linear scan is fine.
const RetentionPolicy* find_retention(
    const std::map<std::string, RetentionPolicy>& retention,
    std::string_view metric) noexcept {
  const RetentionPolicy* best = nullptr;
  std::size_t best_len = 0;
  for (const auto& [family, policy] : retention) {
    if (family.size() >= best_len && metric.starts_with(family)) {
      best = &policy;
      best_len = family.size();
    }
  }
  return best;
}

/// Parses "wal-<shard>-<gen>.log"; returns false for any other name.
bool parse_wal_name(const std::string& name, std::uint32_t& shard,
                    std::uint64_t& gen) {
  unsigned s = 0;
  unsigned long long g = 0;
  int consumed = 0;
  if (std::sscanf(name.c_str(), "wal-%u-%llu.log%n", &s, &g, &consumed) != 2 ||
      static_cast<std::size_t>(consumed) != name.size()) {
    return false;
  }
  shard = s;
  gen = g;
  return true;
}

/// Bucket answer straight from a block summary. Summary fields were
/// computed with aggregate()'s folds over the same value order a decode
/// would feed it, so this is bit-identical to the decoded answer.
double rollup_value(const BlockSummary& s, Aggregator agg) noexcept {
  switch (agg) {
    case Aggregator::Sum:
      return s.sum;
    case Aggregator::Avg:
      return s.sum / static_cast<double>(s.count);
    case Aggregator::Min:
      return s.min;
    case Aggregator::Max:
      return s.max;
    case Aggregator::Count:
      return static_cast<double>(s.count);
  }
  return 0.0;
}

}  // namespace

double aggregate(Aggregator agg, std::span<const double> values) noexcept {
  if (agg == Aggregator::Count) return static_cast<double>(values.size());
  if (values.empty()) return 0.0;
  double out = values.front();
  double sum = 0.0;
  for (const double v : values) {
    sum += v;
    out = agg == Aggregator::Min ? std::min(out, v) : std::max(out, v);
  }
  switch (agg) {
    case Aggregator::Sum:
      return sum;
    case Aggregator::Avg:
      return sum / static_cast<double>(values.size());
    case Aggregator::Min:
    case Aggregator::Max:
      return out;
    case Aggregator::Count:
      break;
  }
  return 0.0;
}

std::string Store::canonical(const TagSet& tags) {
  std::string out;
  for (const auto& [k, v] : tags) {
    out += k;
    out += '=';
    out += v;
    out += ',';
  }
  return out;
}

Store::Store(const StoreOptions& options)
    : epoch_(std::make_unique<std::atomic<std::uint64_t>>(0)),
      block_points_(options.block_points) {
  const std::size_t n = round_up_pow2(std::max<std::size_t>(1, options.shards));
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  if (!options.data_dir.empty()) {
    durable_ = std::make_unique<DurableState>();
    durable_->dir = options.data_dir;
    durable_->wal_sync = options.wal_sync;
    durable_->tier_intervals = options.tier_intervals;
    std::sort(durable_->tier_intervals.begin(), durable_->tier_intervals.end());
    durable_->compact_block_points = options.compact_block_points;
    durable_->retention = options.retention;
    durable_->faults = options.faults;
    recover();
  }
}

Store::Shard& Store::shard_for(std::string_view metric,
                               std::string_view canon) noexcept {
  return *shards_[series_hash(metric, canon) & (shards_.size() - 1)];
}

const Store::Shard& Store::shard_for(std::string_view metric,
                                     std::string_view canon) const noexcept {
  return *shards_[series_hash(metric, canon) & (shards_.size() - 1)];
}

Store::Series& Store::resolve_series(Shard& shard, const std::string& metric,
                                     const TagSet& tags,
                                     std::string_view canon) {
  auto& by_tags = shard.metrics.try_emplace(metric).first->second;
  auto sit = by_tags.find(canon);
  if (sit == by_tags.end()) {
    sit = by_tags.try_emplace(std::string(canon)).first;
    auto& series = sit->second;
    series.tags.reserve(tags.size());
    for (const auto& [k, v] : tags) {
      const auto ki = shard.intern.emplace(k).first;
      const auto vi = shard.intern.emplace(v).first;
      series.tags.emplace_back(*ki, *vi);
    }
  }
  return sit->second;
}

void Store::seal_prefix(Series& series, std::size_t n) const {
  // Seal the oldest `n` points of the append sequence. The chunk is
  // stable-sorted by time, so together with the stable cross-source merge
  // at query time the decoded order reproduces the stable sort of the full
  // append sequence — the order the never-sealed store uses. Durable
  // stores attach downsample tiers (queries are byte-identical with or
  // without them, so this cannot break the determinism invariant).
  std::vector<DataPoint> chunk(series.head.begin(),
                               series.head.begin() + static_cast<long>(n));
  std::stable_sort(chunk.begin(), chunk.end(), time_less);
  series.blocks.push_back(SealedBlock::seal(
      chunk, durable_ != nullptr
                 ? std::span<const util::SimTime>(durable_->tier_intervals)
                 : std::span<const util::SimTime>{}));
  series.head.erase(series.head.begin(),
                    series.head.begin() + static_cast<long>(n));
  series.head_sorted = true;
  for (std::size_t i = 1; i < series.head.size(); ++i) {
    if (series.head[i].time < series.head[i - 1].time) {
      series.head_sorted = false;
      break;
    }
  }
}

void Store::append_run(Shard& shard, Series& series,
                       std::span<const DataPoint> points) {
  series.head.reserve(series.head.size() + points.size());
  for (const auto& p : points) {
    if (!series.head.empty() && series.head.back().time > p.time) {
      series.head_sorted = false;
    }
    series.head.push_back(p);
  }
  shard.points.fetch_add(points.size(), std::memory_order_relaxed);
  if (block_points_ > 0) {
    while (series.head.size() >= block_points_) {
      seal_prefix(series, block_points_);
    }
  }
}

void Store::put(const std::string& metric, const TagSet& tags,
                util::SimTime time, double value) {
  const DataPoint p{time, value};
  put_batch(metric, tags, std::span<const DataPoint>(&p, 1));
}

void Store::wal_append(Shard& shard, const std::string& metric,
                       const TagSet& tags, std::span<const DataPoint> points) {
  if (durable_ == nullptr) return;
  if (shard.wal == nullptr) {
    throw std::logic_error("tsdb::Store: put on closed store");
  }
  WalRecord rec;
  rec.type = WalRecordType::Batch;
  rec.metric = metric;
  rec.tags = tags;
  rec.points.assign(points.begin(), points.end());
  shard.wal->append(rec);
}

void Store::put_batch(const std::string& metric, const TagSet& tags,
                      std::span<const DataPoint> points) {
  if (points.empty()) return;
  check_open();
  const std::string canon = canonical(tags);
  Shard& shard = shard_for(metric, canon);
  {
    util::MutexLock lock(shard.mu);
    wal_append(shard, metric, tags, points);
    append_run(shard, resolve_series(shard, metric, tags, canon), points);
  }
  bump_epoch();
}

void Store::put_batches(std::span<const SeriesBatch> batches) {
  check_open();
  // Group batch indices by destination shard, then visit each shard once:
  // one lock acquisition covers every series bound for it.
  std::vector<std::vector<std::size_t>> by_shard(shards_.size());
  std::vector<std::string> canons(batches.size());
  for (std::size_t i = 0; i < batches.size(); ++i) {
    if (batches[i].points.empty()) continue;
    canons[i] = canonical(batches[i].tags);
    by_shard[series_hash(batches[i].metric, canons[i]) &
             (shards_.size() - 1)]
        .push_back(i);
  }
  bool appended = false;
  for (std::size_t s = 0; s < by_shard.size(); ++s) {
    if (by_shard[s].empty()) continue;
    appended = true;
    Shard& shard = *shards_[s];
    util::MutexLock lock(shard.mu);
    for (const std::size_t i : by_shard[s]) {
      const auto& b = batches[i];
      wal_append(shard, b.metric, b.tags, b.points);
      append_run(shard, resolve_series(shard, b.metric, b.tags, canons[i]),
                 b.points);
    }
  }
  if (appended) bump_epoch();
}

void Store::seal_all() {
  check_open();
  for (const auto& shard : shards_) {
    util::MutexLock lock(shard->mu);
    for (auto& [metric, by_tags] : shard->metrics) {
      for (auto& [key, series] : by_tags) {
        if (!series.head.empty()) seal_prefix(series, series.head.size());
      }
    }
  }
  bump_epoch();
}

std::size_t Store::num_series() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    util::MutexLock lock(shard->mu);
    for (const auto& [metric, series] : shard->metrics) n += series.size();
  }
  return n;
}

std::size_t Store::num_points() const noexcept {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    n += shard->points.load(std::memory_order_relaxed);
  }
  return n;
}

StorageStats Store::storage_stats() const {
  StorageStats s;
  for (const auto& shard : shards_) {
    util::MutexLock lock(shard->mu);
    for (const auto& [metric, by_tags] : shard->metrics) {
      for (const auto& [key, series] : by_tags) {
        s.head_points += series.head.size();
        s.sealed_blocks += series.blocks.size();
        for (const auto& b : series.blocks) {
          s.sealed_points += b->count();
          s.sealed_bytes += b->payload_bytes();
        }
      }
    }
  }
  return s;
}

void Store::check_open() const {
  if (durable_ != nullptr &&
      durable_->closed.load(std::memory_order_acquire)) {
    throw std::logic_error("tsdb::Store: mutation on closed store");
  }
}

void Store::adopt_segment(const LoadedSegment& seg) {
  for (const SeriesPayload& payload : seg.series) {
    const std::string canon = canonical(payload.tags);
    Shard& shard = shard_for(payload.metric, canon);
    util::MutexLock lock(shard.mu);
    Series& series =
        resolve_series(shard, payload.metric, payload.tags, canon);
    std::size_t pts = 0;
    for (const auto& b : payload.blocks) pts += b->count();
    // Manifest order is oldest-first and recovery loads segments before
    // replaying any WAL, so blocks land in seal order and the persisted
    // prefix is the whole vector.
    series.blocks.insert(series.blocks.end(), payload.blocks.begin(),
                         payload.blocks.end());
    series.persisted_blocks = series.blocks.size();
    series.cum_persisted = std::max(series.cum_persisted, payload.cum_sealed);
    shard.points.fetch_add(pts, std::memory_order_relaxed);
  }
}

void Store::rotate_wal(std::uint32_t index, Shard& shard, std::uint64_t gen) {
  auto& d = *durable_;
  auto w = std::make_unique<WalWriter>(wal_path(d.dir, index, gen), index,
                                       gen, d.wal_sync, d.faults);
  WalRecord rec;
  for (const auto& [metric, by_tags] : shard.metrics) {
    for (const auto& [key, series] : by_tags) {
      rec.type = WalRecordType::Checkpoint;
      rec.metric = metric;
      rec.tags.clear();
      for (const auto& [k, v] : series.tags) {
        rec.tags.emplace(std::string(k), std::string(v));
      }
      rec.cum_sealed = series.cum_persisted;
      // The checkpoint must carry every point no segment covers: sealed
      // blocks past the persisted prefix (blocks sealed during replay, or
      // sealed by concurrent ingest after flush's snapshot) decode back
      // into it ahead of the head. Decoding is exact, and the chunks are
      // append-order slices, so replay's stable re-sort reproduces the
      // original sequence — seal timing never leaks into query bytes.
      rec.points.clear();
      for (std::size_t i = series.persisted_blocks; i < series.blocks.size();
           ++i) {
        series.blocks[i]->decode_append(rec.points);
      }
      rec.points.insert(rec.points.end(), series.head.begin(),
                        series.head.end());
      w->append(rec);
    }
  }
  rec = WalRecord{};
  rec.type = WalRecordType::CheckpointEnd;
  w->append(rec);
  w->sync();
  // The new generation is durable: the old one (if any) is garbage. On an
  // injected crash above, `w`'s torn file stays on disk but shard.wal is
  // untouched — recovery sees an incomplete checkpoint in the new
  // generation and falls back to the old one.
  std::string old_path;
  if (shard.wal != nullptr) old_path = shard.wal->path();
  shard.wal = std::move(w);
  if (!old_path.empty()) {
    std::error_code ec;
    fs::remove(old_path, ec);  // best-effort; recovery sweeps leftovers
  }
}

void Store::recover() {
  auto& d = *durable_;
  fs::create_directories(d.dir);
  const bool had_manifest = fs::exists(d.dir + "/MANIFEST");
  Manifest manifest = read_manifest(d.dir);

  std::set<std::string> live;  // files recovery keeps
  live.insert("MANIFEST");
  for (const std::uint64_t seq : manifest.segments) {
    const std::string path = segment_path(d.dir, seq);
    adopt_segment(load_segment(path));
    ++recovery_.segments_loaded;
    live.insert(fs::path(path).filename().string());
  }

  // WAL files are keyed by the *writing* store's shard index, which need
  // not match this store's shard count. A series' records all live in one
  // file (its owner shard when written), in order — so replaying file by
  // file, resolving every record's series by hash, preserves per-series
  // apply order under any resharding.
  std::map<std::uint32_t, std::vector<std::uint64_t>> wal_gens;
  for (const auto& entry : fs::directory_iterator(d.dir)) {
    std::uint32_t shard_idx = 0;
    std::uint64_t gen = 0;
    if (parse_wal_name(entry.path().filename().string(), shard_idx, gen)) {
      wal_gens[shard_idx].push_back(gen);
    }
  }

  for (auto& [wi, gv] : wal_gens) {
    std::sort(gv.begin(), gv.end(), std::greater<>());
    for (const std::uint64_t gen : gv) {
      WalReplay r;
      try {
        r = replay_wal(wal_path(d.dir, wi, gen));
      } catch (const CorruptionError&) {
        continue;  // header torn at creation: use the previous generation
      }
      // A generation without its checkpoint-end marker died mid-rotation;
      // the previous generation still holds the full history since *its*
      // checkpoint, so fall back.
      if (!r.checkpoint_complete) continue;
      if (r.torn_offset.has_value()) ++recovery_.torn_tails;
      ++recovery_.wal_generations_replayed;
      // Per-series skip budget: the records replay the append sequence
      // since the generation started (checkpoint head, then batches), and
      // sealing always persists its oldest prefix first — so dropping
      // (cum_persisted - checkpoint cum) points off the front removes
      // exactly the ones a completed flush already moved into segments.
      std::map<std::pair<std::string, std::string>, std::uint64_t> budget;
      for (const WalRecord& rec : r.records) {
        ++recovery_.wal_records;
        const std::string canon = canonical(rec.tags);
        Shard& shard = shard_for(rec.metric, canon);
        util::MutexLock lock(shard.mu);
        Series& series = resolve_series(shard, rec.metric, rec.tags, canon);
        auto [it, inserted] = budget.try_emplace({rec.metric, canon}, 0);
        if (inserted) {
          const std::uint64_t ckpt =
              rec.type == WalRecordType::Checkpoint ? rec.cum_sealed : 0;
          it->second =
              series.cum_persisted > ckpt ? series.cum_persisted - ckpt : 0;
        }
        const std::uint64_t skip =
            std::min<std::uint64_t>(it->second, rec.points.size());
        it->second -= skip;
        recovery_.points_skipped += static_cast<std::size_t>(skip);
        const std::span<const DataPoint> rest(
            rec.points.data() + skip,
            rec.points.size() - static_cast<std::size_t>(skip));
        if (!rest.empty()) append_run(shard, series, rest);
        recovery_.points_replayed += rest.size();
      }
      break;
    }
  }

  for (std::size_t si = 0; si < shards_.size(); ++si) {
    Shard& shard = *shards_[si];
    const auto it = wal_gens.find(static_cast<std::uint32_t>(si));
    const std::uint64_t max_gen =
        it == wal_gens.end() || it->second.empty() ? 0 : it->second.front();
    util::MutexLock lock(shard.mu);
    rotate_wal(static_cast<std::uint32_t>(si), shard, max_gen + 1);
    live.insert(fs::path(shard.wal->path()).filename().string());
  }

  // Everything else in the directory is dead: segments a crash left
  // unreferenced by the manifest, superseded WAL generations, tmp files.
  std::vector<fs::path> stale;
  for (const auto& entry : fs::directory_iterator(d.dir)) {
    if (live.count(entry.path().filename().string()) == 0) {
      stale.push_back(entry.path());
    }
  }
  for (const auto& path : stale) {
    std::error_code ec;
    fs::remove(path, ec);
    if (!ec) ++recovery_.stale_files_removed;
  }

  if (!had_manifest) {
    write_manifest(d.dir, manifest, d.faults.get(), util::kFaultBlockFileWrite,
                   0);
  }
  util::MutexLock lock(d.mu);
  d.manifest = manifest;
}

void Store::swap_persisted(const LoadedSegment& seg) {
  for (const SeriesPayload& payload : seg.series) {
    const std::string canon = canonical(payload.tags);
    Shard& shard = shard_for(payload.metric, canon);
    util::MutexLock lock(shard.mu);
    Series& series = shard.metrics.find(payload.metric)
                         ->second.find(canon)
                         ->second;
    // The payload's blocks are the mmap-backed copies of exactly
    // blocks[persisted_blocks .. persisted_blocks + n): ingest only
    // appends, and the persisted prefix only moves under DurableState::mu,
    // which flush holds.
    for (std::size_t i = 0; i < payload.blocks.size(); ++i) {
      series.blocks[series.persisted_blocks + i] = payload.blocks[i];
    }
    series.persisted_blocks += payload.blocks.size();
    series.cum_persisted = payload.cum_sealed;
  }
}

void Store::flush() {
  if (durable_ == nullptr) return;
  check_open();
  auto& d = *durable_;
  util::MutexLock dlock(d.mu);

  // 1. Snapshot every sealed-but-unpersisted block. The snapshot stays
  // valid while the segment is written outside the shard locks: ingest
  // only appends, and the persisted prefix moves only under d.mu.
  std::vector<SeriesPayload> payloads;
  std::vector<std::string> canons;  // parallel to payloads
  for (const auto& shard : shards_) {
    util::MutexLock lock(shard->mu);
    for (const auto& [metric, by_tags] : shard->metrics) {
      for (const auto& [key, series] : by_tags) {
        if (series.blocks.size() <= series.persisted_blocks) continue;
        SeriesPayload p;
        p.metric = metric;
        for (const auto& [k, v] : series.tags) {
          p.tags.emplace(std::string(k), std::string(v));
        }
        p.blocks.assign(
            series.blocks.begin() +
                static_cast<long>(series.persisted_blocks),
            series.blocks.end());
        std::uint64_t pts = 0;
        for (const auto& b : p.blocks) pts += b->count();
        p.cum_sealed = series.cum_persisted + pts;
        canons.push_back(key);
        payloads.push_back(std::move(p));
      }
    }
  }

  if (!payloads.empty()) {
    // The format wants series sorted by (metric, canonical tags) so the
    // same logical state always produces the same file bytes.
    std::vector<std::size_t> order(payloads.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                return std::tie(payloads[a].metric, canons[a]) <
                       std::tie(payloads[b].metric, canons[b]);
              });
    std::vector<SeriesPayload> sorted;
    sorted.reserve(payloads.size());
    for (const std::size_t i : order) sorted.push_back(std::move(payloads[i]));

    // Segment first (inert until named), then the manifest commit point,
    // then swap the in-memory blocks for the mmap-backed copies.
    const std::uint64_t seq = d.manifest.next_seq;
    const std::string path = segment_path(d.dir, seq);
    write_segment(path, seq, sorted, d.faults.get(), "segment");
    Manifest m = d.manifest;
    m.segments.push_back(seq);
    m.next_seq = seq + 1;
    write_manifest(d.dir, m, d.faults.get(), util::kFaultBlockFileWrite, seq);
    d.manifest = m;
    swap_persisted(load_segment(path));
  }

  // 2. Rotate every shard's WAL. The fresh checkpoint re-bases each series
  // on its new cum_persisted, so the old generation's batch history —
  // including everything the segment just absorbed — is dead.
  for (std::size_t si = 0; si < shards_.size(); ++si) {
    Shard& shard = *shards_[si];
    util::MutexLock lock(shard.mu);
    if (shard.wal != nullptr) {
      rotate_wal(static_cast<std::uint32_t>(si), shard,
                 shard.wal->gen() + 1);
    }
  }
}

bool Store::compact() {
  if (durable_ == nullptr) return false;
  check_open();
  auto& d = *durable_;
  util::MutexLock dlock(d.mu);

  // Snapshot every persisted prefix, and find the newest timestamp in the
  // store — retention horizons are measured from data time (the store has
  // no clock; see the determinism audit).
  struct Snap {
    std::string metric;
    TagSet tags;
    std::string canon;
    std::uint64_t cum = 0;
    std::vector<std::shared_ptr<const SealedBlock>> blocks;
  };
  std::vector<Snap> snaps;
  util::SimTime data_max = 0;
  bool have_data = false;
  for (const auto& shard : shards_) {
    util::MutexLock lock(shard->mu);
    for (const auto& [metric, by_tags] : shard->metrics) {
      for (const auto& [key, series] : by_tags) {
        for (const auto& b : series.blocks) {
          if (!have_data || b->t_max() > data_max) data_max = b->t_max();
          have_data = true;
        }
        for (const auto& p : series.head) {
          if (!have_data || p.time > data_max) data_max = p.time;
          have_data = true;
        }
        if (series.persisted_blocks == 0) continue;
        Snap s;
        s.metric = metric;
        s.canon = key;
        s.cum = series.cum_persisted;
        for (const auto& [k, v] : series.tags) {
          s.tags.emplace(std::string(k), std::string(v));
        }
        s.blocks.assign(
            series.blocks.begin(),
            series.blocks.begin() + static_cast<long>(series.persisted_blocks));
        snaps.push_back(std::move(s));
      }
    }
  }
  if (snaps.empty()) return false;

  // Plan the rewrite: apply retention, then merge runs of consecutive
  // non-overlapping raw blocks up to compact_block_points. Re-sealing the
  // concatenated decode is exact: each block decodes to a sorted run and
  // next.t_min >= prev.t_max, so the concatenation is the same stable
  // time-sorted append sequence the original seal saw.
  bool changed = d.manifest.segments.size() > 1;
  const std::span<const util::SimTime> tiers(d.tier_intervals);
  std::vector<SeriesPayload> payloads;
  payloads.reserve(snaps.size());
  std::vector<const Snap*> payload_snaps;
  for (const Snap& s : snaps) {
    const RetentionPolicy* policy = find_retention(d.retention, s.metric);
    SeriesPayload p;
    p.metric = s.metric;
    p.tags = s.tags;
    p.cum_sealed = s.cum;
    std::vector<std::shared_ptr<const SealedBlock>> run;
    std::size_t run_points = 0;
    const auto emit_run = [&] {
      if (run.empty()) return;
      if (run.size() == 1) {
        p.blocks.push_back(std::move(run.front()));
      } else {
        std::vector<DataPoint> pts;
        pts.reserve(run_points);
        for (const auto& b : run) b->decode_append(pts);
        p.blocks.push_back(SealedBlock::seal(pts, tiers));
        changed = true;
      }
      run.clear();
      run_points = 0;
    };
    for (const auto& b : s.blocks) {
      const bool tier_expired = policy != nullptr && policy->tiers > 0 &&
                                b->t_max() < data_max - policy->tiers;
      const bool raw_expired = policy != nullptr && policy->raw > 0 &&
                               b->t_max() < data_max - policy->raw;
      if (tier_expired) {  // dropped entirely (cum_sealed keeps counting it)
        emit_run();
        changed = true;
        continue;
      }
      if (!b->has_raw() || raw_expired) {
        emit_run();
        if (b->has_raw()) {
          // Raw expired: keep a ghost (summary + tiers). The tier spans
          // still view the old block's buffers, so pin it as backing until
          // the segment write copies the bytes out.
          std::vector<TierLevel> tl(b->tiers().begin(), b->tiers().end());
          p.blocks.push_back(
              SealedBlock::from_parts(b->summary(), {}, {}, std::move(tl), b));
          changed = true;
        } else {
          p.blocks.push_back(b);
        }
        continue;
      }
      if (!run.empty() && (run_points + b->count() > d.compact_block_points ||
                           b->t_min() < run.back()->t_max())) {
        emit_run();
      }
      run_points += b->count();
      run.push_back(b);
    }
    emit_run();
    if (!p.blocks.empty()) {
      payloads.push_back(std::move(p));
      payload_snaps.push_back(&s);
    }
  }
  if (!changed) return false;

  std::vector<std::size_t> order(payloads.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return std::tie(payloads[a].metric, payload_snaps[a]->canon) <
           std::tie(payloads[b].metric, payload_snaps[b]->canon);
  });
  std::vector<SeriesPayload> sorted;
  sorted.reserve(payloads.size());
  for (const std::size_t i : order) sorted.push_back(std::move(payloads[i]));

  const std::uint64_t seq = d.manifest.next_seq;
  const std::string path = segment_path(d.dir, seq);
  write_segment(path, seq, sorted, d.faults.get(), "compact");
  Manifest m;
  m.next_seq = seq + 1;
  m.segments = {seq};
  write_manifest(d.dir, m, d.faults.get(), util::kFaultCompactCommit, seq);
  const std::vector<std::uint64_t> old_segments = d.manifest.segments;
  d.manifest = m;

  // Swap each snapshot's persisted prefix for the segment-backed blocks
  // (or nothing, when retention dropped the whole series).
  const LoadedSegment seg = load_segment(path);
  std::map<std::pair<std::string, std::string>, const SeriesPayload*> by_key;
  for (const SeriesPayload& payload : seg.series) {
    by_key[{payload.metric, canonical(payload.tags)}] = &payload;
  }
  for (const Snap& s : snaps) {
    Shard& shard = shard_for(s.metric, s.canon);
    util::MutexLock lock(shard.mu);
    Series& series =
        shard.metrics.find(s.metric)->second.find(s.canon)->second;
    const auto it = by_key.find({s.metric, s.canon});
    std::size_t old_pts = 0;
    for (std::size_t i = 0; i < series.persisted_blocks; ++i) {
      old_pts += series.blocks[i]->count();
    }
    std::vector<std::shared_ptr<const SealedBlock>> nb;
    if (it != by_key.end()) nb = it->second->blocks;
    std::size_t new_pts = 0;
    for (const auto& b : nb) new_pts += b->count();
    series.blocks.erase(
        series.blocks.begin(),
        series.blocks.begin() + static_cast<long>(series.persisted_blocks));
    series.blocks.insert(series.blocks.begin(), nb.begin(), nb.end());
    series.persisted_blocks = nb.size();
    shard.points.fetch_sub(old_pts - new_pts, std::memory_order_relaxed);
  }

  // Unlink the superseded segments; query snapshots still holding their
  // blocks keep the mappings alive (POSIX allows unlink-while-mapped).
  for (const std::uint64_t old_seq : old_segments) {
    std::error_code ec;
    fs::remove(segment_path(d.dir, old_seq), ec);
  }
  return true;
}

void Store::close() {
  if (durable_ == nullptr) return;
  if (durable_->closed.load(std::memory_order_acquire)) return;
  flush();  // rotates every WAL to a synced checkpoint-only generation
  for (const auto& shard : shards_) {
    util::MutexLock lock(shard->mu);
    shard->wal.reset();
  }
  durable_->closed.store(true, std::memory_order_release);
}

DiskStats Store::disk_stats() const {
  DiskStats out;
  if (durable_ == nullptr) return out;
  auto& d = *durable_;
  util::MutexLock dlock(d.mu);
  for (const std::uint64_t seq : d.manifest.segments) {
    std::error_code ec;
    const auto sz = fs::file_size(segment_path(d.dir, seq), ec);
    if (!ec) {
      ++out.segment_files;
      out.segment_bytes += static_cast<std::size_t>(sz);
    }
  }
  for (const auto& entry : fs::directory_iterator(d.dir)) {
    std::uint32_t shard_idx = 0;
    std::uint64_t gen = 0;
    if (parse_wal_name(entry.path().filename().string(), shard_idx, gen)) {
      std::error_code ec;
      const auto sz = entry.file_size(ec);
      if (!ec) out.wal_bytes += static_cast<std::size_t>(sz);
    }
  }
  for (const auto& shard : shards_) {
    util::MutexLock lock(shard->mu);
    for (const auto& [metric, by_tags] : shard->metrics) {
      for (const auto& [key, series] : by_tags) {
        for (std::size_t i = 0; i < series.persisted_blocks; ++i) {
          out.tier_bytes += series.blocks[i]->tier_bytes();
          out.persisted_points += series.blocks[i]->count();
        }
      }
    }
  }
  return out;
}

std::vector<SeriesResult> Store::query(const Query& q) const {
  return query_impl(q, nullptr);
}

std::vector<SeriesResult> Store::query(const Query& q,
                                       util::ThreadPool& pool) const {
  return query_impl(q, &pool);
}

void Store::process_series(const Query& q, Partial& p) {
  if (!p.head_sorted) {
    std::stable_sort(p.head.begin(), p.head.end(), time_less);
    p.head_sorted = true;
  }

  // Are the sources (blocks in seal order, then the head) already in
  // global time order? In the common monotonic-ingest case they are, and
  // the series can be streamed source by source with summary-based block
  // skipping and rollups. Overlapping sources fall back to decode+merge.
  bool ordered = true;
  util::SimTime prev_max = 0;
  bool have_prev = false;
  for (const auto& b : p.blocks) {
    if (have_prev && b->t_min() < prev_max) {
      ordered = false;
      break;
    }
    prev_max = b->t_max();
    have_prev = true;
  }
  if (ordered && have_prev && !p.head.empty() &&
      p.head.front().time < prev_max) {
    ordered = false;
  }

  if (q.rate || !ordered) {
    // Materializing path: rate needs successive deltas over the whole
    // merged sequence, and overlapping sources need a merge. Decoded
    // blocks are time-sorted runs in append-chunk order, so a stable sort
    // of the concatenation reproduces the stable sort of the full append
    // sequence — bit-identical to the never-sealed store.
    std::vector<DataPoint> pts;
    std::size_t total = p.head.size();
    for (const auto& b : p.blocks) total += b->count();
    pts.reserve(total);
    for (const auto& b : p.blocks) b->decode_append(pts);
    pts.insert(pts.end(), p.head.begin(), p.head.end());
    if (!ordered) std::stable_sort(pts.begin(), pts.end(), time_less);
    if (q.rate) {
      std::vector<DataPoint> rates;
      rates.reserve(pts.size() > 0 ? pts.size() - 1 : 0);
      for (std::size_t i = 1; i < pts.size(); ++i) {
        const double dt = util::to_seconds(pts[i].time - pts[i - 1].time);
        if (dt <= 0.0) continue;
        const double delta = pts[i].value - pts[i - 1].value;
        rates.push_back({pts[i].time, delta > 0.0 ? delta / dt : 0.0});
      }
      pts = std::move(rates);
    }
    BucketStager stager(q, p.downsampled);
    for (const auto& pt : pts) {
      if (!in_range(q, pt.time)) continue;
      stager.add(pt.time, pt.value);
    }
    stager.flush();
    return;
  }

  // Streaming path: visit sources in time order. A block entirely outside
  // the query range is skipped on its summary alone; a downsample bucket
  // covered by whole blocks — with both neighbours clear of it — is
  // answered from summaries without decoding (the rollup fast path);
  // everything else streams through a decode cursor.
  BucketStager stager(q, p.downsampled);
  DataPoint pt;
  for (std::size_t i = 0; i < p.blocks.size(); ++i) {
    const SealedBlock& b = *p.blocks[i];
    if (!(q.start == 0 && q.end == 0) &&
        (b.t_max() < q.start || (q.end != 0 && b.t_min() >= q.end))) {
      continue;
    }
    if (q.downsample > 0 && in_range(q, b.t_min()) &&
        in_range(q, b.t_max()) &&
        bucket_of(q, b.t_min()) == bucket_of(q, b.t_max())) {
      const util::SimTime bb = bucket_of(q, b.t_min());
      const Aggregator agg = q.downsample_aggregator;
      if (stager.foldable()) {
        // Min/Max/Count: the summary joins the bucket's running fold at
        // this stream position, so neighbouring blocks and head points may
        // share the bucket freely. A NaN Min/Max summary may only seed a
        // fresh fold (decode skips mid-stream NaNs a summary would absorb).
        const double s = rollup_value(b.summary(), agg);
        if (agg == Aggregator::Count || s == s || stager.would_seed(bb)) {
          stager.add_summary(bb, s, b.summary().count);
          continue;
        }
      } else {
        // Sum/Avg folds are order-dependent in float, so the summary is
        // usable only when it covers the bucket exclusively: nothing
        // staged there yet, and the next source starts in a later bucket.
        util::SimTime next_t = 0;
        bool has_next = false;
        if (i + 1 < p.blocks.size()) {
          next_t = p.blocks[i + 1]->t_min();
          has_next = true;
        } else if (!p.head.empty()) {
          next_t = p.head.front().time;
          has_next = true;
        }
        const auto last = stager.last_bucket();
        if ((!last.has_value() || *last < bb) &&
            (!has_next || bucket_of(q, next_t) > bb)) {
          stager.emit_summary(bb, rollup_value(b.summary(), agg));
          continue;
        }
      }
    }
    // Tier fast path: a foldable downsample whose bucket is a multiple of
    // a tier interval folds the block's tier entries instead of decoding
    // raw points — each entry covers one interval-aligned run, so all its
    // points share one query bucket, and by associativity of the
    // Min/Max/Count folds (tier entries were folded with aggregate()'s
    // folds in stored order) the result is bit-identical to decoding.
    // Bucket boundaries shared with neighbouring sources join the running
    // fold exactly like block summaries do. An entry whose fold went NaN
    // would absorb a join the decode fold would skip, so has_nan tiers
    // fall back to decode (Count is exempt: counts are exact regardless).
    // This is also the only read path for retention ghosts.
    if (q.downsample > 0 && stager.foldable() && !b.tiers().empty() &&
        in_range(q, b.t_min()) && in_range(q, b.t_max())) {
      const Aggregator agg = q.downsample_aggregator;
      const TierLevel* best = nullptr;
      for (const auto& t : b.tiers()) {  // ascending: last match = coarsest
        if (t.interval > 0 && q.downsample % t.interval == 0 &&
            (agg == Aggregator::Count || !t.has_nan)) {
          best = &t;
        }
      }
      if (best != nullptr) {
        SealedBlock::TierCursor tc(*best);
        TierEntry e;
        while (tc.next(e)) {
          const double v = agg == Aggregator::Min   ? e.min
                           : agg == Aggregator::Max ? e.max
                                                    : static_cast<double>(
                                                          e.count);
          stager.add_summary(bucket_of(q, e.bucket), v, e.count);
        }
        continue;
      }
    }
    auto c = b.cursor();
    while (c.next(pt)) {
      if (!in_range(q, pt.time)) continue;
      stager.add(pt.time, pt.value);
    }
  }
  for (const auto& hp : p.head) {
    if (!in_range(q, hp.time)) continue;
    stager.add(hp.time, hp.value);
  }
  stager.flush();
}

std::vector<SeriesResult> Store::query_impl(const Query& q,
                                            util::ThreadPool* pool) const {
  // Phase 1, per shard (parallel when a pool is given): under the shard
  // lock, snapshot every matching series — shared_ptr refs to its
  // immutable sealed blocks plus a copy of its bounded head buffer — then,
  // outside the lock, stream it into a per-series bucket list (decode,
  // rate, range filter, downsample, with summary skips and rollups). This
  // part is embarrassingly parallel across series.
  std::vector<std::vector<Partial>> per_shard(shards_.size());
  const auto scan_shard = [&](std::size_t si) {
    const Shard& shard = *shards_[si];
    std::vector<Partial>& out = per_shard[si];
    {
      util::MutexLock lock(shard.mu);
      const auto mit = shard.metrics.find(q.metric);
      if (mit == shard.metrics.end()) return;
      for (const auto& [key, series] : mit->second) {
        // Tag filters.
        bool ok = true;
        for (const auto& [fk, fv] : q.filters) {
          const auto it = std::lower_bound(
              series.tags.begin(), series.tags.end(), fk,
              [](const auto& tag, const std::string& k) {
                return tag.first < k;
              });
          if (it == series.tags.end() || it->first != fk ||
              it->second != fv) {
            ok = false;
            break;
          }
        }
        if (!ok) continue;

        Partial p;
        p.series_key = key;
        for (const auto& g : q.group_by) {
          const auto it = std::lower_bound(
              series.tags.begin(), series.tags.end(), g,
              [](const auto& tag, const std::string& k) {
                return tag.first < k;
              });
          p.group_tags[g] = it == series.tags.end() || it->first != g
                                ? std::string{}
                                : std::string(it->second);
        }
        p.blocks = series.blocks;
        p.head = series.head;
        p.head_sorted = series.head_sorted;
        out.push_back(std::move(p));
      }
    }

    for (Partial& p : out) process_series(q, p);
  };
  if (pool != nullptr && shards_.size() > 1) {
    pool->parallel_for(shards_.size(), scan_shard);
  } else {
    for (std::size_t si = 0; si < shards_.size(); ++si) scan_shard(si);
  }

  // Phase 2, serial: merge partials in global canonical-key order — the
  // exact order a single-map serial store would traverse — so the value
  // vectors fed to the aggregator (and thus floating-point results) do not
  // depend on sharding or thread schedule.
  std::vector<const Partial*> ordered;
  for (const auto& shard_partials : per_shard) {
    for (const auto& p : shard_partials) ordered.push_back(&p);
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const Partial* a, const Partial* b) {
              return a->series_key < b->series_key;
            });

  struct Group {
    TagSet tags;
    std::map<util::SimTime, std::vector<double>> buckets;
  };
  std::map<std::string, Group> groups;
  for (const Partial* p : ordered) {
    auto& group = groups[canonical(p->group_tags)];
    group.tags = p->group_tags;
    for (const auto& [t, v] : p->downsampled) {
      group.buckets[t].push_back(v);
    }
  }

  std::vector<SeriesResult> out;
  out.reserve(groups.size());
  for (const auto& [key, group] : groups) {
    SeriesResult r;
    r.group_tags = group.tags;
    r.points.reserve(group.buckets.size());
    for (const auto& [t, vals] : group.buckets) {
      r.points.push_back({t, aggregate(q.aggregator, vals)});
    }
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace tacc::tsdb
