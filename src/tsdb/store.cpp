#include "tsdb/store.hpp"

#include <algorithm>
#include <cstdint>

#include "util/thread_pool.hpp"

namespace tacc::tsdb {

namespace {

/// FNV-1a over metric + '\0' + canonical tags: a stable series->shard map
/// that does not depend on std::hash (so shard assignment, and therefore
/// any per-shard iteration, is reproducible across runs and platforms).
std::uint64_t series_hash(std::string_view metric,
                          std::string_view canon) noexcept {
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](std::string_view s) {
    for (const char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ULL;
    }
  };
  mix(metric);
  h ^= 0xFFu;  // separator: ("ab", "c") and ("a", "bc") hash differently
  h *= 1099511628211ULL;
  mix(canon);
  return h;
}

std::size_t round_up_pow2(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

bool time_less(const DataPoint& a, const DataPoint& b) noexcept {
  return a.time < b.time;
}

/// Inclusive-exclusive range filter; both bounds 0 = unbounded.
bool in_range(const Query& q, util::SimTime t) noexcept {
  if (q.start == 0 && q.end == 0) return true;
  return t >= q.start && (q.end == 0 || t < q.end);
}

util::SimTime bucket_of(const Query& q, util::SimTime t) noexcept {
  return q.downsample > 0 ? t - t % q.downsample : t;
}

/// Sequential per-series bucket builder. Points arrive in merged time
/// order, so buckets complete strictly in order. For Min/Max/Count the
/// open bucket is a running fold — bit-identical to aggregate() over the
/// same values, and whole-block summaries can join the fold mid-bucket
/// (std::min/std::max keep the leftmost of tied values, which makes the
/// folds associative for non-NaN inputs; counts add exactly). For Sum/Avg,
/// whose float folds are order-dependent, the open bucket's values stage
/// in one reusable scratch vector — no per-bucket map nodes or temporary
/// vectors in the hot loop.
class BucketStager {
 public:
  BucketStager(const Query& q,
               std::vector<std::pair<util::SimTime, double>>& out) noexcept
      : q_(q),
        out_(out),
        fold_(q.downsample_aggregator == Aggregator::Min ||
              q.downsample_aggregator == Aggregator::Max ||
              q.downsample_aggregator == Aggregator::Count) {}

  void add(util::SimTime t, double v) {
    roll(bucket_of(q_, t));
    if (fold_) {
      fold_value(v);
      ++count_;
    } else {
      values_.push_back(v);
    }
  }

  /// True for Min/Max/Count: buckets fold, so whole-block summaries can
  /// join an open bucket via add_summary.
  bool foldable() const noexcept { return fold_; }

  /// Folds a whole block's summary into bucket `b` at the current stream
  /// position, exactly as if its points had been decoded one by one.
  /// Foldable aggregators only; the caller gates NaN summaries (a decode
  /// fold skips mid-stream NaNs a summary would absorb).
  void add_summary(util::SimTime b, double value, std::size_t count) {
    roll(b);
    fold_value(value);
    count_ += count;
  }

  /// True if the next contribution to bucket `b` would be its first — a
  /// NaN summary may seed a fold (the decode fold would stay NaN too) but
  /// must not join one.
  bool would_seed(util::SimTime b) const noexcept {
    return !open_ || bucket_ != b;
  }

  /// Emits a bucket answered entirely from summaries (Sum/Avg rollup);
  /// the caller guarantees no other point touches it.
  void emit_summary(util::SimTime b, double v) {
    flush();
    out_.emplace_back(b, v);
    last_ = b;
    has_last_ = true;
  }

  /// The most recent bucket touched (staged or emitted), if any.
  std::optional<util::SimTime> last_bucket() const noexcept {
    if (open_) return bucket_;
    if (has_last_) return last_;
    return std::nullopt;
  }

  void flush() {
    if (!open_) return;
    double v;
    if (fold_) {
      v = q_.downsample_aggregator == Aggregator::Count
              ? static_cast<double>(count_)
              : acc_;
      have_acc_ = false;
      count_ = 0;
    } else {
      v = aggregate(q_.downsample_aggregator, values_);
      values_.clear();
    }
    out_.emplace_back(bucket_, v);
    last_ = bucket_;
    has_last_ = true;
    open_ = false;
  }

 private:
  void roll(util::SimTime b) {
    if (!open_ || b != bucket_) {
      flush();
      bucket_ = b;
      open_ = true;
    }
  }

  void fold_value(double v) noexcept {
    if (!have_acc_) {
      acc_ = v;
      have_acc_ = true;
    } else {
      acc_ = q_.downsample_aggregator == Aggregator::Min ? std::min(acc_, v)
                                                         : std::max(acc_, v);
    }
  }

  const Query& q_;
  std::vector<std::pair<util::SimTime, double>>& out_;
  const bool fold_;
  std::vector<double> values_;
  double acc_ = 0.0;
  std::size_t count_ = 0;
  bool have_acc_ = false;
  util::SimTime bucket_ = 0;
  util::SimTime last_ = 0;
  bool open_ = false;
  bool has_last_ = false;
};

/// Bucket answer straight from a block summary. Summary fields were
/// computed with aggregate()'s folds over the same value order a decode
/// would feed it, so this is bit-identical to the decoded answer.
double rollup_value(const BlockSummary& s, Aggregator agg) noexcept {
  switch (agg) {
    case Aggregator::Sum:
      return s.sum;
    case Aggregator::Avg:
      return s.sum / static_cast<double>(s.count);
    case Aggregator::Min:
      return s.min;
    case Aggregator::Max:
      return s.max;
    case Aggregator::Count:
      return static_cast<double>(s.count);
  }
  return 0.0;
}

}  // namespace

double aggregate(Aggregator agg, std::span<const double> values) noexcept {
  if (agg == Aggregator::Count) return static_cast<double>(values.size());
  if (values.empty()) return 0.0;
  double out = values.front();
  double sum = 0.0;
  for (const double v : values) {
    sum += v;
    out = agg == Aggregator::Min ? std::min(out, v) : std::max(out, v);
  }
  switch (agg) {
    case Aggregator::Sum:
      return sum;
    case Aggregator::Avg:
      return sum / static_cast<double>(values.size());
    case Aggregator::Min:
    case Aggregator::Max:
      return out;
    case Aggregator::Count:
      break;
  }
  return 0.0;
}

std::string Store::canonical(const TagSet& tags) {
  std::string out;
  for (const auto& [k, v] : tags) {
    out += k;
    out += '=';
    out += v;
    out += ',';
  }
  return out;
}

Store::Store(const StoreOptions& options)
    : epoch_(std::make_unique<std::atomic<std::uint64_t>>(0)),
      block_points_(options.block_points) {
  const std::size_t n = round_up_pow2(std::max<std::size_t>(1, options.shards));
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

Store::Shard& Store::shard_for(std::string_view metric,
                               std::string_view canon) noexcept {
  return *shards_[series_hash(metric, canon) & (shards_.size() - 1)];
}

const Store::Shard& Store::shard_for(std::string_view metric,
                                     std::string_view canon) const noexcept {
  return *shards_[series_hash(metric, canon) & (shards_.size() - 1)];
}

Store::Series& Store::resolve_series(Shard& shard, const std::string& metric,
                                     const TagSet& tags,
                                     std::string_view canon) {
  auto& by_tags = shard.metrics.try_emplace(metric).first->second;
  auto sit = by_tags.find(canon);
  if (sit == by_tags.end()) {
    sit = by_tags.try_emplace(std::string(canon)).first;
    auto& series = sit->second;
    series.tags.reserve(tags.size());
    for (const auto& [k, v] : tags) {
      const auto ki = shard.intern.emplace(k).first;
      const auto vi = shard.intern.emplace(v).first;
      series.tags.emplace_back(*ki, *vi);
    }
  }
  return sit->second;
}

void Store::seal_prefix(Series& series, std::size_t n) {
  // Seal the oldest `n` points of the append sequence. The chunk is
  // stable-sorted by time, so together with the stable cross-source merge
  // at query time the decoded order reproduces the stable sort of the full
  // append sequence — the order the never-sealed store uses.
  std::vector<DataPoint> chunk(series.head.begin(),
                               series.head.begin() + static_cast<long>(n));
  std::stable_sort(chunk.begin(), chunk.end(), time_less);
  series.blocks.push_back(SealedBlock::seal(chunk));
  series.head.erase(series.head.begin(),
                    series.head.begin() + static_cast<long>(n));
  series.head_sorted = true;
  for (std::size_t i = 1; i < series.head.size(); ++i) {
    if (series.head[i].time < series.head[i - 1].time) {
      series.head_sorted = false;
      break;
    }
  }
}

void Store::append_run(Shard& shard, Series& series,
                       std::span<const DataPoint> points) {
  series.head.reserve(series.head.size() + points.size());
  for (const auto& p : points) {
    if (!series.head.empty() && series.head.back().time > p.time) {
      series.head_sorted = false;
    }
    series.head.push_back(p);
  }
  shard.points.fetch_add(points.size(), std::memory_order_relaxed);
  if (block_points_ > 0) {
    while (series.head.size() >= block_points_) {
      seal_prefix(series, block_points_);
    }
  }
}

void Store::put(const std::string& metric, const TagSet& tags,
                util::SimTime time, double value) {
  const DataPoint p{time, value};
  put_batch(metric, tags, std::span<const DataPoint>(&p, 1));
}

void Store::put_batch(const std::string& metric, const TagSet& tags,
                      std::span<const DataPoint> points) {
  if (points.empty()) return;
  const std::string canon = canonical(tags);
  Shard& shard = shard_for(metric, canon);
  {
    util::MutexLock lock(shard.mu);
    append_run(shard, resolve_series(shard, metric, tags, canon), points);
  }
  bump_epoch();
}

void Store::put_batches(std::span<const SeriesBatch> batches) {
  // Group batch indices by destination shard, then visit each shard once:
  // one lock acquisition covers every series bound for it.
  std::vector<std::vector<std::size_t>> by_shard(shards_.size());
  std::vector<std::string> canons(batches.size());
  for (std::size_t i = 0; i < batches.size(); ++i) {
    if (batches[i].points.empty()) continue;
    canons[i] = canonical(batches[i].tags);
    by_shard[series_hash(batches[i].metric, canons[i]) &
             (shards_.size() - 1)]
        .push_back(i);
  }
  bool appended = false;
  for (std::size_t s = 0; s < by_shard.size(); ++s) {
    if (by_shard[s].empty()) continue;
    appended = true;
    Shard& shard = *shards_[s];
    util::MutexLock lock(shard.mu);
    for (const std::size_t i : by_shard[s]) {
      const auto& b = batches[i];
      append_run(shard, resolve_series(shard, b.metric, b.tags, canons[i]),
                 b.points);
    }
  }
  if (appended) bump_epoch();
}

void Store::seal_all() {
  for (const auto& shard : shards_) {
    util::MutexLock lock(shard->mu);
    for (auto& [metric, by_tags] : shard->metrics) {
      for (auto& [key, series] : by_tags) {
        if (!series.head.empty()) seal_prefix(series, series.head.size());
      }
    }
  }
  bump_epoch();
}

std::size_t Store::num_series() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    util::MutexLock lock(shard->mu);
    for (const auto& [metric, series] : shard->metrics) n += series.size();
  }
  return n;
}

std::size_t Store::num_points() const noexcept {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    n += shard->points.load(std::memory_order_relaxed);
  }
  return n;
}

StorageStats Store::storage_stats() const {
  StorageStats s;
  for (const auto& shard : shards_) {
    util::MutexLock lock(shard->mu);
    for (const auto& [metric, by_tags] : shard->metrics) {
      for (const auto& [key, series] : by_tags) {
        s.head_points += series.head.size();
        s.sealed_blocks += series.blocks.size();
        for (const auto& b : series.blocks) {
          s.sealed_points += b->count();
          s.sealed_bytes += b->payload_bytes();
        }
      }
    }
  }
  return s;
}

std::vector<SeriesResult> Store::query(const Query& q) const {
  return query_impl(q, nullptr);
}

std::vector<SeriesResult> Store::query(const Query& q,
                                       util::ThreadPool& pool) const {
  return query_impl(q, &pool);
}

void Store::process_series(const Query& q, Partial& p) {
  if (!p.head_sorted) {
    std::stable_sort(p.head.begin(), p.head.end(), time_less);
    p.head_sorted = true;
  }

  // Are the sources (blocks in seal order, then the head) already in
  // global time order? In the common monotonic-ingest case they are, and
  // the series can be streamed source by source with summary-based block
  // skipping and rollups. Overlapping sources fall back to decode+merge.
  bool ordered = true;
  util::SimTime prev_max = 0;
  bool have_prev = false;
  for (const auto& b : p.blocks) {
    if (have_prev && b->t_min() < prev_max) {
      ordered = false;
      break;
    }
    prev_max = b->t_max();
    have_prev = true;
  }
  if (ordered && have_prev && !p.head.empty() &&
      p.head.front().time < prev_max) {
    ordered = false;
  }

  if (q.rate || !ordered) {
    // Materializing path: rate needs successive deltas over the whole
    // merged sequence, and overlapping sources need a merge. Decoded
    // blocks are time-sorted runs in append-chunk order, so a stable sort
    // of the concatenation reproduces the stable sort of the full append
    // sequence — bit-identical to the never-sealed store.
    std::vector<DataPoint> pts;
    std::size_t total = p.head.size();
    for (const auto& b : p.blocks) total += b->count();
    pts.reserve(total);
    for (const auto& b : p.blocks) b->decode_append(pts);
    pts.insert(pts.end(), p.head.begin(), p.head.end());
    if (!ordered) std::stable_sort(pts.begin(), pts.end(), time_less);
    if (q.rate) {
      std::vector<DataPoint> rates;
      rates.reserve(pts.size() > 0 ? pts.size() - 1 : 0);
      for (std::size_t i = 1; i < pts.size(); ++i) {
        const double dt = util::to_seconds(pts[i].time - pts[i - 1].time);
        if (dt <= 0.0) continue;
        const double delta = pts[i].value - pts[i - 1].value;
        rates.push_back({pts[i].time, delta > 0.0 ? delta / dt : 0.0});
      }
      pts = std::move(rates);
    }
    BucketStager stager(q, p.downsampled);
    for (const auto& pt : pts) {
      if (!in_range(q, pt.time)) continue;
      stager.add(pt.time, pt.value);
    }
    stager.flush();
    return;
  }

  // Streaming path: visit sources in time order. A block entirely outside
  // the query range is skipped on its summary alone; a downsample bucket
  // covered by whole blocks — with both neighbours clear of it — is
  // answered from summaries without decoding (the rollup fast path);
  // everything else streams through a decode cursor.
  BucketStager stager(q, p.downsampled);
  DataPoint pt;
  for (std::size_t i = 0; i < p.blocks.size(); ++i) {
    const SealedBlock& b = *p.blocks[i];
    if (!(q.start == 0 && q.end == 0) &&
        (b.t_max() < q.start || (q.end != 0 && b.t_min() >= q.end))) {
      continue;
    }
    if (q.downsample > 0 && in_range(q, b.t_min()) &&
        in_range(q, b.t_max()) &&
        bucket_of(q, b.t_min()) == bucket_of(q, b.t_max())) {
      const util::SimTime bb = bucket_of(q, b.t_min());
      const Aggregator agg = q.downsample_aggregator;
      if (stager.foldable()) {
        // Min/Max/Count: the summary joins the bucket's running fold at
        // this stream position, so neighbouring blocks and head points may
        // share the bucket freely. A NaN Min/Max summary may only seed a
        // fresh fold (decode skips mid-stream NaNs a summary would absorb).
        const double s = rollup_value(b.summary(), agg);
        if (agg == Aggregator::Count || s == s || stager.would_seed(bb)) {
          stager.add_summary(bb, s, b.summary().count);
          continue;
        }
      } else {
        // Sum/Avg folds are order-dependent in float, so the summary is
        // usable only when it covers the bucket exclusively: nothing
        // staged there yet, and the next source starts in a later bucket.
        util::SimTime next_t = 0;
        bool has_next = false;
        if (i + 1 < p.blocks.size()) {
          next_t = p.blocks[i + 1]->t_min();
          has_next = true;
        } else if (!p.head.empty()) {
          next_t = p.head.front().time;
          has_next = true;
        }
        const auto last = stager.last_bucket();
        if ((!last.has_value() || *last < bb) &&
            (!has_next || bucket_of(q, next_t) > bb)) {
          stager.emit_summary(bb, rollup_value(b.summary(), agg));
          continue;
        }
      }
    }
    auto c = b.cursor();
    while (c.next(pt)) {
      if (!in_range(q, pt.time)) continue;
      stager.add(pt.time, pt.value);
    }
  }
  for (const auto& hp : p.head) {
    if (!in_range(q, hp.time)) continue;
    stager.add(hp.time, hp.value);
  }
  stager.flush();
}

std::vector<SeriesResult> Store::query_impl(const Query& q,
                                            util::ThreadPool* pool) const {
  // Phase 1, per shard (parallel when a pool is given): under the shard
  // lock, snapshot every matching series — shared_ptr refs to its
  // immutable sealed blocks plus a copy of its bounded head buffer — then,
  // outside the lock, stream it into a per-series bucket list (decode,
  // rate, range filter, downsample, with summary skips and rollups). This
  // part is embarrassingly parallel across series.
  std::vector<std::vector<Partial>> per_shard(shards_.size());
  const auto scan_shard = [&](std::size_t si) {
    const Shard& shard = *shards_[si];
    std::vector<Partial>& out = per_shard[si];
    {
      util::MutexLock lock(shard.mu);
      const auto mit = shard.metrics.find(q.metric);
      if (mit == shard.metrics.end()) return;
      for (const auto& [key, series] : mit->second) {
        // Tag filters.
        bool ok = true;
        for (const auto& [fk, fv] : q.filters) {
          const auto it = std::lower_bound(
              series.tags.begin(), series.tags.end(), fk,
              [](const auto& tag, const std::string& k) {
                return tag.first < k;
              });
          if (it == series.tags.end() || it->first != fk ||
              it->second != fv) {
            ok = false;
            break;
          }
        }
        if (!ok) continue;

        Partial p;
        p.series_key = key;
        for (const auto& g : q.group_by) {
          const auto it = std::lower_bound(
              series.tags.begin(), series.tags.end(), g,
              [](const auto& tag, const std::string& k) {
                return tag.first < k;
              });
          p.group_tags[g] = it == series.tags.end() || it->first != g
                                ? std::string{}
                                : std::string(it->second);
        }
        p.blocks = series.blocks;
        p.head = series.head;
        p.head_sorted = series.head_sorted;
        out.push_back(std::move(p));
      }
    }

    for (Partial& p : out) process_series(q, p);
  };
  if (pool != nullptr && shards_.size() > 1) {
    pool->parallel_for(shards_.size(), scan_shard);
  } else {
    for (std::size_t si = 0; si < shards_.size(); ++si) scan_shard(si);
  }

  // Phase 2, serial: merge partials in global canonical-key order — the
  // exact order a single-map serial store would traverse — so the value
  // vectors fed to the aggregator (and thus floating-point results) do not
  // depend on sharding or thread schedule.
  std::vector<const Partial*> ordered;
  for (const auto& shard_partials : per_shard) {
    for (const auto& p : shard_partials) ordered.push_back(&p);
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const Partial* a, const Partial* b) {
              return a->series_key < b->series_key;
            });

  struct Group {
    TagSet tags;
    std::map<util::SimTime, std::vector<double>> buckets;
  };
  std::map<std::string, Group> groups;
  for (const Partial* p : ordered) {
    auto& group = groups[canonical(p->group_tags)];
    group.tags = p->group_tags;
    for (const auto& [t, v] : p->downsampled) {
      group.buckets[t].push_back(v);
    }
  }

  std::vector<SeriesResult> out;
  out.reserve(groups.size());
  for (const auto& [key, group] : groups) {
    SeriesResult r;
    r.group_tags = group.tags;
    r.points.reserve(group.buckets.size());
    for (const auto& [t, vals] : group.buckets) {
      r.points.push_back({t, aggregate(q.aggregator, vals)});
    }
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace tacc::tsdb
