#include "tsdb/store.hpp"

#include <algorithm>

namespace tacc::tsdb {

double aggregate(Aggregator agg, const std::vector<double>& values) noexcept {
  if (agg == Aggregator::Count) return static_cast<double>(values.size());
  if (values.empty()) return 0.0;
  double out = values.front();
  double sum = 0.0;
  for (const double v : values) {
    sum += v;
    out = agg == Aggregator::Min ? std::min(out, v) : std::max(out, v);
  }
  switch (agg) {
    case Aggregator::Sum:
      return sum;
    case Aggregator::Avg:
      return sum / static_cast<double>(values.size());
    case Aggregator::Min:
    case Aggregator::Max:
      return out;
    case Aggregator::Count:
      break;
  }
  return 0.0;
}

std::string Store::canonical(const TagSet& tags) {
  std::string out;
  for (const auto& [k, v] : tags) {
    out += k;
    out += '=';
    out += v;
    out += ',';
  }
  return out;
}

void Store::put(const std::string& metric, const TagSet& tags,
                util::SimTime time, double value) {
  auto& series = metrics_[metric][canonical(tags)];
  if (series.tags.empty()) series.tags = tags;
  if (!series.points.empty() && series.points.back().time > time) {
    series.sorted = false;
  }
  series.points.push_back({time, value});
  ++num_points_;
}

std::size_t Store::num_series() const noexcept {
  std::size_t n = 0;
  for (const auto& [metric, series] : metrics_) n += series.size();
  return n;
}

std::vector<SeriesResult> Store::query(const Query& q) const {
  const auto mit = metrics_.find(q.metric);
  if (mit == metrics_.end()) return {};

  // Group key -> (timestamp -> values gathered across member series).
  struct Group {
    TagSet tags;
    std::map<util::SimTime, std::vector<double>> buckets;
  };
  std::map<std::string, Group> groups;

  for (const auto& [key, series] : mit->second) {
    // Tag filters.
    bool ok = true;
    for (const auto& [fk, fv] : q.filters) {
      const auto it = series.tags.find(fk);
      if (it == series.tags.end() || it->second != fv) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;

    TagSet group_tags;
    for (const auto& g : q.group_by) {
      const auto it = series.tags.find(g);
      group_tags[g] = it == series.tags.end() ? std::string{} : it->second;
    }
    auto& group = groups[canonical(group_tags)];
    group.tags = group_tags;

    // Sort lazily if needed, then downsample this series into the group's
    // buckets.
    std::vector<DataPoint> pts = series.points;
    if (!series.sorted) {
      std::sort(pts.begin(), pts.end(),
                [](const DataPoint& a, const DataPoint& b) {
                  return a.time < b.time;
                });
    }
    if (q.rate) {
      std::vector<DataPoint> rates;
      rates.reserve(pts.size() > 0 ? pts.size() - 1 : 0);
      for (std::size_t i = 1; i < pts.size(); ++i) {
        const double dt = util::to_seconds(pts[i].time - pts[i - 1].time);
        if (dt <= 0.0) continue;
        const double delta = pts[i].value - pts[i - 1].value;
        rates.push_back({pts[i].time, delta > 0.0 ? delta / dt : 0.0});
      }
      pts = std::move(rates);
    }
    std::map<util::SimTime, std::vector<double>> local;
    for (const auto& p : pts) {
      if (q.start != 0 || q.end != 0) {
        if (p.time < q.start || (q.end != 0 && p.time >= q.end)) continue;
      }
      const util::SimTime t =
          q.downsample > 0 ? p.time - p.time % q.downsample : p.time;
      local[t].push_back(p.value);
    }
    for (const auto& [t, vals] : local) {
      group.buckets[t].push_back(
          aggregate(q.downsample_aggregator, vals));
    }
  }

  std::vector<SeriesResult> out;
  out.reserve(groups.size());
  for (const auto& [key, group] : groups) {
    SeriesResult r;
    r.group_tags = group.tags;
    r.points.reserve(group.buckets.size());
    for (const auto& [t, vals] : group.buckets) {
      r.points.push_back({t, aggregate(q.aggregator, vals)});
    }
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace tacc::tsdb
