// Background compaction driver for a durable tsdb::Store.
//
// A real thread that periodically calls Store::flush() and, every
// `compact_every` cycles, Store::compact(). It reads no clock — the period
// is a pure CondVar timeout, so nothing here can feed timing back into
// results (flush and compact are query-neutral by construction) and the
// determinism auditor (DT001) stays clean. Injected crashes from the
// store's fault plan are swallowed into an error counter: a dead store is
// the *test's* business; the thread just stops touching it.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <thread>

#include "util/thread_annotations.hpp"

namespace tacc::tsdb {

class Store;

/// Tuning knobs for the background compactor.
struct CompactorOptions {
  /// Real-time pause between maintenance cycles.
  std::chrono::milliseconds period{200};
  /// Every Nth cycle runs Store::compact() after the flush; the others
  /// flush only. 0 disables compaction (flush-only maintenance).
  std::size_t compact_every = 5;
};

/// Owns the maintenance thread. Construction starts it; stop() (or the
/// destructor) joins it. The store must outlive the compactor.
class Compactor {
 public:
  explicit Compactor(Store& store, CompactorOptions options = {});
  ~Compactor();

  Compactor(const Compactor&) = delete;
  Compactor& operator=(const Compactor&) = delete;

  /// Signals the thread and joins it. Idempotent.
  void stop();

  /// Runs one maintenance cycle on the caller's thread (flush, plus
  /// compact when `with_compact`). Counts like a background cycle.
  void run_once(bool with_compact);

  std::size_t cycles() const noexcept {
    return cycles_.load(std::memory_order_relaxed);
  }
  std::size_t compactions() const noexcept {
    return compactions_.load(std::memory_order_relaxed);
  }
  /// Cycles that died with InjectedCrash (the store is then left alone).
  std::size_t errors() const noexcept {
    return errors_.load(std::memory_order_relaxed);
  }

 private:
  void loop();

  Store& store_;
  CompactorOptions options_;
  util::Mutex mu_;
  util::CondVar cv_;
  bool stopping_ TACC_GUARDED_BY(mu_) = false;
  /// Set after an injected crash: the store must be reopened, so the
  /// thread idles until stop().
  std::atomic<bool> dead_{false};
  std::atomic<std::size_t> cycles_{0};
  std::atomic<std::size_t> compactions_{0};
  std::atomic<std::size_t> errors_{0};
  std::thread thread_;
};

}  // namespace tacc::tsdb
