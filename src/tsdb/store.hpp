// Tag-indexed time-series store, modeled on the OpenTSDB layout the paper
// adopts for time-series analysis (section VI-A): every series is labeled
// by a tuple of tags — in the paper's setup host name, device type, device
// name, and event name — and can be aggregated along any subset of the
// tags, then joined with job metadata from the relational store.
//
// The store is sharded for concurrent ingest: series are distributed over
// N buckets by a stable hash of (metric, canonical tag string), and each
// shard is protected by its own mutex (lock striping), so writers touching
// different shards never contend. The hot path is put_batch(), which
// resolves the series once per run of points instead of once per point;
// tag strings are interned per shard so each distinct key/value is stored
// once no matter how many series share it.
//
// Storage is two-tier (see docs/ARCHITECTURE.md, "TSDB storage format"):
// each series keeps a small mutable head buffer of recent points, and once
// the head reaches StoreOptions::block_points the oldest chunk is sealed
// into an immutable Gorilla-compressed SealedBlock (~1-4 bytes/point on
// counter data vs 16 bytes raw) carrying a (t_min, t_max, count, sum, min,
// max) summary. Queries snapshot the block pointers plus the bounded head
// under the shard lock, then stream outside it: blocks wholly outside the
// time range are skipped by summary, and a block lying wholly inside one
// downsample bucket is answered from its summary without decoding (the
// rollup fast path). For Min/Max/Count the summary joins the bucket's
// running fold — exactly, by associativity — so summaries mix freely with
// neighbouring blocks and head points in the same bucket; for Sum/Avg,
// whose float folds are order-dependent, the summary is used only when it
// covers the bucket exclusively. Everything else goes through a streaming
// decode cursor.
//
// Thread-safety contract:
//   * put(), put_batch(), put_batches(), seal_all(), query(), num_series(),
//     num_points() and storage_stats() are all safe to call concurrently
//     from any number of threads, including queries interleaved with
//     ingest and sealing.
//   * A query observes each series atomically (its head is snapshotted and
//     its immutable blocks ref'd under the shard lock) but is not a
//     cross-shard snapshot: points ingested while the query runs may or
//     may not be visible.
//   * Construction, move, and destruction are NOT thread-safe; complete
//     them before sharing the store across threads.
//   * Query results are deterministic: for a fixed set of stored points
//     they are byte-identical regardless of shard count, block size
//     (including "never sealed"), seal timing, ingest order across series,
//     ingest thread count, or query thread count.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "tsdb/block.hpp"
#include "tsdb/wal.hpp"
#include "util/clock.hpp"
#include "util/fault.hpp"
#include "util/thread_annotations.hpp"

namespace tacc::util {
class ThreadPool;
}  // namespace tacc::util

namespace tacc::tsdb {

// TagSet (the sorted key=value tag map identifying one series) lives in
// block.hpp so the on-disk format headers can use it too.

enum class Aggregator { Sum, Avg, Min, Max, Count };

struct Query {
  std::string metric;
  /// Convert each matched series from cumulative counts to per-second
  /// rates (successive-point deltas / dt) before downsampling — OpenTSDB's
  /// rate() for the monotonic counters this system stores. Negative deltas
  /// (counter resets) clamp to 0.
  bool rate = false;
  /// Exact-match tag filters; series missing a filtered tag don't match.
  TagSet filters;
  /// Tags whose distinct values produce separate result groups; all other
  /// tags are aggregated away (OpenTSDB group-by semantics).
  std::vector<std::string> group_by;
  Aggregator aggregator = Aggregator::Sum;
  /// Downsample bucket; 0 = no downsampling (points aligned exactly).
  util::SimTime downsample = 0;
  Aggregator downsample_aggregator = Aggregator::Avg;
  /// Inclusive-exclusive time range; both 0 = unbounded.
  util::SimTime start = 0;
  util::SimTime end = 0;
};

struct SeriesResult {
  TagSet group_tags;  // values of the group_by tags for this group
  std::vector<DataPoint> points;  // sorted by time
};

/// How long one metric family's persisted data survives compaction.
/// Horizons are measured backwards from the newest timestamp stored
/// anywhere in the store (data time, never wall time — the store has no
/// clock), and a block expires only when *all* of it is past the horizon.
struct RetentionPolicy {
  /// Raw compressed streams older than this are dropped at compaction,
  /// leaving a "ghost" block (summary + downsample tiers only) that keeps
  /// serving rollup and tier queries. 0 = keep raw forever.
  util::SimTime raw = 0;
  /// Ghosts older than this are dropped entirely. 0 = keep forever.
  util::SimTime tiers = 0;
};

/// Tuning knobs for the store. Defaults are sized for tens of concurrent
/// writers on a few hundred thousand series.
struct StoreOptions {
  /// Number of lock-striped shards; rounded up to a power of two, min 1.
  /// More shards = less writer contention, slightly more query fan-out.
  std::size_t shards = 16;
  /// Points accumulated in a series' mutable head before the oldest chunk
  /// is sealed into an immutable compressed block. 0 disables automatic
  /// sealing (points stay raw until seal_all()). Bigger blocks compress
  /// better and give coarser rollups; smaller blocks give finer block
  /// skipping.
  std::size_t block_points = 1024;
  /// Directory for durable state (segments, WALs, MANIFEST); created if
  /// missing. Empty = in-memory store: no files, no WAL, no tiers, and
  /// flush()/compact()/close() are no-ops.
  std::string data_dir;
  /// When WAL appends are fsync'd (durable stores only). See tsdb::WalSync.
  WalSync wal_sync = WalSync::OnFlush;
  /// Downsample tiers attached to every block sealed by a durable store,
  /// ascending. Month-scale foldable queries whose bucket is a multiple of
  /// a tier interval are answered from tier entries without decoding raw
  /// points. Ignored (no tiers) for in-memory stores.
  std::vector<util::SimTime> tier_intervals = {5 * util::kMinute, util::kHour};
  /// Compaction merges consecutive non-overlapping persisted blocks of a
  /// series until a merged block would exceed this many points.
  std::size_t compact_block_points = 16384;
  /// Retention by metric family: longest matching key that is a prefix of
  /// the metric name wins; unmatched metrics are kept forever. Applied at
  /// compaction time only.
  std::map<std::string, RetentionPolicy> retention;
  /// Fault plan driving the persistence crash sites (util::kFaultWalAppend,
  /// kFaultWalSync, kFaultBlockFileWrite, kFaultCompactCommit). An injected
  /// error leaves a deterministic torn prefix on disk and throws
  /// InjectedCrash; the store must then be abandoned and reopened.
  std::shared_ptr<const util::FaultPlan> faults;
};

/// One series' worth of points staged for bulk insertion; the unit
/// consumed by Store::put_batches(). Points need not be sorted.
struct SeriesBatch {
  std::string metric;
  TagSet tags;
  std::vector<DataPoint> points;
};

/// Storage accounting across both tiers, for the bytes/point benchmarks.
struct StorageStats {
  std::size_t head_points = 0;
  std::size_t sealed_points = 0;
  std::size_t sealed_blocks = 0;
  /// Compressed payload bytes across all sealed blocks.
  std::size_t sealed_bytes = 0;
};

/// On-disk accounting for a durable store, for the bytes/point gate.
struct DiskStats {
  std::size_t segment_files = 0;
  /// Total bytes of the live segment files (headers, CRCs, tiers, all).
  std::size_t segment_bytes = 0;
  /// Downsample-tier stream bytes inside those segments — an acceleration
  /// structure, accounted separately from the primary copy.
  std::size_t tier_bytes = 0;
  /// Bytes of the live WAL generations (points not yet in a segment).
  std::size_t wal_bytes = 0;
  /// Points stored in segments (ghost summaries included).
  std::size_t persisted_points = 0;
  /// The primary on-disk copy of the data: everything except tier streams.
  std::size_t primary_bytes() const noexcept {
    return segment_bytes - tier_bytes + wal_bytes;
  }
};

/// What Store::open() found and did; for recovery tests and logs.
struct RecoveryInfo {
  std::size_t segments_loaded = 0;
  std::size_t wal_generations_replayed = 0;
  std::size_t wal_records = 0;
  /// WAL points applied to heads vs. skipped as already segment-covered.
  std::size_t points_replayed = 0;
  std::size_t points_skipped = 0;
  /// WAL files that ended in a torn record (the normal post-crash case).
  std::size_t torn_tails = 0;
  /// Unreferenced files deleted: torn segments, stale WAL gens, tmp files.
  std::size_t stale_files_removed = 0;
};

class Store {
 public:
  Store() : Store(StoreOptions{}) {}
  /// In-memory store when options.data_dir is empty; otherwise opens (or
  /// creates) the durable store in that directory, running full recovery:
  /// load manifest-named segments, replay each shard's newest complete WAL
  /// generation (skipping segment-covered points), rotate WALs, and delete
  /// stale files. Query results after recovery are byte-identical to the
  /// pre-crash store restricted to acknowledged writes. Throws
  /// CorruptionError if the manifest or a manifest-named segment is
  /// damaged (torn *unreferenced* files are cleaned up, not errors).
  explicit Store(const StoreOptions& options);

  /// Opens `dir` with default options — the one-liner for recovery.
  static Store open(const std::string& dir) {
    StoreOptions o;
    o.data_dir = dir;
    return Store(o);
  }

  /// Destruction does NOT flush: it is deliberately crash-equivalent (the
  /// WAL already holds every acknowledged put). Call close() for a clean
  /// shutdown that persists sealed blocks and truncates the WALs.
  ~Store() = default;

  Store(Store&&) noexcept = default;
  Store& operator=(Store&&) noexcept = default;

  /// Appends a point to the series (metric, tags). Out-of-order writes are
  /// allowed; series are sorted lazily at seal/query time. Thread-safe.
  /// Prefer put_batch() on hot paths: put() re-canonicalizes the tag set
  /// and re-resolves the series on every call.
  void put(const std::string& metric, const TagSet& tags, util::SimTime time,
           double value);

  /// Appends a run of points to the series (metric, tags), resolving the
  /// series and taking the shard lock once for the whole run. Out-of-order
  /// points are allowed (sorted lazily at seal/query time). Thread-safe.
  void put_batch(const std::string& metric, const TagSet& tags,
                 std::span<const DataPoint> points);

  /// Bulk-inserts a set of staged series batches, grouping them by shard
  /// so each shard's lock is taken at most once per call. This is the
  /// preferred flush path for parallel ingest: workers stage points
  /// locally and hand the whole buffer over in one call. Thread-safe.
  void put_batches(std::span<const SeriesBatch> batches);

  /// Seals every series' remaining head buffer into a final (possibly
  /// short) compressed block. Call after a bulk load to get full
  /// compression and rollup coverage; later appends simply start a new
  /// head. Thread-safe, including against concurrent ingest and queries.
  void seal_all();

  /// Number of distinct series across all metrics. Thread-safe.
  std::size_t num_series() const;
  /// Total stored points. Thread-safe (per-shard atomic counters summed on
  /// read), including while ingest is in flight.
  std::size_t num_points() const noexcept;
  /// Number of lock-striped shards (after power-of-two rounding).
  std::size_t num_shards() const noexcept { return shards_.size(); }
  /// Per-tier storage accounting. Thread-safe.
  StorageStats storage_stats() const;

  /// True when the store was opened with a data_dir.
  bool durable() const noexcept { return durable_ != nullptr; }

  /// Persists every sealed-but-unpersisted block into a new segment,
  /// commits the manifest, swaps the in-memory copies for the segment's
  /// memory-mapped ones, and rotates each shard's WAL (checkpointing the
  /// current heads, then deleting the old generation). No-op for in-memory
  /// stores. Thread-safe against concurrent ingest and queries; flush and
  /// compact serialize against each other. On InjectedCrash the store must
  /// be abandoned and reopened (disk state is consistent at every kill
  /// point — that is the crash-recovery test matrix).
  void flush();

  /// Rewrites all persisted state into one segment: merges consecutive
  /// non-overlapping blocks up to compact_block_points, applies retention
  /// (raw-expired blocks become ghosts, tier-expired ghosts are dropped),
  /// commits the manifest, swaps in the new mapping, and deletes the old
  /// segments. Query results are byte-identical before and after, except
  /// for points removed by retention. Returns false if there was nothing
  /// to do. No-op (false) for in-memory stores. Thread-safe like flush().
  bool compact();

  /// flush() + fsync + release the WAL writers. After close() every
  /// mutation (put/seal/flush/compact) throws std::logic_error; queries
  /// and stats remain valid. Idempotent. No-op for in-memory stores.
  void close();

  /// Sizes of the live on-disk files. Thread-safe. Zeroes for in-memory
  /// stores.
  DiskStats disk_stats() const;

  /// What recovery found when this store was opened (zeroes for a fresh
  /// directory or an in-memory store).
  const RecoveryInfo& recovery_info() const noexcept { return recovery_; }

  /// Store-wide ingest epoch: a monotonic counter bumped by every mutation
  /// (put / put_batch / put_batches / seal_all), so a cache layered above
  /// the store (portal::QueryEngine) can key results by epoch and drop
  /// them the moment new data lands. The value carries no meaning beyond
  /// "changed since I last looked". Thread-safe, lock-free.
  std::uint64_t ingest_epoch() const noexcept {
    return epoch_->load(std::memory_order_acquire);
  }

  /// Runs a query: filter series, group, downsample, and aggregate across
  /// series within each group (per aligned timestamp). Thread-safe, and
  /// safe while ingest is in flight.
  std::vector<SeriesResult> query(const Query& q) const;

  /// Same query semantics, but fans the per-series work (decode, rate,
  /// downsample) out across `pool`, one task per shard; the final merge is
  /// ordered so results are byte-identical to the serial overload.
  /// Thread-safe; `pool` may be shared with concurrent ingest.
  std::vector<SeriesResult> query(const Query& q, util::ThreadPool& pool) const;

 private:
  struct Series {
    /// Sorted (key, value) views into the owning shard's intern pool.
    std::vector<std::pair<std::string_view, std::string_view>> tags;
    /// Immutable sealed tier, in seal (append-chunk) order. The first
    /// `persisted_blocks` entries are segment-backed (their byte streams
    /// view a segment mapping); the rest are memory-only, awaiting flush.
    std::vector<std::shared_ptr<const SealedBlock>> blocks;
    /// Mutable tail of the append sequence.
    std::vector<DataPoint> head;
    bool head_sorted = true;
    /// Length of the segment-backed prefix of `blocks`. Only flush() and
    /// compact() (serialized by DurableState::mu) change it.
    std::size_t persisted_blocks = 0;
    /// Points ever persisted into segments, monotonic across compaction
    /// and retention; WAL replay uses it to skip segment-covered points.
    std::uint64_t cum_persisted = 0;
  };
  struct Shard {
    mutable util::Mutex mu;
    /// Distinct tag keys/values, stored once per shard; std::set nodes are
    /// stable, so Series holds string_views into this pool.
    std::set<std::string, std::less<>> intern TACC_GUARDED_BY(mu);
    // metric -> canonical tag string -> series (ordered: queries traverse
    // series in canonical order, which keeps aggregation deterministic).
    std::map<std::string, std::map<std::string, Series, std::less<>>,
             std::less<>>
        metrics TACC_GUARDED_BY(mu);
    /// Lock-free read path for num_points(); not guarded on purpose.
    std::atomic<std::size_t> points{0};
    /// Live WAL generation; null for in-memory stores and after close().
    /// Appends happen under `mu`, *before* the points are applied, so WAL
    /// order equals memory order.
    std::unique_ptr<WalWriter> wal TACC_GUARDED_BY(mu);
  };
  /// Everything a durable store adds. `mu` serializes flush/compact and
  /// orders strictly before any Shard::mu (one-way; shard locks are never
  /// nested with each other).
  struct DurableState {
    std::string dir;
    WalSync wal_sync = WalSync::OnFlush;
    std::vector<util::SimTime> tier_intervals;
    std::size_t compact_block_points = 16384;
    std::map<std::string, RetentionPolicy> retention;
    std::shared_ptr<const util::FaultPlan> faults;
    util::Mutex mu;
    Manifest manifest TACC_GUARDED_BY(mu);
    std::atomic<bool> closed{false};
  };
  /// A matched series snapshot plus its per-series query result; the
  /// snapshot (block refs + head copy) is taken under the shard lock and
  /// processed outside it.
  struct Partial {
    std::string series_key;  // canonical tags: global merge order
    TagSet group_tags;
    std::vector<std::shared_ptr<const SealedBlock>> blocks;
    std::vector<DataPoint> head;
    bool head_sorted = true;
    std::vector<std::pair<util::SimTime, double>> downsampled;
  };

  Shard& shard_for(std::string_view metric, std::string_view canon) noexcept;
  const Shard& shard_for(std::string_view metric,
                         std::string_view canon) const noexcept;
  /// Finds or creates a series; caller must hold `shard.mu`.
  Series& resolve_series(Shard& shard, const std::string& metric,
                         const TagSet& tags, std::string_view canon)
      TACC_REQUIRES(shard.mu);
  void append_run(Shard& shard, Series& series,
                  std::span<const DataPoint> points) TACC_REQUIRES(shard.mu);
  /// Durable stores: logs the batch to the shard's WAL before it is
  /// applied. Throws InjectedCrash (batch not applied, not acknowledged)
  /// or std::logic_error if the store was closed underneath the caller.
  void wal_append(Shard& shard, const std::string& metric, const TagSet& tags,
                  std::span<const DataPoint> points) TACC_REQUIRES(shard.mu);
  /// Seals the first `n` head points (append order, stable-sorted by time)
  /// into a new block (with downsample tiers when the store is durable).
  void seal_prefix(Series& series, std::size_t n) const;
  /// Throws std::logic_error after close(), InjectedCrash semantics aside.
  void check_open() const;

  // --- durable internals (all require durable_ != nullptr) ---
  /// Recovery: manifest -> segments -> WAL replay -> rotation -> cleanup.
  void recover();
  /// Adopts one validated segment's series into the shards (recovery).
  void adopt_segment(const LoadedSegment& seg);
  /// Writes a fresh WAL generation for `shard`: a checkpoint of every
  /// series (cum_persisted + head points) closed by the end marker, synced,
  /// swapped in, and the previous generation's file deleted.
  void rotate_wal(std::uint32_t index, Shard& shard, std::uint64_t gen)
      TACC_REQUIRES(shard.mu);
  /// Flush step: swaps each series' freshly persisted blocks for the
  /// segment-backed copies loaded from `seg` and extends the persisted
  /// prefix. (Compaction swaps whole prefixes inline in compact().)
  void swap_persisted(const LoadedSegment& seg);
  /// Computes one matched series' downsampled buckets from its snapshot.
  static void process_series(const Query& q, Partial& p);
  std::vector<SeriesResult> query_impl(const Query& q,
                                       util::ThreadPool* pool) const;

  static std::string canonical(const TagSet& tags);

  void bump_epoch() noexcept {
    epoch_->fetch_add(1, std::memory_order_acq_rel);
  }

  std::vector<std::unique_ptr<Shard>> shards_;
  /// Heap-allocated so the store stays movable (atomics are not).
  std::unique_ptr<std::atomic<std::uint64_t>> epoch_;
  std::size_t block_points_ = 1024;
  /// Null for in-memory stores.
  std::unique_ptr<DurableState> durable_;
  RecoveryInfo recovery_;
};

/// Applies an aggregator to a run of values (empty -> 0, except Count).
double aggregate(Aggregator agg, std::span<const double> values) noexcept;

}  // namespace tacc::tsdb
