// Tag-indexed time-series store, modeled on the OpenTSDB layout the paper
// adopts for time-series analysis (section VI-A): every series is labeled
// by a tuple of tags — in the paper's setup host name, device type, device
// name, and event name — and can be aggregated along any subset of the
// tags, then joined with job metadata from the relational store.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/clock.hpp"

namespace tacc::tsdb {

/// Sorted key=value tag pairs identifying one series (plus the metric
/// name kept separately).
using TagSet = std::map<std::string, std::string>;

struct DataPoint {
  util::SimTime time = 0;
  double value = 0.0;
};

enum class Aggregator { Sum, Avg, Min, Max, Count };

struct Query {
  std::string metric;
  /// Convert each matched series from cumulative counts to per-second
  /// rates (successive-point deltas / dt) before downsampling — OpenTSDB's
  /// rate() for the monotonic counters this system stores. Negative deltas
  /// (counter resets) clamp to 0.
  bool rate = false;
  /// Exact-match tag filters; series missing a filtered tag don't match.
  TagSet filters;
  /// Tags whose distinct values produce separate result groups; all other
  /// tags are aggregated away (OpenTSDB group-by semantics).
  std::vector<std::string> group_by;
  Aggregator aggregator = Aggregator::Sum;
  /// Downsample bucket; 0 = no downsampling (points aligned exactly).
  util::SimTime downsample = 0;
  Aggregator downsample_aggregator = Aggregator::Avg;
  /// Inclusive-exclusive time range; both 0 = unbounded.
  util::SimTime start = 0;
  util::SimTime end = 0;
};

struct SeriesResult {
  TagSet group_tags;  // values of the group_by tags for this group
  std::vector<DataPoint> points;  // sorted by time
};

class Store {
 public:
  /// Appends a point to the series (metric, tags). Out-of-order writes are
  /// allowed; series are kept sorted.
  void put(const std::string& metric, const TagSet& tags, util::SimTime time,
           double value);

  /// Number of distinct series across all metrics.
  std::size_t num_series() const noexcept;
  /// Total stored points.
  std::size_t num_points() const noexcept { return num_points_; }

  /// Runs a query: filter series, group, downsample, and aggregate across
  /// series within each group (per aligned timestamp).
  std::vector<SeriesResult> query(const Query& q) const;

 private:
  struct Series {
    TagSet tags;
    std::vector<DataPoint> points;
    bool sorted = true;
  };
  // metric -> canonical tag string -> series
  std::map<std::string, std::map<std::string, Series>> metrics_;
  std::size_t num_points_ = 0;

  static std::string canonical(const TagSet& tags);
};

/// Applies an aggregator to a set of values (empty -> 0, except Count).
double aggregate(Aggregator agg, const std::vector<double>& values) noexcept;

}  // namespace tacc::tsdb
