// The TSDB's checksummed, versioned on-disk segment format plus the
// manifest that names which segments are live. See docs/ARCHITECTURE.md,
// "On-disk format & recovery", for the layout diagram and the recovery
// algorithm that consumes these files.
//
// A *segment* (`seg-<seq>.blk`) is an immutable batch of sealed blocks
// for many series, written once by Store::flush()/compact() and then only
// ever memory-mapped. Every structural unit (header, per-series record,
// per-block record) carries its own CRC32C, so a damaged file reports the
// offset of the broken unit, and a footer acts as the commit marker — a
// torn write is detected as "no footer", not as garbage data. Files not
// named by the manifest are dead (a crash between segment write and
// manifest commit leaves one behind); recovery deletes them.
//
// The *manifest* (`MANIFEST`) is the atom of durability: a tiny
// checksummed file naming the live segment sequence numbers, replaced via
// write-tmp + rename + dir-fsync. Recovery trusts only the manifest; the
// crash-safety argument of flush/compact reduces to "the manifest rename
// is atomic".
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "tsdb/block.hpp"
#include "util/fault.hpp"
#include "util/file.hpp"

namespace tacc::tsdb {

// TACC_FORMAT_BEGIN(segment, 1)
// Segment file layout (all integers little-endian; varint = LEB128):
//
//   header   magic "TSG1" | u32 version | u64 file_seq | u32 crc(header)
//   body     n_series x series record, sorted by (metric, canonical tags):
//     series   'S' | varint metric_len, metric | varint n_tags,
//              n_tags x (varint key_len, key, varint val_len, val) |
//              varint cum_sealed | varint n_blocks | u32 crc(record)
//     block    'B' | zigzag varint t_min | varint (t_max - t_min) |
//              varint count | f64 sum | f64 min | f64 max |
//              varint times_len | varint values_len | varint n_tiers,
//              n_tiers x (varint interval_us, varint tier_len) |
//              times bytes | values bytes | tier streams | u32 crc(block)
//   footer   'F' | u64 n_series | u32 crc(footer) | magic "TSGE"
//
// `cum_sealed` is the series' cumulative count of points ever persisted
// to segments (monotonic across compaction and retention); WAL replay
// uses it to skip points already covered by segments. A block with
// times_len == values_len == 0 but count > 0 is a retention ghost.
// Any layout change here requires bumping kSegmentFormatVersion and
// updating tools/lint/format_fingerprint.txt (lint TS050).
inline constexpr std::uint32_t kSegmentMagic = 0x31475354u;   // "TSG1"
inline constexpr std::uint32_t kSegmentFooterMagic = 0x45475354u;  // "TSGE"
inline constexpr std::uint32_t kSegmentFormatVersion = 1;
inline constexpr std::uint8_t kSegmentSeriesTag = 'S';
inline constexpr std::uint8_t kSegmentBlockTag = 'B';
inline constexpr std::uint8_t kSegmentFooterTag = 'F';
// TACC_FORMAT_END(segment)

// TACC_FORMAT_BEGIN(manifest, 1)
// Manifest layout: magic "TSMF" | u32 version | u64 next_seq |
// u32 n_segments | n_segments x u64 seq | u32 crc(everything before).
// Replaced atomically (tmp + rename + dir fsync); never appended.
inline constexpr std::uint32_t kManifestMagic = 0x464D5354u;  // "TSMF"
inline constexpr std::uint32_t kManifestFormatVersion = 1;
// TACC_FORMAT_END(manifest)

/// Thrown by the segment/WAL/manifest readers when a checksum, magic
/// number, or structural bound fails. `offset()` is the byte offset of
/// the damaged unit inside the file — the corruption property tests
/// assert it is always populated and within the file.
class CorruptionError : public std::runtime_error {
 public:
  CorruptionError(const std::string& what, std::size_t offset)
      : std::runtime_error(what + " (offset " + std::to_string(offset) + ")"),
        offset_(offset) {}
  std::size_t offset() const noexcept { return offset_; }

 private:
  std::size_t offset_;
};

/// Thrown by a write path when the fault plan injects a crash
/// (util::kFaultWalAppend / kFaultWalSync / kFaultBlockFileWrite /
/// kFaultCompactCommit): a deterministic torn prefix of the pending bytes
/// is on disk and the store must be treated as dead, exactly like a
/// killed process. Recovery is Store::open() on the same directory.
class InjectedCrash : public std::runtime_error {
 public:
  explicit InjectedCrash(const std::string& site)
      : std::runtime_error("injected crash at " + site) {}
};

/// One series' worth of persisted state: the unit the segment writer
/// consumes and the reader produces.
struct SeriesPayload {
  std::string metric;
  TagSet tags;
  /// Cumulative points ever persisted for this series (see format note).
  std::uint64_t cum_sealed = 0;
  std::vector<std::shared_ptr<const SealedBlock>> blocks;
};

/// A successfully validated, memory-mapped segment. `series[i].blocks`
/// view the mapping and pin it via their backing pointer, so the
/// LoadedSegment itself may be discarded once the blocks are adopted.
struct LoadedSegment {
  std::uint64_t file_seq = 0;
  std::shared_ptr<const util::MmapFile> file;
  std::vector<SeriesPayload> series;
};

/// Writes a complete segment file at `path` (final name; the file is
/// inert until a manifest names it). `series` must be sorted by
/// (metric, canonical tags). When `faults` injects an error at
/// util::kFaultBlockFileWrite (key `fault_key`, salt `file_seq`), a
/// deterministic prefix of the file is written and InjectedCrash thrown.
void write_segment(const std::string& path, std::uint64_t file_seq,
                   std::span<const SeriesPayload> series,
                   const util::FaultPlan* faults, std::string_view fault_key);

/// Maps and fully validates a segment (every CRC, every structural
/// bound). Throws CorruptionError on any damage.
LoadedSegment load_segment(const std::string& path);

struct Manifest {
  std::uint64_t next_seq = 1;
  std::vector<std::uint64_t> segments;  // live segment seqs, oldest first
};

/// Reads `<dir>/MANIFEST`. A missing file returns an empty default (a
/// fresh store); a damaged file throws CorruptionError.
Manifest read_manifest(const std::string& dir);

/// Atomically replaces `<dir>/MANIFEST` (tmp + rename + dir fsync).
/// `fault_site` is consulted with key "manifest" and salt `salt`
/// (util::kFaultBlockFileWrite from flush, kFaultCompactCommit from
/// compaction); an injected error leaves a torn tmp file — the live
/// manifest is untouched — and throws InjectedCrash.
void write_manifest(const std::string& dir, const Manifest& manifest,
                    const util::FaultPlan* faults, std::string_view fault_site,
                    std::uint64_t salt);

/// `<dir>/seg-<seq>.blk`, zero-padded for lexicographic == numeric order.
std::string segment_path(const std::string& dir, std::uint64_t seq);

}  // namespace tacc::tsdb
