// Crash-safe write-ahead log for the TSDB's head buffers.
//
// Each shard owns one WAL file per generation (`wal-<shard>-<gen>.log`).
// Every put acquires the shard lock, appends a CRC-framed record to the
// shard's live WAL, *then* applies the points to memory — so per-series
// record order equals in-memory apply order, and a record that never
// finished (a torn tail) corresponds to a put that never returned.
// Recovery replays records until the first bad frame and stops: the torn
// tail is exactly the unacknowledged suffix, which is what makes
// post-crash query results byte-identical to an uncrashed store holding
// the acknowledged puts.
//
// A generation starts with a *checkpoint*: one record per series carrying
// its cumulative persisted-point counter and current head points, closed
// by a checkpoint-end marker. Rotation (during flush/open) writes the new
// generation, syncs it, then deletes the old ones; recovery picks the
// newest generation whose checkpoint is complete, so a crash mid-rotation
// falls back to the previous generation, which still holds the full
// history since *its* checkpoint. Points that a completed flush moved
// into segments are skipped at replay via the cumulative counters (see
// store.cpp, recover_shard_wal).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "tsdb/block.hpp"
#include "tsdb/blockfile.hpp"
#include "util/fault.hpp"
#include "util/file.hpp"

namespace tacc::tsdb {

// TACC_FORMAT_BEGIN(wal, 1)
// WAL file layout (all integers little-endian; varint = LEB128):
//
//   header   magic "TSWL" | u32 version | u32 shard | u64 gen |
//            u32 crc(header)
//   records  u32 payload_len | u32 crc(payload) | payload
//   payload  u8 type:
//     'C' checkpoint series: varint metric_len, metric | varint n_tags,
//         n_tags x (varint key_len, key, varint val_len, val) |
//         varint cum_sealed | varint n_points | points
//     'E' checkpoint end (type byte only)
//     'B' batch append: as 'C' without cum_sealed
//   points   first: zigzag varint time; then zigzag varint delta to the
//            previous time; each followed by f64 value bits (8 bytes LE)
//
// Any layout change here requires bumping kWalFormatVersion and updating
// tools/lint/format_fingerprint.txt (lint TS050).
inline constexpr std::uint32_t kWalMagic = 0x4C575354u;  // "TSWL"
inline constexpr std::uint32_t kWalFormatVersion = 1;
inline constexpr std::uint8_t kWalCheckpointTag = 'C';
inline constexpr std::uint8_t kWalCheckpointEndTag = 'E';
inline constexpr std::uint8_t kWalBatchTag = 'B';
// TACC_FORMAT_END(wal)

/// When WAL appends reach the kernel vs. stable storage. The in-process
/// crash model (an exception unwinding the store) cannot distinguish
/// these — every completed write() survives — but the modes drive real
/// fdatasync() calls and the wal.sync fault site, and govern durability
/// against whole-machine crashes.
enum class WalSync {
  Never,    // never fsync; durability is best-effort (OS page cache)
  OnFlush,  // fsync at flush/rotation boundaries (the default)
  Always,   // fsync after every appended record
};

enum class WalRecordType { Checkpoint, CheckpointEnd, Batch };

struct WalRecord {
  WalRecordType type = WalRecordType::Batch;
  std::string metric;
  TagSet tags;
  std::uint64_t cum_sealed = 0;  // Checkpoint records only
  std::vector<DataPoint> points;
};

/// The readable content of one WAL file. `records` holds the checkpoint
/// series records (in write order) followed by batch records; the
/// checkpoint-end marker is folded into `checkpoint_complete`.
struct WalReplay {
  std::uint32_t shard = 0;
  std::uint64_t gen = 0;
  bool checkpoint_complete = false;
  std::vector<WalRecord> records;
  /// Offset of the first unreadable byte (torn tail or damaged frame);
  /// everything before it replayed cleanly. Unset for a clean file.
  std::optional<std::size_t> torn_offset;
};

/// Reads and validates one WAL file. A damaged or truncated *record*
/// stops replay and sets `torn_offset` (the normal post-crash case); a
/// damaged header throws CorruptionError. Never returns partial records.
WalReplay replay_wal(const std::string& path);

/// Append handle for one shard's live WAL generation. Not thread-safe:
/// the owning shard's mutex serializes all calls (which is what makes
/// WAL record order match memory apply order).
class WalWriter {
 public:
  /// Creates (truncates) `path` and writes the header. `faults` drives
  /// the wal.append / wal.sync crash sites with key "shard-<shard>".
  WalWriter(const std::string& path, std::uint32_t shard, std::uint64_t gen,
            WalSync sync_mode, std::shared_ptr<const util::FaultPlan> faults);

  /// Appends one framed record; fsyncs when the mode is Always. On an
  /// injected crash a deterministic torn prefix of the frame reaches the
  /// file, the writer is poisoned (all later calls rethrow), and
  /// InjectedCrash propagates — the caller must not apply the points.
  void append(const WalRecord& record);

  /// Explicit fsync point (flush/rotation); honors the wal.sync site.
  /// No-op when the mode is Never.
  void sync();

  std::uint64_t gen() const noexcept { return gen_; }
  const std::string& path() const noexcept { return path_; }
  /// Bytes appended so far, header included.
  std::size_t bytes() const noexcept { return file_.offset(); }

 private:
  void check_poisoned() const;

  std::string path_;
  std::string fault_key_;
  std::uint64_t gen_ = 0;
  WalSync sync_mode_ = WalSync::OnFlush;
  std::shared_ptr<const util::FaultPlan> faults_;
  util::FileWriter file_;
  std::uint64_t ops_ = 0;
  bool poisoned_ = false;
};

/// `<dir>/wal-<shard>-<gen>.log`, zero-padded for lexicographic order.
std::string wal_path(const std::string& dir, std::uint32_t shard,
                     std::uint64_t gen);

}  // namespace tacc::tsdb
