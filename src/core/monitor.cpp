#include "core/monitor.hpp"

#include <utility>

namespace tacc::core {

namespace {
constexpr const char* kQueue = "raw_stats";
}  // namespace

ClusterMonitor::ClusterMonitor(simhw::Cluster& cluster, MonitorConfig config)
    : cluster_(&cluster),
      config_(config),
      engine_(cluster, config.start),
      now_(config.start) {
  if (config_.mode == TransportMode::Daemon) {
    broker_.declare_queue(kQueue);
    broker_.bind(kQueue, "stats.*");
    broker_.set_fault_plan(config_.fault_plan);
    if (config_.queue_limit > 0) {
      broker_.set_queue_limit(kQueue, config_.queue_limit);
    }
    if (config_.online_analysis) {
      online_ = std::make_unique<OnlineAnalyzer>(config_.online_thresholds);
    }
    start_consumer();
    for (std::size_t i = 0; i < cluster.size(); ++i) {
      transport::DaemonConfig dc;
      dc.interval = config_.interval;
      dc.build_options = config_.build_options;
      dc.retry = config_.retry;
      dc.faults = config_.fault_plan;
      daemons_.push_back(std::make_unique<transport::StatsDaemon>(
          cluster.node(i), broker_, dc,
          [this, i] { return jobs_on(i); }));
    }
  } else {
    transport::CronConfig cc;
    cc.interval = config_.interval;
    cc.build_options = config_.build_options;
    cc.faults = config_.fault_plan;
    cron_ = std::make_unique<transport::CronMode>(
        cluster, archive_, cc,
        [this](std::size_t i) { return jobs_on(i); });
  }
}

void ClusterMonitor::start_consumer() {
  transport::Consumer::RecordCallback callback;
  if (online_) {
    callback = [this](const std::string& host,
                      const collect::HostLog& chunk) {
      online_->on_chunk(host, chunk);
    };
  }
  consumer_ = std::make_unique<transport::Consumer>(
      broker_, archive_, kQueue, callback, config_.consumer_options,
      config_.fault_plan);
}

void ClusterMonitor::crash_consumer() {
  if (!consumer_) return;
  dead_consumer_resilience_.merge(consumer_->resilience());
  consumer_->crash();
  consumer_.reset();
}

void ClusterMonitor::restart_consumer() {
  if (config_.mode != TransportMode::Daemon || consumer_) return;
  start_consumer();
}

ClusterMonitor::~ClusterMonitor() {
  if (consumer_) consumer_->stop();
}

std::vector<long> ClusterMonitor::jobs_on(std::size_t node_index) const {
  return engine_.jobs_on(node_index);
}

void ClusterMonitor::job_started(const workload::JobSpec& spec,
                                 std::vector<std::size_t> node_indices) {
  engine_.start_job(spec, std::move(node_indices));
  for (const std::size_t ni : *engine_.nodes_of(spec.jobid)) {
    if (config_.mode == TransportMode::Daemon) {
      daemons_[ni]->collect_now(now_, "begin");
    } else {
      cron_->collect_now(ni, now_, "begin");
    }
  }
}

void ClusterMonitor::job_ended(long jobid) {
  const auto* nodes = engine_.nodes_of(jobid);
  if (nodes != nullptr) {
    for (const std::size_t ni : *nodes) {
      if (config_.mode == TransportMode::Daemon) {
        daemons_[ni]->collect_now(now_, "end");
      } else {
        cron_->collect_now(ni, now_, "end");
      }
    }
  }
  engine_.end_job(jobid);
}

void ClusterMonitor::advance_to(util::SimTime t) {
  while (now_ < t) {
    const util::SimTime step = std::min(config_.interval, t - now_);
    engine_.advance(step);
    now_ += step;
    if (config_.mode == TransportMode::Daemon) {
      for (auto& daemon : daemons_) daemon->on_time(now_);
    } else {
      cron_->on_time(now_);
    }
  }
}

void ClusterMonitor::fail_node(std::size_t index) {
  cluster_->fail_node(index);
  if (cron_) cron_->node_failed(index);
}

void ClusterMonitor::drain() {
  for (auto& d : daemons_) d->flush_spool(now_);
  if (consumer_) consumer_->drain();
}

transport::CronStats ClusterMonitor::cron_stats() const {
  return cron_ ? cron_->stats() : transport::CronStats{};
}

transport::DaemonStats ClusterMonitor::daemon_stats() const {
  transport::DaemonStats total;
  for (const auto& d : daemons_) {
    total.collections += d->stats().collections;
    total.publish_failures += d->stats().publish_failures;
    total.total_collect_wall_s += d->stats().total_collect_wall_s;
    total.total_backoff += d->stats().total_backoff;
    total.resilience.merge(d->stats().resilience);
  }
  return total;
}

std::uint64_t ClusterMonitor::published_unique() const {
  if (cron_) return cron_->stats().collected_records;
  std::uint64_t n = 0;
  for (const auto& d : daemons_) n += d->last_seq();
  return n;
}

std::size_t ClusterMonitor::cron_backlog() const {
  return cron_ ? cron_->backlog() : 0;
}

std::size_t ClusterMonitor::spool_depth() const {
  std::size_t n = 0;
  for (const auto& d : daemons_) n += d->spool_depth();
  return n;
}

util::ResilienceStats ClusterMonitor::resilience_stats() const {
  util::ResilienceStats total;
  if (cron_) {
    total.merge(cron_->stats().resilience);
    return total;
  }
  total.merge(broker_.stats().resilience);
  for (const auto& d : daemons_) total.merge(d->stats().resilience);
  total.merge(dead_consumer_resilience_);
  if (consumer_) total.merge(consumer_->resilience());
  return total;
}

}  // namespace tacc::core
