#include "core/monitor.hpp"

#include <utility>

namespace tacc::core {

namespace {
constexpr const char* kQueue = "raw_stats";
}  // namespace

ClusterMonitor::ClusterMonitor(simhw::Cluster& cluster, MonitorConfig config)
    : cluster_(&cluster),
      config_(config),
      engine_(cluster, config.start),
      now_(config.start) {
  if (config_.mode == TransportMode::Daemon) {
    broker_.declare_queue(kQueue);
    broker_.bind(kQueue, "stats.*");
    if (config_.online_analysis) {
      online_ = std::make_unique<OnlineAnalyzer>(config_.online_thresholds);
    }
    transport::Consumer::RecordCallback callback;
    if (online_) {
      callback = [this](const std::string& host,
                        const collect::HostLog& chunk) {
        online_->on_chunk(host, chunk);
      };
    }
    consumer_ = std::make_unique<transport::Consumer>(broker_, archive_,
                                                      kQueue, callback);
    for (std::size_t i = 0; i < cluster.size(); ++i) {
      transport::DaemonConfig dc;
      dc.interval = config_.interval;
      dc.build_options = config_.build_options;
      daemons_.push_back(std::make_unique<transport::StatsDaemon>(
          cluster.node(i), broker_, dc,
          [this, i] { return jobs_on(i); }));
    }
  } else {
    transport::CronConfig cc;
    cc.interval = config_.interval;
    cc.build_options = config_.build_options;
    cron_ = std::make_unique<transport::CronMode>(
        cluster, archive_, cc,
        [this](std::size_t i) { return jobs_on(i); });
  }
}

ClusterMonitor::~ClusterMonitor() {
  if (consumer_) consumer_->stop();
}

std::vector<long> ClusterMonitor::jobs_on(std::size_t node_index) const {
  return engine_.jobs_on(node_index);
}

void ClusterMonitor::job_started(const workload::JobSpec& spec,
                                 std::vector<std::size_t> node_indices) {
  engine_.start_job(spec, std::move(node_indices));
  for (const std::size_t ni : *engine_.nodes_of(spec.jobid)) {
    if (config_.mode == TransportMode::Daemon) {
      daemons_[ni]->collect_now(now_, "begin");
    } else {
      cron_->collect_now(ni, now_, "begin");
    }
  }
}

void ClusterMonitor::job_ended(long jobid) {
  const auto* nodes = engine_.nodes_of(jobid);
  if (nodes != nullptr) {
    for (const std::size_t ni : *nodes) {
      if (config_.mode == TransportMode::Daemon) {
        daemons_[ni]->collect_now(now_, "end");
      } else {
        cron_->collect_now(ni, now_, "end");
      }
    }
  }
  engine_.end_job(jobid);
}

void ClusterMonitor::advance_to(util::SimTime t) {
  while (now_ < t) {
    const util::SimTime step = std::min(config_.interval, t - now_);
    engine_.advance(step);
    now_ += step;
    if (config_.mode == TransportMode::Daemon) {
      for (auto& daemon : daemons_) daemon->on_time(now_);
    } else {
      cron_->on_time(now_);
    }
  }
}

void ClusterMonitor::fail_node(std::size_t index) {
  cluster_->fail_node(index);
  if (cron_) cron_->node_failed(index);
}

void ClusterMonitor::drain() {
  if (consumer_) consumer_->drain();
}

transport::CronStats ClusterMonitor::cron_stats() const {
  return cron_ ? cron_->stats() : transport::CronStats{};
}

transport::DaemonStats ClusterMonitor::daemon_stats() const {
  transport::DaemonStats total;
  for (const auto& d : daemons_) {
    total.collections += d->stats().collections;
    total.publish_failures += d->stats().publish_failures;
    total.total_collect_wall_s += d->stats().total_collect_wall_s;
  }
  return total;
}

}  // namespace tacc::core
