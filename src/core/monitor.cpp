#include "core/monitor.hpp"

#include <utility>

#include "util/table.hpp"

namespace tacc::core {

namespace {
constexpr const char* kQueue = "raw_stats";
}  // namespace

ClusterMonitor::ClusterMonitor(simhw::Cluster& cluster, MonitorConfig config)
    : cluster_(&cluster),
      config_(config),
      engine_(cluster, config.start),
      now_(config.start) {
  // The tree builds every broker (declared/bound/fault-planned); the flat
  // default is a one-broker tree with no aggregators — the exact Fig. 2
  // pipeline. Cron mode keeps a flat tree so broker() stays valid.
  tree_ = std::make_unique<transport::AggregationTree>(
      kQueue,
      config_.mode == TransportMode::Daemon ? config_.topology
                                            : transport::TreeOptions{},
      config_.fault_plan);
  if (config_.mode == TransportMode::Daemon) {
    if (config_.queue_limit > 0) {
      tree_->root().set_queue_limit(kQueue, config_.queue_limit);
    }
    if (config_.online_analysis) {
      online_ = std::make_unique<OnlineAnalyzer>(config_.online_thresholds);
    }
    start_consumer();
    for (std::size_t i = 0; i < cluster.size(); ++i) {
      transport::DaemonConfig dc;
      dc.interval = config_.interval;
      dc.build_options = config_.build_options;
      dc.retry = config_.retry;
      dc.faults = config_.fault_plan;
      daemons_.push_back(std::make_unique<transport::StatsDaemon>(
          cluster.node(i), tree_->leaf_for(cluster.node(i).hostname()), dc,
          [this, i] { return jobs_on(i); }));
    }
  } else {
    transport::CronConfig cc;
    cc.interval = config_.interval;
    cc.build_options = config_.build_options;
    cc.faults = config_.fault_plan;
    cron_ = std::make_unique<transport::CronMode>(
        cluster, archive_, cc,
        [this](std::size_t i) { return jobs_on(i); });
  }
}

void ClusterMonitor::start_consumer() {
  transport::Consumer::RecordCallback callback;
  if (online_) {
    callback = [this](const std::string& host,
                      const collect::HostLog& chunk) {
      online_->on_chunk(host, chunk);
    };
  }
  consumer_ = std::make_unique<transport::Consumer>(
      tree_->root(), archive_, kQueue, callback, config_.consumer_options,
      config_.fault_plan);
}

void ClusterMonitor::crash_consumer() {
  if (!consumer_) return;
  dead_consumer_resilience_.merge(consumer_->resilience());
  consumer_->crash();
  consumer_.reset();
}

void ClusterMonitor::restart_consumer() {
  if (config_.mode != TransportMode::Daemon || consumer_) return;
  start_consumer();
}

ClusterMonitor::~ClusterMonitor() {
  tree_->stop();
  if (consumer_) consumer_->stop();
}

std::vector<long> ClusterMonitor::jobs_on(std::size_t node_index) const {
  return engine_.jobs_on(node_index);
}

void ClusterMonitor::job_started(const workload::JobSpec& spec,
                                 std::vector<std::size_t> node_indices) {
  engine_.start_job(spec, std::move(node_indices));
  for (const std::size_t ni : *engine_.nodes_of(spec.jobid)) {
    if (config_.mode == TransportMode::Daemon) {
      daemons_[ni]->collect_now(now_, "begin");
    } else {
      cron_->collect_now(ni, now_, "begin");
    }
  }
}

void ClusterMonitor::job_ended(long jobid) {
  const auto* nodes = engine_.nodes_of(jobid);
  if (nodes != nullptr) {
    for (const std::size_t ni : *nodes) {
      if (config_.mode == TransportMode::Daemon) {
        daemons_[ni]->collect_now(now_, "end");
      } else {
        cron_->collect_now(ni, now_, "end");
      }
    }
  }
  engine_.end_job(jobid);
}

void ClusterMonitor::advance_to(util::SimTime t) {
  while (now_ < t) {
    const util::SimTime step = std::min(config_.interval, t - now_);
    engine_.advance(step);
    now_ += step;
    if (config_.mode == TransportMode::Daemon) {
      for (auto& daemon : daemons_) daemon->on_time(now_);
    } else {
      cron_->on_time(now_);
    }
  }
}

void ClusterMonitor::fail_node(std::size_t index) {
  cluster_->fail_node(index);
  if (cron_) cron_->node_failed(index);
}

void ClusterMonitor::drain() {
  // With aggregator tiers (and watermark backpressure) between daemons and
  // root, one spool pass is not enough: quiesce the tree so Paused queues
  // resume, flush the daemon spools, and repeat until nothing moved. A
  // dead consumer degrades to the old single flush (the tree cannot
  // quiesce into a root nobody drains).
  for (;;) {
    if (consumer_) {
      tree_->quiesce();   // every in-flight record reaches the root queue
      consumer_->drain(); // ... and the root queue reaches the archive
    }
    std::size_t flushed = 0;
    for (auto& d : daemons_) flushed += d->flush_spool(now_);
    if (flushed == 0 || !consumer_) break;
  }
}

transport::CronStats ClusterMonitor::cron_stats() const {
  return cron_ ? cron_->stats() : transport::CronStats{};
}

transport::DaemonStats ClusterMonitor::daemon_stats() const {
  transport::DaemonStats total;
  for (const auto& d : daemons_) {
    total.collections += d->stats().collections;
    total.publish_failures += d->stats().publish_failures;
    total.total_collect_wall_s += d->stats().total_collect_wall_s;
    total.total_backoff += d->stats().total_backoff;
    total.resilience.merge(d->stats().resilience);
  }
  return total;
}

std::uint64_t ClusterMonitor::published_unique() const {
  if (cron_) return cron_->stats().collected_records;
  std::uint64_t n = 0;
  for (const auto& d : daemons_) n += d->last_seq();
  return n;
}

std::size_t ClusterMonitor::cron_backlog() const {
  return cron_ ? cron_->backlog() : 0;
}

std::size_t ClusterMonitor::spool_depth() const {
  std::size_t n = tree_->spool_records();
  for (const auto& d : daemons_) n += d->spool_depth();
  return n;
}

util::ResilienceStats ClusterMonitor::resilience_stats() const {
  util::ResilienceStats total;
  if (cron_) {
    total.merge(cron_->stats().resilience);
    return total;
  }
  total.merge(tree_->resilience());
  for (const auto& d : daemons_) total.merge(d->stats().resilience);
  total.merge(dead_consumer_resilience_);
  if (consumer_) total.merge(consumer_->resilience());
  return total;
}

std::vector<transport::TierStats> ClusterMonitor::tier_stats() const {
  if (config_.mode != TransportMode::Daemon) return {};
  auto rows = tree_->tier_stats();
  if (rows.empty()) return rows;
  // Fold the endpoints in: the daemons publish into the leaf tier, the
  // consumer drains the root tier. With the flat topology both land on the
  // same single row.
  transport::TierStats& leaf = rows.front();
  for (const auto& d : daemons_) {
    leaf.spool_records += d->spool_depth();
    leaf.resilience.merge(d->stats().resilience);
  }
  transport::TierStats& root = rows.back();
  root.resilience.merge(dead_consumer_resilience_);
  if (consumer_) root.resilience.merge(consumer_->resilience());
  return rows;
}

std::string ClusterMonitor::topology_stats() const {
  util::TextTable table;
  table.header({"tier", "brokers", "aggs", "depth", "unacked", "dead",
                "pending", "spooled", "paused", "resumed", "deduped"});
  for (const auto& row : tier_stats()) {
    table.row({std::to_string(row.tier), std::to_string(row.brokers),
               std::to_string(row.aggregators),
               std::to_string(row.queue_depth), std::to_string(row.unacked),
               std::to_string(row.dead_letters),
               std::to_string(row.pending_records),
               std::to_string(row.spool_records),
               std::to_string(row.resilience.paused_windows),
               std::to_string(row.resilience.resumed_windows),
               std::to_string(row.resilience.deduped)});
  }
  return table.render();
}

}  // namespace tacc::core
