// ClusterMonitor: the end-to-end facade wiring a simulated cluster, the
// workload engine, per-node collection, one of the two transport modes, and
// (in daemon mode) the real-time consumer plus online analyzer. This is the
// API the examples and the figure benches drive.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "core/online.hpp"
#include "simhw/cluster.hpp"
#include "transport/archive.hpp"
#include "transport/broker.hpp"
#include "transport/consumer.hpp"
#include "transport/cron.hpp"
#include "transport/daemon.hpp"
#include "transport/topology.hpp"
#include "workload/engine.hpp"

namespace tacc::core {

enum class TransportMode { Cron, Daemon };

struct MonitorConfig {
  TransportMode mode = TransportMode::Daemon;
  util::SimTime interval = 10 * util::kMinute;
  util::SimTime start = util::make_time(2016, 1, 1);
  collect::BuildOptions build_options{};
  /// Enable the online analyzer on the daemon-mode stream.
  bool online_analysis = true;
  OnlineThresholds online_thresholds{};
  /// Fault schedule threaded through broker, daemons, consumer, and cron
  /// (null = no injection).
  std::shared_ptr<const util::FaultPlan> fault_plan;
  /// Daemon-mode queue depth cap; overflow dead-letters (0 = unlimited).
  std::size_t queue_limit = 0;
  transport::RetryPolicy retry{};
  transport::ConsumerOptions consumer_options{};
  /// Daemon-mode transport topology: defaults to the flat single broker;
  /// leaf_brokers > 1 builds the sharded broker + aggregator tree.
  transport::TreeOptions topology{};
};

class ClusterMonitor {
 public:
  ClusterMonitor(simhw::Cluster& cluster, MonitorConfig config);
  ~ClusterMonitor();

  ClusterMonitor(const ClusterMonitor&) = delete;
  ClusterMonitor& operator=(const ClusterMonitor&) = delete;

  workload::Engine& engine() noexcept { return engine_; }
  transport::RawArchive& archive() noexcept { return archive_; }
  /// The root broker (the one the consumer drains). With the default flat
  /// topology this is the only broker, as before.
  transport::Broker& broker() noexcept { return tree_->root(); }
  transport::AggregationTree& topology() noexcept { return *tree_; }
  OnlineAnalyzer* online() noexcept { return online_.get(); }
  util::SimTime now() const noexcept { return now_; }

  /// Starts a job on specific nodes: engine demand begins and the
  /// scheduler prolog triggers a "begin" collection on each node.
  void job_started(const workload::JobSpec& spec,
                   std::vector<std::size_t> node_indices);

  /// Ends a job: epilog "end" collection on each node, then demand stops.
  void job_ended(long jobid);

  /// Advances simulation to `t`, stepping engine + transport at the
  /// sampling interval.
  void advance_to(util::SimTime t);

  /// Fails a node (cron mode loses its unstaged local data).
  void fail_node(std::size_t index);

  /// Daemon mode: replays every daemon's local spool, then blocks until
  /// the consumer drained the broker queue.
  void drain();

  /// Daemon mode: simulates a consumer crash (its in-flight delivery is
  /// left unacked; the broker keeps queuing). No-op in cron mode.
  void crash_consumer();

  /// Daemon mode: starts a fresh consumer against the same archive. It
  /// recovers the dead predecessor's unacked deliveries; dedup in the
  /// archive keeps delivery exactly-once. No-op in cron mode.
  void restart_consumer();

  /// Aggregated daemon stats (daemon mode) / cron stats (cron mode).
  transport::CronStats cron_stats() const;
  transport::DaemonStats daemon_stats() const;

  /// Unique records collected so far (sequence numbers assigned across all
  /// daemons, or cron collections) — the "published_unique" side of
  /// delivered-vs-lost accounting.
  std::uint64_t published_unique() const;

  /// Records still parked in daemon spools (0 after a clean drain).
  std::size_t spool_depth() const;

  /// Cron mode: records still node-local (unrotated or awaiting a
  /// successful rsync). 0 in daemon mode.
  std::size_t cron_backlog() const;

  /// Merged fault counters from every broker tier + aggregators + daemons
  /// + consumer (daemon mode) or cron (cron mode).
  util::ResilienceStats resilience_stats() const;

  /// Per-tier rollup: the tree's broker/aggregator rows with the endpoints
  /// folded in — daemon spools + resilience into the leaf tier, consumer
  /// dedup/requeue counters into the root tier. Summing every row
  /// field-by-field reproduces resilience_stats() exactly (asserted by
  /// test_resilience_rollup). Empty in cron mode.
  std::vector<transport::TierStats> tier_stats() const;

  /// tier_stats() rendered as one table: queue depth, unacked, dead
  /// letters, pending/spooled records, and pause/resume transitions per
  /// tier, so callers stop polling brokers individually.
  std::string topology_stats() const;

 private:
  std::vector<long> jobs_on(std::size_t node_index) const;
  void start_consumer();

  simhw::Cluster* cluster_;
  MonitorConfig config_;
  workload::Engine engine_;
  transport::RawArchive archive_;
  /// Broker topology (flat or tree); outlives the consumer, which drains
  /// its root.
  std::unique_ptr<transport::AggregationTree> tree_;
  std::unique_ptr<OnlineAnalyzer> online_;
  std::unique_ptr<transport::Consumer> consumer_;
  /// Counters inherited from crashed consumer incarnations.
  util::ResilienceStats dead_consumer_resilience_;
  std::vector<std::unique_ptr<transport::StatsDaemon>> daemons_;
  std::unique_ptr<transport::CronMode> cron_;
  util::SimTime now_;
};

}  // namespace tacc::core
