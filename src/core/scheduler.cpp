#include "core/scheduler.hpp"

#include <algorithm>

namespace tacc::core {

LiveScheduler::LiveScheduler(ClusterMonitor& monitor, std::size_t num_nodes)
    : monitor_(&monitor) {
  for (std::size_t i = 0; i < num_nodes; ++i) free_.insert(i);
}

void LiveScheduler::submit(workload::JobSpec job) {
  pending_.push_back(std::move(job));
  std::stable_sort(pending_.begin(), pending_.end(),
                   [](const workload::JobSpec& a,
                      const workload::JobSpec& b) {
                     return a.submit_time < b.submit_time;
                   });
}

void LiveScheduler::dispatch() {
  const util::SimTime now = monitor_->now();
  while (!pending_.empty()) {
    auto& head = pending_.front();
    if (head.submit_time > now) break;  // not submitted yet
    const auto need = static_cast<std::size_t>(head.nodes);
    if (free_.size() < need) break;  // strict FCFS: head blocks the queue
    Running run;
    run.spec = head;
    const util::SimTime duration = head.runtime();
    run.spec.start_time = now;
    run.spec.end_time = now + duration;
    for (std::size_t i = 0; i < need; ++i) {
      const auto it = free_.begin();
      run.nodes.push_back(*it);
      free_.erase(it);
    }
    monitor_->job_started(run.spec, run.nodes);
    running_.emplace(run.spec.jobid, std::move(run));
    pending_.pop_front();
  }
}

void LiveScheduler::reap() {
  const util::SimTime now = monitor_->now();
  for (auto it = running_.begin(); it != running_.end();) {
    if (it->second.spec.end_time <= now) {
      monitor_->job_ended(it->first);
      for (const auto n : it->second.nodes) free_.insert(n);
      completed_.push_back(it->second.spec);
      it = running_.erase(it);
    } else {
      ++it;
    }
  }
}

bool LiveScheduler::suspend(long jobid) {
  const auto it = running_.find(jobid);
  if (it == running_.end()) return false;
  monitor_->job_ended(jobid);
  for (const auto n : it->second.nodes) free_.insert(n);
  auto spec = it->second.spec;
  spec.end_time = monitor_->now();
  spec.status = "SUSPENDED";
  completed_.push_back(std::move(spec));
  running_.erase(it);
  return true;
}

util::SimTime LiveScheduler::next_event(util::SimTime horizon) const {
  util::SimTime next = horizon;
  for (const auto& [jobid, run] : running_) {
    next = std::min(next, run.spec.end_time);
  }
  if (!pending_.empty()) {
    next = std::min(next, pending_.front().submit_time);
  }
  return std::max(next, monitor_->now());
}

void LiveScheduler::run_until(util::SimTime t) {
  // Process events in order, stepping the monitor between them so the
  // sampling cadence continues across job boundaries.
  while (monitor_->now() < t) {
    reap();
    dispatch();
    const util::SimTime target = next_event(t);
    if (target <= monitor_->now()) {
      // An event fired exactly now (e.g. a job both ends and another
      // starts); loop again without advancing.
      if (target == monitor_->now()) {
        reap();
        dispatch();
      }
      monitor_->advance_to(monitor_->now() + util::kMinute);
      continue;
    }
    monitor_->advance_to(target);
  }
  reap();
  dispatch();
}

void LiveScheduler::drain_jobs(util::SimTime at_least) {
  while (!pending_.empty() || !running_.empty()) {
    util::SimTime target = monitor_->now() + util::kHour;
    for (const auto& [jobid, run] : running_) {
      target = std::min(target, run.spec.end_time);
    }
    if (!pending_.empty()) {
      target = std::min(target,
                        std::max(pending_.front().submit_time,
                                 monitor_->now() + util::kMinute));
    }
    run_until(std::max(target, monitor_->now() + util::kMinute));
  }
  if (monitor_->now() < at_least) run_until(at_least);
}

}  // namespace tacc::core
