// Shared-node process attribution (paper section VI-C).
//
// On shared nodes the tool cannot attribute node-level counters to a single
// job, but it can bracket every process: an LD_PRELOADed shared object
// signals tacc_statsd from a gcc constructor (after the process starts,
// before main) and a destructor (after main, before exit). Every signal
// triggers a data collection labeled with the list of currently running
// jobs, so each process gets at least two collections regardless of
// runtime.
//
// Race policy (as the paper describes the current implementation): a
// collection occupies the daemon for ~0.09 s; while one is in progress up
// to ONE further signal can be captured and is serviced immediately
// afterwards — two processes starting simultaneously are handled correctly;
// a third signal inside the busy window is missed and its process is only
// seen at the next interval collection.
#pragma once

#include <functional>
#include <set>
#include <vector>

#include "util/clock.hpp"

namespace tacc::core {

struct SharedNodeStats {
  std::uint64_t signals_received = 0;
  std::uint64_t collections_triggered = 0;
  std::uint64_t signals_coalesced = 0;  // captured while busy, run after
  std::uint64_t signals_missed = 0;     // lost in the busy window
};

class SharedNodeTracker {
 public:
  /// `collect` performs one collection at the given time with the given
  /// mark ("procstart"/"procstop"); the tracker guarantees the ordering and
  /// race policy above. `collection_time` models the ~0.09 s a collection
  /// occupies a core.
  SharedNodeTracker(
      std::function<void(util::SimTime, const std::string& mark)> collect,
      util::SimTime collection_time = util::from_seconds(0.09));

  /// Constructor-attribute signal: a process of `jobid` started.
  void process_started(util::SimTime now, int pid, long jobid);
  /// Destructor-attribute signal: a process ended.
  void process_ended(util::SimTime now, int pid, long jobid);

  /// Jobs with at least one live process (the record label list).
  std::vector<long> current_jobs() const;

  const SharedNodeStats& stats() const noexcept { return stats_; }
  /// Time until which the daemon is busy collecting.
  util::SimTime busy_until() const noexcept { return busy_until_; }

 private:
  void signal(util::SimTime now, const std::string& mark);

  std::function<void(util::SimTime, const std::string&)> collect_;
  util::SimTime collection_time_;
  util::SimTime busy_until_ = 0;
  bool pending_ = false;
  util::SimTime pending_start_ = 0;  // when the queued collection begins
  std::multiset<long> job_procs_;  // one entry per live process
  SharedNodeStats stats_;
};

}  // namespace tacc::core
