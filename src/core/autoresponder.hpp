// Automated real-time response (paper section VI-B): "problem jobs [can]
// be quickly identified and suspended before they create system-wide
// slowdowns or crashes. This identification process could be automated and
// a system administrator notified immediately."
//
// The AutoResponder closes that loop: it polls the online analyzer for
// suspension candidates, applies a confirmation policy (a job must trip the
// threshold in `strikes` distinct alerts before action, so a single noisy
// interval doesn't kill it), notifies the administrator, and suspends the
// job through the live scheduler.
#pragma once

#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/online.hpp"
#include "core/scheduler.hpp"

namespace tacc::core {

struct ResponderConfig {
  /// Alerts required against the same job before it is suspended.
  int strikes = 3;
  /// Rules that count toward suspension.
  std::set<std::string> actionable_rules = {"metadata_storm"};
};

struct ResponderAction {
  util::SimTime time = 0;
  long jobid = 0;
  std::string rule;
  int strikes = 0;
  bool suspended = false;  // false = job already gone when we acted
};

class AutoResponder {
 public:
  using Notifier = std::function<void(const ResponderAction&)>;

  AutoResponder(OnlineAnalyzer& analyzer, LiveScheduler& scheduler,
                ResponderConfig config = {}, Notifier notifier = nullptr);

  /// Processes alerts that arrived since the last poll; suspends jobs that
  /// reached the strike threshold. Call periodically from the driving loop.
  /// Returns the actions taken this poll.
  std::vector<ResponderAction> poll();

  const std::vector<ResponderAction>& actions() const noexcept {
    return actions_;
  }

 private:
  OnlineAnalyzer* analyzer_;
  LiveScheduler* scheduler_;
  ResponderConfig config_;
  Notifier notifier_;
  std::size_t alerts_seen_ = 0;
  std::map<long, int> strikes_;
  std::set<long> handled_;
  std::vector<ResponderAction> actions_;
};

}  // namespace tacc::core
