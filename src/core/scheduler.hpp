// A live FCFS batch scheduler driving a monitored cluster: jobs are
// submitted with their demand specs, the scheduler allocates concrete
// nodes as they free up, fires the prolog/epilog collections through the
// ClusterMonitor at the right instants, and advances simulated time
// event-by-event. This is the piece that turns "a cluster with a monitor"
// into "a production system running a workload" for the figure-scale
// experiments and examples.
#pragma once

#include <deque>
#include <map>
#include <set>

#include "core/monitor.hpp"
#include "workload/jobs.hpp"

namespace tacc::core {

class LiveScheduler {
 public:
  /// Schedules onto all nodes of the monitor's cluster.
  LiveScheduler(ClusterMonitor& monitor, std::size_t num_nodes);

  /// Queues a job. Only submit_time and the duration (end_time -
  /// start_time) of the spec are honored; actual start/end are assigned by
  /// the scheduler. Jobs must be submitted in non-decreasing submit order
  /// relative to the current simulation time.
  void submit(workload::JobSpec job);

  /// Advances the world to `t`: dispatches queued jobs FCFS as nodes free,
  /// ends running jobs, and steps the monitor between events.
  void run_until(util::SimTime t);

  /// Convenience: runs until every submitted job has completed, then
  /// advances to the later of that instant and `at_least`.
  void drain_jobs(util::SimTime at_least = 0);

  /// Suspends (kills) a running job immediately: the epilog collection
  /// fires, demand stops, nodes free, and the job completes with status
  /// "SUSPENDED". Returns false if the job is not running.
  bool suspend(long jobid);

  std::size_t running() const noexcept { return running_.size(); }
  std::size_t waiting() const noexcept { return pending_.size(); }
  /// Completed jobs with their actual (scheduler-assigned) times.
  const std::vector<workload::JobSpec>& completed() const noexcept {
    return completed_;
  }
  std::size_t free_nodes() const noexcept { return free_.size(); }

 private:
  struct Running {
    workload::JobSpec spec;
    std::vector<std::size_t> nodes;
  };
  /// Starts every queued job that fits, head-of-queue first (strict FCFS:
  /// a blocked head blocks the queue).
  void dispatch();
  /// Ends jobs whose end time has arrived.
  void reap();
  util::SimTime next_event(util::SimTime horizon) const;

  ClusterMonitor* monitor_;
  std::deque<workload::JobSpec> pending_;
  std::map<long, Running> running_;
  std::set<std::size_t> free_;
  std::vector<workload::JobSpec> completed_;
};

}  // namespace tacc::core
