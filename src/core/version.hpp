// Library identity.
#pragma once

namespace tacc {

/// Version of this reproduction (tracks the paper's "major new version" of
/// the tool, which identified itself as tacc_stats 2.x).
inline constexpr const char* kVersion = "2.1.0";

}  // namespace tacc
