// Online (soft real-time) analysis of the daemon-mode stream (paper
// sections I-C and VI-B): as raw chunks arrive at the consumer, per-host
// interval rates are computed immediately and compared against thresholds;
// problem jobs are reported to the administrator — and recommended for
// suspension — before they can slow down or crash the shared filesystem.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "collect/rawfile.hpp"
#include "util/clock.hpp"
#include "util/thread_annotations.hpp"

namespace tacc::core {

struct OnlineThresholds {
  double mdc_reqs_ps = 20000.0;  // per node: metadata storm
  double gige_bytes_ps = 1.0e6;  // per node: MPI over Ethernet
  double mem_fraction = 0.95;    // near-OOM
};

struct Alert {
  util::SimTime time = 0;
  std::string hostname;
  std::vector<long> jobids;
  std::string rule;    // "metadata_storm", "gige_traffic", "memory_pressure"
  double value = 0.0;  // the offending rate/fraction
};

class OnlineAnalyzer {
 public:
  explicit OnlineAnalyzer(OnlineThresholds thresholds = {})
      : thresholds_(thresholds) {}

  /// Consumer callback: analyze a freshly arrived self-describing chunk.
  /// Thread-safe (the consumer calls from its own thread).
  void on_chunk(const std::string& hostname, const collect::HostLog& chunk)
      TACC_EXCLUDES(mu_);

  std::vector<Alert> alerts() const TACC_EXCLUDES(mu_);
  /// Jobs recommended for suspension (any job that triggered a
  /// metadata-storm alert).
  std::set<long> suspend_candidates() const TACC_EXCLUDES(mu_);
  std::size_t records_analyzed() const TACC_EXCLUDES(mu_);

 private:
  struct HostState {
    collect::Record last;
    std::vector<collect::Schema> schemas;
  };
  /// Summed value of (type, key) over devices in a record; -1 if absent.
  static double block_sum(const std::vector<collect::Schema>& schemas,
                          const collect::Record& record,
                          const std::string& type, const std::string& key);

  OnlineThresholds thresholds_;
  mutable util::Mutex mu_;
  std::map<std::string, HostState> hosts_ TACC_GUARDED_BY(mu_);
  std::vector<Alert> alerts_ TACC_GUARDED_BY(mu_);
  std::set<long> suspend_ TACC_GUARDED_BY(mu_);
  std::size_t records_ TACC_GUARDED_BY(mu_) = 0;
};

}  // namespace tacc::core
