#include "core/sharednode.hpp"

#include <algorithm>

namespace tacc::core {

SharedNodeTracker::SharedNodeTracker(
    std::function<void(util::SimTime, const std::string&)> collect,
    util::SimTime collection_time)
    : collect_(std::move(collect)), collection_time_(collection_time) {}

void SharedNodeTracker::signal(util::SimTime now, const std::string& mark) {
  ++stats_.signals_received;
  // The queue slot frees as soon as the queued collection begins running.
  if (pending_ && now >= pending_start_) pending_ = false;
  if (now >= busy_until_) {
    // Idle: collect immediately.
    collect_(now, mark);
    ++stats_.collections_triggered;
    busy_until_ = now + collection_time_;
    pending_ = false;
    return;
  }
  if (!pending_) {
    // One signal can be captured while a collection is in flight; it is
    // serviced as soon as the current collection finishes.
    pending_ = true;
    pending_start_ = busy_until_;
    collect_(busy_until_, mark);
    ++stats_.collections_triggered;
    ++stats_.signals_coalesced;
    busy_until_ += collection_time_;
    return;
  }
  // Busy and a signal already queued: this one is lost until the next
  // interval collection.
  ++stats_.signals_missed;
}

void SharedNodeTracker::process_started(util::SimTime now, int pid,
                                        long jobid) {
  (void)pid;
  job_procs_.insert(jobid);
  signal(now, "procstart");
}

void SharedNodeTracker::process_ended(util::SimTime now, int pid,
                                      long jobid) {
  (void)pid;
  const auto it = job_procs_.find(jobid);
  if (it != job_procs_.end()) job_procs_.erase(it);
  signal(now, "procstop");
}

std::vector<long> SharedNodeTracker::current_jobs() const {
  std::vector<long> out;
  for (auto it = job_procs_.begin(); it != job_procs_.end();
       it = job_procs_.upper_bound(*it)) {
    out.push_back(*it);
  }
  return out;
}

}  // namespace tacc::core
