#include "core/online.hpp"

namespace tacc::core {

double OnlineAnalyzer::block_sum(const std::vector<collect::Schema>& schemas,
                                 const collect::Record& record,
                                 const std::string& type,
                                 const std::string& key) {
  const collect::Schema* schema = nullptr;
  for (const auto& s : schemas) {
    if (s.type() == type) {
      schema = &s;
      break;
    }
  }
  if (schema == nullptr) return -1.0;
  const auto idx = schema->index_of(key);
  if (!idx) return -1.0;
  double sum = 0.0;
  bool any = false;
  for (const auto& block : record.blocks) {
    if (block.type != type) continue;
    sum += static_cast<double>(block.values[*idx]) *
           schema->entry(*idx).scale;
    any = true;
  }
  return any ? sum : -1.0;
}

void OnlineAnalyzer::on_chunk(const std::string& hostname,
                              const collect::HostLog& chunk) {
  util::MutexLock lock(mu_);
  auto& state = hosts_[hostname];
  if (state.schemas.empty()) state.schemas = chunk.schemas;
  for (const auto& record : chunk.records) {
    ++records_;
    if (!state.last.blocks.empty() && record.time > state.last.time) {
      const double dt = util::to_seconds(record.time - state.last.time);
      auto rate = [&](const char* type, const char* key) {
        const double curr = block_sum(state.schemas, record, type, key);
        const double prev = block_sum(state.schemas, state.last, type, key);
        if (curr < 0.0 || prev < 0.0 || curr < prev) return -1.0;
        return (curr - prev) / dt;
      };
      auto fire = [&](const char* rule, double value) {
        alerts_.push_back({record.time, hostname, record.jobids, rule,
                           value});
      };
      const double mdc = rate("mdc", "reqs");
      if (mdc > thresholds_.mdc_reqs_ps) {
        fire("metadata_storm", mdc);
        for (const long job : record.jobids) suspend_.insert(job);
      }
      const double eth =
          rate("net", "rx_bytes") + rate("net", "tx_bytes");
      if (eth > thresholds_.gige_bytes_ps) fire("gige_traffic", eth);
      // Memory pressure uses the instantaneous gauge, not a rate.
      const double used = block_sum(state.schemas, record, "mem", "MemUsed");
      const double total =
          block_sum(state.schemas, record, "mem", "MemTotal");
      if (used >= 0.0 && total > 0.0 &&
          used / total > thresholds_.mem_fraction) {
        fire("memory_pressure", used / total);
      }
    }
    state.last = record;
  }
}

std::vector<Alert> OnlineAnalyzer::alerts() const {
  util::MutexLock lock(mu_);
  return alerts_;
}

std::set<long> OnlineAnalyzer::suspend_candidates() const {
  util::MutexLock lock(mu_);
  return suspend_;
}

std::size_t OnlineAnalyzer::records_analyzed() const {
  util::MutexLock lock(mu_);
  return records_;
}

}  // namespace tacc::core
