#include "core/autoresponder.hpp"

#include "util/log.hpp"

namespace tacc::core {

AutoResponder::AutoResponder(OnlineAnalyzer& analyzer,
                             LiveScheduler& scheduler,
                             ResponderConfig config, Notifier notifier)
    : analyzer_(&analyzer),
      scheduler_(&scheduler),
      config_(std::move(config)),
      notifier_(std::move(notifier)) {}

std::vector<ResponderAction> AutoResponder::poll() {
  std::vector<ResponderAction> taken;
  const auto alerts = analyzer_->alerts();
  for (std::size_t i = alerts_seen_; i < alerts.size(); ++i) {
    const auto& alert = alerts[i];
    if (!config_.actionable_rules.count(alert.rule)) continue;
    for (const long jobid : alert.jobids) {
      if (handled_.count(jobid)) continue;
      const int strikes = ++strikes_[jobid];
      if (strikes < config_.strikes) continue;
      ResponderAction action;
      action.time = alert.time;
      action.jobid = jobid;
      action.rule = alert.rule;
      action.strikes = strikes;
      action.suspended = scheduler_->suspend(jobid);
      handled_.insert(jobid);
      TS_LOG(Warn, "autoresponder")
          << "job " << jobid << " " << alert.rule << " x" << strikes
          << (action.suspended ? ": suspended" : ": already gone");
      if (notifier_) notifier_(action);
      actions_.push_back(action);
      taken.push_back(action);
    }
  }
  alerts_seen_ = alerts.size();
  return taken;
}

}  // namespace tacc::core
