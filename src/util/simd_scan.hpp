// SIMD newline/whitespace scanning for the raw-log decode hot path.
//
// The raw stats format is line-oriented text: a digit-led timestamp line
// followed by "type device v0 v1 ..." data rows. Parsing it used to walk
// the buffer char-by-char and allocate a std::vector<std::string_view>
// per line (util::split_ws); at archive scale that tokenization is the
// ingest bottleneck. SimdScanner instead classifies the input 64 bytes at
// a time into two bitmasks — whitespace (' ', '\t') and newline ('\n') —
// using AVX2 or SSE2 compares, then walks the masks with ctz to emit
// token spans. Only the 64-byte classify kernel differs between modes;
// every byte of cursor logic is shared, so the emitted line/token spans
// are byte-identical across Scalar/Sse2/Avx2 by construction (and a
// property test asserts it on seeded random inputs).
//
// Mode selection: the widest kernel the CPU supports is picked at runtime
// (ScanMode::Auto); the TACC_SIMD env knob ("scalar", "sse2", "avx2",
// "auto") forces a mode so the fallback paths stay tested on AVX2
// hardware. Forcing a mode the CPU lacks falls back to the widest
// supported one.
//
// Thread-safety: a SimdScanner instance is single-threaded (it is a
// cursor); the mode-detection helpers are safe from any thread.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace tacc::util {

/// Which classify kernel to use. Auto = widest the CPU supports.
enum class ScanMode : std::uint8_t { Auto, Scalar, Sse2, Avx2 };

/// The widest kernel this CPU can run (never Auto).
ScanMode detected_scan_mode() noexcept;

/// Resolves Auto to the detected mode and clamps a forced mode the CPU
/// cannot run down to the widest supported one.
ScanMode resolve_scan_mode(ScanMode requested) noexcept;

/// Reads the TACC_SIMD env knob ("scalar" | "sse2" | "avx2" | "auto",
/// case-sensitive); anything absent or unrecognized is Auto.
///
/// Determinism audit (DT001): allowlisted — the mode changes which
/// classify kernel runs, never the scanned spans (property-tested
/// byte-identical), so seeded results are mode-independent.
ScanMode scan_mode_from_env() noexcept;

/// Human-readable mode name ("scalar", "sse2", "avx2").
std::string_view scan_mode_name(ScanMode mode) noexcept;

/// Delimiter bitmasks for one 64-byte block: bit i set iff byte i is the
/// class. ws covers ' ' and '\t'; nl covers '\n'. Everything else
/// (including '\r') is token content, exactly like util::split_ws +
/// util::split_lines.
struct ScanMasks {
  std::uint64_t ws = 0;
  std::uint64_t nl = 0;
};

/// Classifies one full 64-byte block (must be readable) into masks.
using ScanClassifyFn = void (*)(const char* block, ScanMasks& out) noexcept;

/// The classify kernel for a (resolved) mode. Exposed so tests can
/// compare kernels directly on crafted blocks.
ScanClassifyFn scan_classify_fn(ScanMode mode) noexcept;

/// Forward-only line/token cursor over a text buffer.
///
/// next_line() fills `fields` (cleared first) with the whitespace-split
/// tokens of the next line and returns true; it returns false at end of
/// input. Line boundary semantics match util::split_lines (a trailing
/// '\n' does not produce a final empty line; a final unterminated line
/// does count), and token semantics match util::split_ws (runs of
/// ' '/'\t' merge, empty fields dropped). `fields` is caller-owned and
/// reused so the steady-state scan performs zero heap allocations once
/// its capacity has grown to the widest line.
class SimdScanner {
 public:
  explicit SimdScanner(std::string_view text,
                       ScanMode mode = ScanMode::Auto) noexcept;

  bool next_line(std::vector<std::string_view>& fields);

  /// Byte offsets of the current line (the one the last successful
  /// next_line call scanned) within the text, end-exclusive, '\n' not
  /// included.
  std::size_t line_begin() const noexcept { return line_begin_; }
  std::size_t line_end() const noexcept { return line_end_; }
  /// The current line's raw content.
  std::string_view line() const noexcept {
    return std::string_view(data_ + line_begin_, line_end_ - line_begin_);
  }

  /// The resolved (never Auto) mode this scanner runs with.
  ScanMode mode() const noexcept { return mode_; }

 private:
  /// Loads the classify masks for the 64-byte window containing byte
  /// `pos` (tail windows are classified from a zero-padded copy).
  void load_window(std::size_t pos) noexcept;

  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;         // scan cursor, monotonically forward
  std::size_t line_begin_ = 0;
  std::size_t line_end_ = 0;
  std::size_t window_ = static_cast<std::size_t>(-1);  // loaded window index
  ScanMasks masks_;
  ScanClassifyFn classify_;
  ScanMode mode_;
};

}  // namespace tacc::util
