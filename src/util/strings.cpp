#include "util/strings.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace tacc::util {

std::vector<std::string_view> split(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string_view> split_ws(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
    std::size_t start = i;
    while (i < s.size() && s[i] != ' ' && s[i] != '\t') ++i;
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

std::vector<std::string_view> split_lines(std::string_view s) {
  auto lines = split(s, '\n');
  if (!lines.empty() && lines.back().empty()) lines.pop_back();
  return lines;
}

std::string_view trim(std::string_view s) noexcept {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::optional<std::uint64_t> parse_u64(std::string_view s) noexcept {
  std::uint64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

std::optional<std::int64_t> parse_i64(std::string_view s) noexcept {
  std::int64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

std::optional<double> parse_f64(std::string_view s) noexcept {
  double v = 0.0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) noexcept {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string join(const std::vector<std::string>& items,
                 std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i) out += sep;
    out += items[i];
  }
  return out;
}

std::string format_bytes(double bytes) {
  constexpr const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  int u = 0;
  while (bytes >= 1024.0 && u < 4) {
    bytes /= 1024.0;
    ++u;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f %s", bytes, units[u]);
  return buf;
}

}  // namespace tacc::util
