#include "util/simd_scan.hpp"

#include <bit>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace tacc::util {

namespace {

void classify_scalar(const char* block, ScanMasks& out) noexcept {
  std::uint64_t ws = 0;
  std::uint64_t nl = 0;
  for (int i = 0; i < 64; ++i) {
    const char c = block[i];
    ws |= static_cast<std::uint64_t>(c == ' ' || c == '\t') << i;
    nl |= static_cast<std::uint64_t>(c == '\n') << i;
  }
  out.ws = ws;
  out.nl = nl;
}

#if defined(__x86_64__) || defined(__i386__)

__attribute__((target("sse2"))) void classify_sse2(const char* block,
                                                   ScanMasks& out) noexcept {
  const __m128i sp = _mm_set1_epi8(' ');
  const __m128i tb = _mm_set1_epi8('\t');
  const __m128i lf = _mm_set1_epi8('\n');
  std::uint64_t ws = 0;
  std::uint64_t nl = 0;
  for (int i = 0; i < 4; ++i) {
    const __m128i v = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(block + 16 * i));
    const __m128i is_ws =
        _mm_or_si128(_mm_cmpeq_epi8(v, sp), _mm_cmpeq_epi8(v, tb));
    ws |= static_cast<std::uint64_t>(
              static_cast<std::uint32_t>(_mm_movemask_epi8(is_ws)))
          << (16 * i);
    nl |= static_cast<std::uint64_t>(static_cast<std::uint32_t>(
              _mm_movemask_epi8(_mm_cmpeq_epi8(v, lf))))
          << (16 * i);
  }
  out.ws = ws;
  out.nl = nl;
}

__attribute__((target("avx2"))) void classify_avx2(const char* block,
                                                   ScanMasks& out) noexcept {
  const __m256i sp = _mm256_set1_epi8(' ');
  const __m256i tb = _mm256_set1_epi8('\t');
  const __m256i lf = _mm256_set1_epi8('\n');
  std::uint64_t ws = 0;
  std::uint64_t nl = 0;
  for (int i = 0; i < 2; ++i) {
    const __m256i v = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(block + 32 * i));
    const __m256i is_ws =
        _mm256_or_si256(_mm256_cmpeq_epi8(v, sp), _mm256_cmpeq_epi8(v, tb));
    ws |= static_cast<std::uint64_t>(static_cast<std::uint32_t>(
              _mm256_movemask_epi8(is_ws)))
          << (32 * i);
    nl |= static_cast<std::uint64_t>(static_cast<std::uint32_t>(
              _mm256_movemask_epi8(_mm256_cmpeq_epi8(v, lf))))
          << (32 * i);
  }
  out.ws = ws;
  out.nl = nl;
}

#endif  // x86

/// Capability rank for clamping forced modes (Auto handled separately).
int mode_rank(ScanMode m) noexcept {
  switch (m) {
    case ScanMode::Avx2:
      return 2;
    case ScanMode::Sse2:
      return 1;
    default:
      return 0;
  }
}

ScanMode detect() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  if (__builtin_cpu_supports("avx2")) return ScanMode::Avx2;
  // Guaranteed on x86_64, but __i386__ also lands here and pre-SSE2 CPUs
  // exist there — check rather than assume.
  if (__builtin_cpu_supports("sse2")) return ScanMode::Sse2;
#endif
  return ScanMode::Scalar;
}

}  // namespace

ScanMode detected_scan_mode() noexcept {
  static const ScanMode mode = detect();
  return mode;
}

ScanMode resolve_scan_mode(ScanMode requested) noexcept {
  const ScanMode best = detected_scan_mode();
  if (requested == ScanMode::Auto) return best;
  return mode_rank(requested) <= mode_rank(best) ? requested : best;
}

ScanMode scan_mode_from_env() noexcept {
  const char* env = std::getenv("TACC_SIMD");
  if (env == nullptr) return ScanMode::Auto;
  const std::string_view v = env;
  if (v == "scalar") return ScanMode::Scalar;
  if (v == "sse2") return ScanMode::Sse2;
  if (v == "avx2") return ScanMode::Avx2;
  return ScanMode::Auto;
}

std::string_view scan_mode_name(ScanMode mode) noexcept {
  switch (mode) {
    case ScanMode::Scalar:
      return "scalar";
    case ScanMode::Sse2:
      return "sse2";
    case ScanMode::Avx2:
      return "avx2";
    default:
      return "auto";
  }
}

ScanClassifyFn scan_classify_fn(ScanMode mode) noexcept {
  switch (resolve_scan_mode(mode)) {
#if defined(__x86_64__) || defined(__i386__)
    case ScanMode::Avx2:
      return &classify_avx2;
    case ScanMode::Sse2:
      return &classify_sse2;
#endif
    default:
      return &classify_scalar;
  }
}

SimdScanner::SimdScanner(std::string_view text, ScanMode mode) noexcept
    : data_(text.data()),
      size_(text.size()),
      mode_(resolve_scan_mode(mode == ScanMode::Auto ? scan_mode_from_env()
                                                     : mode)) {
  classify_ = scan_classify_fn(mode_);
}

void SimdScanner::load_window(std::size_t pos) noexcept {
  const std::size_t w = pos >> 6;
  if (w == window_) return;
  window_ = w;
  const std::size_t base = w << 6;
  if (base + 64 <= size_) {
    classify_(data_ + base, masks_);
  } else {
    // Tail window: classify a zero-padded copy. Padding bytes are NUL, so
    // they contribute no delimiter bits; the cursor never reads content
    // past size_.
    char buf[64] = {0};
    std::memcpy(buf, data_ + base, size_ - base);
    classify_(buf, masks_);
  }
}

bool SimdScanner::next_line(std::vector<std::string_view>& fields) {
  fields.clear();
  if (pos_ >= size_) return false;
  line_begin_ = pos_;
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::size_t tok_start = kNone;
  std::size_t i = pos_;
  while (i < size_) {
    load_window(i);
    const std::size_t base = i & ~static_cast<std::size_t>(63);
    std::size_t rel = i - base;
    const std::uint64_t ws = masks_.ws;
    const std::uint64_t nl = masks_.nl;
    while (rel < 64) {
      const std::uint64_t live = ~std::uint64_t{0} << rel;
      if (tok_start == kNone) {
        // Between tokens: the next non-ws bit is a token start, a
        // newline, or (in the tail window) zero padding = end of input.
        const std::uint64_t stop = ~ws & live;
        if (stop == 0) break;
        rel = static_cast<std::size_t>(std::countr_zero(stop));
        if (base + rel >= size_) {
          i = size_;
          goto eof;
        }
        if ((nl >> rel) & 1) {
          line_end_ = base + rel;
          pos_ = line_end_ + 1;
          return true;
        }
        tok_start = base + rel;
      } else {
        // Inside a token: it ends at the next ws or nl bit. Padding bits
        // are zero, so an unterminated final token runs to end-of-input
        // via the eof path below.
        const std::uint64_t delim = (ws | nl) & live;
        if (delim == 0) break;
        rel = static_cast<std::size_t>(std::countr_zero(delim));
        fields.push_back(
            std::string_view(data_ + tok_start, base + rel - tok_start));
        tok_start = kNone;
      }
    }
    i = base + 64;
  }
eof:
  if (tok_start != kNone) {
    fields.push_back(std::string_view(data_ + tok_start, size_ - tok_start));
  }
  line_end_ = size_;
  pos_ = size_;
  return true;
}

}  // namespace tacc::util
