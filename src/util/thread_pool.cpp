#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>

namespace tacc::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!stop_ && queue_.empty()) cv_.wait(mu_);
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  // Local mutex guarding a local: the analysis cannot name it, so a plain
  // std::mutex is fine here (allowlisted in tools/lint).
  std::mutex err_mu;
  const std::size_t shards = std::min(n, workers_.size());
  std::vector<std::future<void>> futs;
  futs.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    futs.push_back(submit([&] {
      for (std::size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
        try {
          fn(i);
        } catch (...) {
          std::lock_guard lock(err_mu);
          if (!first_error) first_error = std::current_exception();
        }
      }
    }));
  }
  for (auto& f : futs) f.get();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace tacc::util
