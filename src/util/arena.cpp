#include "util/arena.hpp"

namespace tacc::util {

void* Arena::allocate(std::size_t bytes, std::size_t align) {
  const std::size_t mask = align - 1;
  auto aligned = reinterpret_cast<std::uintptr_t>(top_);
  aligned = (aligned + mask) & ~static_cast<std::uintptr_t>(mask);
  std::byte* p = reinterpret_cast<std::byte*>(aligned);
  if (top_ == nullptr || p > end_ ||
      bytes > static_cast<std::size_t>(end_ - p)) {
    // A fresh chunk is max-aligned, so no re-alignment is needed; reserve
    // `align` slack anyway in case a future chunk source is weaker.
    p = refill(bytes + align);
    aligned = reinterpret_cast<std::uintptr_t>(p);
    aligned = (aligned + mask) & ~static_cast<std::uintptr_t>(mask);
    p = reinterpret_cast<std::byte*>(aligned);
  }
  top_ = p + bytes;
  stats_.bytes_used += bytes;
  if (stats_.bytes_used > stats_.high_water) {
    stats_.high_water = stats_.bytes_used;
  }
  return p;
}

std::byte* Arena::refill(std::size_t bytes) {
  // Reuse an already-owned slab when it is big enough; skip (and leave
  // rewound) any that are too small for this oversized request.
  while (next_ < chunks_.size()) {
    Chunk& c = chunks_[next_++];
    if (c.size >= bytes) {
      top_ = c.data.get();
      end_ = top_ + c.size;
      return top_;
    }
  }
  const std::size_t size = bytes > chunk_bytes_ ? bytes : chunk_bytes_;
  chunks_.push_back(Chunk{std::make_unique<std::byte[]>(size), size});
  ++next_;
  ++stats_.chunk_allocs;
  ++stats_.chunks;
  stats_.bytes_reserved += size;
  top_ = chunks_.back().data.get();
  end_ = top_ + size;
  return top_;
}

void Arena::reset() noexcept {
  next_ = 0;
  top_ = nullptr;
  end_ = nullptr;
  stats_.bytes_used = 0;
}

}  // namespace tacc::util
