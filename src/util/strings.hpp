// String parsing helpers shared by the procfs renderers and the collector
// parsers. The collectors read text exactly as the C tool reads
// /proc//sys files, so fast line/field splitting matters.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace tacc::util {

/// Splits on a single character; does not merge adjacent delimiters
/// (empty fields preserved).
std::vector<std::string_view> split(std::string_view s, char delim);

/// Splits on runs of whitespace (spaces/tabs); empty fields dropped.
/// This matches how /proc text columns are parsed.
std::vector<std::string_view> split_ws(std::string_view s);

/// Splits into lines, dropping a trailing empty line.
std::vector<std::string_view> split_lines(std::string_view s);

/// Trims ASCII whitespace from both ends.
std::string_view trim(std::string_view s) noexcept;

/// Parses an unsigned 64-bit decimal; nullopt on any non-digit content.
std::optional<std::uint64_t> parse_u64(std::string_view s) noexcept;

/// Parses a signed 64-bit decimal.
std::optional<std::int64_t> parse_i64(std::string_view s) noexcept;

/// Parses a double; nullopt on failure.
std::optional<double> parse_f64(std::string_view s) noexcept;

bool starts_with(std::string_view s, std::string_view prefix) noexcept;
bool ends_with(std::string_view s, std::string_view suffix) noexcept;

/// Joins items with a separator.
std::string join(const std::vector<std::string>& items,
                 std::string_view sep);

/// Human-readable byte rate like "1.25 GB/s".
std::string format_bytes(double bytes);

}  // namespace tacc::util
