// Statistics helpers used by the analysis pipeline, the portal histogram
// views, and the benchmark harnesses (e.g. the CPU_Usage / Lustre-metric
// correlations of paper section V-B).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace tacc::util {

/// Numerically stable single-pass accumulator (Welford) for mean/variance
/// plus min/max tracking. Suitable for streaming use in the online
/// analyzer.
class RunningStat {
 public:
  void add(double x) noexcept;
  /// Merges another accumulator (parallel reduction support).
  void merge(const RunningStat& other) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double sum() const noexcept { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Pearson correlation coefficient of two equal-length samples.
/// Returns 0 when either sample has zero variance or fewer than 2 points.
double pearson(std::span<const double> x, std::span<const double> y) noexcept;

/// Arithmetic mean; 0 for an empty span.
double mean(std::span<const double> xs) noexcept;

/// Sample standard deviation; 0 for fewer than 2 points.
double stddev(std::span<const double> xs) noexcept;

/// Linear-interpolated percentile, p in [0, 100]. Sorts a copy.
/// Returns 0 for an empty span.
double percentile(std::span<const double> xs, double p);

/// Fixed-bin histogram over [lo, hi); values outside the range land in the
/// first/last bin (clamping, like the portal's auto histograms).
class Histogram {
 public:
  /// Requires bins >= 1 and hi > lo.
  Histogram(double lo, double hi, std::size_t bins);

  /// Convenience: builds a histogram spanning [min, max] of the data with
  /// `bins` bins (empty data yields the [0,1) range).
  static Histogram of(std::span<const double> xs, std::size_t bins);

  void add(double x) noexcept;
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const noexcept { return counts_.size(); }
  std::size_t total() const noexcept { return total_; }
  double bin_lo(std::size_t i) const noexcept;
  double bin_hi(std::size_t i) const noexcept;
  double lo() const noexcept { return lo_; }
  double hi() const noexcept { return hi_; }

  /// Renders an ASCII bar chart, one row per bin, like the portal's Fig. 4
  /// histograms. `width` is the maximum bar length in characters.
  std::string render(std::string_view title, std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace tacc::util
