#include "util/clock.hpp"

#include <cstdio>

namespace tacc::util {
namespace {

constexpr bool is_leap(int y) noexcept {
  return (y % 4 == 0 && y % 100 != 0) || y % 400 == 0;
}

constexpr int days_in_month(int y, int m) noexcept {
  constexpr int d[12] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  return m == 2 && is_leap(y) ? 29 : d[m - 1];
}

// Days since 1970-01-01 for a UTC date.
std::int64_t days_from_epoch(int year, int month, int day) noexcept {
  std::int64_t days = 0;
  for (int y = 1970; y < year; ++y) days += is_leap(y) ? 366 : 365;
  for (int m = 1; m < month; ++m) days += days_in_month(year, m);
  return days + (day - 1);
}

}  // namespace

SimTime make_time(int year, int month, int day, int hour, int minute,
                  int second) noexcept {
  const std::int64_t secs = days_from_epoch(year, month, day) * 86400 +
                            hour * 3600 + minute * 60 + second;
  return secs * kSecond;
}

std::string format_time(SimTime t) {
  std::int64_t secs = t / kSecond;
  const int sec = static_cast<int>(secs % 60);
  secs /= 60;
  const int min = static_cast<int>(secs % 60);
  secs /= 60;
  const int hour = static_cast<int>(secs % 24);
  std::int64_t days = secs / 24;

  int year = 1970;
  while (true) {
    const int in_year = is_leap(year) ? 366 : 365;
    if (days < in_year) break;
    days -= in_year;
    ++year;
  }
  int month = 1;
  while (days >= days_in_month(year, month)) {
    days -= days_in_month(year, month);
    ++month;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%04d-%02d-%02d %02d:%02d:%02d", year, month,
                static_cast<int>(days) + 1, hour, min, sec);
  return buf;
}

std::string format_duration(SimTime dt) {
  char buf[48];
  if (dt < kSecond) {
    std::snprintf(buf, sizeof buf, "%lldms",
                  static_cast<long long>(dt / kMillisecond));
  } else if (dt < kMinute) {
    std::snprintf(buf, sizeof buf, "%.1fs", to_seconds(dt));
  } else if (dt < kHour) {
    std::snprintf(buf, sizeof buf, "%lldm %02llds",
                  static_cast<long long>(dt / kMinute),
                  static_cast<long long>((dt % kMinute) / kSecond));
  } else {
    std::snprintf(buf, sizeof buf, "%lldh %02lldm %02llds",
                  static_cast<long long>(dt / kHour),
                  static_cast<long long>((dt % kHour) / kMinute),
                  static_cast<long long>((dt % kMinute) / kSecond));
  }
  return buf;
}

}  // namespace tacc::util
