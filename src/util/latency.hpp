// Fixed-bucket latency histogram for serving-path observability
// (portal::QueryEngine's p50/p99 counters). Unlike util::Histogram — a
// data-dependent, single-threaded analysis helper — this one has a fixed
// power-of-two bucket layout known at compile time and lock-free atomic
// counters, so concurrent workers can record() with no coordination and a
// stats reader can take a consistent-enough snapshot while they do.
//
// Bucket i counts samples in [2^i, 2^(i+1)) nanoseconds (bucket 0 also
// absorbs 0 ns; the last bucket absorbs everything above ~2^62 ns).
// Percentiles are therefore resolved to the bucket upper bound — at most
// one octave of overestimate, which is the right trade for monitoring
// counters: cheap, bounded error, no allocation on the hot path.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

namespace tacc::util {

class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 63;

  LatencyHistogram() noexcept = default;

  /// Records one sample. Thread-safe, lock-free, wait-free.
  void record(std::uint64_t ns) noexcept {
    buckets_[bucket_of(ns)].fetch_add(1, std::memory_order_relaxed);
  }

  /// Total recorded samples. Thread-safe.
  std::uint64_t count() const noexcept;

  /// The upper bound (exclusive) of the bucket containing the p-th
  /// percentile sample, in nanoseconds; 0 when empty. p is clamped to
  /// [0, 100]. Thread-safe; concurrent record() calls may or may not be
  /// included (each bucket is read atomically).
  std::uint64_t percentile_ns(double p) const noexcept;

  /// One bucket's count (i < kBuckets). Thread-safe.
  std::uint64_t bucket_count(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// [lo, hi) bounds of bucket i in nanoseconds.
  static std::uint64_t bucket_lo(std::size_t i) noexcept {
    return i == 0 ? 0 : std::uint64_t{1} << i;
  }
  static std::uint64_t bucket_hi(std::size_t i) noexcept {
    return std::uint64_t{1} << (i + 1);
  }

  /// Bucket index for a sample: floor(log2(ns)), clamped to the layout.
  static std::size_t bucket_of(std::uint64_t ns) noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

}  // namespace tacc::util
