// Low-level durable-file helpers for the TSDB persistence layer: CRC32C
// checksums, read-only memory mappings, a buffered append writer with
// explicit sync points, and atomic tmp+rename replacement.
//
// Everything here is deliberately policy-free: callers (tsdb::BlockFile,
// tsdb::Wal, the Store manifest) decide what to checksum, when to sync,
// and what a torn file means. The only invariant these helpers provide is
// the POSIX one the recovery design leans on: a rename() over an existing
// name is atomic, so a reader never observes a half-replaced manifest.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace tacc::util {

/// CRC32C (Castagnoli, reflected 0x82F63B78) over `size` bytes. `seed`
/// chains partial computations: crc32c(b, crc32c(a)) == crc32c(a+b).
/// This is the checksum every on-disk frame in the TSDB format carries.
std::uint32_t crc32c(const void* data, std::size_t size,
                     std::uint32_t seed = 0) noexcept;
inline std::uint32_t crc32c(std::span<const std::uint8_t> bytes,
                            std::uint32_t seed = 0) noexcept {
  return crc32c(bytes.data(), bytes.size(), seed);
}

/// A read-only, shared memory mapping of one file. Sealed blocks loaded
/// from a segment hold spans into the mapping plus a shared_ptr to it, so
/// the mapping lives exactly as long as any block (or query snapshot)
/// still references it — including after the file is unlinked by
/// compaction, which POSIX allows for mapped files.
class MmapFile {
 public:
  /// Maps `path` read-only. Throws std::runtime_error on open/map failure.
  /// An empty file maps to an empty span (no mapping is created).
  static std::shared_ptr<const MmapFile> map(const std::string& path);

  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;
  ~MmapFile();

  std::span<const std::uint8_t> bytes() const noexcept {
    return {static_cast<const std::uint8_t*>(addr_), size_};
  }
  std::size_t size() const noexcept { return size_; }
  const std::string& path() const noexcept { return path_; }

 private:
  MmapFile() = default;

  void* addr_ = nullptr;
  std::size_t size_ = 0;
  std::string path_;
};

/// Buffered append-only file writer with explicit sync points. Not
/// thread-safe; the owning structure (a WAL writer, a segment write) holds
/// its own lock. The destructor closes without flushing the user-space
/// buffer only if close() was never called — callers that care about the
/// tail must call flush()/sync()/close() explicitly, which is exactly the
/// property the torn-write fault injection exercises.
class FileWriter {
 public:
  /// Opens `path` for appending; `truncate` starts the file empty.
  /// Throws std::runtime_error on failure.
  explicit FileWriter(const std::string& path, bool truncate = true);
  FileWriter(const FileWriter&) = delete;
  FileWriter& operator=(const FileWriter&) = delete;
  ~FileWriter();

  void append(std::span<const std::uint8_t> bytes);
  void append_raw(const void* data, std::size_t size);

  /// Bytes appended so far (buffered + written).
  std::size_t offset() const noexcept { return offset_; }

  /// Pushes the user-space buffer to the kernel. Throws on write failure.
  void flush();
  /// flush() + fdatasync(): bytes are durable on return. Throws on failure.
  void sync();
  /// flush() + close(). Idempotent.
  void close();

 private:
  int fd_ = -1;
  std::size_t offset_ = 0;
  std::vector<std::uint8_t> buf_;
};

/// Renames `tmp_path` over `final_path` (atomic under POSIX) and fsyncs
/// the containing directory so the new directory entry is durable.
/// Throws std::runtime_error on failure.
void atomic_replace(const std::string& tmp_path, const std::string& final_path);

/// fsync() on a directory, making recent renames/unlinks in it durable.
void fsync_dir(const std::string& dir);

/// Reads a whole file into memory. Throws std::runtime_error on failure.
std::vector<std::uint8_t> read_file(const std::string& path);

}  // namespace tacc::util
