// Bounded single-producer / single-consumer ring queue wiring the ingest
// pipeline stages (read -> parse/build -> tsdb put), so tokenization and
// batch building overlap store insertion instead of alternating with it.
//
// Lock-free: head_ and tail_ are the only shared state, each written by
// exactly one side (tail_ by the producer, head_ by the consumer) and
// read with acquire/release ordering, so TSan-clean without a mutex. The
// repo linter's TS001 allowlist records the three atomics with reasons.
//
// Blocking behavior: push() spins briefly then yields while full; pop()
// likewise while empty, returning false once the queue is closed AND
// drained. FIFO order is exact, which is what keeps staged ingest
// deterministic: the consumer applies batches in precisely the order the
// producer emitted them, so 0 stage threads (inline) and 1+ stage
// threads produce byte-identical stores.
//
// Strictly one producer thread and one consumer thread; close() belongs
// to the producer side.
#pragma once

#include <atomic>
#include <cstddef>
#include <thread>
#include <utility>
#include <vector>

namespace tacc::util {

template <typename T>
class RingQueue {
 public:
  /// Capacity is rounded up to a power of two (minimum 2).
  explicit RingQueue(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  RingQueue(const RingQueue&) = delete;
  RingQueue& operator=(const RingQueue&) = delete;

  std::size_t capacity() const noexcept { return slots_.size(); }

  /// Producer: enqueues if there is room. Returns false when full.
  bool try_push(T&& item) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_.load(std::memory_order_acquire) >= slots_.size()) {
      return false;
    }
    slots_[tail & mask_] = std::move(item);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Producer: blocks (spin, then yield) until the item is enqueued.
  void push(T&& item) {
    int spins = 0;
    while (!try_push(std::move(item))) {
      if (++spins < 64) {
        // brief busy spin: the consumer is usually mid-batch
      } else {
        std::this_thread::yield();
      }
    }
  }

  /// Consumer: dequeues if an item is ready. Returns false when empty.
  bool try_pop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_.load(std::memory_order_acquire)) return false;
    out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer: blocks until an item arrives; returns false only when the
  /// queue has been closed and fully drained.
  bool pop(T& out) {
    int spins = 0;
    while (true) {
      if (try_pop(out)) return true;
      if (closed_.load(std::memory_order_acquire)) {
        // close() happens-after the producer's final push, so one more
        // try_pop after observing closed is authoritative: success is the
        // final item, failure means drained-for-good.
        return try_pop(out);
      }
      if (++spins < 64) {
        // spin
      } else {
        std::this_thread::yield();
      }
    }
  }

  /// Producer: no more pushes will follow. Idempotent.
  void close() noexcept { closed_.store(true, std::memory_order_release); }

  bool closed() const noexcept {
    return closed_.load(std::memory_order_acquire);
  }

  /// Instantaneous depth (racy by nature; for metrics only).
  std::size_t depth() const noexcept {
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    const std::size_t head = head_.load(std::memory_order_acquire);
    return tail - head;
  }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  std::atomic<std::size_t> head_{0};
  std::atomic<std::size_t> tail_{0};
  std::atomic<bool> closed_{false};
};

}  // namespace tacc::util
