// Deterministic pseudo-random number generation for the cluster simulator.
//
// Every stochastic component (workload generator, scheduler jitter, staging
// times, counter noise) derives its stream from a named seed so that whole
// experiments are reproducible bit-for-bit across runs and platforms. The
// generator is xoshiro256**, which is small, fast and high quality; we do
// not use std::mt19937 because its distribution implementations are not
// portable across standard libraries.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace tacc::util {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference
/// implementation re-expressed in C++). Satisfies
/// std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds from a 64-bit value via splitmix64 so that nearby seeds give
  /// unrelated streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Seeds from a component name plus a numeric salt (e.g. node index).
  /// Deterministic: FNV-1a over the name, mixed with the salt.
  Rng(std::string_view name, std::uint64_t salt) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;
  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;
  /// Standard normal via Box-Muller (no cached spare: keeps state minimal).
  double normal() noexcept;
  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;
  /// Log-normal such that the *median* of the distribution is `median` and
  /// sigma is the shape parameter of the underlying normal.
  double lognormal_median(double median, double sigma) noexcept;
  /// Exponential with the given mean (= 1/lambda).
  double exponential(double mean) noexcept;
  /// Pareto (heavy tail) with minimum xm > 0 and shape alpha > 0.
  double pareto(double xm, double alpha) noexcept;
  /// True with probability p (clamped to [0, 1]).
  bool bernoulli(double p) noexcept;
  /// Index in [0, weights.size()) drawn proportionally to `weights`.
  /// Requires a non-empty vector with a positive sum.
  std::size_t weighted_index(const std::vector<double>& weights) noexcept;

  /// Derives an independent child stream; children of distinct salts are
  /// statistically independent of each other and of the parent.
  Rng split(std::uint64_t salt) noexcept;

 private:
  std::uint64_t s_[4];
};

/// splitmix64 step; exposed because seeding helpers elsewhere reuse it.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// FNV-1a 64-bit hash of a string (used for name-based seeding).
std::uint64_t fnv1a(std::string_view s) noexcept;

}  // namespace tacc::util
