#include "util/latency.hpp"

#include <bit>

namespace tacc::util {

std::size_t LatencyHistogram::bucket_of(std::uint64_t ns) noexcept {
  if (ns < 2) return 0;
  const auto log2 = static_cast<std::size_t>(std::bit_width(ns) - 1);
  return log2 < kBuckets ? log2 : kBuckets - 1;
}

std::uint64_t LatencyHistogram::count() const noexcept {
  std::uint64_t n = 0;
  for (const auto& b : buckets_) n += b.load(std::memory_order_relaxed);
  return n;
}

std::uint64_t LatencyHistogram::percentile_ns(double p) const noexcept {
  std::array<std::uint64_t, kBuckets> snap;
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    snap[i] = buckets_[i].load(std::memory_order_relaxed);
    total += snap[i];
  }
  if (total == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 100.0) p = 100.0;
  // The 1-based rank of the percentile sample (nearest-rank definition):
  // ceil(p/100 * total), at least 1.
  const double exact = p / 100.0 * static_cast<double>(total);
  auto rank = static_cast<std::uint64_t>(exact);
  if (static_cast<double>(rank) < exact) ++rank;
  if (rank == 0) rank = 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += snap[i];
    if (snap[i] != 0 && seen >= rank) return bucket_hi(i);
  }
  return 0;  // unreachable: rank <= total
}

}  // namespace tacc::util
