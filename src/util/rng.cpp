#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace tacc::util {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t fnv1a(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Rng::Rng(std::string_view name, std::uint64_t salt) noexcept
    : Rng(fnv1a(name) ^ (salt * 0x9e3779b97f4a7c15ULL + 0x165667b19e3779f9ULL)) {}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
  // Rejection-free Lemire reduction; bias is negligible for span << 2^64
  // but we keep the multiply-shift which is exact enough for simulation.
  const unsigned __int128 m =
      static_cast<unsigned __int128>((*this)()) * span;
  return lo + static_cast<std::int64_t>(m >> 64);
}

double Rng::normal() noexcept {
  // Box-Muller; u1 must be > 0.
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::lognormal_median(double median, double sigma) noexcept {
  return median * std::exp(sigma * normal());
}

double Rng::exponential(double mean) noexcept {
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -mean * std::log(u);
}

double Rng::pareto(double xm, double alpha) noexcept {
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return xm / std::pow(u, 1.0 / alpha);
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += w > 0.0 ? w : 0.0;
  if (total <= 0.0) return 0;
  double x = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (x < w) return i;
    x -= w;
  }
  return weights.size() - 1;
}

Rng Rng::split(std::uint64_t salt) noexcept {
  return Rng((*this)() ^ (salt * 0xd1342543de82ef95ULL + 1));
}

}  // namespace tacc::util
