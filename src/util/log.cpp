#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <string>

#include "util/thread_annotations.hpp"

namespace tacc::util {
namespace {

std::atomic<LogLevel> g_level{LogLevel::Warn};
// Serializes whole lines onto stderr (the "capability" is the stream
// itself, which the analysis cannot name, so nothing is GUARDED_BY it).
Mutex g_mu;

constexpr const char* level_name(LogLevel l) noexcept {
  switch (l) {
    case LogLevel::Debug:
      return "DEBUG";
    case LogLevel::Info:
      return "INFO ";
    case LogLevel::Warn:
      return "WARN ";
    case LogLevel::Error:
      return "ERROR";
    case LogLevel::Off:
      return "OFF  ";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

void log_line(LogLevel level, std::string_view tag, std::string_view msg) {
  if (level < g_level.load() || level == LogLevel::Off) return;
  MutexLock lock(g_mu);
  std::fprintf(stderr, "%s [%.*s] %.*s\n", level_name(level),
               static_cast<int>(tag.size()), tag.data(),
               static_cast<int>(msg.size()), msg.data());
}

}  // namespace tacc::util
