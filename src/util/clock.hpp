// Simulated time for the cluster and wall-clock timing for overhead
// measurement.
//
// All simulator timestamps are SimTime: microseconds since the Unix epoch,
// as a signed 64-bit integer. The paper's experiments span Q4 2015 through
// January 2016, so helpers for building calendar timestamps in that era are
// provided.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace tacc::util {

/// Microseconds since the Unix epoch.
using SimTime = std::int64_t;

inline constexpr SimTime kMicrosecond = 1;
inline constexpr SimTime kMillisecond = 1000;
inline constexpr SimTime kSecond = 1000 * kMillisecond;
inline constexpr SimTime kMinute = 60 * kSecond;
inline constexpr SimTime kHour = 60 * kMinute;
inline constexpr SimTime kDay = 24 * kHour;

/// Converts seconds (possibly fractional) to SimTime.
constexpr SimTime from_seconds(double s) noexcept {
  return static_cast<SimTime>(s * static_cast<double>(kSecond));
}

/// Converts SimTime to fractional seconds.
constexpr double to_seconds(SimTime t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

/// Builds a SimTime from a UTC calendar date. Valid for years 1970-2099.
SimTime make_time(int year, int month, int day, int hour = 0, int minute = 0,
                  int second = 0) noexcept;

/// Renders "YYYY-MM-DD HH:MM:SS" in UTC.
std::string format_time(SimTime t);

/// Renders a duration like "2h 13m 05s" or "850ms".
std::string format_duration(SimTime dt);

/// Monotonic wall-clock stopwatch used to measure real collection overhead
/// (the paper reports ~0.09 s per collection, 0.02% overhead at 10-minute
/// sampling).
///
/// Determinism audit (DT001): allowlisted in
/// tools/analysis/determinism_allowlist.txt — readings are reported as
/// latency/benchmark numbers only and never key results or feed the
/// seeded simulation.
class WallTimer {
 public:
  WallTimer() noexcept : start_(std::chrono::steady_clock::now()) {}
  void reset() noexcept { start_ = std::chrono::steady_clock::now(); }
  /// Elapsed wall time in seconds.
  double elapsed_s() const noexcept {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  /// Elapsed wall time in integer nanoseconds (for accumulating counters).
  std::int64_t elapsed_ns() const noexcept {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace tacc::util
