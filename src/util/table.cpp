#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace tacc::util {

void TextTable::header(std::vector<std::string> cells) {
  header_ = std::move(cells);
}

void TextTable::row(std::vector<std::string> cells) {
  if (!header_.empty()) {
    cells.resize(header_.size());
  }
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int prec) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.*g", prec, v);
  return buf;
}

std::string TextTable::render() const {
  const std::size_t ncols =
      header_.empty()
          ? (rows_.empty() ? 0 : rows_.front().size())
          : header_.size();
  std::vector<std::size_t> widths(ncols, 0);
  auto widen = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < std::min(ncols, r.size()); ++c) {
      widths[c] = std::max(widths[c], r[c].size());
    }
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < ncols; ++c) {
      const std::string& cell = c < r.size() ? r[c] : std::string{};
      os << cell << std::string(widths[c] - cell.size(), ' ');
      if (c + 1 < ncols) os << "  ";
    }
    os << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < ncols; ++c) total += widths[c] + 2;
    os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  }
  for (const auto& r : rows_) emit(r);
  return os.str();
}

}  // namespace tacc::util
