// A small fixed-size thread pool used to parallelize per-node work:
// driving the workload engine, running collectors across the simulated
// cluster, and bulk ingest into the database and time-series stores.
//
// Thread-safety contract (statically checked under -DTACC_THREAD_SAFETY=ON;
// see src/util/thread_annotations.hpp and docs/STATIC_ANALYSIS.md):
//   * submit() and parallel_for() are safe to call concurrently from any
//     thread, including from inside a task already running on the pool
//     (submit only; see below).
//   * parallel_for() blocks the calling thread until every index is done;
//     do NOT call it from a task running on this same pool — the caller
//     would occupy a worker slot while waiting, which can deadlock a
//     fully-loaded pool.
//   * size() is safe from any thread. Destruction is not: join all users
//     before the pool goes out of scope (the destructor drains the queue
//     and joins the workers).
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "util/thread_annotations.hpp"

namespace tacc::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task; the returned future resolves with its result.
  template <typename F>
  std::future<std::invoke_result_t<F>> submit(F&& f) TACC_EXCLUDES(mu_) {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      MutexLock lock(mu_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  /// Exceptions from tasks propagate out of parallel_for (first one wins).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop() TACC_EXCLUDES(mu_);

  Mutex mu_;
  CondVar cv_;
  std::deque<std::function<void()>> queue_ TACC_GUARDED_BY(mu_);
  std::vector<std::thread> workers_;
  bool stop_ TACC_GUARDED_BY(mu_) = false;
};

}  // namespace tacc::util
