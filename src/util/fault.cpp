#include "util/fault.hpp"

#include "util/rng.hpp"

namespace tacc::util {

void ResilienceStats::merge(const ResilienceStats& other) noexcept {
  injected_drops += other.injected_drops;
  injected_duplicates += other.injected_duplicates;
  injected_delays += other.injected_delays;
  injected_errors += other.injected_errors;
  retries += other.retries;
  spooled += other.spooled;
  replayed += other.replayed;
  spool_dropped += other.spool_dropped;
  dead_lettered += other.dead_lettered;
  requeued += other.requeued;
  deduped += other.deduped;
  paused_windows += other.paused_windows;
  resumed_windows += other.resumed_windows;
}

void FaultPlan::set(std::string_view site, FaultSpec spec) {
  sites_.insert_or_assign(std::string(site), std::move(spec));
}

const FaultSpec* FaultPlan::spec(std::string_view site) const noexcept {
  const auto it = sites_.find(site);
  return it == sites_.end() ? nullptr : &it->second;
}

std::vector<std::string> FaultPlan::sites() const {
  std::vector<std::string> out;
  out.reserve(sites_.size());
  for (const auto& [site, spec] : sites_) out.push_back(site);
  return out;
}

std::uint64_t FaultPlan::salt(std::uint64_t a, std::uint64_t b) noexcept {
  // One splitmix step over the pair so (a=1,b=0) and (a=0,b=1) diverge.
  std::uint64_t state = a * 0x9e3779b97f4a7c15ULL + b;
  return splitmix64(state);
}

namespace {

/// Mixes the decision coordinates into one splitmix64 state.
std::uint64_t mix_state(std::uint64_t seed, std::string_view site,
                        std::string_view key, std::uint64_t salt) noexcept {
  std::uint64_t state = seed;
  state ^= fnv1a(site) * 0x9e3779b97f4a7c15ULL;
  state ^= fnv1a(key) + 0x632be59bd9b4e019ULL + (state << 6) + (state >> 2);
  state ^= salt * 0xbf58476d1ce4e5b9ULL;
  return state;
}

/// Uniform [0, 1) draw advancing the local state.
double draw(std::uint64_t& state) noexcept {
  return static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
}

}  // namespace

FaultDecision FaultPlan::decide(std::string_view site, std::string_view key,
                                std::uint64_t salt,
                                SimTime now) const noexcept {
  const FaultSpec* s = spec(site);
  if (s == nullptr) return {};
  FaultDecision d;
  for (const auto& [start, end] : s->outages) {
    if (now >= start && now < end) {
      d.error = true;
      break;
    }
  }
  std::uint64_t state = mix_state(seed_, site, key, salt);
  // Fixed draw order per kind, so one kind's rate never shifts another's
  // stream within the same decision.
  if (draw(state) < s->error_rate) d.error = true;
  if (draw(state) < s->drop_rate) d.drop = true;
  if (draw(state) < s->duplicate_rate) d.duplicate = true;
  const double delay_hit = draw(state);
  const double delay_frac = draw(state);
  if (delay_hit < s->delay_rate) {
    d.delay = s->delay_min;
    if (s->delay_max > s->delay_min) {
      d.delay += static_cast<SimTime>(
          delay_frac * static_cast<double>(s->delay_max - s->delay_min));
    }
  }
  return d;
}

double FaultPlan::uniform(std::string_view site, std::string_view key,
                          std::uint64_t salt) const noexcept {
  std::uint64_t state = mix_state(seed_, site, key, ~salt);
  return draw(state);
}

}  // namespace tacc::util
