// ASCII table rendering used by the benchmark harnesses to print
// paper-shaped tables (Table I metric listings, section V population
// statistics, EXPERIMENTS.md paper-vs-measured rows).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace tacc::util {

/// Column-aligned text table. Add a header row, then data rows; render()
/// pads every column to its widest cell.
class TextTable {
 public:
  /// Sets the header row (also fixes the column count).
  void header(std::vector<std::string> cells);
  /// Adds a data row. Rows shorter than the header are right-padded with
  /// empty cells; longer rows are truncated to the header width.
  void row(std::vector<std::string> cells);

  std::size_t rows() const noexcept { return rows_.size(); }

  /// Renders with a separator line under the header.
  std::string render() const;

  /// Formats a double with `prec` significant digits.
  static std::string num(double v, int prec = 4);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tacc::util
