// Bump allocator backing the slice-based raw-log parse results.
//
// The view parser (collect::RecordViewParser) hands out string_views into
// the input buffer plus small arrays (job-id lists, counter-value runs)
// that need real storage. Allocating those from the heap per record is
// what made the old parser slow; the Arena instead bumps a pointer through
// chunked slabs and rewinds in O(chunks) on reset(), so a parser that is
// reused across records/hosts performs zero heap allocations once the
// first records have sized the arena (the high-water chunks are kept by
// reset() and reused).
//
// Not thread-safe: one Arena per parser/stage. Trivially-destructible
// payloads only — reset()/~Arena run no destructors.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

namespace tacc::util {

class Arena {
 public:
  /// Default slab size. Big enough that a typical host-day record body
  /// (a few hundred values) never spans a slab boundary, small enough
  /// that idle parser stages stay cheap.
  static constexpr std::size_t kDefaultChunkBytes = 64 * 1024;

  explicit Arena(std::size_t chunk_bytes = kDefaultChunkBytes) noexcept
      : chunk_bytes_(chunk_bytes == 0 ? kDefaultChunkBytes : chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Hand-written moves: the defaults would copy top_/end_/next_ while
  // moving chunks_ away, leaving the source pointing into slabs now owned
  // by the destination — a later allocate() on it would alias live memory.
  // The source is left empty but usable (next allocate grows fresh slabs).
  Arena(Arena&& other) noexcept
      : chunk_bytes_(other.chunk_bytes_),
        chunks_(std::move(other.chunks_)),
        next_(other.next_),
        top_(other.top_),
        end_(other.end_),
        stats_(other.stats_) {
    other.disown();
  }
  Arena& operator=(Arena&& other) noexcept {
    if (this != &other) {
      chunk_bytes_ = other.chunk_bytes_;
      chunks_ = std::move(other.chunks_);
      next_ = other.next_;
      top_ = other.top_;
      end_ = other.end_;
      stats_ = other.stats_;
      other.disown();
    }
    return *this;
  }

  /// Uninitialized storage for `n` objects of T. Returns an empty span
  /// for n == 0 without touching the arena.
  template <typename T>
  std::span<T> alloc_array(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena never runs destructors");
    if (n == 0) return {};
    void* p = allocate(n * sizeof(T), alignof(T));
    return std::span<T>(static_cast<T*>(p), n);
  }

  /// Raw aligned allocation (align must be a power of two).
  void* allocate(std::size_t bytes, std::size_t align);

  /// Rewinds every chunk without releasing it: the next allocations reuse
  /// the same slabs, so steady-state reuse is heap-allocation-free.
  void reset() noexcept;

  struct Stats {
    std::size_t chunks = 0;          // slabs currently owned
    std::size_t chunk_allocs = 0;    // lifetime slab allocations (growth)
    std::size_t bytes_reserved = 0;  // total slab capacity
    std::size_t bytes_used = 0;      // bytes handed out since last reset
    std::size_t high_water = 0;      // max bytes_used over the lifetime
  };
  const Stats& stats() const noexcept { return stats_; }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  /// Makes chunk `next_` (growing if needed) current with at least
  /// `bytes` of room, and returns the allocation base.
  std::byte* refill(std::size_t bytes);

  /// Post-move source state: no slabs, no current chunk, zeroed stats.
  void disown() noexcept {
    chunks_.clear();
    next_ = 0;
    top_ = nullptr;
    end_ = nullptr;
    stats_ = Stats{};
  }

  std::size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  std::size_t next_ = 0;   // index of the chunk after current_
  std::byte* top_ = nullptr;
  std::byte* end_ = nullptr;
  Stats stats_;
};

}  // namespace tacc::util
