#include "util/file.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <stdexcept>

namespace tacc::util {

namespace {

constexpr std::size_t kWriterBuf = 1 << 16;

std::array<std::uint32_t, 256> make_crc32c_table() noexcept {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) != 0 ? 0x82F63B78u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

[[noreturn]] void throw_errno(const std::string& what, const std::string& path) {
  throw std::runtime_error(what + " " + path + ": " + std::strerror(errno));
}

}  // namespace

std::uint32_t crc32c(const void* data, std::size_t size,
                     std::uint32_t seed) noexcept {
  static const std::array<std::uint32_t, 256> table = make_crc32c_table();
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::shared_ptr<const MmapFile> MmapFile::map(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) throw_errno("open", path);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw_errno("fstat", path);
  }
  auto file = std::shared_ptr<MmapFile>(new MmapFile());
  file->path_ = path;
  file->size_ = static_cast<std::size_t>(st.st_size);
  if (file->size_ > 0) {
    void* addr = ::mmap(nullptr, file->size_, PROT_READ, MAP_SHARED, fd, 0);
    if (addr == MAP_FAILED) {
      ::close(fd);
      throw_errno("mmap", path);
    }
    file->addr_ = addr;
  }
  ::close(fd);  // the mapping keeps the file alive
  return file;
}

MmapFile::~MmapFile() {
  if (addr_ != nullptr) ::munmap(addr_, size_);
}

FileWriter::FileWriter(const std::string& path, bool truncate) {
  const int flags =
      O_WRONLY | O_CREAT | O_CLOEXEC | (truncate ? O_TRUNC : O_APPEND);
  fd_ = ::open(path.c_str(), flags, 0644);
  if (fd_ < 0) throw_errno("open", path);
  if (!truncate) {
    const off_t end = ::lseek(fd_, 0, SEEK_END);
    if (end < 0) {
      ::close(fd_);
      fd_ = -1;
      throw_errno("lseek", path);
    }
    offset_ = static_cast<std::size_t>(end);
  }
  buf_.reserve(kWriterBuf);
}

FileWriter::~FileWriter() {
  if (fd_ >= 0) ::close(fd_);  // deliberately without flushing: see header
}

void FileWriter::append(std::span<const std::uint8_t> bytes) {
  append_raw(bytes.data(), bytes.size());
}

void FileWriter::append_raw(const void* data, std::size_t size) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  if (buf_.size() + size > kWriterBuf) flush();
  if (size > kWriterBuf) {
    std::size_t done = 0;
    while (done < size) {
      const ssize_t n = ::write(fd_, p + done, size - done);
      if (n < 0) throw std::runtime_error(std::string("write: ") +
                                          std::strerror(errno));
      done += static_cast<std::size_t>(n);
    }
  } else {
    buf_.insert(buf_.end(), p, p + size);
  }
  offset_ += size;
}

void FileWriter::flush() {
  std::size_t done = 0;
  while (done < buf_.size()) {
    const ssize_t n = ::write(fd_, buf_.data() + done, buf_.size() - done);
    if (n < 0) throw std::runtime_error(std::string("write: ") +
                                        std::strerror(errno));
    done += static_cast<std::size_t>(n);
  }
  buf_.clear();
}

void FileWriter::sync() {
  flush();
  if (::fdatasync(fd_) != 0) {
    throw std::runtime_error(std::string("fdatasync: ") +
                             std::strerror(errno));
  }
}

void FileWriter::close() {
  if (fd_ < 0) return;
  flush();
  ::close(fd_);
  fd_ = -1;
}

void atomic_replace(const std::string& tmp_path,
                    const std::string& final_path) {
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    throw_errno("rename", tmp_path);
  }
  fsync_dir(std::filesystem::path(final_path).parent_path().string());
}

void fsync_dir(const std::string& dir) {
  const std::string d = dir.empty() ? "." : dir;
  const int fd = ::open(d.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) throw_errno("open dir", d);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) throw_errno("fsync dir", d);
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) throw_errno("open", path);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw_errno("fstat", path);
  }
  std::vector<std::uint8_t> out(static_cast<std::size_t>(st.st_size));
  std::size_t done = 0;
  while (done < out.size()) {
    const ssize_t n = ::read(fd, out.data() + done, out.size() - done);
    if (n < 0) {
      ::close(fd);
      throw_errno("read", path);
    }
    if (n == 0) break;  // concurrent truncation: return what we got
    done += static_cast<std::size_t>(n);
  }
  out.resize(done);
  ::close(fd);
  return out;
}

}  // namespace tacc::util
