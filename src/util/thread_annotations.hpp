// Clang Thread Safety Analysis support: the TACC_* annotation macros and a
// capability-annotated mutex/lock/condvar trio used by every internally
// synchronized structure in the repo.
//
// With clang and -DTACC_THREAD_SAFETY=ON the build runs under
// -Wthread-safety -Werror=thread-safety, so the locking discipline declared
// here (which mutex guards which data, which functions require or exclude
// which capability) is *proved by the compiler on every build* instead of
// being sampled by TSan stress tests. On GCC (and on clang without the
// option) every macro expands to nothing and Mutex/MutexLock/CondVar are
// thin zero-policy wrappers over the std primitives, so the annotated code
// compiles identically everywhere.
//
// Usage pattern (see tsdb::Store, transport::Broker, util::ThreadPool):
//
//   class Cache {
//    public:
//     void insert(int k, int v) TACC_EXCLUDES(mu_) {
//       MutexLock lock(mu_);
//       map_[k] = v;
//     }
//    private:
//     util::Mutex mu_;
//     std::map<int, int> map_ TACC_GUARDED_BY(mu_);
//   };
//
// Accessing map_ without holding mu_, or calling insert() while already
// holding mu_ (self-deadlock), is then a compile error under the analysis.
//
// The custom linter (tools/lint/lint_repo.py) closes the loop: raw
// std::mutex / std::condition_variable / std::atomic declarations anywhere
// in src/ must be allowlisted, and every util::Mutex must be referenced by
// at least one TACC_* annotation — so new concurrent state cannot land
// unannotated.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__) && (!defined(SWIG))
#define TACC_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define TACC_THREAD_ANNOTATION_(x)  // no-op on non-Clang compilers
#endif

/// Declares a type to be a capability (lockable) with the given name in
/// diagnostics, e.g. TACC_CAPABILITY("mutex").
#define TACC_CAPABILITY(x) TACC_THREAD_ANNOTATION_(capability(x))

/// Declares an RAII type whose lifetime acquires/releases a capability.
#define TACC_SCOPED_CAPABILITY TACC_THREAD_ANNOTATION_(scoped_lockable)

/// Marks a data member as protected by the given capability: reads require
/// the capability held (shared or exclusive), writes require it exclusive.
#define TACC_GUARDED_BY(x) TACC_THREAD_ANNOTATION_(guarded_by(x))

/// Like TACC_GUARDED_BY, but for the data *pointed to* by a pointer member.
#define TACC_PT_GUARDED_BY(x) TACC_THREAD_ANNOTATION_(pt_guarded_by(x))

/// The function may only be called with the listed capabilities held; they
/// are still held on return (caller locks, callee relies).
#define TACC_REQUIRES(...) \
  TACC_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define TACC_REQUIRES_SHARED(...) \
  TACC_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// The function acquires the capability and does not release it (lock()).
#define TACC_ACQUIRE(...) \
  TACC_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define TACC_ACQUIRE_SHARED(...) \
  TACC_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

/// The function releases a held capability (unlock()).
#define TACC_RELEASE(...) \
  TACC_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define TACC_RELEASE_SHARED(...) \
  TACC_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

/// The function acquires the capability iff it returns `ret` (try_lock()).
#define TACC_TRY_ACQUIRE(...) \
  TACC_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// The function must NOT be called with the listed capabilities held —
/// the static self-deadlock check for public methods that lock internally.
#define TACC_EXCLUDES(...) TACC_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Lock-ordering declarations (deadlock prevention across capabilities).
#define TACC_ACQUIRED_BEFORE(...) \
  TACC_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define TACC_ACQUIRED_AFTER(...) \
  TACC_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

/// The function returns a reference to the given capability.
#define TACC_RETURN_CAPABILITY(x) TACC_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Use only with a
/// comment explaining why the discipline cannot be expressed.
#define TACC_NO_THREAD_SAFETY_ANALYSIS \
  TACC_THREAD_ANNOTATION_(no_thread_safety_analysis)

/// Asserts (at runtime, from the analysis' point of view) that the calling
/// thread already holds the capability.
#define TACC_ASSERT_CAPABILITY(x) \
  TACC_THREAD_ANNOTATION_(assert_capability(x))

namespace tacc::util {

/// A std::mutex the analysis can reason about. Lock it with MutexLock (or
/// lock()/unlock() in the rare non-scoped case); pass it to CondVar to
/// wait. Non-copyable, non-movable, like std::mutex.
class TACC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() TACC_ACQUIRE() { mu_.lock(); }
  void unlock() TACC_RELEASE() { mu_.unlock(); }
  bool try_lock() TACC_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII lock over a util::Mutex — the annotated replacement for
/// std::lock_guard/std::unique_lock on annotated mutexes (the std types
/// carry no capability attributes, so the analysis cannot see them).
class TACC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) TACC_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() TACC_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable over util::Mutex. Every wait requires the mutex held
/// (it is atomically released for the duration of the wait and re-acquired
/// before returning, like std::condition_variable — the analysis treats
/// the capability as held throughout, which matches what the caller may
/// assume after any wait returns).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  void wait(Mutex& mu) TACC_REQUIRES(mu) TACC_NO_THREAD_SAFETY_ANALYSIS {
    cv_.wait(mu);
  }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(
      Mutex& mu, const std::chrono::time_point<Clock, Duration>& deadline)
      TACC_REQUIRES(mu) TACC_NO_THREAD_SAFETY_ANALYSIS {
    return cv_.wait_until(mu, deadline);
  }

  template <typename Rep, typename Period>
  std::cv_status wait_for(Mutex& mu,
                          const std::chrono::duration<Rep, Period>& timeout)
      TACC_REQUIRES(mu) TACC_NO_THREAD_SAFETY_ANALYSIS {
    return cv_.wait_for(mu, timeout);
  }

 private:
  // condition_variable_any accepts any BasicLockable, so it can release
  // and re-acquire the annotated Mutex directly.
  std::condition_variable_any cv_;
};

// Proof the analysis is live: flip this to `#if 1` and build with
//   cmake -B build-tsa -S . -DCMAKE_CXX_COMPILER=clang++ -DTACC_THREAD_SAFETY=ON
// and clang fails with
//   error: writing variable 'x_' requires holding mutex 'mu_' exclusively
//   error: reading variable 'x_' requires holding mutex 'mu_'
// Add `MutexLock lock(mu_);` as the first line of each method and the
// build goes green again. (Kept compiled-out so the shipping tree stays
// warning-free; see docs/STATIC_ANALYSIS.md.)
#if 0
namespace tsa_demo {
class Counter {
 public:
  void increment() { ++x_; }        // BUG: forgot MutexLock lock(mu_);
  int value() const { return x_; }  // BUG: same
 private:
  mutable Mutex mu_;
  int x_ TACC_GUARDED_BY(mu_) = 0;
};
}  // namespace tsa_demo
#endif

}  // namespace tacc::util
