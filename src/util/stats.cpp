#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace tacc::util {

void RunningStat::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStat::merge(const RunningStat& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = static_cast<double>(n_);
  const auto m = static_cast<double>(other.n_);
  mean_ += delta * m / (n + m);
  m2_ += other.m2_ + delta * delta * n * m / (n + m);
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStat::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStat::stddev() const noexcept { return std::sqrt(variance()); }

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) noexcept {
  RunningStat rs;
  for (double x : xs) rs.add(x);
  return rs.stddev();
}

double pearson(std::span<const double> x, std::span<const double> y) noexcept {
  if (x.size() != y.size() || x.size() < 2) return 0.0;
  const double mx = mean(x);
  const double my = mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins == 0) throw std::invalid_argument("Histogram: bins must be >= 1");
  if (!(hi > lo)) throw std::invalid_argument("Histogram: hi must be > lo");
}

Histogram Histogram::of(std::span<const double> xs, std::size_t bins) {
  double lo = 0.0, hi = 1.0;
  if (!xs.empty()) {
    lo = *std::min_element(xs.begin(), xs.end());
    hi = *std::max_element(xs.begin(), xs.end());
    if (!(hi > lo)) hi = lo + 1.0;
  }
  Histogram h(lo, hi, bins);
  for (double x : xs) h.add(x);
  return h;
}

void Histogram::add(double x) noexcept {
  const double span = hi_ - lo_;
  auto idx = static_cast<std::ptrdiff_t>((x - lo_) / span *
                                         static_cast<double>(counts_.size()));
  idx = std::clamp<std::ptrdiff_t>(
      idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bin_lo(std::size_t i) const noexcept {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t i) const noexcept {
  return bin_lo(i + 1);
}

std::string Histogram::render(std::string_view title,
                              std::size_t width) const {
  std::ostringstream os;
  os << title << " (n=" << total_ << ")\n";
  std::size_t peak = 1;
  for (std::size_t c : counts_) peak = std::max(peak, c);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::size_t bar = counts_[i] * width / peak;
    char buf[64];
    std::snprintf(buf, sizeof buf, "  [%11.4g, %11.4g) %7zu |", bin_lo(i),
                  bin_hi(i), counts_[i]);
    os << buf << std::string(bar, '#') << '\n';
  }
  return os.str();
}

}  // namespace tacc::util
