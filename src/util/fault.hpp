// Deterministic, seed-driven fault injection for the transport layer.
//
// A FaultPlan maps named injection sites ("broker.publish", "cron.rsync",
// ...) to a FaultSpec of outcome rates and outage windows. Decisions are
// *stateless*: decide() hashes (plan seed, site, key, salt, SimTime) into a
// private splitmix64 stream, so the same inputs always yield the same
// outcome regardless of call order, thread interleaving, or how many other
// sites drew "random" numbers first. That is what makes whole chaos runs
// reproducible bit-for-bit from one seed (the golden-determinism tests) and
// lets a failing soak print a seed that replays exactly.
//
// The plan is immutable once configured; share it across threads as a
// std::shared_ptr<const FaultPlan> — decide() touches no mutable state.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/clock.hpp"

namespace tacc::util {

// Canonical injection-site names. Sites are dotted lowercase identifiers;
// tools/lint/lint_repo.py (TS011) checks that any site a test references
// still exists somewhere in src/, so renaming one here without updating the
// chaos tests is a lint failure, not silently disabled coverage.
inline constexpr std::string_view kFaultBrokerPublish = "broker.publish";
inline constexpr std::string_view kFaultDaemonPublish = "daemon.publish";
inline constexpr std::string_view kFaultConsumerCrash = "consumer.crash";
// Aggregator-tier sites (src/transport/aggregator.cpp): `error` at
// aggregator.publish fails one upward frame publish (the aggregator retries,
// then spools the frame); `error` at aggregator.crash simulates the
// aggregator process dying after publishing but before acking its child
// deliveries — the children redeliver and the root's dedup absorbs the
// duplicates.
inline constexpr std::string_view kFaultAggregatorPublish =
    "aggregator.publish";
inline constexpr std::string_view kFaultAggregatorCrash = "aggregator.crash";
inline constexpr std::string_view kFaultCronRsync = "cron.rsync";
inline constexpr std::string_view kFaultCronDisk = "cron.disk";
// TSDB persistence sites (src/tsdb): `error` at any of them simulates a
// process kill mid-write — a deterministic torn prefix is left on disk and
// tsdb::InjectedCrash is thrown, so the crash-recovery matrix can replay
// the exact same kill from a seed. See docs/ARCHITECTURE.md, "On-disk
// format & recovery".
inline constexpr std::string_view kFaultWalAppend = "wal.append";
inline constexpr std::string_view kFaultWalSync = "wal.sync";
inline constexpr std::string_view kFaultBlockFileWrite = "blockfile.write";
inline constexpr std::string_view kFaultCompactCommit = "compact.commit";

/// Fault rates and scheduled outages for one injection site. Which kinds a
/// site honors is up to the site: the broker applies drop/duplicate/delay,
/// the daemon's publish path and cron's rsync/disk sites use error (plus
/// outage windows), the consumer uses error as crash-before-ack.
struct FaultSpec {
  double drop_rate = 0.0;       // message lost in flight (detectably)
  double duplicate_rate = 0.0;  // message enqueued twice
  double delay_rate = 0.0;      // delivery delayed by [delay_min, delay_max)
  double error_rate = 0.0;      // operation fails (connection refused, ...)
  SimTime delay_min = 0;
  SimTime delay_max = 0;
  /// [start, end) windows of simulated time during which the site always
  /// errors (a broker outage, an unreachable archive filesystem).
  std::vector<std::pair<SimTime, SimTime>> outages;
};

/// The outcome of one decision at one site.
struct FaultDecision {
  bool drop = false;
  bool duplicate = false;
  bool error = false;
  SimTime delay = 0;
  bool any() const noexcept { return drop || duplicate || error || delay > 0; }
};

/// Counters for injected and recovered faults, embedded in BrokerStats /
/// DaemonStats / CronStats and merged by core::ClusterMonitor so a bench
/// can report delivered-vs-lost under a fault schedule.
struct ResilienceStats {
  std::uint64_t injected_drops = 0;       // messages lost in flight
  std::uint64_t injected_duplicates = 0;  // extra copies enqueued
  std::uint64_t injected_delays = 0;      // deliveries with added latency
  std::uint64_t injected_errors = 0;      // outage / rsync / disk hits
  std::uint64_t retries = 0;              // publish retry attempts
  std::uint64_t spooled = 0;              // records diverted to a local spool
  std::uint64_t replayed = 0;             // spooled records later delivered
  std::uint64_t spool_dropped = 0;        // records lost to a full spool
  std::uint64_t dead_lettered = 0;        // messages parked in a DLQ
  std::uint64_t requeued = 0;             // crash-before-ack redeliveries
  std::uint64_t deduped = 0;              // duplicate deliveries suppressed
  std::uint64_t paused_windows = 0;       // queue crossed its high watermark
  std::uint64_t resumed_windows = 0;      // queue drained below its low mark

  void merge(const ResilienceStats& other) noexcept;
  bool operator==(const ResilienceStats&) const noexcept = default;
};

class FaultPlan {
 public:
  /// An empty plan injects nothing and is cheap to consult.
  FaultPlan() noexcept = default;
  explicit FaultPlan(std::uint64_t seed) noexcept : seed_(seed) {}

  /// Configures one site. Call during setup only: the plan must not change
  /// once it is shared with running components.
  void set(std::string_view site, FaultSpec spec);

  /// The spec for a site, or nullptr if the site is not configured.
  const FaultSpec* spec(std::string_view site) const noexcept;

  bool empty() const noexcept { return sites_.empty(); }
  std::uint64_t seed() const noexcept { return seed_; }
  std::vector<std::string> sites() const;

  /// Folds two identifiers (sequence number + attempt, tag + delivery)
  /// into one decision salt.
  static std::uint64_t salt(std::uint64_t a, std::uint64_t b) noexcept;

  /// Decides the outcome at `site` for one event. `key` identifies the
  /// stream (producer hostname, queue name), `salt` the event within the
  /// stream (sequence number, attempt), `now` the simulated time (consulted
  /// for outage windows only). Pure function of (seed, site, key, salt,
  /// now): deterministic across threads and call order.
  FaultDecision decide(std::string_view site, std::string_view key,
                       std::uint64_t salt, SimTime now) const noexcept;

  /// Deterministic uniform in [0, 1) for the same inputs — used for
  /// reproducible retry-backoff jitter.
  double uniform(std::string_view site, std::string_view key,
                 std::uint64_t salt) const noexcept;

 private:
  std::uint64_t seed_ = 0;
  std::map<std::string, FaultSpec, std::less<>> sites_;
};

}  // namespace tacc::util
