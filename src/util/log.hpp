// Minimal leveled, thread-safe logger. Components log with a tag
// (e.g. "tacc_statsd", "broker", "ingest") so interleaved daemon output is
// attributable. Defaults to Warn so tests and benches stay quiet.
#pragma once

#include <sstream>
#include <string_view>

namespace tacc::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Sets the global threshold; messages below it are dropped.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Emits one line: "LEVEL [tag] message". Thread-safe.
void log_line(LogLevel level, std::string_view tag, std::string_view msg);

/// Stream-style helper: LOG_STREAM(Info, "broker") << "queue depth " << n;
class LogStream {
 public:
  LogStream(LogLevel level, std::string_view tag)
      : level_(level), tag_(tag) {}
  ~LogStream() { log_line(level_, tag_, os_.str()); }
  template <typename T>
  LogStream& operator<<(const T& v) {
    if (level_ >= log_level()) os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string tag_;
  std::ostringstream os_;
};

}  // namespace tacc::util

#define TS_LOG(level, tag) \
  ::tacc::util::LogStream(::tacc::util::LogLevel::level, (tag))
