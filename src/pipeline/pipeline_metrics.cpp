#include "pipeline/pipeline_metrics.hpp"

#include <cstdio>
#include <cstdlib>

namespace tacc::pipeline {

PipelineMetricsSnapshot PipelineMetrics::snapshot() const noexcept {
  PipelineMetricsSnapshot s;
  s.bytes_read = bytes_read_.load(std::memory_order_relaxed);
  s.lines = lines_.load(std::memory_order_relaxed);
  s.records = records_.load(std::memory_order_relaxed);
  s.points = points_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.parse_time_ns = parse_time_ns_.load(std::memory_order_relaxed);
  s.build_time_ns = build_time_ns_.load(std::memory_order_relaxed);
  s.put_time_ns = put_time_ns_.load(std::memory_order_relaxed);
  s.queue_wait_ns = queue_wait_ns_.load(std::memory_order_relaxed);
  s.arena_resizes = arena_resizes_.load(std::memory_order_relaxed);
  s.allocations = allocations_.load(std::memory_order_relaxed);
  return s;
}

void PipelineMetrics::reset() noexcept {
  bytes_read_.store(0, std::memory_order_relaxed);
  lines_.store(0, std::memory_order_relaxed);
  records_.store(0, std::memory_order_relaxed);
  points_.store(0, std::memory_order_relaxed);
  batches_.store(0, std::memory_order_relaxed);
  parse_time_ns_.store(0, std::memory_order_relaxed);
  build_time_ns_.store(0, std::memory_order_relaxed);
  put_time_ns_.store(0, std::memory_order_relaxed);
  queue_wait_ns_.store(0, std::memory_order_relaxed);
  arena_resizes_.store(0, std::memory_order_relaxed);
  allocations_.store(0, std::memory_order_relaxed);
}

bool profile_enabled() noexcept {
  static const bool enabled = [] {
    const char* env = std::getenv("TACC_PROFILE");
    return env != nullptr && env[0] != '\0';
  }();
  return enabled;
}

PipelineMetrics* profile_metrics() noexcept {
  static PipelineMetrics metrics;
  return profile_enabled() ? &metrics : nullptr;
}

std::string format_pipeline_metrics(const PipelineMetricsSnapshot& s) {
  char buf[128];
  std::string out;
  const auto row = [&](const char* name, std::uint64_t value,
                       const char* unit) {
    std::snprintf(buf, sizeof(buf), "  %-16s %12llu %s\n", name,
                  static_cast<unsigned long long>(value), unit);
    out += buf;
  };
  out += "ingest pipeline:\n";
  row("bytes_read", s.bytes_read, "B");
  row("lines", s.lines, "");
  row("records", s.records, "");
  row("points", s.points, "");
  row("batches", s.batches, "");
  row("parse_time", s.parse_time_ns, "ns");
  row("build_time", s.build_time_ns, "ns");
  row("put_time", s.put_time_ns, "ns");
  row("queue_wait", s.queue_wait_ns, "ns");
  row("arena_resizes", s.arena_resizes, "");
  row("allocations", s.allocations, "");
  return out;
}

}  // namespace tacc::pipeline
