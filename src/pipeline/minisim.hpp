// Per-job mini-simulation: runs one population job through the full stack
// (simulated nodes -> workload engine -> collectors -> raw records) on a
// private miniature cluster, so the large population analyses (paper
// section V) exercise exactly the same demand model, collection path and
// metric formulas as the cluster-scale experiments — just one job at a
// time, which parallelizes perfectly across jobs.
#pragma once

#include "db/table.hpp"
#include "pipeline/jobmap.hpp"
#include "simhw/arch.hpp"
#include "workload/jobs.hpp"

namespace tacc::pipeline {

struct MiniSimOptions {
  /// Interior samples between the prolog ("begin") and epilog ("end")
  /// collections. The production cadence is one per 10 minutes; population
  /// runs use a handful — the ARC metrics are interval-insensitive by
  /// construction.
  int samples = 6;
  simhw::Microarch uarch = simhw::Microarch::Haswell;
  int sockets = 2;
  int cores_per_socket = 8;
  bool hyperthreading = false;
  std::uint64_t mem_total_kb = 32ULL * 1024 * 1024;
};

/// Simulates one job and returns its extracted records + accounting.
JobData simulate_job(const workload::JobSpec& spec,
                     const MiniSimOptions& options = {});

/// Simulates, computes metrics, evaluates flags, and ingests a whole
/// population into `database` (creating the jobs table if needed), using
/// `threads` workers. Returns the number of jobs ingested.
std::size_t ingest_population(db::Database& database,
                              const std::vector<workload::JobSpec>& jobs,
                              const MiniSimOptions& options = {},
                              std::size_t threads = 0);

}  // namespace tacc::pipeline
