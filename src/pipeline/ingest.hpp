// Ingests the central archive into the two analysis stores:
//   * relational (the paper's PostgreSQL step): one row per job in the
//     "jobs" table, with the metadata columns the portal's job list shows
//     and one Real column per Table I metric. Flags are stored as a
//     comma-joined text column.
//   * time-series (the paper's OpenTSDB step, section VI-A): every raw
//     counter of every host, tagged by (host, device type, device name,
//     event name), batched per series and fanned out across a thread pool.
#pragma once

#include <cstddef>
#include <string>

#include "db/table.hpp"
#include "pipeline/flags.hpp"
#include "pipeline/metrics.hpp"
#include "transport/archive.hpp"
#include "tsdb/store.hpp"
#include "util/thread_pool.hpp"
#include "workload/jobs.hpp"

namespace tacc::pipeline {

/// Name of the jobs table.
inline constexpr const char* kJobsTable = "jobs";

/// Creates the jobs table (metadata + metric columns) with indexes on
/// exe, user, and queue. Throws if it already exists.
db::Table& create_jobs_table(db::Database& database);

/// Inserts one job row. NaN metrics become SQL NULLs.
db::RowId ingest_job(db::Table& jobs, const workload::AccountingRecord& acct,
                     const JobMetrics& metrics,
                     const std::vector<Flag>& flags);

/// Convenience: extract + compute + flag + ingest a batch of jobs from the
/// central archive. Returns the number of jobs with at least one record.
/// NOT thread-safe: call from one thread per (database, archive) pair.
std::size_t ingest_from_archive(
    db::Database& database, const transport::RawArchive& archive,
    const std::vector<workload::AccountingRecord>& accounting);

/// Tuning knobs for the archive -> time-series load.
struct TsdbIngestOptions {
  /// Points staged per worker before a bulk flush via Store::put_batches.
  /// Bigger batches amortize shard locking; smaller ones bound worker
  /// memory. Default: 4096.
  std::size_t batch_points = 4096;
  /// Prefix for generated metric names: <prefix>.<type>.<event>.
  std::string metric_prefix = "taccstats";
  /// Seal every series after the load (Store::seal_all), compressing the
  /// archive into immutable blocks and enabling summary skips and rollup
  /// fast paths on the read side. Disable only when more appends to the
  /// same series follow immediately (sealing then just cuts blocks short).
  bool seal = true;
};

struct TsdbIngestStats {
  std::size_t hosts = 0;
  std::size_t series = 0;
  std::size_t points = 0;
};

/// Loads every host's raw counter stream from the archive into the
/// time-series store: one series per (schema type, device, event) per
/// host — the paper's OpenTSDB tag tuple — with the metric named
/// <prefix>.<type>.<event> and tags {host, type, device, event}. Values of
/// the same event across a host's devices stay separate series, so any
/// tag subset can still be aggregated at query time.
///
/// When `pool` is non-null, hosts are fanned out across its workers; each
/// worker stages points in a local per-series buffer and flushes whole
/// batches with Store::put_batches, so workers never contend on a series
/// (series are keyed by host) and touch each shard lock only on flush.
///
/// Thread-safety: safe to call while other threads put() into the same
/// store; the archive is only read (RawArchive is internally locked). The
/// result is deterministic: serial (pool == nullptr) and parallel runs
/// produce stores with byte-identical query results.
TsdbIngestStats ingest_archive_tsdb(tsdb::Store& store,
                                    const transport::RawArchive& archive,
                                    util::ThreadPool* pool = nullptr,
                                    const TsdbIngestOptions& options = {});

}  // namespace tacc::pipeline
