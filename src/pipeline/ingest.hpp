// Ingests job metadata + computed metrics into the relational store (the
// paper's PostgreSQL step): one row per job in the "jobs" table, with the
// metadata columns the portal's job list shows and one Real column per
// Table I metric. Flags are stored as a comma-joined text column.
#pragma once

#include "db/table.hpp"
#include "pipeline/flags.hpp"
#include "pipeline/metrics.hpp"
#include "workload/jobs.hpp"

namespace tacc::pipeline {

/// Name of the jobs table.
inline constexpr const char* kJobsTable = "jobs";

/// Creates the jobs table (metadata + metric columns) with indexes on
/// exe, user, and queue. Throws if it already exists.
db::Table& create_jobs_table(db::Database& database);

/// Inserts one job row. NaN metrics become SQL NULLs.
db::RowId ingest_job(db::Table& jobs, const workload::AccountingRecord& acct,
                     const JobMetrics& metrics,
                     const std::vector<Flag>& flags);

/// Convenience: extract + compute + flag + ingest a batch of jobs from the
/// central archive. Returns the number of jobs with at least one record.
std::size_t ingest_from_archive(
    db::Database& database, const transport::RawArchive& archive,
    const std::vector<workload::AccountingRecord>& accounting);

}  // namespace tacc::pipeline
