// Ingests the central archive into the two analysis stores:
//   * relational (the paper's PostgreSQL step): one row per job in the
//     "jobs" table, with the metadata columns the portal's job list shows
//     and one Real column per Table I metric. Flags are stored as a
//     comma-joined text column.
//   * time-series (the paper's OpenTSDB step, section VI-A): every raw
//     counter of every host, tagged by (host, device type, device name,
//     event name), batched per series and fanned out across a thread pool.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "db/table.hpp"
#include "pipeline/flags.hpp"
#include "pipeline/metrics.hpp"
#include "transport/archive.hpp"
#include "tsdb/store.hpp"
#include "util/arena.hpp"
#include "util/simd_scan.hpp"
#include "util/thread_pool.hpp"
#include "workload/jobs.hpp"

namespace tacc::pipeline {

/// Name of the jobs table.
inline constexpr const char* kJobsTable = "jobs";

/// Creates the jobs table (metadata + metric columns) with indexes on
/// exe, user, and queue. Throws if it already exists.
db::Table& create_jobs_table(db::Database& database);

/// Inserts one job row. NaN metrics become SQL NULLs.
db::RowId ingest_job(db::Table& jobs, const workload::AccountingRecord& acct,
                     const JobMetrics& metrics,
                     const std::vector<Flag>& flags);

/// Convenience: extract + compute + flag + ingest a batch of jobs from the
/// central archive. Returns the number of jobs with at least one record.
/// NOT thread-safe: call from one thread per (database, archive) pair.
std::size_t ingest_from_archive(
    db::Database& database, const transport::RawArchive& archive,
    const std::vector<workload::AccountingRecord>& accounting);

class PipelineMetrics;  // pipeline/pipeline_metrics.hpp

/// Tuning knobs for the archive -> time-series load.
struct TsdbIngestOptions {
  /// Points staged per worker before a bulk flush via Store::put_batches.
  /// Bigger batches amortize shard locking; smaller ones bound worker
  /// memory. Default: 4096.
  std::size_t batch_points = 4096;
  /// Prefix for generated metric names: <prefix>.<type>.<event>.
  std::string metric_prefix = "taccstats";
  /// Seal every series after the load (Store::seal_all), compressing the
  /// archive into immutable blocks and enabling summary skips and rollup
  /// fast paths on the read side. Disable only when more appends to the
  /// same series follow immediately (sealing then just cuts blocks short).
  bool seal = true;
  /// After a bulk load into a durable store, call Store::flush(): the
  /// sealed blocks move into a segment file and the WALs rotate down to
  /// small checkpoints, so the load is served from mmap-backed blocks and
  /// survives a crash without replay. No effect on in-memory stores.
  bool flush = false;
  /// Put-stage threads for the serial (pool == nullptr) pipeline: 0 calls
  /// Store::put_batches inline with batch building; N >= 1 hands flushed
  /// batch groups to N consumer threads over bounded ring queues, so
  /// decode/build overlaps store insertion. Ignored when hosts are
  /// already fanned out across a thread pool. Any value produces stores
  /// with byte-identical query results (put order is irrelevant to the
  /// store).
  std::size_t stage_threads = 0;
  /// Capacity, in flushed batch groups, of each stage ring queue. Bounds
  /// producer run-ahead (memory) when the store is the slower stage.
  std::size_t queue_depth = 8;
  /// SIMD mode for text-ingest tokenization (ingest_text_tsdb); Auto
  /// defers to the TACC_SIMD env knob, then CPU detection.
  util::ScanMode scan = util::ScanMode::Auto;
  /// Arena slab size for the text-ingest record parser.
  std::size_t arena_chunk = util::Arena::kDefaultChunkBytes;
  /// Per-stage counters (pipeline/pipeline_metrics.hpp). nullptr falls
  /// back to the TACC_PROFILE-gated process-wide instance, which is
  /// itself null (counters off) unless that env knob is set.
  PipelineMetrics* metrics = nullptr;
};

struct TsdbIngestStats {
  std::size_t hosts = 0;
  std::size_t series = 0;
  std::size_t points = 0;
};

/// Loads every host's raw counter stream from the archive into the
/// time-series store: one series per (schema type, device, event) per
/// host — the paper's OpenTSDB tag tuple — with the metric named
/// <prefix>.<type>.<event> and tags {host, type, device, event}. Values of
/// the same event across a host's devices stay separate series, so any
/// tag subset can still be aggregated at query time.
///
/// When `pool` is non-null, hosts are fanned out across its workers; each
/// worker stages points in a local per-series buffer and flushes whole
/// batches with Store::put_batches, so workers never contend on a series
/// (series are keyed by host) and touch each shard lock only on flush.
///
/// Thread-safety: safe to call while other threads put() into the same
/// store; the archive is only read (RawArchive is internally locked). The
/// result is deterministic: serial (pool == nullptr) and parallel runs
/// produce stores with byte-identical query results.
TsdbIngestStats ingest_archive_tsdb(tsdb::Store& store,
                                    const transport::RawArchive& archive,
                                    util::ThreadPool* pool = nullptr,
                                    const TsdbIngestOptions& options = {});

/// Loads one serialized host log (header + records, HostLog::serialize
/// format) straight into the time-series store without materializing
/// Records: the body streams through collect::RecordViewParser (SIMD
/// tokenization, arena-backed values) directly into staged series
/// batches. Series naming/tagging matches ingest_archive_tsdb, so a store
/// loaded from text and one loaded from the equivalent archived log have
/// byte-identical query results — as do runs with any scan mode or
/// stage_threads value.
///
/// Throws std::invalid_argument on malformed input (same messages as
/// HostLog::parse). Points flushed before the bad line are already in the
/// store; points staged since the last batch_points flush (the stage only
/// flushes at record boundaries once the threshold is crossed) are
/// dropped, not stored.
TsdbIngestStats ingest_text_tsdb(tsdb::Store& store, std::string_view text,
                                 const TsdbIngestOptions& options = {});

}  // namespace tacc::pipeline
