// Computes the per-job metrics of paper Table I (plus the RAPL power
// breakdown and the procfs memory high-water mark the new version adds).
//
// Two metric families (section IV-A):
//  * "Average" metrics are Average Rates of Change: the relevant counter's
//    delta is accumulated over the job's lifetime on each node (with
//    per-interval wraparound correction for narrow hardware counters),
//    divided by elapsed time, then averaged over nodes. Because the
//    counters are cumulative this is insensitive to the sampling interval.
//  * "Maximum" metrics take per-interval deltas, sum them across nodes per
//    interval, and report the maximum interval rate — an approximation to
//    the peak instantaneous rate.
// Ratios (cpi, MDCWait, VecPercent, ...) are formed from the averaged
// quantities, not averaged per interval.
//
// Table I's "idle" wording conflicts with the body text; we implement the
// prose definition: idle = min-node CPU_Usage / max-node CPU_Usage, and
// catastrophe = min-interval / max-interval of the node-summed CPU usage,
// both in [0, 1] with small values flagging imbalance.
#pragma once

#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "pipeline/jobmap.hpp"

namespace tacc::pipeline {

/// All computed metrics, keyed by the Table I labels. Metrics whose device
/// data is absent (no Lustre client, unknown architecture, no Phi, 4-PMC
/// topology without LLC counters) are NaN.
struct JobMetrics {
  // Lustre
  double MetaDataRate = nan("");    // max MDS op rate (reqs/s, node-summed)
  double MDCReqs = nan("");         // avg MDS op rate (reqs/s per node)
  double OSCReqs = nan("");         // avg OSS op rate (reqs/s per node)
  double MDCWait = nan("");         // avg us per MDS op
  double OSCWait = nan("");         // avg us per OSS op
  double LLiteOpenClose = nan("");  // avg opens+closes per second per node
  double LnetAveBW = nan("");       // avg Lustre MB/s per node
  double LnetMaxBW = nan("");       // max Lustre MB/s (node-summed)
  // Network
  double InternodeIBAveBW = nan("");  // avg MPI MB/s per node (IB minus LNET)
  double InternodeIBMaxBW = nan("");  // max MPI MB/s (node-summed)
  double Packetsize = nan("");        // avg IB packet size (bytes)
  double Packetrate = nan("");        // avg IB packets/s per node
  double GigEBW = nan("");            // avg Ethernet MB/s per node
  // Processor
  double Load_All = nan("");      // avg loads/s per core
  double Load_L1Hits = nan("");   // avg L1 hits/s per core
  double Load_L2Hits = nan("");   // avg L2 hits/s per core
  double Load_LLCHits = nan("");  // avg LLC hits/s per core
  double cpi = nan("");           // cycles per instruction
  double cpld = nan("");          // cycles per L1D load
  double flops = nan("");         // avg GFLOP/s per node
  double VecPercent = nan("");    // vector FP / all FP instructions [0,1]
  double mbw = nan("");           // avg DRAM GB/s per node
  // Energy (RAPL; new in this version)
  double PkgWatts = nan("");   // avg package power per node (W)
  double CoreWatts = nan("");  // avg core (PP0) power per node (W)
  double DramWatts = nan("");  // avg DRAM power per node (W)
  // OS
  double MemUsage = nan("");     // max node memory used (GB), snapshots
  double MemHWM = nan("");       // procfs per-process high-water mark (GB)
  double CPU_Usage = nan("");    // avg fraction of time in user space
  double idle = nan("");         // min/max CPU_Usage over nodes [0,1]
  double catastrophe = nan("");  // min/max CPU usage over time [0,1]
  double RampUp = nan("");       // first-interval / peak-interval CPU usage;
                                 //  small = slow start (compile step)
  double TailDrop = nan("");     // last-interval / peak-interval CPU usage;
                                 //  small = mid-run death (failure)
  double MIC_Usage = nan("");    // avg Phi utilization [0,1]

  /// The metrics as (Table I label -> value) for DB ingest / display.
  std::map<std::string, double> as_map() const;

  /// Ordered Table I labels (Lustre, Network, Processor, Energy, OS).
  static const std::vector<std::string>& labels();
};

/// Computes all metrics for a job. Requires at least two records on at
/// least one host; otherwise everything stays NaN.
JobMetrics compute_metrics(const JobData& data);

/// Per-node, per-interval series for the six panels of the paper's Fig. 5
/// job detail plots: Gigaflops, memory bandwidth (GB/s), memory usage (GB),
/// Lustre bandwidth (MB/s), internode InfiniBand traffic (MB/s), and CPU
/// user fraction.
struct NodeSeries {
  std::string hostname;
  std::vector<double> times;  // interval midpoints, seconds since epoch
  std::vector<double> gflops;
  std::vector<double> mem_bw_gbps;
  std::vector<double> mem_used_gb;
  std::vector<double> lustre_mbps;
  std::vector<double> ib_mpi_mbps;
  std::vector<double> cpu_user;
};

/// Extracts the Fig. 5 panel series for every node of a job.
std::vector<NodeSeries> job_timeseries(const JobData& data);

}  // namespace tacc::pipeline
