// Per-stage counters for the ingest pipeline (read -> parse -> batch-build
// -> tsdb put), collected only when profiling is requested so the hot path
// pays nothing by default.
//
// Counters are relaxed atomics because staged ingest splits the stages
// across threads (producer tokenizes/builds, consumer puts); each counter
// is a monotonic sum, so relaxed ordering is exact for the final snapshot
// taken after join. The repo linter's TS001 allowlist records every atomic
// member with this reason.
//
// Enabling: pass a PipelineMetrics* through TsdbIngestOptions::metrics, or
// set the TACC_PROFILE env knob (any non-empty value) to route into the
// process-wide instance from profile_metrics().
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace tacc::pipeline {

/// Plain-value copy of the counters, safe to pass around and diff.
struct PipelineMetricsSnapshot {
  std::uint64_t bytes_read = 0;      // raw text bytes scanned
  std::uint64_t lines = 0;           // lines tokenized (records + data rows)
  std::uint64_t records = 0;         // timestamp records parsed
  std::uint64_t points = 0;          // tsdb points emitted
  std::uint64_t batches = 0;         // put_batches flushes
  std::uint64_t parse_time_ns = 0;   // tokenize + decode stage time
  std::uint64_t build_time_ns = 0;   // batch staging time
  std::uint64_t put_time_ns = 0;     // Store::put_batches time
  std::uint64_t queue_wait_ns = 0;   // producer+consumer stalls on the ring
  std::uint64_t arena_resizes = 0;   // arena slab growths (0 = steady state)
  std::uint64_t allocations = 0;     // heap allocs observed in parse stage
};

/// Thread-safe accumulator; add to it from any stage, snapshot after join.
class PipelineMetrics {
 public:
  void add_bytes_read(std::uint64_t n) noexcept { add(bytes_read_, n); }
  void add_lines(std::uint64_t n) noexcept { add(lines_, n); }
  void add_records(std::uint64_t n) noexcept { add(records_, n); }
  void add_points(std::uint64_t n) noexcept { add(points_, n); }
  void add_batches(std::uint64_t n) noexcept { add(batches_, n); }
  void add_parse_time_ns(std::uint64_t n) noexcept { add(parse_time_ns_, n); }
  void add_build_time_ns(std::uint64_t n) noexcept { add(build_time_ns_, n); }
  void add_put_time_ns(std::uint64_t n) noexcept { add(put_time_ns_, n); }
  void add_queue_wait_ns(std::uint64_t n) noexcept { add(queue_wait_ns_, n); }
  void add_arena_resizes(std::uint64_t n) noexcept { add(arena_resizes_, n); }
  void add_allocations(std::uint64_t n) noexcept { add(allocations_, n); }

  PipelineMetricsSnapshot snapshot() const noexcept;

  /// Zeroes every counter (tests reuse the global instance).
  void reset() noexcept;

 private:
  static void add(std::atomic<std::uint64_t>& c, std::uint64_t n) noexcept {
    if (n != 0) c.fetch_add(n, std::memory_order_relaxed);
  }

  std::atomic<std::uint64_t> bytes_read_{0};
  std::atomic<std::uint64_t> lines_{0};
  std::atomic<std::uint64_t> records_{0};
  std::atomic<std::uint64_t> points_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> parse_time_ns_{0};
  std::atomic<std::uint64_t> build_time_ns_{0};
  std::atomic<std::uint64_t> put_time_ns_{0};
  std::atomic<std::uint64_t> queue_wait_ns_{0};
  std::atomic<std::uint64_t> arena_resizes_{0};
  std::atomic<std::uint64_t> allocations_{0};
};

/// True when the TACC_PROFILE env knob is set to a non-empty value.
/// Read once per process.
///
/// Determinism audit (DT001): allowlisted — the knob only toggles counter
/// collection and a summary line; it never changes parsed logs, archive
/// bytes, or query results.
bool profile_enabled() noexcept;

/// The process-wide metrics instance used when TACC_PROFILE is set and the
/// caller did not supply one. Returns nullptr when profiling is off, so
/// call sites can do `if (auto* m = profile_metrics()) ...`.
PipelineMetrics* profile_metrics() noexcept;

/// Renders a snapshot as an aligned human-readable table (one counter per
/// line) for TACC_PROFILE summary output and tests.
std::string format_pipeline_metrics(const PipelineMetricsSnapshot& s);

}  // namespace tacc::pipeline
