// Maps raw host record streams to jobs (paper section IV-A: "TACC Stats
// maps the raw output from each node to job ids"). A record belongs to a
// job when the scheduler job list captured at collection time contains the
// job id; this works on shared nodes too, where a record may belong to
// several jobs.
#pragma once

#include <string>
#include <vector>

#include "collect/rawfile.hpp"
#include "transport/archive.hpp"
#include "workload/jobs.hpp"

namespace tacc::pipeline {

/// One host's slice of a job: its schemas and the records tagged with the
/// job id, in time order.
struct HostSeries {
  std::string hostname;
  std::string arch;  // codename ("hsw", ...) for width lookups
  std::vector<collect::Schema> schemas;
  std::vector<collect::Record> records;
};

/// Everything the metric stage needs for one job.
struct JobData {
  workload::AccountingRecord acct;
  std::vector<HostSeries> hosts;
};

/// Extracts a job's records from the central archive using the accounting
/// record's host list. Hosts with no matching records are omitted (e.g. a
/// crashed node whose cron-mode data was lost).
JobData extract_job(const transport::RawArchive& archive,
                    const workload::AccountingRecord& acct);

/// Extracts a job from an in-memory set of host logs (used by the per-job
/// mini-simulations of the population benches).
JobData extract_job(const std::vector<collect::HostLog>& logs,
                    const workload::AccountingRecord& acct);

}  // namespace tacc::pipeline
