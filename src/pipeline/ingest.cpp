#include "pipeline/ingest.hpp"

#include <atomic>
#include <cmath>
#include <unordered_map>

namespace tacc::pipeline {

db::Table& create_jobs_table(db::Database& database) {
  using db::Column;
  using db::ValueType;
  std::vector<Column> columns = {
      {"jobid", ValueType::Int},      {"user", ValueType::Text},
      {"account", ValueType::Text},
      {"jobname", ValueType::Text},   {"exe", ValueType::Text},
      {"queue", ValueType::Text},     {"status", ValueType::Text},
      {"nodes", ValueType::Int},      {"wayness", ValueType::Int},
      {"submit", ValueType::Int},     {"start", ValueType::Int},
      {"end", ValueType::Int},        {"runtime", ValueType::Real},
      {"queue_wait", ValueType::Real}, {"node_hours", ValueType::Real},
      {"flags", ValueType::Text},
  };
  for (const auto& label : JobMetrics::labels()) {
    columns.push_back({label, ValueType::Real});
  }
  auto& table = database.create_table(kJobsTable, std::move(columns));
  table.create_index("exe");
  table.create_index("user");
  table.create_index("queue");
  return table;
}

db::RowId ingest_job(db::Table& jobs, const workload::AccountingRecord& acct,
                     const JobMetrics& metrics,
                     const std::vector<Flag>& flags) {
  const double runtime_s = util::to_seconds(acct.end_time - acct.start_time);
  const double wait_s = util::to_seconds(acct.start_time - acct.submit_time);
  db::Row row = {
      acct.jobid,
      acct.user,
      acct.account,
      acct.jobname,
      acct.exe,
      acct.queue,
      acct.status,
      acct.nodes,
      acct.wayness,
      acct.submit_time / util::kSecond,
      acct.start_time / util::kSecond,
      acct.end_time / util::kSecond,
      runtime_s,
      wait_s,
      runtime_s / 3600.0 * acct.nodes,
      flag_names(flags),
  };
  const auto values = metrics.as_map();
  for (const auto& label : JobMetrics::labels()) {
    const double v = values.at(label);
    if (std::isnan(v)) {
      row.emplace_back();  // NULL
    } else {
      row.emplace_back(v);
    }
  }
  return jobs.insert(std::move(row));
}

std::size_t ingest_from_archive(
    db::Database& database, const transport::RawArchive& archive,
    const std::vector<workload::AccountingRecord>& accounting) {
  auto& jobs = database.has_table(kJobsTable)
                   ? database.table(kJobsTable)
                   : create_jobs_table(database);
  std::size_t ingested = 0;
  for (const auto& acct : accounting) {
    const JobData data = extract_job(archive, acct);
    if (data.hosts.empty()) continue;
    const JobMetrics metrics = compute_metrics(data);
    const auto flags = evaluate_flags(acct, metrics);
    ingest_job(jobs, acct, metrics, flags);
    ++ingested;
  }
  return ingested;
}

namespace {

/// Per-worker staging area: series batches for one host, flushed to the
/// store in bulk whenever `staged_points` crosses the batch threshold.
struct Stage {
  std::vector<tsdb::SeriesBatch> batches;
  // (type, device, event) -> index into `batches`; tags are built once per
  // series here, not once per point.
  // Determinism audit (DT002): `index` is lookup-only (try_emplace) and
  // never iterated — output order comes from `batches`, which appends in
  // record order, i.e. the deterministic order of the parsed raw log.
  // The store then re-keys every batch under Shard::metrics (an ordered
  // std::map), so archive bytes never see this container's bucket order.
  std::unordered_map<std::string, std::size_t> index;
  std::size_t staged_points = 0;

  void flush(tsdb::Store& store) {
    if (staged_points == 0) return;
    store.put_batches(batches);
    for (auto& b : batches) b.points.clear();
    staged_points = 0;
  }
};

}  // namespace

TsdbIngestStats ingest_archive_tsdb(tsdb::Store& store,
                                    const transport::RawArchive& archive,
                                    util::ThreadPool* pool,
                                    const TsdbIngestOptions& options) {
  const auto hosts = archive.hosts();
  std::atomic<std::size_t> total_series{0};
  std::atomic<std::size_t> total_points{0};

  const auto load_host = [&](std::size_t hi) {
    const std::string& host = hosts[hi];
    const collect::HostLog log = archive.log(host);
    Stage stage;
    std::string key;
    for (const auto& rec : log.records) {
      for (const auto& block : rec.blocks) {
        const collect::Schema* schema = log.schema_for(block.type);
        if (schema == nullptr) continue;
        const std::size_t n =
            std::min(block.values.size(), schema->size());
        for (std::size_t i = 0; i < n; ++i) {
          const std::string& event = schema->entry(i).key;
          key.clear();
          key += block.type;
          key += '\1';
          key += block.device;
          key += '\1';
          key += event;
          auto [it, created] =
              stage.index.try_emplace(key, stage.batches.size());
          if (created) {
            tsdb::SeriesBatch batch;
            batch.metric =
                options.metric_prefix + '.' + block.type + '.' + event;
            batch.tags = {{"host", host},
                          {"type", block.type},
                          {"device", block.device},
                          {"event", event}};
            stage.batches.push_back(std::move(batch));
          }
          stage.batches[it->second].points.push_back(
              {rec.time, static_cast<double>(block.values[i])});
          ++stage.staged_points;
        }
      }
      if (stage.staged_points >= options.batch_points) {
        total_points.fetch_add(stage.staged_points,
                               std::memory_order_relaxed);
        stage.flush(store);
      }
    }
    total_points.fetch_add(stage.staged_points, std::memory_order_relaxed);
    stage.flush(store);
    total_series.fetch_add(stage.batches.size(), std::memory_order_relaxed);
  };

  if (pool != nullptr && hosts.size() > 1) {
    pool->parallel_for(hosts.size(), load_host);
  } else {
    for (std::size_t hi = 0; hi < hosts.size(); ++hi) load_host(hi);
  }
  if (options.seal) store.seal_all();

  TsdbIngestStats stats;
  stats.hosts = hosts.size();
  stats.series = total_series.load();
  stats.points = total_points.load();
  return stats;
}

}  // namespace tacc::pipeline
