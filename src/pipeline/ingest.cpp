#include "pipeline/ingest.hpp"

#include <atomic>
#include <cmath>
#include <exception>
#include <memory>
#include <span>
#include <thread>
#include <unordered_map>
#include <vector>

#include "collect/rawview.hpp"
#include "pipeline/pipeline_metrics.hpp"
#include "util/clock.hpp"
#include "util/ring_queue.hpp"

namespace tacc::pipeline {

db::Table& create_jobs_table(db::Database& database) {
  using db::Column;
  using db::ValueType;
  std::vector<Column> columns = {
      {"jobid", ValueType::Int},      {"user", ValueType::Text},
      {"account", ValueType::Text},
      {"jobname", ValueType::Text},   {"exe", ValueType::Text},
      {"queue", ValueType::Text},     {"status", ValueType::Text},
      {"nodes", ValueType::Int},      {"wayness", ValueType::Int},
      {"submit", ValueType::Int},     {"start", ValueType::Int},
      {"end", ValueType::Int},        {"runtime", ValueType::Real},
      {"queue_wait", ValueType::Real}, {"node_hours", ValueType::Real},
      {"flags", ValueType::Text},
  };
  for (const auto& label : JobMetrics::labels()) {
    columns.push_back({label, ValueType::Real});
  }
  auto& table = database.create_table(kJobsTable, std::move(columns));
  table.create_index("exe");
  table.create_index("user");
  table.create_index("queue");
  return table;
}

db::RowId ingest_job(db::Table& jobs, const workload::AccountingRecord& acct,
                     const JobMetrics& metrics,
                     const std::vector<Flag>& flags) {
  const double runtime_s = util::to_seconds(acct.end_time - acct.start_time);
  const double wait_s = util::to_seconds(acct.start_time - acct.submit_time);
  db::Row row = {
      acct.jobid,
      acct.user,
      acct.account,
      acct.jobname,
      acct.exe,
      acct.queue,
      acct.status,
      acct.nodes,
      acct.wayness,
      acct.submit_time / util::kSecond,
      acct.start_time / util::kSecond,
      acct.end_time / util::kSecond,
      runtime_s,
      wait_s,
      runtime_s / 3600.0 * acct.nodes,
      flag_names(flags),
  };
  const auto values = metrics.as_map();
  for (const auto& label : JobMetrics::labels()) {
    const double v = values.at(label);
    if (std::isnan(v)) {
      row.emplace_back();  // NULL
    } else {
      row.emplace_back(v);
    }
  }
  return jobs.insert(std::move(row));
}

std::size_t ingest_from_archive(
    db::Database& database, const transport::RawArchive& archive,
    const std::vector<workload::AccountingRecord>& accounting) {
  auto& jobs = database.has_table(kJobsTable)
                   ? database.table(kJobsTable)
                   : create_jobs_table(database);
  std::size_t ingested = 0;
  for (const auto& acct : accounting) {
    const JobData data = extract_job(archive, acct);
    if (data.hosts.empty()) continue;
    const JobMetrics metrics = compute_metrics(data);
    const auto flags = evaluate_flags(acct, metrics);
    ingest_job(jobs, acct, metrics, flags);
    ++ingested;
  }
  return ingested;
}

namespace {

constexpr std::uint32_t kNoBatch = 0xffffffffu;

/// Per-producer staging area: series batches for one host, flushed to the
/// store (or handed to a put stage) whenever `staged_points` crosses the
/// batch threshold.
struct Stage {
  std::vector<tsdb::SeriesBatch> batches;
  // (type \1 device) -> per-event batch slots: slot i holds the batch
  // index for schema event i, kNoBatch until its first point. One hash
  // lookup per data row instead of one per point.
  // Determinism audit (DT002): `index` is lookup-only (find/emplace) and
  // never iterated — output order comes from `batches`, which appends in
  // first-point order, i.e. the deterministic order of the parsed raw
  // log. The store then re-keys every batch under Shard::metrics (an
  // ordered std::map), so archive bytes never see this container's bucket
  // order.
  std::unordered_map<std::string, std::vector<std::uint32_t>> index;
  std::size_t staged_points = 0;
  std::string key;  // reused lookup scratch

  void flush(tsdb::Store& store) {
    if (staged_points == 0) return;
    store.put_batches(batches);
    for (auto& b : batches) b.points.clear();
    staged_points = 0;
  }
};

/// Stages every (event, value) of one data block. `values` beyond the
/// schema arity are ignored; missing trailing values stage nothing (so a
/// series is only ever created by an actual point).
void stage_block(Stage& stage, std::string_view host,
                 const TsdbIngestOptions& options, std::string_view type,
                 std::string_view device, const collect::Schema& schema,
                 std::span<const std::uint64_t> values, util::SimTime time) {
  const std::size_t n = std::min(values.size(), schema.size());
  if (n == 0) return;
  std::string& key = stage.key;
  key.assign(type);
  key += '\1';
  key += device;
  auto it = stage.index.find(key);
  if (it == stage.index.end()) {
    it = stage.index
             .emplace(key, std::vector<std::uint32_t>(schema.size(), kNoBatch))
             .first;
  }
  std::vector<std::uint32_t>& slots = it->second;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint32_t b = slots[i];
    if (b == kNoBatch) {
      const std::string& event = schema.entry(i).key;
      tsdb::SeriesBatch batch;
      batch.metric.reserve(options.metric_prefix.size() + type.size() +
                           event.size() + 2);
      batch.metric += options.metric_prefix;
      batch.metric += '.';
      batch.metric += type;
      batch.metric += '.';
      batch.metric += event;
      batch.tags = {{"host", std::string(host)},
                    {"type", std::string(type)},
                    {"device", std::string(device)},
                    {"event", event}};
      b = static_cast<std::uint32_t>(stage.batches.size());
      stage.batches.push_back(std::move(batch));
      slots[i] = b;
    }
    stage.batches[b].points.push_back(
        {time, static_cast<double>(values[i])});
    ++stage.staged_points;
  }
}

using BatchGroup = std::vector<tsdb::SeriesBatch>;

/// Moves a stage's non-empty batches into a self-contained group (metric
/// and tags copied, points moved), leaving the stage primed for reuse.
BatchGroup make_group(Stage& stage) {
  BatchGroup group;
  for (auto& b : stage.batches) {
    if (b.points.empty()) continue;
    group.push_back(tsdb::SeriesBatch{b.metric, b.tags, std::move(b.points)});
    b.points.clear();
  }
  stage.staged_points = 0;
  return group;
}

/// The put side of the pipeline. With zero threads, emit() flushes the
/// stage to the store inline; with N >= 1, emit() round-robins batch
/// groups onto N SPSC ring queues, each drained by a consumer thread
/// calling Store::put_batches, so building the next batches overlaps
/// store insertion. A consumer that throws keeps draining (so the
/// producer can never block forever on a full queue) and finish()
/// rethrows the first error after join.
class PutStage {
 public:
  PutStage(tsdb::Store& store, const TsdbIngestOptions& options,
           PipelineMetrics* metrics, std::size_t threads)
      : store_(store), metrics_(metrics) {
    errors_.resize(threads);
    queues_.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) {
      queues_.push_back(
          std::make_unique<util::RingQueue<BatchGroup>>(options.queue_depth));
    }
    consumers_.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) {
      consumers_.emplace_back([this, t] { run_consumer(t); });
    }
  }

  ~PutStage() {
    // Unwind path (producer threw before finish()): release the
    // consumers, which drain and exit; errors are dropped in favor of the
    // in-flight exception.
    for (auto& q : queues_) q->close();
    for (auto& c : consumers_) {
      if (c.joinable()) c.join();
    }
  }

  /// Flushes or enqueues the stage's staged points (no-op when empty).
  void emit(Stage& stage) {
    if (queues_.empty()) {
      if (stage.staged_points == 0) return;
      if (metrics_ != nullptr) {
        util::WallTimer timer;
        stage.flush(store_);
        const auto ns = static_cast<std::uint64_t>(timer.elapsed_ns());
        metrics_->add_put_time_ns(ns);
        metrics_->add_batches(1);
        emit_ns_ += ns;
      } else {
        stage.flush(store_);
      }
      return;
    }
    BatchGroup group = make_group(stage);
    if (group.empty()) return;
    util::RingQueue<BatchGroup>& q = *queues_[next_++ % queues_.size()];
    if (!q.try_push(std::move(group))) {
      if (metrics_ != nullptr) {
        util::WallTimer timer;
        q.push(std::move(group));
        const auto ns = static_cast<std::uint64_t>(timer.elapsed_ns());
        metrics_->add_queue_wait_ns(ns);
        emit_ns_ += ns;
      } else {
        q.push(std::move(group));
      }
    }
    if (metrics_ != nullptr) metrics_->add_batches(1);
  }

  /// Closes the queues, joins the consumers, and rethrows the first
  /// consumer error (if any). Call exactly once when done producing.
  void finish() {
    for (auto& q : queues_) q->close();
    for (auto& c : consumers_) c.join();
    consumers_.clear();
    queues_.clear();
    for (auto& e : errors_) {
      if (e) std::rethrow_exception(e);
    }
  }

  /// Producer-side nanoseconds spent inside emit() waiting on the store
  /// or the queues (only tracked when metrics are on). Lets callers
  /// compute pure build time as wall time minus this.
  std::uint64_t emit_ns() const noexcept { return emit_ns_; }

 private:
  void run_consumer(std::size_t t) {
    util::RingQueue<BatchGroup>& q = *queues_[t];
    BatchGroup group;
    for (;;) {
      bool got;
      if (metrics_ != nullptr) {
        util::WallTimer timer;
        got = q.pop(group);
        metrics_->add_queue_wait_ns(
            static_cast<std::uint64_t>(timer.elapsed_ns()));
      } else {
        got = q.pop(group);
      }
      if (!got) return;
      if (errors_[t]) {
        group.clear();  // drain mode after a failure
        continue;
      }
      try {
        if (metrics_ != nullptr) {
          util::WallTimer timer;
          store_.put_batches(group);
          metrics_->add_put_time_ns(
              static_cast<std::uint64_t>(timer.elapsed_ns()));
        } else {
          store_.put_batches(group);
        }
      } catch (...) {
        errors_[t] = std::current_exception();
      }
    }
  }

  tsdb::Store& store_;
  PipelineMetrics* metrics_;
  std::vector<std::unique_ptr<util::RingQueue<BatchGroup>>> queues_;
  std::vector<std::thread> consumers_;
  std::vector<std::exception_ptr> errors_;  // slot t owned by consumer t
  std::size_t next_ = 0;                    // round-robin cursor
  std::uint64_t emit_ns_ = 0;
};

}  // namespace

TsdbIngestStats ingest_archive_tsdb(tsdb::Store& store,
                                    const transport::RawArchive& archive,
                                    util::ThreadPool* pool,
                                    const TsdbIngestOptions& options) {
  const auto hosts = archive.hosts();
  PipelineMetrics* metrics =
      options.metrics != nullptr ? options.metrics : profile_metrics();
  std::atomic<std::size_t> total_series{0};
  std::atomic<std::size_t> total_points{0};

  const auto build_log = [&](const collect::HostLog& log,
                             const std::string& host, PutStage& put) {
    util::WallTimer host_timer;
    const std::uint64_t emit_ns0 = put.emit_ns();
    Stage stage;
    std::size_t host_points = 0;
    // One-entry schema memo: a record's blocks run through devices of the
    // same type back to back, so the indexed lookup is rarely needed.
    std::string_view memo_type;
    const collect::Schema* memo_schema = nullptr;
    bool have_memo = false;
    for (const auto& rec : log.records) {
      for (const auto& block : rec.blocks) {
        const collect::Schema* schema;
        if (have_memo && block.type == memo_type) {
          schema = memo_schema;
        } else {
          schema = log.schema_for(block.type);
          memo_type = block.type;
          memo_schema = schema;
          have_memo = true;
        }
        if (schema == nullptr) continue;
        stage_block(stage, host, options, block.type, block.device, *schema,
                    block.values, rec.time);
      }
      if (stage.staged_points >= options.batch_points) {
        host_points += stage.staged_points;
        put.emit(stage);
      }
    }
    host_points += stage.staged_points;
    put.emit(stage);
    total_points.fetch_add(host_points, std::memory_order_relaxed);
    total_series.fetch_add(stage.batches.size(), std::memory_order_relaxed);
    if (metrics != nullptr) {
      metrics->add_records(log.records.size());
      metrics->add_points(host_points);
      const auto total_ns = static_cast<std::uint64_t>(host_timer.elapsed_ns());
      const std::uint64_t emit_ns = put.emit_ns() - emit_ns0;
      metrics->add_build_time_ns(total_ns > emit_ns ? total_ns - emit_ns : 0);
    }
  };

  if (pool != nullptr && hosts.size() > 1) {
    // Parallel: workers already overlap store puts with each other, so
    // each takes a snapshot copy (no archive lock held while putting) and
    // flushes inline.
    pool->parallel_for(hosts.size(), [&](std::size_t hi) {
      const collect::HostLog log = archive.log(hosts[hi]);
      PutStage put(store, options, metrics, 0);
      build_log(log, hosts[hi], put);
    });
  } else {
    // Serial: read each host's log in place under the archive lock (no
    // deep copy). With stage_threads > 0 the store puts happen on the
    // consumer threads, outside the archive lock.
    PutStage put(store, options, metrics, options.stage_threads);
    for (const auto& host : hosts) {
      archive.visit_log(host, [&](const collect::HostLog& log) {
        build_log(log, host, put);
      });
    }
    put.finish();
  }
  if (options.seal) store.seal_all();
  if (options.flush) store.flush();

  TsdbIngestStats stats;
  stats.hosts = hosts.size();
  stats.series = total_series.load();
  stats.points = total_points.load();
  return stats;
}

TsdbIngestStats ingest_text_tsdb(tsdb::Store& store, std::string_view text,
                                 const TsdbIngestOptions& options) {
  PipelineMetrics* metrics =
      options.metrics != nullptr ? options.metrics : profile_metrics();
  collect::HostLog header;
  const std::size_t body_start = header.parse_header(text);

  collect::RecordViewParser parser(
      collect::RecordViewParser::Options{options.scan, options.arena_chunk});
  PutStage put(store, options, metrics, options.stage_threads);
  Stage stage;
  std::size_t points = 0;

  struct TextSink {
    Stage& stage;
    PutStage& put;
    const TsdbIngestOptions& options;
    const std::string& host;
    std::size_t& points;
    util::SimTime time = 0;

    void record(const collect::RecordView& r) {
      if (stage.staged_points >= options.batch_points) {
        points += stage.staged_points;
        put.emit(stage);
      }
      time = r.time;
    }
    void block(const collect::RawBlockView& b) {
      stage_block(stage, host, options, b.type, b.device, *b.schema,
                  b.values, time);
    }
  } sink{stage, put, options, header.hostname, points};

  util::WallTimer parse_timer;
  const std::uint64_t emit_ns0 = put.emit_ns();
  const auto body = parser.parse_body(header, text.substr(body_start), sink);
  points += stage.staged_points;
  put.emit(stage);
  // Snapshot the parse/build clock before finish(): the join wait is the
  // consumers catching up, not producer time.
  const auto total_ns = static_cast<std::uint64_t>(parse_timer.elapsed_ns());
  const std::uint64_t emit_ns = put.emit_ns() - emit_ns0;
  put.finish();
  if (options.seal) store.seal_all();
  if (options.flush) store.flush();

  if (metrics != nullptr) {
    metrics->add_bytes_read(body.bytes);
    metrics->add_lines(body.lines);
    metrics->add_records(body.records);
    metrics->add_points(points);
    metrics->add_arena_resizes(body.arena_resizes);
    metrics->add_allocations(body.allocations);
    metrics->add_parse_time_ns(total_ns > emit_ns ? total_ns - emit_ns : 0);
  }

  TsdbIngestStats stats;
  stats.hosts = 1;
  stats.series = stage.batches.size();
  stats.points = points;
  return stats;
}

}  // namespace tacc::pipeline
