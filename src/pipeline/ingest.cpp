#include "pipeline/ingest.hpp"

#include <cmath>

namespace tacc::pipeline {

db::Table& create_jobs_table(db::Database& database) {
  using db::Column;
  using db::ValueType;
  std::vector<Column> columns = {
      {"jobid", ValueType::Int},      {"user", ValueType::Text},
      {"account", ValueType::Text},
      {"jobname", ValueType::Text},   {"exe", ValueType::Text},
      {"queue", ValueType::Text},     {"status", ValueType::Text},
      {"nodes", ValueType::Int},      {"wayness", ValueType::Int},
      {"submit", ValueType::Int},     {"start", ValueType::Int},
      {"end", ValueType::Int},        {"runtime", ValueType::Real},
      {"queue_wait", ValueType::Real}, {"node_hours", ValueType::Real},
      {"flags", ValueType::Text},
  };
  for (const auto& label : JobMetrics::labels()) {
    columns.push_back({label, ValueType::Real});
  }
  auto& table = database.create_table(kJobsTable, std::move(columns));
  table.create_index("exe");
  table.create_index("user");
  table.create_index("queue");
  return table;
}

db::RowId ingest_job(db::Table& jobs, const workload::AccountingRecord& acct,
                     const JobMetrics& metrics,
                     const std::vector<Flag>& flags) {
  const double runtime_s = util::to_seconds(acct.end_time - acct.start_time);
  const double wait_s = util::to_seconds(acct.start_time - acct.submit_time);
  db::Row row = {
      acct.jobid,
      acct.user,
      acct.account,
      acct.jobname,
      acct.exe,
      acct.queue,
      acct.status,
      acct.nodes,
      acct.wayness,
      acct.submit_time / util::kSecond,
      acct.start_time / util::kSecond,
      acct.end_time / util::kSecond,
      runtime_s,
      wait_s,
      runtime_s / 3600.0 * acct.nodes,
      flag_names(flags),
  };
  const auto values = metrics.as_map();
  for (const auto& label : JobMetrics::labels()) {
    const double v = values.at(label);
    if (std::isnan(v)) {
      row.emplace_back();  // NULL
    } else {
      row.emplace_back(v);
    }
  }
  return jobs.insert(std::move(row));
}

std::size_t ingest_from_archive(
    db::Database& database, const transport::RawArchive& archive,
    const std::vector<workload::AccountingRecord>& accounting) {
  auto& jobs = database.has_table(kJobsTable)
                   ? database.table(kJobsTable)
                   : create_jobs_table(database);
  std::size_t ingested = 0;
  for (const auto& acct : accounting) {
    const JobData data = extract_job(archive, acct);
    if (data.hosts.empty()) continue;
    const JobMetrics metrics = compute_metrics(data);
    const auto flags = evaluate_flags(acct, metrics);
    ingest_job(jobs, acct, metrics, flags);
    ++ingested;
  }
  return ingested;
}

}  // namespace tacc::pipeline
