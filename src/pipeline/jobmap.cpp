#include "pipeline/jobmap.hpp"

#include <algorithm>

namespace tacc::pipeline {
namespace {

HostSeries slice_log(const collect::HostLog& log, long jobid) {
  HostSeries series;
  series.hostname = log.hostname;
  series.arch = log.arch;
  series.schemas = log.schemas;
  for (const auto& record : log.records) {
    if (std::find(record.jobids.begin(), record.jobids.end(), jobid) !=
        record.jobids.end()) {
      series.records.push_back(record);
    }
  }
  std::sort(series.records.begin(), series.records.end(),
            [](const collect::Record& a, const collect::Record& b) {
              return a.time < b.time;
            });
  return series;
}

}  // namespace

JobData extract_job(const transport::RawArchive& archive,
                    const workload::AccountingRecord& acct) {
  JobData data;
  data.acct = acct;
  for (const auto& hostname : acct.hostnames) {
    auto series = slice_log(archive.log(hostname), acct.jobid);
    if (!series.records.empty()) data.hosts.push_back(std::move(series));
  }
  return data;
}

JobData extract_job(const std::vector<collect::HostLog>& logs,
                    const workload::AccountingRecord& acct) {
  JobData data;
  data.acct = acct;
  for (const auto& log : logs) {
    if (std::find(acct.hostnames.begin(), acct.hostnames.end(),
                  log.hostname) == acct.hostnames.end()) {
      continue;
    }
    auto series = slice_log(log, acct.jobid);
    if (!series.records.empty()) data.hosts.push_back(std::move(series));
  }
  return data;
}

}  // namespace tacc::pipeline
