#include "pipeline/minisim.hpp"

#include <mutex>

#include "collect/registry.hpp"
#include "pipeline/ingest.hpp"
#include "util/thread_pool.hpp"
#include "workload/engine.hpp"

namespace tacc::pipeline {

JobData simulate_job(const workload::JobSpec& spec,
                     const MiniSimOptions& options) {
  const auto& profile = workload::find_profile(spec.profile);

  simhw::ClusterConfig cc;
  cc.num_nodes = spec.nodes;
  cc.uarch = options.uarch;
  cc.topology.sockets = options.sockets;
  cc.topology.cores_per_socket = options.cores_per_socket;
  cc.topology.hyperthreading = options.hyperthreading;
  cc.mem_total_kb = options.mem_total_kb;
  cc.phi_fraction = profile.mic_util > 0.0 ? 1.0 : 0.0;
  simhw::Cluster cluster(cc);

  workload::Engine engine(cluster, spec.start_time);
  std::vector<std::size_t> node_indices(static_cast<std::size_t>(spec.nodes));
  for (std::size_t i = 0; i < node_indices.size(); ++i) node_indices[i] = i;
  engine.start_job(spec, node_indices);

  collect::BuildOptions build;
  build.with_phi = profile.mic_util > 0.0;
  std::vector<collect::HostSampler> samplers;
  std::vector<collect::HostLog> logs;
  samplers.reserve(cluster.size());
  logs.reserve(cluster.size());
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    samplers.emplace_back(cluster.node(i), build);
    logs.push_back(samplers.back().make_log());
  }

  auto sample_all = [&](util::SimTime t, const std::string& mark) {
    for (std::size_t i = 0; i < samplers.size(); ++i) {
      logs[i].records.push_back(samplers[i].sample(t, {spec.jobid}, mark));
    }
  };

  // Prolog collection, interior samples, epilog collection.
  sample_all(spec.start_time, "begin");
  const int steps = std::max(1, options.samples + 1);
  const util::SimTime interval = spec.runtime() / steps;
  util::SimTime t = spec.start_time;
  for (int s = 0; s < steps - 1; ++s) {
    engine.advance(interval);
    t += interval;
    sample_all(t, {});
  }
  engine.advance(spec.end_time - t);
  engine.end_job(spec.jobid);
  sample_all(spec.end_time, "end");

  std::vector<std::string> hostnames;
  hostnames.reserve(cluster.size());
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    hostnames.push_back(cluster.node(i).hostname());
  }
  return extract_job(logs, workload::to_accounting(spec, hostnames));
}

std::size_t ingest_population(db::Database& database,
                              const std::vector<workload::JobSpec>& jobs,
                              const MiniSimOptions& options,
                              std::size_t threads) {
  auto& table = database.has_table(kJobsTable)
                    ? database.table(kJobsTable)
                    : create_jobs_table(database);
  std::mutex mu;
  std::size_t ingested = 0;
  util::ThreadPool pool(threads);
  pool.parallel_for(jobs.size(), [&](std::size_t i) {
    const JobData data = simulate_job(jobs[i], options);
    if (data.hosts.empty()) return;
    const JobMetrics metrics = compute_metrics(data);
    const auto flags = evaluate_flags(data.acct, metrics);
    std::lock_guard lock(mu);
    ingest_job(table, data.acct, metrics, flags);
    ++ingested;
  });
  return ingested;
}

}  // namespace tacc::pipeline
