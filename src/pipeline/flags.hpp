// Flag rules (paper section V-A): every job's metrics are tested against
// thresholds chosen with system administrators and consultants; flagged
// jobs appear in a sublist of every portal search and in the daily report.
#pragma once

#include <string>
#include <vector>

#include "pipeline/metrics.hpp"
#include "workload/jobs.hpp"

namespace tacc::pipeline {

struct Flag {
  std::string name;    // rule key, e.g. "high_metadata_rate"
  std::string detail;  // human-readable explanation with the offending value
};

struct FlagThresholds {
  double metadata_rate = 10000.0;   // reqs/s node-summed peak
  double gige_mb_s = 1.0;           // Ethernet MPI suspicion
  double largemem_min_gb = 64.0;    // minimum justified use of a 1 TB node
  double idle_ratio = 0.15;         // min/max node CPU_Usage
  double catastrophe_ratio = 0.25;  // min/max interval CPU usage
  double ramp_ratio = 0.30;         // first/peak interval CPU usage
  double tail_ratio = 0.30;         // last/peak interval CPU usage
  double high_cpi = 3.0;            // cycles per instruction
  double low_vec = 0.01;            // VecPercent considered unvectorized
};

/// Evaluates every rule; returns the flags that fired (possibly empty).
std::vector<Flag> evaluate_flags(const workload::AccountingRecord& acct,
                                 const JobMetrics& metrics,
                                 const FlagThresholds& thresholds = {});

/// Joins flag names with commas (the DB column form).
std::string flag_names(const std::vector<Flag>& flags);

}  // namespace tacc::pipeline
