#include "pipeline/metrics.hpp"

#include <algorithm>
#include <optional>

#include "simhw/arch.hpp"
#include "util/stats.hpp"

namespace tacc::pipeline {
namespace {

constexpr double kMB = 1.0e6;
constexpr double kGB1024 = 1024.0 * 1024.0;  // kB -> GB divisor

/// Per-host access layer: organizes a HostSeries into (type, device) value
/// matrices and produces wrap-corrected, scale-applied interval deltas.
class HostExtract {
 public:
  explicit HostExtract(const HostSeries& series) : series_(&series) {
    const std::size_t n = series.records.size();
    times_.reserve(n);
    for (std::size_t r = 0; r < n; ++r) {
      const auto& rec = series.records[r];
      times_.push_back(util::to_seconds(rec.time));
      for (const auto& block : rec.blocks) {
        auto& dev = data_[block.type][block.device];
        dev.resize(n);  // missing records stay empty
        dev[r] = block.values;
      }
    }
  }

  std::size_t num_records() const noexcept { return times_.size(); }
  double elapsed() const noexcept {
    return times_.size() >= 2 ? times_.back() - times_.front() : 0.0;
  }
  double interval_dt(std::size_t i) const noexcept {
    return times_[i + 1] - times_[i];
  }
  std::size_t num_intervals() const noexcept {
    return times_.size() >= 2 ? times_.size() - 1 : 0;
  }

  bool has_type(const std::string& type) const noexcept {
    return data_.count(type) > 0;
  }

  int num_devices(const std::string& type) const noexcept {
    const auto it = data_.find(type);
    return it == data_.end() ? 0 : static_cast<int>(it->second.size());
  }

  /// The schema for a type (from the host header), or nullptr.
  const collect::Schema* schema(const std::string& type) const noexcept {
    for (const auto& s : series_->schemas) {
      if (s.type() == type) return &s;
    }
    return nullptr;
  }

  /// Per-interval delta of (type, key) summed over devices, wrap-corrected
  /// per device and scaled to canonical units. nullopt if the type or key
  /// is absent on this host.
  std::optional<std::vector<double>> interval_deltas(
      const std::string& type, const std::string& key) const {
    const collect::Schema* sch = schema(type);
    if (sch == nullptr) return std::nullopt;
    const auto idx = sch->index_of(key);
    if (!idx) return std::nullopt;
    const auto tit = data_.find(type);
    if (tit == data_.end()) return std::nullopt;
    const auto& entry = sch->entry(*idx);
    std::vector<double> out(num_intervals(), 0.0);
    for (const auto& [device, values] : tit->second) {
      for (std::size_t i = 0; i + 1 < values.size(); ++i) {
        if (values[i].empty() || values[i + 1].empty()) continue;
        const std::uint64_t delta = collect::wrap_delta(
            values[i][*idx], values[i + 1][*idx], entry.width_bits);
        out[i] += static_cast<double>(delta) * entry.scale;
      }
    }
    return out;
  }

  /// Total delta over the job (sum of interval deltas).
  std::optional<double> total_delta(const std::string& type,
                                    const std::string& key) const {
    const auto deltas = interval_deltas(type, key);
    if (!deltas) return std::nullopt;
    double sum = 0.0;
    for (const double d : *deltas) sum += d;
    return sum;
  }

  /// Average rate over the job (total delta / elapsed).
  std::optional<double> rate(const std::string& type,
                             const std::string& key) const {
    if (elapsed() <= 0.0) return std::nullopt;
    const auto total = total_delta(type, key);
    if (!total) return std::nullopt;
    return *total / elapsed();
  }

  /// Gauge value of (type, key) summed over devices, per record.
  std::optional<std::vector<double>> gauge_series(
      const std::string& type, const std::string& key) const {
    const collect::Schema* sch = schema(type);
    if (sch == nullptr) return std::nullopt;
    const auto idx = sch->index_of(key);
    if (!idx) return std::nullopt;
    const auto tit = data_.find(type);
    if (tit == data_.end()) return std::nullopt;
    const auto& entry = sch->entry(*idx);
    std::vector<double> out(num_records(), 0.0);
    for (const auto& [device, values] : tit->second) {
      for (std::size_t r = 0; r < values.size(); ++r) {
        if (values[r].empty()) continue;
        out[r] += static_cast<double>(values[r][*idx]) * entry.scale;
      }
    }
    return out;
  }

  /// The PMC schema type for this host (the schema carrying the fixed
  /// "instructions" counter), or empty.
  std::string pmc_type() const {
    for (const auto& s : series_->schemas) {
      if (s.index_of("instructions") && s.index_of("cycles")) {
        return s.type();
      }
    }
    return {};
  }

  /// Vector width (doubles per vector instruction) from the arch codename.
  double vector_width() const {
    for (const auto uarch : simhw::all_microarchs()) {
      const auto& spec = simhw::arch_spec(uarch);
      if (spec.codename == series_->arch) {
        return static_cast<double>(spec.vector_width_doubles);
      }
    }
    return 2.0;  // conservative SSE default
  }

 private:
  const HostSeries* series_;
  std::vector<double> times_;
  // type -> device -> per-record value row (empty row = block missing).
  std::map<std::string, std::map<std::string, std::vector<
      std::vector<std::uint64_t>>>> data_;
};

double mean_of(const std::vector<double>& xs) {
  return util::mean(std::span<const double>(xs.data(), xs.size()));
}

/// Average-rate metric: per-host rate (optionally per device), averaged
/// over hosts. NaN if no host carries the counter.
double avg_rate(const std::vector<HostExtract>& hosts,
                const std::string& type, const std::string& key,
                bool per_device = false) {
  std::vector<double> rates;
  for (const auto& h : hosts) {
    auto r = h.rate(type, key);
    if (!r) continue;
    const int nd = per_device ? std::max(1, h.num_devices(type)) : 1;
    rates.push_back(*r / nd);
  }
  return rates.empty() ? nan("") : mean_of(rates);
}

/// Maximum metric: per-interval deltas summed across hosts, divided by the
/// interval, maximum over intervals. Hosts are index-aligned (synchronized
/// sampling); the shortest host bounds the interval count.
double max_rate(const std::vector<HostExtract>& hosts,
                const std::string& type, const std::string& key) {
  std::vector<std::vector<double>> all;
  std::size_t n = SIZE_MAX;
  const HostExtract* timing = nullptr;
  for (const auto& h : hosts) {
    auto d = h.interval_deltas(type, key);
    if (!d || d->empty()) continue;
    n = std::min(n, d->size());
    all.push_back(std::move(*d));
    if (timing == nullptr) timing = &h;
  }
  if (all.empty() || n == SIZE_MAX || n == 0) return nan("");
  double best = 0.0;
  bool any = false;
  for (std::size_t i = 0; i < n; ++i) {
    double sum = 0.0;
    for (const auto& d : all) sum += d[i];
    const double dt = timing->interval_dt(i);
    if (dt <= 0.0) continue;
    best = std::max(best, sum / dt);
    any = true;
  }
  return any ? best : nan("");
}

/// Sum of two optional rates with NaN propagation rules of avg_rate.
double avg_rate2(const std::vector<HostExtract>& hosts,
                 const std::string& type, const std::string& key1,
                 const std::string& key2, bool per_device = false) {
  std::vector<double> rates;
  for (const auto& h : hosts) {
    const auto a = h.rate(type, key1);
    const auto b = h.rate(type, key2);
    if (!a || !b) continue;
    const int nd = per_device ? std::max(1, h.num_devices(type)) : 1;
    rates.push_back((*a + *b) / nd);
  }
  return rates.empty() ? nan("") : mean_of(rates);
}

}  // namespace

const std::vector<std::string>& JobMetrics::labels() {
  static const std::vector<std::string> all = {
      "MetaDataRate", "MDCReqs", "OSCReqs", "MDCWait", "OSCWait",
      "LLiteOpenClose", "LnetAveBW", "LnetMaxBW", "InternodeIBAveBW",
      "InternodeIBMaxBW", "Packetsize", "Packetrate", "GigEBW", "Load_All",
      "Load_L1Hits", "Load_L2Hits", "Load_LLCHits", "cpi", "cpld", "flops",
      "VecPercent", "mbw", "PkgWatts", "CoreWatts", "DramWatts", "MemUsage",
      "MemHWM", "CPU_Usage", "idle", "catastrophe", "RampUp", "TailDrop",
      "MIC_Usage"};
  return all;
}

std::map<std::string, double> JobMetrics::as_map() const {
  return {{"MetaDataRate", MetaDataRate},
          {"MDCReqs", MDCReqs},
          {"OSCReqs", OSCReqs},
          {"MDCWait", MDCWait},
          {"OSCWait", OSCWait},
          {"LLiteOpenClose", LLiteOpenClose},
          {"LnetAveBW", LnetAveBW},
          {"LnetMaxBW", LnetMaxBW},
          {"InternodeIBAveBW", InternodeIBAveBW},
          {"InternodeIBMaxBW", InternodeIBMaxBW},
          {"Packetsize", Packetsize},
          {"Packetrate", Packetrate},
          {"GigEBW", GigEBW},
          {"Load_All", Load_All},
          {"Load_L1Hits", Load_L1Hits},
          {"Load_L2Hits", Load_L2Hits},
          {"Load_LLCHits", Load_LLCHits},
          {"cpi", cpi},
          {"cpld", cpld},
          {"flops", flops},
          {"VecPercent", VecPercent},
          {"mbw", mbw},
          {"PkgWatts", PkgWatts},
          {"CoreWatts", CoreWatts},
          {"DramWatts", DramWatts},
          {"MemUsage", MemUsage},
          {"MemHWM", MemHWM},
          {"CPU_Usage", CPU_Usage},
          {"idle", idle},
          {"catastrophe", catastrophe},
          {"RampUp", RampUp},
          {"TailDrop", TailDrop},
          {"MIC_Usage", MIC_Usage}};
}

JobMetrics compute_metrics(const JobData& data) {
  JobMetrics m;
  std::vector<HostExtract> hosts;
  hosts.reserve(data.hosts.size());
  for (const auto& hs : data.hosts) {
    HostExtract h(hs);
    if (h.num_records() >= 2 && h.elapsed() > 0.0) {
      hosts.push_back(std::move(h));
    }
  }
  if (hosts.empty()) return m;

  // ---- Lustre ---------------------------------------------------------
  m.MetaDataRate = max_rate(hosts, "mdc", "reqs");
  m.MDCReqs = avg_rate(hosts, "mdc", "reqs");
  m.OSCReqs = avg_rate(hosts, "osc", "reqs");
  // Wait metrics: average time per request = wait rate / request rate.
  {
    std::vector<double> mdw, osw;
    for (const auto& h : hosts) {
      const auto wr = h.rate("mdc", "wait");
      const auto rr = h.rate("mdc", "reqs");
      if (wr && rr && *rr > 0.0) mdw.push_back(*wr / *rr);
      const auto wo = h.rate("osc", "wait");
      const auto ro = h.rate("osc", "reqs");
      if (wo && ro && *ro > 0.0) osw.push_back(*wo / *ro);
    }
    if (!mdw.empty()) m.MDCWait = mean_of(mdw);
    if (!osw.empty()) m.OSCWait = mean_of(osw);
  }
  m.LLiteOpenClose = avg_rate2(hosts, "llite", "open", "close");
  {
    const double ave = avg_rate2(hosts, "lnet", "tx_bytes", "rx_bytes");
    m.LnetAveBW = std::isnan(ave) ? ave : ave / kMB;
    const double tx = max_rate(hosts, "lnet", "tx_bytes");
    const double rx = max_rate(hosts, "lnet", "rx_bytes");
    if (!std::isnan(tx) && !std::isnan(rx)) m.LnetMaxBW = (tx + rx) / kMB;
  }

  // ---- Network --------------------------------------------------------
  {
    std::vector<double> mpi;
    for (const auto& h : hosts) {
      const auto ib_rx = h.rate("ib", "port_rcv_data");
      const auto ib_tx = h.rate("ib", "port_xmit_data");
      if (!ib_rx || !ib_tx) continue;
      const auto ln_tx = h.rate("lnet", "tx_bytes");
      const auto ln_rx = h.rate("lnet", "rx_bytes");
      const double lnet = (ln_tx ? *ln_tx : 0.0) + (ln_rx ? *ln_rx : 0.0);
      mpi.push_back(std::max(0.0, *ib_rx + *ib_tx - lnet));
    }
    if (!mpi.empty()) m.InternodeIBAveBW = mean_of(mpi) / kMB;
    const double ib_max = max_rate(hosts, "ib", "port_rcv_data");
    const double ib_max_tx = max_rate(hosts, "ib", "port_xmit_data");
    const double ln_max = max_rate(hosts, "lnet", "tx_bytes");
    const double ln_max_rx = max_rate(hosts, "lnet", "rx_bytes");
    if (!std::isnan(ib_max) && !std::isnan(ib_max_tx)) {
      double lnet = 0.0;
      if (!std::isnan(ln_max)) lnet += ln_max;
      if (!std::isnan(ln_max_rx)) lnet += ln_max_rx;
      m.InternodeIBMaxBW = std::max(0.0, ib_max + ib_max_tx - lnet) / kMB;
    }
    // Packet size/rate: totals over the whole job across hosts.
    double bytes = 0.0, packets = 0.0, rate_sum = 0.0;
    int nr = 0;
    for (const auto& h : hosts) {
      const auto rb = h.total_delta("ib", "port_rcv_data");
      const auto tb = h.total_delta("ib", "port_xmit_data");
      const auto rp = h.total_delta("ib", "port_rcv_pkts");
      const auto tp = h.total_delta("ib", "port_xmit_pkts");
      if (!rb || !tb || !rp || !tp) continue;
      bytes += *rb + *tb;
      packets += *rp + *tp;
      rate_sum += (*rp + *tp) / h.elapsed();
      ++nr;
    }
    if (packets > 0.0) m.Packetsize = bytes / packets;
    if (nr > 0) m.Packetrate = rate_sum / nr;
  }
  {
    const double giga = avg_rate2(hosts, "net", "rx_bytes", "tx_bytes");
    m.GigEBW = std::isnan(giga) ? giga : giga / kMB;
  }

  // ---- Processor ------------------------------------------------------
  {
    std::vector<double> loads, l1, l2, llc, cpis, cplds, fls, vecs, mbws;
    for (const auto& h : hosts) {
      const std::string pmc = h.pmc_type();
      if (pmc.empty()) continue;
      const auto inst = h.rate(pmc, "instructions");
      const auto cyc = h.rate(pmc, "cycles");
      const int ncores = std::max(1, h.num_devices(pmc));
      if (const auto r = h.rate(pmc, "loads_all")) {
        loads.push_back(*r / ncores);
        if (cyc && *r > 0.0) cplds.push_back(*cyc / *r);
      }
      if (const auto r = h.rate(pmc, "l1_hits")) l1.push_back(*r / ncores);
      if (const auto r = h.rate(pmc, "l2_hits")) l2.push_back(*r / ncores);
      if (const auto r = h.rate(pmc, "llc_hits")) llc.push_back(*r / ncores);
      if (inst && cyc && *inst > 0.0) cpis.push_back(*cyc / *inst);
      const auto sc = h.rate(pmc, "fp_scalar");
      const auto ve = h.rate(pmc, "fp_vector");
      if (sc && ve) {
        const double w = h.vector_width();
        fls.push_back((*sc + w * *ve) / 1e9);  // GFLOP/s per node
        if (*sc + *ve > 0.0) vecs.push_back(*ve / (*sc + *ve));
      }
      const auto rd = h.rate("imc", "cas_reads");
      const auto wr = h.rate("imc", "cas_writes");
      if (rd && wr) mbws.push_back((*rd + *wr) * 64.0 / 1e9);  // GB/s
    }
    if (!loads.empty()) m.Load_All = mean_of(loads);
    if (!l1.empty()) m.Load_L1Hits = mean_of(l1);
    if (!l2.empty()) m.Load_L2Hits = mean_of(l2);
    if (!llc.empty()) m.Load_LLCHits = mean_of(llc);
    if (!cpis.empty()) m.cpi = mean_of(cpis);
    if (!cplds.empty()) m.cpld = mean_of(cplds);
    if (!fls.empty()) m.flops = mean_of(fls);
    if (!vecs.empty()) m.VecPercent = mean_of(vecs);
    if (!mbws.empty()) m.mbw = mean_of(mbws);
  }

  // ---- Energy ---------------------------------------------------------
  {
    // rapl values are scaled to microjoules; rate is uJ/s -> W / 1e6.
    const double pkg = avg_rate(hosts, "rapl", "energy_pkg");
    const double pp0 = avg_rate(hosts, "rapl", "energy_cores");
    const double dram = avg_rate(hosts, "rapl", "energy_dram");
    if (!std::isnan(pkg)) m.PkgWatts = pkg / 1e6;
    if (!std::isnan(pp0)) m.CoreWatts = pp0 / 1e6;
    if (!std::isnan(dram)) m.DramWatts = dram / 1e6;
  }

  // ---- OS -------------------------------------------------------------
  {
    double max_used = nan("");
    double max_hwm = nan("");
    std::vector<double> usage;
    std::vector<std::vector<double>> cpu_user, cpu_total;
    for (const auto& h : hosts) {
      if (const auto mem = h.gauge_series("mem", "MemUsed")) {
        for (const double kb : *mem) {
          const double gb = kb / kGB1024;
          if (std::isnan(max_used) || gb > max_used) max_used = gb;
        }
      }
      if (const auto hwm = h.gauge_series("ps", "vm_hwm")) {
        for (const double kb : *hwm) {
          const double gb = kb / kGB1024;
          if (std::isnan(max_hwm) || gb > max_hwm) max_hwm = gb;
        }
      }
      const auto user = h.interval_deltas("cpu", "user");
      if (!user) continue;
      std::vector<double> total(user->size(), 0.0);
      for (const char* key : {"user", "nice", "system", "idle", "iowait"}) {
        const auto d = h.interval_deltas("cpu", key);
        if (!d) continue;
        for (std::size_t i = 0; i < total.size(); ++i) total[i] += (*d)[i];
      }
      double su = 0.0, st = 0.0;
      for (std::size_t i = 0; i < user->size(); ++i) {
        su += (*user)[i];
        st += total[i];
      }
      if (st > 0.0) usage.push_back(su / st);
      cpu_user.push_back(*user);
      cpu_total.push_back(total);
    }
    m.MemUsage = max_used;
    m.MemHWM = max_hwm;
    if (!usage.empty()) {
      m.CPU_Usage = mean_of(usage);
      const auto [mn, mx] = std::minmax_element(usage.begin(), usage.end());
      if (*mx > 0.0) m.idle = *mn / *mx;
    }
    // catastrophe: node-summed per-interval usage, min/max over time.
    if (!cpu_user.empty()) {
      std::size_t n = SIZE_MAX;
      for (const auto& u : cpu_user) n = std::min(n, u.size());
      if (n != SIZE_MAX && n >= 2) {
        std::vector<double> windows;
        windows.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
          double su = 0.0, st = 0.0;
          for (std::size_t hh = 0; hh < cpu_user.size(); ++hh) {
            su += cpu_user[hh][i];
            st += cpu_total[hh][i];
          }
          if (st > 0.0) windows.push_back(su / st);
        }
        if (windows.size() >= 2) {
          const auto [mn, mx] =
              std::minmax_element(windows.begin(), windows.end());
          if (*mx > 0.0) {
            m.catastrophe = *mn / *mx;
            m.RampUp = windows.front() / *mx;
            m.TailDrop = windows.back() / *mx;
          }
        }
      }
    }
    // RampUp/TailDrop localize the temporal imbalance directionally
    // (section V-A: sudden increases suggest a compile step, sudden drops
    // an application failure). For FP-active jobs the FLOP series is the
    // better performance proxy — a compile phase keeps the CPU busy but
    // produces no FLOPs, which is exactly the "sudden increase" of the
    // paper's plots; otherwise the CPU windows above stand.
    if (!std::isnan(m.flops) && m.flops > 0.1) {
      std::vector<std::vector<double>> fp_windows;
      std::size_t n = SIZE_MAX;
      for (const auto& h : hosts) {
        const std::string pmc = h.pmc_type();
        if (pmc.empty()) continue;
        const auto sc = h.interval_deltas(pmc, "fp_scalar");
        const auto ve = h.interval_deltas(pmc, "fp_vector");
        if (!sc || !ve) continue;
        const double w = h.vector_width();
        std::vector<double> f(sc->size());
        for (std::size_t i = 0; i < f.size(); ++i) {
          f[i] = (*sc)[i] + w * (*ve)[i];
        }
        n = std::min(n, f.size());
        fp_windows.push_back(std::move(f));
      }
      if (n != SIZE_MAX && n >= 2 && !fp_windows.empty()) {
        std::vector<double> windows(n, 0.0);
        for (const auto& f : fp_windows) {
          for (std::size_t i = 0; i < n; ++i) windows[i] += f[i];
        }
        const double peak =
            *std::max_element(windows.begin(), windows.end());
        if (peak > 0.0) {
          m.RampUp = windows.front() / peak;
          m.TailDrop = windows.back() / peak;
        }
      }
    }
  }
  {
    std::vector<double> mic;
    for (const auto& h : hosts) {
      const auto u = h.rate("mic", "user");
      const auto s = h.rate("mic", "sys");
      const auto i = h.rate("mic", "idle");
      if (!u || !s || !i) continue;
      const double total = *u + *s + *i;
      if (total > 0.0) mic.push_back(*u / total);
    }
    if (!mic.empty()) m.MIC_Usage = mean_of(mic);
  }

  return m;
}

std::vector<NodeSeries> job_timeseries(const JobData& data) {
  std::vector<NodeSeries> out;
  for (const auto& hs : data.hosts) {
    HostExtract h(hs);
    if (h.num_records() < 2) continue;
    NodeSeries ns;
    ns.hostname = hs.hostname;
    const std::size_t n = h.num_intervals();

    const std::string pmc = h.pmc_type();
    const auto sc = pmc.empty() ? std::nullopt
                                : h.interval_deltas(pmc, "fp_scalar");
    const auto ve = pmc.empty() ? std::nullopt
                                : h.interval_deltas(pmc, "fp_vector");
    const double width = h.vector_width();
    const auto rd = h.interval_deltas("imc", "cas_reads");
    const auto wr = h.interval_deltas("imc", "cas_writes");
    const auto mem = h.gauge_series("mem", "MemUsed");
    const auto lrx = h.interval_deltas("lnet", "rx_bytes");
    const auto ltx = h.interval_deltas("lnet", "tx_bytes");
    const auto irx = h.interval_deltas("ib", "port_rcv_data");
    const auto itx = h.interval_deltas("ib", "port_xmit_data");
    const auto cu = h.interval_deltas("cpu", "user");
    std::vector<double> ctotal(n, 0.0);
    for (const char* key : {"user", "nice", "system", "idle", "iowait"}) {
      if (const auto d = h.interval_deltas("cpu", key)) {
        for (std::size_t i = 0; i < n; ++i) ctotal[i] += (*d)[i];
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      const double dt = h.interval_dt(i);
      if (dt <= 0.0) continue;
      ns.times.push_back(util::to_seconds(hs.records[i].time) + dt / 2.0);
      ns.gflops.push_back(sc && ve ? ((*sc)[i] + width * (*ve)[i]) / dt / 1e9
                                   : 0.0);
      ns.mem_bw_gbps.push_back(
          rd && wr ? ((*rd)[i] + (*wr)[i]) * 64.0 / dt / 1e9 : 0.0);
      ns.mem_used_gb.push_back(mem ? (*mem)[i] / kGB1024 : 0.0);
      const double lnet =
          (lrx ? (*lrx)[i] : 0.0) + (ltx ? (*ltx)[i] : 0.0);
      ns.lustre_mbps.push_back(lnet / dt / kMB);
      const double ib =
          (irx ? (*irx)[i] : 0.0) + (itx ? (*itx)[i] : 0.0);
      ns.ib_mpi_mbps.push_back(std::max(0.0, ib - lnet) / dt / kMB);
      ns.cpu_user.push_back(cu && ctotal[i] > 0.0 ? (*cu)[i] / ctotal[i]
                                                  : 0.0);
    }
    out.push_back(std::move(ns));
  }
  return out;
}

}  // namespace tacc::pipeline
