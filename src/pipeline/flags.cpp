#include "pipeline/flags.hpp"

#include <cmath>
#include <cstdio>

namespace tacc::pipeline {
namespace {

std::string fmt(const char* format, double v) {
  char buf[128];
  std::snprintf(buf, sizeof buf, format, v);
  return buf;
}

}  // namespace

std::vector<Flag> evaluate_flags(const workload::AccountingRecord& acct,
                                 const JobMetrics& m,
                                 const FlagThresholds& t) {
  std::vector<Flag> flags;
  auto add = [&](const char* name, std::string detail) {
    flags.push_back({name, std::move(detail)});
  };

  if (!std::isnan(m.MetaDataRate) && m.MetaDataRate > t.metadata_rate) {
    add("high_metadata_rate",
        fmt("peak MDS request rate %.0f reqs/s stresses the filesystem",
            m.MetaDataRate));
  }
  if (!std::isnan(m.GigEBW) && m.GigEBW > t.gige_mb_s) {
    add("high_gige",
        fmt("%.1f MB/s over Ethernet suggests a user MPI build not using "
            "InfiniBand",
            m.GigEBW));
  }
  if (acct.queue == "largemem" && !std::isnan(m.MemUsage) &&
      m.MemUsage < t.largemem_min_gb) {
    add("largemem_underuse",
        fmt("job in the 1 TB largemem queue used only %.1f GB", m.MemUsage));
  }
  if (!std::isnan(m.idle) && m.idle < t.idle_ratio) {
    add("idle_nodes",
        fmt("node CPU usage imbalance (min/max = %.2f): some reserved nodes "
            "are idle",
            m.idle));
  }
  if (!std::isnan(m.catastrophe) && m.catastrophe < t.catastrophe_ratio) {
    add("cpu_time_variation",
        fmt("CPU usage varied strongly over time (min/max = %.2f)",
            m.catastrophe));
  }
  if (!std::isnan(m.RampUp) && m.RampUp < t.ramp_ratio &&
      (!std::isnan(m.TailDrop) && m.TailDrop >= t.tail_ratio)) {
    add("cpu_ramp_up",
        fmt("slow start (first window %.2f of peak): likely a compile step "
            "before the run",
            m.RampUp));
  }
  if (!std::isnan(m.TailDrop) && m.TailDrop < t.tail_ratio) {
    add("cpu_tail_drop",
        fmt("CPU usage collapsed before the job ended (last window %.2f of "
            "peak): likely an application failure",
            m.TailDrop));
  }
  if (!std::isnan(m.cpi) && m.cpi > t.high_cpi) {
    add("high_cpi",
        fmt("%.1f cycles per instruction: memory layout or I/O pattern may "
            "not be performant",
            m.cpi));
  }
  if (!std::isnan(m.VecPercent) && m.VecPercent < t.low_vec &&
      !std::isnan(m.flops) && m.flops > 0.1) {
    add("low_vectorization",
        fmt("only %.2f%% of FP work vectorized", m.VecPercent * 100.0));
  }
  return flags;
}

std::string flag_names(const std::vector<Flag>& flags) {
  std::string out;
  for (std::size_t i = 0; i < flags.size(); ++i) {
    if (i) out += ',';
    out += flags[i].name;
  }
  return out;
}

}  // namespace tacc::pipeline
