// Job specifications and scheduler accounting.
//
// A JobSpec is everything the simulator knows about a job: the metadata the
// batch scheduler would record (user, executable, queue, node count,
// submit/start/end times, completion status) plus the per-job stochastic
// multipliers the population generator drew. The analysis pipeline consumes
// the metadata portion exactly the way the real tool consumes Slurm
// accounting records.
#pragma once

#include <string>
#include <vector>

#include "util/clock.hpp"

namespace tacc::workload {

struct JobSpec {
  long jobid = 0;
  std::string user;
  int uid = 0;
  std::string account;  // project/allocation the job charges
  std::string jobname;
  std::string profile;  // app profile key (simulation-side knowledge)
  std::string exe;      // executable name (accounting-side knowledge)
  std::string queue = "normal";
  int nodes = 1;
  int wayness = 16;  // tasks per node

  util::SimTime submit_time = 0;
  util::SimTime start_time = 0;
  util::SimTime end_time = 0;
  util::SimTime requested_walltime = 48 * util::kHour;
  std::string status = "COMPLETED";  // COMPLETED | FAILED | TIMEOUT

  // Per-job stochastic multipliers (drawn once by the generator).
  double io_mult = 1.0;
  double compute_mult = 1.0;
  double mem_mult = 1.0;
  double cpu_jitter = 0.0;  // additive jitter on the user-space fraction
  double vec_frac_eff = -1.0;  // resolved vectorization; <0 = use profile
  double fail_at_frac = -1.0;  // if in (0,1): demand ceases at this point

  util::SimTime runtime() const noexcept { return end_time - start_time; }
  util::SimTime queue_wait() const noexcept {
    return start_time - submit_time;
  }
};

/// The accounting-only view handed to the analysis pipeline (what Slurm
/// would know; no simulation-side fields are used downstream).
struct AccountingRecord {
  long jobid = 0;
  std::string user;
  int uid = 0;
  std::string account;
  std::string jobname;
  std::string exe;
  std::string queue;
  int nodes = 1;
  int wayness = 16;
  util::SimTime submit_time = 0;
  util::SimTime start_time = 0;
  util::SimTime end_time = 0;
  std::string status;
  std::vector<std::string> hostnames;  // nodes the job ran on
};

/// Projects the accounting view out of a JobSpec.
AccountingRecord to_accounting(const JobSpec& spec,
                               std::vector<std::string> hostnames);

}  // namespace tacc::workload
