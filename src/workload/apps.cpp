#include "workload/apps.hpp"

#include <stdexcept>

namespace tacc::workload {
namespace {

AppProfile base_profile(std::string name, std::string exe) {
  AppProfile p;
  p.name = std::move(name);
  p.exe = std::move(exe);
  return p;
}

AppProfile wrf() {
  auto p = base_profile("wrf", "wrf.exe");
  p.ipc = 1.4;
  p.fp_frac = 0.22;
  p.vec_frac = 0.45;  // straddles the 50% boundary with per-job jitter
  p.vec_sigma = 0.12;
  p.user_frac_base = 0.80;
  p.mdc_reqs_ps = 140.0;
  p.osc_reqs_ps = 12.0;
  p.lustre_read_bps = 1.5e6;
  p.lustre_write_bps = 6e6;   // history/restart output
  p.open_close_ps = 1.0;      // LLiteOpenClose ~2/s (opens+closes)
  p.ib_mpi_bps = 120e6;
  p.mem_per_node_gb = 6.0;
  p.nodes_median = 8.0;
  p.nodes_sigma = 0.7;
  p.runtime_median_s = 9000;
  return p;
}

AppProfile md_engine() {
  auto p = base_profile("md_engine", "namd2");
  p.ipc = 1.9;
  p.fp_frac = 0.30;
  p.vec_frac = 0.88;
  p.user_frac_base = 0.93;
  p.mdc_reqs_ps = 0.6;
  p.osc_reqs_ps = 1.0;
  p.lustre_write_bps = 0.8e6;
  p.ib_mpi_bps = 220e6;
  p.mem_per_node_gb = 2.0;
  p.nodes_median = 12.0;
  p.runtime_median_s = 14000;
  return p;
}

AppProfile cfd_scalar() {
  // Built without the advanced vector ISA (the paper's "not compiled with
  // the most advanced vector instruction set available" cohort).
  auto p = base_profile("cfd_scalar", "simpleFoam");
  p.ipc = 1.1;
  p.fp_frac = 0.25;
  p.vec_frac = 0.004;
  p.vec_sigma = 0.003;
  p.user_frac_base = 0.86;
  p.mem_bw_per_core = 2.2e9;
  p.osc_reqs_ps = 8.0;
  p.lustre_write_bps = 5e6;
  p.ib_mpi_bps = 150e6;
  p.mem_per_node_gb = 5.0;
  p.nodes_median = 6.0;
  return p;
}

AppProfile qchem() {
  auto p = base_profile("qchem", "qcprog.exe");
  p.ipc = 1.6;
  p.fp_frac = 0.35;
  p.vec_frac = 0.28;
  p.user_frac_base = 0.88;
  p.mem_bw_per_core = 3.0e9;
  p.mem_per_node_gb = 16.0;  // jitter pushes a tail past 20 GB
  p.mem_sigma = 0.40;
  p.osc_reqs_ps = 30.0;       // scratch I/O
  p.lustre_read_bps = 12e6;
  p.lustre_write_bps = 12e6;
  p.local_disk_read_bps = 25e6;   // integrals spill to node-local scratch
  p.local_disk_write_bps = 25e6;
  p.procs_per_node = 2;
  p.threads_per_proc = 8;
  p.nodes_median = 2.0;
  p.nodes_sigma = 0.5;
  p.runtime_median_s = 16000;
  return p;
}

AppProfile genomics_io() {
  auto p = base_profile("genomics_io", "blastn");
  p.ipc = 0.9;
  p.fp_frac = 0.02;
  p.vec_frac = 0.002;
  p.vec_sigma = 0.002;
  p.user_frac_base = 0.85;
  p.mdc_reqs_ps = 220.0;      // many small files
  p.osc_reqs_ps = 260.0;
  p.lustre_read_bps = 90e6;
  p.lustre_write_bps = 15e6;
  p.open_close_ps = 18.0;
  p.ib_mpi_bps = 4e6;
  p.io_sigma = 0.9;
  p.local_disk_read_bps = 40e6;   // database staged to local disk
  p.tmpfs_bytes = 2e9;            // mmapped index in /dev/shm
  p.mem_per_node_gb = 10.0;
  p.nodes_median = 2.0;
  p.nodes_sigma = 0.6;
  return p;
}

AppProfile python_analytics() {
  auto p = base_profile("python_analytics", "python");
  p.ipc = 0.8;
  p.fp_frac = 0.05;
  p.vec_frac = 0.001;
  p.vec_sigma = 0.001;
  p.user_frac_base = 0.78;
  p.mdc_reqs_ps = 60.0;
  p.osc_reqs_ps = 40.0;
  p.lustre_read_bps = 18e6;
  p.open_close_ps = 4.0;
  p.ib_mpi_bps = 0.5e6;
  p.io_sigma = 1.2;
  p.procs_per_node = 1;
  p.threads_per_proc = 16;
  p.tmpfs_bytes = 0.5e9;
  p.nodes_median = 1.2;
  p.nodes_sigma = 0.5;
  p.runtime_median_s = 5000;
  return p;
}

AppProfile fem_avx() {
  auto p = base_profile("fem_avx", "ls-dyna");
  p.ipc = 1.5;
  p.fp_frac = 0.28;
  p.vec_frac = 0.55;
  p.user_frac_base = 0.90;
  p.mem_bw_per_core = 2.5e9;
  p.osc_reqs_ps = 6.0;
  p.lustre_write_bps = 8e6;
  p.ib_mpi_bps = 180e6;
  p.mem_per_node_gb = 8.0;
  p.nodes_median = 10.0;
  return p;
}

AppProfile spectral() {
  auto p = base_profile("spectral", "charles.x");
  p.ipc = 2.1;
  p.fp_frac = 0.40;
  p.vec_frac = 0.93;
  p.user_frac_base = 0.93;
  p.mem_bw_per_core = 3.5e9;
  p.ib_mpi_bps = 400e6;  // alltoall-heavy
  p.mem_per_node_gb = 4.0;
  p.nodes_median = 24.0;
  p.nodes_sigma = 0.6;
  return p;
}

AppProfile mc_scalar() {
  auto p = base_profile("mc_scalar", "mcrun");
  p.ipc = 1.3;
  p.fp_frac = 0.18;
  p.vec_frac = 0.005;
  p.vec_sigma = 0.004;
  p.user_frac_base = 0.96;   // embarrassingly parallel, no I/O
  p.mdc_reqs_ps = 0.2;
  p.osc_reqs_ps = 0.2;
  p.lustre_read_bps = 0.1e6;
  p.lustre_write_bps = 0.1e6;
  p.ib_mpi_bps = 0.2e6;
  p.nodes_median = 3.0;
  return p;
}

AppProfile mpi_gige() {
  // A user-built MPI running over Ethernet instead of InfiniBand (flagged
  // by the GigEBW rule).
  auto p = base_profile("mpi_gige", "a.out");
  p.ipc = 1.0;
  p.fp_frac = 0.20;
  p.vec_frac = 0.30;
  p.user_frac_base = 0.60;  // spends time in TCP stack
  p.sys_frac = 0.20;
  p.gige_bps = 90e6;
  p.ib_mpi_bps = 0.0;
  p.nodes_median = 4.0;
  return p;
}

AppProfile largemem_light() {
  // Runs in the 1 TB largemem queue but uses a trivial footprint (flagged
  // as queue misuse).
  auto p = base_profile("largemem_light", "R");
  p.queue = "largemem";
  p.mem_per_node_gb = 9.0;
  p.procs_per_node = 1;
  p.threads_per_proc = 4;
  p.vec_frac = 0.02;
  p.vec_sigma = 0.01;
  p.user_frac_base = 0.70;
  p.nodes_median = 1.0;
  p.nodes_sigma = 0.0;
  p.max_nodes = 1;
  return p;
}

AppProfile largemem_heavy() {
  auto p = base_profile("largemem_heavy", "velvetg");
  p.queue = "largemem";
  p.mem_per_node_gb = 640.0;
  p.mem_sigma = 0.20;
  p.procs_per_node = 1;
  p.threads_per_proc = 32;
  p.vec_frac = 0.01;
  p.vec_sigma = 0.008;
  p.mem_bw_per_core = 4e9;
  p.user_frac_base = 0.82;
  p.sysv_shm_bytes = 12e9;  // assembler graph kept in SysV segments
  p.nodes_median = 1.0;
  p.nodes_sigma = 0.0;
  p.max_nodes = 1;
  p.runtime_median_s = 20000;
  return p;
}

AppProfile idle_half() {
  // A malformed launch script drives ranks onto only half the allocation
  // (the paper: >2% of jobs have entirely idle nodes).
  auto p = base_profile("idle_half", "lmp_stampede");
  p.idle_node_frac = 0.5;
  p.vec_frac = 0.45;
  p.user_frac_base = 0.88;
  p.ib_mpi_bps = 90e6;
  p.nodes_median = 8.0;
  return p;
}

AppProfile compile_run() {
  auto p = base_profile("compile_run", "run_case.sh");
  p.compile_first = true;  // scalar compile phase, then vector solve
  p.vec_frac = 0.52;
  p.local_disk_write_bps = 8e6;  // object files on local scratch
  p.user_frac_base = 0.85;
  p.nodes_median = 4.0;
  return p;
}

AppProfile mic_offload() {
  auto p = base_profile("mic_offload", "mic_app.mic");
  p.mic_util = 0.55;
  p.vec_frac = 0.75;
  p.user_frac_base = 0.55;  // host waits on offload sections
  p.ib_mpi_bps = 60e6;
  p.nodes_median = 4.0;
  return p;
}

AppProfile flaky_solver() {
  auto p = base_profile("flaky_solver", "xhpl");
  p.fail_prob = 0.45;  // catastrophe-metric cohort: dies mid-run
  p.vec_frac = 0.80;
  p.user_frac_base = 0.92;
  p.mem_bw_per_core = 3.0e9;
  p.nodes_median = 16.0;
  return p;
}

}  // namespace

const std::vector<CatalogEntry>& app_catalog() {
  static const std::vector<CatalogEntry> catalog = {
      {wrf(), 0.140},
      {md_engine(), 0.120},
      {cfd_scalar(), 0.147},
      {qchem(), 0.080},
      {genomics_io(), 0.100},
      {python_analytics(), 0.135},
      {fem_avx(), 0.075},
      {spectral(), 0.050},
      {mc_scalar(), 0.055},
      {mpi_gige(), 0.010},
      {largemem_light(), 0.006},
      {largemem_heavy(), 0.006},
      {idle_half(), 0.035},
      {compile_run(), 0.020},
      {mic_offload(), 0.013},
      {flaky_solver(), 0.008},
  };
  return catalog;
}

const AppProfile& wrf_mdstorm_profile() {
  static const AppProfile storm = [] {
    auto p = wrf();
    p.name = "wrf_mdstorm";
    // Same wrf.exe, but the input-reading loop opens and closes a file
    // every iteration: ~15.4k opens/s per node (LLiteOpenClose counts
    // opens+closes, giving the paper's ~30,884/s), and each open/close
    // pair costs ~1 MDS request each.
    p.open_close_ps = 15400.0;
    p.mdc_reqs_ps = 30900.0;
    p.mdc_wait_us_per_req = 90.0;
    p.io_sigma = 0.12;  // the loop rate is steady job-to-job
    return p;
  }();
  return storm;
}

const AppProfile& find_profile(const std::string& name) {
  for (const auto& entry : app_catalog()) {
    if (entry.profile.name == name) return entry.profile;
  }
  if (name == "wrf_mdstorm") return wrf_mdstorm_profile();
  throw std::invalid_argument("unknown app profile: " + name);
}

}  // namespace tacc::workload
