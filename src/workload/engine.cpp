#include "workload/engine.hpp"

#include <algorithm>
#include <cmath>

#include "simhw/pci.hpp"

namespace tacc::workload {
namespace {

constexpr double kJiffiesPerSecond = 100.0;
constexpr double kOsBaselineKb = 600.0 * 1024;

// RAPL power model (kept under ~100 W/socket so the 32-bit energy-status
// register wraps no more than once per 10-minute sampling interval; see
// DESIGN.md).
constexpr double kPkgIdleWatts = 35.0;
constexpr double kPkgWattsPerBusyCore = 4.0;
constexpr double kPp0IdleWatts = 10.0;
constexpr double kPp0WattsPerBusyCore = 3.2;
constexpr double kDramIdleWatts = 8.0;
constexpr double kDramJoulesPerByte = 6.0e-10;

constexpr double kMicThreads = 240.0;  // 60 cores x 4 threads

std::uint64_t ull(double x) noexcept {
  return x <= 0.0 ? 0 : static_cast<std::uint64_t>(std::llround(x));
}

/// The effective demand of a job on one node for one tick, after phase
/// logic (compile/fail/idle-node) and jitter.
struct TickDemand {
  double user_frac = 0.0;
  double sys_frac = 0.0;
  double iowait_frac = 0.0;
  double ipc = 0.0;
  double fp_frac = 0.0;
  double vec_frac = 0.0;
  double load_frac = 0.0;
  double mem_bw_per_core = 0.0;
  double mdc_reqs_ps = 0.0;
  double mdc_wait_us_per_req = 0.0;
  double osc_reqs_ps = 0.0;
  double osc_wait_us_per_req = 0.0;
  double lustre_read_bps = 0.0;
  double lustre_write_bps = 0.0;
  double open_close_ps = 0.0;
  double ib_mpi_bps = 0.0;
  double gige_bps = 0.0;
  double mic_util = 0.0;
  bool active = true;
};

}  // namespace

AccountingRecord to_accounting(const JobSpec& spec,
                               std::vector<std::string> hostnames) {
  AccountingRecord acct;
  acct.jobid = spec.jobid;
  acct.user = spec.user;
  acct.uid = spec.uid;
  acct.account = spec.account;
  acct.jobname = spec.jobname;
  acct.exe = spec.exe;
  acct.queue = spec.queue;
  acct.nodes = spec.nodes;
  acct.wayness = spec.wayness;
  acct.submit_time = spec.submit_time;
  acct.start_time = spec.start_time;
  acct.end_time = spec.end_time;
  acct.status = spec.status;
  acct.hostnames = std::move(hostnames);
  return acct;
}

Engine::Engine(simhw::Cluster& cluster, util::SimTime start)
    : cluster_(&cluster), now_(start) {
  for (std::size_t i = 0; i < cluster_->size(); ++i) {
    auto& node = cluster_->node(i);
    if (!node.failed()) node.state().now_us = now_;
  }
}

void Engine::start_job(const JobSpec& spec,
                       std::vector<std::size_t> node_indices) {
  Running job;
  job.spec = spec;
  job.profile = &find_profile(spec.profile);
  job.nodes = std::move(node_indices);
  job.rng = util::Rng("engine.job", static_cast<std::uint64_t>(spec.jobid));
  // Spawn the job's processes on each node.
  const double mem_node_kb =
      job.profile->mem_per_node_gb * spec.mem_mult * 1024 * 1024;
  for (const std::size_t ni : job.nodes) {
    auto& node = cluster_->node(ni);
    if (node.failed()) continue;
    const int nprocs = std::max(1, job.profile->procs_per_node);
    for (int r = 0; r < nprocs; ++r) {
      simhw::ProcessInfo proc;
      proc.pid = next_pid_++;
      proc.name = spec.exe.substr(0, 15);  // kernel truncates comm to 15
      proc.uid = spec.uid;
      proc.jobid = spec.jobid;
      proc.threads = job.profile->threads_per_proc;
      const double share_kb = mem_node_kb / nprocs;
      proc.vm_rss_kb = ull(share_kb);
      proc.vm_hwm_kb = proc.vm_rss_kb;
      proc.vm_size_kb = ull(share_kb * 1.3 + 80 * 1024);
      proc.vm_peak_kb = proc.vm_size_kb;
      proc.vm_data_kb = ull(share_kb * 1.1);
      proc.vm_stk_kb = 8 * 1024;
      proc.vm_exe_kb = 4 * 1024;
      proc.vm_lck_kb = 0;
      // Pin rank r (and its threads) to consecutive logical cpus.
      const int ncpu = node.topology().logical_cpus();
      std::uint64_t mask = 0;
      for (int t = 0; t < proc.threads; ++t) {
        mask |= 1ULL << ((r * proc.threads + t) % std::min(ncpu, 64));
      }
      proc.cpus_allowed = mask;
      node.spawn_process(proc);
    }
  }
  jobs_.emplace(spec.jobid, std::move(job));
  for (const std::size_t ni : jobs_.at(spec.jobid).nodes) {
    update_memory(cluster_->node(ni), ni);
  }
}

void Engine::end_job(long jobid) {
  const auto it = jobs_.find(jobid);
  if (it == jobs_.end()) return;
  for (const std::size_t ni : it->second.nodes) {
    auto& node = cluster_->node(ni);
    if (node.failed()) continue;
    for (const int pid : node.list_pids()) {
      const auto pit = node.state().processes.find(pid);
      if (pit != node.state().processes.end() &&
          pit->second.jobid == jobid) {
        node.kill_process(pid);
      }
    }
  }
  const auto nodes = it->second.nodes;
  jobs_.erase(it);
  for (const std::size_t ni : nodes) update_memory(cluster_->node(ni), ni);
}

std::vector<long> Engine::jobs_on(std::size_t node_index) const {
  std::vector<long> out;
  for (const auto& [jobid, job] : jobs_) {
    if (std::find(job.nodes.begin(), job.nodes.end(), node_index) !=
        job.nodes.end()) {
      out.push_back(jobid);
    }
  }
  return out;
}

const std::vector<std::size_t>* Engine::nodes_of(long jobid) const {
  const auto it = jobs_.find(jobid);
  return it == jobs_.end() ? nullptr : &it->second.nodes;
}

std::vector<std::string> Engine::hostnames_of(long jobid) const {
  std::vector<std::string> out;
  if (const auto* nodes = nodes_of(jobid)) {
    for (const std::size_t ni : *nodes) {
      out.push_back(cluster_->node(ni).hostname());
    }
  }
  return out;
}

void Engine::update_memory(simhw::Node& node, std::size_t node_index) {
  if (node.failed()) return;
  double used = kOsBaselineKb;
  double tmpfs = 0.0;
  double sysv = 0.0;
  int sysv_segments = 0;
  for (const auto& [jobid, job] : jobs_) {
    if (std::find(job.nodes.begin(), job.nodes.end(), node_index) ==
        job.nodes.end()) {
      continue;
    }
    used += job.profile->mem_per_node_gb * job.spec.mem_mult * 1024 * 1024;
    tmpfs += job.profile->tmpfs_bytes;
    if (job.profile->sysv_shm_bytes > 0.0) {
      sysv += job.profile->sysv_shm_bytes * job.spec.mem_mult;
      ++sysv_segments;
    }
  }
  node.state().mem.used_kb =
      std::min<std::uint64_t>(ull(used), node.state().mem.total_kb);
  node.state().shm.tmpfs_bytes = ull(tmpfs);
  node.state().shm.sysv_bytes = ull(sysv);
  node.state().shm.sysv_segments =
      static_cast<std::uint64_t>(sysv_segments);
}

void Engine::apply_baseline(simhw::Node& node, double dt_s) {
  auto& st = node.state();
  st.now_us += util::from_seconds(dt_s);
  // Management-network heartbeat.
  st.eth.rx_bytes += ull(1200.0 * dt_s);
  st.eth.tx_bytes += ull(800.0 * dt_s);
  st.eth.rx_packets += ull(4.0 * dt_s);
  st.eth.tx_packets += ull(3.0 * dt_s);
  // Idle-power energy accrues regardless of load.
  for (auto& sock : st.sockets) {
    sock.energy_pkg_uj += ull(kPkgIdleWatts * dt_s * 1e6);
    sock.energy_pp0_uj += ull(kPp0IdleWatts * dt_s * 1e6);
    sock.energy_dram_uj += ull(kDramIdleWatts * dt_s * 1e6);
  }
  if (node.config().has_phi) {
    st.mic.idle_jiffies += ull(kMicThreads * dt_s * kJiffiesPerSecond);
  }
}

int Engine::apply_job(Running& job, std::size_t local_index,
                      simhw::Node& node, double dt_s, int core_offset) {
  const AppProfile& p = *job.profile;
  const JobSpec& spec = job.spec;
  auto& st = node.state();

  const double runtime_s = util::to_seconds(spec.runtime());
  const double frac =
      runtime_s > 0.0
          ? util::to_seconds(now_ - spec.start_time) / runtime_s
          : 0.0;

  TickDemand d;
  // Per-quantum jitter indexed by (job, node, absolute quantum) so the
  // demand function of time is fixed regardless of advance() slicing.
  const std::uint64_t quantum =
      static_cast<std::uint64_t>(now_ / kQuantum);
  util::Rng jitter_rng(
      "engine.jitter",
      static_cast<std::uint64_t>(spec.jobid) * 0x9e3779b97f4a7c15ULL ^
          (static_cast<std::uint64_t>(local_index) << 48) ^ quantum);
  const double io_jitter = std::exp(0.18 * jitter_rng.normal());
  const double compute_jitter = std::exp(0.10 * jitter_rng.normal());

  // Phase logic ------------------------------------------------------------
  const int active_nodes = std::max(
      1, static_cast<int>(std::lround((1.0 - p.idle_node_frac) *
                                      static_cast<double>(spec.nodes))));
  if (static_cast<int>(local_index) >= active_nodes) d.active = false;
  if (spec.fail_at_frac > 0.0 && frac >= spec.fail_at_frac) d.active = false;

  const bool compiling = p.compile_first && frac < 0.12;

  if (d.active) {
    d.ipc = (compiling ? 1.0 : p.ipc) * spec.compute_mult * compute_jitter;
    d.fp_frac = compiling ? 0.02 : p.fp_frac;
    d.vec_frac = compiling ? 0.0
                           : (spec.vec_frac_eff >= 0.0 ? spec.vec_frac_eff
                                                       : p.vec_frac);
    d.load_frac = compiling ? 0.35 : p.load_frac;
    d.mem_bw_per_core = p.mem_bw_per_core * compute_jitter;
    d.mdc_reqs_ps = (compiling ? 25.0 : p.mdc_reqs_ps) * spec.io_mult *
                    io_jitter;
    d.mdc_wait_us_per_req = p.mdc_wait_us_per_req;
    d.osc_reqs_ps = p.osc_reqs_ps * spec.io_mult * io_jitter;
    d.osc_wait_us_per_req = p.osc_wait_us_per_req;
    d.lustre_read_bps = p.lustre_read_bps * spec.io_mult * io_jitter;
    d.lustre_write_bps = p.lustre_write_bps * spec.io_mult * io_jitter;
    d.open_close_ps =
        (compiling ? 40.0 : p.open_close_ps) * spec.io_mult * io_jitter;
    d.ib_mpi_bps = p.ib_mpi_bps * io_jitter;
    d.gige_bps = p.gige_bps * io_jitter;
    d.mic_util = p.mic_util;
    d.sys_frac = p.sys_frac;
    const double io_penalty =
        std::min(kMaxIoPenalty,
                 kMdcPenaltyPerReq * d.mdc_reqs_ps +
                     kOscPenaltyPerReq * d.osc_reqs_ps +
                     kBwPenaltyPerByte *
                         (d.lustre_read_bps + d.lustre_write_bps));
    d.iowait_frac = io_penalty;
    d.user_frac = std::clamp(
        p.user_frac_base + spec.cpu_jitter - io_penalty - d.sys_frac,
        0.02, 0.97);
  }

  // Per-core accounting ------------------------------------------------------
  const auto& topo = node.topology();
  const int want =
      std::max(1, spec.wayness * std::max(1, p.threads_per_proc));
  const int first = std::min(core_offset, topo.logical_cpus());
  const int last = std::min(first + want, topo.logical_cpus());
  const int claimed = last - first;
  const std::array<double, 4> shares = {1.0, 0.97, 1.03, 0.99};
  for (int cpu = first; cpu < last; ++cpu) {
    auto& core = st.cores[static_cast<std::size_t>(cpu)];
    const double skew = shares[static_cast<std::size_t>(cpu) % shares.size()];
    const double user = d.active ? std::min(0.98, d.user_frac * skew) : 0.0;
    const double sys = d.active ? d.sys_frac : 0.005;
    const double iow = d.active ? d.iowait_frac : 0.0;
    const double idle = std::max(0.0, 1.0 - user - sys - iow);
    core.user += ull(user * dt_s * kJiffiesPerSecond);
    core.system += ull(sys * dt_s * kJiffiesPerSecond);
    core.iowait += ull(iow * dt_s * kJiffiesPerSecond);
    core.idle += ull(idle * dt_s * kJiffiesPerSecond);
    if (!d.active) continue;
    const double ghz = node.arch().nominal_ghz;
    const double cycles = user * dt_s * ghz * 1e9;
    const double instructions = cycles * d.ipc;
    core.cycles += ull(cycles);
    core.ref_cycles += ull(cycles);
    core.instructions += ull(instructions);
    const double fp = instructions * d.fp_frac;
    const double vec = fp * d.vec_frac;
    using simhw::CoreEvent;
    auto& ev = core.events;
    ev[static_cast<std::size_t>(CoreEvent::FpScalar)] += ull(fp - vec);
    ev[static_cast<std::size_t>(CoreEvent::FpVector)] += ull(vec);
    const double loads = instructions * d.load_frac;
    ev[static_cast<std::size_t>(CoreEvent::LoadsAll)] += ull(loads);
    ev[static_cast<std::size_t>(CoreEvent::L1Hits)] += ull(loads * p.l1_hit);
    ev[static_cast<std::size_t>(CoreEvent::L2Hits)] += ull(loads * p.l2_hit);
    ev[static_cast<std::size_t>(CoreEvent::LlcHits)] +=
        ull(loads * p.llc_hit);
    ev[static_cast<std::size_t>(CoreEvent::Branches)] +=
        ull(instructions * 0.20);
    ev[static_cast<std::size_t>(CoreEvent::StallsTotal)] +=
        ull(cycles * 0.12);
  }

  if (!d.active) return claimed;

  // Socket-level: memory traffic and active power --------------------------
  std::vector<double> busy_cores(static_cast<std::size_t>(topo.sockets), 0.0);
  for (int cpu = first; cpu < last; ++cpu) {
    busy_cores[static_cast<std::size_t>(topo.socket_of_cpu(cpu))] +=
        d.user_frac;
  }
  for (int s = 0; s < topo.sockets; ++s) {
    auto& sock = st.sockets[static_cast<std::size_t>(s)];
    const double busy = busy_cores[static_cast<std::size_t>(s)];
    const double bytes = d.mem_bw_per_core * busy * dt_s;
    sock.imc_cas_reads += ull(bytes * (2.0 / 3.0) / simhw::pci::kCacheLineBytes);
    sock.imc_cas_writes += ull(bytes * (1.0 / 3.0) / simhw::pci::kCacheLineBytes);
    sock.qpi_data_flits += ull(bytes * 0.25 / simhw::pci::kQpiFlitBytes);
    sock.energy_pkg_uj += ull(kPkgWattsPerBusyCore * busy * dt_s * 1e6);
    sock.energy_pp0_uj += ull(kPp0WattsPerBusyCore * busy * dt_s * 1e6);
    sock.energy_dram_uj += ull(bytes * kDramJoulesPerByte * 1e6);
    // NUMA allocation flow: most pages land locally; QPI-crossing traffic
    // shows up as misses on the remote node.
    auto& numa = st.numa[static_cast<std::size_t>(s)];
    const double pages = bytes / 4096.0;
    numa.numa_hit += ull(pages * 0.92);
    numa.numa_miss += ull(pages * 0.06);
    numa.numa_foreign += ull(pages * 0.02);
    numa.local_node += ull(pages * 0.92);
    numa.other_node += ull(pages * 0.08);
  }

  // Kernel VM activity: faults track first-touch memory traffic, paging
  // tracks the local scratch disk.
  st.vm.pgfault += ull(d.mem_bw_per_core * claimed * d.user_frac * dt_s /
                       (4096.0 * 220.0));
  st.vm.pgmajfault += ull(p.local_disk_read_bps * dt_s / (4096.0 * 900.0));
  st.vm.pgpgin += ull(p.local_disk_read_bps * dt_s / 1024.0);
  st.vm.pgpgout += ull(p.local_disk_write_bps * dt_s / 1024.0);

  // Node-local scratch disk.
  if (p.local_disk_read_bps > 0.0 || p.local_disk_write_bps > 0.0) {
    const double rd = p.local_disk_read_bps * spec.io_mult * dt_s;
    const double wr = p.local_disk_write_bps * spec.io_mult * dt_s;
    st.block.sectors_read += ull(rd / 512.0);
    st.block.sectors_written += ull(wr / 512.0);
    st.block.reads_completed += ull(rd / (128.0 * 1024.0));
    st.block.writes_completed += ull(wr / (128.0 * 1024.0));
    st.block.io_ticks_ms +=
        ull(std::min(1.0, (rd + wr) / 120e6) * dt_s * 1000.0);
  }

  // Lustre ------------------------------------------------------------------
  if (node.config().has_lustre) {
    auto& lu = st.lustre;
    const double reads = d.lustre_read_bps * dt_s;
    const double writes = d.lustre_write_bps * dt_s;
    lu.read_bytes += ull(reads);
    lu.write_bytes += ull(writes);
    lu.read_samples += ull(reads / 1048576.0) + (reads > 0 ? 1 : 0);
    lu.write_samples += ull(writes / 1048576.0) + (writes > 0 ? 1 : 0);
    lu.open += ull(d.open_close_ps * dt_s);
    lu.close += ull(d.open_close_ps * dt_s);
    const double mdc = d.mdc_reqs_ps * dt_s;
    lu.mdc_reqs += ull(mdc);
    // Shared-MDS queueing: service time grows with the cluster-wide load
    // of the previous quantum.
    const double mds_factor = 1.0 + mds_load_prev_ps_ / kMdsCapacityReqsPs;
    lu.mdc_wait_us += ull(mdc * d.mdc_wait_us_per_req * mds_factor);
    mds_load_accum_reqs_ += mdc;
    const double osc = d.osc_reqs_ps * dt_s;
    // Spread OSC traffic round-robin over the stripe targets; object
    // storage servers queue like the MDS does.
    const int ost = lu.next_ost;
    lu.next_ost = (lu.next_ost + 1) % simhw::LustreState::kNumOsts;
    const double oss_factor = 1.0 + oss_load_prev_ps_ / kOssCapacityReqsPs;
    lu.osc_reqs[ost] += ull(osc);
    lu.osc_wait_us[ost] += ull(osc * d.osc_wait_us_per_req * oss_factor);
    oss_load_accum_reqs_ += osc;
    lu.osc_read_bytes[ost] += ull(reads);
    lu.osc_write_bytes[ost] += ull(writes);
    // LNET carries the Lustre bytes plus ~1 KB of RPC overhead per request.
    const double rpc_overhead = (mdc + osc) * 1024.0;
    st.lnet.send_bytes += ull(writes + rpc_overhead);
    st.lnet.recv_bytes += ull(reads + rpc_overhead * 0.5);
    st.lnet.send_count += ull(mdc + osc + writes / 1048576.0);
    st.lnet.recv_count += ull(mdc + osc + reads / 1048576.0);
    // Lustre rides the InfiniBand fabric.
    if (node.config().has_ib) {
      st.ib.tx_bytes += ull(writes + rpc_overhead);
      st.ib.rx_bytes += ull(reads + rpc_overhead * 0.5);
      st.ib.tx_packets += ull((writes + rpc_overhead) / 2048.0);
      st.ib.rx_packets += ull((reads + rpc_overhead * 0.5) / 2048.0);
    }
  }

  // MPI over InfiniBand ------------------------------------------------------
  if (node.config().has_ib && d.ib_mpi_bps > 0.0) {
    const double bytes = d.ib_mpi_bps * dt_s;
    st.ib.tx_bytes += ull(bytes);
    st.ib.rx_bytes += ull(bytes);
    st.ib.tx_packets += ull(bytes / 2048.0);
    st.ib.rx_packets += ull(bytes / 2048.0);
  }

  // Stray / misconfigured Ethernet traffic ----------------------------------
  if (d.gige_bps > 0.0) {
    const double bytes = d.gige_bps * dt_s;
    st.eth.rx_bytes += ull(bytes);
    st.eth.tx_bytes += ull(bytes);
    st.eth.rx_packets += ull(bytes / 1500.0);
    st.eth.tx_packets += ull(bytes / 1500.0);
  }

  // Xeon Phi -----------------------------------------------------------------
  if (node.config().has_phi && d.mic_util > 0.0) {
    const double total = kMicThreads * dt_s * kJiffiesPerSecond;
    st.mic.user_jiffies += ull(d.mic_util * total);
    // The matching idle time was already added by the baseline; move it.
    const std::uint64_t used = ull(d.mic_util * total);
    st.mic.idle_jiffies -= std::min(st.mic.idle_jiffies, used);
  }

  // Mid-run memory spike: visible to procfs VmHWM but (usually) not to the
  // 10-minute MemUsage snapshots (paper section IV-A).
  if (p.mem_spike_gb > 0.0 && frac >= 0.45 && frac < 0.55) {
    const double spike_kb = p.mem_spike_gb * 1024 * 1024;
    for (auto& [pid, proc] : st.processes) {
      if (proc.jobid != spec.jobid) continue;
      const auto hwm = proc.vm_rss_kb + ull(spike_kb / std::max(
          1, p.procs_per_node));
      proc.vm_hwm_kb = std::max(proc.vm_hwm_kb, hwm);
      proc.vm_peak_kb = std::max(proc.vm_peak_kb, hwm + 80 * 1024);
    }
  }
  return claimed;
}

void Engine::advance(util::SimTime dt) {
  const util::SimTime target = now_ + dt;
  while (now_ < target) {
    const util::SimTime quantum_end = now_ - now_ % kQuantum + kQuantum;
    advance_step(std::min(quantum_end, target) - now_);
  }
}

void Engine::advance_step(util::SimTime dt) {
  const double dt_s = util::to_seconds(dt);

  // Per-node list of (job, local node index).
  std::vector<std::vector<std::pair<Running*, std::size_t>>> per_node(
      cluster_->size());
  for (auto& [jobid, job] : jobs_) {
    for (std::size_t li = 0; li < job.nodes.size(); ++li) {
      per_node[job.nodes[li]].emplace_back(&job, li);
    }
  }

  for (std::size_t ni = 0; ni < cluster_->size(); ++ni) {
    auto& node = cluster_->node(ni);
    if (node.failed()) continue;
    apply_baseline(node, dt_s);

    // Jobs sharing a node occupy consecutive disjoint core ranges; cores
    // beyond them idle away the interval.
    int offset = 0;
    for (const auto& [job, li] : per_node[ni]) {
      offset += apply_job(*job, li, node, dt_s, offset);
    }
    for (int cpu = offset; cpu < node.topology().logical_cpus(); ++cpu) {
      auto& core = node.state().cores[static_cast<std::size_t>(cpu)];
      core.idle += ull(0.995 * dt_s * kJiffiesPerSecond);
      core.system += ull(0.005 * dt_s * kJiffiesPerSecond);
    }
  }
  now_ += dt;
  // Close the shared-server accounting for this step.
  if (dt_s > 0.0) {
    mds_load_prev_ps_ = mds_load_accum_reqs_ / dt_s;
    mds_load_accum_reqs_ = 0.0;
    oss_load_prev_ps_ = oss_load_accum_reqs_ / dt_s;
    oss_load_accum_reqs_ = 0.0;
  }
}

}  // namespace tacc::workload
