// Application resource-demand profiles.
//
// The paper's analyses run over a production population (Stampede, Q4 2015:
// 404,002 jobs; 110,438 production jobs; 16,741 WRF jobs). That population
// is not available, so this catalog defines parametric profiles whose mix
// is calibrated to reproduce the population shapes the paper reports in
// section V: the vectorization split (52% of jobs >1% vectorized, 25% >50%),
// MIC adoption (1.3%), memory use (3% of jobs >20 GB), idle-node rate
// (>2%), the WRF cohort behaviour, and the negative CPU_Usage vs Lustre-
// metric correlations.
//
// All rates are steady-state demands; the engine applies per-job and
// per-interval stochastic multipliers around them.
#pragma once

#include <string>
#include <vector>

namespace tacc::workload {

struct AppProfile {
  std::string name;  // profile key, e.g. "wrf", "wrf_mdstorm"
  std::string exe;   // executable name as seen in accounting, e.g. "wrf.exe"

  // -- compute demand (per busy core) --------------------------------------
  double ipc = 1.2;        // instructions per cycle while busy
  double fp_frac = 0.15;   // FP instructions / total instructions
  double vec_frac = 0.5;   // fraction of FP instructions that are vector
  double load_frac = 0.30; // load instructions / total instructions
  double l1_hit = 0.90;    // per-load hit probabilities (l1+l2+llc <= 1;
  double l2_hit = 0.06;    //  the remainder misses to DRAM)
  double llc_hit = 0.03;
  double mem_bw_per_core = 1.0e9;  // DRAM bytes/s per busy core

  // -- utilization ----------------------------------------------------------
  double user_frac_base = 0.90;  // time in user space absent I/O stalls
  double sys_frac = 0.02;        // kernel time

  // -- Lustre I/O demand (per node per second) ------------------------------
  double mdc_reqs_ps = 1.0;
  double mdc_wait_us_per_req = 150.0;
  double osc_reqs_ps = 2.0;
  double osc_wait_us_per_req = 600.0;
  double lustre_read_bps = 0.5e6;
  double lustre_write_bps = 1.5e6;
  double open_close_ps = 0.1;  // opens per second (closes matched)

  // -- network demand (per node per second) ---------------------------------
  double ib_mpi_bps = 40e6;  // MPI traffic over InfiniBand
  double gige_bps = 2e3;     // stray Ethernet traffic

  // -- coprocessor -----------------------------------------------------------
  double mic_util = 0.0;  // Phi utilization fraction (0 = unused)

  // -- local disk & shared memory (per node) ---------------------------------
  double local_disk_read_bps = 0.0;   // node-local scratch reads
  double local_disk_write_bps = 0.0;  // node-local scratch writes
  double tmpfs_bytes = 0.0;           // /dev/shm footprint while running
  double sysv_shm_bytes = 0.0;        // SysV segments while running

  // -- memory ----------------------------------------------------------------
  double mem_per_node_gb = 3.0;  // steady working set per node
  double mem_spike_gb = 0.0;     // transient mid-run spike (visible only in
                                 //  procfs VmHWM, not in MemUsage snapshots)
  int procs_per_node = 16;       // MPI ranks per node
  int threads_per_proc = 1;

  // -- behaviour -------------------------------------------------------------
  double idle_node_frac = 0.0;   // fraction of allocated nodes left idle
  bool compile_first = false;    // compile phase (scalar, no FLOPs) then run
  double fail_prob = 0.0;        // chance the job dies mid-run
  std::string queue = "normal";  // default submission queue

  // -- job sizing (population generator draws) ------------------------------
  double nodes_median = 4.0;      // lognormal median of node count
  double nodes_sigma = 0.9;
  int max_nodes = 256;
  double runtime_median_s = 7200; // lognormal median of runtime
  double runtime_sigma = 1.0;

  // -- stochastic spread (lognormal sigma of per-job multipliers) -----------
  double io_sigma = 0.8;       // spread of the per-job I/O multiplier
  double compute_sigma = 0.25; // spread of the compute multiplier
  double vec_sigma = 0.10;     // absolute jitter added to vec_frac
  double mem_sigma = 0.35;     // spread of the memory multiplier
};

/// Weighted catalog entry for the population generator.
struct CatalogEntry {
  AppProfile profile;
  double weight;  // share of the job population
};

/// The calibrated application catalog (see file header).
const std::vector<CatalogEntry>& app_catalog();

/// Looks up a profile by name in the catalog; also resolves the special
/// out-of-catalog cohort profiles ("wrf_mdstorm"). Throws
/// std::invalid_argument for unknown names.
const AppProfile& find_profile(const std::string& name);

/// The metadata-storm WRF variant of the section V-B case study: the same
/// wrf.exe executable, but with an open/close-per-iteration loop driving
/// tens of thousands of metadata requests per second per node.
const AppProfile& wrf_mdstorm_profile();

}  // namespace tacc::workload
