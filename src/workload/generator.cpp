#include "workload/generator.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <queue>
#include <string>

#include "util/rng.hpp"
#include "workload/apps.hpp"

namespace tacc::workload {
namespace {

struct User {
  std::string name;
  int uid;
  std::string account;  // project allocation
  double activity;                  // relative job-submission rate
  std::vector<std::size_t> apps;    // indices into app_catalog()
  std::vector<double> app_weights;
};

std::vector<User> make_users(const PopulationConfig& config, util::Rng& rng) {
  const auto& catalog = app_catalog();
  std::vector<double> weights;
  weights.reserve(catalog.size());
  for (const auto& e : catalog) weights.push_back(e.weight);

  std::vector<User> users;
  users.reserve(static_cast<std::size_t>(config.num_users));
  for (int u = 0; u < config.num_users; ++u) {
    User user;
    char buf[32];
    std::snprintf(buf, sizeof buf, "user%03d", u);
    user.name = buf;
    user.uid = 10000 + u;
    // ~3 users per project allocation on average.
    std::snprintf(buf, sizeof buf, "TG-%03d", u / 3);
    user.account = buf;
    user.activity = rng.pareto(1.0, 1.3);  // heavy-tailed user activity
    const int napps = static_cast<int>(rng.uniform_int(1, 3));
    for (int a = 0; a < napps; ++a) {
      const std::size_t idx = rng.weighted_index(weights);
      if (std::find(user.apps.begin(), user.apps.end(), idx) ==
          user.apps.end()) {
        user.apps.push_back(idx);
        user.app_weights.push_back(rng.uniform(0.5, 2.0));
      }
    }
    users.push_back(std::move(user));
  }
  return users;
}

JobSpec draw_job(long jobid, const User& user, const AppProfile& profile,
                 const PopulationConfig& config, util::Rng& rng) {
  JobSpec job;
  job.jobid = jobid;
  job.user = user.name;
  job.uid = user.uid;
  job.account = user.account;
  job.profile = profile.name;
  job.exe = profile.exe;
  job.queue = profile.queue;
  job.jobname = profile.name + "_run";
  job.wayness = profile.procs_per_node;

  job.nodes = static_cast<int>(std::clamp<double>(
      std::lround(rng.lognormal_median(profile.nodes_median,
                                       profile.nodes_sigma)),
      1.0, static_cast<double>(profile.max_nodes)));

  const double runtime_s = std::clamp(
      rng.lognormal_median(profile.runtime_median_s, profile.runtime_sigma),
      180.0, 48.0 * 3600.0);
  // Small quick-turnaround jobs go to the development queue.
  if (job.queue == "normal" && job.nodes <= 2 && runtime_s < 7200.0 &&
      rng.bernoulli(0.25)) {
    job.queue = "development";
  }

  job.submit_time =
      config.period_start +
      static_cast<util::SimTime>(
          rng.uniform() *
          static_cast<double>(config.period_end - config.period_start));
  job.requested_walltime =
      util::from_seconds(std::min(48.0 * 3600.0, runtime_s * 1.8));

  job.io_mult = rng.lognormal_median(1.0, profile.io_sigma);
  job.cpu_jitter = rng.normal(0.0, 0.09);
  job.compute_mult = rng.lognormal_median(1.0, profile.compute_sigma);
  job.mem_mult = rng.lognormal_median(1.0, profile.mem_sigma);
  job.vec_frac_eff = std::clamp(
      profile.vec_frac + profile.vec_sigma * rng.normal(), 0.0, 0.98);

  if (rng.bernoulli(profile.fail_prob)) {
    job.status = "FAILED";
    job.fail_at_frac = rng.uniform(0.15, 0.9);
  } else if (rng.bernoulli(0.02)) {
    job.status = "TIMEOUT";
  }

  // end_time is provisional until the scheduler assigns start_time.
  job.end_time = util::from_seconds(runtime_s);
  return job;
}

/// FCFS per-queue backfill-free scheduler: assigns start times against a
/// fixed node capacity. Jobs keep their submit order.
void schedule_fcfs(std::vector<JobSpec>& jobs, const PopulationConfig& config) {
  std::sort(jobs.begin(), jobs.end(),
            [](const JobSpec& a, const JobSpec& b) {
              return a.submit_time < b.submit_time;
            });
  struct QueueState {
    int capacity = 0;
    int in_use = 0;
    // Strict FCFS (no backfill): start times are non-decreasing in submit
    // order, which keeps the release sweep monotone and the capacity
    // accounting exact.
    util::SimTime frontier = 0;
    // (end_time, nodes) of running jobs.
    std::priority_queue<std::pair<util::SimTime, int>,
                        std::vector<std::pair<util::SimTime, int>>,
                        std::greater<>>
        running;
  };
  std::map<std::string, QueueState> queues;
  queues["normal"].capacity = config.machine_nodes;
  queues["largemem"].capacity = config.largemem_nodes;
  queues["development"].capacity = config.development_nodes;

  for (auto& job : jobs) {
    auto& q = queues[job.queue.empty() ? "normal" : job.queue];
    const util::SimTime runtime = job.end_time;  // provisional duration
    const int need = std::min(job.nodes, q.capacity);
    job.nodes = need;
    util::SimTime start = std::max(job.submit_time, q.frontier);
    // Release everything that ends before this job could start, then wait
    // for capacity.
    while (true) {
      while (!q.running.empty() && q.running.top().first <= start) {
        q.in_use -= q.running.top().second;
        q.running.pop();
      }
      if (q.capacity - q.in_use >= need) break;
      // Wait until the next job finishes.
      start = std::max(start, q.running.top().first);
    }
    job.start_time = start;
    job.end_time = start + runtime;
    q.frontier = start;
    q.in_use += need;
    q.running.emplace(job.end_time, need);
  }
}

}  // namespace

std::vector<JobSpec> generate_population(const PopulationConfig& config) {
  util::Rng rng("population", config.seed);
  const auto users = make_users(config, rng);
  std::vector<double> activity;
  activity.reserve(users.size());
  for (const auto& u : users) activity.push_back(u.activity);

  std::vector<JobSpec> jobs;
  jobs.reserve(static_cast<std::size_t>(config.num_jobs) +
               static_cast<std::size_t>(config.storm_jobs));
  long next_jobid = 3000000;

  for (int j = 0; j < config.num_jobs; ++j) {
    const auto& user = users[rng.weighted_index(activity)];
    const std::size_t app_idx =
        user.apps[rng.weighted_index(user.app_weights)];
    const auto& profile = app_catalog()[app_idx].profile;
    jobs.push_back(draw_job(next_jobid++, user, profile, config, rng));
  }

  // The section V-B cohort: one user re-running the same metadata-storm
  // WRF case throughout the period.
  User storm_user;
  storm_user.name = config.storm_user;
  storm_user.uid = config.storm_uid;
  storm_user.account = "TG-WRF42";
  for (int j = 0; j < config.storm_jobs; ++j) {
    auto job = draw_job(next_jobid++, storm_user, wrf_mdstorm_profile(),
                        config, rng);
    job.nodes = 16;  // the Fig. 5 job runs on 16 nodes
    job.status = "COMPLETED";
    job.fail_at_frac = -1.0;
    jobs.push_back(std::move(job));
  }

  schedule_fcfs(jobs, config);
  return jobs;
}

bool is_production(const JobSpec& job) noexcept {
  return job.status == "COMPLETED" &&
         (job.queue == "normal" || job.queue == "largemem") &&
         job.runtime() > util::kHour;
}

}  // namespace tacc::workload
