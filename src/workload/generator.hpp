// Population synthesis: generates a calibrated job population (users, apps,
// sizes, runtimes, stochastic multipliers) and schedules it FCFS against a
// scaled-down machine so queue-wait times emerge naturally.
//
// Scaling: the paper's quarter on Stampede has 404,002 jobs on 6,400 nodes;
// the default here is 20,000 jobs on a 256-node machine (about 1:20 in jobs,
// 1:25 in nodes) which preserves utilization and therefore the shape of the
// wait-time and population statistics. The section V-B storm cohort is kept
// at its absolute size (105 jobs) because the paper reasons about it as a
// specific user.
#pragma once

#include <vector>

#include "util/clock.hpp"
#include "workload/jobs.hpp"

namespace tacc::workload {

struct PopulationConfig {
  int num_jobs = 20000;
  int num_users = 150;
  util::SimTime period_start = util::make_time(2015, 10, 1);
  util::SimTime period_end = util::make_time(2016, 1, 15);
  /// The metadata-storm WRF cohort of section V-B.
  int storm_jobs = 105;
  const char* storm_user = "wrfuser42";
  int storm_uid = 20042;
  /// FCFS capacities (scaled-down Stampede).
  int machine_nodes = 256;
  int largemem_nodes = 4;
  int development_nodes = 16;
  std::uint64_t seed = 2015;
};

/// Generates and schedules the population. Jobs are returned sorted by
/// submit time, with start/end times assigned by the FCFS scheduler.
std::vector<JobSpec> generate_population(const PopulationConfig& config = {});

/// The paper's "production jobs" filter (section V-B): completed, ran in a
/// production queue, runtime over an hour.
bool is_production(const JobSpec& job) noexcept;

}  // namespace tacc::workload
