// Scheduler accounting files. The real pipeline joins raw stats against
// the batch scheduler's accounting dump (sacct/TACC's accounting logs);
// this module serializes AccountingRecords in a pipe-separated layout
// modeled on `sacct -P` and parses it back, so a spooled day on disk plus
// an accounting file is everything needed to (re)run the analysis —
// the offline/replay workflow.
//
//   JobID|User|UID|Account|JobName|ExePath|Partition|NNodes|Wayness|
//   Submit|Start|End|State|NodeList
//
// Times are epoch seconds; NodeList is comma-joined hostnames.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "workload/jobs.hpp"

namespace tacc::workload {

/// Serializes records, header line first.
std::string serialize_accounting(const std::vector<AccountingRecord>& records);

/// Parses an accounting dump. Throws std::invalid_argument on malformed
/// rows (wrong arity, non-numeric fields); the header line is required.
std::vector<AccountingRecord> parse_accounting(std::string_view text);

/// File convenience wrappers.
void write_accounting_file(const std::filesystem::path& path,
                           const std::vector<AccountingRecord>& records);
std::vector<AccountingRecord> read_accounting_file(
    const std::filesystem::path& path);

}  // namespace tacc::workload
