#include "workload/acctfile.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/strings.hpp"

namespace tacc::workload {
namespace {

constexpr const char* kHeader =
    "JobID|User|UID|Account|JobName|ExePath|Partition|NNodes|Wayness|"
    "Submit|Start|End|State|NodeList";
constexpr std::size_t kFields = 14;

}  // namespace

std::string serialize_accounting(
    const std::vector<AccountingRecord>& records) {
  std::ostringstream os;
  os << kHeader << '\n';
  for (const auto& r : records) {
    os << r.jobid << '|' << r.user << '|' << r.uid << '|' << r.account << '|'
       << r.jobname << '|' << r.exe << '|' << r.queue << '|' << r.nodes
       << '|' << r.wayness << '|' << r.submit_time / util::kSecond << '|'
       << r.start_time / util::kSecond << '|' << r.end_time / util::kSecond
       << '|' << r.status << '|';
    for (std::size_t i = 0; i < r.hostnames.size(); ++i) {
      if (i) os << ',';
      os << r.hostnames[i];
    }
    os << '\n';
  }
  return os.str();
}

std::vector<AccountingRecord> parse_accounting(std::string_view text) {
  const auto lines = util::split_lines(text);
  if (lines.empty() || lines[0] != kHeader) {
    throw std::invalid_argument("accounting dump missing header line");
  }
  std::vector<AccountingRecord> out;
  for (std::size_t li = 1; li < lines.size(); ++li) {
    const auto line = lines[li];
    if (line.empty()) continue;
    const auto fields = util::split(line, '|');
    if (fields.size() != kFields) {
      throw std::invalid_argument("accounting row has " +
                                  std::to_string(fields.size()) +
                                  " fields, want 14: " + std::string(line));
    }
    AccountingRecord r;
    auto num = [&](std::size_t i) {
      const auto v = util::parse_i64(fields[i]);
      if (!v) {
        throw std::invalid_argument("bad numeric accounting field: " +
                                    std::string(fields[i]));
      }
      return *v;
    };
    r.jobid = static_cast<long>(num(0));
    r.user = std::string(fields[1]);
    r.uid = static_cast<int>(num(2));
    r.account = std::string(fields[3]);
    r.jobname = std::string(fields[4]);
    r.exe = std::string(fields[5]);
    r.queue = std::string(fields[6]);
    r.nodes = static_cast<int>(num(7));
    r.wayness = static_cast<int>(num(8));
    r.submit_time = num(9) * util::kSecond;
    r.start_time = num(10) * util::kSecond;
    r.end_time = num(11) * util::kSecond;
    r.status = std::string(fields[12]);
    if (!fields[13].empty()) {
      for (const auto host : util::split(fields[13], ',')) {
        r.hostnames.emplace_back(host);
      }
    }
    out.push_back(std::move(r));
  }
  return out;
}

void write_accounting_file(const std::filesystem::path& path,
                           const std::vector<AccountingRecord>& records) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot open accounting file " + path.string());
  }
  out << serialize_accounting(records);
}

std::vector<AccountingRecord> read_accounting_file(
    const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("no accounting file " + path.string());
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_accounting(buffer.str());
}

}  // namespace tacc::workload
