// The workload engine drives the ground-truth counters of simulated nodes
// according to the resource-demand profiles of the jobs running on them.
//
// The engine is the single source of demand semantics: both the
// full-cluster experiments (figures 1/2/5, overhead, shared nodes) and the
// per-job mini-simulations used for the large population analyses run
// through Engine::advance, so there is exactly one mapping from profile
// parameters to hardware counters.
#pragma once

#include <map>
#include <vector>

#include "simhw/cluster.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"
#include "workload/apps.hpp"
#include "workload/jobs.hpp"

namespace tacc::workload {

class Engine {
 public:
  /// The engine advances the given cluster's nodes from `start`.
  Engine(simhw::Cluster& cluster, util::SimTime start);

  util::SimTime now() const noexcept { return now_; }

  /// Starts a job on the given node indices; spawns its processes. The
  /// spec's profile name is resolved through find_profile.
  void start_job(const JobSpec& spec, std::vector<std::size_t> node_indices);

  /// Ends a job: removes its processes and releases its memory.
  void end_job(long jobid);

  /// Jobs currently running on a node (most nodes: 0 or 1; shared nodes
  /// can host several).
  std::vector<long> jobs_on(std::size_t node_index) const;

  /// Node indices of a running job, or nullptr.
  const std::vector<std::size_t>* nodes_of(long jobid) const;

  /// Hostnames of a running job's nodes.
  std::vector<std::string> hostnames_of(long jobid) const;

  /// Advances simulated time by dt, applying every running job's demand
  /// and the OS baseline to all nodes. Failed nodes are skipped (their
  /// counters freeze, like a crashed host).
  ///
  /// Internally the engine integrates in fixed quanta (kQuantum) with
  /// per-quantum jitter indexed by absolute time, so the accumulated
  /// counters are independent of how advance() calls are sliced — this is
  /// what makes the ARC metrics sampling-interval invariant end to end.
  void advance(util::SimTime dt);

  /// Demand-integration quantum.
  static constexpr util::SimTime kQuantum = util::kMinute;

  /// Aggregate Lustre metadata-server request rate (reqs/s) observed over
  /// the previous quantum across the whole cluster. Service times scale
  /// with this load (shared-MDS queueing), which is how one job's
  /// metadata storm raises every other job's MDCWait — the interference
  /// mechanism of paper section VI-A.
  double mds_load_ps() const noexcept { return mds_load_prev_ps_; }

  /// MDS throughput at which service time doubles.
  static constexpr double kMdsCapacityReqsPs = 100000.0;

  /// Aggregate OSS request rate over the previous quantum (reqs/s).
  double oss_load_ps() const noexcept { return oss_load_prev_ps_; }
  /// OSS throughput at which service time doubles.
  static constexpr double kOssCapacityReqsPs = 40000.0;

 private:
  struct Running {
    JobSpec spec;
    const AppProfile* profile;
    std::vector<std::size_t> nodes;
    util::Rng rng;
  };

  void apply_baseline(simhw::Node& node, double dt_s);
  /// Applies one job's demand to one of its nodes. `core_offset` is the
  /// first logical cpu assigned to this job on the node (jobs sharing a
  /// node occupy disjoint core ranges). Returns the number of cpus claimed.
  int apply_job(Running& job, std::size_t local_index, simhw::Node& node,
                double dt_s, int core_offset);
  void advance_step(util::SimTime dt);
  void update_memory(simhw::Node& node, std::size_t node_index);

  simhw::Cluster* cluster_;
  util::SimTime now_;
  std::map<long, Running> jobs_;
  int next_pid_ = 4000;
  // Shared-MDS queueing state: the previous quantum's aggregate request
  // rate shapes this quantum's service times (one-quantum lag keeps the
  // integration single-pass and deterministic).
  double mds_load_prev_ps_ = 0.0;
  double mds_load_accum_reqs_ = 0.0;
  double oss_load_prev_ps_ = 0.0;
  double oss_load_accum_reqs_ = 0.0;
};

/// Coefficients mapping Lustre demand to lost user-space time (the
/// mechanism behind the paper's negative CPU_Usage correlations): the
/// penalty fraction is min(kMaxIoPenalty, kMdcPenalty*mdc_reqs_ps +
/// kOscPenalty*osc_reqs_ps + kBwPenalty*lustre_bytes_ps).
inline constexpr double kMdcPenaltyPerReq = 3.6e-6;
inline constexpr double kOscPenaltyPerReq = 6.0e-5;
inline constexpr double kBwPenaltyPerByte = 5.0e-10;
inline constexpr double kMaxIoPenalty = 0.60;

}  // namespace tacc::workload
