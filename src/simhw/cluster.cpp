#include "simhw/cluster.hpp"

#include <cstdio>

#include "util/rng.hpp"

namespace tacc::simhw {

std::string Cluster::hostname_for(int index, int nodes_per_rack) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "c%03d-%03d", 400 + index / nodes_per_rack,
                1 + index % nodes_per_rack);
  return buf;
}

Cluster::Cluster(const ClusterConfig& config) : config_(config) {
  util::Rng rng("cluster.phi", 7);
  nodes_.reserve(static_cast<std::size_t>(config.num_nodes));
  for (int i = 0; i < config.num_nodes; ++i) {
    NodeConfig nc;
    nc.hostname = hostname_for(i, config.nodes_per_rack);
    nc.uarch = config.uarch;
    nc.topology = config.topology;
    nc.mem_total_kb = config.mem_total_kb;
    nc.has_phi = rng.bernoulli(config.phi_fraction);
    nc.has_lustre = config.has_lustre;
    nc.has_ib = config.has_ib;
    nodes_.push_back(std::make_unique<Node>(std::move(nc)));
  }
}

Node* Cluster::find(const std::string& hostname) noexcept {
  for (auto& n : nodes_) {
    if (n->hostname() == hostname) return n.get();
  }
  return nullptr;
}

const Node* Cluster::find(const std::string& hostname) const noexcept {
  return const_cast<Cluster*>(this)->find(hostname);
}

}  // namespace tacc::simhw
