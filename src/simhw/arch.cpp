#include "simhw/arch.hpp"

#include <array>

namespace tacc::simhw {
namespace {

// Event encodings are modeled on the Intel SDM encodings for each part;
// what matters for the reproduction is that they differ per architecture so
// that programming the wrong table yields wrong counts (verified by tests).
std::vector<PmcEncoding> nhm_events() {
  return {
      {CoreEvent::FpScalar, 0x10, 0x01},   // FP_COMP_OPS_EXE.SSE_FP_SCALAR
      {CoreEvent::FpVector, 0x10, 0x10},   // FP_COMP_OPS_EXE.SSE_FP_PACKED
      {CoreEvent::LoadsAll, 0x0B, 0x01},   // MEM_INST_RETIRED.LOADS
      {CoreEvent::L1Hits, 0xCB, 0x01},     // MEM_LOAD_RETIRED.L1D_HIT
      {CoreEvent::L2Hits, 0xCB, 0x02},     // MEM_LOAD_RETIRED.L2_HIT
      {CoreEvent::LlcHits, 0xCB, 0x04},    // MEM_LOAD_RETIRED.LLC_UNSHARED_HIT
      {CoreEvent::Branches, 0xC4, 0x00},   // BR_INST_RETIRED.ALL_BRANCHES
      {CoreEvent::StallsTotal, 0xA2, 0x01} // RESOURCE_STALLS.ANY
  };
}

std::vector<PmcEncoding> snb_like_events() {
  return {
      {CoreEvent::FpScalar, 0x10, 0x80},   // FP_COMP_OPS_EXE.SSE_SCALAR_DOUBLE
      {CoreEvent::FpVector, 0x11, 0x02},   // SIMD_FP_256.PACKED_DOUBLE
      {CoreEvent::LoadsAll, 0xD0, 0x81},   // MEM_UOPS_RETIRED.ALL_LOADS
      {CoreEvent::L1Hits, 0xD1, 0x01},     // MEM_LOAD_UOPS_RETIRED.L1_HIT
      {CoreEvent::L2Hits, 0xD1, 0x02},     // MEM_LOAD_UOPS_RETIRED.L2_HIT
      {CoreEvent::LlcHits, 0xD1, 0x04},    // MEM_LOAD_UOPS_RETIRED.LLC_HIT
      {CoreEvent::Branches, 0xC4, 0x00},
      {CoreEvent::StallsTotal, 0xA2, 0x01}};
}

std::vector<PmcEncoding> hsw_events() {
  return {
      {CoreEvent::FpScalar, 0xC7, 0x01},   // FP_ARITH style scalar-double slot
      {CoreEvent::FpVector, 0xC7, 0x10},   // packed-double slot
      {CoreEvent::LoadsAll, 0xD0, 0x81},   // MEM_UOPS_RETIRED.ALL_LOADS
      {CoreEvent::L1Hits, 0xD1, 0x01},
      {CoreEvent::L2Hits, 0xD1, 0x02},
      {CoreEvent::LlcHits, 0xD1, 0x04},
      {CoreEvent::Branches, 0xC4, 0x00},
      {CoreEvent::StallsTotal, 0xA2, 0x01}};
}

const std::array<ArchSpec, 5>& catalog() {
  static const std::array<ArchSpec, 5> specs = {{
      {Microarch::Nehalem, "nhm",
       "Intel(R) Xeon(R) CPU X5550 @ 2.67GHz", 6, 26,
       /*vector_width_doubles=*/2, 2.67, /*uncore_in_pci=*/false,
       nhm_events()},
      {Microarch::Westmere, "wsm",
       "Intel(R) Xeon(R) CPU X5680 @ 3.33GHz", 6, 44,
       /*vector_width_doubles=*/2, 3.33, /*uncore_in_pci=*/false,
       nhm_events()},
      {Microarch::SandyBridge, "snb",
       "Intel(R) Xeon(R) CPU E5-2680 0 @ 2.70GHz", 6, 45,
       /*vector_width_doubles=*/4, 2.70, /*uncore_in_pci=*/true,
       snb_like_events()},
      {Microarch::IvyBridge, "ivb",
       "Intel(R) Xeon(R) CPU E5-2680 v2 @ 2.80GHz", 6, 62,
       /*vector_width_doubles=*/4, 2.80, /*uncore_in_pci=*/true,
       snb_like_events()},
      {Microarch::Haswell, "hsw",
       "Intel(R) Xeon(R) CPU E5-2690 v3 @ 2.60GHz", 6, 63,
       /*vector_width_doubles=*/4, 2.60, /*uncore_in_pci=*/true,
       hsw_events()},
  }};
  return specs;
}

}  // namespace

const ArchSpec& arch_spec(Microarch uarch) {
  return catalog()[static_cast<std::size_t>(uarch)];
}

const std::vector<Microarch>& all_microarchs() {
  static const std::vector<Microarch> all = {
      Microarch::Nehalem, Microarch::Westmere, Microarch::SandyBridge,
      Microarch::IvyBridge, Microarch::Haswell};
  return all;
}

const ArchSpec* arch_from_cpuid(int family, int model) noexcept {
  for (const auto& spec : catalog()) {
    if (spec.cpuid_family == family && spec.cpuid_model == model) {
      return &spec;
    }
  }
  return nullptr;
}

std::string_view to_string(Microarch uarch) noexcept {
  return arch_spec(uarch).codename;
}

std::string_view to_string(CoreEvent ev) noexcept {
  switch (ev) {
    case CoreEvent::FpScalar:
      return "fp_scalar";
    case CoreEvent::FpVector:
      return "fp_vector";
    case CoreEvent::LoadsAll:
      return "loads_all";
    case CoreEvent::L1Hits:
      return "l1_hits";
    case CoreEvent::L2Hits:
      return "l2_hits";
    case CoreEvent::LlcHits:
      return "llc_hits";
    case CoreEvent::Branches:
      return "branches";
    case CoreEvent::StallsTotal:
      return "stalls_total";
  }
  return "?";
}

}  // namespace tacc::simhw
