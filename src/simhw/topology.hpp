// Node topology: sockets, cores, hardware threading. The collector registry
// probes this at runtime and adapts (4 programmable PMCs per core with
// hyperthreading enabled, 8 without — paper section III-B).
#pragma once

#include "simhw/msr.hpp"

namespace tacc::simhw {

struct Topology {
  int sockets = 2;
  int cores_per_socket = 8;
  bool hyperthreading = false;

  int physical_cores() const noexcept { return sockets * cores_per_socket; }

  /// Logical CPUs visible to the OS (and to /proc/stat).
  int logical_cpus() const noexcept {
    return physical_cores() * (hyperthreading ? 2 : 1);
  }

  /// Linux-like enumeration: cpus [0, physical) are the first hardware
  /// thread of each core, socket-major; cpus [physical, 2*physical) are the
  /// hyperthread siblings.
  int socket_of_cpu(int cpu) const noexcept {
    const int phys = cpu % physical_cores();
    return phys / cores_per_socket;
  }

  /// Physical core index of a logical cpu.
  int core_of_cpu(int cpu) const noexcept { return cpu % physical_cores(); }

  /// Programmable counters available per logical cpu.
  int pmcs_per_core() const noexcept {
    return hyperthreading ? msr::kPmcsWithHt : msr::kMaxPmcs;
  }
};

}  // namespace tacc::simhw
