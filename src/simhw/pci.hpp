// Simulated PCI configuration-space layout for the uncore counters.
// On SNB/IVB/HSW server parts the integrated memory controller (iMC) and
// QPI link-layer performance counters are exposed as PCI devices; the real
// tool reads them through /proc/bus/pci or /sys/bus/pci config space. The
// simulated layout uses one bus per socket.
#pragma once

#include <cstdint>

namespace tacc::simhw::pci {

/// Bus number for a socket's uncore devices.
inline constexpr int bus_of_socket(int socket) noexcept { return socket; }

// iMC performance counter device (one per socket in the sim; real parts
// have one per channel — the simulator aggregates channels).
inline constexpr int kImcDevice = 0x10;
inline constexpr int kImcFunction = 0;
inline constexpr int kImcCasReadsOffset = 0xA0;   // 48-bit, cache lines
inline constexpr int kImcCasWritesOffset = 0xA8;  // 48-bit, cache lines

// QPI link-layer counter device.
inline constexpr int kQpiDevice = 0x08;
inline constexpr int kQpiFunction = 0;
inline constexpr int kQpiDataFlitsOffset = 0xB0;  // 48-bit, 8-byte flits

inline constexpr int kUncoreCounterBits = 48;

/// Bytes per iMC CAS transaction (one cache line).
inline constexpr std::uint64_t kCacheLineBytes = 64;
/// Bytes per QPI data flit.
inline constexpr std::uint64_t kQpiFlitBytes = 8;

}  // namespace tacc::simhw::pci
