// Ground-truth cumulative counter state for a simulated node. The workload
// engine increments these; collectors never touch them directly — they go
// through the register/procfs interfaces of Node, which apply hardware
// quirks (counter widths, unit conversions, text formats).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace tacc::simhw {

/// Number of distinct CoreEvent values (see arch.hpp).
inline constexpr std::size_t kNumCoreEvents = 8;

/// Per-logical-cpu truth. Scheduler accounting is in jiffies (USER_HZ=100).
struct CoreState {
  std::uint64_t user = 0;
  std::uint64_t nice = 0;
  std::uint64_t system = 0;
  std::uint64_t idle = 0;
  std::uint64_t iowait = 0;

  std::uint64_t instructions = 0;
  std::uint64_t cycles = 0;
  std::uint64_t ref_cycles = 0;
  /// Indexed by static_cast<size_t>(CoreEvent).
  std::array<std::uint64_t, kNumCoreEvents> events{};
};

/// Per-socket uncore + energy truth.
struct SocketState {
  std::uint64_t imc_cas_reads = 0;   // cache lines read from DRAM
  std::uint64_t imc_cas_writes = 0;  // cache lines written to DRAM
  std::uint64_t qpi_data_flits = 0;  // 8-byte flits on the socket's links
  std::uint64_t energy_pkg_uj = 0;   // package energy, microjoules
  std::uint64_t energy_pp0_uj = 0;   // core-only energy
  std::uint64_t energy_dram_uj = 0;  // DRAM energy
};

/// Lustre client state for the single mounted filesystem ("work").
/// OSC traffic is spread across kNumOsts object-storage targets, matching
/// the striped layout a real client sees.
struct LustreState {
  static constexpr int kNumOsts = 4;
  // llite (VFS-level) counters.
  std::uint64_t open = 0;
  std::uint64_t close = 0;
  std::uint64_t read_bytes = 0;
  std::uint64_t write_bytes = 0;
  std::uint64_t read_samples = 0;
  std::uint64_t write_samples = 0;
  // Metadata client.
  std::uint64_t mdc_reqs = 0;
  std::uint64_t mdc_wait_us = 0;
  // Object storage clients, one slot per OST.
  std::array<std::uint64_t, kNumOsts> osc_reqs{};
  std::array<std::uint64_t, kNumOsts> osc_wait_us{};
  std::array<std::uint64_t, kNumOsts> osc_read_bytes{};
  std::array<std::uint64_t, kNumOsts> osc_write_bytes{};
  // Round-robin cursor used by add_osc-style helpers in the engine.
  int next_ost = 0;
};

/// LNET router/client counters (bytes carried for Lustre over the fabric).
struct LnetState {
  std::uint64_t send_count = 0;
  std::uint64_t recv_count = 0;
  std::uint64_t send_bytes = 0;
  std::uint64_t recv_bytes = 0;
};

/// InfiniBand HCA port counters (total fabric traffic: MPI + Lustre).
struct IbState {
  std::uint64_t rx_bytes = 0;
  std::uint64_t tx_bytes = 0;
  std::uint64_t rx_packets = 0;
  std::uint64_t tx_packets = 0;
};

/// GigE (management Ethernet) counters.
struct EthState {
  std::uint64_t rx_bytes = 0;
  std::uint64_t tx_bytes = 0;
  std::uint64_t rx_packets = 0;
  std::uint64_t tx_packets = 0;
};

/// Xeon Phi utilization truth, aggregated over the coprocessor's cores.
struct MicState {
  std::uint64_t user_jiffies = 0;
  std::uint64_t sys_jiffies = 0;
  std::uint64_t idle_jiffies = 0;
};

/// Node memory truth. `used_kb` is instantaneous (MemUsage in the paper is
/// a snapshot metric that can miss spikes; only procfs per-process HWM
/// records the true peak).
struct MemState {
  std::uint64_t total_kb = 32ULL * 1024 * 1024;  // 32 GB default (Stampede)
  std::uint64_t used_kb = 600 * 1024;            // OS baseline
};

/// Per-NUMA-node allocation counters (sysfs numastat).
struct NumaState {
  std::uint64_t numa_hit = 0;
  std::uint64_t numa_miss = 0;
  std::uint64_t numa_foreign = 0;
  std::uint64_t local_node = 0;
  std::uint64_t other_node = 0;
};

/// Kernel VM activity (/proc/vmstat subset the tool reads).
struct VmState {
  std::uint64_t pgpgin = 0;    // KB paged in from disk
  std::uint64_t pgpgout = 0;   // KB paged out
  std::uint64_t pswpin = 0;
  std::uint64_t pswpout = 0;
  std::uint64_t pgfault = 0;
  std::uint64_t pgmajfault = 0;
};

/// Local block device truth (/sys/block/<dev>/stat layout, sectors of
/// 512 bytes).
struct BlockState {
  std::uint64_t reads_completed = 0;
  std::uint64_t sectors_read = 0;
  std::uint64_t writes_completed = 0;
  std::uint64_t sectors_written = 0;
  std::uint64_t io_ticks_ms = 0;  // time the device was busy
};

/// VFS object counts (gauges from /proc/sys/fs).
struct VfsState {
  std::uint64_t dentry_count = 40000;
  std::uint64_t inode_count = 35000;
  std::uint64_t file_count = 1800;
};

/// SysV shared memory and /dev/shm tmpfs usage (gauges).
struct ShmState {
  std::uint64_t sysv_segments = 0;
  std::uint64_t sysv_bytes = 0;
  std::uint64_t tmpfs_bytes = 0;
};

/// One process visible in the simulated procfs.
struct ProcessInfo {
  int pid = 0;
  std::string name;
  int uid = 0;
  long jobid = 0;  // which job spawned it (accounting knowledge, not procfs)
  std::uint64_t vm_size_kb = 0;
  std::uint64_t vm_peak_kb = 0;
  std::uint64_t vm_lck_kb = 0;
  std::uint64_t vm_rss_kb = 0;
  std::uint64_t vm_hwm_kb = 0;
  std::uint64_t vm_data_kb = 0;
  std::uint64_t vm_stk_kb = 0;
  std::uint64_t vm_exe_kb = 0;
  int threads = 1;
  std::uint64_t cpus_allowed = ~0ULL;  // affinity bitmask
  std::uint64_t mems_allowed = 0x3;    // NUMA node mask
};

/// Full truth state of one node.
struct NodeState {
  /// Node-local clock in microseconds since the epoch; advanced by the
  /// workload engine and used for snapshot_time fields in Lustre stats.
  std::int64_t now_us = 0;
  std::vector<CoreState> cores;     // one per logical cpu
  std::vector<SocketState> sockets;
  LustreState lustre;
  LnetState lnet;
  IbState ib;
  EthState eth;
  MicState mic;
  MemState mem;
  std::vector<NumaState> numa;  // one per socket/NUMA node
  VmState vm;
  BlockState block;  // the local scratch disk (sda)
  VfsState vfs;
  ShmState shm;
  std::map<int, ProcessInfo> processes;  // keyed by pid
};

}  // namespace tacc::simhw
