#include "simhw/node.hpp"

#include <algorithm>
#include <charconv>

#include "simhw/pci.hpp"
#include "simhw/procfs.hpp"
#include "util/strings.hpp"

namespace tacc::simhw {
namespace {

constexpr std::uint64_t mask_bits(std::uint64_t v, int bits) noexcept {
  return bits >= 64 ? v : v & ((1ULL << bits) - 1);
}

}  // namespace

Node::Node(NodeConfig config) : config_(std::move(config)) {
  state_.cores.resize(
      static_cast<std::size_t>(config_.topology.logical_cpus()));
  state_.sockets.resize(static_cast<std::size_t>(config_.topology.sockets));
  state_.numa.resize(static_cast<std::size_t>(config_.topology.sockets));
  state_.mem.total_kb = config_.mem_total_kb;
  state_.mem.used_kb = std::min<std::uint64_t>(600 * 1024, config_.mem_total_kb / 8);
  evtsel_.resize(state_.cores.size());
  for (auto& regs : evtsel_) regs.fill(0);
}

void Node::check_alive() const {
  if (failed_) throw NodeFailedError(config_.hostname);
}

CpuId Node::cpuid() const {
  check_alive();
  const auto& spec = arch();
  return CpuId{spec.cpuid_family, spec.cpuid_model, spec.model_name};
}

std::uint64_t Node::read_pmc(int cpu, int index) const {
  if (index >= config_.topology.pmcs_per_core()) {
    throw MsrError("PMC index beyond available counters");
  }
  const std::uint64_t sel = evtsel_[static_cast<std::size_t>(cpu)]
                                   [static_cast<std::size_t>(index)];
  if (!(sel & msr::kEvtSelEnable)) return 0;
  const auto event = static_cast<std::uint8_t>(sel & 0xFF);
  const auto umask = static_cast<std::uint8_t>((sel >> 8) & 0xFF);
  for (const auto& enc : arch().pmc_events) {
    if (enc.event_select == event && enc.umask == umask) {
      const auto& core = state_.cores[static_cast<std::size_t>(cpu)];
      return mask_bits(core.events[static_cast<std::size_t>(enc.event)],
                       msr::kCoreCounterBits);
    }
  }
  // An encoding the PMU does not implement simply counts nothing.
  return 0;
}

std::uint64_t Node::read_msr(int cpu, std::uint32_t reg) const {
  check_alive();
  if (cpu < 0 || cpu >= config_.topology.logical_cpus()) {
    throw MsrError("bad cpu index");
  }
  const auto& core = state_.cores[static_cast<std::size_t>(cpu)];
  switch (reg) {
    case msr::kFixedCtrInstructions:
      return mask_bits(core.instructions, msr::kCoreCounterBits);
    case msr::kFixedCtrCycles:
      return mask_bits(core.cycles, msr::kCoreCounterBits);
    case msr::kFixedCtrRefCycles:
      return mask_bits(core.ref_cycles, msr::kCoreCounterBits);
    case msr::kRaplPowerUnit:
      return static_cast<std::uint64_t>(msr::kEnergyStatusUnits)
             << msr::kEnergyStatusUnitsShift;
    default:
      break;
  }
  if (reg >= msr::kPerfEvtSelBase &&
      reg < msr::kPerfEvtSelBase + msr::kMaxPmcs) {
    return evtsel_[static_cast<std::size_t>(cpu)][reg - msr::kPerfEvtSelBase];
  }
  if (reg >= msr::kPmcBase && reg < msr::kPmcBase + msr::kMaxPmcs) {
    return read_pmc(cpu, static_cast<int>(reg - msr::kPmcBase));
  }
  // RAPL energy counters are per socket; readable from any cpu of the
  // socket. Truth is microjoules; the register is in 2^-ESU joule units
  // and 32 bits wide.
  const auto& sock = state_.sockets[static_cast<std::size_t>(
      config_.topology.socket_of_cpu(cpu))];
  auto rapl = [](std::uint64_t uj) {
    const unsigned __int128 units =
        static_cast<unsigned __int128>(uj) * (1ULL << msr::kEnergyStatusUnits) /
        1000000u;
    return static_cast<std::uint64_t>(units) & 0xFFFFFFFFULL;
  };
  switch (reg) {
    case msr::kPkgEnergyStatus:
      return rapl(sock.energy_pkg_uj);
    case msr::kPp0EnergyStatus:
      return rapl(sock.energy_pp0_uj);
    case msr::kDramEnergyStatus:
      return rapl(sock.energy_dram_uj);
    default:
      throw MsrError("unimplemented MSR");
  }
}

void Node::write_msr(int cpu, std::uint32_t reg, std::uint64_t value) {
  check_alive();
  if (cpu < 0 || cpu >= config_.topology.logical_cpus()) {
    throw MsrError("bad cpu index");
  }
  if (reg >= msr::kPerfEvtSelBase &&
      reg < msr::kPerfEvtSelBase +
                static_cast<std::uint32_t>(config_.topology.pmcs_per_core())) {
    evtsel_[static_cast<std::size_t>(cpu)][reg - msr::kPerfEvtSelBase] = value;
    return;
  }
  throw MsrError("register not writable");
}

std::optional<std::uint64_t> Node::pci_read64(int bus, int device,
                                              int function,
                                              int offset) const {
  check_alive();
  if (!arch().uncore_in_pci) return std::nullopt;
  if (bus < 0 || bus >= config_.topology.sockets) return std::nullopt;
  const auto& sock = state_.sockets[static_cast<std::size_t>(bus)];
  if (device == pci::kImcDevice && function == pci::kImcFunction) {
    if (offset == pci::kImcCasReadsOffset) {
      return mask_bits(sock.imc_cas_reads, pci::kUncoreCounterBits);
    }
    if (offset == pci::kImcCasWritesOffset) {
      return mask_bits(sock.imc_cas_writes, pci::kUncoreCounterBits);
    }
  }
  if (device == pci::kQpiDevice && function == pci::kQpiFunction &&
      offset == pci::kQpiDataFlitsOffset) {
    return mask_bits(sock.qpi_data_flits, pci::kUncoreCounterBits);
  }
  return std::nullopt;
}

std::optional<std::string> Node::read_file(const std::string& path) const {
  check_alive();
  using util::starts_with;
  if (path == "/proc/stat") return procfs::render_stat(*this);
  if (path == "/proc/meminfo") return procfs::render_meminfo(*this);
  if (path == "/proc/cpuinfo") return procfs::render_cpuinfo(*this);
  if (path == "/proc/net/dev") return procfs::render_net_dev(*this);
  if (path == "/proc/sys/lnet/stats") {
    if (!config_.has_lustre) return std::nullopt;
    return procfs::render_lnet_stats(*this);
  }
  if (starts_with(path, "/proc/fs/lustre/")) {
    if (!config_.has_lustre) return std::nullopt;
    if (path == "/proc/fs/lustre/llite/" + procfs::llite_instance(*this) +
                    "/stats") {
      return procfs::render_llite_stats(*this);
    }
    if (path == "/proc/fs/lustre/mdc/" + procfs::mdc_instance(*this) +
                    "/stats") {
      return procfs::render_mdc_stats(*this);
    }
    for (int ost = 0; ost < LustreState::kNumOsts; ++ost) {
      if (path == "/proc/fs/lustre/osc/" + procfs::osc_instance(*this, ost) +
                      "/stats") {
        return procfs::render_osc_stats(*this, ost);
      }
    }
    return std::nullopt;
  }
  if (starts_with(path, "/sys/class/infiniband/")) {
    if (!config_.has_ib) return std::nullopt;
    const std::string base =
        "/sys/class/infiniband/" + config_.ib_hca + "/ports/1/counters_ext/";
    auto value = [](std::uint64_t v) {
      return std::to_string(v) + "\n";
    };
    // port_*_data_64 counters are in units of 4-byte words (IB quirk).
    if (path == base + "port_rcv_data_64") {
      return value(state_.ib.rx_bytes / 4);
    }
    if (path == base + "port_xmit_data_64") {
      return value(state_.ib.tx_bytes / 4);
    }
    if (path == base + "port_rcv_pkts_64") return value(state_.ib.rx_packets);
    if (path == base + "port_xmit_pkts_64") return value(state_.ib.tx_packets);
    return std::nullopt;
  }
  if (path == "/sys/class/mic/mic0/stats") {
    if (!config_.has_phi) return std::nullopt;
    return procfs::render_mic_stats(*this);
  }
  if (path == "/proc/vmstat") return procfs::render_vmstat(*this);
  if (path == "/sys/block/sda/stat") return procfs::render_block_stat(*this);
  if (path == "/proc/sys/fs/dentry-state") {
    return procfs::render_dentry_state(*this);
  }
  if (path == "/proc/sys/fs/inode-nr") return procfs::render_inode_nr(*this);
  if (path == "/proc/sys/fs/file-nr") return procfs::render_file_nr(*this);
  if (path == "/proc/sysvipc/shm") return procfs::render_sysvipc_shm(*this);
  if (path == "/sys/kernel/mm/tmpfs_bytes") {
    return procfs::render_tmpfs_bytes(*this);
  }
  if (starts_with(path, "/sys/devices/system/node/node") &&
      util::ends_with(path, "/numastat")) {
    const std::string_view mid(path.data() + 29, path.size() - 29 - 9);
    int numa_node = 0;
    const auto [ptr, ec] =
        std::from_chars(mid.data(), mid.data() + mid.size(), numa_node);
    if (ec == std::errc{} && ptr == mid.data() + mid.size() &&
        numa_node >= 0 && numa_node < config_.topology.sockets) {
      return procfs::render_numastat(*this, numa_node);
    }
    return std::nullopt;
  }
  // /proc/<pid>/status
  if (starts_with(path, "/proc/") && util::ends_with(path, "/status")) {
    const std::string_view mid(path.data() + 6, path.size() - 6 - 7);
    int pid = 0;
    const auto [ptr, ec] =
        std::from_chars(mid.data(), mid.data() + mid.size(), pid);
    if (ec == std::errc{} && ptr == mid.data() + mid.size()) {
      const auto it = state_.processes.find(pid);
      if (it == state_.processes.end()) return std::nullopt;
      return procfs::render_pid_status(*this, it->second);
    }
  }
  return std::nullopt;
}

std::vector<std::string> Node::list_dir(const std::string& path) const {
  check_alive();
  std::vector<std::string> out;
  if (path == "/proc/fs/lustre/llite") {
    if (config_.has_lustre) out.push_back(procfs::llite_instance(*this));
  } else if (path == "/proc/fs/lustre/mdc") {
    if (config_.has_lustre) out.push_back(procfs::mdc_instance(*this));
  } else if (path == "/proc/fs/lustre/osc") {
    if (config_.has_lustre) {
      for (int ost = 0; ost < LustreState::kNumOsts; ++ost) {
        out.push_back(procfs::osc_instance(*this, ost));
      }
    }
  } else if (path == "/sys/class/infiniband") {
    if (config_.has_ib) out.push_back(config_.ib_hca);
  } else if (path == "/sys/class/mic") {
    if (config_.has_phi) out.push_back("mic0");
  } else if (path == "/sys/devices/system/node") {
    for (int s = 0; s < config_.topology.sockets; ++s) {
      out.push_back("node" + std::to_string(s));
    }
  } else if (path == "/sys/block") {
    out.push_back("sda");
  } else if (path == "/proc") {
    for (const auto& [pid, _] : state_.processes) {
      out.push_back(std::to_string(pid));
    }
  }
  return out;
}

std::vector<int> Node::list_pids() const {
  check_alive();
  std::vector<int> pids;
  pids.reserve(state_.processes.size());
  for (const auto& [pid, _] : state_.processes) pids.push_back(pid);
  return pids;
}

void Node::spawn_process(ProcessInfo info) {
  const int pid = info.pid;
  state_.processes[pid] = std::move(info);
}

void Node::kill_process(int pid) { state_.processes.erase(pid); }

}  // namespace tacc::simhw
