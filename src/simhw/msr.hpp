// Model-specific register addresses understood by the simulated nodes.
// These follow the real Intel layout so the collectors read the same
// registers the C tool reads via /dev/cpu/<n>/msr.
#pragma once

#include <cstdint>

namespace tacc::simhw::msr {

// Fixed-function counters (IA32_FIXED_CTRx); always counting in the sim.
inline constexpr std::uint32_t kFixedCtrInstructions = 0x309;
inline constexpr std::uint32_t kFixedCtrCycles = 0x30A;
inline constexpr std::uint32_t kFixedCtrRefCycles = 0x30B;

// Programmable counters. PERFEVTSELx selects the event counted by PMCx.
// With hyperthreading enabled, only 4 counters exist per logical core;
// with it disabled, 8 (as on real SNB+ parts).
inline constexpr std::uint32_t kPerfEvtSelBase = 0x186;  // 0x186..0x18D
inline constexpr std::uint32_t kPmcBase = 0x0C1;         // 0x0C1..0x0C8
inline constexpr int kMaxPmcs = 8;
inline constexpr int kPmcsWithHt = 4;

// PERFEVTSEL fields (subset the collectors use).
inline constexpr std::uint64_t kEvtSelEnable = 1ULL << 22;
inline constexpr std::uint64_t kEvtSelUser = 1ULL << 16;

inline constexpr std::uint64_t make_evtsel(std::uint8_t event,
                                           std::uint8_t umask) noexcept {
  return static_cast<std::uint64_t>(event) |
         (static_cast<std::uint64_t>(umask) << 8) | kEvtSelEnable |
         kEvtSelUser;
}

// Running Average Power Limit. Energy status registers are 32-bit
// cumulative counters in units of 1/2^ESU joules; kEnergyStatusUnits
// encodes ESU in bits 12:8 (we model ESU = 16, i.e. ~15.26 uJ/LSB, the
// common value on server parts).
inline constexpr std::uint32_t kRaplPowerUnit = 0x606;
inline constexpr std::uint32_t kPkgEnergyStatus = 0x611;   // cores + LLC + ...
inline constexpr std::uint32_t kPp0EnergyStatus = 0x639;   // cores only
inline constexpr std::uint32_t kDramEnergyStatus = 0x619;  // DRAM
inline constexpr int kEnergyStatusUnitsShift = 8;
inline constexpr int kEnergyStatusUnits = 16;  // 2^-16 J per LSB

// Counter widths: programmable/fixed core counters are 48-bit, RAPL energy
// status registers are 32-bit. The analysis pipeline corrects for wrap.
inline constexpr int kCoreCounterBits = 48;
inline constexpr int kRaplCounterBits = 32;

}  // namespace tacc::simhw::msr
