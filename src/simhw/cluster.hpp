// A simulated cluster: a set of nodes with Stampede-style hostnames, plus
// failure injection. Node placement/racking follows the "cRRR-NNN"
// convention (rack, slot).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "simhw/node.hpp"

namespace tacc::simhw {

struct ClusterConfig {
  int num_nodes = 16;
  Microarch uarch = Microarch::Haswell;
  Topology topology{};
  std::uint64_t mem_total_kb = 32ULL * 1024 * 1024;
  /// Fraction of nodes carrying a Xeon Phi coprocessor (Stampede: all
  /// compute nodes had one; smaller systems none).
  double phi_fraction = 1.0;
  bool has_lustre = true;
  bool has_ib = true;
  int nodes_per_rack = 40;
};

class Cluster {
 public:
  explicit Cluster(const ClusterConfig& config);

  std::size_t size() const noexcept { return nodes_.size(); }
  Node& node(std::size_t i) { return *nodes_.at(i); }
  const Node& node(std::size_t i) const { return *nodes_.at(i); }

  /// Returns nullptr if the hostname is unknown.
  Node* find(const std::string& hostname) noexcept;
  const Node* find(const std::string& hostname) const noexcept;

  const ClusterConfig& config() const noexcept { return config_; }

  /// Marks a node failed/recovered (cron-mode data-loss experiments).
  void fail_node(std::size_t i) { nodes_.at(i)->set_failed(true); }
  void recover_node(std::size_t i) { nodes_.at(i)->set_failed(false); }

  /// Builds the canonical hostname for node index i.
  static std::string hostname_for(int index, int nodes_per_rack);

 private:
  ClusterConfig config_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

}  // namespace tacc::simhw
