// Renders the procfs/sysfs text files a collector reads, in the genuine
// Linux / Lustre formats (column layouts, units, header lines). Keeping the
// renderers separate from Node makes them unit-testable against captured
// fixtures.
#pragma once

#include <string>

namespace tacc::simhw {

class Node;
struct ProcessInfo;

namespace procfs {

/// /proc/stat — per-cpu jiffies lines plus the aggregate "cpu" line.
std::string render_stat(const Node& node);

/// /proc/meminfo — MemTotal/MemFree/Buffers/Cached in kB.
std::string render_meminfo(const Node& node);

/// /proc/cpuinfo — enough fields for identification (processor, family,
/// model, model name) per logical cpu.
std::string render_cpuinfo(const Node& node);

/// /proc/net/dev — header plus one line per interface (lo, eth0, ib0).
std::string render_net_dev(const Node& node);

/// /proc/<pid>/status — Name/Uid/Vm*/Threads/Cpus_allowed_list fields.
std::string render_pid_status(const Node& node, const ProcessInfo& proc);

/// /proc/fs/lustre/llite/<fs>-<id>/stats.
std::string render_llite_stats(const Node& node);

/// /proc/fs/lustre/mdc/<target>/stats.
std::string render_mdc_stats(const Node& node);

/// /proc/fs/lustre/osc/<target>/stats for one OST index.
std::string render_osc_stats(const Node& node, int ost);

/// /proc/sys/lnet/stats — the 11-column LNET counter line.
std::string render_lnet_stats(const Node& node);

/// /sys/class/mic/mic0/stats — host-side Phi utilization (modeled format).
std::string render_mic_stats(const Node& node);

/// /sys/devices/system/node/node<N>/numastat.
std::string render_numastat(const Node& node, int numa_node);

/// /proc/vmstat (the subset of fields the tool reads).
std::string render_vmstat(const Node& node);

/// /sys/block/<dev>/stat — the 11-column block device statistics line.
std::string render_block_stat(const Node& node);

/// /proc/sys/fs/{dentry-state,inode-nr,file-nr} single-file renderings.
std::string render_dentry_state(const Node& node);
std::string render_inode_nr(const Node& node);
std::string render_file_nr(const Node& node);

/// /proc/sysvipc/shm — header plus one row per segment (aggregated here).
std::string render_sysvipc_shm(const Node& node);

/// /sys/kernel/mm/tmpfs usage surrogate: the tool stats /dev/shm; the sim
/// exposes the byte count directly.
std::string render_tmpfs_bytes(const Node& node);

/// Instance directory names, e.g. "work-ffff8803af1c7000" for llite.
std::string llite_instance(const Node& node);
std::string mdc_instance(const Node& node);
std::string osc_instance(const Node& node, int ost);

}  // namespace procfs
}  // namespace tacc::simhw
