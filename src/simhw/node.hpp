// A simulated compute node.
//
// The node exposes the same low-level access surfaces the real tool uses:
//   * MSR reads/writes keyed by (logical cpu, register address), including
//     programmable-counter event-select semantics and counter-width masking;
//   * PCI config-space reads for the uncore iMC/QPI counters;
//   * procfs/sysfs text files rendered in genuine Linux/Lustre formats;
//   * CPUID identity for architecture auto-detection.
//
// Ground truth lives in NodeState (counters.hpp) and is mutated only by the
// workload engine. Collectors read through the hardware interfaces, so
// every quirk (48-bit PMCs, 32-bit RAPL, IB data counters in 4-byte words)
// is applied on the read path exactly once.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "simhw/arch.hpp"
#include "simhw/counters.hpp"
#include "simhw/topology.hpp"

namespace tacc::simhw {

/// Thrown when accessing a failed (crashed/powered-off) node, mirroring the
/// I/O errors the real tool would see.
class NodeFailedError : public std::runtime_error {
 public:
  explicit NodeFailedError(const std::string& host)
      : std::runtime_error("node failed: " + host) {}
};

/// Thrown for reads of unimplemented MSRs / bad cpu indices (a real rdmsr
/// of an unimplemented register raises #GP).
class MsrError : public std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// CPUID identity as the detection code sees it.
struct CpuId {
  int family = 0;
  int model = 0;
  std::string model_name;
};

struct NodeConfig {
  std::string hostname = "c400-001";
  Microarch uarch = Microarch::Haswell;
  Topology topology{};
  std::uint64_t mem_total_kb = 32ULL * 1024 * 1024;
  bool has_phi = false;     // Xeon Phi coprocessor present
  bool has_lustre = true;   // Lustre client mounted
  bool has_ib = true;       // InfiniBand HCA present
  std::string lustre_fs = "work";
  std::string ib_hca = "mlx4_0";
};

class Node {
 public:
  explicit Node(NodeConfig config);

  const std::string& hostname() const noexcept { return config_.hostname; }
  const NodeConfig& config() const noexcept { return config_; }
  const Topology& topology() const noexcept { return config_.topology; }
  const ArchSpec& arch() const { return arch_spec(config_.uarch); }

  /// Mutable truth state; only the workload engine should use this.
  NodeState& state() noexcept { return state_; }
  const NodeState& state() const noexcept { return state_; }

  // -- failure injection ---------------------------------------------------
  void set_failed(bool failed) noexcept { failed_ = failed; }
  bool failed() const noexcept { return failed_; }

  // -- CPUID ---------------------------------------------------------------
  CpuId cpuid() const;

  // -- MSR interface -------------------------------------------------------
  /// Reads a register on a logical cpu. Throws MsrError for unknown
  /// registers or bad cpu indices; NodeFailedError if the node is down.
  std::uint64_t read_msr(int cpu, std::uint32_t reg) const;
  /// Writes a register (only PERFEVTSELx are writable).
  void write_msr(int cpu, std::uint32_t reg, std::uint64_t value);

  // -- PCI config space ----------------------------------------------------
  /// 64-bit read at (bus, device, function, offset). Returns nullopt when
  /// the device does not exist (e.g. uncore on pre-SNB parts).
  std::optional<std::uint64_t> pci_read64(int bus, int device, int function,
                                          int offset) const;

  // -- Filesystem surfaces ---------------------------------------------------
  /// Renders a procfs/sysfs file. Returns nullopt for unknown paths or
  /// absent hardware (no Lustre mount, no Phi, ...).
  std::optional<std::string> read_file(const std::string& path) const;
  /// Lists directory entries for the small set of directories collectors
  /// enumerate (Lustre target dirs, IB HCAs, MIC devices, /proc pids).
  std::vector<std::string> list_dir(const std::string& path) const;
  /// Pids with live procfs entries.
  std::vector<int> list_pids() const;

  // -- Process lifecycle helpers (used by the engine / shared-node sim) ----
  /// Registers a process; pid must be unique on the node.
  void spawn_process(ProcessInfo info);
  /// Removes a process; no-op if absent.
  void kill_process(int pid);

 private:
  void check_alive() const;
  std::uint64_t read_pmc(int cpu, int index) const;

  NodeConfig config_;
  NodeState state_;
  bool failed_ = false;
  /// PERFEVTSEL shadow registers, [cpu][counter index].
  std::vector<std::array<std::uint64_t, msr::kMaxPmcs>> evtsel_;
};

}  // namespace tacc::simhw
