// Chip architecture catalog.
//
// The paper (section III-B) lists Nehalem, Westmere, Sandy Bridge,
// Ivy Bridge and Haswell support with automatic runtime identification, plus
// Xeon Phi (Knights Corner) coprocessors accessed from the host. Each
// architecture here carries the CPUID signature used for detection, the
// performance-counter event encodings the collector must program, and the
// uncore access method (PCI config space on SNB+, MSR-based on NHM/WSM).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace tacc::simhw {

enum class Microarch {
  Nehalem,
  Westmere,
  SandyBridge,
  IvyBridge,
  Haswell,
};

/// Names every architecture-dependent core event the collectors know how to
/// program. The encoding (event select / umask) differs per architecture.
enum class CoreEvent : std::uint8_t {
  FpScalar,   // scalar double-precision FP operations retired
  FpVector,   // packed (SSE/AVX) double-precision FP instructions retired
  LoadsAll,   // all retired load uops (any cache level)
  L1Hits,     // load uops that hit L1D
  L2Hits,     // load uops that hit L2
  LlcHits,    // load uops that hit last-level cache
  Branches,   // retired branch instructions (extra slot, HT-off only)
  StallsTotal // cycles with no uops dispatched (extra slot, HT-off only)
};

/// A programmable-counter encoding: what gets written into IA32_PERFEVTSELx.
struct PmcEncoding {
  CoreEvent event;
  std::uint8_t event_select;  // bits 0-7 of PERFEVTSEL
  std::uint8_t umask;         // bits 8-15
};

/// Static description of one microarchitecture.
struct ArchSpec {
  Microarch uarch;
  std::string codename;    // short tag used in raw stats files: "hsw" etc.
  std::string model_name;  // /proc/cpuinfo "model name" string
  int cpuid_family;        // always 6 for these parts
  int cpuid_model;         // e.g. 63 for Haswell-EP
  int vector_width_doubles;  // doubles per vector FP instruction (SSE=2, AVX=4)
  double nominal_ghz;
  bool uncore_in_pci;  // SNB+: uncore IMC/QPI counters live in PCI config
                       // space; NHM/WSM expose them via uncore MSRs
  /// Programmable events in priority order. With hyperthreading enabled a
  /// core has 4 programmable counters, with it disabled 8; the collector
  /// programs the first 4 or 8 entries accordingly (paper section III-B:
  /// the tool "will detect the topology of a node and modify its collection
  /// procedure appropriately for processors with and without hardware
  /// threading").
  std::vector<PmcEncoding> pmc_events;
};

/// Returns the catalog entry for a microarchitecture.
const ArchSpec& arch_spec(Microarch uarch);

/// All supported architectures (for parameterized tests and the registry).
const std::vector<Microarch>& all_microarchs();

/// Resolves a CPUID (family, model) pair to a microarchitecture.
/// Returns nullptr for unknown signatures (the collector then falls back
/// to architecture-independent devices only).
const ArchSpec* arch_from_cpuid(int family, int model) noexcept;

std::string_view to_string(Microarch uarch) noexcept;
std::string_view to_string(CoreEvent ev) noexcept;

}  // namespace tacc::simhw
