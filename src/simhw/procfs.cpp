#include "simhw/procfs.hpp"

#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "simhw/node.hpp"
#include "util/rng.hpp"

namespace tacc::simhw::procfs {
namespace {

/// Deterministic 16-hex-digit instance suffix derived from the hostname,
/// mimicking the kernel pointer Lustre embeds in target directory names.
std::string instance_suffix(const Node& node, std::string_view salt) {
  const std::uint64_t h =
      util::fnv1a(node.hostname()) ^ util::fnv1a(salt);
  char buf[24];
  std::snprintf(buf, sizeof buf, "ffff%012llx",
                static_cast<unsigned long long>(h & 0xffffffffffffULL));
  return buf;
}

void append_kv_kb(std::ostringstream& os, const char* key,
                  std::uint64_t kb) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%-16s%8llu kB\n", key,
                static_cast<unsigned long long>(kb));
  os << buf;
}

}  // namespace

std::string render_stat(const Node& node) {
  const auto& cores = node.state().cores;
  std::uint64_t tot[5] = {0, 0, 0, 0, 0};
  for (const auto& c : cores) {
    tot[0] += c.user;
    tot[1] += c.nice;
    tot[2] += c.system;
    tot[3] += c.idle;
    tot[4] += c.iowait;
  }
  std::ostringstream os;
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "cpu  %llu %llu %llu %llu %llu 0 0 0 0 0\n",
                static_cast<unsigned long long>(tot[0]),
                static_cast<unsigned long long>(tot[1]),
                static_cast<unsigned long long>(tot[2]),
                static_cast<unsigned long long>(tot[3]),
                static_cast<unsigned long long>(tot[4]));
  os << buf;
  for (std::size_t i = 0; i < cores.size(); ++i) {
    const auto& c = cores[i];
    std::snprintf(buf, sizeof buf,
                  "cpu%zu %llu %llu %llu %llu %llu 0 0 0 0 0\n", i,
                  static_cast<unsigned long long>(c.user),
                  static_cast<unsigned long long>(c.nice),
                  static_cast<unsigned long long>(c.system),
                  static_cast<unsigned long long>(c.idle),
                  static_cast<unsigned long long>(c.iowait));
    os << buf;
  }
  os << "ctxt 0\nbtime 0\nprocesses 0\n";
  return os.str();
}

std::string render_meminfo(const Node& node) {
  const auto& mem = node.state().mem;
  // A small fixed page-cache slice keeps MemFree = Total - Used - Cached
  // consistent; collectors compute used = Total - Free - Cached.
  const std::uint64_t cached = std::min<std::uint64_t>(
      256 * 1024, mem.total_kb > mem.used_kb ? mem.total_kb - mem.used_kb : 0);
  const std::uint64_t free_kb =
      mem.total_kb > mem.used_kb + cached ? mem.total_kb - mem.used_kb - cached
                                          : 0;
  std::ostringstream os;
  append_kv_kb(os, "MemTotal:", mem.total_kb);
  append_kv_kb(os, "MemFree:", free_kb);
  append_kv_kb(os, "Buffers:", 0);
  append_kv_kb(os, "Cached:", cached);
  append_kv_kb(os, "SwapTotal:", 0);
  append_kv_kb(os, "SwapFree:", 0);
  return os.str();
}

std::string render_cpuinfo(const Node& node) {
  const auto& spec = node.arch();
  std::ostringstream os;
  for (int cpu = 0; cpu < node.topology().logical_cpus(); ++cpu) {
    os << "processor\t: " << cpu << '\n'
       << "vendor_id\t: GenuineIntel\n"
       << "cpu family\t: " << spec.cpuid_family << '\n'
       << "model\t\t: " << spec.cpuid_model << '\n'
       << "model name\t: " << spec.model_name << '\n'
       << "physical id\t: " << node.topology().socket_of_cpu(cpu) << '\n'
       << '\n';
  }
  return os.str();
}

std::string render_net_dev(const Node& node) {
  const auto& eth = node.state().eth;
  std::ostringstream os;
  os << "Inter-|   Receive                                                |  "
        "Transmit\n"
     << " face |bytes    packets errs drop fifo frame compressed multicast|"
        "bytes    packets errs drop fifo colls carrier compressed\n";
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "    lo: %llu %llu 0 0 0 0 0 0 %llu %llu 0 0 0 0 0 0\n", 0ULL,
                0ULL, 0ULL, 0ULL);
  os << buf;
  std::snprintf(buf, sizeof buf,
                "  eth0: %llu %llu 0 0 0 0 0 0 %llu %llu 0 0 0 0 0 0\n",
                static_cast<unsigned long long>(eth.rx_bytes),
                static_cast<unsigned long long>(eth.rx_packets),
                static_cast<unsigned long long>(eth.tx_bytes),
                static_cast<unsigned long long>(eth.tx_packets));
  os << buf;
  return os.str();
}

std::string render_pid_status(const Node& node, const ProcessInfo& proc) {
  (void)node;
  std::ostringstream os;
  char buf[128];
  os << "Name:\t" << proc.name << '\n';
  os << "State:\tR (running)\n";
  os << "Pid:\t" << proc.pid << '\n';
  std::snprintf(buf, sizeof buf, "Uid:\t%d\t%d\t%d\t%d\n", proc.uid, proc.uid,
                proc.uid, proc.uid);
  os << buf;
  auto vm = [&](const char* key, std::uint64_t kb) {
    std::snprintf(buf, sizeof buf, "%s:\t%8llu kB\n", key,
                  static_cast<unsigned long long>(kb));
    os << buf;
  };
  vm("VmPeak", proc.vm_peak_kb);
  vm("VmSize", proc.vm_size_kb);
  vm("VmLck", proc.vm_lck_kb);
  vm("VmHWM", proc.vm_hwm_kb);
  vm("VmRSS", proc.vm_rss_kb);
  vm("VmData", proc.vm_data_kb);
  vm("VmStk", proc.vm_stk_kb);
  vm("VmExe", proc.vm_exe_kb);
  os << "Threads:\t" << proc.threads << '\n';
  std::snprintf(buf, sizeof buf, "Cpus_allowed:\t%016llx\n",
                static_cast<unsigned long long>(proc.cpus_allowed));
  os << buf;
  std::snprintf(buf, sizeof buf, "Mems_allowed:\t%llx\n",
                static_cast<unsigned long long>(proc.mems_allowed));
  os << buf;
  return os.str();
}

std::string render_llite_stats(const Node& node) {
  const auto& l = node.state().lustre;
  const double now = static_cast<double>(node.state().now_us) / 1e6;
  std::ostringstream os;
  char buf[160];
  std::snprintf(buf, sizeof buf, "snapshot_time             %.6f secs.usecs\n",
                now);
  os << buf;
  std::snprintf(buf, sizeof buf,
                "read_bytes                %llu samples [bytes] 0 1048576 "
                "%llu\n",
                static_cast<unsigned long long>(l.read_samples),
                static_cast<unsigned long long>(l.read_bytes));
  os << buf;
  std::snprintf(buf, sizeof buf,
                "write_bytes               %llu samples [bytes] 0 1048576 "
                "%llu\n",
                static_cast<unsigned long long>(l.write_samples),
                static_cast<unsigned long long>(l.write_bytes));
  os << buf;
  std::snprintf(buf, sizeof buf, "open                      %llu samples [regs]\n",
                static_cast<unsigned long long>(l.open));
  os << buf;
  std::snprintf(buf, sizeof buf, "close                     %llu samples [regs]\n",
                static_cast<unsigned long long>(l.close));
  os << buf;
  return os.str();
}

std::string render_mdc_stats(const Node& node) {
  const auto& l = node.state().lustre;
  const double now = static_cast<double>(node.state().now_us) / 1e6;
  std::ostringstream os;
  char buf[160];
  std::snprintf(buf, sizeof buf, "snapshot_time             %.6f secs.usecs\n",
                now);
  os << buf;
  // req_waittime carries both the request count (samples) and the summed
  // wait in microseconds, exactly like the real mdc stats file.
  std::snprintf(buf, sizeof buf,
                "req_waittime              %llu samples [usec] 0 500000 %llu\n",
                static_cast<unsigned long long>(l.mdc_reqs),
                static_cast<unsigned long long>(l.mdc_wait_us));
  os << buf;
  std::snprintf(buf, sizeof buf, "req_active                %llu samples [reqs]\n",
                static_cast<unsigned long long>(l.mdc_reqs));
  os << buf;
  return os.str();
}

std::string render_osc_stats(const Node& node, int ost) {
  const auto& l = node.state().lustre;
  const double now = static_cast<double>(node.state().now_us) / 1e6;
  std::ostringstream os;
  char buf[160];
  std::snprintf(buf, sizeof buf, "snapshot_time             %.6f secs.usecs\n",
                now);
  os << buf;
  std::snprintf(buf, sizeof buf,
                "req_waittime              %llu samples [usec] 0 500000 %llu\n",
                static_cast<unsigned long long>(l.osc_reqs[ost]),
                static_cast<unsigned long long>(l.osc_wait_us[ost]));
  os << buf;
  std::snprintf(buf, sizeof buf,
                "read_bytes                %llu samples [bytes] 0 4194304 "
                "%llu\n",
                static_cast<unsigned long long>(l.osc_reqs[ost] / 2),
                static_cast<unsigned long long>(l.osc_read_bytes[ost]));
  os << buf;
  std::snprintf(buf, sizeof buf,
                "write_bytes               %llu samples [bytes] 0 4194304 "
                "%llu\n",
                static_cast<unsigned long long>(l.osc_reqs[ost] / 2),
                static_cast<unsigned long long>(l.osc_write_bytes[ost]));
  os << buf;
  return os.str();
}

std::string render_lnet_stats(const Node& node) {
  const auto& n = node.state().lnet;
  // Real format: msgs_alloc msgs_max errors send_count recv_count
  //              route_count drop_count send_length recv_length
  //              route_length drop_length
  char buf[256];
  std::snprintf(buf, sizeof buf, "0 128 0 %llu %llu 0 0 %llu %llu 0 0\n",
                static_cast<unsigned long long>(n.send_count),
                static_cast<unsigned long long>(n.recv_count),
                static_cast<unsigned long long>(n.send_bytes),
                static_cast<unsigned long long>(n.recv_bytes));
  return buf;
}

std::string render_mic_stats(const Node& node) {
  const auto& m = node.state().mic;
  char buf[160];
  std::snprintf(buf, sizeof buf, "user: %llu nice: 0 sys: %llu idle: %llu\n",
                static_cast<unsigned long long>(m.user_jiffies),
                static_cast<unsigned long long>(m.sys_jiffies),
                static_cast<unsigned long long>(m.idle_jiffies));
  return buf;
}

std::string render_numastat(const Node& node, int numa_node) {
  const auto& st = node.state();
  if (numa_node < 0 ||
      numa_node >= static_cast<int>(st.numa.size())) {
    return {};
  }
  const auto& n = st.numa[static_cast<std::size_t>(numa_node)];
  std::ostringstream os;
  os << "numa_hit " << n.numa_hit << '\n'
     << "numa_miss " << n.numa_miss << '\n'
     << "numa_foreign " << n.numa_foreign << '\n'
     << "interleave_hit 0\n"
     << "local_node " << n.local_node << '\n'
     << "other_node " << n.other_node << '\n';
  return os.str();
}

std::string render_vmstat(const Node& node) {
  const auto& vm = node.state().vm;
  std::ostringstream os;
  os << "pgpgin " << vm.pgpgin << '\n'
     << "pgpgout " << vm.pgpgout << '\n'
     << "pswpin " << vm.pswpin << '\n'
     << "pswpout " << vm.pswpout << '\n'
     << "pgfault " << vm.pgfault << '\n'
     << "pgmajfault " << vm.pgmajfault << '\n';
  return os.str();
}

std::string render_block_stat(const Node& node) {
  const auto& b = node.state().block;
  // Layout: reads_completed reads_merged sectors_read ms_reading
  //         writes_completed writes_merged sectors_written ms_writing
  //         ios_in_progress ms_doing_io weighted_ms
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "%8llu %8u %8llu %8u %8llu %8u %8llu %8u %8u %8llu %8llu\n",
                static_cast<unsigned long long>(b.reads_completed), 0u,
                static_cast<unsigned long long>(b.sectors_read), 0u,
                static_cast<unsigned long long>(b.writes_completed), 0u,
                static_cast<unsigned long long>(b.sectors_written), 0u, 0u,
                static_cast<unsigned long long>(b.io_ticks_ms),
                static_cast<unsigned long long>(b.io_ticks_ms));
  return buf;
}

std::string render_dentry_state(const Node& node) {
  const auto& v = node.state().vfs;
  char buf[96];
  std::snprintf(buf, sizeof buf, "%llu\t%llu\t45\t0\t0\t0\n",
                static_cast<unsigned long long>(v.dentry_count),
                static_cast<unsigned long long>(v.dentry_count / 2));
  return buf;
}

std::string render_inode_nr(const Node& node) {
  const auto& v = node.state().vfs;
  char buf[64];
  std::snprintf(buf, sizeof buf, "%llu\t%llu\n",
                static_cast<unsigned long long>(v.inode_count),
                static_cast<unsigned long long>(v.inode_count / 8));
  return buf;
}

std::string render_file_nr(const Node& node) {
  const auto& v = node.state().vfs;
  char buf[64];
  std::snprintf(buf, sizeof buf, "%llu\t0\t3255788\n",
                static_cast<unsigned long long>(v.file_count));
  return buf;
}

std::string render_sysvipc_shm(const Node& node) {
  const auto& shm = node.state().shm;
  std::ostringstream os;
  os << "       key      shmid perms       size  cpid  lpid nattch\n";
  // The simulator aggregates all segments into one summary row.
  if (shm.sysv_segments > 0) {
    os << "         0          1   600 " << shm.sysv_bytes << "  1000  1000 "
       << shm.sysv_segments << '\n';
  }
  return os.str();
}

std::string render_tmpfs_bytes(const Node& node) {
  return std::to_string(node.state().shm.tmpfs_bytes) + "\n";
}

std::string llite_instance(const Node& node) {
  return node.config().lustre_fs + "-" + instance_suffix(node, "llite");
}

std::string mdc_instance(const Node& node) {
  return node.config().lustre_fs + "-MDT0000-mdc-" +
         instance_suffix(node, "mdc");
}

std::string osc_instance(const Node& node, int ost) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "OST%04d", ost);
  return node.config().lustre_fs + "-" + buf + "-osc-" +
         instance_suffix(node, "osc");
}

}  // namespace tacc::simhw::procfs
