#include "portal/search.hpp"

#include <stdexcept>

#include "util/strings.hpp"

namespace tacc::portal {

db::Predicate parse_search_field(const std::string& field) {
  const auto eq = field.find('=');
  if (eq == std::string::npos || eq == 0) {
    throw std::invalid_argument("search field needs <name>[__op]=<value>: " +
                                field);
  }
  std::string lhs = field.substr(0, eq);
  const std::string value = field.substr(eq + 1);

  db::Op op = db::Op::Eq;
  const auto sep = lhs.rfind("__");
  if (sep != std::string::npos) {
    const std::string opname = lhs.substr(sep + 2);
    lhs = lhs.substr(0, sep);
    if (opname == "eq") {
      op = db::Op::Eq;
    } else if (opname == "ne") {
      op = db::Op::Ne;
    } else if (opname == "lt") {
      op = db::Op::Lt;
    } else if (opname == "lte") {
      op = db::Op::Lte;
    } else if (opname == "gt") {
      op = db::Op::Gt;
    } else if (opname == "gte") {
      op = db::Op::Gte;
    } else if (opname == "contains") {
      op = db::Op::Contains;
    } else {
      throw std::invalid_argument("unknown search operator: " + opname);
    }
  }
  db::Predicate pred;
  pred.column = lhs;
  pred.op = op;
  if (const auto num = util::parse_f64(value)) {
    pred.rhs = db::Value(*num);
  } else {
    pred.rhs = db::Value(value);
  }
  return pred;
}

std::vector<db::Predicate> compile_query(const PortalQuery& query) {
  std::vector<db::Predicate> preds;
  if (query.jobid) {
    preds.push_back({"jobid", db::Op::Eq, db::Value(*query.jobid)});
  }
  if (query.user) preds.push_back({"user", db::Op::Eq, db::Value(*query.user)});
  if (query.exe) preds.push_back({"exe", db::Op::Eq, db::Value(*query.exe)});
  if (query.queue) {
    preds.push_back({"queue", db::Op::Eq, db::Value(*query.queue)});
  }
  if (query.status) {
    preds.push_back({"status", db::Op::Eq, db::Value(*query.status)});
  }
  if (query.date_start != 0) {
    preds.push_back({"start", db::Op::Gte,
                     db::Value(query.date_start / util::kSecond)});
  }
  if (query.date_end != 0) {
    preds.push_back(
        {"start", db::Op::Lt, db::Value(query.date_end / util::kSecond)});
  }
  if (query.min_runtime_s) {
    preds.push_back(
        {"runtime", db::Op::Gt, db::Value(*query.min_runtime_s)});
  }
  for (const auto& field : query.search_fields) {
    preds.push_back(parse_search_field(field));
  }
  return preds;
}

std::vector<db::RowId> run_query(const db::Table& jobs,
                                 const PortalQuery& query) {
  return jobs.select(compile_query(query));
}

std::vector<db::RowId> browse_date(const db::Table& jobs,
                                   util::SimTime day) {
  const util::SimTime start = day - day % util::kDay;
  return jobs.select_ordered(
      {{"start", db::Op::Gte, db::Value(start / util::kSecond)},
       {"start", db::Op::Lt,
        db::Value((start + util::kDay) / util::kSecond)}},
      "start", /*descending=*/true);
}

}  // namespace tacc::portal
