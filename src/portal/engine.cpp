#include "portal/engine.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <stdexcept>

#include "portal/report.hpp"
#include "portal/views.hpp"
#include "util/table.hpp"

namespace tacc::portal {

namespace {

using SteadyClock = std::chrono::steady_clock;

/// Renders a double so that equal values produce equal bytes and distinct
/// values stay distinct (17 significant digits round-trips IEEE doubles).
std::string exact_real(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// Field separator inside cache keys; never appears in user input that
/// matters (queries containing it simply canonicalize to themselves).
constexpr char kSep = '\x1f';

void append_portal_query(std::string& key, const PortalQuery& q) {
  key += q.jobid ? std::to_string(*q.jobid) : std::string("-");
  key += kSep;
  key += q.user.value_or("-");
  key += kSep;
  key += q.exe.value_or("-");
  key += kSep;
  key += q.queue.value_or("-");
  key += kSep;
  key += q.status.value_or("-");
  key += kSep;
  key += std::to_string(q.date_start);
  key += kSep;
  key += std::to_string(q.date_end);
  key += kSep;
  key += q.min_runtime_s ? exact_real(*q.min_runtime_s) : std::string("-");
  key += kSep;
  // Search fields are a conjunction: order does not change the result, so
  // canonicalize it away.
  std::vector<std::string> fields = q.search_fields;
  std::sort(fields.begin(), fields.end());
  for (const auto& f : fields) {
    key += f;
    key += kSep;
  }
}

void append_ts_query(std::string& key, const tsdb::Query& q) {
  key += q.metric;
  key += kSep;
  key += q.rate ? '1' : '0';
  key += kSep;
  for (const auto& [k, v] : q.filters) {  // TagSet is ordered
    key += k;
    key += '=';
    key += v;
    key += kSep;
  }
  key += '|';
  for (const auto& g : q.group_by) {  // order is semantic: keep it
    key += g;
    key += kSep;
  }
  key += std::to_string(static_cast<int>(q.aggregator));
  key += kSep;
  key += std::to_string(q.downsample);
  key += kSep;
  key += std::to_string(static_cast<int>(q.downsample_aggregator));
  key += kSep;
  key += std::to_string(q.start);
  key += kSep;
  key += std::to_string(q.end);
}

}  // namespace

const char* to_string(QueryStatus status) noexcept {
  switch (status) {
    case QueryStatus::Ok:
      return "ok";
    case QueryStatus::Overloaded:
      return "overloaded";
    case QueryStatus::TimedOut:
      return "timed_out";
    case QueryStatus::Error:
      return "error";
  }
  return "unknown";
}

/// Wall-clock budget: expired() is the cooperative check every execution
/// stage polls. A default-constructed Deadline never expires.
///
/// Determinism audit (DT001): Deadline::* and run_admitted are
/// allowlisted — wall time is compared against the budget and reported
/// in QueryStats timing fields, but results come from the store alone.
struct QueryEngine::Deadline {
  bool limited = false;
  SteadyClock::time_point due{};

  static Deadline after(std::int64_t ns) {
    Deadline d;
    if (ns >= 0) {
      d.limited = true;
      d.due = SteadyClock::now() + std::chrono::nanoseconds(ns);
    }
    return d;
  }
  bool expired() const { return limited && SteadyClock::now() >= due; }
};

/// The materialized Fig. 4 summaries: one flat array per panel, indexed by
/// RowId, values pre-scaled exactly as views::query_histograms scales them.
/// Immutable once built; shared_ptr lets queries keep using a snapshot
/// while a newer epoch replaces it.
struct QueryEngine::Summaries {
  EngineEpoch epoch;
  std::vector<std::array<double, 4>> value;  // [row][panel]
  std::vector<std::array<bool, 4>> present;  // false = SQL NULL, skip
};

QueryEngine::QueryEngine(const db::Table& jobs, const tsdb::Store* store,
                         const QueryEngineOptions& options)
    : jobs_(jobs),
      store_(store),
      options_(options),
      pool_(std::make_unique<util::ThreadPool>(options.workers)) {}

QueryEngine::~QueryEngine() = default;

EngineEpoch QueryEngine::current_epoch() const noexcept {
  EngineEpoch e;
  e.store = store_ != nullptr ? store_->ingest_epoch() : 0;
  e.jobs_rows = jobs_.num_rows();
  e.manual = manual_epoch_.load(std::memory_order_acquire);
  return e;
}

void QueryEngine::invalidate_jobs() noexcept {
  manual_epoch_.fetch_add(1, std::memory_order_acq_rel);
}

std::string QueryEngine::cache_key(const QueryRequest& r) {
  std::string key;
  switch (r.kind) {
    case QueryRequest::Kind::Search:
      key = "search";
      key += kSep;
      key += std::to_string(r.limit);
      key += kSep;
      append_portal_query(key, r.query);
      break;
    case QueryRequest::Kind::FlaggedList:
      key = "flagged";
      key += kSep;
      key += std::to_string(r.limit);
      key += kSep;
      append_portal_query(key, r.query);
      break;
    case QueryRequest::Kind::Histograms:
      key = "histograms";
      key += kSep;
      key += std::to_string(r.bins);
      key += kSep;
      append_portal_query(key, r.query);
      break;
    case QueryRequest::Kind::JobDetail:
      key = "detail";
      key += kSep;
      key += std::to_string(r.jobid);
      break;
    case QueryRequest::Kind::DailyReport:
      key = "daily";
      key += kSep;
      key += std::to_string(r.day);
      break;
    case QueryRequest::Kind::Timeseries:
      key = "timeseries";
      key += kSep;
      append_ts_query(key, r.ts);
      break;
  }
  return key;
}

std::future<QueryResult> QueryEngine::submit(const QueryRequest& request) {
  if (options_.queue_limit != 0 &&
      in_flight_.fetch_add(1, std::memory_order_acq_rel) >=
          options_.queue_limit) {
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    shed_.fetch_add(1, std::memory_order_relaxed);
    std::promise<QueryResult> shed;
    QueryResult r;
    r.status = QueryStatus::Overloaded;
    auto fut = shed.get_future();
    shed.set_value(std::move(r));
    return fut;
  }
  if (options_.queue_limit == 0) {
    in_flight_.fetch_add(1, std::memory_order_acq_rel);
  }
  admitted_.fetch_add(1, std::memory_order_relaxed);
  return pool_->submit(
      [this, request]() -> QueryResult { return run_admitted(request); });
}

QueryResult QueryEngine::execute(const QueryRequest& request) {
  if (options_.queue_limit != 0 &&
      in_flight_.fetch_add(1, std::memory_order_acq_rel) >=
          options_.queue_limit) {
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    shed_.fetch_add(1, std::memory_order_relaxed);
    QueryResult r;
    r.status = QueryStatus::Overloaded;
    return r;
  }
  if (options_.queue_limit == 0) {
    in_flight_.fetch_add(1, std::memory_order_acq_rel);
  }
  admitted_.fetch_add(1, std::memory_order_relaxed);
  return run_admitted(request);
}

QueryResult QueryEngine::run_admitted(const QueryRequest& request) {
  if (options_.before_execute) options_.before_execute();
  const auto t0 = SteadyClock::now();
  const EngineEpoch epoch = current_epoch();
  const Deadline deadline = Deadline::after(
      request.deadline_ns >= 0 ? request.deadline_ns
      : options_.default_deadline_ns > 0 ? options_.default_deadline_ns
                                         : -1);
  const bool cacheable = options_.cache_entries > 0;

  QueryResult result;
  if (cacheable) {
    const std::string key = cache_key(request);
    if (auto hit = cache_lookup(key, epoch)) {
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      result.status = QueryStatus::Ok;
      result.payload = std::move(*hit);
      result.cached = true;
    } else {
      cache_misses_.fetch_add(1, std::memory_order_relaxed);
      result = execute_cold(request, epoch, deadline);
      if (result.status == QueryStatus::Ok) {
        cache_insert(key, epoch, result.payload);
      }
    }
  } else {
    cache_misses_.fetch_add(1, std::memory_order_relaxed);
    result = execute_cold(request, epoch, deadline);
  }

  switch (result.status) {
    case QueryStatus::Ok:
      completed_.fetch_add(1, std::memory_order_relaxed);
      break;
    case QueryStatus::TimedOut:
      timed_out_.fetch_add(1, std::memory_order_relaxed);
      break;
    default:
      failed_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  latency_.record(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          SteadyClock::now() - t0)
          .count()));
  in_flight_.fetch_sub(1, std::memory_order_acq_rel);
  return result;
}

QueryResult QueryEngine::execute_cold(const QueryRequest& request,
                                      const EngineEpoch& epoch,
                                      const Deadline& deadline) {
  QueryResult out;
  const auto timed_out = [&out] {
    out = QueryResult{};
    out.status = QueryStatus::TimedOut;
  };
  const auto error = [&out](std::string message) {
    out = QueryResult{};
    out.status = QueryStatus::Error;
    out.error = std::move(message);
  };
  try {
    if (deadline.expired()) {
      timed_out();
      return out;
    }
    switch (request.kind) {
      case QueryRequest::Kind::Search: {
        const auto rows = run_query(jobs_, request.query);
        if (deadline.expired()) {
          timed_out();
          return out;
        }
        out.payload = job_list_view(jobs_, rows, request.limit);
        break;
      }
      case QueryRequest::Kind::FlaggedList: {
        const auto rows = run_query(jobs_, request.query);
        if (deadline.expired()) {
          timed_out();
          return out;
        }
        out.payload = flagged_sublist(jobs_, rows, request.limit);
        break;
      }
      case QueryRequest::Kind::Histograms: {
        const auto summaries = summaries_for(epoch);
        const auto rows = run_query(jobs_, request.query);
        const auto panels = histogram_panels();
        std::vector<std::vector<double>> panel_values(panels.size());
        for (std::size_t p = 0; p < panels.size(); ++p) {
          if (deadline.expired()) {
            timed_out();
            return out;
          }
          auto& values = panel_values[p];
          values.reserve(rows.size());
          for (const db::RowId id : rows) {
            if (summaries->present[id][p]) {
              values.push_back(summaries->value[id][p]);
            }
          }
        }
        if (deadline.expired()) {
          timed_out();
          return out;
        }
        out.payload = render_query_histograms(panel_values, request.bins);
        break;
      }
      case QueryRequest::Kind::JobDetail: {
        const auto rows = jobs_.select(
            {{"jobid", db::Op::Eq, db::Value(request.jobid)}});
        if (rows.empty()) {
          error("no such job: " + std::to_string(request.jobid));
          return out;
        }
        if (deadline.expired()) {
          timed_out();
          return out;
        }
        out.payload = job_detail_view(jobs_, rows.front());
        break;
      }
      case QueryRequest::Kind::DailyReport: {
        out.payload = daily_report(jobs_, request.day);
        if (deadline.expired()) {
          timed_out();
          return out;
        }
        break;
      }
      case QueryRequest::Kind::Timeseries: {
        if (store_ == nullptr) {
          error("no time-series store attached to this engine");
          return out;
        }
        const auto results = store_->query(request.ts);
        if (deadline.expired()) {
          timed_out();
          return out;
        }
        out.payload = render_timeseries(results);
        break;
      }
    }
    if (deadline.expired()) {
      timed_out();
      return out;
    }
  } catch (const std::exception& e) {
    error(e.what());
  }
  return out;
}

std::shared_ptr<const QueryEngine::Summaries> QueryEngine::summaries_for(
    const EngineEpoch& epoch) {
  {
    util::MutexLock lock(summaries_mu_);
    if (summaries_ != nullptr && summaries_->epoch == epoch) {
      return summaries_;
    }
  }
  // Rebuild outside the fast-path check but under the lock, so concurrent
  // histogram queries at a new epoch rebuild once and the rest wait for
  // the result instead of duplicating O(jobs) work.
  util::MutexLock lock(summaries_mu_);
  if (summaries_ != nullptr && summaries_->epoch == epoch) {
    return summaries_;
  }
  auto built = std::make_shared<Summaries>();
  built->epoch = epoch;
  const auto panels = histogram_panels();
  const std::size_t rows = jobs_.num_rows();
  built->value.resize(rows);
  built->present.resize(rows);
  std::array<std::size_t, 4> column{};
  for (std::size_t p = 0; p < panels.size(); ++p) {
    column[p] = jobs_.column_index(panels[p].column);
  }
  for (db::RowId id = 0; id < rows; ++id) {
    const db::Row& row = jobs_.row(id);
    for (std::size_t p = 0; p < panels.size(); ++p) {
      const db::Value& v = row[column[p]];
      built->present[id][p] = !v.is_null();
      built->value[id][p] = v.is_null() ? 0.0 : v.as_real() * panels[p].scale;
    }
  }
  summary_rebuilds_.fetch_add(1, std::memory_order_relaxed);
  summaries_ = std::move(built);
  return summaries_;
}

std::optional<std::string> QueryEngine::cache_lookup(const std::string& key,
                                                     const EngineEpoch& epoch) {
  util::MutexLock lock(cache_mu_);
  const auto it = cache_index_.find(key);
  if (it == cache_index_.end()) return std::nullopt;
  if (!(it->second->second.epoch == epoch)) {
    // Stale: the store or jobs table moved since this was cached.
    lru_.erase(it->second);
    cache_index_.erase(it);
    cache_evictions_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->second.payload;
}

void QueryEngine::cache_insert(const std::string& key,
                               const EngineEpoch& epoch,
                               const std::string& payload) {
  util::MutexLock lock(cache_mu_);
  const auto it = cache_index_.find(key);
  if (it != cache_index_.end()) {
    it->second->second = CacheEntry{epoch, payload};
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, CacheEntry{epoch, payload});
  cache_index_[key] = lru_.begin();
  while (lru_.size() > options_.cache_entries) {
    cache_index_.erase(lru_.back().first);
    lru_.pop_back();
    cache_evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

EngineStats QueryEngine::stats() const {
  EngineStats s;
  s.admitted = admitted_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.timed_out = timed_out_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  s.cache_misses = cache_misses_.load(std::memory_order_relaxed);
  s.cache_evictions = cache_evictions_.load(std::memory_order_relaxed);
  s.summary_rebuilds = summary_rebuilds_.load(std::memory_order_relaxed);
  s.in_flight = in_flight_.load(std::memory_order_relaxed);
  s.p50_ns = latency_.percentile_ns(50.0);
  s.p99_ns = latency_.percentile_ns(99.0);
  return s;
}

std::string QueryEngine::stats_table() const {
  const EngineStats s = stats();
  util::TextTable t;
  t.header({"Counter", "Value"});
  const std::pair<const char*, std::uint64_t> rows[] = {
      {"queries_admitted", s.admitted},
      {"queries_shed", s.shed},
      {"queries_completed", s.completed},
      {"queries_timed_out", s.timed_out},
      {"queries_failed", s.failed},
      {"queries_in_flight", s.in_flight},
      {"cache_hits", s.cache_hits},
      {"cache_misses", s.cache_misses},
      {"cache_evictions", s.cache_evictions},
      {"summary_rebuilds", s.summary_rebuilds},
      {"p50_ns", s.p50_ns},
      {"p99_ns", s.p99_ns},
  };
  for (const auto& [name, value] : rows) {
    t.row({name, std::to_string(value)});
  }
  return t.render();
}

std::string render_timeseries(const std::vector<tsdb::SeriesResult>& results) {
  std::string out;
  char buf[80];
  for (const auto& r : results) {
    out += "series{";
    bool first = true;
    for (const auto& [k, v] : r.group_tags) {
      if (!first) out += ',';
      out += k;
      out += '=';
      out += v;
      first = false;
    }
    out += "} points=";
    out += std::to_string(r.points.size());
    out += '\n';
    for (const auto& p : r.points) {
      std::snprintf(buf, sizeof buf, "  %lld %.17g\n",
                    static_cast<long long>(p.time), p.value);
      out += buf;
    }
  }
  return out;
}

}  // namespace tacc::portal
