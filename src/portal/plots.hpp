// ASCII rendering of the paper's Fig. 5 job detail plots: six stacked
// panels (Gigaflops, memory bandwidth, memory usage, Lustre bandwidth,
// internode InfiniBand traffic, CPU user fraction), one sparkline row per
// node so per-node imbalance is visible exactly as in the paper's figure.
#pragma once

#include <string>
#include <vector>

#include "pipeline/metrics.hpp"

namespace tacc::portal {

/// Renders one panel: a title with the y-range, then one sparkline row per
/// node. Values are scaled to the panel-wide maximum.
std::string render_panel(const std::string& title,
                         const std::vector<std::string>& hostnames,
                         const std::vector<std::vector<double>>& series,
                         const std::string& unit);

/// Renders all six Fig. 5 panels for a job.
std::string render_job_plots(const std::vector<pipeline::NodeSeries>& nodes);

}  // namespace tacc::portal
