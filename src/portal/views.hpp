// Text renderings of the portal pages: the job list a query returns, the
// flagged sublist, the per-job detail view with its metric report, and the
// Fig. 4 query histograms.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "db/table.hpp"
#include "pipeline/flags.hpp"
#include "pipeline/jobmap.hpp"

namespace tacc::portal {

/// The job-list table (paper section IV-B): Job ID, username, executable,
/// start/end, run time, queue, status, wayness, nodes, node hours. At most
/// `limit` rows are rendered (0 = all).
std::string job_list_view(const db::Table& jobs,
                          const std::vector<db::RowId>& rows,
                          std::size_t limit = 25);

/// The sublist of flagged jobs within a result set, with flag names.
std::string flagged_sublist(const db::Table& jobs,
                            const std::vector<db::RowId>& rows,
                            std::size_t limit = 25);
/// Row ids within `rows` that carry at least one flag.
std::vector<db::RowId> flagged_rows(const db::Table& jobs,
                                    const std::vector<db::RowId>& rows);

/// The per-job detail view: metadata plus every computed metric with its
/// threshold comparison (the "passed or failed comparison tests" report).
std::string job_detail_view(const db::Table& jobs, db::RowId row);

/// Detail view including the XALT environment section (modules and linked
/// libraries), which the paper notes is "only available if the XALT plugin
/// is enabled" — pass nullptr to render without it.
std::string job_detail_view(const db::Table& jobs, db::RowId row,
                            const db::Table* xalt_table);

/// The four automatic histograms of paper Fig. 4 for a result set:
/// jobs versus run time, node count, queue wait time, and maximum metadata
/// request rate.
std::string query_histograms(const db::Table& jobs,
                             const std::vector<db::RowId>& rows,
                             std::size_t bins = 12);

/// One Fig. 4 panel: display title, the jobs-table column it reads, and
/// the scale applied to every value before binning.
struct HistogramPanel {
  const char* title;
  const char* column;
  double scale;
};

/// The four panels of paper Fig. 4, in render order. Shared between
/// query_histograms (which extracts values from the jobs table) and
/// portal::QueryEngine (which serves the same values from its materialized
/// per-job summaries), so both paths render byte-identical pages.
std::span<const HistogramPanel> histogram_panels();

/// Renders pre-extracted panel values — one vector per panel, in
/// histogram_panels() order, already scaled, NULLs dropped — exactly as
/// query_histograms renders them.
std::string render_query_histograms(
    std::span<const std::vector<double>> panel_values, std::size_t bins = 12);

/// The per-process drill-down of the detail page (paper section IV-B:
/// "individual processes and their memory usage, cpu affinities, and
/// thread count"), rendered from the job's last records carrying ps
/// blocks — one row per process per node.
std::string process_view(const pipeline::JobData& data,
                         std::size_t limit = 40);

/// The threshold-comparison report of the detail page ("which of the
/// computed metrics passed or failed comparison tests"): every flag rule
/// with its threshold, the job's value, and PASS/FAIL.
std::string threshold_report(const db::Table& jobs, db::RowId row,
                             const pipeline::FlagThresholds& thresholds = {});

}  // namespace tacc::portal
