// Portal search (paper Fig. 3): queries combine metadata filters (user,
// executable, queue, job id, date range, minimum runtime) with up to three
// "Search fields" — a metric name plus a modifying suffix selecting the
// comparison operator and a threshold value, e.g. "MetaDataRate__gte=1000".
// The suffix grammar matches the Django ORM the paper's portal uses.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "db/table.hpp"
#include "util/clock.hpp"

namespace tacc::portal {

/// Parses one search field ("<column>__<op>=<value>" or "<column>=<value>",
/// default op Eq). Numeric values become Real, others Text. Throws
/// std::invalid_argument on malformed input or unknown operator.
db::Predicate parse_search_field(const std::string& field);

/// A portal query form.
struct PortalQuery {
  std::optional<long> jobid;
  std::optional<std::string> user;
  std::optional<std::string> exe;
  std::optional<std::string> queue;
  std::optional<std::string> status;
  /// Start-time window [date_start, date_end); 0 = unbounded.
  util::SimTime date_start = 0;
  util::SimTime date_end = 0;
  std::optional<double> min_runtime_s;
  /// Up to three metric search fields (more are accepted but the paper's
  /// portal form offers three).
  std::vector<std::string> search_fields;
};

/// Compiles a query form into predicates against the jobs table.
std::vector<db::Predicate> compile_query(const PortalQuery& query);

/// Runs the query. Results are row ids in insertion order.
std::vector<db::RowId> run_query(const db::Table& jobs,
                                 const PortalQuery& query);

/// "View all jobs for a given date" (paper Fig. 3): every job whose start
/// time falls on `day`, newest first.
std::vector<db::RowId> browse_date(const db::Table& jobs, util::SimTime day);

}  // namespace tacc::portal
