#include "portal/plots.hpp"

#include <algorithm>
#include <cstdio>

namespace tacc::portal {
namespace {

// Eight-level bar glyphs; pure ASCII fallback would be " .:-=+*#".
constexpr const char* kLevels[] = {" ", ".", ":", "-", "=", "+", "*", "#"};

}  // namespace

std::string render_panel(const std::string& title,
                         const std::vector<std::string>& hostnames,
                         const std::vector<std::vector<double>>& series,
                         const std::string& unit) {
  double peak = 0.0;
  for (const auto& s : series) {
    for (const double v : s) peak = std::max(peak, v);
  }
  char head[160];
  std::snprintf(head, sizeof head, "%s  [0 .. %.4g %s]\n", title.c_str(),
                peak, unit.c_str());
  std::string out = head;
  for (std::size_t n = 0; n < series.size(); ++n) {
    char label[32];
    std::snprintf(label, sizeof label, "  %-10s |",
                  n < hostnames.size() ? hostnames[n].c_str() : "?");
    out += label;
    for (const double v : series[n]) {
      const int level =
          peak > 0.0
              ? std::clamp(static_cast<int>(v / peak * 7.999), 0, 7)
              : 0;
      out += kLevels[level];
    }
    out += "|\n";
  }
  return out;
}

std::string render_job_plots(const std::vector<pipeline::NodeSeries>& nodes) {
  std::vector<std::string> hosts;
  hosts.reserve(nodes.size());
  for (const auto& n : nodes) hosts.push_back(n.hostname);

  struct Panel {
    const char* title;
    const char* unit;
    std::vector<double> pipeline::NodeSeries::* member;
  };
  const Panel panels[] = {
      {"Gigaflops", "GF/s", &pipeline::NodeSeries::gflops},
      {"Memory Bandwidth", "GB/s", &pipeline::NodeSeries::mem_bw_gbps},
      {"Memory Usage", "GB", &pipeline::NodeSeries::mem_used_gb},
      {"Lustre Filesystem Bandwidth", "MB/s",
       &pipeline::NodeSeries::lustre_mbps},
      {"Internode (MPI) InfiniBand Traffic", "MB/s",
       &pipeline::NodeSeries::ib_mpi_mbps},
      {"CPU User Fraction", "", &pipeline::NodeSeries::cpu_user},
  };
  std::string out;
  for (const auto& p : panels) {
    std::vector<std::vector<double>> series;
    series.reserve(nodes.size());
    for (const auto& n : nodes) series.push_back(n.*(p.member));
    out += render_panel(p.title, hosts, series, p.unit);
    out += "\n";
  }
  return out;
}

}  // namespace tacc::portal
