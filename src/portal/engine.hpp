// The portal serving layer: a concurrent, cached query engine fronting the
// relational jobs table and the time-series store, so the query surface
// the paper's Figs. 4-5 describe can be served at interactive latency
// under production traffic instead of one caller at a time.
//
// Request lifecycle:
//
//   submit()/execute()
//     └─ admission control: if queue_limit in-flight queries are already
//        admitted, the request is shed immediately with status Overloaded
//        (load shedding beats unbounded queueing: a bounded queue keeps
//        tail latency finite and the shed count visible).
//     └─ cache lookup: results are keyed by a canonicalized descriptor of
//        the request (cache_key()) plus the engine epoch. A hit returns
//        the exact bytes the cold query produced.
//     └─ execution on a util::ThreadPool worker, with the per-query
//        deadline checked at every cooperative point; expiry returns a
//        clean TimedOut with NO partial output.
//     └─ Ok results enter the LRU cache; counters and the fixed-bucket
//        latency histogram (util::LatencyHistogram) are updated either way.
//
// Invalidation: the engine epoch is the triple (tsdb ingest epoch, jobs
// row count, manual bump). tsdb::Store bumps its epoch on every
// put/put_batch/put_batches/seal_all, so cached results are dropped —
// lazily, at lookup — the moment new points land. Mutating the jobs table
// in place (same row count) requires an invalidate_jobs() call.
//
// Fig. 4 histograms are answered from materialized per-job summaries: a
// per-epoch snapshot of the four panel columns as flat arrays, rebuilt
// once per epoch, so a histogram query is O(jobs) array gathering — never
// a rescan of raw points, and no per-row db::Value unboxing on the hot
// path. The rendered bytes are identical to views::query_histograms by
// construction (both call render_query_histograms).
//
// Thread-safety contract:
//   * submit(), execute(), stats(), stats_table(), current_epoch() and
//     invalidate_jobs() are safe from any thread, concurrently.
//   * The jobs table is read-only to the engine. Callers must not mutate
//     it while queries are in flight; after an (externally synchronized)
//     mutation, call invalidate_jobs() unless the row count changed.
//   * The tsdb store is internally synchronized; live ingest during
//     serving is supported and is exactly what bumps the epoch.
//   * Determinism: for a fixed jobs table + store state, result payloads
//     are byte-identical with the cache on or off, across worker counts,
//     and across submission orders (each query runs on one worker).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "db/table.hpp"
#include "portal/search.hpp"
#include "tsdb/store.hpp"
#include "util/latency.hpp"
#include "util/thread_annotations.hpp"
#include "util/thread_pool.hpp"

namespace tacc::portal {

/// Outcome of one query.
enum class QueryStatus {
  Ok,          // payload holds the full rendered result
  Overloaded,  // shed at admission: queue_limit queries already in flight
  TimedOut,    // deadline expired mid-execution; payload is empty
  Error,       // malformed request (unknown job, no store, bad field...)
};

const char* to_string(QueryStatus status) noexcept;

/// One request against the portal surface. Exactly the fields named by the
/// request's kind are consulted; the rest are ignored (and excluded from
/// the cache key).
struct QueryRequest {
  enum class Kind {
    Search,       // Fig. 3 query form -> job list (job_list_view)
    FlaggedList,  // the flagged sublist of a search result
    Histograms,   // Fig. 4: four histograms over a search result
    JobDetail,    // per-job detail view by jobid (Fig. 5 page header)
    DailyReport,  // the consulting staff daily report for `day`
    Timeseries,   // a tsdb query, rendered as deterministic text
  };
  Kind kind = Kind::Search;
  /// Search / FlaggedList / Histograms: the portal query form.
  PortalQuery query;
  /// JobDetail only.
  long jobid = 0;
  /// DailyReport only.
  util::SimTime day = 0;
  /// Search / FlaggedList: job-list row cap (0 = all).
  std::size_t limit = 25;
  /// Histograms: bin count.
  std::size_t bins = 12;
  /// Timeseries only.
  tsdb::Query ts;
  /// Per-query wall-clock budget in nanoseconds. < 0 uses the engine's
  /// default_deadline_ns; 0 expires at the first cooperative check (an
  /// always-late query, useful in tests); > 0 is the budget.
  std::int64_t deadline_ns = -1;
};

/// One query's outcome. `payload` is complete or empty, never partial.
struct QueryResult {
  QueryStatus status = QueryStatus::Ok;
  std::string payload;
  /// True when the payload came from the result cache.
  bool cached = false;
  std::string error;  // set when status == Error
};

/// Tuning knobs (documented in docs/ARCHITECTURE.md and docs/PORTAL.md).
struct QueryEngineOptions {
  /// Executor width; 0 = hardware concurrency (util::ThreadPool default).
  std::size_t workers = 0;
  /// LRU result-cache capacity in entries; 0 disables caching.
  std::size_t cache_entries = 1024;
  /// Admission limit: maximum queries in flight (queued + executing);
  /// submissions beyond it are shed with Overloaded. 0 = unbounded.
  std::size_t queue_limit = 4096;
  /// Default per-query deadline in nanoseconds; 0 = no deadline.
  std::int64_t default_deadline_ns = 0;
  /// Test instrumentation: when set, invoked at the start of every
  /// admitted query's execution, on the worker thread (the shed-accounting
  /// tests park workers here to make admission deterministic). Leave
  /// empty in production.
  std::function<void()> before_execute;
};

/// Monotonic per-engine counters, in the style of util::ResilienceStats:
/// a stats() snapshot is a plain value, cheap to diff across a window.
struct EngineStats {
  std::uint64_t admitted = 0;      // passed admission control
  std::uint64_t shed = 0;          // rejected with Overloaded
  std::uint64_t completed = 0;     // finished Ok (cached or computed)
  std::uint64_t timed_out = 0;     // deadline expired mid-execution
  std::uint64_t failed = 0;        // finished with Error
  std::uint64_t cache_hits = 0;    // served straight from the cache
  std::uint64_t cache_misses = 0;  // executed (cold, stale, or uncacheable)
  std::uint64_t cache_evictions = 0;  // entries dropped (capacity or stale)
  std::uint64_t summary_rebuilds = 0;  // materialized-summary refreshes
  std::uint64_t in_flight = 0;     // admitted, not yet finished (gauge)
  /// Admitted-query latency percentiles from the fixed-bucket histogram
  /// (bucket upper bound — at most one power of two of overestimate).
  std::uint64_t p50_ns = 0;
  std::uint64_t p99_ns = 0;

  bool operator==(const EngineStats&) const noexcept = default;
};

/// The engine epoch: cached results are valid only while all three
/// components are unchanged.
struct EngineEpoch {
  std::uint64_t store = 0;      // tsdb::Store::ingest_epoch()
  std::uint64_t jobs_rows = 0;  // jobs-table row count
  std::uint64_t manual = 0;     // invalidate_jobs() bumps
  bool operator==(const EngineEpoch&) const noexcept = default;
};

class QueryEngine {
 public:
  /// The engine serves `jobs` (required) and `store` (may be nullptr when
  /// no time-series surface is needed; Timeseries requests then fail with
  /// Error). Neither is owned; both must outlive the engine.
  explicit QueryEngine(const db::Table& jobs,
                       const tsdb::Store* store = nullptr,
                       const QueryEngineOptions& options = {});
  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Admission-checks and enqueues the request on the executor. The
  /// future is always valid: shed requests resolve immediately with
  /// Overloaded. Thread-safe.
  std::future<QueryResult> submit(const QueryRequest& request)
      TACC_EXCLUDES(cache_mu_, summaries_mu_);

  /// Admission-checks and runs the request on the calling thread
  /// (the caller occupies one in-flight slot; workers stay free).
  /// Thread-safe.
  QueryResult execute(const QueryRequest& request)
      TACC_EXCLUDES(cache_mu_, summaries_mu_);

  /// The canonicalized cache descriptor for a request: equal descriptors
  /// are the same query. Deterministic; deadline and instrumentation
  /// fields are excluded.
  static std::string cache_key(const QueryRequest& request);

  /// The current invalidation epoch. Thread-safe.
  EngineEpoch current_epoch() const noexcept;

  /// Invalidates all cached results after an in-place jobs-table mutation
  /// the epoch cannot see (same row count). Thread-safe.
  void invalidate_jobs() noexcept;

  /// Counter snapshot. Thread-safe.
  EngineStats stats() const TACC_EXCLUDES(cache_mu_);

  /// The stats rendered as an ASCII table (the engine's observability
  /// page). Thread-safe.
  std::string stats_table() const TACC_EXCLUDES(cache_mu_);

  std::size_t workers() const noexcept { return pool_->size(); }

 private:
  struct Deadline;
  struct Summaries;
  struct CacheEntry {
    EngineEpoch epoch;
    std::string payload;
  };

  /// Runs one admitted request end to end (cache lookup, execution,
  /// cache fill, accounting). Called on a worker (submit) or the caller
  /// (execute).
  QueryResult run_admitted(const QueryRequest& request)
      TACC_EXCLUDES(cache_mu_, summaries_mu_);
  /// Executes a cache-miss request. Returns Ok/TimedOut/Error.
  QueryResult execute_cold(const QueryRequest& request,
                           const EngineEpoch& epoch, const Deadline& deadline)
      TACC_EXCLUDES(summaries_mu_);

  std::optional<std::string> cache_lookup(const std::string& key,
                                          const EngineEpoch& epoch)
      TACC_EXCLUDES(cache_mu_);
  void cache_insert(const std::string& key, const EngineEpoch& epoch,
                    const std::string& payload) TACC_EXCLUDES(cache_mu_);

  /// Returns the materialized Fig. 4 summaries for `epoch`, rebuilding
  /// them if the epoch moved.
  std::shared_ptr<const Summaries> summaries_for(const EngineEpoch& epoch)
      TACC_EXCLUDES(summaries_mu_);

  const db::Table& jobs_;
  const tsdb::Store* store_;
  QueryEngineOptions options_;

  mutable util::Mutex cache_mu_;
  /// LRU: most recent at the front; index_ points into the list.
  std::list<std::pair<std::string, CacheEntry>> lru_ TACC_GUARDED_BY(cache_mu_);
  // Determinism audit (DT002): cache_index_ is lookup/erase-only — it is
  // never iterated, so its bucket order cannot reach results. Eviction
  // and cache observability walk `lru_`, whose order is recency (a
  // deterministic function of the request sequence), not hashing.
  std::unordered_map<std::string,
                     std::list<std::pair<std::string, CacheEntry>>::iterator>
      cache_index_ TACC_GUARDED_BY(cache_mu_);

  mutable util::Mutex summaries_mu_;
  std::shared_ptr<const Summaries> summaries_ TACC_GUARDED_BY(summaries_mu_);

  // Lock-free counters (allowlisted in tools/lint/concurrency_allowlist.txt):
  // every access is a complete operation, nothing for a capability to guard.
  std::atomic<std::uint64_t> manual_epoch_{0};
  std::atomic<std::uint64_t> in_flight_{0};
  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> timed_out_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> cache_hits_{0};
  std::atomic<std::uint64_t> cache_misses_{0};
  std::atomic<std::uint64_t> cache_evictions_{0};
  std::atomic<std::uint64_t> summary_rebuilds_{0};
  util::LatencyHistogram latency_;

  /// Declared last: destroyed first, so the pool drains and joins while
  /// every other member is still alive for in-flight tasks.
  std::unique_ptr<util::ThreadPool> pool_;
};

/// Renders tsdb query results as deterministic text (17 significant
/// digits, so equal doubles render equal bytes): one series block per
/// group, points as "t value" lines. The Timeseries payload format.
std::string render_timeseries(const std::vector<tsdb::SeriesResult>& results);

}  // namespace tacc::portal
