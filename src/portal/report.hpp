// The daily resource-use report for consulting staff (paper section I-B:
// "a report giving a resource use profile for every job"): per-day summary
// counts, flag breakdown, and the top offenders per rule.
#pragma once

#include <string>

#include "db/table.hpp"
#include "util/clock.hpp"

namespace tacc::portal {

/// Renders the report for jobs whose start time falls in [day, day+24h).
std::string daily_report(const db::Table& jobs, util::SimTime day);

/// Renders a population summary over an arbitrary selection: job counts,
/// flag breakdown with percentages, and average key metrics.
std::string population_summary(const db::Table& jobs,
                               const std::vector<db::RowId>& rows);

/// Application-level aggregation (the paper: data "can be aggregated at
/// the system, group, user, application, job, node, or core level"):
/// one row per executable with job count, node-hours, and average
/// CPU_Usage / flops / VecPercent / MetaDataRate, sorted by node-hours.
std::string app_report(const db::Table& jobs,
                       const std::vector<db::RowId>& rows,
                       std::size_t limit = 20);

/// Per-user aggregation with the same columns.
std::string user_report(const db::Table& jobs,
                        const std::vector<db::RowId>& rows,
                        std::size_t limit = 20);

/// Per-project (allocation/group) aggregation with the same columns.
std::string group_report(const db::Table& jobs,
                         const std::vector<db::RowId>& rows,
                         std::size_t limit = 20);

}  // namespace tacc::portal
