#include "portal/report.hpp"

#include <map>

#include "portal/views.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace tacc::portal {

std::string population_summary(const db::Table& jobs,
                               const std::vector<db::RowId>& rows) {
  std::map<std::string, std::size_t> by_flag;
  std::size_t flagged = 0;
  for (const auto id : rows) {
    const std::string flags = jobs.at(id, "flags").as_text();
    if (flags.empty()) continue;
    ++flagged;
    for (const auto f : util::split(flags, ',')) {
      ++by_flag[std::string(f)];
    }
  }
  std::string out;
  out += std::to_string(rows.size()) + " jobs, " + std::to_string(flagged) +
         " flagged (" +
         util::TextTable::num(
             rows.empty() ? 0.0
                          : 100.0 * static_cast<double>(flagged) /
                                static_cast<double>(rows.size()),
             3) +
         "%)\n";
  util::TextTable t;
  t.header({"Flag", "Jobs", "% of population"});
  for (const auto& [flag, count] : by_flag) {
    t.row({flag, std::to_string(count),
           util::TextTable::num(100.0 * static_cast<double>(count) /
                                    static_cast<double>(rows.size()),
                                3)});
  }
  out += t.render();
  util::TextTable avg;
  avg.header({"Metric", "Population average"});
  for (const char* metric :
       {"CPU_Usage", "VecPercent", "flops", "mbw", "MemUsage",
        "MetaDataRate", "LnetAveBW", "PkgWatts"}) {
    avg.row({metric,
             util::TextTable::num(
                 jobs.aggregate(db::Agg::Avg, metric, rows), 4)});
  }
  out += avg.render();
  return out;
}

namespace {

std::string grouped_report(const db::Table& jobs,
                           const std::vector<db::RowId>& rows,
                           const char* key_column, std::size_t limit) {
  struct Group {
    std::vector<db::RowId> rows;
    double node_hours = 0.0;
  };
  std::map<std::string, Group> groups;
  for (const auto id : rows) {
    auto& g = groups[jobs.at(id, key_column).as_text()];
    g.rows.push_back(id);
    g.node_hours += jobs.at(id, "node_hours").as_real();
  }
  std::vector<std::pair<std::string, const Group*>> order;
  order.reserve(groups.size());
  for (const auto& [key, g] : groups) order.emplace_back(key, &g);
  std::sort(order.begin(), order.end(),
            [](const auto& a, const auto& b) {
              return a.second->node_hours > b.second->node_hours;
            });
  util::TextTable t;
  t.header({key_column, "Jobs", "Node hrs", "CPU_Usage", "flops",
            "VecPercent", "MetaDataRate"});
  std::size_t shown = 0;
  for (const auto& [key, group] : order) {
    if (limit != 0 && shown++ >= limit) break;
    t.row({key, std::to_string(group->rows.size()),
           util::TextTable::num(group->node_hours, 5),
           util::TextTable::num(
               jobs.aggregate(db::Agg::Avg, "CPU_Usage", group->rows), 3),
           util::TextTable::num(
               jobs.aggregate(db::Agg::Avg, "flops", group->rows), 4),
           util::TextTable::num(
               jobs.aggregate(db::Agg::Avg, "VecPercent", group->rows), 3),
           util::TextTable::num(
               jobs.aggregate(db::Agg::Avg, "MetaDataRate", group->rows),
               5)});
  }
  return t.render();
}

}  // namespace

std::string app_report(const db::Table& jobs,
                       const std::vector<db::RowId>& rows,
                       std::size_t limit) {
  return grouped_report(jobs, rows, "exe", limit);
}

std::string user_report(const db::Table& jobs,
                        const std::vector<db::RowId>& rows,
                        std::size_t limit) {
  return grouped_report(jobs, rows, "user", limit);
}

std::string group_report(const db::Table& jobs,
                         const std::vector<db::RowId>& rows,
                         std::size_t limit) {
  return grouped_report(jobs, rows, "account", limit);
}

std::string daily_report(const db::Table& jobs, util::SimTime day) {
  const auto rows = jobs.select(
      {{"start", db::Op::Gte, db::Value(day / util::kSecond)},
       {"start", db::Op::Lt,
        db::Value((day + util::kDay) / util::kSecond)}});
  std::string out = "TACC Stats daily report for " + util::format_time(day) +
                    "\n\n";
  out += population_summary(jobs, rows);
  out += "\n";
  out += flagged_sublist(jobs, rows, 20);
  return out;
}

}  // namespace tacc::portal
