#include "portal/views.hpp"

#include <cmath>

#include "pipeline/flags.hpp"
#include "pipeline/metrics.hpp"
#include "util/clock.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "xalt/xalt.hpp"

namespace tacc::portal {
namespace {

std::string time_cell(const db::Value& secs) {
  return util::format_time(secs.as_int() * util::kSecond);
}

}  // namespace

std::string job_list_view(const db::Table& jobs,
                          const std::vector<db::RowId>& rows,
                          std::size_t limit) {
  util::TextTable t;
  t.header({"Job ID", "User", "Exe", "Start", "Run time", "Queue", "Status",
            "Way", "Nodes", "Node hrs"});
  std::size_t shown = 0;
  for (const auto id : rows) {
    if (limit != 0 && shown++ >= limit) break;
    t.row({jobs.at(id, "jobid").to_string(), jobs.at(id, "user").as_text(),
           jobs.at(id, "exe").as_text(), time_cell(jobs.at(id, "start")),
           util::format_duration(util::from_seconds(
               jobs.at(id, "runtime").as_real())),
           jobs.at(id, "queue").as_text(), jobs.at(id, "status").as_text(),
           jobs.at(id, "wayness").to_string(),
           jobs.at(id, "nodes").to_string(),
           util::TextTable::num(jobs.at(id, "node_hours").as_real(), 4)});
  }
  std::string out = std::to_string(rows.size()) + " jobs matched";
  if (limit != 0 && rows.size() > limit) {
    out += " (showing first " + std::to_string(limit) + ")";
  }
  out += "\n" + t.render();
  return out;
}

std::vector<db::RowId> flagged_rows(const db::Table& jobs,
                                    const std::vector<db::RowId>& rows) {
  std::vector<db::RowId> out;
  for (const auto id : rows) {
    if (!jobs.at(id, "flags").as_text().empty()) out.push_back(id);
  }
  return out;
}

std::string flagged_sublist(const db::Table& jobs,
                            const std::vector<db::RowId>& rows,
                            std::size_t limit) {
  const auto flagged = flagged_rows(jobs, rows);
  util::TextTable t;
  t.header({"Job ID", "User", "Exe", "Flags"});
  std::size_t shown = 0;
  for (const auto id : flagged) {
    if (limit != 0 && shown++ >= limit) break;
    t.row({jobs.at(id, "jobid").to_string(), jobs.at(id, "user").as_text(),
           jobs.at(id, "exe").as_text(), jobs.at(id, "flags").as_text()});
  }
  return std::to_string(flagged.size()) + " flagged jobs\n" + t.render();
}

std::string job_detail_view(const db::Table& jobs, db::RowId row) {
  std::string out;
  out += "Job " + jobs.at(row, "jobid").to_string() + " (" +
         jobs.at(row, "user").as_text() + ", " +
         jobs.at(row, "exe").as_text() + ")\n";
  out += "  queue=" + jobs.at(row, "queue").as_text() +
         " status=" + jobs.at(row, "status").as_text() +
         " nodes=" + jobs.at(row, "nodes").to_string() +
         " wayness=" + jobs.at(row, "wayness").to_string() + "\n";
  out += "  start=" + time_cell(jobs.at(row, "start")) +
         " end=" + time_cell(jobs.at(row, "end")) + " runtime=" +
         util::format_duration(
             util::from_seconds(jobs.at(row, "runtime").as_real())) +
         "\n";
  const std::string flags = jobs.at(row, "flags").as_text();
  out += "  flags: " + (flags.empty() ? std::string("(none)") : flags) + "\n";
  util::TextTable t;
  t.header({"Metric", "Value"});
  for (const auto& label : pipeline::JobMetrics::labels()) {
    const auto& v = jobs.at(row, label);
    t.row({label, v.is_null() ? "n/a" : util::TextTable::num(v.as_real(), 5)});
  }
  out += t.render();
  return out;
}

std::string job_detail_view(const db::Table& jobs, db::RowId row,
                            const db::Table* xalt_table) {
  std::string out = job_detail_view(jobs, row);
  if (xalt_table != nullptr) {
    if (const auto env =
            xalt::lookup(*xalt_table, jobs.at(row, "jobid").as_int())) {
      out += "Environment (XALT):\n";
      out += xalt::render_environment(*env);
    } else {
      out += "Environment (XALT): no record for this job\n";
    }
  }
  return out;
}

std::string process_view(const pipeline::JobData& data, std::size_t limit) {
  util::TextTable t;
  t.header({"Host", "PID", "Exe", "RSS MB", "HWM MB", "Threads",
            "Cpus_allowed"});
  std::size_t shown = 0;
  for (const auto& host : data.hosts) {
    // Use the last record carrying ps blocks (the richest snapshot).
    const collect::Record* best = nullptr;
    for (const auto& rec : host.records) {
      for (const auto& block : rec.blocks) {
        if (block.type == "ps") {
          best = &rec;
          break;
        }
      }
    }
    if (best == nullptr) continue;
    const collect::Schema* schema = nullptr;
    for (const auto& s : host.schemas) {
      if (s.type() == "ps") schema = &s;
    }
    if (schema == nullptr) continue;
    const auto rss = schema->index_of("vm_rss");
    const auto hwm = schema->index_of("vm_hwm");
    const auto threads = schema->index_of("threads");
    const auto cpus = schema->index_of("cpus_allowed");
    if (!rss || !hwm || !threads || !cpus) continue;
    for (const auto& block : best->blocks) {
      if (block.type != "ps") continue;
      if (limit != 0 && shown++ >= limit) {
        t.row({"...", "", "", "", "", "", ""});
        return t.render();
      }
      // Device is "<pid>:<name>".
      const auto colon = block.device.find(':');
      char mask[32];
      std::snprintf(mask, sizeof mask, "%llx",
                    static_cast<unsigned long long>(block.values[*cpus]));
      t.row({host.hostname, block.device.substr(0, colon),
             colon == std::string::npos ? "?"
                                        : block.device.substr(colon + 1),
             util::TextTable::num(
                 static_cast<double>(block.values[*rss]) / 1024.0, 4),
             util::TextTable::num(
                 static_cast<double>(block.values[*hwm]) / 1024.0, 4),
             std::to_string(block.values[*threads]), mask});
    }
  }
  return t.render();
}

std::string threshold_report(const db::Table& jobs, db::RowId row,
                             const pipeline::FlagThresholds& t) {
  util::TextTable table;
  table.header({"Test", "Threshold", "Value", "Result"});
  const bool largemem = jobs.at(row, "queue").as_text() == "largemem";
  struct Check {
    const char* name;
    const char* metric;
    double threshold;
    bool fail_if_above;  // false: fail if below
    bool applicable;
  };
  const Check checks[] = {
      {"metadata rate", "MetaDataRate", t.metadata_rate, true, true},
      {"GigE bandwidth", "GigEBW", t.gige_mb_s, true, true},
      {"largemem footprint", "MemUsage", t.largemem_min_gb, false, largemem},
      {"node balance (idle)", "idle", t.idle_ratio, false, true},
      {"time balance (catastrophe)", "catastrophe", t.catastrophe_ratio,
       false, true},
      {"cycles per instruction", "cpi", t.high_cpi, true, true},
      {"vectorization", "VecPercent", t.low_vec, false, true},
  };
  for (const auto& check : checks) {
    if (!check.applicable) continue;
    const auto& v = jobs.at(row, check.metric);
    std::string result = "n/a";
    std::string value = "n/a";
    if (!v.is_null()) {
      value = util::TextTable::num(v.as_real(), 4);
      const bool fail = check.fail_if_above ? v.as_real() > check.threshold
                                            : v.as_real() < check.threshold;
      result = fail ? "FAIL" : "PASS";
    }
    table.row({check.name,
               std::string(check.fail_if_above ? "<= " : ">= ") +
                   util::TextTable::num(check.threshold, 4),
               value, result});
  }
  return table.render();
}

std::span<const HistogramPanel> histogram_panels() {
  static const HistogramPanel panels[] = {
      {"Run time (hours)", "runtime", 1.0 / 3600.0},
      {"Nodes", "nodes", 1.0},
      {"Queue wait time (hours)", "queue_wait", 1.0 / 3600.0},
      {"Max metadata reqs (1k/s)", "MetaDataRate", 1.0 / 1000.0},
  };
  return panels;
}

std::string render_query_histograms(
    std::span<const std::vector<double>> panel_values, std::size_t bins) {
  const auto panels = histogram_panels();
  std::string out;
  for (std::size_t i = 0; i < panels.size() && i < panel_values.size(); ++i) {
    const auto& values = panel_values[i];
    const auto h = util::Histogram::of(
        std::span<const double>(values.data(), values.size()), bins);
    out += h.render(panels[i].title);
    out += "\n";
  }
  return out;
}

std::string query_histograms(const db::Table& jobs,
                             const std::vector<db::RowId>& rows,
                             std::size_t bins) {
  std::vector<std::vector<double>> panel_values;
  for (const auto& p : histogram_panels()) {
    auto values = jobs.column_values(p.column, rows);
    for (auto& v : values) v *= p.scale;
    panel_values.push_back(std::move(values));
  }
  return render_query_histograms(panel_values, bins);
}

}  // namespace tacc::portal
