// Typed values for the embedded relational store (the PostgreSQL
// substitute). Values are null, 64-bit integers, doubles, or text; integer
// values coerce to real where a real column expects them.
#pragma once

#include <cstdint>
#include <string>
#include <variant>

namespace tacc::db {

enum class ValueType { Null, Int, Real, Text };

class Value {
 public:
  Value() noexcept : v_(std::monostate{}) {}
  Value(std::int64_t x) noexcept : v_(x) {}          // NOLINT(google-explicit-constructor)
  Value(int x) noexcept : v_(std::int64_t{x}) {}     // NOLINT
  Value(std::uint64_t x) noexcept                    // NOLINT
      : v_(static_cast<std::int64_t>(x)) {}
  Value(double x) noexcept : v_(x) {}                // NOLINT
  Value(std::string x) noexcept : v_(std::move(x)) {}  // NOLINT
  Value(const char* x) : v_(std::string(x)) {}       // NOLINT

  ValueType type() const noexcept {
    switch (v_.index()) {
      case 1:
        return ValueType::Int;
      case 2:
        return ValueType::Real;
      case 3:
        return ValueType::Text;
      default:
        return ValueType::Null;
    }
  }

  bool is_null() const noexcept { return type() == ValueType::Null; }

  /// Integer content; 0 for non-integers.
  std::int64_t as_int() const noexcept {
    if (const auto* p = std::get_if<std::int64_t>(&v_)) return *p;
    if (const auto* p = std::get_if<double>(&v_)) {
      return static_cast<std::int64_t>(*p);
    }
    return 0;
  }

  /// Numeric content as double (ints coerce); 0 for text/null.
  double as_real() const noexcept {
    if (const auto* p = std::get_if<double>(&v_)) return *p;
    if (const auto* p = std::get_if<std::int64_t>(&v_)) {
      return static_cast<double>(*p);
    }
    return 0.0;
  }

  /// Text content; empty for non-text.
  const std::string& as_text() const noexcept {
    static const std::string empty;
    if (const auto* p = std::get_if<std::string>(&v_)) return *p;
    return empty;
  }

  /// SQL-style three-way comparison used by predicates and indexes:
  /// numerics compare numerically across Int/Real; text compares
  /// lexicographically; null sorts first; mixed text/numeric compares by
  /// type rank.
  int compare(const Value& other) const noexcept;

  bool operator==(const Value& other) const noexcept {
    return compare(other) == 0;
  }
  bool operator<(const Value& other) const noexcept {
    return compare(other) < 0;
  }

  /// Display form (used by the portal views).
  std::string to_string() const;

 private:
  std::variant<std::monostate, std::int64_t, double, std::string> v_;
};

}  // namespace tacc::db
