// Tables: typed columns, row storage, secondary indexes, and query
// execution with predicate conjunctions and aggregates. This is the
// minimal relational core the analysis framework needs (the paper maps
// job metadata + computed metrics into PostgreSQL and queries it through
// the portal and the Django ORM).
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "db/value.hpp"

namespace tacc::db {

struct Column {
  std::string name;
  ValueType type = ValueType::Real;
};

using Row = std::vector<Value>;
using RowId = std::size_t;

/// Comparison operators, matching the portal's search-field suffixes
/// (metric__gte=x style, like the Django ORM).
enum class Op { Eq, Ne, Lt, Lte, Gt, Gte, Contains };

struct Predicate {
  std::string column;
  Op op = Op::Eq;
  Value rhs;
};

/// Aggregate functions for Query::aggregate.
enum class Agg { Count, Sum, Avg, Min, Max };

class Table {
 public:
  Table(std::string name, std::vector<Column> columns);

  const std::string& name() const noexcept { return name_; }
  const std::vector<Column>& columns() const noexcept { return columns_; }
  std::size_t num_rows() const noexcept { return rows_.size(); }

  /// Column position; throws std::out_of_range for unknown names.
  std::size_t column_index(const std::string& name) const;
  /// Column position, or nullopt.
  std::optional<std::size_t> find_column(const std::string& name) const
      noexcept;

  /// Inserts a row. Arity must match; Int coerces into Real columns; Null
  /// is allowed anywhere. Throws std::invalid_argument otherwise.
  RowId insert(Row row);

  const Row& row(RowId id) const { return rows_.at(id); }
  const Value& at(RowId id, const std::string& column) const {
    return rows_.at(id).at(column_index(column));
  }

  /// Builds (or rebuilds) a secondary index on a column. Equality and
  /// range predicates on indexed columns use it automatically.
  void create_index(const std::string& column);
  bool has_index(const std::string& column) const noexcept;

  /// Row ids satisfying the conjunction of predicates, in insertion order.
  std::vector<RowId> select(const std::vector<Predicate>& preds) const;

  /// select + ORDER BY <column> [DESC] + LIMIT. Stable within equal keys
  /// (insertion order). limit 0 = unlimited.
  std::vector<RowId> select_ordered(const std::vector<Predicate>& preds,
                                    const std::string& order_by,
                                    bool descending = false,
                                    std::size_t limit = 0) const;

  /// Applies an aggregate to a column over a selection. Count ignores the
  /// column. Null values are skipped (SQL semantics). Avg of an empty
  /// selection is 0.
  double aggregate(Agg agg, const std::string& column,
                   const std::vector<RowId>& rows) const;

  /// Convenience: select + aggregate in one call.
  double aggregate_where(Agg agg, const std::string& column,
                         const std::vector<Predicate>& preds) const {
    return aggregate(agg, column, select(preds));
  }

  /// Extracts a numeric column over a selection (for correlations).
  std::vector<double> column_values(const std::string& column,
                                    const std::vector<RowId>& rows) const;

 private:
  bool matches(const Row& row, const Predicate& pred,
               std::size_t col) const noexcept;

  std::string name_;
  std::vector<Column> columns_;
  std::vector<Row> rows_;
  // column index -> (value -> row ids)
  std::map<std::size_t, std::multimap<Value, RowId>> indexes_;
};

/// A named collection of tables.
class Database {
 public:
  /// Creates a table; throws std::invalid_argument if the name exists.
  Table& create_table(const std::string& name, std::vector<Column> columns);
  Table& table(const std::string& name);
  const Table& table(const std::string& name) const;
  bool has_table(const std::string& name) const noexcept;

 private:
  std::map<std::string, Table> tables_;
};

}  // namespace tacc::db
