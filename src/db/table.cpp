#include "db/table.hpp"

#include <algorithm>
#include <stdexcept>

namespace tacc::db {

Table::Table(std::string name, std::vector<Column> columns)
    : name_(std::move(name)), columns_(std::move(columns)) {
  if (columns_.empty()) {
    throw std::invalid_argument("table needs at least one column");
  }
}

std::size_t Table::column_index(const std::string& name) const {
  if (const auto idx = find_column(name)) return *idx;
  throw std::out_of_range("no column '" + name + "' in table " + name_);
}

std::optional<std::size_t> Table::find_column(
    const std::string& name) const noexcept {
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return std::nullopt;
}

RowId Table::insert(Row row) {
  if (row.size() != columns_.size()) {
    throw std::invalid_argument("row arity mismatch for table " + name_);
  }
  for (std::size_t i = 0; i < row.size(); ++i) {
    const ValueType have = row[i].type();
    const ValueType want = columns_[i].type;
    if (have == ValueType::Null || have == want) continue;
    if (have == ValueType::Int && want == ValueType::Real) {
      row[i] = Value(row[i].as_real());
      continue;
    }
    throw std::invalid_argument("type mismatch in column " +
                                columns_[i].name);
  }
  const RowId id = rows_.size();
  for (auto& [col, index] : indexes_) {
    index.emplace(row[col], id);
  }
  rows_.push_back(std::move(row));
  return id;
}

void Table::create_index(const std::string& column) {
  const std::size_t col = column_index(column);
  auto& index = indexes_[col];
  index.clear();
  for (RowId id = 0; id < rows_.size(); ++id) {
    index.emplace(rows_[id][col], id);
  }
}

bool Table::has_index(const std::string& column) const noexcept {
  const auto idx = find_column(column);
  return idx && indexes_.count(*idx) > 0;
}

bool Table::matches(const Row& row, const Predicate& pred,
                    std::size_t col) const noexcept {
  const Value& v = row[col];
  if (pred.op == Op::Contains) {
    return v.as_text().find(pred.rhs.as_text()) != std::string::npos;
  }
  const int c = v.compare(pred.rhs);
  switch (pred.op) {
    case Op::Eq:
      return c == 0;
    case Op::Ne:
      return c != 0;
    case Op::Lt:
      return c < 0;
    case Op::Lte:
      return c <= 0;
    case Op::Gt:
      return c > 0;
    case Op::Gte:
      return c >= 0;
    case Op::Contains:
      return false;  // handled above
  }
  return false;
}

std::vector<RowId> Table::select(const std::vector<Predicate>& preds) const {
  std::vector<std::size_t> cols;
  cols.reserve(preds.size());
  for (const auto& p : preds) cols.push_back(column_index(p.column));

  // If some equality/range predicate has an index, seed candidates from it.
  std::optional<std::vector<RowId>> candidates;
  for (std::size_t i = 0; i < preds.size(); ++i) {
    const auto it = indexes_.find(cols[i]);
    if (it == indexes_.end()) continue;
    const auto& index = it->second;
    std::vector<RowId> ids;
    const auto& p = preds[i];
    switch (p.op) {
      case Op::Eq: {
        const auto [lo, hi] = index.equal_range(p.rhs);
        for (auto jt = lo; jt != hi; ++jt) ids.push_back(jt->second);
        break;
      }
      case Op::Lt:
      case Op::Lte: {
        auto hi = p.op == Op::Lt ? index.lower_bound(p.rhs)
                                 : index.upper_bound(p.rhs);
        for (auto jt = index.begin(); jt != hi; ++jt) {
          ids.push_back(jt->second);
        }
        break;
      }
      case Op::Gt:
      case Op::Gte: {
        auto lo = p.op == Op::Gt ? index.upper_bound(p.rhs)
                                 : index.lower_bound(p.rhs);
        for (auto jt = lo; jt != index.end(); ++jt) {
          ids.push_back(jt->second);
        }
        break;
      }
      default:
        continue;  // Ne/Contains don't benefit from the index
    }
    std::sort(ids.begin(), ids.end());
    candidates = std::move(ids);
    break;  // one index seed is enough; remaining predicates filter
  }

  std::vector<RowId> out;
  auto check_all = [&](RowId id) {
    const Row& row = rows_[id];
    for (std::size_t i = 0; i < preds.size(); ++i) {
      if (!matches(row, preds[i], cols[i])) return false;
    }
    return true;
  };
  if (candidates) {
    for (const RowId id : *candidates) {
      if (check_all(id)) out.push_back(id);
    }
  } else {
    for (RowId id = 0; id < rows_.size(); ++id) {
      if (check_all(id)) out.push_back(id);
    }
  }
  return out;
}

std::vector<RowId> Table::select_ordered(const std::vector<Predicate>& preds,
                                         const std::string& order_by,
                                         bool descending,
                                         std::size_t limit) const {
  auto rows = select(preds);
  const std::size_t col = column_index(order_by);
  std::stable_sort(rows.begin(), rows.end(),
                   [&](RowId a, RowId b) {
                     const int c = rows_[a][col].compare(rows_[b][col]);
                     return descending ? c > 0 : c < 0;
                   });
  if (limit != 0 && rows.size() > limit) rows.resize(limit);
  return rows;
}

double Table::aggregate(Agg agg, const std::string& column,
                        const std::vector<RowId>& rows) const {
  if (agg == Agg::Count) return static_cast<double>(rows.size());
  const std::size_t col = column_index(column);
  double sum = 0.0;
  double mn = 0.0;
  double mx = 0.0;
  std::size_t n = 0;
  for (const RowId id : rows) {
    const Value& v = rows_.at(id)[col];
    if (v.is_null()) continue;
    const double x = v.as_real();
    if (n == 0) {
      mn = mx = x;
    } else {
      mn = std::min(mn, x);
      mx = std::max(mx, x);
    }
    sum += x;
    ++n;
  }
  switch (agg) {
    case Agg::Sum:
      return sum;
    case Agg::Avg:
      return n ? sum / static_cast<double>(n) : 0.0;
    case Agg::Min:
      return mn;
    case Agg::Max:
      return mx;
    case Agg::Count:
      break;
  }
  return 0.0;
}

std::vector<double> Table::column_values(
    const std::string& column, const std::vector<RowId>& rows) const {
  const std::size_t col = column_index(column);
  std::vector<double> out;
  out.reserve(rows.size());
  for (const RowId id : rows) {
    const Value& v = rows_.at(id)[col];
    if (!v.is_null()) out.push_back(v.as_real());
  }
  return out;
}

Table& Database::create_table(const std::string& name,
                              std::vector<Column> columns) {
  const auto [it, inserted] = tables_.emplace(
      name, Table(name, std::move(columns)));
  if (!inserted) {
    throw std::invalid_argument("table already exists: " + name);
  }
  return it->second;
}

Table& Database::table(const std::string& name) {
  const auto it = tables_.find(name);
  if (it == tables_.end()) throw std::out_of_range("no table " + name);
  return it->second;
}

const Table& Database::table(const std::string& name) const {
  const auto it = tables_.find(name);
  if (it == tables_.end()) throw std::out_of_range("no table " + name);
  return it->second;
}

bool Database::has_table(const std::string& name) const noexcept {
  return tables_.count(name) > 0;
}

}  // namespace tacc::db
