#include "db/value.hpp"

#include <cstdio>

namespace tacc::db {
namespace {

int type_rank(ValueType t) noexcept {
  switch (t) {
    case ValueType::Null:
      return 0;
    case ValueType::Int:
    case ValueType::Real:
      return 1;
    case ValueType::Text:
      return 2;
  }
  return 3;
}

}  // namespace

int Value::compare(const Value& other) const noexcept {
  const int ra = type_rank(type());
  const int rb = type_rank(other.type());
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (type()) {
    case ValueType::Null:
      return 0;
    case ValueType::Int:
    case ValueType::Real: {
      const double a = as_real();
      const double b = other.as_real();
      if (a < b) return -1;
      if (a > b) return 1;
      return 0;
    }
    case ValueType::Text: {
      const auto& a = as_text();
      const auto& b = other.as_text();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
  }
  return 0;
}

std::string Value::to_string() const {
  switch (type()) {
    case ValueType::Null:
      return "NULL";
    case ValueType::Int:
      return std::to_string(as_int());
    case ValueType::Real: {
      char buf[48];
      std::snprintf(buf, sizeof buf, "%.6g", as_real());
      return buf;
    }
    case ValueType::Text:
      return as_text();
  }
  return {};
}

}  // namespace tacc::db
