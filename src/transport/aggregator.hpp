// Aggregator tier node (PerSyst-style tree aggregation): a real thread
// that consumes raw chunks (or lower-tier frames) from its child brokers,
// pre-reduces them in flight — same-window per-host batches coalesce into
// one AggFrame behind a single copy of the host's header — and republishes
// the frames upward to its parent broker.
//
// Delivery: at-least-once per tier. Child deliveries are acked only after
// the coalesced frame is safely published upward (or taken into the local
// spool), so an aggregator crash (the "aggregator.crash" fault site)
// redelivers from the children and the root consumer's per-record dedup
// absorbs the duplicates. A failed upward publish ("aggregator.publish")
// retries with the shared RetryPolicy backoff/jitter, then spools the frame
// locally; the spool replays in order ahead of fresh frames, exactly the
// daemon's spool semantics one tier up.
//
// Backpressure: while the parent queue is Paused (watermarks, see
// Broker::set_watermarks) the aggregator stops pulling from its children —
// their queues fill, trip their own watermarks, and the daemons below spool
// locally; the Paused signal propagates down the tree without any extra
// control channel.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "transport/broker.hpp"
#include "transport/daemon.hpp"
#include "util/fault.hpp"
#include "util/thread_annotations.hpp"

namespace tacc::transport {

struct AggregatorOptions {
  /// Coalesce a host's pending records into one frame at this count.
  std::size_t batch_records = 64;
  /// Same-window coalescing bucket width in simulated time: records whose
  /// publish times fall in different buckets never share a frame
  /// (0 = unbounded, coalesce purely by count/idle).
  util::SimTime window = util::kHour;
  /// Upward publish routing prefix; frames route as "<prefix><hostname>".
  std::string routing_prefix = "stats.";
  /// Upward publish retry/backoff/spool tuning (the daemon's policy, one
  /// tier up; spool_limit counts records across spooled frames).
  RetryPolicy retry{};
};

struct AggregatorStats {
  std::uint64_t consumed = 0;       // child deliveries taken
  std::uint64_t records_in = 0;     // raw records consumed from children
  std::uint64_t frames_out = 0;     // frames published upward
  std::uint64_t records_out = 0;    // records carried by those frames
  std::uint64_t merged_frames = 0;  // lower-tier frames folded into pending
  std::uint64_t forwarded = 0;      // identity-less messages passed verbatim
  std::uint64_t crashes = 0;        // injected aggregator.crash events
  std::uint64_t parse_errors = 0;   // malformed bodies acked and dropped
  util::SimTime total_backoff = 0;  // virtual retry-backoff time
  util::ResilienceStats resilience;
};

class Aggregator {
 public:
  /// Starts the aggregator thread: consumes `queue` from every child
  /// broker, publishes frames to `parent` (which must outlive this).
  /// `name` is the stable identity used for fault keying and upward
  /// PublishInfo. `faults` enables "aggregator.publish" /
  /// "aggregator.crash" injection.
  Aggregator(std::string name, std::vector<Broker*> children, Broker& parent,
             std::string queue, AggregatorOptions options = {},
             std::shared_ptr<const util::FaultPlan> faults = nullptr);
  ~Aggregator();

  Aggregator(const Aggregator&) = delete;
  Aggregator& operator=(const Aggregator&) = delete;

  /// Signals the thread to stop and joins it (also called by the dtor).
  /// Leaves the brokers running: teardown order is owned by the tree.
  void stop();

  const std::string& name() const noexcept { return name_; }

  /// True when the aggregator holds no pending records, its spool is
  /// empty, and it has completed two consecutive idle sweeps — i.e. every
  /// record it ever consumed has been pushed upward (quiesce barrier).
  bool idle() const noexcept {
    return pending_records_.load() == 0 && spool_records_.load() == 0 &&
           idle_sweeps_.load() >= 2;
  }

  /// Records buffered in not-yet-flushed pending frames.
  std::size_t pending_records() const noexcept {
    return pending_records_.load();
  }

  /// Records parked in the local frame spool.
  std::size_t spool_records() const noexcept { return spool_records_.load(); }

  AggregatorStats stats() const TACC_EXCLUDES(mu_);

 private:
  /// One host's accumulating frame.
  struct PendingFrame {
    std::string header;   // host header bytes (magic + ids + schemas)
    std::string records;  // concatenated serialized record bytes
    std::vector<std::uint64_t> seqs;
    std::vector<util::SimTime> delays;
    /// (child index, delivery tag) of every child message folded in; acked
    /// on successful upward publish or spool handoff.
    std::vector<std::pair<std::size_t, std::uint64_t>> acks;
    util::SimTime window_id = 0;
    util::SimTime max_time = 0;
  };
  /// A frame (or verbatim message) awaiting replay after exhausted retries.
  struct SpooledFrame {
    std::string routing_key;
    std::string body;
    std::string producer;     // upward PublishInfo identity
    std::uint64_t seq = 0;    //   "
    std::uint64_t fault_seq = 0;  // aggregator.publish fault salt
    std::size_t records = 0;
    util::SimTime now = 0;
  };

  void run();
  void ingest(std::size_t child, Message msg);
  void append_pending(const std::string& host, std::string_view header,
                      std::string_view records,
                      const std::vector<std::uint64_t>& seqs,
                      const std::vector<util::SimTime>& delays,
                      util::SimTime window_id, util::SimTime max_time,
                      std::size_t child, std::uint64_t tag);
  /// Flushes one host's pending frame upward (publish or spool). Takes
  /// the key by value: it erases the host's pending_ node, so a caller's
  /// reference into that map would dangle.
  void flush_host(std::string host);
  void flush_all();
  /// Replays spooled frames while the parent accepts them.
  void try_flush_spool();
  /// The shared retry/backoff loop at the "aggregator.publish" site.
  /// `slot_base` offsets the attempt salt so spool replays roll fresh dice.
  bool try_publish(const std::string& routing_key, const std::string& body,
                   const std::string& producer, std::uint64_t seq,
                   std::uint64_t fault_seq, util::SimTime now,
                   std::uint64_t slot_base);
  /// Simulated aggregator crash: nothing is acked; every child requeues
  /// its unacked deliveries and all pending frames are dropped (they
  /// rebuild from the redeliveries). `extra_unacked` counts the
  /// mid-flush frame's own deliveries.
  void crash_recover(std::size_t extra_unacked);
  /// Ages the oldest spooled frames out of an over-limit spool.
  void enforce_spool_limit();
  void forward_verbatim(std::size_t child, const Message& msg);
  util::SimTime window_of(util::SimTime t) const noexcept {
    return options_.window > 0 ? t / options_.window : 0;
  }
  std::size_t header_len_of(const std::string& host, const std::string& body);

  const std::string name_;
  std::vector<Broker*> children_;
  Broker* parent_;
  const std::string queue_;
  const AggregatorOptions options_;
  std::shared_ptr<const util::FaultPlan> faults_;

  // Owned by the aggregator thread; no lock needed.
  std::map<std::string, PendingFrame> pending_;
  std::map<std::string, std::string> header_cache_;  // host -> header bytes
  std::deque<SpooledFrame> spool_;
  std::uint64_t frame_seq_ = 0;
  std::uint64_t replay_round_ = 0;

  mutable util::Mutex mu_;
  AggregatorStats stats_ TACC_GUARDED_BY(mu_);

  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> idle_sweeps_{0};
  std::atomic<std::size_t> pending_records_{0};
  std::atomic<std::size_t> spool_records_{0};
  std::thread thread_;
};

}  // namespace tacc::transport
