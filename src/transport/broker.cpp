#include "transport/broker.hpp"

#include <chrono>

#include "util/strings.hpp"

namespace tacc::transport {

void Broker::declare_queue(const std::string& queue) {
  util::MutexLock lock(mu_);
  queues_.try_emplace(queue);
}

void Broker::bind(const std::string& queue, const std::string& pattern) {
  util::MutexLock lock(mu_);
  queues_.try_emplace(queue);
  bindings_.emplace_back(queue, pattern);
}

bool Broker::key_matches(const std::string& pattern,
                         const std::string& key) noexcept {
  if (pattern == "#") return true;
  if (util::ends_with(pattern, ".*")) {
    const std::string_view prefix(pattern.data(), pattern.size() - 1);
    return util::starts_with(key, prefix) &&
           key.find('.', prefix.size()) == std::string::npos;
  }
  return pattern == key;
}

std::size_t Broker::publish(const std::string& routing_key,
                            std::string body) {
  std::size_t routed = 0;
  {
    util::MutexLock lock(mu_);
    ++stats_.published;
    for (const auto& [queue, pattern] : bindings_) {
      if (!key_matches(pattern, routing_key)) continue;
      Message msg;
      msg.routing_key = routing_key;
      msg.body = body;  // copy: fan-out to multiple queues
      msg.delivery_tag = next_tag_++;
      queues_[queue].messages.push_back(std::move(msg));
      ++routed;
    }
    if (routed == 0) ++stats_.unroutable;
  }
  if (routed > 0) cv_.notify_all();
  return routed;
}

std::optional<Message> Broker::consume(const std::string& queue,
                                       std::chrono::milliseconds timeout) {
  util::MutexLock lock(mu_);
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  auto it = queues_.find(queue);
  if (it == queues_.end()) {
    it = queues_.try_emplace(queue).first;
  }
  QueueState& q = it->second;
  while (q.messages.empty() && !shutdown_) {
    if (cv_.wait_until(mu_, deadline) == std::cv_status::timeout &&
        q.messages.empty()) {
      return std::nullopt;
    }
  }
  if (q.messages.empty()) return std::nullopt;
  Message msg = std::move(q.messages.front());
  q.messages.pop_front();
  q.unacked.emplace(msg.delivery_tag, msg);
  ++stats_.delivered;
  return msg;
}

void Broker::ack(const std::string& queue, std::uint64_t delivery_tag) {
  util::MutexLock lock(mu_);
  const auto it = queues_.find(queue);
  if (it == queues_.end()) return;
  if (it->second.unacked.erase(delivery_tag) > 0) ++stats_.acked;
}

void Broker::requeue(const std::string& queue, std::uint64_t delivery_tag) {
  {
    util::MutexLock lock(mu_);
    const auto it = queues_.find(queue);
    if (it == queues_.end()) return;
    const auto uit = it->second.unacked.find(delivery_tag);
    if (uit == it->second.unacked.end()) return;
    it->second.messages.push_front(std::move(uit->second));
    it->second.unacked.erase(uit);
    ++stats_.redelivered;
  }
  cv_.notify_all();
}

std::size_t Broker::depth(const std::string& queue) const {
  util::MutexLock lock(mu_);
  const auto it = queues_.find(queue);
  return it == queues_.end() ? 0 : it->second.messages.size();
}

BrokerStats Broker::stats() const {
  util::MutexLock lock(mu_);
  return stats_;
}

void Broker::shutdown() {
  {
    util::MutexLock lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
}

bool Broker::is_shut_down() const {
  util::MutexLock lock(mu_);
  return shutdown_;
}

}  // namespace tacc::transport
