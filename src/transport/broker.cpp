#include "transport/broker.hpp"

#include <chrono>
#include <utility>

#include "util/strings.hpp"

namespace tacc::transport {

void Broker::declare_queue(const std::string& queue) {
  util::MutexLock lock(mu_);
  queues_.try_emplace(queue);
}

void Broker::bind(const std::string& queue, const std::string& pattern) {
  util::MutexLock lock(mu_);
  queues_.try_emplace(queue);
  bindings_.emplace_back(queue, pattern);
}

void Broker::set_fault_plan(std::shared_ptr<const util::FaultPlan> plan) {
  util::MutexLock lock(mu_);
  faults_ = std::move(plan);
}

void Broker::set_queue_limit(const std::string& queue,
                             std::size_t max_depth) {
  util::MutexLock lock(mu_);
  queues_[queue].limit = max_depth;
}

void Broker::set_watermarks(const std::string& queue, std::size_t high,
                            std::size_t low) {
  util::MutexLock lock(mu_);
  QueueState& q = queues_[queue];
  q.high_wm = high;
  q.low_wm = (high > 0 && low == 0) ? high / 2 : low;
  update_pause(q);
}

void Broker::update_pause(QueueState& q) {
  if (q.high_wm == 0) {
    q.paused = false;
    return;
  }
  if (!q.paused && q.messages.size() >= q.high_wm) {
    q.paused = true;
    ++stats_.resilience.paused_windows;
  } else if (q.paused && q.messages.size() <= q.low_wm) {
    q.paused = false;
    ++stats_.resilience.resumed_windows;
  }
}

bool Broker::publish_paused(const std::string& routing_key) const {
  util::MutexLock lock(mu_);
  for (const auto& [queue, pattern] : bindings_) {
    if (!key_matches(pattern, routing_key)) continue;
    const auto it = queues_.find(queue);
    if (it != queues_.end() && it->second.paused) return true;
  }
  return false;
}

bool Broker::queue_paused(const std::string& queue) const {
  util::MutexLock lock(mu_);
  const auto it = queues_.find(queue);
  return it != queues_.end() && it->second.paused;
}

bool Broker::key_matches(const std::string& pattern,
                         const std::string& key) noexcept {
  if (pattern == "#") return true;
  if (util::ends_with(pattern, ".*")) {
    const std::string_view prefix(pattern.data(), pattern.size() - 1);
    return util::starts_with(key, prefix) &&
           key.find('.', prefix.size()) == std::string::npos;
  }
  return pattern == key;
}

std::size_t Broker::publish(const std::string& routing_key,
                            std::string body) {
  return publish(routing_key, std::move(body), PublishInfo{});
}

std::size_t Broker::publish(const std::string& routing_key, std::string body,
                            const PublishInfo& info) {
  std::size_t routed = 0;
  {
    util::MutexLock lock(mu_);
    ++stats_.published;
    util::FaultDecision fault;
    if (faults_) {
      fault = faults_->decide(
          util::kFaultBrokerPublish,
          info.producer.empty() ? routing_key : info.producer,
          util::FaultPlan::salt(info.seq, info.attempt), info.now);
    }
    if (fault.drop) {
      // Lost in flight, detectably: the publish "connection" fails, so the
      // publisher can retry with a fresh attempt salt.
      ++stats_.resilience.injected_drops;
      return 0;
    }
    for (const auto& [queue, pattern] : bindings_) {
      if (!key_matches(pattern, routing_key)) continue;
      QueueState& q = queues_[queue];
      const int copies = fault.duplicate ? 2 : 1;
      for (int c = 0; c < copies; ++c) {
        Message msg;
        msg.routing_key = routing_key;
        msg.body = body;  // copy: fan-out to multiple queues
        msg.delivery_tag = next_tag_++;
        msg.producer = info.producer;
        msg.seq = info.seq;
        msg.delay = fault.delay;
        msg.sim_time = info.now;
        if (q.limit > 0 && q.messages.size() >= q.limit) {
          q.dead_letters.push_back(std::move(msg));
          ++stats_.resilience.dead_lettered;
        } else {
          q.messages.push_back(std::move(msg));
        }
      }
      update_pause(q);
      if (fault.duplicate) ++stats_.resilience.injected_duplicates;
      if (fault.delay > 0) ++stats_.resilience.injected_delays;
      ++routed;
    }
    if (routed == 0) ++stats_.unroutable;
  }
  if (routed > 0) cv_.notify_all();
  return routed;
}

std::optional<Message> Broker::consume(const std::string& queue,
                                       std::chrono::milliseconds timeout) {
  util::MutexLock lock(mu_);
  // Determinism audit (DT001, allowlisted): real-time timeout for the
  // CondVar wait below; the message payload and order come from the
  // deterministic queue regardless of when the wait wakes.
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  auto it = queues_.find(queue);
  if (it == queues_.end()) {
    it = queues_.try_emplace(queue).first;
  }
  QueueState& q = it->second;
  while (q.messages.empty() && !shutdown_) {
    if (cv_.wait_until(mu_, deadline) == std::cv_status::timeout &&
        q.messages.empty()) {
      return std::nullopt;
    }
  }
  if (q.messages.empty()) return std::nullopt;
  Message msg = std::move(q.messages.front());
  q.messages.pop_front();
  ++msg.attempt;
  q.unacked.emplace(msg.delivery_tag, msg);
  ++stats_.delivered;
  update_pause(q);
  return msg;
}

void Broker::ack(const std::string& queue, std::uint64_t delivery_tag) {
  util::MutexLock lock(mu_);
  const auto it = queues_.find(queue);
  if (it == queues_.end()) return;
  if (it->second.unacked.erase(delivery_tag) > 0) ++stats_.acked;
}

void Broker::requeue(const std::string& queue, std::uint64_t delivery_tag) {
  {
    util::MutexLock lock(mu_);
    const auto it = queues_.find(queue);
    if (it == queues_.end()) return;
    const auto uit = it->second.unacked.find(delivery_tag);
    if (uit == it->second.unacked.end()) return;
    it->second.messages.push_front(std::move(uit->second));
    it->second.unacked.erase(uit);
    ++stats_.redelivered;
    update_pause(it->second);
  }
  cv_.notify_all();
}

void Broker::recover(const std::string& queue) {
  bool moved = false;
  {
    util::MutexLock lock(mu_);
    const auto it = queues_.find(queue);
    if (it == queues_.end()) return;
    QueueState& q = it->second;
    // Highest tag first so the lowest tag ends at the queue front: the
    // redeliveries replay in original order ahead of newer messages.
    for (auto uit = q.unacked.rbegin(); uit != q.unacked.rend(); ++uit) {
      q.messages.push_front(std::move(uit->second));
      ++stats_.redelivered;
      moved = true;
    }
    q.unacked.clear();
    update_pause(q);
  }
  if (moved) cv_.notify_all();
}

std::size_t Broker::depth(const std::string& queue) const {
  util::MutexLock lock(mu_);
  const auto it = queues_.find(queue);
  return it == queues_.end() ? 0 : it->second.messages.size();
}

std::size_t Broker::unacked_depth(const std::string& queue) const {
  util::MutexLock lock(mu_);
  const auto it = queues_.find(queue);
  return it == queues_.end() ? 0 : it->second.unacked.size();
}

std::size_t Broker::dead_letter_depth(const std::string& queue) const {
  util::MutexLock lock(mu_);
  const auto it = queues_.find(queue);
  return it == queues_.end() ? 0 : it->second.dead_letters.size();
}

std::vector<Message> Broker::drain_dead_letters(const std::string& queue) {
  util::MutexLock lock(mu_);
  const auto it = queues_.find(queue);
  if (it == queues_.end()) return {};
  std::vector<Message> out(
      std::make_move_iterator(it->second.dead_letters.begin()),
      std::make_move_iterator(it->second.dead_letters.end()));
  it->second.dead_letters.clear();
  return out;
}

BrokerStats Broker::stats() const {
  util::MutexLock lock(mu_);
  return stats_;
}

void Broker::shutdown() {
  {
    util::MutexLock lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
}

bool Broker::is_shut_down() const {
  util::MutexLock lock(mu_);
  return shutdown_;
}

}  // namespace tacc::transport
