// tacc_statsd: the daemon-mode collector (paper Fig. 2). One instance per
// node; sampling is driven by simulated time (the real daemon's sleep()
// loop), and every collection is serialized as a self-describing chunk
// (header + one record) and published to the broker with routing key
// "stats.<hostname>".
//
// The daemon also accepts out-of-band collection triggers: the scheduler
// prolog/epilog ("begin"/"end" marks) and the shared-node process
// start/stop signals of section VI-C.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "collect/registry.hpp"
#include "transport/broker.hpp"
#include "util/clock.hpp"

namespace tacc::transport {

struct DaemonConfig {
  util::SimTime interval = 10 * util::kMinute;
  std::string routing_prefix = "stats.";
  collect::BuildOptions build_options{};
};

struct DaemonStats {
  std::uint64_t collections = 0;
  std::uint64_t publish_failures = 0;  // node down or unroutable
  double total_collect_wall_s = 0.0;   // real time spent collecting
};

class StatsDaemon {
 public:
  /// `jobs_provider` returns the job ids currently active on the node
  /// (what the real daemon learns from the scheduler prolog/epilog).
  StatsDaemon(simhw::Node& node, Broker& broker, DaemonConfig config,
              std::function<std::vector<long>()> jobs_provider);

  const std::string& hostname() const noexcept;

  /// Advances the daemon's clock; performs and publishes a collection if
  /// the sampling interval elapsed. Returns true if a collection ran.
  bool on_time(util::SimTime now);

  /// Immediate collection with a mark (prolog/epilog/process hooks).
  /// Returns false if the node is down.
  bool collect_now(util::SimTime now, const std::string& mark);

  const DaemonStats& stats() const noexcept { return stats_; }
  util::SimTime last_collection() const noexcept { return last_; }

 private:
  bool publish_record(util::SimTime now, const std::string& mark);

  simhw::Node* node_;
  Broker* broker_;
  DaemonConfig config_;
  std::function<std::vector<long>()> jobs_provider_;
  collect::HostSampler sampler_;
  std::string header_;
  util::SimTime last_ = 0;
  DaemonStats stats_;
};

}  // namespace tacc::transport
