// tacc_statsd: the daemon-mode collector (paper Fig. 2). One instance per
// node; sampling is driven by simulated time (the real daemon's sleep()
// loop), and every collection is serialized as a self-describing chunk
// (header + one record) and published to the broker with routing key
// "stats.<hostname>".
//
// The daemon also accepts out-of-band collection triggers: the scheduler
// prolog/epilog ("begin"/"end" marks) and the shared-node process
// start/stop signals of section VI-C.
//
// Resilience: every record carries a per-host sequence number; a failed
// publish (broker unreachable at the "daemon.publish" fault site, or an
// in-flight drop) is retried with exponential backoff + deterministic
// jitter, and a record that exhausts its attempts falls back to a local
// cron-style spool that is replayed, in order, once the broker is
// reachable again.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "collect/registry.hpp"
#include "transport/broker.hpp"
#include "util/clock.hpp"
#include "util/fault.hpp"

namespace tacc::transport {

/// Publish retry/backoff tuning. Backoff is virtual (accounted, not slept):
/// the simulated daemon retries within one collection tick.
struct RetryPolicy {
  int max_attempts = 4;                        // publish attempts per record
  util::SimTime backoff_base = util::kSecond;  // first retry backoff
  util::SimTime backoff_max = 60 * util::kSecond;  // backoff growth cap
  double jitter = 0.1;           // backoff randomized by +/- this fraction
  std::size_t spool_limit = 100000;  // max records spooled locally
};

struct DaemonConfig {
  util::SimTime interval = 10 * util::kMinute;
  std::string routing_prefix = "stats.";
  collect::BuildOptions build_options{};
  RetryPolicy retry{};
  /// Fault plan consulted at the "daemon.publish" site (may be null).
  std::shared_ptr<const util::FaultPlan> faults;
};

struct DaemonStats {
  std::uint64_t collections = 0;
  std::uint64_t publish_failures = 0;  // node down, or all attempts failed
  double total_collect_wall_s = 0.0;   // real time spent collecting
  util::SimTime total_backoff = 0;     // virtual time spent backing off
  util::ResilienceStats resilience;
};

class StatsDaemon {
 public:
  /// `jobs_provider` returns the job ids currently active on the node
  /// (what the real daemon learns from the scheduler prolog/epilog).
  StatsDaemon(simhw::Node& node, Broker& broker, DaemonConfig config,
              std::function<std::vector<long>()> jobs_provider);

  const std::string& hostname() const noexcept;

  /// Advances the daemon's clock; performs and publishes a collection if
  /// the sampling interval elapsed. Returns true if a collection ran.
  bool on_time(util::SimTime now);

  /// Immediate collection with a mark (prolog/epilog/process hooks).
  /// Returns false if the node is down.
  bool collect_now(util::SimTime now, const std::string& mark);

  /// Replays spooled records while the broker accepts them (called on
  /// reconnect and by ClusterMonitor::drain()). Returns records replayed.
  std::size_t flush_spool(util::SimTime now);

  /// Records currently parked in the local spool.
  std::size_t spool_depth() const noexcept { return spool_.size(); }

  /// Sequence numbers assigned so far (== collections; the unique-record
  /// count for delivered-vs-lost accounting).
  std::uint64_t last_seq() const noexcept { return next_seq_; }

  const DaemonStats& stats() const noexcept { return stats_; }
  util::SimTime last_collection() const noexcept { return last_; }

 private:
  struct SpooledRecord {
    std::uint64_t seq;
    collect::Record record;
  };

  bool publish_record(util::SimTime now, const std::string& mark);
  /// One record through the retry/backoff loop. True once routed.
  bool try_publish(const collect::Record& record, std::uint64_t seq,
                   util::SimTime now);

  simhw::Node* node_;
  Broker* broker_;
  DaemonConfig config_;
  std::string routing_key_;
  std::function<std::vector<long>()> jobs_provider_;
  collect::HostSampler sampler_;
  std::string header_;
  util::SimTime last_ = 0;
  std::uint64_t next_seq_ = 0;
  std::deque<SpooledRecord> spool_;
  DaemonStats stats_;
};

}  // namespace tacc::transport
