#include "transport/spool.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

namespace tacc::transport {

namespace fs = std::filesystem;

Spool::Spool(fs::path root) : root_(std::move(root)) {
  fs::create_directories(root_);
}

std::string Spool::day_key(util::SimTime t) {
  return util::format_time(t - t % util::kDay).substr(0, 10);
}

std::size_t Spool::write_host(const collect::HostLog& log) {
  // Bucket records by day.
  std::map<std::string, std::vector<const collect::Record*>> by_day;
  for (const auto& rec : log.records) {
    by_day[day_key(rec.time)].push_back(&rec);
  }
  std::size_t files = 0;
  for (const auto& [day, records] : by_day) {
    const fs::path dir = root_ / day;
    fs::create_directories(dir);
    const fs::path file = dir / log.hostname;
    const bool fresh = !fs::exists(file);
    std::ofstream out(file, std::ios::app);
    if (!out) {
      throw std::runtime_error("cannot open spool file " + file.string());
    }
    if (fresh) out << log.serialize_header();
    for (const auto* rec : records) {
      out << collect::HostLog::serialize_record(*rec);
    }
    ++files;
  }
  return files;
}

std::size_t Spool::write_archive(const RawArchive& archive) {
  std::size_t files = 0;
  for (const auto& host : archive.hosts()) {
    files += write_host(archive.log(host));
  }
  return files;
}

std::vector<std::string> Spool::days() const {
  std::vector<std::string> out;
  for (const auto& entry : fs::directory_iterator(root_)) {
    if (entry.is_directory()) out.push_back(entry.path().filename().string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::string> Spool::hosts(const std::string& day) const {
  std::vector<std::string> out;
  const fs::path dir = root_ / day;
  if (!fs::exists(dir)) return out;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file()) {
      out.push_back(entry.path().filename().string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

collect::HostLog Spool::read_host(const std::string& day,
                                  const std::string& hostname) const {
  const fs::path file = root_ / day / hostname;
  std::ifstream in(file);
  if (!in) {
    throw std::runtime_error("no spool file " + file.string());
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return collect::HostLog::parse(buffer.str());
}

std::size_t Spool::load_day(const std::string& day,
                            RawArchive& archive) const {
  std::size_t records = 0;
  for (const auto& host : hosts(day)) {
    const auto log = read_host(day, host);
    archive.add_header(log.hostname, log.arch, log.schemas);
    for (const auto& rec : log.records) {
      archive.append(log.hostname, rec, rec.time);
      ++records;
    }
  }
  return records;
}

}  // namespace tacc::transport
