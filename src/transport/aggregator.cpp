#include "transport/aggregator.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <string_view>
#include <utility>

#include "collect/rawfile.hpp"
#include "transport/frame.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace tacc::transport {

Aggregator::Aggregator(std::string name, std::vector<Broker*> children,
                       Broker& parent, std::string queue,
                       AggregatorOptions options,
                       std::shared_ptr<const util::FaultPlan> faults)
    : name_(std::move(name)),
      children_(std::move(children)),
      parent_(&parent),
      queue_(std::move(queue)),
      options_(std::move(options)),
      faults_(std::move(faults)) {
  thread_ = std::thread([this] { run(); });
}

Aggregator::~Aggregator() { stop(); }

void Aggregator::stop() {
  stop_.store(true);
  if (thread_.joinable()) thread_.join();
}

AggregatorStats Aggregator::stats() const {
  util::MutexLock lock(mu_);
  return stats_;
}

std::size_t Aggregator::header_len_of(const std::string& host,
                                      const std::string& body) {
  const auto it = header_cache_.find(host);
  if (it != header_cache_.end() && util::starts_with(body, it->second)) {
    return it->second.size();
  }
  // First sight of this host (or its schemas changed): one real header
  // parse, then every later chunk is a prefix memcmp.
  collect::HostLog probe;
  const std::size_t off = probe.parse_header(body);
  header_cache_[host] = body.substr(0, off);
  return off;
}

void Aggregator::run() {
  using namespace std::chrono_literals;
  // Reclaim whatever a crashed predecessor left unacked before the first
  // consume, so its in-flight deliveries are not stranded.
  for (Broker* c : children_) c->recover(queue_);
  std::size_t rr = 0;
  while (!stop_.load()) {
    if (parent_->queue_paused(queue_)) {
      // Backpressure: stop pulling; the child queues grow, trip their own
      // watermarks, and the tiers below spool locally.
      idle_sweeps_.store(0);
      std::this_thread::sleep_for(1ms);
      continue;
    }
    bool any = false;
    for (std::size_t i = 0; i < children_.size() && !stop_.load(); ++i) {
      const std::size_t c = (rr + i) % children_.size();
      // Bounded burst per child for fairness across children.
      for (int burst = 0; burst < 256; ++burst) {
        auto msg = children_[c]->consume(queue_, 0ms);
        if (!msg) break;
        any = true;
        ingest(c, std::move(*msg));
        if (parent_->queue_paused(queue_)) break;
      }
    }
    if (!children_.empty()) rr = (rr + 1) % children_.size();
    try_flush_spool();
    if (any) {
      idle_sweeps_.store(0);
      continue;
    }
    // Idle sweep: close out every pending frame, replay the spool, then
    // block briefly for new input.
    flush_all();
    try_flush_spool();
    if (!children_.empty()) {
      auto msg = children_[rr]->consume(queue_, 2ms);
      if (msg) {
        idle_sweeps_.store(0);
        ingest(rr, std::move(*msg));
        continue;
      }
    }
    if (pending_records_.load() == 0) idle_sweeps_.fetch_add(1);
  }
}

void Aggregator::ingest(std::size_t child, Message msg) {
  {
    util::MutexLock lock(mu_);
    ++stats_.consumed;
  }
  if (AggFrame::is_frame(msg.body)) {
    AggFrame f;
    try {
      f = AggFrame::parse(msg.body);
    } catch (const std::exception& e) {
      {
        util::MutexLock lock(mu_);
        ++stats_.parse_errors;
      }
      children_[child]->ack(queue_, msg.delivery_tag);
      TS_LOG(Warn, "aggregator") << name_ << " frame parse error: " << e.what();
      return;
    }
    if (msg.delay > 0) {
      for (auto& d : f.delays) d += msg.delay;
    }
    {
      util::MutexLock lock(mu_);
      ++stats_.merged_frames;
      stats_.records_in += f.seqs.size();
    }
    const std::string_view payload(f.payload);
    append_pending(f.producer, payload.substr(0, f.header_len),
                   payload.substr(f.header_len), f.seqs, f.delays,
                   window_of(msg.sim_time), msg.sim_time, child,
                   msg.delivery_tag);
    return;
  }
  if (!msg.producer.empty()) {
    std::size_t hlen = 0;
    try {
      hlen = header_len_of(msg.producer, msg.body);
    } catch (const std::exception& e) {
      {
        util::MutexLock lock(mu_);
        ++stats_.parse_errors;
      }
      children_[child]->ack(queue_, msg.delivery_tag);
      TS_LOG(Warn, "aggregator") << name_ << " header parse error: "
                                 << e.what();
      return;
    }
    {
      util::MutexLock lock(mu_);
      ++stats_.records_in;
    }
    const std::string_view body(msg.body);
    append_pending(msg.producer, body.substr(0, hlen), body.substr(hlen),
                   {msg.seq}, {msg.delay}, window_of(msg.sim_time),
                   msg.sim_time, child, msg.delivery_tag);
    return;
  }
  // No end-to-end identity: pass through verbatim (preserving whatever
  // PublishInfo it carried) rather than coalescing.
  forward_verbatim(child, msg);
}

void Aggregator::append_pending(const std::string& host,
                                std::string_view header,
                                std::string_view records,
                                const std::vector<std::uint64_t>& seqs,
                                const std::vector<util::SimTime>& delays,
                                util::SimTime window_id,
                                util::SimTime max_time, std::size_t child,
                                std::uint64_t tag) {
  auto it = pending_.find(host);
  if (it != pending_.end() && !it->second.seqs.empty() &&
      (it->second.window_id != window_id || it->second.header != header)) {
    // Window rolled over (or the host's schemas changed): close the open
    // frame before starting the next one.
    flush_host(host);
    it = pending_.end();
  }
  if (it == pending_.end()) it = pending_.try_emplace(host).first;
  PendingFrame& p = it->second;
  if (p.seqs.empty()) {
    p.header.assign(header);
    p.window_id = window_id;
    p.max_time = 0;
  }
  p.records.append(records);
  p.seqs.insert(p.seqs.end(), seqs.begin(), seqs.end());
  p.delays.insert(p.delays.end(), delays.begin(), delays.end());
  p.max_time = std::max(p.max_time, max_time);
  p.acks.emplace_back(child, tag);
  pending_records_.fetch_add(seqs.size());
  if (options_.batch_records > 0 && p.seqs.size() >= options_.batch_records) {
    flush_host(host);
  }
}

void Aggregator::flush_host(std::string host) {
  const auto it = pending_.find(host);
  if (it == pending_.end() || it->second.seqs.empty()) return;
  PendingFrame p = std::move(it->second);
  pending_.erase(it);
  pending_records_.fetch_sub(p.seqs.size());

  AggFrame f;
  f.producer = host;
  f.seqs = std::move(p.seqs);
  f.delays = std::move(p.delays);
  f.header_len = p.header.size();
  f.payload = std::move(p.header);
  f.payload += p.records;
  const std::size_t n = f.seqs.size();
  std::string body = f.serialize();
  const std::uint64_t fseq = ++frame_seq_;
  const std::string rk = options_.routing_prefix + host;

  // A non-empty spool means older frames are still waiting: spool behind
  // them so per-host record order survives (the daemon's rule, one tier
  // up).
  if (spool_.empty() &&
      try_publish(rk, body, name_, fseq, fseq, p.max_time, 0)) {
    if (faults_) {
      const auto fault = faults_->decide(util::kFaultAggregatorCrash, name_,
                                         util::FaultPlan::salt(fseq, 0),
                                         p.max_time);
      if (fault.error) {
        // Crash after the upward publish, before acking the children: the
        // frame is safe upstream, the children redeliver everything
        // unacked, and the root's per-record dedup absorbs the overlap.
        crash_recover(p.acks.size());
        return;
      }
    }
    for (const auto& [c, tag] : p.acks) children_[c]->ack(queue_, tag);
    util::MutexLock lock(mu_);
    ++stats_.frames_out;
    stats_.records_out += n;
    return;
  }
  // Retries exhausted (or queued behind the spool): take ownership of the
  // records — ack the children — and park the frame locally for replay.
  for (const auto& [c, tag] : p.acks) children_[c]->ack(queue_, tag);
  spool_.push_back(
      SpooledFrame{rk, std::move(body), name_, fseq, fseq, n, p.max_time});
  spool_records_.fetch_add(n);
  {
    util::MutexLock lock(mu_);
    stats_.resilience.spooled += n;
  }
  enforce_spool_limit();
}

void Aggregator::flush_all() {
  // std::map: deterministic flush order (host-sorted).
  while (true) {
    auto it = std::find_if(pending_.begin(), pending_.end(),
                           [](const auto& kv) {
                             return !kv.second.seqs.empty();
                           });
    if (it == pending_.end()) break;
    flush_host(it->first);
  }
}

void Aggregator::enforce_spool_limit() {
  const std::size_t limit = options_.retry.spool_limit;
  if (limit == 0) return;
  while (spool_records_.load() > limit && spool_.size() > 1) {
    const std::size_t n = spool_.front().records;
    spool_.pop_front();  // oldest data ages out of a full spool
    spool_records_.fetch_sub(n);
    util::MutexLock lock(mu_);
    stats_.resilience.spool_dropped += n;
  }
}

void Aggregator::try_flush_spool() {
  if (spool_.empty() || parent_->queue_paused(queue_)) return;
  // Each replay round offsets the attempt salt, so a frame whose original
  // attempts all drew errors rolls fresh dice instead of failing forever.
  ++replay_round_;
  const auto attempts =
      static_cast<std::uint64_t>(std::max(1, options_.retry.max_attempts));
  while (!spool_.empty()) {
    const SpooledFrame& f = spool_.front();
    if (!try_publish(f.routing_key, f.body, f.producer, f.seq, f.fault_seq,
                     f.now, replay_round_ * attempts)) {
      break;
    }
    spool_records_.fetch_sub(f.records);
    {
      util::MutexLock lock(mu_);
      stats_.resilience.replayed += f.records;
    }
    spool_.pop_front();
  }
}

bool Aggregator::try_publish(const std::string& routing_key,
                             const std::string& body,
                             const std::string& producer, std::uint64_t seq,
                             std::uint64_t fault_seq, util::SimTime now,
                             std::uint64_t slot_base) {
  const int attempts = std::max(1, options_.retry.max_attempts);
  util::SimTime backoff = options_.retry.backoff_base;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    const std::uint64_t slot = slot_base + static_cast<std::uint64_t>(attempt);
    if (attempt > 0) {
      // Exponential backoff with deterministic jitter, virtual like the
      // daemon's: accounted, not slept.
      util::SimTime wait = backoff;
      if (faults_ && options_.retry.jitter > 0.0) {
        const double u = faults_->uniform(util::kFaultAggregatorPublish,
                                          name_,
                                          util::FaultPlan::salt(fault_seq,
                                                                slot));
        wait += static_cast<util::SimTime>(
            static_cast<double>(wait) * options_.retry.jitter *
            (2.0 * u - 1.0));
      }
      backoff = std::min(backoff * 2, options_.retry.backoff_max);
      util::MutexLock lock(mu_);
      ++stats_.resilience.retries;
      stats_.total_backoff += wait;
    }
    if (faults_) {
      const auto fault = faults_->decide(util::kFaultAggregatorPublish, name_,
                                         util::FaultPlan::salt(fault_seq,
                                                               slot),
                                         now);
      if (fault.error) {
        util::MutexLock lock(mu_);
        ++stats_.resilience.injected_errors;
        continue;
      }
    }
    PublishInfo info;
    info.producer = producer;
    info.seq = seq;
    info.attempt = static_cast<std::uint32_t>(slot);
    info.now = now;
    if (parent_->publish(routing_key, body, info) > 0) return true;
  }
  return false;
}

void Aggregator::crash_recover(std::size_t extra_unacked) {
  std::size_t requeued = extra_unacked;
  std::size_t lost = 0;
  for (const auto& [host, p] : pending_) {
    requeued += p.acks.size();
    lost += p.seqs.size();
  }
  pending_.clear();
  pending_records_.fetch_sub(lost);
  // A restarted aggregator reclaims nothing in memory; the children
  // requeue every unacked delivery (in order) and the pending frames
  // rebuild from the redeliveries. The spool is the node-local durable
  // store and survives, like the daemon's.
  for (Broker* c : children_) c->recover(queue_);
  util::MutexLock lock(mu_);
  ++stats_.crashes;
  stats_.resilience.requeued += requeued;
}

void Aggregator::forward_verbatim(std::size_t child, const Message& msg) {
  {
    util::MutexLock lock(mu_);
    ++stats_.forwarded;
  }
  const std::uint64_t fseq = ++frame_seq_;
  if (spool_.empty() && try_publish(msg.routing_key, msg.body, msg.producer,
                                    msg.seq, fseq, msg.sim_time, 0)) {
    children_[child]->ack(queue_, msg.delivery_tag);
    return;
  }
  children_[child]->ack(queue_, msg.delivery_tag);
  spool_.push_back(SpooledFrame{msg.routing_key, msg.body, msg.producer,
                                msg.seq, fseq, 1, msg.sim_time});
  spool_records_.fetch_add(1);
  {
    util::MutexLock lock(mu_);
    stats_.resilience.spooled += 1;
  }
  enforce_spool_limit();
}

}  // namespace tacc::transport
