#include "transport/daemon.hpp"

#include <algorithm>

#include "simhw/node.hpp"
#include "util/log.hpp"

namespace tacc::transport {

StatsDaemon::StatsDaemon(simhw::Node& node, Broker& broker,
                         DaemonConfig config,
                         std::function<std::vector<long>()> jobs_provider)
    : node_(&node),
      broker_(&broker),
      config_(std::move(config)),
      jobs_provider_(std::move(jobs_provider)),
      sampler_(node, config_.build_options) {
  header_ = sampler_.make_log().serialize_header();
  routing_key_ = config_.routing_prefix + node_->hostname();
}

const std::string& StatsDaemon::hostname() const noexcept {
  return node_->hostname();
}

bool StatsDaemon::try_publish(const collect::Record& record,
                              std::uint64_t seq, util::SimTime now) {
  std::string body = header_;
  body += collect::HostLog::serialize_record(record);
  const int attempts = std::max(1, config_.retry.max_attempts);
  util::SimTime backoff = config_.retry.backoff_base;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      ++stats_.resilience.retries;
      // Exponential backoff with deterministic jitter. Virtual: the
      // simulated daemon does not advance global time, but the cost is
      // accounted so benches can report it.
      util::SimTime wait = backoff;
      if (config_.faults && config_.retry.jitter > 0.0) {
        const double u = config_.faults->uniform(
            util::kFaultDaemonPublish, node_->hostname(),
            util::FaultPlan::salt(seq, static_cast<std::uint64_t>(attempt)));
        wait += static_cast<util::SimTime>(
            static_cast<double>(wait) * config_.retry.jitter *
            (2.0 * u - 1.0));
      }
      stats_.total_backoff += wait;
      backoff = std::min(backoff * 2, config_.retry.backoff_max);
    }
    bool broker_down = false;
    if (config_.faults) {
      const auto fault = config_.faults->decide(
          util::kFaultDaemonPublish, node_->hostname(),
          util::FaultPlan::salt(seq, static_cast<std::uint64_t>(attempt)),
          now);
      broker_down = fault.error;
    }
    if (broker_down) {
      ++stats_.resilience.injected_errors;
      continue;
    }
    PublishInfo info;
    info.producer = node_->hostname();
    info.seq = seq;
    info.attempt = static_cast<std::uint32_t>(attempt);
    info.now = now;
    if (broker_->publish(routing_key_, body, info) > 0) {
      return true;
    }
  }
  return false;
}

std::size_t StatsDaemon::flush_spool(util::SimTime now) {
  // Backpressure: while the assigned broker's queue is Paused, hold the
  // backlog locally rather than overrunning a slow tier above.
  if (!spool_.empty() && broker_->publish_paused(routing_key_)) return 0;
  std::size_t replayed = 0;
  while (!spool_.empty()) {
    const SpooledRecord& front = spool_.front();
    if (!try_publish(front.record, front.seq, now)) break;
    spool_.pop_front();
    ++replayed;
    ++stats_.resilience.replayed;
  }
  return replayed;
}

bool StatsDaemon::publish_record(util::SimTime now, const std::string& mark) {
  util::WallTimer timer;
  collect::Record record;
  try {
    record = sampler_.sample(now, jobs_provider_(), mark);
  } catch (const simhw::NodeFailedError&) {
    ++stats_.publish_failures;
    return false;
  }
  stats_.total_collect_wall_s += timer.elapsed_s();
  ++stats_.collections;
  const std::uint64_t seq = ++next_seq_;
  // Backpressure: a Paused queue diverts the record straight to the local
  // spool — no publish attempts, no failure accounting; the record replays
  // via flush_spool() once the tier above resumes.
  const bool paused = broker_->publish_paused(routing_key_);
  // Replay any backlog first so the stream stays in order, then publish
  // the fresh record — or spool it behind the backlog if the broker is
  // still unreachable.
  if (!paused) flush_spool(now);
  if (paused) {
    spool_.push_back(SpooledRecord{seq, std::move(record)});
    ++stats_.resilience.spooled;
    if (config_.retry.spool_limit > 0 &&
        spool_.size() > config_.retry.spool_limit) {
      spool_.pop_front();
      ++stats_.resilience.spool_dropped;
    }
  } else if (!spool_.empty() || !try_publish(record, seq, now)) {
    ++stats_.publish_failures;
    spool_.push_back(SpooledRecord{seq, std::move(record)});
    ++stats_.resilience.spooled;
    if (config_.retry.spool_limit > 0 &&
        spool_.size() > config_.retry.spool_limit) {
      spool_.pop_front();  // oldest data ages out of a full spool
      ++stats_.resilience.spool_dropped;
    }
    TS_LOG(Warn, "tacc_statsd")
        << "publish failed on " << node_->hostname() << ", spooled (depth "
        << spool_.size() << ")";
  }
  last_ = now;
  return true;
}

bool StatsDaemon::on_time(util::SimTime now) {
  if (last_ != 0 && now - last_ < config_.interval) return false;
  return publish_record(now, {});
}

bool StatsDaemon::collect_now(util::SimTime now, const std::string& mark) {
  return publish_record(now, mark);
}

}  // namespace tacc::transport
