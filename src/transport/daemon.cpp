#include "transport/daemon.hpp"

#include "simhw/node.hpp"
#include "util/log.hpp"

namespace tacc::transport {

StatsDaemon::StatsDaemon(simhw::Node& node, Broker& broker,
                         DaemonConfig config,
                         std::function<std::vector<long>()> jobs_provider)
    : node_(&node),
      broker_(&broker),
      config_(std::move(config)),
      jobs_provider_(std::move(jobs_provider)),
      sampler_(node, config_.build_options) {
  header_ = sampler_.make_log().serialize_header();
}

const std::string& StatsDaemon::hostname() const noexcept {
  return node_->hostname();
}

bool StatsDaemon::publish_record(util::SimTime now, const std::string& mark) {
  util::WallTimer timer;
  collect::Record record;
  try {
    record = sampler_.sample(now, jobs_provider_(), mark);
  } catch (const simhw::NodeFailedError&) {
    ++stats_.publish_failures;
    return false;
  }
  stats_.total_collect_wall_s += timer.elapsed_s();
  ++stats_.collections;
  // Self-describing chunk: header + record, exactly what the consumer
  // needs to parse in isolation.
  std::string body = header_;
  body += collect::HostLog::serialize_record(record);
  const std::size_t routed =
      broker_->publish(config_.routing_prefix + node_->hostname(),
                       std::move(body));
  if (routed == 0) {
    ++stats_.publish_failures;
    TS_LOG(Warn, "tacc_statsd")
        << "unroutable publish from " << node_->hostname();
  }
  last_ = now;
  return true;
}

bool StatsDaemon::on_time(util::SimTime now) {
  if (last_ != 0 && now - last_ < config_.interval) return false;
  return publish_record(now, {});
}

bool StatsDaemon::collect_now(util::SimTime now, const std::string& mark) {
  return publish_record(now, mark);
}

}  // namespace tacc::transport
