// The daemon-mode data consumer (paper Fig. 2): a real thread that drains
// the broker queue, parses the self-describing chunks, writes them into the
// central RawArchive immediately (real-time availability), and optionally
// feeds an online-analysis callback with each record.
#pragma once

#include <atomic>
#include <functional>
#include <string>
#include <thread>

#include "transport/archive.hpp"
#include "transport/broker.hpp"

namespace tacc::transport {

class Consumer {
 public:
  using RecordCallback = std::function<void(
      const std::string& hostname, const collect::HostLog& chunk)>;

  /// Starts the consumer thread on `queue`. Each parsed chunk is appended
  /// to the archive with ingest time = the record's own timestamp (the
  /// transport adds only sub-interval delay), then handed to `callback`
  /// (may be null).
  Consumer(Broker& broker, RawArchive& archive, std::string queue,
           RecordCallback callback = nullptr);
  ~Consumer();

  Consumer(const Consumer&) = delete;
  Consumer& operator=(const Consumer&) = delete;

  /// Signals the thread to stop and joins it (also called by the dtor).
  void stop();

  /// Blocks until the queue is empty and everything consumed so far has
  /// been archived (used by deterministic tests).
  void drain();

  std::uint64_t consumed() const noexcept { return consumed_.load(); }
  std::uint64_t parse_errors() const noexcept {
    return parse_errors_.load();
  }

 private:
  void run();

  Broker* broker_;
  RawArchive* archive_;
  std::string queue_;
  RecordCallback callback_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> consumed_{0};
  std::atomic<std::uint64_t> parse_errors_{0};
  std::atomic<std::uint64_t> idle_{0};
  std::thread thread_;
};

}  // namespace tacc::transport
