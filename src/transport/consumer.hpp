// The daemon-mode data consumer (paper Fig. 2): a real thread that drains
// the broker queue, parses the self-describing chunks, writes them into the
// central RawArchive immediately (real-time availability), and optionally
// feeds an online-analysis callback with each record.
//
// Delivery guarantee: the broker is at-least-once (redelivery on
// crash-before-ack); the consumer makes it exactly-once by deduplicating
// on the (producer, seq) stamp via RawArchive::append_unique — one atomic
// check-and-append, so a crash between the archive write and the ack can
// neither lose nor double-archive a chunk. On start the consumer recovers
// the queue (reclaiming a dead predecessor's unacked deliveries).
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <thread>

#include "transport/archive.hpp"
#include "transport/broker.hpp"
#include "util/fault.hpp"

namespace tacc::transport {

struct ConsumerOptions {
  /// Per-producer sequence numbers remembered for duplicate suppression
  /// (0 = unbounded). Must exceed the deepest possible redelivery gap.
  std::size_t dedup_window = 4096;
  /// Hard cap on crash-fault redeliveries of one message, so a
  /// crash-rate-1.0 plan cannot livelock the queue.
  std::uint32_t max_crash_redeliveries = 8;
};

class Consumer {
 public:
  using RecordCallback = std::function<void(
      const std::string& hostname, const collect::HostLog& chunk)>;

  /// Starts the consumer thread on `queue`. Each parsed chunk is appended
  /// to the archive with ingest time = the record's own timestamp plus any
  /// injected transport delay, then handed to `callback` (may be null).
  /// `faults` enables crash-before-ack injection at "consumer.crash".
  Consumer(Broker& broker, RawArchive& archive, std::string queue,
           RecordCallback callback = nullptr, ConsumerOptions options = {},
           std::shared_ptr<const util::FaultPlan> faults = nullptr);
  ~Consumer();

  Consumer(const Consumer&) = delete;
  Consumer& operator=(const Consumer&) = delete;

  /// Signals the thread to stop and joins it (also called by the dtor).
  /// Shuts the broker down: orderly end-of-run teardown.
  void stop();

  /// Simulates a crash: the thread dies at its next checkpoint WITHOUT
  /// acking its in-flight delivery and without touching the broker, which
  /// keeps serving. A successor reclaims the unacked delivery via the
  /// recover() it performs on startup.
  void crash();

  /// Blocks until the queue is empty and everything consumed so far has
  /// been archived (used by deterministic tests).
  void drain();

  std::uint64_t consumed() const noexcept { return consumed_.load(); }
  std::uint64_t parse_errors() const noexcept {
    return parse_errors_.load();
  }

  /// Duplicate-suppression / crash-redelivery counters.
  util::ResilienceStats resilience() const;

 private:
  void run();

  Broker* broker_;
  RawArchive* archive_;
  std::string queue_;
  RecordCallback callback_;
  ConsumerOptions options_;
  std::shared_ptr<const util::FaultPlan> faults_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> crashed_{false};
  std::atomic<std::uint64_t> consumed_{0};
  std::atomic<std::uint64_t> parse_errors_{0};
  std::atomic<std::uint64_t> deduped_{0};
  std::atomic<std::uint64_t> crash_requeues_{0};
  std::atomic<std::uint64_t> idle_{0};
  std::thread thread_;
};

}  // namespace tacc::transport
