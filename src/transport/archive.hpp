// The central raw-stats archive: the per-host record streams both transport
// modes ultimately deliver, with per-record ingest timestamps so the
// latency/loss difference between the modes (paper Figs. 1 vs 2) is
// measurable. Thread-safe: the daemon-mode consumer writes from its own
// thread.
//
// The archive is also the durable side of the consumer's exactly-once
// contract: append_unique() checks-and-appends a (producer, seq) chunk
// under one lock, so a consumer that crashes between the write and the
// broker ack can neither lose the chunk nor archive it twice on
// redelivery.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "collect/rawfile.hpp"
#include "util/stats.hpp"
#include "util/thread_annotations.hpp"

namespace tacc::transport {

class RawArchive {
 public:
  /// Registers a host's identity/schemas (idempotent; first write wins).
  void add_header(const std::string& hostname, const std::string& arch,
                  std::vector<collect::Schema> schemas) TACC_EXCLUDES(mu_);

  /// Appends one record for a host. `ingest_time` is the simulated time at
  /// which the record became centrally visible (immediately for daemon
  /// mode; at the staged rsync for cron mode).
  void append(const std::string& hostname, collect::Record record,
              util::SimTime ingest_time) TACC_EXCLUDES(mu_);

  /// Atomically appends a whole chunk (header + records, each ingested at
  /// record.time + delay) iff (producer, seq) has not been seen before.
  /// Returns false — and appends nothing — on a duplicate. The per-producer
  /// seen-set is bounded to the most recent `dedup_window` sequence numbers
  /// (0 = unbounded).
  bool append_unique(const std::string& producer, std::uint64_t seq,
                     const collect::HostLog& chunk, util::SimTime delay,
                     std::size_t dedup_window) TACC_EXCLUDES(mu_);

  /// Batch form of append_unique() for coalesced aggregation frames: one
  /// lock acquisition appends every record of `chunk` whose parallel
  /// (producer, seqs[i]) identity is fresh, ingested at record.time +
  /// delays[i]. Exactly equivalent to calling append_unique() per record in
  /// order — a frame that was partially delivered before (a duplicated
  /// sub-range) appends only its fresh suffix. `fresh` (optional out) is
  /// resized parallel to seqs with 1 = appended. Returns the number of
  /// records appended.
  std::size_t append_unique_batch(const std::string& producer,
                                  const std::vector<std::uint64_t>& seqs,
                                  const collect::HostLog& chunk,
                                  const std::vector<util::SimTime>& delays,
                                  std::size_t dedup_window,
                                  std::vector<char>* fresh = nullptr)
      TACC_EXCLUDES(mu_);

  /// Whether (producer, seq) is inside the dedup window (bench/test
  /// accounting: distinguishing delivered from dead-lettered sequences).
  bool was_seen(const std::string& producer, std::uint64_t seq) const
      TACC_EXCLUDES(mu_);

  /// Unique sequence numbers remembered for a producer.
  std::size_t seen_count(const std::string& producer) const
      TACC_EXCLUDES(mu_);

  /// Snapshot of a host's log (copy; safe across threads). Nullopt-like
  /// empty log if the host is unknown.
  collect::HostLog log(const std::string& hostname) const TACC_EXCLUDES(mu_);

  /// Runs `fn` against a host's log in place, under the archive lock —
  /// the zero-copy alternative to log() for bulk readers (serial tsdb
  /// ingest reads megabytes of records per host; copying them dominated
  /// the load). `fn` must not call back into this archive (the lock is
  /// held) and must not retain references past the call. Not called at
  /// all for an unknown host. Writers block while `fn` runs, so keep it
  /// off the daemon-consumer path for very long visits.
  void visit_log(const std::string& hostname,
                 const std::function<void(const collect::HostLog&)>& fn) const
      TACC_EXCLUDES(mu_);

  std::vector<std::string> hosts() const TACC_EXCLUDES(mu_);

  std::size_t total_records() const TACC_EXCLUDES(mu_);

  /// Distribution of (ingest_time - record.time) in seconds.
  util::RunningStat latency() const TACC_EXCLUDES(mu_);

 private:
  struct HostData {
    collect::HostLog log;
    std::vector<util::SimTime> ingest_times;  // parallel to log.records
  };
  struct DedupState {
    std::set<std::uint64_t> seen;
    std::deque<std::uint64_t> order;  // insertion order, for the window
  };

  void add_header_locked(const std::string& hostname, const std::string& arch,
                         std::vector<collect::Schema> schemas)
      TACC_REQUIRES(mu_);

  mutable util::Mutex mu_;
  std::map<std::string, HostData> hosts_ TACC_GUARDED_BY(mu_);
  std::map<std::string, DedupState> dedup_ TACC_GUARDED_BY(mu_);
};

}  // namespace tacc::transport
