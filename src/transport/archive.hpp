// The central raw-stats archive: the per-host record streams both transport
// modes ultimately deliver, with per-record ingest timestamps so the
// latency/loss difference between the modes (paper Figs. 1 vs 2) is
// measurable. Thread-safe: the daemon-mode consumer writes from its own
// thread.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "collect/rawfile.hpp"
#include "util/stats.hpp"
#include "util/thread_annotations.hpp"

namespace tacc::transport {

class RawArchive {
 public:
  /// Registers a host's identity/schemas (idempotent; first write wins).
  void add_header(const std::string& hostname, const std::string& arch,
                  std::vector<collect::Schema> schemas) TACC_EXCLUDES(mu_);

  /// Appends one record for a host. `ingest_time` is the simulated time at
  /// which the record became centrally visible (immediately for daemon
  /// mode; at the staged rsync for cron mode).
  void append(const std::string& hostname, collect::Record record,
              util::SimTime ingest_time) TACC_EXCLUDES(mu_);

  /// Snapshot of a host's log (copy; safe across threads). Nullopt-like
  /// empty log if the host is unknown.
  collect::HostLog log(const std::string& hostname) const TACC_EXCLUDES(mu_);

  std::vector<std::string> hosts() const TACC_EXCLUDES(mu_);

  std::size_t total_records() const TACC_EXCLUDES(mu_);

  /// Distribution of (ingest_time - record.time) in seconds.
  util::RunningStat latency() const TACC_EXCLUDES(mu_);

 private:
  struct HostData {
    collect::HostLog log;
    std::vector<util::SimTime> ingest_times;  // parallel to log.records
  };
  mutable util::Mutex mu_;
  std::map<std::string, HostData> hosts_ TACC_GUARDED_BY(mu_);
};

}  // namespace tacc::transport
