#include "transport/topology.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>
#include <utility>

#include "util/rng.hpp"

namespace tacc::transport {

AggregationTree::AggregationTree(
    std::string queue, TreeOptions options,
    std::shared_ptr<const util::FaultPlan> faults)
    : queue_(std::move(queue)), options_(std::move(options)) {
  // Tier sizes shrink by `fanout` until a single root remains.
  const std::size_t fanout = options_.fanout < 2 ? 2 : options_.fanout;
  std::vector<std::size_t> sizes;
  sizes.push_back(options_.leaf_brokers == 0 ? 1 : options_.leaf_brokers);
  while (sizes.back() > 1) {
    sizes.push_back((sizes.back() + fanout - 1) / fanout);
  }
  for (std::size_t t = 0; t < sizes.size(); ++t) {
    const bool is_root = t + 1 == sizes.size();
    std::vector<std::unique_ptr<Broker>> tier;
    tier.reserve(sizes[t]);
    for (std::size_t j = 0; j < sizes[t]; ++j) {
      auto broker = std::make_unique<Broker>();
      broker->declare_queue(queue_);
      broker->bind(queue_, "stats.*");
      if (faults) broker->set_fault_plan(faults);
      if (!is_root && options_.tier_queue_limit > 0) {
        broker->set_queue_limit(queue_, options_.tier_queue_limit);
      }
      if (options_.high_watermark > 0) {
        broker->set_watermarks(queue_, options_.high_watermark,
                               options_.low_watermark);
      }
      tier.push_back(std::move(broker));
    }
    tiers_.push_back(std::move(tier));
  }
  // One aggregator per upper-tier broker, draining a contiguous block of
  // `fanout` children below it.
  for (std::size_t t = 0; t + 1 < tiers_.size(); ++t) {
    for (std::size_t j = 0; j < tiers_[t + 1].size(); ++j) {
      std::vector<Broker*> children;
      const std::size_t lo = j * fanout;
      const std::size_t hi = std::min(lo + fanout, tiers_[t].size());
      for (std::size_t i = lo; i < hi; ++i) {
        children.push_back(tiers_[t][i].get());
      }
      AggregatorOptions agg_opts;
      agg_opts.batch_records = options_.batch_records;
      agg_opts.window = options_.window;
      agg_opts.retry = options_.retry;
      aggregators_.push_back(std::make_unique<Aggregator>(
          "agg-" + std::to_string(t + 1) + "-" + std::to_string(j),
          std::move(children), *tiers_[t + 1][j], queue_, agg_opts, faults));
      agg_tier_.push_back(t);
    }
  }
}

AggregationTree::~AggregationTree() { stop(); }

void AggregationTree::stop() {
  for (auto& agg : aggregators_) agg->stop();
}

std::size_t AggregationTree::rendezvous_pick(std::string_view host,
                                             std::size_t n) {
  if (n <= 1) return 0;
  const std::uint64_t host_hash = util::fnv1a(host);
  std::size_t best = 0;
  std::uint64_t best_score = 0;
  for (std::size_t i = 0; i < n; ++i) {
    char label[32];
    const int len = std::snprintf(label, sizeof label, "broker-%zu", i);
    std::uint64_t state =
        host_hash ^ util::fnv1a(std::string_view(label,
                                                 static_cast<std::size_t>(len)));
    const std::uint64_t score = util::splitmix64(state);
    if (i == 0 || score > best_score) {
      best = i;
      best_score = score;
    }
  }
  return best;
}

void AggregationTree::quiesce() {
  using namespace std::chrono_literals;
  for (;;) {
    bool busy = false;
    for (std::size_t t = 0; t + 1 < tiers_.size() && !busy; ++t) {
      for (const auto& b : tiers_[t]) {
        if (b->depth(queue_) > 0 || b->unacked_depth(queue_) > 0) {
          busy = true;
          break;
        }
      }
    }
    if (!busy) {
      for (const auto& agg : aggregators_) {
        if (!agg->idle()) {
          busy = true;
          break;
        }
      }
    }
    if (!busy) return;
    std::this_thread::sleep_for(1ms);
  }
}

std::vector<TierStats> AggregationTree::tier_stats() const {
  std::vector<TierStats> out(tiers_.size());
  for (std::size_t t = 0; t < tiers_.size(); ++t) {
    TierStats& row = out[t];
    row.tier = t;
    row.brokers = tiers_[t].size();
    for (const auto& b : tiers_[t]) {
      row.queue_depth += b->depth(queue_);
      row.unacked += b->unacked_depth(queue_);
      row.dead_letters += b->dead_letter_depth(queue_);
      row.resilience.merge(b->stats().resilience);
    }
  }
  for (std::size_t k = 0; k < aggregators_.size(); ++k) {
    TierStats& row = out[agg_tier_[k]];
    ++row.aggregators;
    row.spool_records += aggregators_[k]->spool_records();
    row.pending_records += aggregators_[k]->pending_records();
    row.resilience.merge(aggregators_[k]->stats().resilience);
  }
  return out;
}

util::ResilienceStats AggregationTree::resilience() const {
  util::ResilienceStats total;
  for (const auto& tier : tiers_) {
    for (const auto& b : tier) total.merge(b->stats().resilience);
  }
  for (const auto& agg : aggregators_) total.merge(agg->stats().resilience);
  return total;
}

std::size_t AggregationTree::spool_records() const {
  std::size_t n = 0;
  for (const auto& agg : aggregators_) n += agg->spool_records();
  return n;
}

std::vector<Message> AggregationTree::drain_all_dead_letters() {
  std::vector<Message> out;
  for (auto& tier : tiers_) {
    for (auto& b : tier) {
      auto dead = b->drain_dead_letters(queue_);
      out.insert(out.end(), std::make_move_iterator(dead.begin()),
                 std::make_move_iterator(dead.end()));
    }
  }
  return out;
}

}  // namespace tacc::transport
