// Scale-out transport topology: a tree of sharded brokers with aggregator
// tiers between them (ROADMAP item "hierarchical aggregation to 100k
// nodes"; PerSyst-style tree reduction).
//
//   daemons -> leaf brokers (N shards, rendezvous-assigned per host)
//           -> tier-1 aggregators (fanout children each, coalesce frames)
//           -> ... -> root broker -> Consumer -> RawArchive
//
// Host-to-leaf assignment is rendezvous (highest-random-weight) hashing
// over FNV-1a host/broker digests: every host hashes against every leaf
// and picks the max, so growing N leaves to N+1 remaps only ~1/(N+1) of
// the hosts — no global reshuffle, and the assignment is a pure function
// of (host, N) that any component can compute without coordination.
//
// With leaf_brokers == 1 the tree degenerates to exactly the flat
// single-broker pipeline of paper Fig. 2 — same broker, no aggregators —
// so existing callers see byte-identical behavior.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "transport/aggregator.hpp"
#include "transport/broker.hpp"
#include "util/fault.hpp"

namespace tacc::transport {

/// Shape and tuning of the aggregation tree.
struct TreeOptions {
  /// Leaf broker shards daemons publish to. 1 = flat topology (no
  /// aggregator tiers at all).
  std::size_t leaf_brokers = 1;
  /// Child brokers per aggregator; tiers shrink by this factor until one
  /// root broker remains.
  std::size_t fanout = 4;
  /// Aggregator coalescing: flush a host's frame at this many records.
  std::size_t batch_records = 64;
  /// Aggregator same-window coalescing bucket (0 = unbounded).
  util::SimTime window = util::kHour;
  /// Dead-letter depth cap for non-root queues (0 = unlimited). The root
  /// queue keeps the monitor-level queue_limit knob.
  std::size_t tier_queue_limit = 0;
  /// Backpressure watermarks applied to every tier's queue (0 = off).
  std::size_t high_watermark = 0;
  /// Resume threshold; 0 defaults to high_watermark / 2.
  std::size_t low_watermark = 0;
  /// Upward publish retry/spool policy shared by all aggregators.
  RetryPolicy retry{};
};

/// One row of the per-tier stats rollup: tier 0 = leaf brokers plus the
/// aggregators that drain them, the last tier = the root broker.
struct TierStats {
  std::size_t tier = 0;
  std::size_t brokers = 0;
  std::size_t aggregators = 0;
  std::size_t queue_depth = 0;     // messages waiting across the tier
  std::size_t unacked = 0;         // delivered, not yet acked
  std::size_t dead_letters = 0;    // parked in tier DLQs
  std::size_t spool_records = 0;   // records in aggregator/daemon spools
  std::size_t pending_records = 0; // records in open aggregator frames
  util::ResilienceStats resilience;
};

class AggregationTree {
 public:
  /// Builds the broker tiers and starts the aggregator threads. Every
  /// broker declares `queue` bound to "<routing prefix>*". `faults` is
  /// installed on every broker and aggregator (may be null).
  AggregationTree(std::string queue, TreeOptions options,
                  std::shared_ptr<const util::FaultPlan> faults);
  ~AggregationTree();

  AggregationTree(const AggregationTree&) = delete;
  AggregationTree& operator=(const AggregationTree&) = delete;

  /// Stops the aggregator threads (idempotent; also run by the dtor).
  /// Brokers stay up — the consumer owns root shutdown.
  void stop();

  /// The broker a host's daemon publishes to (rendezvous assignment).
  Broker& leaf_for(std::string_view host) {
    return *tiers_[0][leaf_index(host)];
  }
  std::size_t leaf_index(std::string_view host) const {
    return rendezvous_pick(host, tiers_[0].size());
  }

  /// Pure assignment function: which of `n` shards owns `host`.
  static std::size_t rendezvous_pick(std::string_view host, std::size_t n);

  /// The root broker the Consumer drains.
  Broker& root() { return *tiers_.back()[0]; }
  const Broker& root() const { return *tiers_.back()[0]; }

  std::size_t tier_count() const { return tiers_.size(); }
  std::size_t broker_count(std::size_t tier) const {
    return tiers_[tier].size();
  }
  std::size_t aggregator_count() const { return aggregators_.size(); }

  /// Blocks until every non-root queue is empty (nothing waiting, nothing
  /// unacked) and every aggregator is idle with an empty spool — i.e. all
  /// in-flight records have reached the root queue. The root itself is the
  /// consumer's to drain. Requires the tiers above to keep draining (a
  /// live consumer) when watermarks are enabled.
  void quiesce();

  /// Per-tier depth/spool/resilience rollup (transport layers only; the
  /// monitor folds daemons and the consumer in).
  std::vector<TierStats> tier_stats() const;

  /// Every broker's + aggregator's resilience counters merged.
  util::ResilienceStats resilience() const;

  /// Records parked in aggregator spools.
  std::size_t spool_records() const;

  /// Removes and returns the dead letters of every tier's queue.
  std::vector<Message> drain_all_dead_letters();

 private:
  const std::string queue_;
  const TreeOptions options_;
  /// tiers_[0] = leaves, tiers_.back() = the single root.
  std::vector<std::vector<std::unique_ptr<Broker>>> tiers_;
  /// Aggregator j of group t consumes tiers_[t] block j, feeds
  /// tiers_[t+1][j]; agg_tier_[k] records the source tier of
  /// aggregators_[k].
  std::vector<std::unique_ptr<Aggregator>> aggregators_;
  std::vector<std::size_t> agg_tier_;
};

}  // namespace tacc::transport
