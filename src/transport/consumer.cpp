#include "transport/consumer.hpp"

#include "util/log.hpp"

namespace tacc::transport {

Consumer::Consumer(Broker& broker, RawArchive& archive, std::string queue,
                   RecordCallback callback)
    : broker_(&broker),
      archive_(&archive),
      queue_(std::move(queue)),
      callback_(std::move(callback)),
      thread_([this] { run(); }) {}

Consumer::~Consumer() { stop(); }

void Consumer::stop() {
  stop_.store(true);
  broker_->shutdown();
  if (thread_.joinable()) thread_.join();
}

void Consumer::drain() {
  using namespace std::chrono_literals;
  // Queue empty and the consumer has been idle for two consecutive polls.
  while (broker_->depth(queue_) > 0 || idle_.load() < 2) {
    std::this_thread::sleep_for(1ms);
    if (stop_.load()) return;
  }
}

void Consumer::run() {
  using namespace std::chrono_literals;
  while (!stop_.load()) {
    auto msg = broker_->consume(queue_, 50ms);
    if (!msg) {
      idle_.fetch_add(1);
      if (broker_->is_shut_down() && broker_->depth(queue_) == 0) return;
      continue;
    }
    idle_.store(0);
    try {
      const auto chunk = collect::HostLog::parse(msg->body);
      if (!chunk.records.empty()) {
        archive_->add_header(chunk.hostname, chunk.arch, chunk.schemas);
        for (const auto& record : chunk.records) {
          archive_->append(chunk.hostname, record, record.time);
        }
        if (callback_) callback_(chunk.hostname, chunk);
      }
      broker_->ack(queue_, msg->delivery_tag);
      consumed_.fetch_add(1);
    } catch (const std::exception& e) {
      // Malformed chunk: ack and drop (a real consumer dead-letters it).
      parse_errors_.fetch_add(1);
      broker_->ack(queue_, msg->delivery_tag);
      TS_LOG(Warn, "consumer") << "parse error: " << e.what();
    }
  }
}

}  // namespace tacc::transport
