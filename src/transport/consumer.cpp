#include "transport/consumer.hpp"

#include <stdexcept>

#include "transport/frame.hpp"
#include "util/log.hpp"

namespace tacc::transport {

Consumer::Consumer(Broker& broker, RawArchive& archive, std::string queue,
                   RecordCallback callback, ConsumerOptions options,
                   std::shared_ptr<const util::FaultPlan> faults)
    : broker_(&broker),
      archive_(&archive),
      queue_(std::move(queue)),
      callback_(std::move(callback)),
      options_(options),
      faults_(std::move(faults)) {
  // Reclaim whatever a crashed predecessor left unacked before the first
  // consume, so its in-flight deliveries are not stranded.
  broker_->recover(queue_);
  thread_ = std::thread([this] { run(); });
}

Consumer::~Consumer() { stop(); }

void Consumer::stop() {
  if (crashed_.load()) {
    // A crashed consumer is already dead; it must not take the broker
    // (still serving its successor) down with it.
    if (thread_.joinable()) thread_.join();
    return;
  }
  stop_.store(true);
  broker_->shutdown();
  if (thread_.joinable()) thread_.join();
}

void Consumer::crash() {
  crashed_.store(true);
  if (thread_.joinable()) thread_.join();
}

void Consumer::drain() {
  using namespace std::chrono_literals;
  // Queue empty and the consumer has been idle for two consecutive polls.
  while (broker_->depth(queue_) > 0 || idle_.load() < 2) {
    std::this_thread::sleep_for(1ms);
    if (stop_.load() || crashed_.load()) return;
  }
}

util::ResilienceStats Consumer::resilience() const {
  util::ResilienceStats r;
  r.deduped = deduped_.load();
  r.requeued = crash_requeues_.load();
  return r;
}

void Consumer::run() {
  using namespace std::chrono_literals;
  while (!stop_.load()) {
    auto msg = broker_->consume(queue_, 50ms);
    if (crashed_.load()) return;  // dies mid-flight; msg stays unacked
    if (!msg) {
      idle_.fetch_add(1);
      if (broker_->is_shut_down() && broker_->depth(queue_) == 0) return;
      continue;
    }
    idle_.store(0);
    try {
      collect::HostLog chunk;
      collect::HostLog partial;  // frame subset when only some records fresh
      const collect::HostLog* cb_chunk = nullptr;  // callback view
      bool fresh = true;
      if (AggFrame::is_frame(msg->body)) {
        // Coalesced aggregation frame: N same-host records behind one
        // header, deduplicated per inner (producer, seq) identity and
        // appended under a single archive lock acquisition.
        AggFrame frame = AggFrame::parse(msg->body);
        chunk = collect::HostLog::parse(frame.payload);
        if (chunk.records.size() != frame.seqs.size()) {
          throw std::invalid_argument("AggFrame: record/seq count mismatch");
        }
        for (auto& d : frame.delays) d += msg->delay;
        std::vector<char> fresh_mask;
        const std::size_t appended = archive_->append_unique_batch(
            frame.producer, frame.seqs, chunk, frame.delays,
            options_.dedup_window, &fresh_mask);
        deduped_.fetch_add(frame.seqs.size() - appended);
        fresh = appended > 0;
        if (fresh && callback_) {
          if (appended == chunk.records.size()) {
            cb_chunk = &chunk;
          } else {
            partial = chunk;
            partial.records.clear();
            for (std::size_t i = 0; i < chunk.records.size(); ++i) {
              if (fresh_mask[i]) partial.records.push_back(chunk.records[i]);
            }
            cb_chunk = &partial;
          }
        }
      } else {
        chunk = collect::HostLog::parse(msg->body);
        if (!msg->producer.empty()) {
          // Atomic check-and-append: a redelivery of an already-archived
          // chunk is suppressed here, never double-written.
          fresh = archive_->append_unique(msg->producer, msg->seq, chunk,
                                          msg->delay, options_.dedup_window);
          if (!fresh) deduped_.fetch_add(1);
        } else if (!chunk.records.empty()) {
          archive_->add_header(chunk.hostname, chunk.arch, chunk.schemas);
          for (const auto& record : chunk.records) {
            archive_->append(chunk.hostname, record,
                             record.time + msg->delay);
          }
        }
        if (fresh) cb_chunk = &chunk;
      }
      if (fresh && callback_ && cb_chunk && !cb_chunk->records.empty()) {
        callback_(cb_chunk->hostname, *cb_chunk);
      }
      if (fresh && faults_ &&
          msg->attempt <= options_.max_crash_redeliveries) {
        const auto fault = faults_->decide(
            util::kFaultConsumerCrash,
            msg->producer.empty() ? queue_ : msg->producer,
            util::FaultPlan::salt(msg->delivery_tag, msg->attempt), 0);
        if (fault.error) {
          // Crash-after-write, before the ack: the broker redelivers and
          // the dedup path above absorbs the duplicate.
          broker_->requeue(queue_, msg->delivery_tag);
          crash_requeues_.fetch_add(1);
          continue;
        }
      }
      broker_->ack(queue_, msg->delivery_tag);
      consumed_.fetch_add(1);
    } catch (const std::exception& e) {
      // Malformed chunk: ack and drop (a real consumer dead-letters it).
      parse_errors_.fetch_add(1);
      broker_->ack(queue_, msg->delivery_tag);
      TS_LOG(Warn, "consumer") << "parse error: " << e.what();
    }
  }
}

}  // namespace tacc::transport
