#include "transport/frame.hpp"

#include <charconv>
#include <stdexcept>

#include "util/strings.hpp"

namespace tacc::transport {
namespace {

constexpr std::string_view kMagic = "$tacc_agg 1 ";

[[noreturn]] void malformed(const char* what) {
  throw std::invalid_argument(std::string("AggFrame: ") + what);
}

std::uint64_t parse_u64(std::string_view tok, const char* what) {
  std::uint64_t v = 0;
  const auto [ptr, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), v);
  if (ec != std::errc{} || ptr != tok.data() + tok.size()) malformed(what);
  return v;
}

/// Consumes one '\n'-terminated line from `rest`, returning it sans newline.
std::string_view take_line(std::string_view& rest, const char* what) {
  const std::size_t nl = rest.find('\n');
  if (nl == std::string_view::npos) malformed(what);
  const std::string_view line = rest.substr(0, nl);
  rest.remove_prefix(nl + 1);
  return line;
}

void append_u64_csv(std::string& out, const std::uint64_t* v, std::size_t n) {
  char buf[24];
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0) out.push_back(',');
    const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v[i]);
    (void)ec;
    out.append(buf, ptr);
  }
}

std::vector<std::uint64_t> parse_u64_csv(std::string_view s,
                                         std::size_t expect,
                                         const char* what) {
  std::vector<std::uint64_t> out;
  out.reserve(expect);
  while (!s.empty()) {
    const std::size_t comma = s.find(',');
    out.push_back(parse_u64(s.substr(0, comma), what));
    if (comma == std::string_view::npos) break;
    s.remove_prefix(comma + 1);
  }
  if (out.size() != expect) malformed(what);
  return out;
}

}  // namespace

bool AggFrame::is_frame(std::string_view body) noexcept {
  return util::starts_with(body, kMagic);
}

std::string AggFrame::serialize() const {
  std::string out;
  out.reserve(64 + 16 * seqs.size() + payload.size());
  out.append(kMagic);
  out.append(producer);
  out.push_back(' ');
  {
    char buf[24];
    auto [p1, e1] = std::to_chars(buf, buf + sizeof buf,
                                  static_cast<std::uint64_t>(seqs.size()));
    (void)e1;
    out.append(buf, p1);
    out.push_back(' ');
    auto [p2, e2] = std::to_chars(buf, buf + sizeof buf,
                                  static_cast<std::uint64_t>(header_len));
    (void)e2;
    out.append(buf, p2);
  }
  out.push_back('\n');
  out.append("$seqs ");
  append_u64_csv(out, seqs.data(), seqs.size());
  out.push_back('\n');
  out.append("$delays ");
  static_assert(sizeof(util::SimTime) == sizeof(std::uint64_t));
  append_u64_csv(out, reinterpret_cast<const std::uint64_t*>(delays.data()),
                 delays.size());
  out.push_back('\n');
  out.append(payload);
  return out;
}

AggFrame AggFrame::parse(std::string_view body) {
  if (!is_frame(body)) malformed("bad magic");
  std::string_view rest = body.substr(kMagic.size());
  const std::string_view meta = take_line(rest, "truncated meta line");
  const auto fields = util::split_ws(meta);
  if (fields.size() != 3) malformed("meta line wants <producer> <count> <header_len>");
  AggFrame f;
  f.producer = std::string(fields[0]);
  const std::uint64_t count = parse_u64(fields[1], "bad count");
  f.header_len = parse_u64(fields[2], "bad header_len");

  std::string_view seq_line = take_line(rest, "truncated $seqs line");
  if (!util::starts_with(seq_line, "$seqs ")) malformed("missing $seqs");
  f.seqs = parse_u64_csv(seq_line.substr(6), count, "bad $seqs");

  std::string_view delay_line = take_line(rest, "truncated $delays line");
  if (!util::starts_with(delay_line, "$delays ")) malformed("missing $delays");
  const auto raw_delays = parse_u64_csv(delay_line.substr(8), count, "bad $delays");
  f.delays.assign(raw_delays.begin(), raw_delays.end());

  if (rest.size() < f.header_len) malformed("truncated payload");
  f.payload = std::string(rest);
  return f;
}

std::vector<std::pair<std::string, std::uint64_t>> AggFrame::message_seqs(
    const Message& msg) {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  if (is_frame(msg.body)) {
    const AggFrame f = parse(msg.body);
    out.reserve(f.seqs.size());
    for (const std::uint64_t s : f.seqs) out.emplace_back(f.producer, s);
  } else if (!msg.producer.empty()) {
    out.emplace_back(msg.producer, msg.seq);
  }
  return out;
}

std::size_t AggFrame::message_records(const Message& msg) noexcept {
  if (!is_frame(msg.body)) return 1;
  // Count field of the meta line; fall back to 1 on malformed frames.
  try {
    const std::string_view rest =
        std::string_view(msg.body).substr(kMagic.size());
    const std::size_t nl = rest.find('\n');
    if (nl == std::string_view::npos) return 1;
    const auto fields = util::split_ws(rest.substr(0, nl));
    if (fields.size() != 3) return 1;
    return static_cast<std::size_t>(parse_u64(fields[1], "bad count"));
  } catch (const std::invalid_argument&) {
    return 1;
  }
}

}  // namespace tacc::transport
