// An in-process message broker with RabbitMQ-style semantics: a direct
// exchange, named queues, bindings, blocking consumers, and at-least-once
// delivery with acknowledgements. The daemon-mode transport (paper Fig. 2)
// publishes raw stats chunks through it; real threads exercise real
// concurrency.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/thread_annotations.hpp"

namespace tacc::transport {

struct Message {
  std::string routing_key;
  std::string body;
  std::uint64_t delivery_tag = 0;
};

/// Broker counters for monitoring tests/benches.
struct BrokerStats {
  std::uint64_t published = 0;
  std::uint64_t delivered = 0;
  std::uint64_t acked = 0;
  std::uint64_t redelivered = 0;
  std::uint64_t unroutable = 0;
};

class Broker {
 public:
  /// Declares a queue (idempotent).
  void declare_queue(const std::string& queue) TACC_EXCLUDES(mu_);

  /// Binds a queue to routing keys. A binding of "#" matches every key;
  /// a trailing ".*" matches one more segment ("stats.*" matches
  /// "stats.c401-101").
  void bind(const std::string& queue, const std::string& pattern)
      TACC_EXCLUDES(mu_);

  /// Publishes to the direct exchange; the message is copied into every
  /// matching queue. Returns the number of queues it reached (0 =
  /// unroutable, counted in stats).
  std::size_t publish(const std::string& routing_key, std::string body)
      TACC_EXCLUDES(mu_);

  /// Blocking consume with timeout; nullopt on timeout or shutdown. The
  /// message stays "unacked" until ack() — if the consumer drops it and
  /// calls reject/requeue it is redelivered.
  std::optional<Message> consume(const std::string& queue,
                                 std::chrono::milliseconds timeout)
      TACC_EXCLUDES(mu_);

  /// Acknowledges a delivery.
  void ack(const std::string& queue, std::uint64_t delivery_tag)
      TACC_EXCLUDES(mu_);

  /// Returns an unacked message to the front of the queue (redelivery).
  void requeue(const std::string& queue, std::uint64_t delivery_tag)
      TACC_EXCLUDES(mu_);

  /// Messages waiting in a queue (excluding unacked in-flight ones).
  std::size_t depth(const std::string& queue) const TACC_EXCLUDES(mu_);

  BrokerStats stats() const TACC_EXCLUDES(mu_);

  /// Wakes all blocked consumers and makes further consumes return
  /// nullopt immediately.
  void shutdown() TACC_EXCLUDES(mu_);
  bool is_shut_down() const TACC_EXCLUDES(mu_);

 private:
  struct QueueState {
    std::deque<Message> messages;
    std::map<std::uint64_t, Message> unacked;
  };
  /// Pure pattern match; touches no broker state.
  static bool key_matches(const std::string& pattern,
                          const std::string& key) noexcept;

  mutable util::Mutex mu_;
  util::CondVar cv_;
  std::map<std::string, QueueState> queues_ TACC_GUARDED_BY(mu_);
  /// (queue, pattern) pairs.
  std::vector<std::pair<std::string, std::string>> bindings_
      TACC_GUARDED_BY(mu_);
  BrokerStats stats_ TACC_GUARDED_BY(mu_);
  std::uint64_t next_tag_ TACC_GUARDED_BY(mu_) = 1;
  bool shutdown_ TACC_GUARDED_BY(mu_) = false;
};

}  // namespace tacc::transport
