// An in-process message broker with RabbitMQ-style semantics: a direct
// exchange, named queues, bindings, blocking consumers, and at-least-once
// delivery with acknowledgements. The daemon-mode transport (paper Fig. 2)
// publishes raw stats chunks through it; real threads exercise real
// concurrency.
//
// Resilience: an optional util::FaultPlan injects drop / duplicate / delay
// faults at the "broker.publish" site, per-queue depth limits park overflow
// in a dead-letter queue, and recover() returns a dead consumer's unacked
// deliveries to the queue (what a real broker does on channel close).
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "util/fault.hpp"
#include "util/thread_annotations.hpp"

namespace tacc::transport {

struct Message {
  std::string routing_key;
  std::string body;
  std::uint64_t delivery_tag = 0;
  /// End-to-end identity stamped by the publisher (empty = no dedup id):
  /// the consumer deduplicates on (producer, seq), surviving broker-level
  /// duplication and crash-before-ack redeliveries.
  std::string producer;
  std::uint64_t seq = 0;
  /// Delivery attempts so far; incremented by each consume(). Fault salt
  /// for crash-before-ack decisions, so a redelivery rolls fresh dice.
  std::uint32_t attempt = 0;
  /// Injected transport latency, applied by the consumer to ingest time.
  util::SimTime delay = 0;
  /// Simulated publish time (PublishInfo::now), carried so aggregator tiers
  /// can window same-host batches without parsing the body.
  util::SimTime sim_time = 0;
};

/// Publisher-side metadata for publish(); defaults reproduce the plain
/// fire-and-forget publish.
struct PublishInfo {
  std::string producer;       // stable producer id (hostname) for dedup
  std::uint64_t seq = 0;      // per-producer sequence number (1-based)
  std::uint32_t attempt = 0;  // publisher retry attempt (fault salt)
  util::SimTime now = 0;      // simulated publish time (outage windows)
};

/// Broker counters for monitoring tests/benches.
struct BrokerStats {
  std::uint64_t published = 0;
  std::uint64_t delivered = 0;
  std::uint64_t acked = 0;
  std::uint64_t redelivered = 0;
  std::uint64_t unroutable = 0;
  util::ResilienceStats resilience;
};

class Broker {
 public:
  /// Declares a queue (idempotent).
  void declare_queue(const std::string& queue) TACC_EXCLUDES(mu_);

  /// Binds a queue to routing keys. A binding of "#" matches every key;
  /// a trailing ".*" matches one more segment ("stats.*" matches
  /// "stats.c401-101").
  void bind(const std::string& queue, const std::string& pattern)
      TACC_EXCLUDES(mu_);

  /// Installs the fault plan consulted by publish(). Call during setup,
  /// before traffic flows.
  void set_fault_plan(std::shared_ptr<const util::FaultPlan> plan)
      TACC_EXCLUDES(mu_);

  /// Caps a queue's depth; messages published beyond it are parked in the
  /// queue's dead-letter store instead. 0 = unlimited (the default).
  void set_queue_limit(const std::string& queue, std::size_t max_depth)
      TACC_EXCLUDES(mu_);

  /// Backpressure watermarks: when the queue depth reaches `high` the queue
  /// enters Paused (counted once per crossing in
  /// ResilienceStats::paused_windows); when it drains to `low` or below it
  /// resumes (resumed_windows). Publishers poll publish_paused() and spool
  /// locally while paused. high == 0 disables watermarks; low defaults to
  /// high / 2 when passed as 0.
  void set_watermarks(const std::string& queue, std::size_t high,
                      std::size_t low = 0) TACC_EXCLUDES(mu_);

  /// True if any queue bound to `routing_key` is currently Paused. Cheap;
  /// publishers call it before every publish.
  bool publish_paused(const std::string& routing_key) const
      TACC_EXCLUDES(mu_);

  /// True if the named queue is currently Paused.
  bool queue_paused(const std::string& queue) const TACC_EXCLUDES(mu_);

  /// Publishes to the direct exchange; the message is copied into every
  /// matching queue. Returns the number of queues it reached (0 =
  /// unroutable or an injected in-flight drop — the publisher sees the
  /// failure and may retry). Dead-lettered messages count as reached.
  std::size_t publish(const std::string& routing_key, std::string body)
      TACC_EXCLUDES(mu_);
  std::size_t publish(const std::string& routing_key, std::string body,
                      const PublishInfo& info) TACC_EXCLUDES(mu_);

  /// Blocking consume with timeout; nullopt on timeout or shutdown. The
  /// message stays "unacked" until ack() — if the consumer drops it and
  /// calls reject/requeue it is redelivered.
  std::optional<Message> consume(const std::string& queue,
                                 std::chrono::milliseconds timeout)
      TACC_EXCLUDES(mu_);

  /// Acknowledges a delivery.
  void ack(const std::string& queue, std::uint64_t delivery_tag)
      TACC_EXCLUDES(mu_);

  /// Returns an unacked message to the front of the queue (redelivery).
  void requeue(const std::string& queue, std::uint64_t delivery_tag)
      TACC_EXCLUDES(mu_);

  /// Requeues every unacked message of a queue, in delivery-tag order at
  /// the queue front (a restarted consumer reclaiming its dead
  /// predecessor's in-flight deliveries).
  void recover(const std::string& queue) TACC_EXCLUDES(mu_);

  /// Messages waiting in a queue (excluding unacked in-flight ones).
  std::size_t depth(const std::string& queue) const TACC_EXCLUDES(mu_);

  /// Messages delivered but not yet acked.
  std::size_t unacked_depth(const std::string& queue) const
      TACC_EXCLUDES(mu_);

  /// Messages parked in a queue's dead-letter store.
  std::size_t dead_letter_depth(const std::string& queue) const
      TACC_EXCLUDES(mu_);

  /// Removes and returns a queue's dead letters (operator inspection /
  /// replay tooling).
  std::vector<Message> drain_dead_letters(const std::string& queue)
      TACC_EXCLUDES(mu_);

  BrokerStats stats() const TACC_EXCLUDES(mu_);

  /// Wakes all blocked consumers and makes further consumes return
  /// nullopt immediately.
  void shutdown() TACC_EXCLUDES(mu_);
  bool is_shut_down() const TACC_EXCLUDES(mu_);

 private:
  struct QueueState {
    std::deque<Message> messages;
    std::map<std::uint64_t, Message> unacked;
    std::deque<Message> dead_letters;
    std::size_t limit = 0;     // 0 = unlimited
    std::size_t high_wm = 0;   // 0 = watermarks disabled
    std::size_t low_wm = 0;
    bool paused = false;
  };
  /// Pure pattern match; touches no broker state.
  static bool key_matches(const std::string& pattern,
                          const std::string& key) noexcept;

  /// Re-evaluates a queue's Paused state after a depth change, counting
  /// each transition exactly once.
  void update_pause(QueueState& q) TACC_REQUIRES(mu_);

  mutable util::Mutex mu_;
  util::CondVar cv_;
  std::map<std::string, QueueState> queues_ TACC_GUARDED_BY(mu_);
  /// (queue, pattern) pairs.
  std::vector<std::pair<std::string, std::string>> bindings_
      TACC_GUARDED_BY(mu_);
  std::shared_ptr<const util::FaultPlan> faults_ TACC_GUARDED_BY(mu_);
  BrokerStats stats_ TACC_GUARDED_BY(mu_);
  std::uint64_t next_tag_ TACC_GUARDED_BY(mu_) = 1;
  bool shutdown_ TACC_GUARDED_BY(mu_) = false;
};

}  // namespace tacc::transport
