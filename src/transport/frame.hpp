// Coalesced aggregation frame: the unit an aggregator tier republishes
// upward. A frame packs N same-host raw records behind ONE copy of the
// host's header (magic + $hostname/$arch + !schema lines), amortizing the
// header bytes and letting the root consumer append all N records under a
// single archive lock acquisition.
//
// Wire format (body of a transport::Message):
//
//   $tacc_agg 1 <producer> <count> <header_len>\n
//   $seqs s1,s2,...,sN\n
//   $delays d1,d2,...,dN\n
//   <header bytes (header_len)><record bytes>
//
// The per-record (producer, seq) identities and injected delays survive
// coalescing, so the root's exactly-once dedup and latency accounting see
// exactly what they would have seen from N individual messages. Plain raw
// chunks start with "$tacc_stats", so is_frame() can cheaply discriminate.
// `header_len` lets an upper tier merge two frames of the same host without
// re-parsing the schema header.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "transport/broker.hpp"
#include "util/clock.hpp"

namespace tacc::transport {

struct AggFrame {
  std::string producer;                 // hostname the records belong to
  std::vector<std::uint64_t> seqs;      // per-record daemon sequence numbers
  std::vector<util::SimTime> delays;    // per-record injected delays
  std::size_t header_len = 0;           // header prefix length of payload
  std::string payload;                  // header bytes + record bytes

  /// True if `body` is a serialized frame (vs. a plain raw chunk).
  static bool is_frame(std::string_view body) noexcept;

  /// Parses a serialized frame. Throws std::invalid_argument on malformed
  /// input (bad magic, count mismatch, truncated payload).
  static AggFrame parse(std::string_view body);

  std::string serialize() const;

  std::size_t record_count() const noexcept { return seqs.size(); }

  /// The (producer, seq) identities carried by a message, frame-aware: one
  /// pair for a plain chunk, N pairs for a frame. Used by conservation
  /// accounting to count dead-lettered records regardless of which tier
  /// parked them.
  static std::vector<std::pair<std::string, std::uint64_t>> message_seqs(
      const Message& msg);

  /// Number of raw records a message carries (1 for a plain chunk).
  static std::size_t message_records(const Message& msg) noexcept;
};

}  // namespace tacc::transport
