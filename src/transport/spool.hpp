// File-backed raw-stats storage. The production tool persists everything
// as text files: node-local daily logs in cron mode, and per-host archive
// files the consumer writes. This module gives the in-memory RawArchive a
// durable form with the same layout:
//
//   <root>/<YYYY-MM-DD>/<hostname>        one file per host per day
//
// Files are the exact serialized HostLog format, so they round-trip through
// HostLog::parse and can be re-ingested by the analysis pipeline (the
// "reprocess a historical day" workflow).
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "collect/rawfile.hpp"
#include "transport/archive.hpp"

namespace tacc::transport {

class Spool {
 public:
  /// Opens (creating if needed) a spool rooted at `root`.
  explicit Spool(std::filesystem::path root);

  const std::filesystem::path& root() const noexcept { return root_; }

  /// Writes one host's records, splitting them into daily files by record
  /// timestamp. Each file carries a full header so it is self-describing.
  /// Appends to existing files (header written only when creating).
  /// Returns the number of files touched.
  std::size_t write_host(const collect::HostLog& log);

  /// Persists an entire archive. Returns files touched.
  std::size_t write_archive(const RawArchive& archive);

  /// Days present in the spool, as "YYYY-MM-DD" strings, sorted.
  std::vector<std::string> days() const;

  /// Hosts present for a day, sorted.
  std::vector<std::string> hosts(const std::string& day) const;

  /// Reads one host-day file. Throws std::runtime_error if missing or
  /// std::invalid_argument if malformed.
  collect::HostLog read_host(const std::string& day,
                             const std::string& hostname) const;

  /// Re-ingests a whole day into an archive (ingest time = record time,
  /// i.e. replay preserves the original timeline).
  std::size_t load_day(const std::string& day, RawArchive& archive) const;

  /// Formats a SimTime as the spool's day key.
  static std::string day_key(util::SimTime t);

 private:
  std::filesystem::path root_;
};

}  // namespace tacc::transport
