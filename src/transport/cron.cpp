#include "transport/cron.hpp"

#include "simhw/node.hpp"

namespace tacc::transport {

CronMode::CronMode(simhw::Cluster& cluster, RawArchive& archive,
                   CronConfig config, JobsProvider jobs_provider)
    : cluster_(&cluster),
      archive_(&archive),
      config_(config),
      jobs_provider_(std::move(jobs_provider)) {
  util::Rng rng("cron.stage", config.seed);
  nodes_.resize(cluster.size());
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    nodes_[i].sampler = std::make_unique<collect::HostSampler>(
        cluster.node(i), config.build_options);
    nodes_[i].stage_offset = config.stage_window_start +
                             static_cast<util::SimTime>(
                                 rng.uniform() *
                                 static_cast<double>(
                                     config.stage_window_end -
                                     config.stage_window_start));
  }
}

void CronMode::collect_node(std::size_t index, util::SimTime now,
                            const std::string& mark) {
  auto& state = nodes_[index];
  auto& node = cluster_->node(index);
  if (node.failed()) {
    ++stats_.skipped_nodes;
    return;
  }
  try {
    auto record = state.sampler->sample(now, jobs_provider_(index), mark);
    ++stats_.collected_records;
    state.last_collect = now;
    if (config_.faults &&
        config_.faults
            ->decide(util::kFaultCronDisk, node.hostname(),
                     static_cast<std::uint64_t>(now / util::kSecond), now)
            .error) {
      // Node-local disk full: the sample was taken but the append to the
      // local log fails, so the record is gone.
      ++stats_.disk_full_drops;
      ++stats_.lost_records;
      ++stats_.resilience.injected_errors;
      return;
    }
    state.current.push_back(std::move(record));
  } catch (const simhw::NodeFailedError&) {
    ++stats_.skipped_nodes;
  }
}

void CronMode::rotate_node(NodeState& state) {
  for (auto& record : state.current) {
    state.pending.push_back(std::move(record));
  }
  state.current.clear();
}

void CronMode::stage_node(std::size_t index, util::SimTime now,
                          util::SimTime stage_time) {
  auto& state = nodes_[index];
  auto& node = cluster_->node(index);
  if (node.failed()) return;  // rsync source unreachable
  if (state.pending.empty()) return;
  if (config_.faults &&
      config_.faults
          ->decide(util::kFaultCronRsync, node.hostname(),
                   static_cast<std::uint64_t>(stage_time / util::kSecond),
                   now)
          .error) {
    // The staged rsync failed; the rotated files stay node-local and are
    // caught up at the next staging window.
    ++stats_.rsync_failures;
    ++stats_.resilience.injected_errors;
    return;
  }
  if (!state.header_sent) {
    archive_->add_header(node.hostname(), node.arch().codename,
                         state.sampler->schemas());
    state.header_sent = true;
  }
  for (auto& record : state.pending) {
    archive_->append(node.hostname(), std::move(record), now);
    ++stats_.staged_records;
  }
  state.pending.clear();
}

void CronMode::on_time(util::SimTime now) {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    auto& state = nodes_[i];
    // Interval collections.
    if (state.last_collect == 0 || now - state.last_collect >=
                                       config_.interval) {
      collect_node(i, now, {});
    }
    // Daily rotation at midnight.
    const util::SimTime day = now - now % util::kDay;
    if (state.last_rotate < day) {
      rotate_node(state);
      state.last_rotate = day;
    }
    // Staged rsync at the node's daily offset.
    const util::SimTime stage_time = day + state.stage_offset;
    if (now >= stage_time && state.last_stage < stage_time) {
      stage_node(i, now, stage_time);
      state.last_stage = stage_time;
    }
  }
  now_ = now;
}

void CronMode::node_failed(std::size_t node_index) {
  auto& state = nodes_[node_index];
  stats_.lost_records += state.current.size() + state.pending.size();
  state.current.clear();
  state.pending.clear();
}

std::size_t CronMode::backlog() const noexcept {
  std::size_t n = 0;
  for (const auto& state : nodes_) {
    n += state.current.size() + state.pending.size();
  }
  return n;
}

bool CronMode::collect_now(std::size_t node_index, util::SimTime now,
                           const std::string& mark) {
  const auto before = stats_.collected_records;
  collect_node(node_index, now, mark);
  return stats_.collected_records > before;
}

}  // namespace tacc::transport
