// Cron-mode transport (paper Fig. 1): each node appends collections to a
// node-local log file, rotates it daily, and a staged rsync copies the
// rotated files to the central archive once a day at a random per-node
// time in the early morning (so the shared filesystem is not hammered by
// thousands of simultaneous copies). This is the original operation mode;
// it trades hours of availability latency — and loses the unstaged data of
// a failed node — for having no network service dependency.
// Resilience: an optional util::FaultPlan injects rsync failures at the
// "cron.rsync" site (the staged copy fails; the node's rotated files stay
// local and are caught up at the next staging window) and disk-full errors
// at "cron.disk" (the node-local append fails and that sample is lost).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "collect/registry.hpp"
#include "simhw/cluster.hpp"
#include "transport/archive.hpp"
#include "util/fault.hpp"
#include "util/rng.hpp"

namespace tacc::transport {

struct CronConfig {
  util::SimTime interval = 10 * util::kMinute;
  /// Staging window: each node picks a fixed random time in
  /// [stage_window_start, stage_window_end) of every day.
  util::SimTime stage_window_start = 1 * util::kHour;
  util::SimTime stage_window_end = 5 * util::kHour;
  collect::BuildOptions build_options{};
  std::uint64_t seed = 42;
  /// Fault plan consulted at "cron.rsync" / "cron.disk" (may be null).
  std::shared_ptr<const util::FaultPlan> faults;
};

struct CronStats {
  std::uint64_t collected_records = 0;
  std::uint64_t staged_records = 0;
  std::uint64_t lost_records = 0;  // node-local data destroyed by failures
  std::uint64_t skipped_nodes = 0; // collections skipped on failed nodes
  std::uint64_t rsync_failures = 0;  // staging attempts that failed
  std::uint64_t disk_full_drops = 0; // samples lost to a full local disk
  util::ResilienceStats resilience;
};

class CronMode {
 public:
  using JobsProvider =
      std::function<std::vector<long>(std::size_t node_index)>;

  CronMode(simhw::Cluster& cluster, RawArchive& archive, CronConfig config,
           JobsProvider jobs_provider);

  /// Advances to `now`: runs due collections, performs the daily rotation
  /// at midnight, and stages rotated logs at each node's staging time.
  /// Call with monotonically non-decreasing times.
  void on_time(util::SimTime now);

  /// Reports a node failure: the node-local log (today's unrotated file
  /// plus any rotated-but-unstaged files) is lost.
  void node_failed(std::size_t node_index);

  /// Immediate collection with a mark on one node (prolog/epilog).
  bool collect_now(std::size_t node_index, util::SimTime now,
                   const std::string& mark);

  const CronStats& stats() const noexcept { return stats_; }

  /// Node-local records not yet staged (today's logs + rotated pending).
  std::size_t backlog() const noexcept;

 private:
  struct NodeState {
    std::unique_ptr<collect::HostSampler> sampler;
    std::vector<collect::Record> current;    // today's local log
    std::vector<collect::Record> pending;    // rotated, awaiting rsync
    util::SimTime stage_offset = 0;          // time-of-day of the rsync
    util::SimTime last_collect = 0;
    util::SimTime last_rotate = 0;
    util::SimTime last_stage = 0;
    bool header_sent = false;
  };

  void collect_node(std::size_t index, util::SimTime now,
                    const std::string& mark);
  void rotate_node(NodeState& state);
  void stage_node(std::size_t index, util::SimTime now,
                  util::SimTime stage_time);

  simhw::Cluster* cluster_;
  RawArchive* archive_;
  CronConfig config_;
  JobsProvider jobs_provider_;
  std::vector<NodeState> nodes_;
  CronStats stats_;
  util::SimTime now_ = 0;
};

}  // namespace tacc::transport
