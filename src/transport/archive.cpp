#include "transport/archive.hpp"

namespace tacc::transport {

void RawArchive::add_header(const std::string& hostname,
                            const std::string& arch,
                            std::vector<collect::Schema> schemas) {
  util::MutexLock lock(mu_);
  auto& host = hosts_[hostname];
  if (host.log.hostname.empty()) {
    host.log.hostname = hostname;
    host.log.arch = arch;
    host.log.schemas = std::move(schemas);
  }
}

void RawArchive::append(const std::string& hostname, collect::Record record,
                        util::SimTime ingest_time) {
  util::MutexLock lock(mu_);
  auto& host = hosts_[hostname];
  if (host.log.hostname.empty()) host.log.hostname = hostname;
  host.log.records.push_back(std::move(record));
  host.ingest_times.push_back(ingest_time);
}

collect::HostLog RawArchive::log(const std::string& hostname) const {
  util::MutexLock lock(mu_);
  const auto it = hosts_.find(hostname);
  return it == hosts_.end() ? collect::HostLog{} : it->second.log;
}

std::vector<std::string> RawArchive::hosts() const {
  util::MutexLock lock(mu_);
  std::vector<std::string> out;
  out.reserve(hosts_.size());
  for (const auto& [host, data] : hosts_) out.push_back(host);
  return out;
}

std::size_t RawArchive::total_records() const {
  util::MutexLock lock(mu_);
  std::size_t n = 0;
  for (const auto& [host, data] : hosts_) n += data.log.records.size();
  return n;
}

util::RunningStat RawArchive::latency() const {
  util::MutexLock lock(mu_);
  util::RunningStat stat;
  for (const auto& [host, data] : hosts_) {
    for (std::size_t i = 0; i < data.ingest_times.size(); ++i) {
      stat.add(util::to_seconds(data.ingest_times[i] -
                                data.log.records[i].time));
    }
  }
  return stat;
}

}  // namespace tacc::transport
