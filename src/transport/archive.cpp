#include "transport/archive.hpp"

namespace tacc::transport {

void RawArchive::add_header_locked(const std::string& hostname,
                                   const std::string& arch,
                                   std::vector<collect::Schema> schemas) {
  auto& host = hosts_[hostname];
  if (host.log.hostname.empty()) {
    host.log.hostname = hostname;
    host.log.arch = arch;
    host.log.schemas = std::move(schemas);
    host.log.reindex_schemas();
  }
}

void RawArchive::add_header(const std::string& hostname,
                            const std::string& arch,
                            std::vector<collect::Schema> schemas) {
  util::MutexLock lock(mu_);
  add_header_locked(hostname, arch, std::move(schemas));
}

bool RawArchive::append_unique(const std::string& producer, std::uint64_t seq,
                               const collect::HostLog& chunk,
                               util::SimTime delay,
                               std::size_t dedup_window) {
  util::MutexLock lock(mu_);
  auto& dedup = dedup_[producer];
  if (!dedup.seen.insert(seq).second) return false;
  dedup.order.push_back(seq);
  while (dedup_window > 0 && dedup.order.size() > dedup_window) {
    dedup.seen.erase(dedup.order.front());
    dedup.order.pop_front();
  }
  if (chunk.records.empty()) return true;
  add_header_locked(chunk.hostname, chunk.arch, chunk.schemas);
  auto& host = hosts_[chunk.hostname];
  for (const auto& record : chunk.records) {
    host.ingest_times.push_back(record.time + delay);
    host.log.records.push_back(record);
  }
  return true;
}

std::size_t RawArchive::append_unique_batch(
    const std::string& producer, const std::vector<std::uint64_t>& seqs,
    const collect::HostLog& chunk, const std::vector<util::SimTime>& delays,
    std::size_t dedup_window, std::vector<char>* fresh) {
  util::MutexLock lock(mu_);
  if (fresh) fresh->assign(seqs.size(), 0);
  auto& dedup = dedup_[producer];
  std::size_t appended = 0;
  bool header_done = false;
  for (std::size_t i = 0; i < seqs.size(); ++i) {
    if (!dedup.seen.insert(seqs[i]).second) continue;
    dedup.order.push_back(seqs[i]);
    while (dedup_window > 0 && dedup.order.size() > dedup_window) {
      dedup.seen.erase(dedup.order.front());
      dedup.order.pop_front();
    }
    if (fresh) (*fresh)[i] = 1;
    ++appended;
    if (i >= chunk.records.size()) continue;
    if (!header_done) {
      add_header_locked(chunk.hostname, chunk.arch, chunk.schemas);
      header_done = true;
    }
    auto& host = hosts_[chunk.hostname];
    const auto& record = chunk.records[i];
    host.ingest_times.push_back(record.time +
                                (i < delays.size() ? delays[i] : 0));
    host.log.records.push_back(record);
  }
  return appended;
}

bool RawArchive::was_seen(const std::string& producer,
                          std::uint64_t seq) const {
  util::MutexLock lock(mu_);
  const auto it = dedup_.find(producer);
  return it != dedup_.end() && it->second.seen.count(seq) > 0;
}

std::size_t RawArchive::seen_count(const std::string& producer) const {
  util::MutexLock lock(mu_);
  const auto it = dedup_.find(producer);
  return it == dedup_.end() ? 0 : it->second.seen.size();
}

void RawArchive::append(const std::string& hostname, collect::Record record,
                        util::SimTime ingest_time) {
  util::MutexLock lock(mu_);
  auto& host = hosts_[hostname];
  if (host.log.hostname.empty()) host.log.hostname = hostname;
  host.log.records.push_back(std::move(record));
  host.ingest_times.push_back(ingest_time);
}

collect::HostLog RawArchive::log(const std::string& hostname) const {
  util::MutexLock lock(mu_);
  const auto it = hosts_.find(hostname);
  return it == hosts_.end() ? collect::HostLog{} : it->second.log;
}

void RawArchive::visit_log(
    const std::string& hostname,
    const std::function<void(const collect::HostLog&)>& fn) const {
  util::MutexLock lock(mu_);
  const auto it = hosts_.find(hostname);
  if (it != hosts_.end()) fn(it->second.log);
}

std::vector<std::string> RawArchive::hosts() const {
  util::MutexLock lock(mu_);
  std::vector<std::string> out;
  out.reserve(hosts_.size());
  for (const auto& [host, data] : hosts_) out.push_back(host);
  return out;
}

std::size_t RawArchive::total_records() const {
  util::MutexLock lock(mu_);
  std::size_t n = 0;
  for (const auto& [host, data] : hosts_) n += data.log.records.size();
  return n;
}

util::RunningStat RawArchive::latency() const {
  util::MutexLock lock(mu_);
  util::RunningStat stat;
  for (const auto& [host, data] : hosts_) {
    for (std::size_t i = 0; i < data.ingest_times.size(); ++i) {
      stat.add(util::to_seconds(data.ingest_times[i] -
                                data.log.records[i].time));
    }
  }
  return stat;
}

}  // namespace tacc::transport
