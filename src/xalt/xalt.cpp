#include "xalt/xalt.hpp"

#include <sstream>

#include "util/rng.hpp"
#include "util/strings.hpp"
#include "workload/apps.hpp"

namespace tacc::xalt {
namespace {

struct Toolchain {
  const char* compiler;
  const char* mpi;  // nullptr = serial
  std::vector<const char*> extra_modules;
  std::vector<const char*> libraries;
};

/// Per-profile environments, modeled on the software stacks such codes use.
Toolchain toolchain_for(const std::string& profile, util::Rng& rng) {
  if (profile == "wrf" || profile == "wrf_mdstorm") {
    return {"intel/15.0.2", "mvapich2/2.1",
            {"netcdf/4.3.3.1", "pnetcdf/1.6.0", "hdf5/1.8.14"},
            {"libnetcdff.so.6", "libmpich.so.12", "libhdf5.so.9",
             "libifcore.so.5"}};
  }
  if (profile == "md_engine") {
    return {"intel/15.0.2", "mvapich2/2.1", {"fftw3/3.3.4"},
            {"libfftw3f.so.3", "libmpich.so.12", "libtcl8.5.so"}};
  }
  if (profile == "cfd_scalar") {
    // The unvectorized cohort: built with the older GCC default flags.
    return {"gcc/4.4.7", "mvapich2/2.1", {"openfoam/2.4.0"},
            {"libOpenFOAM.so", "libmpich.so.12", "libstdc++.so.6"}};
  }
  if (profile == "qchem") {
    return {"intel/15.0.2", nullptr, {"mkl/11.2"},
            {"libmkl_core.so", "libmkl_intel_thread.so", "libiomp5.so"}};
  }
  if (profile == "genomics_io") {
    return {"gcc/4.9.1", nullptr, {"boost/1.55.0", "blast/2.2.31"},
            {"libstdc++.so.6", "libz.so.1", "libbz2.so.1"}};
  }
  if (profile == "python_analytics") {
    return {"gcc/4.9.1", nullptr, {"python/2.7.9", "numpy/1.9.2"},
            {"libpython2.7.so.1.0", "libopenblas.so.0"}};
  }
  if (profile == "mpi_gige") {
    // The flagged cohort: a home-built OpenMPI over TCP.
    return {"gcc/4.9.1", "home-built openmpi/1.8.4 (tcp btl)", {},
            {"libmpi.so.1", "libopen-pal.so.6", "libstdc++.so.6"}};
  }
  if (profile == "mic_offload") {
    return {"intel/15.0.2", "impi/5.0.3", {"mic/1.0"},
            {"liboffload.so.5", "libcoi_host.so.0", "libimf.so"}};
  }
  if (rng.bernoulli(0.5)) {
    return {"intel/15.0.2", "mvapich2/2.1", {"mkl/11.2"},
            {"libmkl_core.so", "libmpich.so.12", "libifcore.so.5"}};
  }
  return {"gcc/4.9.1", "mvapich2/2.1", {},
          {"libmpich.so.12", "libstdc++.so.6", "libm.so.6"}};
}

}  // namespace

XaltRecord synthesize_record(const workload::JobSpec& job) {
  util::Rng rng("xalt", static_cast<std::uint64_t>(job.jobid));
  const auto tc = toolchain_for(job.profile, rng);
  XaltRecord rec;
  rec.jobid = job.jobid;
  rec.exe_path = "/work/" + std::to_string(job.uid) + "/" + job.user +
                 "/bin/" + job.exe;
  rec.work_dir =
      "/scratch/" + std::to_string(job.uid) + "/" + job.user + "/run" +
      std::to_string(rng.uniform_int(1, 400));
  rec.compiler = tc.compiler;
  rec.mpi = tc.mpi == nullptr ? "" : tc.mpi;
  rec.modules.push_back(tc.compiler);
  if (tc.mpi != nullptr) rec.modules.push_back(tc.mpi);
  for (const char* m : tc.extra_modules) rec.modules.push_back(m);
  for (const char* l : tc.libraries) rec.libraries.push_back(l);
  return rec;
}

db::Table& create_xalt_table(db::Database& database) {
  auto& table = database.create_table(
      kXaltTable, {{"jobid", db::ValueType::Int},
                   {"exe_path", db::ValueType::Text},
                   {"work_dir", db::ValueType::Text},
                   {"compiler", db::ValueType::Text},
                   {"mpi", db::ValueType::Text},
                   {"modules", db::ValueType::Text},
                   {"libraries", db::ValueType::Text}});
  table.create_index("jobid");
  return table;
}

db::RowId ingest_record(db::Table& table, const XaltRecord& record) {
  return table.insert({record.jobid, record.exe_path, record.work_dir,
                       record.compiler, record.mpi,
                       util::join(record.modules, ","),
                       util::join(record.libraries, ",")});
}

std::optional<XaltRecord> lookup(const db::Table& table, long jobid) {
  const auto rows =
      table.select({{"jobid", db::Op::Eq, db::Value(jobid)}});
  if (rows.empty()) return std::nullopt;
  const auto id = rows.front();
  XaltRecord rec;
  rec.jobid = table.at(id, "jobid").as_int();
  rec.exe_path = table.at(id, "exe_path").as_text();
  rec.work_dir = table.at(id, "work_dir").as_text();
  rec.compiler = table.at(id, "compiler").as_text();
  rec.mpi = table.at(id, "mpi").as_text();
  for (const auto m : util::split(table.at(id, "modules").as_text(), ',')) {
    if (!m.empty()) rec.modules.emplace_back(m);
  }
  for (const auto l :
       util::split(table.at(id, "libraries").as_text(), ',')) {
    if (!l.empty()) rec.libraries.emplace_back(l);
  }
  return rec;
}

std::string render_environment(const XaltRecord& record) {
  std::ostringstream os;
  os << "  Executable: " << record.exe_path << '\n';
  os << "  Workdir:    " << record.work_dir << '\n';
  os << "  Modules:    " << util::join(record.modules, ", ") << '\n';
  os << "  Libraries:  " << util::join(record.libraries, ", ") << '\n';
  return os.str();
}

}  // namespace tacc::xalt
