// XALT-style user-environment tracking (paper section IV-B: the job detail
// view shows "which modules were loaded and libraries were linked to at
// runtime. Note the modules and libraries are only available if the XALT
// plugin is enabled").
//
// The real XALT wraps the linker and job launcher to capture the executable
// path, the loaded environment modules, and the shared libraries resolved
// at run time, keyed by job. This module reproduces that data model: a
// per-job environment record, a deterministic synthesizer that derives
// plausible environments from the application profiles (our substitute for
// wrapping a real linker), a relational side table, and the detail-view
// join.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "db/table.hpp"
#include "workload/jobs.hpp"

namespace tacc::xalt {

/// One job's captured environment.
struct XaltRecord {
  long jobid = 0;
  std::string exe_path;            // absolute path of the launched binary
  std::string work_dir;            // working directory at launch
  std::string compiler;            // toolchain module, e.g. "intel/15.0.2"
  std::string mpi;                 // MPI module, empty for serial codes
  std::vector<std::string> modules;    // all loaded modules
  std::vector<std::string> libraries;  // resolved shared objects
};

/// Derives the environment record for a job from its application profile.
/// Deterministic in (jobid, profile): re-synthesis yields the same record.
XaltRecord synthesize_record(const workload::JobSpec& job);

/// Name of the xalt side table.
inline constexpr const char* kXaltTable = "xalt";

/// Creates the xalt table (indexed by jobid): jobid, exe_path, work_dir,
/// compiler, mpi, modules (comma-joined), libraries (comma-joined).
db::Table& create_xalt_table(db::Database& database);

/// Inserts one record.
db::RowId ingest_record(db::Table& table, const XaltRecord& record);

/// Looks a job's record up from the table; nullopt if absent (plugin
/// disabled or job predates it).
std::optional<XaltRecord> lookup(const db::Table& table, long jobid);

/// Renders the detail-view section ("Modules: ...\nLibraries: ...").
std::string render_environment(const XaltRecord& record);

}  // namespace tacc::xalt
