// CPU scheduler accounting and core performance-counter collectors.
#include <stdexcept>

#include "collect/collectors.hpp"
#include "simhw/msr.hpp"
#include "util/strings.hpp"

namespace tacc::collect {

using simhw::msr::kFixedCtrCycles;
using simhw::msr::kFixedCtrInstructions;
using simhw::msr::kPerfEvtSelBase;
using simhw::msr::kPmcBase;

CpuCollector::CpuCollector()
    : schema_("cpu", {{"user", true, 64, "jiffies", 1.0},
                      {"nice", true, 64, "jiffies", 1.0},
                      {"system", true, 64, "jiffies", 1.0},
                      {"idle", true, 64, "jiffies", 1.0},
                      {"iowait", true, 64, "jiffies", 1.0}}) {}

void CpuCollector::collect(const simhw::Node& node,
                           std::vector<RawBlock>& out) const {
  const auto text = node.read_file("/proc/stat");
  if (!text) return;
  for (const auto line : util::split_lines(*text)) {
    if (!util::starts_with(line, "cpu")) continue;
    const auto fields = util::split_ws(line);
    // Skip the aggregate "cpu" line; keep per-cpu "cpuN" lines.
    if (fields[0] == "cpu") continue;
    RawBlock block;
    block.type = schema_.type();
    block.device = std::string(fields[0].substr(3));
    for (std::size_t i = 1; i <= 5 && i < fields.size(); ++i) {
      const auto v = util::parse_u64(fields[i]);
      block.values.push_back(v.value_or(0));
    }
    if (block.values.size() == schema_.size()) out.push_back(std::move(block));
  }
}

PmcCollector::PmcCollector(const simhw::ArchSpec& spec, int pmcs)
    : spec_(spec), pmcs_(pmcs) {
  std::vector<SchemaEntry> entries;
  entries.push_back({"instructions", true, simhw::msr::kCoreCounterBits,
                     "insts", 1.0});
  entries.push_back(
      {"cycles", true, simhw::msr::kCoreCounterBits, "cycles", 1.0});
  for (int i = 0; i < pmcs_ && i < static_cast<int>(spec.pmc_events.size());
       ++i) {
    entries.push_back({std::string(to_string(spec.pmc_events[i].event)), true,
                       simhw::msr::kCoreCounterBits, "events", 1.0});
  }
  schema_ = Schema(spec.codename, std::move(entries));
}

std::unique_ptr<PmcCollector> PmcCollector::probe(const simhw::Node& node) {
  const auto id = node.cpuid();
  const simhw::ArchSpec* spec = simhw::arch_from_cpuid(id.family, id.model);
  if (spec == nullptr) return nullptr;
  const int pmcs = node.topology().pmcs_per_core();
  return std::unique_ptr<PmcCollector>(new PmcCollector(*spec, pmcs));
}

void PmcCollector::configure(simhw::Node& node) {
  for (int cpu = 0; cpu < node.topology().logical_cpus(); ++cpu) {
    for (int i = 0;
         i < pmcs_ && i < static_cast<int>(spec_.pmc_events.size()); ++i) {
      const auto& enc = spec_.pmc_events[static_cast<std::size_t>(i)];
      node.write_msr(cpu, kPerfEvtSelBase + static_cast<std::uint32_t>(i),
                     simhw::msr::make_evtsel(enc.event_select, enc.umask));
    }
  }
}

void PmcCollector::collect(const simhw::Node& node,
                           std::vector<RawBlock>& out) const {
  for (int cpu = 0; cpu < node.topology().logical_cpus(); ++cpu) {
    RawBlock block;
    block.type = schema_.type();
    block.device = std::to_string(cpu);
    block.values.push_back(node.read_msr(cpu, kFixedCtrInstructions));
    block.values.push_back(node.read_msr(cpu, kFixedCtrCycles));
    for (int i = 0;
         i < pmcs_ && i < static_cast<int>(spec_.pmc_events.size()); ++i) {
      block.values.push_back(
          node.read_msr(cpu, kPmcBase + static_cast<std::uint32_t>(i)));
    }
    out.push_back(std::move(block));
  }
}

}  // namespace tacc::collect
