#include "collect/rawfile.hpp"

#include <sstream>
#include <stdexcept>

#include "util/strings.hpp"

namespace tacc::collect {

const Schema* HostLog::schema_for(std::string_view type) const noexcept {
  for (const auto& s : schemas) {
    if (s.type() == type) return &s;
  }
  return nullptr;
}

std::string HostLog::serialize_header() const {
  std::ostringstream os;
  os << '$' << kFormatTag << '\n';
  os << "$hostname " << hostname << '\n';
  os << "$arch " << arch << '\n';
  for (const auto& s : schemas) os << s.spec_line() << '\n';
  return os.str();
}

std::string HostLog::serialize_record(const Record& record) {
  std::ostringstream os;
  os << record.time / util::kSecond << ' ';
  if (record.jobids.empty()) {
    os << '-';
  } else {
    for (std::size_t i = 0; i < record.jobids.size(); ++i) {
      if (i) os << ',';
      os << record.jobids[i];
    }
  }
  if (!record.mark.empty()) os << ' ' << record.mark;
  os << '\n';
  for (const auto& b : record.blocks) {
    os << b.type << ' ' << (b.device.empty() ? "-" : b.device);
    for (const std::uint64_t v : b.values) os << ' ' << v;
    os << '\n';
  }
  return os.str();
}

std::string HostLog::serialize() const {
  std::string out = serialize_header();
  for (const auto& r : records) out += serialize_record(r);
  return out;
}

void HostLog::parse_records(std::string_view body) {
  using util::split_ws;
  Record* current = nullptr;
  for (const auto line : util::split_lines(body)) {
    if (line.empty()) continue;
    if (line[0] >= '0' && line[0] <= '9') {
      const auto fields = split_ws(line);
      if (fields.empty()) throw std::invalid_argument("empty record line");
      const auto secs = util::parse_i64(fields[0]);
      if (!secs) {
        throw std::invalid_argument("bad timestamp: " + std::string(line));
      }
      Record rec;
      rec.time = *secs * util::kSecond;
      if (fields.size() > 1 && fields[1] != "-") {
        for (const auto j : util::split(fields[1], ',')) {
          const auto id = util::parse_i64(j);
          if (!id) {
            throw std::invalid_argument("bad job id: " + std::string(line));
          }
          rec.jobids.push_back(static_cast<long>(*id));
        }
      }
      if (fields.size() > 2) rec.mark = std::string(fields[2]);
      records.push_back(std::move(rec));
      current = &records.back();
      continue;
    }
    // Data row.
    if (current == nullptr) {
      throw std::invalid_argument("data row before any timestamp line");
    }
    const auto fields = split_ws(line);
    if (fields.size() < 2) {
      throw std::invalid_argument("short data row: " + std::string(line));
    }
    RawBlock block;
    block.type = std::string(fields[0]);
    block.device = fields[1] == "-" ? std::string{} : std::string(fields[1]);
    const Schema* schema = schema_for(block.type);
    if (schema == nullptr) {
      throw std::invalid_argument("data row with unknown type: " +
                                  block.type);
    }
    if (fields.size() - 2 != schema->size()) {
      throw std::invalid_argument("data row arity mismatch for type " +
                                  block.type);
    }
    block.values.reserve(fields.size() - 2);
    for (std::size_t i = 2; i < fields.size(); ++i) {
      const auto v = util::parse_u64(fields[i]);
      if (!v) {
        throw std::invalid_argument("bad counter value: " +
                                    std::string(fields[i]));
      }
      block.values.push_back(*v);
    }
    current->blocks.push_back(std::move(block));
  }
}

HostLog HostLog::parse(std::string_view text) {
  HostLog log;
  std::size_t body_start = 0;
  bool saw_format = false;
  for (const auto line : util::split_lines(text)) {
    const std::size_t line_end =
        static_cast<std::size_t>(line.data() - text.data()) + line.size() + 1;
    if (!line.empty() && line[0] == '$') {
      const std::string_view rest = line.substr(1);
      if (rest == kFormatTag) {
        saw_format = true;
      } else if (util::starts_with(rest, "hostname ")) {
        log.hostname = std::string(util::trim(rest.substr(9)));
      } else if (util::starts_with(rest, "arch ")) {
        log.arch = std::string(util::trim(rest.substr(5)));
      } else {
        throw std::invalid_argument("unknown header line: " +
                                    std::string(line));
      }
      body_start = line_end;
      continue;
    }
    if (!line.empty() && line[0] == '!') {
      log.schemas.push_back(Schema::parse(line));
      body_start = line_end;
      continue;
    }
    break;  // first non-header line: body begins
  }
  if (!saw_format) {
    throw std::invalid_argument("missing $tacc_stats format line");
  }
  if (body_start < text.size()) {
    log.parse_records(text.substr(body_start));
  }
  return log;
}

}  // namespace tacc::collect
