#include "collect/rawfile.hpp"

#include <algorithm>
#include <cassert>
#include <charconv>
#include <stdexcept>

#include "collect/rawview.hpp"
#include "util/strings.hpp"

namespace tacc::collect {

namespace {

void append_u64(std::string& out, std::uint64_t v) {
  char buf[20];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, res.ptr);
}

void append_i64(std::string& out, std::int64_t v) {
  char buf[21];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, res.ptr);
}

void append_record(std::string& out, const Record& record) {
  append_i64(out, record.time / util::kSecond);
  out += ' ';
  if (record.jobids.empty()) {
    out += '-';
  } else {
    for (std::size_t i = 0; i < record.jobids.size(); ++i) {
      if (i) out += ',';
      append_i64(out, record.jobids[i]);
    }
  }
  if (!record.mark.empty()) {
    out += ' ';
    out += record.mark;
  }
  out += '\n';
  for (const auto& b : record.blocks) {
    out += b.type;
    out += ' ';
    if (b.device.empty()) {
      out += '-';
    } else {
      out += b.device;
    }
    for (const std::uint64_t v : b.values) {
      out += ' ';
      append_u64(out, v);
    }
    out += '\n';
  }
}

/// Appends owning Records from the view stream, replicating the legacy
/// parser's partial-progress contract: the record lands in `records`
/// before its data rows parse, so a throw mid-record leaves the rows
/// parsed so far attached to it.
struct MaterializeSink {
  std::vector<Record>& records;
  // Records in one log share a shape, so the previous record's block
  // count is a near-exact reserve hint for the next.
  std::size_t block_hint = 0;

  void record(const RecordView& r) {
    if (!records.empty()) block_hint = records.back().blocks.size();
    Record rec;
    rec.time = r.time;
    rec.jobids.assign(r.jobids.begin(), r.jobids.end());
    rec.mark = std::string(r.mark);
    rec.blocks.reserve(block_hint);
    records.push_back(std::move(rec));
  }

  void block(const RawBlockView& b) {
    RawBlock blk;
    blk.type = std::string(b.type);
    blk.device = std::string(b.device);
    blk.values.assign(b.values.begin(), b.values.end());
    records.back().blocks.push_back(std::move(blk));
  }
};

}  // namespace

const Schema* HostLog::schema_for(std::string_view type) const noexcept {
  if (schema_index_.size() == schemas.size() && !schema_index_.empty()) {
    // Contract (see header): a same-size index is current, i.e. sorted
    // over today's schemas. Size-changing mutations of `schemas` are
    // tolerated (the index is ignored as stale); in-place edits without
    // reindex_schemas() are unsupported — lower_bound over an unsorted
    // range would be UB. Enforced here in debug builds.
    assert(std::is_sorted(schema_index_.begin(), schema_index_.end(),
                          [this](std::uint32_t a, std::uint32_t b) noexcept {
                            return schemas[a].type() < schemas[b].type();
                          }) &&
           "schemas edited in place without reindex_schemas()");
    const auto it = std::lower_bound(
        schema_index_.begin(), schema_index_.end(), type,
        [this](std::uint32_t i, std::string_view t) noexcept {
          return schemas[i].type() < t;
        });
    if (it != schema_index_.end() && schemas[*it].type() == type) {
      return &schemas[*it];
    }
    return nullptr;
  }
  for (const auto& s : schemas) {
    if (s.type() == type) return &s;
  }
  return nullptr;
}

void HostLog::reindex_schemas() {
  schema_index_.resize(schemas.size());
  for (std::uint32_t i = 0; i < schema_index_.size(); ++i) {
    schema_index_[i] = i;
  }
  std::sort(schema_index_.begin(), schema_index_.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              return schemas[a].type() < schemas[b].type();
            });
}

std::string HostLog::serialize_header() const {
  std::string out;
  out += '$';
  out += kFormatTag;
  out += '\n';
  out += "$hostname ";
  out += hostname;
  out += '\n';
  out += "$arch ";
  out += arch;
  out += '\n';
  for (const auto& s : schemas) {
    out += s.spec_line();
    out += '\n';
  }
  return out;
}

std::string HostLog::serialize_record(const Record& record) {
  std::string out;
  append_record(out, record);
  return out;
}

std::string HostLog::serialize() const {
  std::string out = serialize_header();
  for (const auto& r : records) append_record(out, r);
  return out;
}

void HostLog::parse_records(std::string_view body) {
  // One parser per thread so repeated parses (the daemon consumer decodes
  // one message body per record) reuse the same arena slabs and token
  // scratch: zero heap allocations from the scan itself in steady state.
  static thread_local RecordViewParser parser;
  MaterializeSink sink{records};
  parser.parse_body(*this, body, sink);
}

std::size_t HostLog::parse_header(std::string_view text) {
  std::size_t body_start = 0;
  bool saw_format = false;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    const std::string_view line = text.substr(pos, eol - pos);
    const std::size_t line_end = eol < text.size() ? eol + 1 : text.size();
    if (!line.empty() && line[0] == '$') {
      const std::string_view rest = line.substr(1);
      if (rest == kFormatTag) {
        saw_format = true;
      } else if (util::starts_with(rest, "hostname ")) {
        hostname = std::string(util::trim(rest.substr(9)));
      } else if (util::starts_with(rest, "arch ")) {
        arch = std::string(util::trim(rest.substr(5)));
      } else {
        throw std::invalid_argument("unknown header line: " +
                                    std::string(line));
      }
      body_start = line_end;
      pos = line_end;
      continue;
    }
    if (!line.empty() && line[0] == '!') {
      schemas.push_back(Schema::parse(line));
      body_start = line_end;
      pos = line_end;
      continue;
    }
    break;  // first non-header line: body begins
  }
  if (!saw_format) {
    throw std::invalid_argument("missing $tacc_stats format line");
  }
  reindex_schemas();
  return body_start;
}

HostLog HostLog::parse(std::string_view text) {
  HostLog log;
  const std::size_t body_start = log.parse_header(text);
  if (body_start < text.size()) {
    log.parse_records(text.substr(body_start));
  }
  return log;
}

}  // namespace tacc::collect
