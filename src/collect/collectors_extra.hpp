// The remaining device collectors of the tool's standard set (Ref [3]
// Table I: block, numa, vm, vfs, sysv_shm, tmpfs). These are collected into
// the raw stream but are not part of the paper's per-job Table I metrics.
#pragma once

#include "collect/collector.hpp"

namespace tacc::collect {

/// NUMA allocation counters per node, from sysfs numastat.
class NumaCollector final : public Collector {
 public:
  NumaCollector();
  const Schema& schema() const noexcept override { return schema_; }
  void collect(const simhw::Node& node,
               std::vector<RawBlock>& out) const override;

 private:
  Schema schema_;
};

/// Kernel VM activity, from /proc/vmstat.
class VmCollector final : public Collector {
 public:
  VmCollector();
  const Schema& schema() const noexcept override { return schema_; }
  void collect(const simhw::Node& node,
               std::vector<RawBlock>& out) const override;

 private:
  Schema schema_;
};

/// Local block device statistics, from /sys/block/<dev>/stat.
class BlockCollector final : public Collector {
 public:
  BlockCollector();
  const Schema& schema() const noexcept override { return schema_; }
  void collect(const simhw::Node& node,
               std::vector<RawBlock>& out) const override;

 private:
  Schema schema_;
};

/// VFS object gauges, from /proc/sys/fs.
class VfsCollector final : public Collector {
 public:
  VfsCollector();
  const Schema& schema() const noexcept override { return schema_; }
  void collect(const simhw::Node& node,
               std::vector<RawBlock>& out) const override;

 private:
  Schema schema_;
};

/// SysV shared-memory gauges, from /proc/sysvipc/shm.
class SysvShmCollector final : public Collector {
 public:
  SysvShmCollector();
  const Schema& schema() const noexcept override { return schema_; }
  void collect(const simhw::Node& node,
               std::vector<RawBlock>& out) const override;

 private:
  Schema schema_;
};

/// tmpfs (/dev/shm) usage gauge.
class TmpfsCollector final : public Collector {
 public:
  TmpfsCollector();
  const Schema& schema() const noexcept override { return schema_; }
  void collect(const simhw::Node& node,
               std::vector<RawBlock>& out) const override;

 private:
  Schema schema_;
};

}  // namespace tacc::collect
