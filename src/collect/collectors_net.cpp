// Network collectors: InfiniBand port counters, GigE, LNET.
#include "collect/collectors.hpp"
#include "util/strings.hpp"

namespace tacc::collect {

IbCollector::IbCollector()
    : schema_("ib", {// Data counters are reported by the HCA in 4-byte
                     // words; scale converts to bytes downstream.
                     {"port_rcv_data", true, 64, "bytes", 4.0},
                     {"port_xmit_data", true, 64, "bytes", 4.0},
                     {"port_rcv_pkts", true, 64, "packets", 1.0},
                     {"port_xmit_pkts", true, 64, "packets", 1.0}}) {}

void IbCollector::collect(const simhw::Node& node,
                          std::vector<RawBlock>& out) const {
  for (const auto& hca : node.list_dir("/sys/class/infiniband")) {
    const std::string base =
        "/sys/class/infiniband/" + hca + "/ports/1/counters_ext/";
    auto read_counter = [&](const char* name) -> std::uint64_t {
      const auto text = node.read_file(base + name);
      if (!text) return 0;
      return util::parse_u64(util::trim(*text)).value_or(0);
    };
    out.push_back(RawBlock{schema_.type(),
                           hca,
                           {read_counter("port_rcv_data_64"),
                            read_counter("port_xmit_data_64"),
                            read_counter("port_rcv_pkts_64"),
                            read_counter("port_xmit_pkts_64")}});
  }
}

NetCollector::NetCollector()
    : schema_("net", {{"rx_bytes", true, 64, "bytes", 1.0},
                      {"rx_packets", true, 64, "packets", 1.0},
                      {"tx_bytes", true, 64, "bytes", 1.0},
                      {"tx_packets", true, 64, "packets", 1.0}}) {}

void NetCollector::collect(const simhw::Node& node,
                           std::vector<RawBlock>& out) const {
  const auto text = node.read_file("/proc/net/dev");
  if (!text) return;
  for (const auto line : util::split_lines(*text)) {
    const auto trimmed = util::trim(line);
    if (!util::starts_with(trimmed, "eth")) continue;
    const auto colon = trimmed.find(':');
    if (colon == std::string_view::npos) continue;
    const std::string iface(trimmed.substr(0, colon));
    const auto fields = util::split_ws(trimmed.substr(colon + 1));
    if (fields.size() < 12) continue;
    out.push_back(RawBlock{schema_.type(),
                           iface,
                           {util::parse_u64(fields[0]).value_or(0),
                            util::parse_u64(fields[1]).value_or(0),
                            util::parse_u64(fields[8]).value_or(0),
                            util::parse_u64(fields[9]).value_or(0)}});
  }
}

LnetCollector::LnetCollector()
    : schema_("lnet", {{"tx_msgs", true, 64, "msgs", 1.0},
                       {"rx_msgs", true, 64, "msgs", 1.0},
                       {"tx_bytes", true, 64, "bytes", 1.0},
                       {"rx_bytes", true, 64, "bytes", 1.0}}) {}

void LnetCollector::collect(const simhw::Node& node,
                            std::vector<RawBlock>& out) const {
  const auto text = node.read_file("/proc/sys/lnet/stats");
  if (!text) return;
  const auto fields = util::split_ws(util::trim(*text));
  // Layout: msgs_alloc msgs_max errors send_count recv_count route_count
  //         drop_count send_length recv_length route_length drop_length
  if (fields.size() < 11) return;
  out.push_back(RawBlock{schema_.type(),
                         {},
                         {util::parse_u64(fields[3]).value_or(0),
                          util::parse_u64(fields[4]).value_or(0),
                          util::parse_u64(fields[7]).value_or(0),
                          util::parse_u64(fields[8]).value_or(0)}});
}

}  // namespace tacc::collect
