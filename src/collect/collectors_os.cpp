// OS-level collectors: memory gauges, per-process procfs data, Xeon Phi.
#include "collect/collectors.hpp"
#include "util/strings.hpp"

namespace tacc::collect {
namespace {

std::uint64_t meminfo_kb(std::string_view text, std::string_view key) {
  for (const auto line : util::split_lines(text)) {
    if (!util::starts_with(line, key)) continue;
    const auto fields = util::split_ws(line);
    if (fields.size() >= 2) return util::parse_u64(fields[1]).value_or(0);
  }
  return 0;
}

/// Extracts "<Key>:\t  <value> kB" or plain integer fields from a
/// /proc/<pid>/status rendering.
std::uint64_t status_field(std::string_view text, std::string_view key) {
  for (const auto line : util::split_lines(text)) {
    if (!util::starts_with(line, key)) continue;
    const auto rest = util::trim(line.substr(key.size()));
    const auto fields = util::split_ws(rest);
    if (fields.empty()) return 0;
    return util::parse_u64(fields[0]).value_or(0);
  }
  return 0;
}

std::uint64_t status_hex_field(std::string_view text, std::string_view key) {
  for (const auto line : util::split_lines(text)) {
    if (!util::starts_with(line, key)) continue;
    const auto rest = util::trim(line.substr(key.size()));
    std::uint64_t v = 0;
    for (char c : rest) {
      if (c >= '0' && c <= '9') {
        v = v * 16 + static_cast<std::uint64_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v = v * 16 + static_cast<std::uint64_t>(c - 'a' + 10);
      } else {
        break;
      }
    }
    return v;
  }
  return 0;
}

std::string status_name(std::string_view text) {
  for (const auto line : util::split_lines(text)) {
    if (!util::starts_with(line, "Name:")) continue;
    return std::string(util::trim(line.substr(5)));
  }
  return "?";
}

}  // namespace

MemCollector::MemCollector()
    : schema_("mem", {{"MemTotal", false, 64, "KB", 1.0},
                      {"MemFree", false, 64, "KB", 1.0},
                      {"Cached", false, 64, "KB", 1.0},
                      {"MemUsed", false, 64, "KB", 1.0}}) {}

void MemCollector::collect(const simhw::Node& node,
                           std::vector<RawBlock>& out) const {
  const auto text = node.read_file("/proc/meminfo");
  if (!text) return;
  const std::uint64_t total = meminfo_kb(*text, "MemTotal:");
  const std::uint64_t free_kb = meminfo_kb(*text, "MemFree:");
  const std::uint64_t cached = meminfo_kb(*text, "Cached:");
  const std::uint64_t used =
      total > free_kb + cached ? total - free_kb - cached : 0;
  out.push_back(
      RawBlock{schema_.type(), {}, {total, free_kb, cached, used}});
}

PsCollector::PsCollector()
    : schema_("ps", {{"uid", false, 64, "", 1.0},
                     {"vm_peak", false, 64, "KB", 1.0},
                     {"vm_size", false, 64, "KB", 1.0},
                     {"vm_lck", false, 64, "KB", 1.0},
                     {"vm_hwm", false, 64, "KB", 1.0},
                     {"vm_rss", false, 64, "KB", 1.0},
                     {"vm_data", false, 64, "KB", 1.0},
                     {"vm_stk", false, 64, "KB", 1.0},
                     {"vm_exe", false, 64, "KB", 1.0},
                     {"threads", false, 64, "", 1.0},
                     {"cpus_allowed", false, 64, "mask", 1.0},
                     {"mems_allowed", false, 64, "mask", 1.0}}) {}

void PsCollector::collect(const simhw::Node& node,
                          std::vector<RawBlock>& out) const {
  for (const int pid : node.list_pids()) {
    const auto text =
        node.read_file("/proc/" + std::to_string(pid) + "/status");
    if (!text) continue;  // raced with process exit
    RawBlock block;
    block.type = schema_.type();
    block.device = std::to_string(pid) + ":" + status_name(*text);
    block.values = {status_field(*text, "Uid:"),
                    status_field(*text, "VmPeak:"),
                    status_field(*text, "VmSize:"),
                    status_field(*text, "VmLck:"),
                    status_field(*text, "VmHWM:"),
                    status_field(*text, "VmRSS:"),
                    status_field(*text, "VmData:"),
                    status_field(*text, "VmStk:"),
                    status_field(*text, "VmExe:"),
                    status_field(*text, "Threads:"),
                    status_hex_field(*text, "Cpus_allowed:"),
                    status_hex_field(*text, "Mems_allowed:")};
    out.push_back(std::move(block));
  }
}

MicCollector::MicCollector()
    : schema_("mic", {{"user", true, 64, "jiffies", 1.0},
                      {"sys", true, 64, "jiffies", 1.0},
                      {"idle", true, 64, "jiffies", 1.0}}) {}

void MicCollector::collect(const simhw::Node& node,
                           std::vector<RawBlock>& out) const {
  for (const auto& mic : node.list_dir("/sys/class/mic")) {
    const auto text = node.read_file("/sys/class/mic/" + mic + "/stats");
    if (!text) continue;
    const auto fields = util::split_ws(util::trim(*text));
    // "user: N nice: 0 sys: N idle: N"
    if (fields.size() < 8) continue;
    out.push_back(RawBlock{schema_.type(),
                           mic,
                           {util::parse_u64(fields[1]).value_or(0),
                            util::parse_u64(fields[5]).value_or(0),
                            util::parse_u64(fields[7]).value_or(0)}});
  }
}

}  // namespace tacc::collect
