#include "collect/registry.hpp"

#include "collect/collectors.hpp"
#include "collect/collectors_extra.hpp"
#include "util/log.hpp"

namespace tacc::collect {

std::vector<CollectorPtr> make_collectors(simhw::Node& node,
                                          const BuildOptions& options) {
  std::vector<CollectorPtr> out;
  out.push_back(std::make_unique<CpuCollector>());
  if (auto pmc = PmcCollector::probe(node)) {
    out.push_back(std::move(pmc));
  } else {
    const auto id = node.cpuid();
    TS_LOG(Warn, "registry") << "unknown CPUID " << id.family << "/"
                             << id.model
                             << "; core counters disabled on "
                             << node.hostname();
  }
  out.push_back(std::make_unique<ImcCollector>());
  out.push_back(std::make_unique<QpiCollector>());
  out.push_back(std::make_unique<RaplCollector>());
  out.push_back(std::make_unique<MemCollector>());
  out.push_back(std::make_unique<PsCollector>());
  out.push_back(std::make_unique<NumaCollector>());
  out.push_back(std::make_unique<VmCollector>());
  out.push_back(std::make_unique<BlockCollector>());
  out.push_back(std::make_unique<VfsCollector>());
  out.push_back(std::make_unique<SysvShmCollector>());
  out.push_back(std::make_unique<TmpfsCollector>());
  if (options.with_ib) out.push_back(std::make_unique<IbCollector>());
  if (options.with_phi) out.push_back(std::make_unique<MicCollector>());
  if (options.with_lustre) {
    out.push_back(std::make_unique<LliteCollector>());
    out.push_back(std::make_unique<MdcCollector>());
    out.push_back(std::make_unique<OscCollector>());
    out.push_back(std::make_unique<LnetCollector>());
  }
  out.push_back(std::make_unique<NetCollector>());
  for (auto& c : out) c->configure(node);
  return out;
}

HostSampler::HostSampler(simhw::Node& node, const BuildOptions& options)
    : node_(&node), collectors_(make_collectors(node, options)) {}

std::vector<Schema> HostSampler::schemas() const {
  std::vector<Schema> out;
  out.reserve(collectors_.size());
  for (const auto& c : collectors_) out.push_back(c->schema());
  return out;
}

HostLog HostSampler::make_log() const {
  HostLog log;
  log.hostname = node_->hostname();
  log.arch = node_->arch().codename;
  log.schemas = schemas();
  return log;
}

Record HostSampler::sample(util::SimTime time, std::vector<long> jobids,
                           std::string mark) const {
  Record rec;
  rec.time = time;
  rec.jobids = std::move(jobids);
  rec.mark = std::move(mark);
  for (const auto& c : collectors_) c->collect(*node_, rec.blocks);
  return rec;
}

}  // namespace tacc::collect
