// Collector registry and per-host sampler.
//
// `make_collectors` reproduces the paper's auto-configuration (section
// III-B): the processor architecture and uncore devices are identified at
// runtime from CPUID, the topology decides the PMC budget, and only three
// options are fixed at build time — whether to look for InfiniBand,
// Xeon Phi, and Lustre support. If any of those devices is absent at run
// time the collectors simply emit nothing.
#pragma once

#include <string>
#include <vector>

#include "collect/collector.hpp"

namespace tacc::collect {

/// The three compile-time options of the real tool.
struct BuildOptions {
  bool with_ib = true;
  bool with_phi = true;
  bool with_lustre = true;
};

/// Builds the full collector set for a node: cpu, arch PMCs (if the CPUID
/// signature is known), uncore iMC/QPI (PCI-based archs only), RAPL, mem,
/// ps, plus the optional IB/Phi/Lustre collectors. Each collector is
/// `configure`d against the node (PMC event selects programmed).
std::vector<CollectorPtr> make_collectors(simhw::Node& node,
                                          const BuildOptions& options = {});

/// Owns the collector set for one node and produces Records.
class HostSampler {
 public:
  explicit HostSampler(simhw::Node& node, const BuildOptions& options = {});

  const simhw::Node& node() const noexcept { return *node_; }
  const std::vector<CollectorPtr>& collectors() const noexcept {
    return collectors_;
  }

  /// All schemas, in collection order (for the HostLog header).
  std::vector<Schema> schemas() const;

  /// An empty HostLog carrying this host's identity and schemas.
  HostLog make_log() const;

  /// Runs every collector once. Throws simhw::NodeFailedError if the node
  /// is down.
  Record sample(util::SimTime time, std::vector<long> jobids,
                std::string mark = {}) const;

 private:
  simhw::Node* node_;
  std::vector<CollectorPtr> collectors_;
};

}  // namespace tacc::collect
