#include "collect/collectors_extra.hpp"

#include "util/strings.hpp"

namespace tacc::collect {
namespace {

std::uint64_t field_after(std::string_view text, std::string_view key) {
  for (const auto line : util::split_lines(text)) {
    const auto fields = util::split_ws(line);
    if (fields.size() >= 2 && fields[0] == key) {
      return util::parse_u64(fields[1]).value_or(0);
    }
  }
  return 0;
}

}  // namespace

NumaCollector::NumaCollector()
    : schema_("numa", {{"numa_hit", true, 64, "pages", 1.0},
                       {"numa_miss", true, 64, "pages", 1.0},
                       {"numa_foreign", true, 64, "pages", 1.0},
                       {"local_node", true, 64, "pages", 1.0},
                       {"other_node", true, 64, "pages", 1.0}}) {}

void NumaCollector::collect(const simhw::Node& node,
                            std::vector<RawBlock>& out) const {
  for (const auto& entry : node.list_dir("/sys/devices/system/node")) {
    const auto text =
        node.read_file("/sys/devices/system/node/" + entry + "/numastat");
    if (!text) continue;
    out.push_back(RawBlock{schema_.type(),
                           entry.substr(4),  // "node0" -> "0"
                           {field_after(*text, "numa_hit"),
                            field_after(*text, "numa_miss"),
                            field_after(*text, "numa_foreign"),
                            field_after(*text, "local_node"),
                            field_after(*text, "other_node")}});
  }
}

VmCollector::VmCollector()
    : schema_("vm", {{"pgpgin", true, 64, "KB", 1.0},
                     {"pgpgout", true, 64, "KB", 1.0},
                     {"pswpin", true, 64, "pages", 1.0},
                     {"pswpout", true, 64, "pages", 1.0},
                     {"pgfault", true, 64, "faults", 1.0},
                     {"pgmajfault", true, 64, "faults", 1.0}}) {}

void VmCollector::collect(const simhw::Node& node,
                          std::vector<RawBlock>& out) const {
  const auto text = node.read_file("/proc/vmstat");
  if (!text) return;
  out.push_back(RawBlock{schema_.type(),
                         {},
                         {field_after(*text, "pgpgin"),
                          field_after(*text, "pgpgout"),
                          field_after(*text, "pswpin"),
                          field_after(*text, "pswpout"),
                          field_after(*text, "pgfault"),
                          field_after(*text, "pgmajfault")}});
}

BlockCollector::BlockCollector()
    : schema_("block", {// Sector counters scale to bytes (512 B sectors).
                        {"rd_ios", true, 64, "ios", 1.0},
                        {"rd_bytes", true, 64, "bytes", 512.0},
                        {"wr_ios", true, 64, "ios", 1.0},
                        {"wr_bytes", true, 64, "bytes", 512.0},
                        {"io_ticks", true, 64, "ms", 1.0}}) {}

void BlockCollector::collect(const simhw::Node& node,
                             std::vector<RawBlock>& out) const {
  for (const auto& dev : node.list_dir("/sys/block")) {
    const auto text = node.read_file("/sys/block/" + dev + "/stat");
    if (!text) continue;
    const auto fields = util::split_ws(util::trim(*text));
    if (fields.size() < 11) continue;
    out.push_back(RawBlock{schema_.type(),
                           dev,
                           {util::parse_u64(fields[0]).value_or(0),
                            util::parse_u64(fields[2]).value_or(0),
                            util::parse_u64(fields[4]).value_or(0),
                            util::parse_u64(fields[6]).value_or(0),
                            util::parse_u64(fields[9]).value_or(0)}});
  }
}

VfsCollector::VfsCollector()
    : schema_("vfs", {{"dentry_use", false, 64, "objs", 1.0},
                      {"inode_use", false, 64, "objs", 1.0},
                      {"file_use", false, 64, "objs", 1.0}}) {}

void VfsCollector::collect(const simhw::Node& node,
                           std::vector<RawBlock>& out) const {
  const auto dentry = node.read_file("/proc/sys/fs/dentry-state");
  const auto inode = node.read_file("/proc/sys/fs/inode-nr");
  const auto file = node.read_file("/proc/sys/fs/file-nr");
  if (!dentry || !inode || !file) return;
  auto first = [](const std::string& text) {
    const auto fields = util::split_ws(util::trim(text));
    return fields.empty() ? 0
                          : util::parse_u64(fields[0]).value_or(0);
  };
  out.push_back(RawBlock{
      schema_.type(), {}, {first(*dentry), first(*inode), first(*file)}});
}

SysvShmCollector::SysvShmCollector()
    : schema_("sysv_shm", {{"segments", false, 64, "segs", 1.0},
                           {"bytes", false, 64, "bytes", 1.0}}) {}

void SysvShmCollector::collect(const simhw::Node& node,
                               std::vector<RawBlock>& out) const {
  const auto text = node.read_file("/proc/sysvipc/shm");
  if (!text) return;
  std::uint64_t segments = 0;
  std::uint64_t bytes = 0;
  bool header = true;
  for (const auto line : util::split_lines(*text)) {
    if (header) {
      header = false;
      continue;
    }
    const auto fields = util::split_ws(line);
    if (fields.size() < 7) continue;
    bytes += util::parse_u64(fields[3]).value_or(0);
    segments += util::parse_u64(fields[6]).value_or(0);
  }
  out.push_back(RawBlock{schema_.type(), {}, {segments, bytes}});
}

TmpfsCollector::TmpfsCollector()
    : schema_("tmpfs", {{"bytes_used", false, 64, "bytes", 1.0}}) {}

void TmpfsCollector::collect(const simhw::Node& node,
                             std::vector<RawBlock>& out) const {
  const auto text = node.read_file("/sys/kernel/mm/tmpfs_bytes");
  if (!text) return;
  out.push_back(RawBlock{
      schema_.type(), "shm",
      {util::parse_u64(util::trim(*text)).value_or(0)}});
}

}  // namespace tacc::collect
