// Uncore (iMC, QPI) and RAPL energy collectors.
#include "collect/collectors.hpp"
#include "simhw/msr.hpp"
#include "simhw/pci.hpp"

namespace tacc::collect {

namespace pci = simhw::pci;
namespace msr = simhw::msr;

// Microjoules per raw RAPL register unit (2^-16 J).
static constexpr double kRaplScaleUj = 1.0e6 / 65536.0;

ImcCollector::ImcCollector()
    : schema_("imc",
              {{"cas_reads", true, pci::kUncoreCounterBits, "lines", 1.0},
               {"cas_writes", true, pci::kUncoreCounterBits, "lines", 1.0}}) {}

void ImcCollector::collect(const simhw::Node& node,
                           std::vector<RawBlock>& out) const {
  for (int s = 0; s < node.topology().sockets; ++s) {
    const auto reads = node.pci_read64(pci::bus_of_socket(s), pci::kImcDevice,
                                       pci::kImcFunction,
                                       pci::kImcCasReadsOffset);
    const auto writes = node.pci_read64(pci::bus_of_socket(s), pci::kImcDevice,
                                        pci::kImcFunction,
                                        pci::kImcCasWritesOffset);
    if (!reads || !writes) return;  // uncore not PCI-based on this arch
    out.push_back(
        RawBlock{schema_.type(), std::to_string(s), {*reads, *writes}});
  }
}

QpiCollector::QpiCollector()
    : schema_("qpi",
              {{"data_flits", true, pci::kUncoreCounterBits, "flits", 1.0}}) {}

void QpiCollector::collect(const simhw::Node& node,
                           std::vector<RawBlock>& out) const {
  for (int s = 0; s < node.topology().sockets; ++s) {
    const auto flits =
        node.pci_read64(pci::bus_of_socket(s), pci::kQpiDevice,
                        pci::kQpiFunction, pci::kQpiDataFlitsOffset);
    if (!flits) return;
    out.push_back(RawBlock{schema_.type(), std::to_string(s), {*flits}});
  }
}

RaplCollector::RaplCollector()
    : schema_("rapl",
              {{"energy_pkg", true, msr::kRaplCounterBits, "uJ", kRaplScaleUj},
               {"energy_cores", true, msr::kRaplCounterBits, "uJ",
                kRaplScaleUj},
               {"energy_dram", true, msr::kRaplCounterBits, "uJ",
                kRaplScaleUj}}) {}

void RaplCollector::collect(const simhw::Node& node,
                            std::vector<RawBlock>& out) const {
  const auto& topo = node.topology();
  for (int s = 0; s < topo.sockets; ++s) {
    // Read from the first cpu of the socket, as rdmsr would.
    const int cpu = s * topo.cores_per_socket;
    out.push_back(RawBlock{schema_.type(),
                           std::to_string(s),
                           {node.read_msr(cpu, msr::kPkgEnergyStatus),
                            node.read_msr(cpu, msr::kPp0EnergyStatus),
                            node.read_msr(cpu, msr::kDramEnergyStatus)}});
  }
}

}  // namespace tacc::collect
