// The concrete device collectors (paper section III-B). Each one reads the
// same surface the C tool reads: procfs/sysfs text, MSRs, or PCI config
// space.
#pragma once

#include "collect/collector.hpp"

namespace tacc::collect {

/// Scheduler accounting per logical cpu, from /proc/stat.
class CpuCollector final : public Collector {
 public:
  CpuCollector();
  const Schema& schema() const noexcept override { return schema_; }
  void collect(const simhw::Node& node,
               std::vector<RawBlock>& out) const override;

 private:
  Schema schema_;
};

/// Core performance counters, from MSRs. The schema type is the
/// architecture codename (hsw, snb, ...) and its entries depend on the PMC
/// budget: 4 programmable events with hyperthreading, 8 without, plus the
/// fixed-function instructions/cycles counters. Construct via `probe`.
class PmcCollector final : public Collector {
 public:
  /// Builds the collector for the node's detected architecture/topology.
  /// Returns nullptr for unknown CPUID signatures.
  static std::unique_ptr<PmcCollector> probe(const simhw::Node& node);

  const Schema& schema() const noexcept override { return schema_; }
  void configure(simhw::Node& node) override;
  void collect(const simhw::Node& node,
               std::vector<RawBlock>& out) const override;

 private:
  PmcCollector(const simhw::ArchSpec& spec, int pmcs);
  const simhw::ArchSpec& spec_;
  int pmcs_;  // programmable counters used
  Schema schema_;
};

/// Uncore iMC CAS counters (memory bandwidth), from PCI config space.
/// Emits nothing on architectures whose uncore is not PCI-based.
class ImcCollector final : public Collector {
 public:
  ImcCollector();
  const Schema& schema() const noexcept override { return schema_; }
  void collect(const simhw::Node& node,
               std::vector<RawBlock>& out) const override;

 private:
  Schema schema_;
};

/// Uncore QPI data-flit counters, from PCI config space.
class QpiCollector final : public Collector {
 public:
  QpiCollector();
  const Schema& schema() const noexcept override { return schema_; }
  void collect(const simhw::Node& node,
               std::vector<RawBlock>& out) const override;

 private:
  Schema schema_;
};

/// RAPL energy counters per socket, from MSRs. Values are raw register
/// units (2^-16 J); the schema scale converts to microjoules downstream,
/// and the 32-bit width drives wrap correction.
class RaplCollector final : public Collector {
 public:
  RaplCollector();
  const Schema& schema() const noexcept override { return schema_; }
  void collect(const simhw::Node& node,
               std::vector<RawBlock>& out) const override;

 private:
  Schema schema_;
};

/// InfiniBand port counters from sysfs. Data counters are in 4-byte words
/// (schema scale 4 -> bytes).
class IbCollector final : public Collector {
 public:
  IbCollector();
  const Schema& schema() const noexcept override { return schema_; }
  void collect(const simhw::Node& node,
               std::vector<RawBlock>& out) const override;

 private:
  Schema schema_;
};

/// GigE counters from /proc/net/dev (eth0).
class NetCollector final : public Collector {
 public:
  NetCollector();
  const Schema& schema() const noexcept override { return schema_; }
  void collect(const simhw::Node& node,
               std::vector<RawBlock>& out) const override;

 private:
  Schema schema_;
};

/// Lustre llite (VFS-level) stats: file opens/closes and read/write bytes.
class LliteCollector final : public Collector {
 public:
  LliteCollector();
  const Schema& schema() const noexcept override { return schema_; }
  void collect(const simhw::Node& node,
               std::vector<RawBlock>& out) const override;

 private:
  Schema schema_;
};

/// Lustre metadata-client stats: request count and summed wait time.
class MdcCollector final : public Collector {
 public:
  MdcCollector();
  const Schema& schema() const noexcept override { return schema_; }
  void collect(const simhw::Node& node,
               std::vector<RawBlock>& out) const override;

 private:
  Schema schema_;
};

/// Lustre object-storage-client stats, one block per OST target.
class OscCollector final : public Collector {
 public:
  OscCollector();
  const Schema& schema() const noexcept override { return schema_; }
  void collect(const simhw::Node& node,
               std::vector<RawBlock>& out) const override;

 private:
  Schema schema_;
};

/// LNET counters (Lustre traffic on the fabric), from /proc/sys/lnet/stats.
class LnetCollector final : public Collector {
 public:
  LnetCollector();
  const Schema& schema() const noexcept override { return schema_; }
  void collect(const simhw::Node& node,
               std::vector<RawBlock>& out) const override;

 private:
  Schema schema_;
};

/// Node memory gauges from /proc/meminfo (MemUsed = Total - Free - Cached).
class MemCollector final : public Collector {
 public:
  MemCollector();
  const Schema& schema() const noexcept override { return schema_; }
  void collect(const simhw::Node& node,
               std::vector<RawBlock>& out) const override;

 private:
  Schema schema_;
};

/// Per-process data from procfs (section III-B item 4): virtual-memory
/// sizes and high-water marks, thread count, affinities. The block device
/// id is "<pid>:<executable>".
class PsCollector final : public Collector {
 public:
  PsCollector();
  const Schema& schema() const noexcept override { return schema_; }
  void collect(const simhw::Node& node,
               std::vector<RawBlock>& out) const override;

 private:
  Schema schema_;
};

/// Xeon Phi utilization, accessed from the host.
class MicCollector final : public Collector {
 public:
  MicCollector();
  const Schema& schema() const noexcept override { return schema_; }
  void collect(const simhw::Node& node,
               std::vector<RawBlock>& out) const override;

 private:
  Schema schema_;
};

}  // namespace tacc::collect
