// Zero-copy view parser for raw stats record bodies.
//
// HostLog::parse_records materializes owning Records (strings + vectors,
// several heap allocations per line); that is the right shape for the
// archive but far too slow as a decode loop. RecordViewParser instead
// walks the body with util::SimdScanner and emits *views*: string_views
// into the input buffer plus arena-backed spans for the numeric payloads
// (job-id lists, counter values). A parser instance reused across
// records/bodies performs zero heap allocations in steady state — the
// arena slabs and the token scratch vector are retained and reused.
//
// The sink receives one call per line, in input order:
//
//   sink.record(const RecordView&)  — a digit-led timestamp line
//   sink.block(const RawBlockView&) — a "type device v0 v1 ..." data row
//                                     belonging to the last record
//
// Lifetime: every view handed to the sink is valid only until the NEXT
// sink.record() call (the arena rewinds per record) or the end of
// parse_body. Sinks that need longer-lived data must copy.
//
// Error semantics are bit-for-bit those of the legacy parser: the same
// std::invalid_argument messages, thrown at the same input positions, and
// the same partial-progress contract (everything before the bad line has
// already been delivered to the sink; a record line is delivered only if
// it parsed completely). A property test pins this equivalence against
// the materializing wrapper on seeded random and mutated inputs.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "collect/rawfile.hpp"
#include "util/arena.hpp"
#include "util/clock.hpp"
#include "util/simd_scan.hpp"
#include "util/strings.hpp"

namespace tacc::collect {

/// View equivalent of Record (minus blocks, which stream separately).
struct RecordView {
  util::SimTime time = 0;
  std::span<const long> jobids;  // arena-backed; empty = no job
  std::string_view mark;         // into the input buffer
};

/// View equivalent of RawBlock, with the schema already resolved.
struct RawBlockView {
  std::string_view type;    // into the input buffer
  std::string_view device;  // empty if the row said "-"
  const Schema* schema = nullptr;  // never null when delivered
  std::span<const std::uint64_t> values;  // arena-backed, schema arity
};

namespace detail {

/// util::parse_u64 with a fast path for the dominant case: at most 19
/// plain digits, which cannot overflow a u64. Anything else — empty, a
/// sign, a non-digit, 20+ digits — takes the from_chars path, so the
/// accept/reject behavior is exactly parse_u64's.
inline std::optional<std::uint64_t> parse_counter(
    std::string_view s) noexcept {
  if (s.empty() || s.size() > 19) return util::parse_u64(s);
  std::uint64_t v = 0;
  for (const char c : s) {
    const unsigned d = static_cast<unsigned>(c) - '0';
    if (d > 9) return std::nullopt;
    v = v * 10 + d;
  }
  return v;
}

}  // namespace detail

class RecordViewParser {
 public:
  struct Options {
    /// Classify kernel for the line scanner (Auto = TACC_SIMD env knob,
    /// then the widest the CPU supports).
    util::ScanMode scan = util::ScanMode::Auto;
    /// Arena slab size for the per-record numeric payloads.
    std::size_t arena_chunk = util::Arena::kDefaultChunkBytes;
  };

  /// What one parse_body call did, for PipelineMetrics accounting.
  /// arena_resizes and allocations are zero in steady state (second and
  /// later bodies of similar shape through the same parser).
  struct BodyStats {
    std::uint64_t bytes = 0;          // body bytes scanned
    std::uint64_t lines = 0;          // non-empty lines
    std::uint64_t records = 0;        // record lines delivered
    std::uint64_t arena_resizes = 0;  // arena slab growths
    std::uint64_t allocations = 0;    // scratch-vector growths
  };

  RecordViewParser() : RecordViewParser(Options{}) {}
  explicit RecordViewParser(Options options)
      : opts_(options), arena_(options.arena_chunk) {}

  /// Streams one body (no header lines) into `sink`. Throws
  /// std::invalid_argument on malformed input, with everything before the
  /// bad line already delivered. `log` supplies the schemas.
  template <typename Sink>
  BodyStats parse_body(const HostLog& log, std::string_view body,
                       Sink&& sink) {
    BodyStats stats;
    stats.bytes = body.size();
    const std::uint64_t arena_allocs0 = arena_.stats().chunk_allocs;
    util::SimdScanner scanner(body, opts_.scan);
    bool have_record = false;
    // One-entry schema memo: data rows arrive in device order, so runs of
    // the same type are the common case.
    std::string_view memo_type;
    const Schema* memo_schema = nullptr;
    std::size_t fields_cap = fields_.capacity();
    while (scanner.next_line(fields_)) {
      if (fields_.capacity() != fields_cap) {
        fields_cap = fields_.capacity();
        ++stats.allocations;
      }
      const std::string_view line = scanner.line();
      if (line.empty()) continue;
      ++stats.lines;
      if (line[0] >= '0' && line[0] <= '9') {
        if (fields_.empty()) {
          throw std::invalid_argument("empty record line");
        }
        const auto secs = util::parse_i64(fields_[0]);
        if (!secs) {
          throw std::invalid_argument("bad timestamp: " + std::string(line));
        }
        arena_.reset();  // invalidates the previous record's views
        RecordView rec;
        rec.time = *secs * util::kSecond;
        if (fields_.size() > 1 && fields_[1] != "-") {
          rec.jobids = parse_jobids(fields_[1], line);
        }
        if (fields_.size() > 2) rec.mark = fields_[2];
        have_record = true;
        ++stats.records;
        sink.record(rec);
        continue;
      }
      // Data row.
      if (!have_record) {
        throw std::invalid_argument("data row before any timestamp line");
      }
      if (fields_.size() < 2) {
        throw std::invalid_argument("short data row: " + std::string(line));
      }
      RawBlockView block;
      block.type = fields_[0];
      if (fields_[1] != "-") block.device = fields_[1];
      if (block.type == memo_type && memo_schema != nullptr) {
        block.schema = memo_schema;
      } else {
        block.schema = log.schema_for(block.type);
        if (block.schema == nullptr) {
          throw std::invalid_argument("data row with unknown type: " +
                                      std::string(block.type));
        }
        memo_type = block.type;
        memo_schema = block.schema;
      }
      if (fields_.size() - 2 != block.schema->size()) {
        throw std::invalid_argument("data row arity mismatch for type " +
                                    std::string(block.type));
      }
      const auto values = arena_.alloc_array<std::uint64_t>(fields_.size() - 2);
      for (std::size_t i = 2; i < fields_.size(); ++i) {
        const auto v = detail::parse_counter(fields_[i]);
        if (!v) {
          throw std::invalid_argument("bad counter value: " +
                                      std::string(fields_[i]));
        }
        values[i - 2] = *v;
      }
      block.values = values;
      sink.block(block);
    }
    stats.arena_resizes = arena_.stats().chunk_allocs - arena_allocs0;
    return stats;
  }

  /// The resolved scan mode parse_body will run with.
  util::ScanMode scan_mode() const noexcept {
    return util::resolve_scan_mode(opts_.scan);
  }

  const util::Arena& arena() const noexcept { return arena_; }

 private:
  /// Parses a comma-separated job-id list into an arena span. `line` is
  /// the full raw line, for the error message.
  std::span<const long> parse_jobids(std::string_view list,
                                     std::string_view line);

  Options opts_;
  util::Arena arena_;
  std::vector<std::string_view> fields_;
};

}  // namespace tacc::collect
