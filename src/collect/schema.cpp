#include "collect/schema.hpp"

#include <sstream>
#include <stdexcept>

#include "util/strings.hpp"

namespace tacc::collect {

Schema::Schema(std::string type, std::vector<SchemaEntry> entries)
    : type_(std::move(type)), entries_(std::move(entries)) {}

std::optional<std::size_t> Schema::index_of(
    std::string_view key) const noexcept {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].key == key) return i;
  }
  return std::nullopt;
}

std::string Schema::spec_line() const {
  std::ostringstream os;
  os << '!' << type_;
  for (const auto& e : entries_) {
    os << ' ' << e.key;
    if (e.cumulative) os << ",E";
    if (e.width_bits != 64) os << ",W=" << e.width_bits;
    if (!e.unit.empty()) os << ",U=" << e.unit;
    if (e.scale != 1.0) {
      char buf[32];
      std::snprintf(buf, sizeof buf, ",S=%.17g", e.scale);
      os << buf;
    }
  }
  return os.str();
}

Schema Schema::parse(std::string_view line) {
  using util::split;
  using util::split_ws;
  if (line.empty() || line[0] != '!') {
    throw std::invalid_argument("schema line must start with '!'");
  }
  const auto fields = split_ws(line.substr(1));
  if (fields.empty()) throw std::invalid_argument("schema line has no type");
  Schema s;
  s.type_ = std::string(fields[0]);
  for (std::size_t i = 1; i < fields.size(); ++i) {
    const auto parts = split(fields[i], ',');
    SchemaEntry e;
    e.key = std::string(parts[0]);
    e.cumulative = false;
    for (std::size_t p = 1; p < parts.size(); ++p) {
      const std::string_view f = parts[p];
      if (f == "E") {
        e.cumulative = true;
      } else if (util::starts_with(f, "W=")) {
        const auto w = util::parse_i64(f.substr(2));
        if (!w || *w < 1 || *w > 64) {
          throw std::invalid_argument("bad schema width: " + std::string(f));
        }
        e.width_bits = static_cast<int>(*w);
      } else if (util::starts_with(f, "U=")) {
        e.unit = std::string(f.substr(2));
      } else if (util::starts_with(f, "S=")) {
        const auto x = util::parse_f64(f.substr(2));
        if (!x) {
          throw std::invalid_argument("bad schema scale: " + std::string(f));
        }
        e.scale = *x;
      } else {
        throw std::invalid_argument("unknown schema flag: " + std::string(f));
      }
    }
    s.entries_.push_back(std::move(e));
  }
  return s;
}

std::uint64_t wrap_delta(std::uint64_t prev, std::uint64_t curr,
                         int width_bits) noexcept {
  if (width_bits >= 64) return curr - prev;  // unsigned wrap is correct
  const std::uint64_t modulus = 1ULL << width_bits;
  const std::uint64_t mask = modulus - 1;
  return (curr - prev) & mask;
}

}  // namespace tacc::collect
