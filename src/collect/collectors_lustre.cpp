// Lustre client collectors: llite (VFS), mdc (metadata), osc (object
// storage). These parse the real /proc/fs/lustre stats text layout:
//   <counter> <samples> samples [<unit>] [<min> <max> <sum>]
#include "collect/collectors.hpp"
#include "util/strings.hpp"

namespace tacc::collect {
namespace {

struct StatLine {
  std::uint64_t samples = 0;
  std::uint64_t sum = 0;  // only for [bytes]/[usec] style lines
};

/// Parses one lustre stats file into (counter name -> samples/sum).
StatLine find_stat(std::string_view text, std::string_view key) {
  for (const auto line : util::split_lines(text)) {
    const auto fields = util::split_ws(line);
    if (fields.size() < 2 || fields[0] != key) continue;
    StatLine out;
    out.samples = util::parse_u64(fields[1]).value_or(0);
    // "<key> N samples [unit] min max sum"
    if (fields.size() >= 7) {
      out.sum = util::parse_u64(fields[6]).value_or(0);
    }
    return out;
  }
  return {};
}

}  // namespace

LliteCollector::LliteCollector()
    : schema_("llite", {{"read_bytes", true, 64, "bytes", 1.0},
                        {"write_bytes", true, 64, "bytes", 1.0},
                        {"open", true, 64, "reqs", 1.0},
                        {"close", true, 64, "reqs", 1.0}}) {}

void LliteCollector::collect(const simhw::Node& node,
                             std::vector<RawBlock>& out) const {
  for (const auto& target : node.list_dir("/proc/fs/lustre/llite")) {
    const auto text =
        node.read_file("/proc/fs/lustre/llite/" + target + "/stats");
    if (!text) continue;
    out.push_back(RawBlock{schema_.type(),
                           target,
                           {find_stat(*text, "read_bytes").sum,
                            find_stat(*text, "write_bytes").sum,
                            find_stat(*text, "open").samples,
                            find_stat(*text, "close").samples}});
  }
}

MdcCollector::MdcCollector()
    : schema_("mdc", {{"reqs", true, 64, "reqs", 1.0},
                      {"wait", true, 64, "usec", 1.0}}) {}

void MdcCollector::collect(const simhw::Node& node,
                           std::vector<RawBlock>& out) const {
  for (const auto& target : node.list_dir("/proc/fs/lustre/mdc")) {
    const auto text =
        node.read_file("/proc/fs/lustre/mdc/" + target + "/stats");
    if (!text) continue;
    const auto wait = find_stat(*text, "req_waittime");
    out.push_back(
        RawBlock{schema_.type(), target, {wait.samples, wait.sum}});
  }
}

OscCollector::OscCollector()
    : schema_("osc", {{"reqs", true, 64, "reqs", 1.0},
                      {"wait", true, 64, "usec", 1.0},
                      {"read_bytes", true, 64, "bytes", 1.0},
                      {"write_bytes", true, 64, "bytes", 1.0}}) {}

void OscCollector::collect(const simhw::Node& node,
                           std::vector<RawBlock>& out) const {
  for (const auto& target : node.list_dir("/proc/fs/lustre/osc")) {
    const auto text =
        node.read_file("/proc/fs/lustre/osc/" + target + "/stats");
    if (!text) continue;
    const auto wait = find_stat(*text, "req_waittime");
    out.push_back(RawBlock{schema_.type(),
                           target,
                           {wait.samples, wait.sum,
                            find_stat(*text, "read_bytes").sum,
                            find_stat(*text, "write_bytes").sum}});
  }
}

}  // namespace tacc::collect
