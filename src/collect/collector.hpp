// Collector interface. One collector per device type; each reads the node
// through its hardware interfaces (MSR/PCI/procfs) and emits one RawBlock
// per device instance.
#pragma once

#include <memory>
#include <vector>

#include "collect/rawfile.hpp"
#include "collect/schema.hpp"
#include "simhw/node.hpp"

namespace tacc::collect {

class Collector {
 public:
  virtual ~Collector() = default;

  /// The schema describing this collector's value columns.
  virtual const Schema& schema() const noexcept = 0;

  /// One-time device setup (e.g. programming PERFEVTSEL registers).
  /// Called once when the collector is attached to a node.
  virtual void configure(simhw::Node& node) { (void)node; }

  /// Reads the device(s) and appends one RawBlock per instance to `out`.
  /// Absent hardware (no Lustre mount, no Phi) appends nothing. May throw
  /// simhw::NodeFailedError if the node is down.
  virtual void collect(const simhw::Node& node,
                       std::vector<RawBlock>& out) const = 0;
};

using CollectorPtr = std::unique_ptr<Collector>;

}  // namespace tacc::collect
